// Quickstart: analyze a single XR object-detection frame on a Meta
// Quest 2 with the paper's published model coefficients — end-to-end
// latency, energy, and the per-segment breakdown of Fig. 1.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/pipeline"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Pick the Quest 2 from the Table I catalog.
	quest, err := device.ByName("XR6")
	if err != nil {
		return fmt.Errorf("device: %w", err)
	}

	// Build the reference object-detection scenario: 30 fps capture,
	// 500 px² frames, local inference with MobileNetv2.
	sc, err := pipeline.NewScenario(quest,
		pipeline.WithMode(pipeline.ModeLocal),
		pipeline.WithFrameSize(500),
	)
	if err != nil {
		return fmt.Errorf("scenario: %w", err)
	}

	// Analyze with the paper's published regression coefficients
	// (Eqs. 3, 10, 12, 21).
	fw := core.NewWithPaperCoefficients()
	report, err := fw.Analyze(sc)
	if err != nil {
		return fmt.Errorf("analyze: %w", err)
	}
	fmt.Println(report.Render())

	// The same scenario offloaded to the edge server.
	sc.Mode = pipeline.ModeRemote
	remote, err := fw.Analyze(sc)
	if err != nil {
		return fmt.Errorf("analyze remote: %w", err)
	}
	fmt.Println("--- same frame, remote inference on the edge server ---")
	fmt.Println(remote.Render())
	return nil
}
