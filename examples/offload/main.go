// Offload: a per-frame local-vs-remote decision loop driven by the
// analytical model — the use case the paper motivates: instead of
// measuring every configuration on a testbed, an application consults the
// model to pick the execution target as operating conditions (frame size,
// clock throttling, link quality) change.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/pipeline"
	"repro/internal/wireless"
)

// condition is one operating point the session passes through.
type condition struct {
	label          string
	frameSizePx2   float64
	cpuFreqGHz     float64
	linkThroughput float64 // Mbps; 0 keeps the default
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	phone, err := device.ByName("XR2")
	if err != nil {
		return fmt.Errorf("device: %w", err)
	}
	fw := core.NewWithPaperCoefficients()

	session := []condition{
		{label: "small frames, full clock", frameSizePx2: 300, cpuFreqGHz: 2.84},
		{label: "large frames, full clock", frameSizePx2: 700, cpuFreqGHz: 2.84},
		{label: "large frames, thermally throttled", frameSizePx2: 700, cpuFreqGHz: 1.2},
		{label: "large frames, throttled, congested Wi-Fi", frameSizePx2: 700, cpuFreqGHz: 1.2, linkThroughput: 8},
		{label: "small frames, throttled", frameSizePx2: 300, cpuFreqGHz: 1.2},
	}

	fmt.Println("per-frame offload decisions (latency-optimal, energy as tiebreaker):")
	fmt.Printf("%-42s %12s %12s %8s\n", "condition", "local(ms)", "remote(ms)", "choose")
	for _, cond := range session {
		opts := []pipeline.Option{
			pipeline.WithFrameSize(cond.frameSizePx2),
			pipeline.WithCPUFreq(cond.cpuFreqGHz),
		}
		sc, err := pipeline.NewScenario(phone, opts...)
		if err != nil {
			return fmt.Errorf("%s: %w", cond.label, err)
		}
		if cond.linkThroughput > 0 {
			link, err := wireless.NewLink(wireless.WiFi5GHz, cond.linkThroughput, sc.EdgeLink.DistanceM)
			if err != nil {
				return fmt.Errorf("%s link: %w", cond.label, err)
			}
			sc.EdgeLink = link
		}

		local, remote, err := fw.CompareModes(sc)
		if err != nil {
			return fmt.Errorf("%s: %w", cond.label, err)
		}
		choice := "local"
		// Prefer the faster target; on a near-tie (<5%), prefer the
		// lower-energy one to save battery.
		lt, rt := local.Latency.Total, remote.Latency.Total
		switch {
		case rt < lt*0.95:
			choice = "remote"
		case lt < rt*0.95:
			choice = "local"
		case remote.Energy.Total < local.Energy.Total:
			choice = "remote"
		}
		fmt.Printf("%-42s %12.1f %12.1f %8s\n", cond.label, lt, rt, choice)
	}
	return nil
}
