package main

import "testing"

// TestRun keeps the example compiling and executing end to end. The
// example re-fits models on the synthetic testbed, so it is the slowest
// of the example smoke tests (still well under a second).
func TestRun(t *testing.T) {
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
