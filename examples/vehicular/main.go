// Vehicular: an autonomous-driving-system (ADS) XR scenario from the
// paper's introduction — a vehicle-mounted XR device receiving pedestrian
// and traffic-signal information from roadside units and neighboring
// vehicles while moving between wireless coverage zones. The example
// quantifies how mobility (vertical handoffs) and slow external sensors
// degrade end-to-end latency and information freshness (AoI/RoI).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/mobility"
	"repro/internal/pipeline"
	"repro/internal/sensors"
	"repro/internal/stats"
	"repro/internal/wireless"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The Jetson TX2 plays the vehicle's XR computer (Table I: XR7).
	ads, err := device.ByName("XR7")
	if err != nil {
		return fmt.Errorf("device: %w", err)
	}

	// External sensors: a roadside camera unit, a neighboring vehicle's
	// position beacon, and a pedestrian-detection lidar.
	rsu, err := sensors.NewSensor("rsu-camera", 120, 80)
	if err != nil {
		return fmt.Errorf("rsu: %w", err)
	}
	beacon, err := sensors.NewSensor("v2v-beacon", 50, 45)
	if err != nil {
		return fmt.Errorf("beacon: %w", err)
	}
	lidar, err := sensors.NewSensor("lidar", 20, 60)
	if err != nil {
		return fmt.Errorf("lidar: %w", err)
	}

	// The vehicle random-walks across a Wi-Fi coverage zone toward an
	// LTE zone: estimate P(HO) by Monte-Carlo and build the vertical
	// handoff model of Eq. (17).
	walk, err := mobility.NewWalk(13.9, 50) // 50 km/h city driving
	if err != nil {
		return fmt.Errorf("walk: %w", err)
	}
	wifiZone := mobility.Zone{Technology: wireless.WiFi5GHz, RadiusM: 120}
	lteZone := mobility.Zone{Technology: wireless.LTE, RadiusM: 800}
	pHO, err := walk.HandoffProbability(wifiZone, 250, 4000, stats.NewRNG(7))
	if err != nil {
		return fmt.Errorf("handoff probability: %w", err)
	}
	kind := mobility.CrossTechnology(wifiZone, lteZone)
	ho, err := mobility.NewHandoffModel(kind, pHO)
	if err != nil {
		return fmt.Errorf("handoff model: %w", err)
	}
	fmt.Printf("mobility: P(HO) = %.3f per frame, %s handoff of %.0f ms → expected %.1f ms/frame\n\n",
		pHO, kind, ho.LatencyMs, ho.ExpectedLatencyMs())

	// Remote inference on the edge server, three sensor updates per
	// frame, and a 60 Hz freshness requirement for safety information.
	sc, err := pipeline.NewScenario(ads,
		pipeline.WithMode(pipeline.ModeRemote),
		pipeline.WithFrameSize(640),
		pipeline.WithSensors(sensors.NewArray(rsu, beacon, lidar), 3),
		pipeline.WithRequiredUpdateHz(60),
		pipeline.WithHandoff(ho),
	)
	if err != nil {
		return fmt.Errorf("scenario: %w", err)
	}

	// The paper's published power regression was trained on 0.6–0.9 GHz
	// mobile GPUs and extrapolates non-physically at the Jetson's
	// 1.3 GHz GPU clock, so this example re-fits the models on the
	// synthetic testbed (which covers the Jetson) instead.
	fw, _, err := core.NewFitted(7, 8000, 2000)
	if err != nil {
		return fmt.Errorf("fit models: %w", err)
	}
	report, err := fw.Analyze(sc)
	if err != nil {
		return fmt.Errorf("analyze: %w", err)
	}
	fmt.Println(report.Render())

	// What does standing still buy? Re-analyze without mobility.
	static := *sc
	static.Handoff = nil
	staticReport, err := fw.Analyze(&static)
	if err != nil {
		return fmt.Errorf("analyze static: %w", err)
	}
	fmt.Printf("mobility cost: %.1f ms/frame (%.1f → %.1f ms)\n",
		report.Latency.Total-staticReport.Latency.Total,
		staticReport.Latency.Total, report.Latency.Total)

	for _, s := range report.Sensors {
		if !s.Fresh {
			fmt.Printf("WARNING: %s at %.0f Hz cannot satisfy the 60 Hz safety requirement (RoI %.2f)\n",
				s.Sensor, s.GenFrequencyHz, s.RoI)
		}
	}
	return nil
}
