// Multiplayer: a cooperative XR game — the Section III scenario where an
// XR device shares scene fragments with other players' devices (the XR
// cooperation segment, Eq. 18) and splits remote inference across
// multiple edge servers (Eq. 15). The example compares single-server
// against split-inference deployments and shows the cooperation cost if
// the application cannot overlap it with rendering.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/pipeline"
	"repro/internal/wireless"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	quest, err := device.ByName("XR6")
	if err != nil {
		return fmt.Errorf("device: %w", err)
	}
	fw := core.NewWithPaperCoefficients()

	// Player-to-player cooperation link: 0.4 MB scene fragments to a
	// teammate 18 m away over the same 5 GHz Wi-Fi.
	coopLink, err := wireless.NewLink(wireless.WiFi5GHz, 110, 18)
	if err != nil {
		return fmt.Errorf("coop link: %w", err)
	}

	// Single edge server handling the full inference task.
	single, err := pipeline.NewScenario(quest,
		pipeline.WithMode(pipeline.ModeRemote),
		pipeline.WithFrameSize(600),
		pipeline.WithCooperation(pipeline.CoopConfig{
			Link:       coopLink,
			DataSizeMB: 0.4,
		}),
	)
	if err != nil {
		return fmt.Errorf("single-server scenario: %w", err)
	}
	singleReport, err := fw.Analyze(single)
	if err != nil {
		return fmt.Errorf("analyze single: %w", err)
	}

	// Split the task evenly across two edge servers (Eq. 15): each
	// carries half the load on the same class of hardware.
	edge := single.Edges[0]
	split, err := pipeline.NewScenario(quest,
		pipeline.WithMode(pipeline.ModeRemote),
		pipeline.WithFrameSize(600),
		pipeline.WithEdges(
			pipeline.EdgeAssignment{Share: 0.5, Resource: edge.Resource, MemBandwidthGBs: edge.MemBandwidthGBs},
			pipeline.EdgeAssignment{Share: 0.5, Resource: edge.Resource, MemBandwidthGBs: edge.MemBandwidthGBs},
		),
		pipeline.WithCooperation(pipeline.CoopConfig{
			Link:       coopLink,
			DataSizeMB: 0.4,
		}),
	)
	if err != nil {
		return fmt.Errorf("split scenario: %w", err)
	}
	splitReport, err := fw.Analyze(split)
	if err != nil {
		return fmt.Errorf("analyze split: %w", err)
	}

	fmt.Println("--- single edge server ---")
	fmt.Println(singleReport.Render())
	fmt.Println("--- inference split across two edge servers (Eq. 15) ---")
	fmt.Println(splitReport.Render())
	fmt.Printf("split saves %.2f ms of remote inference per frame (%.2f → %.2f ms)\n\n",
		singleReport.Latency.RemoteInf-splitReport.Latency.RemoteInf,
		singleReport.Latency.RemoteInf, splitReport.Latency.RemoteInf)

	// Cooperation normally overlaps rendering; if the game must serialize
	// it (e.g. scene consistency barriers), it enters the critical path.
	serialized := *split
	serialized.Coop = &pipeline.CoopConfig{
		Link: coopLink, DataSizeMB: 0.4, IncludeInTotal: true,
	}
	serializedReport, err := fw.Analyze(&serialized)
	if err != nil {
		return fmt.Errorf("analyze serialized: %w", err)
	}
	fmt.Printf("cooperation on the critical path costs %.2f ms/frame (%.1f → %.1f ms)\n",
		serializedReport.Latency.Total-splitReport.Latency.Total,
		splitReport.Latency.Total, serializedReport.Latency.Total)
	return nil
}
