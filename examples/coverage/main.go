// Coverage: edge-deployment planning with the SNR-driven wireless model —
// the path-loss extension point of Eq. (16). As an XR user walks away
// from the access point, Shannon-bounded throughput collapses and the
// remote-inference pipeline slows; this example sweeps distance, finds
// where remote stops beating local, and sizes the cell for a latency
// budget.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/pipeline"
	"repro/internal/wireless"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dev, err := device.ByName("XR6")
	if err != nil {
		return fmt.Errorf("device: %w", err)
	}
	fw := core.NewWithPaperCoefficients()
	radio := wireless.DefaultWiFi5SNR()

	// Local inference is the distance-independent alternative.
	localSc, err := pipeline.NewScenario(dev, pipeline.WithFrameSize(500))
	if err != nil {
		return fmt.Errorf("local scenario: %w", err)
	}
	localRep, err := fw.Analyze(localSc)
	if err != nil {
		return fmt.Errorf("analyze local: %w", err)
	}

	fmt.Printf("local inference baseline: %.1f ms/frame (distance independent)\n\n", localRep.Latency.Total)
	fmt.Printf("%10s %12s %14s %14s\n", "dist(m)", "link(Mbps)", "remote(ms)", "winner")
	for _, d := range []float64{5, 10, 20, 40, 80, 120, 160, 200} {
		link, err := radio.LinkAt(d)
		if err != nil {
			return fmt.Errorf("link at %v m: %w", d, err)
		}
		sc, err := pipeline.NewScenario(dev,
			pipeline.WithMode(pipeline.ModeRemote),
			pipeline.WithFrameSize(500),
		)
		if err != nil {
			return fmt.Errorf("scenario at %v m: %w", d, err)
		}
		sc.EdgeLink = link
		rep, err := fw.Analyze(sc)
		if err != nil {
			return fmt.Errorf("analyze at %v m: %w", d, err)
		}
		winner := "remote"
		if localRep.Latency.Total <= rep.Latency.Total {
			winner = "local"
		}
		fmt.Printf("%10.0f %12.1f %14.1f %14s\n",
			d, link.ThroughputMbps, rep.Latency.Total, winner)
	}

	// Cell sizing: how far does the radio sustain 100 Mbps (a comfortable
	// margin for encoded 1080p-class XR uplinks)?
	r, err := radio.RangeForThroughput(100)
	if err != nil {
		return fmt.Errorf("range: %w", err)
	}
	fmt.Printf("\ncell sizing: 100 Mbps sustained out to ≈%.0f m with this radio profile\n", r)
	return nil
}
