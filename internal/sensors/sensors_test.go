package sensors

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestNewSensorValidation(t *testing.T) {
	if _, err := NewSensor("s", 0, 10); !errors.Is(err, ErrFrequency) {
		t.Fatal("zero frequency must error")
	}
	if _, err := NewSensor("s", -5, 10); !errors.Is(err, ErrFrequency) {
		t.Fatal("negative frequency must error")
	}
	if _, err := NewSensor("s", 100, -1); err == nil {
		t.Fatal("negative distance must error")
	}
	s, err := NewSensor("lidar", 100, 30)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "lidar" {
		t.Fatalf("name = %q", s.Name)
	}
}

func TestGenerationPeriod(t *testing.T) {
	tests := []struct {
		hz, wantMs float64
	}{
		{200, 5}, {100, 10}, {66.67, 15.0007}, {1000, 1},
	}
	for _, tt := range tests {
		s, err := NewSensor("s", tt.hz, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.GenerationPeriodMs(); math.Abs(got-tt.wantMs) > 0.01 {
			t.Fatalf("period(%v Hz) = %v ms, want %v", tt.hz, got, tt.wantMs)
		}
	}
}

func TestUpdateLatency(t *testing.T) {
	s, err := NewSensor("s", 100, 300)
	if err != nil {
		t.Fatal(err)
	}
	// 10 ms generation + 300/3e5 = 1e-3 ms propagation.
	want := 10 + 1e-3
	if got := s.UpdateLatencyMs(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("update latency = %v, want %v", got, want)
	}
}

func TestGenerationLatencyMaxOverSensors(t *testing.T) {
	fast, _ := NewSensor("fast", 200, 0)
	slow, _ := NewSensor("slow", 50, 0)
	arr := NewArray(fast, slow)
	got, err := arr.GenerationLatencyMs(3)
	if err != nil {
		t.Fatal(err)
	}
	// Slow sensor dominates: 3 updates × 20 ms.
	if math.Abs(got-60) > 1e-9 {
		t.Fatalf("L_ext = %v, want 60", got)
	}
	if _, err := arr.GenerationLatencyMs(0); !errors.Is(err, ErrUpdates) {
		t.Fatal("zero updates must error")
	}
}

func TestGenerationLatencyEmptyArray(t *testing.T) {
	var arr Array
	got, err := arr.GenerationLatencyMs(5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("empty array L_ext = %v, want 0", got)
	}
}

func TestSlowest(t *testing.T) {
	a, _ := NewSensor("a", 200, 0)
	b, _ := NewSensor("b", 67, 0)
	c, _ := NewSensor("c", 100, 0)
	arr := NewArray(a, b, c)
	s, err := arr.Slowest()
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "b" {
		t.Fatalf("slowest = %q, want b", s.Name)
	}
	var empty Array
	if _, err := empty.Slowest(); !errors.Is(err, ErrNoSensors) {
		t.Fatal("empty array Slowest must error")
	}
}

func TestArrivalRate(t *testing.T) {
	a, _ := NewSensor("a", 200, 0)
	b, _ := NewSensor("b", 100, 0)
	arr := NewArray(a, b)
	// 0.2 + 0.1 packets per ms.
	if got := arr.ArrivalRatePerMs(); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("λ = %v, want 0.3", got)
	}
	var empty Array
	if empty.ArrivalRatePerMs() != 0 {
		t.Fatal("empty array arrival rate must be 0")
	}
}

func TestNewArrayCopies(t *testing.T) {
	a, _ := NewSensor("a", 100, 0)
	in := []Sensor{a}
	arr := NewArray(in...)
	in[0].Name = "mutated"
	if arr.Sensors[0].Name != "a" {
		t.Fatal("NewArray must copy its input")
	}
}

// Property: L_ext grows linearly in the update count and is dominated by
// the slowest sensor.
func TestGenerationLatencyProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		n := 1 + rng.Intn(4)
		ss := make([]Sensor, 0, n)
		for i := 0; i < n; i++ {
			s, err := NewSensor("s", 20+500*rng.Float64(), 100*rng.Float64())
			if err != nil {
				return false
			}
			ss = append(ss, s)
		}
		arr := NewArray(ss...)
		l1, err1 := arr.GenerationLatencyMs(1)
		l2, err2 := arr.GenerationLatencyMs(2)
		if err1 != nil || err2 != nil {
			return false
		}
		if math.Abs(l2-2*l1) > 1e-9 {
			return false
		}
		slow, err := arr.Slowest()
		if err != nil {
			return false
		}
		// The max-over-sensors is at least the slowest sensor's own sum.
		return l1 >= slow.GenerationPeriodMs()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
