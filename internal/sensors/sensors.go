// Package sensors models the external sensors and devices that feed
// control and environmental information to an XR device: roadside units,
// neighboring XR devices and vehicles, and IoT sensors (Section I). Each
// sensor generates information at its own frequency f_t and reaches the XR
// device over a wireless medium, giving the per-update latency of Eq. (6)
// and the per-frame aggregate of Eq. (5).
package sensors

import (
	"errors"
	"fmt"

	"repro/internal/wireless"
)

// Common errors.
var (
	// ErrFrequency indicates a non-positive generation frequency.
	ErrFrequency = errors.New("sensors: generation frequency must be positive")
	// ErrUpdates indicates a non-positive update count.
	ErrUpdates = errors.New("sensors: update count must be positive")
	// ErrNoSensors indicates an empty sensor array where one is needed.
	ErrNoSensors = errors.New("sensors: empty sensor array")
)

// Sensor is one external information source.
type Sensor struct {
	// Name labels the sensor in reports.
	Name string
	// GenFrequencyHz is f_t, the information-generation frequency.
	GenFrequencyHz float64
	// DistanceM is the sensor↔XR-device distance d_m in meters.
	DistanceM float64
}

// NewSensor validates and constructs a sensor.
func NewSensor(name string, genFrequencyHz, distanceM float64) (Sensor, error) {
	if genFrequencyHz <= 0 {
		return Sensor{}, fmt.Errorf("%w: %v Hz", ErrFrequency, genFrequencyHz)
	}
	if distanceM < 0 {
		return Sensor{}, fmt.Errorf("sensors: distance must be non-negative, have %v m", distanceM)
	}
	return Sensor{Name: name, GenFrequencyHz: genFrequencyHz, DistanceM: distanceM}, nil
}

// GenerationPeriodMs returns 1/f_t in milliseconds.
func (s Sensor) GenerationPeriodMs() float64 {
	return 1000 / s.GenFrequencyHz
}

// PropagationDelayMs returns d_m/c in milliseconds. The paper's base model
// assumes no path loss, shadowing, or fading for this propagation.
func (s Sensor) PropagationDelayMs() float64 {
	return s.DistanceM / wireless.PropagationSpeed
}

// UpdateLatencyMs returns L_ext^{mn} of Eq. (6) for one update:
// 1/f_t + d/c.
func (s Sensor) UpdateLatencyMs() float64 {
	return s.GenerationPeriodMs() + s.PropagationDelayMs()
}

// Array is the set of external sensors m ∈ {0,…,M} connected to one XR
// device.
type Array struct {
	// Sensors holds the array members.
	Sensors []Sensor
}

// NewArray copies the given sensors into an array.
func NewArray(ss ...Sensor) Array {
	out := make([]Sensor, len(ss))
	copy(out, ss)
	return Array{Sensors: out}
}

// GenerationLatencyMs returns L_ext of Eq. (5) for one frame: the maximum
// over sensors of the summed per-update latencies across the N updates the
// XR application requires during one frame's processing time. An empty
// array contributes zero latency (the application uses no external
// sensors).
func (a Array) GenerationLatencyMs(updates int) (float64, error) {
	if updates <= 0 {
		return 0, fmt.Errorf("%w: %d", ErrUpdates, updates)
	}
	var worst float64
	for _, s := range a.Sensors {
		total := float64(updates) * s.UpdateLatencyMs()
		if total > worst {
			worst = total
		}
	}
	return worst, nil
}

// Slowest returns the sensor with the lowest generation frequency, which
// dominates Eq. (5). It errors on an empty array.
func (a Array) Slowest() (Sensor, error) {
	if len(a.Sensors) == 0 {
		return Sensor{}, ErrNoSensors
	}
	out := a.Sensors[0]
	for _, s := range a.Sensors[1:] {
		if s.GenFrequencyHz < out.GenFrequencyHz {
			out = s
		}
	}
	return out, nil
}

// ArrivalRatePerMs returns the aggregate packet arrival rate λ (packets
// per millisecond) the array offers to the XR input buffer: the
// superposition of each sensor's generation process.
func (a Array) ArrivalRatePerMs() float64 {
	var sum float64
	for _, s := range a.Sensors {
		sum += s.GenFrequencyHz / 1000
	}
	return sum
}
