package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"

	"repro/internal/job"
	"repro/internal/testbed"
)

// ErrBusy reports an admission-control rejection: the server's bounded
// job queue was full when the job arrived. The job never ran; retry
// later.
var ErrBusy = errors.New("server busy")

// dial connects to a job server and performs the handshake, returning
// the connection, a buffered reader positioned after the hello frame,
// and the result-stream codec picked from the server's advertisement
// (binary when the server speaks it). The context governs the dial and,
// via AfterFunc, aborts the whole exchange when canceled; the caller
// owns closing both conn and the returned stop func.
func dial(ctx context.Context, addr string) (net.Conn, *bufio.Reader, string, func() bool, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, nil, "", nil, fmt.Errorf("submit: %w", err)
	}
	stop := context.AfterFunc(ctx, func() { _ = conn.Close() })
	br := bufio.NewReader(conn)
	h, err := testbed.ReadHello(br)
	if err != nil {
		stop()
		_ = conn.Close()
		return nil, nil, "", nil, fmt.Errorf("submit: %s: %w", addr, err)
	}
	if h.Service != testbed.ServiceJobs {
		stop()
		_ = conn.Close()
		return nil, nil, "", nil, fmt.Errorf("submit: %s is not a job server (it serves %q — an `xrperf serve` fleet node answers measurements, not jobs; dial an `xrperf server` instead)",
			addr, h.Service)
	}
	return conn, br, h.PickCodec(), stop, nil
}

// Submit sends one job to the server at addr and copies the streamed
// output chunks to out in arrival order; their concatenation is
// byte-identical to the one-shot CLI's stdout for the same job. A
// job-level failure returns an error with the server's exact message —
// for an invalid job, the same text the one-shot CLI would print — and
// a busy rejection returns an error wrapping ErrBusy. Canceling ctx
// closes the connection, which aborts the job server-side.
func Submit(ctx context.Context, addr string, j job.Job, out io.Writer) error {
	conn, br, codec, stop, err := dial(ctx, addr)
	if err != nil {
		return err
	}
	defer stop()
	defer conn.Close()
	payload, err := json.Marshal(j)
	if err != nil {
		return fmt.Errorf("submit: encode job: %w", err)
	}
	if err := testbed.WriteFrame(conn, testbed.WireJob{Proto: testbed.JobProtocolVersion, Op: testbed.JobOpRun, Codec: codec, Job: payload}); err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	for {
		var r testbed.WireResult
		if err := testbed.ReadFrameCodec(br, codec, &r); err != nil {
			if ctx.Err() != nil {
				return fmt.Errorf("submit: %w", ctx.Err())
			}
			return fmt.Errorf("submit: server closed the stream: %w", err)
		}
		switch r.Kind {
		case testbed.ResultChunk:
			if _, err := io.WriteString(out, r.Chunk); err != nil {
				return err
			}
		case testbed.ResultDone:
			return nil
		case testbed.ResultBusy:
			return fmt.Errorf("%w: %s", ErrBusy, r.Err)
		case testbed.ResultErr:
			return errors.New(r.Err)
		default:
			return fmt.Errorf("submit: unexpected result frame %q", r.Kind)
		}
	}
}

// QueryStats asks the server at addr for its introspection snapshot.
func QueryStats(ctx context.Context, addr string) (Stats, error) {
	conn, br, codec, stop, err := dial(ctx, addr)
	if err != nil {
		return Stats{}, err
	}
	defer stop()
	defer conn.Close()
	if err := testbed.WriteFrame(conn, testbed.WireJob{Proto: testbed.JobProtocolVersion, Op: testbed.JobOpStats, Codec: codec}); err != nil {
		return Stats{}, fmt.Errorf("stats: %w", err)
	}
	var r testbed.WireResult
	if err := testbed.ReadFrameCodec(br, codec, &r); err != nil {
		return Stats{}, fmt.Errorf("stats: %w", err)
	}
	switch r.Kind {
	case testbed.ResultStats:
		var st Stats
		if err := json.Unmarshal(r.Stats, &st); err != nil {
			return Stats{}, fmt.Errorf("stats: decode: %w", err)
		}
		return st, nil
	case testbed.ResultErr:
		return Stats{}, errors.New(r.Err)
	default:
		return Stats{}, fmt.Errorf("stats: unexpected result frame %q", r.Kind)
	}
}
