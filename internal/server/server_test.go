package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/job"
	"repro/internal/sweep"
	"repro/internal/testbed"
)

// fastSpec is the execution environment every test job runs under —
// small dataset, few trials, fixed seed — matching the CLI test suite's
// fast flags so expected bytes stay cheap to compute.
func fastSpec() job.Spec {
	s := job.Default()
	s.TrainRows = 2000
	s.TestRows = 500
	s.Trials = 5
	s.Workers = 2
	return s
}

// sweepJob builds a small sweep job over the given frame sizes.
func sweepJob(format string, sizes ...float64) job.Job {
	g := job.Grid{Devices: []string{"XR1"}, Modes: []string{"local", "remote"}, Sizes: sizes}
	return job.Job{Kind: job.KindSweep, Spec: fastSpec(), Grid: &g, Format: format}
}

// oneShot renders the job exactly as the one-shot CLI would: a fresh
// suite on the job's own spec, buffered output.
func oneShot(t testing.TB, jb job.Job) string {
	t.Helper()
	suite, cleanup, err := jb.Spec.BuildSuite()
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	var buf bytes.Buffer
	if err := jb.Run(context.Background(), suite, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// startServer runs a job server on a loopback listener for the test's
// lifetime, returning its address, the server, and its shared runner.
func startServer(t testing.TB, cfg Config) (string, *Server, *sweep.CachedRunner) {
	t.Helper()
	if cfg.Runner == nil {
		cfg.Runner = sweep.NewCachedRunner(&sweep.PoolRunner{Workers: 2})
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ctx, ln)
	}()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Error("server did not shut down")
		}
	})
	return ln.Addr().String(), srv, cfg.Runner
}

// TestSubmitMatchesOneShot pins the tentpole contract: for the same job
// document, a submit round trip through a live server prints exactly the
// bytes the one-shot CLI prints — table and CSV sweeps and the full
// report, cold cache and warm.
func TestSubmitMatchesOneShot(t *testing.T) {
	addr, _, _ := startServer(t, Config{})
	jobs := map[string]job.Job{
		"sweep-table": sweepJob("table", 300, 500),
		"sweep-csv":   sweepJob("csv", 300, 500),
		"report":      {Kind: job.KindReport, Spec: fastSpec()},
	}
	for name, jb := range jobs {
		t.Run(name, func(t *testing.T) {
			want := oneShot(t, jb)
			for _, round := range []string{"cold", "warm"} {
				var got bytes.Buffer
				if err := Submit(context.Background(), addr, jb, &got); err != nil {
					t.Fatalf("%s submit: %v", round, err)
				}
				if got.String() != want {
					t.Fatalf("%s submit diverges from one-shot output:\nserver %q\ncli    %q", round, got.String(), want)
				}
			}
		})
	}
}

// TestServerSoakConcurrentClients is the soak test: many concurrent
// clients with overlapping grids against one server. Every client must
// receive exactly the one-shot bytes for its own job (streams never
// interleave across connections), and the shared cache must have
// measured each unique cell exactly once globally — the overlap is
// deduplicated across clients, not just within one.
func TestServerSoakConcurrentClients(t *testing.T) {
	addr, srv, runner := startServer(t, Config{MaxActive: 4})

	// Two overlapping grids: {300,500} and {500,700} share the 500-size
	// cells. XR1 × {local,remote} × sizes → 4 cells each, 6 unique.
	gridA := sweepJob("table", 300, 500)
	gridB := sweepJob("csv", 500, 700)
	wantA := oneShot(t, gridA)
	wantB := oneShot(t, gridB)
	const clients = 8

	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		jb, want := gridA, wantA
		if i%2 == 1 {
			jb, want = gridB, wantB
		}
		wg.Add(1)
		go func(i int, jb job.Job, want string) {
			defer wg.Done()
			var got bytes.Buffer
			if err := Submit(context.Background(), addr, jb, &got); err != nil {
				errs[i] = err
				return
			}
			if got.String() != want {
				errs[i] = fmt.Errorf("client %d bytes diverge:\ngot  %q\nwant %q", i, got.String(), want)
			}
		}(i, jb, want)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if st := runner.Stats(); st.Misses != 6 {
		t.Fatalf("shared cache measured %d unique cells, want exactly 6 (global dedupe across clients)", st.Misses)
	}
	st := srv.Stats()
	if st.Completed != clients {
		t.Fatalf("server completed %d jobs, want %d (failed %d, rejected %d)", st.Completed, clients, st.Failed, st.Rejected)
	}
}

// slowRunner builds a cached runner whose every measurement takes delay,
// so admission-control behavior can be driven deterministically.
func slowRunner(delay time.Duration) *sweep.CachedRunner {
	return sweep.NewCachedRunner(&sweep.ChaosRunner{
		Backend: &sweep.PoolRunner{Workers: 1},
		Delay:   delay,
		Workers: 1,
	})
}

// TestServerBusyRejection pins the 429 path: with one active slot, no
// waiting room, and a slow job holding the slot, the next arrival is
// rejected busy — reported through ErrBusy with the queue state — and
// counted, not queued.
func TestServerBusyRejection(t *testing.T) {
	addr, srv, _ := startServer(t, Config{
		Runner:    slowRunner(500 * time.Millisecond),
		MaxActive: 1, QueueDepth: -1,
	})
	first := make(chan error, 1)
	go func() {
		var buf bytes.Buffer
		first <- Submit(context.Background(), addr, sweepJob("table", 300, 500), &buf)
	}()
	// Wait until the first job holds the active slot.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Active == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first job never became active")
		}
		time.Sleep(5 * time.Millisecond)
	}
	var buf bytes.Buffer
	err := Submit(context.Background(), addr, sweepJob("table", 300, 500), &buf)
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("second concurrent job: want ErrBusy, got %v", err)
	}
	if !strings.Contains(err.Error(), "queue full") {
		t.Fatalf("busy error does not describe the queue: %v", err)
	}
	if err := <-first; err != nil {
		t.Fatalf("first job: %v", err)
	}
	st := srv.Stats()
	if st.Rejected != 1 || st.Completed != 1 {
		t.Fatalf("counters: rejected %d completed %d, want 1/1", st.Rejected, st.Completed)
	}
}

// TestServerClientDisconnectCancels pins cancelation: a client that
// vanishes mid-job aborts the in-flight sweep through the ctx-first
// paths — the job fails server-side long before it could have finished,
// and the server stays healthy for the next client.
func TestServerClientDisconnectCancels(t *testing.T) {
	addr, srv, _ := startServer(t, Config{
		Runner:    slowRunner(time.Hour), // never finishes on its own
		MaxActive: 1,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	var buf bytes.Buffer
	if err := Submit(ctx, addr, sweepJob("table", 300, 500), &buf); err == nil {
		t.Fatal("submit with a dying client returned nil")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := srv.Stats()
		if st.Failed == 1 && st.Active == 0 && st.Queued == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job did not abort after client disconnect: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The slot is free again: a fast server is still serviceable.
	if _, err := QueryStats(context.Background(), addr); err != nil {
		t.Fatalf("server unhealthy after disconnect: %v", err)
	}
}

// TestServerJobTimeout pins the per-job deadline: a job running past
// JobTimeout is aborted and reported as a deadline error.
func TestServerJobTimeout(t *testing.T) {
	addr, srv, _ := startServer(t, Config{
		Runner:     slowRunner(time.Hour),
		JobTimeout: 150 * time.Millisecond,
	})
	var buf bytes.Buffer
	err := Submit(context.Background(), addr, sweepJob("table", 300, 500), &buf)
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("want a deadline error, got %v", err)
	}
	if st := srv.Stats(); st.Failed != 1 {
		t.Fatalf("timed-out job not counted failed: %+v", st)
	}
}

// TestServerShutdownWithJobsInFlight pins clean shutdown: canceling the
// serve context with a job mid-flight returns promptly — the in-flight
// job aborts through its context and the closed connection — and the
// client sees an error, not a hang.
func TestServerShutdownWithJobsInFlight(t *testing.T) {
	runner := slowRunner(time.Hour)
	srv, err := New(Config{Runner: runner, MaxActive: 1})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, ln) }()
	clientErr := make(chan error, 1)
	go func() {
		var buf bytes.Buffer
		clientErr <- Submit(context.Background(), ln.Addr().String(), sweepJob("table", 300, 500), &buf)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Active == 0 {
		if time.Now().After(deadline) {
			t.Fatal("job never became active")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v on cancelation", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return with a job in flight")
	}
	select {
	case err := <-clientErr:
		if err == nil {
			t.Fatal("client of a shut-down server got a clean stream")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("client hung after server shutdown")
	}
}

// TestServerValidationErrorParity pins satellite 4's contract end to
// end: for every class of invalid spec, the error text a submit client
// receives from the server is exactly the text job.Spec.Validate —
// and therefore the one-shot CLI — produces locally.
func TestServerValidationErrorParity(t *testing.T) {
	addr, _, _ := startServer(t, Config{})
	bad := []func(*job.Job){
		func(j *job.Job) { j.Spec.Backend = "teleport" },
		func(j *job.Job) { j.Spec.Backend = "net" },
		func(j *job.Job) { j.Spec.Backend = "pool"; j.Spec.Nodes = []string{"x:1"} },
		func(j *job.Job) { j.Spec.Workers = -1 },
		func(j *job.Job) { j.Spec.Trials = -3 },
		func(j *job.Job) { j.Spec.TrainRows = -1 },
		func(j *job.Job) { j.Grid = nil },
		func(j *job.Job) { j.Format = "xml" },
		func(j *job.Job) { j.Kind = "dance" },
	}
	for i, mutate := range bad {
		jb := sweepJob("table", 300)
		mutate(&jb)
		want := jb.Validate()
		if want == nil {
			t.Fatalf("case %d: job unexpectedly valid", i)
		}
		var buf bytes.Buffer
		err := Submit(context.Background(), addr, jb, &buf)
		if err == nil {
			t.Fatalf("case %d: server accepted an invalid job", i)
		}
		if err.Error() != want.Error() {
			t.Fatalf("case %d: server error diverges from local validation:\nserver %q\nlocal  %q", i, err, want)
		}
		if buf.Len() != 0 {
			t.Fatalf("case %d: invalid job produced output %q", i, buf.String())
		}
	}
}

// TestServerStatsSelfCheck pins the M/M/1 dogfood: after a batch of
// jobs, the stats snapshot's counters reconcile, the observed rates are
// positive, and the reported sojourn prediction is exactly the model's
// closed form 1/(µ−λ) at the observed rates.
func TestServerStatsSelfCheck(t *testing.T) {
	addr, _, _ := startServer(t, Config{MaxActive: 2})
	jb := sweepJob("table", 300, 500)
	for i := 0; i < 4; i++ {
		var buf bytes.Buffer
		if err := Submit(context.Background(), addr, jb, &buf); err != nil {
			t.Fatal(err)
		}
	}
	st, err := QueryStats(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	if st.Arrivals != st.Admitted+st.Rejected {
		t.Fatalf("arrivals %d != admitted %d + rejected %d", st.Arrivals, st.Admitted, st.Rejected)
	}
	if st.Completed != 4 || st.Failed != 0 || st.Queued != 0 || st.Active != 0 {
		t.Fatalf("queue counters off: %+v", st)
	}
	if st.LambdaPerMS <= 0 || st.MuPerMS <= 0 || st.ObservedSojournMS <= 0 {
		t.Fatalf("rates not observed: λ=%v µ=%v sojourn=%v", st.LambdaPerMS, st.MuPerMS, st.ObservedSojournMS)
	}
	if st.Rho <= 0 || st.Rho != st.LambdaPerMS/st.MuPerMS {
		t.Fatalf("rho %v inconsistent with λ/µ %v", st.Rho, st.LambdaPerMS/st.MuPerMS)
	}
	// The server ran sequentially well below saturation, so λ < µ and
	// the M/M/1 closed form must be reported and equal 1/(µ−λ).
	if st.LambdaPerMS < st.MuPerMS {
		want := 1 / (st.MuPerMS - st.LambdaPerMS)
		if math.Abs(st.PredictedSojournMS-want) > 1e-9*want {
			t.Fatalf("predicted sojourn %v, M/M/1 closed form %v", st.PredictedSojournMS, want)
		}
	}
	if st.Cache.Misses != 4 {
		t.Fatalf("cache misses %d, want 4 unique cells", st.Cache.Misses)
	}
}

// TestServerRejectsWrongJobProto pins job-protocol versioning: a client
// announcing a different WireJob version is refused with a version
// mismatch before any job runs.
func TestServerRejectsWrongJobProto(t *testing.T) {
	addr, _, _ := startServer(t, Config{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := testbed.ReadHello(conn); err != nil {
		t.Fatal(err)
	}
	if err := testbed.WriteFrame(conn, testbed.WireJob{Proto: 99}); err != nil {
		t.Fatal(err)
	}
	var r testbed.WireResult
	if err := testbed.ReadFrame(conn, &r); err != nil {
		t.Fatal(err)
	}
	if r.Kind != testbed.ResultErr || !strings.Contains(r.Err, "job protocol") {
		t.Fatalf("want a job-protocol error frame, got %+v", r)
	}
}

// TestSubmitToFleetNodeFailsClearly pins the service marker: dialing an
// `xrperf serve` measurement node with submit fails with an error that
// says what the peer actually is, instead of a confusing frame error.
func TestSubmitToFleetNodeFailsClearly(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = testbed.ServeListener(ctx, ln, nil) }()
	var buf bytes.Buffer
	err = Submit(context.Background(), ln.Addr().String(), sweepJob("table", 300), &buf)
	if err == nil || !strings.Contains(err.Error(), "not a job server") {
		t.Fatalf("want a not-a-job-server error, got %v", err)
	}
}
