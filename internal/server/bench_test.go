package server

import (
	"bytes"
	"context"
	"testing"
	"time"
)

// BenchmarkServerSubmit measures the sweep-as-a-service round trip: one
// full submit cycle — dial, handshake, job frame, suite build, streamed
// chunks, done frame — against a warm cache, so the number tracks the
// service path (framing, admission, scheduling, rendering) rather than
// the synthetic physics. Reported as both ns/op (the bench trajectory's
// unit) and jobs/s (the service-level figure the ISSUE asks for).
func BenchmarkServerSubmit(b *testing.B) {
	addr, _, _ := startServer(b, Config{})
	jb := sweepJob("table", 300, 500)
	var buf bytes.Buffer
	if err := Submit(context.Background(), addr, jb, &buf); err != nil {
		b.Fatal(err)
	}
	want := buf.String()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := Submit(context.Background(), addr, jb, &buf); err != nil {
			b.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	b.StopTimer()
	if buf.String() != want {
		b.Fatal("warm submit bytes diverged from cold")
	}
	if secs := elapsed.Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)/secs, "jobs/s")
	}
}
