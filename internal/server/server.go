// Package server implements sweep-as-a-service: a long-lived job server
// (`xrperf server`) that accepts serialized job documents (internal/job)
// from concurrent submit clients over the testbed frame protocol,
// executes them on one shared memoizing runner — so overlapping grids
// from different clients measure each unique cell once globally — and
// streams each job's canonical output back as ordered prefixes complete.
// Admission control is a bounded queue with busy rejection and
// per-job timeout/cancel (client disconnect aborts the in-flight sweep
// through the ctx-first paths), and the introspection op reports the
// queue's observed arrival/service rates checked against the
// internal/queue M/M/1 model — the paper's own queueing math, dogfooded
// on the server's own queue.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/job"
	"repro/internal/queue"
	"repro/internal/sweep"
	"repro/internal/testbed"
)

// Defaults for the admission-control knobs.
const (
	// DefaultMaxActive is the default number of concurrently executing
	// jobs. Two keeps the shared runner busy while letting single-flight
	// dedupe overlap between clients.
	DefaultMaxActive = 2
	// DefaultQueueDepth is the default number of admitted-but-waiting
	// jobs beyond the active set; arrivals past it are rejected busy.
	DefaultQueueDepth = 8
)

// Config parameterizes a Server.
type Config struct {
	// Runner is the shared measurement runner every job executes on
	// (required). Its cache is what makes overlapping client grids
	// measure each unique cell once globally.
	Runner *sweep.CachedRunner
	// MaxActive bounds concurrently executing jobs (0 = DefaultMaxActive).
	MaxActive int
	// QueueDepth bounds admitted-but-waiting jobs (0 = DefaultQueueDepth;
	// negative = no waiting room, reject unless a slot is free).
	QueueDepth int
	// JobTimeout aborts a job running longer than this (0 = no limit).
	JobTimeout time.Duration
	// Logf receives operational log lines (nil = silent).
	Logf func(format string, args ...any)
}

// Stats is the introspection snapshot answering a stats op. Rates are
// per millisecond to match internal/queue's unit; the Predicted* fields
// are the M/M/1 closed forms evaluated at the observed rates, so a
// client can compare the model against ObservedSojournMS directly.
type Stats struct {
	// UptimeMS is time since the server started serving.
	UptimeMS float64 `json:"uptime_ms"`
	// Arrivals counts run requests received (admitted + rejected).
	Arrivals int64 `json:"arrivals"`
	// Admitted counts jobs that entered the queue.
	Admitted int64 `json:"admitted"`
	// Rejected counts busy rejections (queue full on arrival).
	Rejected int64 `json:"rejected"`
	// Completed counts jobs that finished successfully.
	Completed int64 `json:"completed"`
	// Failed counts jobs that ended in an error, timeout, or disconnect.
	Failed int64 `json:"failed"`
	// Queued is the current number of admitted jobs waiting for a slot.
	Queued int `json:"queued"`
	// Active is the current number of executing jobs.
	Active int `json:"active"`
	// LambdaPerMS is the observed arrival rate λ (admitted/uptime).
	LambdaPerMS float64 `json:"lambda_per_ms"`
	// MuPerMS is the observed service rate µ (completed/busy time).
	MuPerMS float64 `json:"mu_per_ms"`
	// Rho is the observed utilization λ/µ (0 when µ is unknown).
	Rho float64 `json:"rho"`
	// ObservedSojournMS is the mean admission→finish time of finished
	// jobs.
	ObservedSojournMS float64 `json:"observed_sojourn_ms"`
	// PredictedSojournMS is the M/M/1 mean sojourn 1/(µ−λ) at the
	// observed rates, 0 when the observed system is unstable or idle.
	PredictedSojournMS float64 `json:"predicted_sojourn_ms"`
	// Cache is the shared runner's cache counters; Misses is the global
	// unique-cells-measured count across all clients.
	Cache sweep.CacheStats `json:"cache"`
}

// Server executes job documents from concurrent clients on one shared
// runner. Create with New, drive with Serve.
type Server struct {
	cfg Config

	// admission holds one token per admitted-but-unfinished job; its
	// capacity (MaxActive+QueueDepth) is the admission bound. active
	// holds one token per executing job. Both are channels so waiting
	// for a slot composes with ctx cancelation.
	admission chan struct{}
	active    chan struct{}

	mu        sync.Mutex
	start     time.Time
	jobSeq    int64
	arrivals  int64
	admitted  int64
	rejected  int64
	completed int64
	failed    int64
	busy      time.Duration // summed execution time of finished jobs
	sojourn   time.Duration // summed admission→finish time of finished jobs
}

// New validates cfg and builds a Server.
func New(cfg Config) (*Server, error) {
	if cfg.Runner == nil {
		return nil, errors.New("server: Config.Runner is required")
	}
	if cfg.MaxActive == 0 {
		cfg.MaxActive = DefaultMaxActive
	}
	if cfg.MaxActive < 0 {
		return nil, fmt.Errorf("server: MaxActive must be positive, have %d", cfg.MaxActive)
	}
	depth := cfg.QueueDepth
	switch {
	case depth == 0:
		depth = DefaultQueueDepth
	case depth < 0:
		depth = 0
	}
	return &Server{
		cfg:       cfg,
		admission: make(chan struct{}, cfg.MaxActive+depth),
		active:    make(chan struct{}, cfg.MaxActive),
		start:     time.Now(),
	}, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Serve accepts client connections on ln until ctx is canceled or the
// listener fails, handling each concurrently. Canceling ctx closes the
// listener and every live connection; in-flight jobs abort through
// their contexts and the connection writes failing, so shutdown with
// jobs in flight is prompt. ln is closed in every exit path.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	s.mu.Lock()
	s.start = time.Now()
	s.mu.Unlock()
	var (
		mu   sync.Mutex
		live = make(map[net.Conn]struct{})
	)
	closeAll := func() {
		_ = ln.Close()
		mu.Lock()
		defer mu.Unlock()
		for c := range live {
			_ = c.Close()
		}
	}
	stop := context.AfterFunc(ctx, closeAll)
	defer stop()
	defer closeAll()
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		mu.Lock()
		live[conn] = struct{}{}
		mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				mu.Lock()
				delete(live, conn)
				mu.Unlock()
				_ = conn.Close()
			}()
			if err := s.handle(ctx, conn); err != nil && ctx.Err() == nil {
				s.logf("connection %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// handshakeTimeout bounds how long a fresh connection may take to send
// its job frame before the server gives up on it.
const handshakeTimeout = 30 * time.Second

// handle runs one client exchange: handshake, one job frame, one
// response stream. Returned errors are connection-level (logged, never
// fatal to the server); job-level failures are reported to the client
// in the result stream and return nil here.
func (s *Server) handle(ctx context.Context, conn net.Conn) error {
	if err := testbed.WriteFrame(conn, testbed.JobsHello()); err != nil {
		return err
	}
	_ = conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	var wj testbed.WireJob
	if err := testbed.ReadFrame(conn, &wj); err != nil {
		return fmt.Errorf("read job frame: %w", err)
	}
	_ = conn.SetReadDeadline(time.Time{})
	if err := wj.Check(); err != nil {
		return writeErr(conn, testbed.CodecJSON, err)
	}
	// The client picks the result-stream codec from the hello's
	// advertisement (WireJob.Codec); every WireResult frame after this
	// point rides it. The rejection of an unknown codec is necessarily
	// JSON — no codec was agreed.
	codec := testbed.NormalizeCodec(wj.Codec)
	if !testbed.KnownCodec(codec) {
		return writeErr(conn, testbed.CodecJSON,
			fmt.Errorf("%w: client requested codec %q, this server speaks %s, %s",
				testbed.ErrVersionMismatch, wj.Codec, testbed.CodecJSON, testbed.CodecBinary))
	}
	switch wj.Op {
	case testbed.JobOpStats:
		return s.writeStats(conn, codec)
	case "", testbed.JobOpRun:
		return s.runJob(ctx, conn, codec, wj.Job)
	default:
		return writeErr(conn, codec, fmt.Errorf("server: unknown op %q", wj.Op))
	}
}

// writeErr reports a job-level failure to the client. The message is the
// error's exact text — for an invalid job, the same text the one-shot
// CLI prints for the same spec.
func writeErr(conn net.Conn, codec string, err error) error {
	return testbed.WriteFrameCodec(conn, codec, testbed.WireResult{Kind: testbed.ResultErr, Err: err.Error()})
}

// writeStats answers a stats op with the current snapshot.
func (s *Server) writeStats(conn net.Conn, codec string) error {
	payload, err := json.Marshal(s.Stats())
	if err != nil {
		return err
	}
	return testbed.WriteFrameCodec(conn, codec, testbed.WireResult{Kind: testbed.ResultStats, Stats: payload})
}

// runJob admits, executes, and streams one job.
func (s *Server) runJob(ctx context.Context, conn net.Conn, codec string, doc json.RawMessage) error {
	jb, err := job.Decode(doc)
	if err != nil {
		return writeErr(conn, codec, err)
	}
	// Validate before admission: a malformed job must not consume a
	// queue slot, and must fail with the exact one-shot CLI error text.
	if err := jb.Validate(); err != nil {
		return writeErr(conn, codec, err)
	}

	s.mu.Lock()
	s.arrivals++
	s.jobSeq++
	id := s.jobSeq
	s.mu.Unlock()

	// Admission: one token per unfinished job, rejected busy when the
	// bounded queue (active + waiting) is full — the 429 of this
	// protocol.
	select {
	case s.admission <- struct{}{}:
	default:
		s.mu.Lock()
		s.rejected++
		queued, active := len(s.admission)-len(s.active), len(s.active)
		s.mu.Unlock()
		s.logf("job %d rejected: queue full (%d queued, %d active)", id, queued, active)
		return testbed.WriteFrameCodec(conn, codec, testbed.WireResult{
			Kind: testbed.ResultBusy,
			Err:  fmt.Sprintf("job queue full (%d queued, %d active); retry later", queued, active),
		})
	}
	admittedAt := time.Now()
	s.mu.Lock()
	s.admitted++
	s.mu.Unlock()
	defer func() { <-s.admission }()

	// The client sends nothing after its job frame, so any read return —
	// EOF, reset, or an unexpected frame — means the client is gone (or
	// broken) and the job should abort through its context.
	jctx, cancel := context.WithCancel(ctx)
	defer cancel()
	go func() {
		var discard json.RawMessage
		_ = testbed.ReadFrame(conn, &discard)
		cancel()
	}()

	// Wait for an execution slot; a client that disconnects (or a server
	// shutting down) while queued never starts.
	select {
	case s.active <- struct{}{}:
	case <-jctx.Done():
		s.finish(id, admittedAt, admittedAt, fmt.Errorf("job canceled while queued: %w", jctx.Err()))
		return writeErr(conn, codec, jctx.Err())
	}
	defer func() { <-s.active }()
	if s.cfg.JobTimeout > 0 {
		var tcancel context.CancelFunc
		jctx, tcancel = context.WithTimeout(jctx, s.cfg.JobTimeout)
		defer tcancel()
	}

	suite, err := jb.SuiteFor(s.cfg.Runner)
	if err != nil {
		s.finish(id, admittedAt, admittedAt, err)
		return writeErr(conn, codec, err)
	}
	before := s.cfg.Runner.Stats()
	startedAt := time.Now()
	jb.Stream = true
	runErr := jb.Run(jctx, suite, &frameWriter{conn: conn, codec: codec})
	s.finish(id, admittedAt, startedAt, runErr)
	delta := s.cfg.Runner.Stats()
	s.logf("job %d (%s) done in %s: %d new cells measured, %d served from cache",
		id, kindName(jb), time.Since(startedAt).Round(time.Millisecond),
		delta.Misses-before.Misses, (delta.Hits+delta.DiskHits)-(before.Hits+before.DiskHits))
	if runErr != nil {
		return writeErr(conn, codec, runErr)
	}
	return testbed.WriteFrameCodec(conn, codec, testbed.WireResult{Kind: testbed.ResultDone})
}

func kindName(j job.Job) string {
	if j.Kind == "" {
		return string(job.KindSweep)
	}
	return string(j.Kind)
}

// finish folds one finished job into the queue counters.
func (s *Server) finish(id int64, admittedAt, startedAt time.Time, err error) {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.busy += now.Sub(startedAt)
	s.sojourn += now.Sub(admittedAt)
	if err != nil {
		s.failed++
		return
	}
	s.completed++
}

// Stats snapshots the server's queue and cache counters and evaluates
// the M/M/1 closed forms at the observed rates.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		UptimeMS:  float64(time.Since(s.start)) / float64(time.Millisecond),
		Arrivals:  s.arrivals,
		Admitted:  s.admitted,
		Rejected:  s.rejected,
		Completed: s.completed,
		Failed:    s.failed,
		Queued:    len(s.admission) - len(s.active),
		Active:    len(s.active),
	}
	busyMS := float64(s.busy) / float64(time.Millisecond)
	sojournMS := float64(s.sojourn) / float64(time.Millisecond)
	s.mu.Unlock()
	if st.Queued < 0 {
		st.Queued = 0
	}
	if st.UptimeMS > 0 {
		st.LambdaPerMS = float64(st.Admitted) / st.UptimeMS
	}
	if busyMS > 0 {
		st.MuPerMS = float64(st.Completed+st.Failed) / busyMS
	}
	if done := st.Completed + st.Failed; done > 0 {
		st.ObservedSojournMS = sojournMS / float64(done)
	}
	if st.MuPerMS > 0 {
		st.Rho = st.LambdaPerMS / st.MuPerMS
	}
	// The closed form exists only for a stable observed system (λ < µ);
	// NewMM1 enforces that, so an overloaded or idle snapshot predicts 0.
	if q, err := queue.NewMM1(st.LambdaPerMS, st.MuPerMS); err == nil {
		st.PredictedSojournMS = q.MeanSojourn()
	}
	st.Cache = s.cfg.Runner.Stats()
	return st
}

// frameWriter adapts a connection to io.Writer for a job's output: every
// Write becomes one chunk frame, so the client reproduces the byte
// stream exactly by concatenating chunks in arrival order.
type frameWriter struct {
	conn  net.Conn
	codec string
}

func (w *frameWriter) Write(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	if err := testbed.WriteFrameCodec(w.conn, w.codec, testbed.WireResult{Kind: testbed.ResultChunk, Chunk: string(p)}); err != nil {
		return 0, err
	}
	return len(p), nil
}
