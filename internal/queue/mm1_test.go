package queue

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestNewMM1Validation(t *testing.T) {
	tests := []struct {
		name       string
		lambda, mu float64
		wantErr    error
	}{
		{name: "stable", lambda: 0.5, mu: 1},
		{name: "unstable equal", lambda: 1, mu: 1, wantErr: ErrUnstable},
		{name: "unstable greater", lambda: 2, mu: 1, wantErr: ErrUnstable},
		{name: "zero lambda", lambda: 0, mu: 1, wantErr: ErrRate},
		{name: "negative mu", lambda: 0.5, mu: -1, wantErr: ErrRate},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewMM1(tt.lambda, tt.mu)
			if tt.wantErr == nil {
				if err != nil {
					t.Fatalf("NewMM1: %v", err)
				}
				return
			}
			if !errors.Is(err, tt.wantErr) {
				t.Fatalf("NewMM1 error = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestMM1ClosedForms(t *testing.T) {
	q, err := NewMM1(0.5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Rho(); got != 0.5 {
		t.Fatalf("ρ = %v, want 0.5", got)
	}
	if got := q.MeanSojourn(); got != 2 {
		t.Fatalf("W = %v, want 2", got)
	}
	if got := q.MeanWait(); got != 1 {
		t.Fatalf("Wq = %v, want 1", got)
	}
	if got := q.MeanNumber(); got != 1 {
		t.Fatalf("L = %v, want 1", got)
	}
	if got := q.MeanQueueLength(); got != 0.5 {
		t.Fatalf("Lq = %v, want 0.5", got)
	}
}

func TestLittlesLaw(t *testing.T) {
	// L = λW and Lq = λWq must hold exactly for the closed forms.
	for _, q := range []MM1{{0.3, 1}, {0.7, 1.2}, {5, 9}} {
		if math.Abs(q.MeanNumber()-q.Lambda*q.MeanSojourn()) > 1e-12 {
			t.Fatalf("Little's law violated for %+v", q)
		}
		if math.Abs(q.MeanQueueLength()-q.Lambda*q.MeanWait()) > 1e-12 {
			t.Fatalf("Little's law (queue) violated for %+v", q)
		}
	}
}

func TestSojournQuantile(t *testing.T) {
	q, _ := NewMM1(0.5, 1.0)
	med, err := q.SojournQuantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Exponential with rate 0.5: median = ln2/0.5.
	if want := math.Ln2 / 0.5; math.Abs(med-want) > 1e-12 {
		t.Fatalf("median sojourn = %v, want %v", med, want)
	}
	if _, err := q.SojournQuantile(0); err == nil {
		t.Fatal("quantile 0 must error")
	}
	if _, err := q.SojournQuantile(1); err == nil {
		t.Fatal("quantile 1 must error")
	}
}

func TestSimulateMatchesAnalytics(t *testing.T) {
	q, _ := NewMM1(0.6, 1.0)
	res, err := q.Simulate(200000, stats.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	if res.Served == 0 || len(res.Sojourns) != res.Served {
		t.Fatalf("served = %d, sojourns = %d", res.Served, len(res.Sojourns))
	}
	// Empirical sojourn must be within 5% of W = 1/(µ−λ) = 2.5.
	if rel := math.Abs(res.MeanSojourn-q.MeanSojourn()) / q.MeanSojourn(); rel > 0.05 {
		t.Fatalf("sim sojourn %v vs analytic %v (rel %v)", res.MeanSojourn, q.MeanSojourn(), rel)
	}
	if rel := math.Abs(res.MeanWait-q.MeanWait()) / q.MeanWait(); rel > 0.07 {
		t.Fatalf("sim wait %v vs analytic %v (rel %v)", res.MeanWait, q.MeanWait(), rel)
	}
	if math.Abs(res.Utilization-q.Rho()) > 0.03 {
		t.Fatalf("sim utilization %v vs ρ %v", res.Utilization, q.Rho())
	}
}

func TestSimulateErrors(t *testing.T) {
	q, _ := NewMM1(0.5, 1)
	if _, err := q.Simulate(0, stats.NewRNG(1)); err == nil {
		t.Fatal("zero packets must error")
	}
	if _, err := q.Simulate(10, nil); err == nil {
		t.Fatal("nil rng must error")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	q, _ := NewMM1(0.5, 1)
	a, err := q.Simulate(5000, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := q.Simulate(5000, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanSojourn != b.MeanSojourn || a.MeanWait != b.MeanWait {
		t.Fatal("same seed must reproduce identical simulation")
	}
}

func TestCompositeArrivalRate(t *testing.T) {
	got, err := CompositeArrivalRate(0.2, 0.1, 0.0667)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.3667) > 1e-9 {
		t.Fatalf("composite rate = %v, want 0.3667", got)
	}
	if _, err := CompositeArrivalRate(-1, 2); !errors.Is(err, ErrRate) {
		t.Fatal("negative rate must error")
	}
	if _, err := CompositeArrivalRate(0, 0); !errors.Is(err, ErrRate) {
		t.Fatal("all-zero rates must error")
	}
}

// Property: for any stable system, W > Wq > 0, L > Lq > 0 and
// W = Wq + 1/µ.
func TestMM1Invariants(t *testing.T) {
	f := func(a, b float64) bool {
		lambda := 0.01 + math.Abs(math.Mod(a, 10))
		mu := lambda + 0.01 + math.Abs(math.Mod(b, 10))
		q, err := NewMM1(lambda, mu)
		if err != nil {
			return false
		}
		if q.MeanSojourn() <= q.MeanWait() || q.MeanWait() < 0 {
			return false
		}
		if q.MeanNumber() <= q.MeanQueueLength() {
			return false
		}
		return math.Abs(q.MeanSojourn()-(q.MeanWait()+1/mu)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: utilization increases with λ at fixed µ.
func TestMM1UtilizationMonotonic(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		mu := 1.0
		l1 := 0.1 + 0.4*rng.Float64()
		l2 := l1 + 0.1 + 0.3*rng.Float64()
		if l2 >= mu {
			return true
		}
		q1, err1 := NewMM1(l1, mu)
		q2, err2 := NewMM1(l2, mu)
		if err1 != nil || err2 != nil {
			return false
		}
		return q2.MeanSojourn() > q1.MeanSojourn() && q2.Rho() > q1.Rho()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
