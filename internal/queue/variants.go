package queue

import (
	"fmt"
	"math"
)

// MM1K is an M/M/1/K queue: Poisson arrivals, exponential service, one
// server, and a finite buffer of K packets (including the one in
// service). Arrivals finding the buffer full are dropped — the realistic
// behaviour of a bounded XR input buffer under sensor bursts, and the
// mechanism behind lost information updates in the drop-aware AoI model.
// Unlike M/M/1, the finite system is stable for any ρ, including ρ ≥ 1.
type MM1K struct {
	// Lambda is the arrival rate (1/ms).
	Lambda float64
	// Mu is the service rate (1/ms).
	Mu float64
	// K is the buffer capacity (≥ 1).
	K int
}

// NewMM1K validates and constructs a finite-buffer queue.
func NewMM1K(lambda, mu float64, k int) (MM1K, error) {
	if lambda <= 0 || mu <= 0 {
		return MM1K{}, fmt.Errorf("%w: λ=%v µ=%v", ErrRate, lambda, mu)
	}
	if k < 1 {
		return MM1K{}, fmt.Errorf("%w: buffer capacity %d", ErrRate, k)
	}
	return MM1K{Lambda: lambda, Mu: mu, K: k}, nil
}

// Rho returns the offered load λ/µ (may exceed 1).
func (q MM1K) Rho() float64 { return q.Lambda / q.Mu }

// stateProb returns P(n packets in system) for n = 0..K. The birth–death
// stationary distribution p_n = ρⁿ/Σρⁱ is computed by direct summation:
// the textbook geometric closed form cancels catastrophically near ρ = 1,
// while the sum is exact for the bounded K values a finite buffer has.
func (q MM1K) stateProb(n int) float64 {
	rho := q.Rho()
	var norm float64
	pow := 1.0
	for i := 0; i <= q.K; i++ {
		norm += pow
		pow *= rho
	}
	return math.Pow(rho, float64(n)) / norm
}

// BlockingProbability returns P_K, the probability an arrival is dropped.
func (q MM1K) BlockingProbability() float64 {
	return q.stateProb(q.K)
}

// MeanNumber returns the mean number of packets in the system.
func (q MM1K) MeanNumber() float64 {
	rho := q.Rho()
	var norm, weighted float64
	pow := 1.0
	for n := 0; n <= q.K; n++ {
		norm += pow
		weighted += float64(n) * pow
		pow *= rho
	}
	return weighted / norm
}

// MeanSojourn returns the mean time an *accepted* packet spends in the
// system, via Little's law on the effective arrival rate λ(1−P_K).
func (q MM1K) MeanSojourn() float64 {
	effLambda := q.Lambda * (1 - q.BlockingProbability())
	if effLambda <= 0 {
		return 0
	}
	return q.MeanNumber() / effLambda
}

// Throughput returns the accepted-packet rate λ(1−P_K).
func (q MM1K) Throughput() float64 {
	return q.Lambda * (1 - q.BlockingProbability())
}

// MD1 is an M/D/1 queue: Poisson arrivals and deterministic service — the
// right model when the buffer's consumer is a fixed-cost operation (e.g.
// a renderer draining one item per refresh tick) rather than an
// exponential server. Pollaczek–Khinchine gives the closed forms.
type MD1 struct {
	// Lambda is the arrival rate (1/ms).
	Lambda float64
	// ServiceMs is the constant service time (ms); the service rate is
	// 1/ServiceMs.
	ServiceMs float64
}

// NewMD1 validates and constructs a deterministic-service queue.
func NewMD1(lambda, serviceMs float64) (MD1, error) {
	if lambda <= 0 || serviceMs <= 0 {
		return MD1{}, fmt.Errorf("%w: λ=%v D=%v", ErrRate, lambda, serviceMs)
	}
	if lambda*serviceMs >= 1 {
		return MD1{}, fmt.Errorf("%w: λ=%v D=%v (ρ=%v)", ErrUnstable, lambda, serviceMs, lambda*serviceMs)
	}
	return MD1{Lambda: lambda, ServiceMs: serviceMs}, nil
}

// Rho returns the utilization λ·D.
func (q MD1) Rho() float64 { return q.Lambda * q.ServiceMs }

// MeanWait returns the Pollaczek–Khinchine mean queueing delay:
// Wq = ρD / (2(1−ρ)).
func (q MD1) MeanWait() float64 {
	rho := q.Rho()
	return rho * q.ServiceMs / (2 * (1 - rho))
}

// MeanSojourn returns Wq + D.
func (q MD1) MeanSojourn() float64 { return q.MeanWait() + q.ServiceMs }

// MeanNumber returns L = λ·W (Little's law).
func (q MD1) MeanNumber() float64 { return q.Lambda * q.MeanSojourn() }
