// Package queue models the XR input buffer. The paper assumes the buffer
// holding captured frames, volumetric data, and external sensor packets is a
// stable M/M/1 queue (Section IV-B and VI-B): the closed-form sojourn time
// 1/(µ−λ) enters both the rendering latency (Eq. 7) and the AoI model
// (Eq. 22). This package provides those closed forms plus a discrete-event
// M/M/1 simulator used to generate ground truth for validating them.
package queue

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/stats"
)

// Common errors.
var (
	// ErrUnstable indicates λ >= µ, for which the M/M/1 steady state does
	// not exist.
	ErrUnstable = errors.New("queue: unstable system (arrival rate >= service rate)")
	// ErrRate indicates a non-positive rate parameter.
	ErrRate = errors.New("queue: rates must be positive")
)

// MM1 is a stable M/M/1 queueing system with Poisson arrivals at rate
// Lambda and exponential service at rate Mu (both in events per
// millisecond to match the framework's latency unit).
type MM1 struct {
	// Lambda is the mean arrival rate (1/ms).
	Lambda float64
	// Mu is the mean service rate (1/ms).
	Mu float64
}

// NewMM1 validates and constructs a stable M/M/1 system.
func NewMM1(lambda, mu float64) (MM1, error) {
	if lambda <= 0 || mu <= 0 {
		return MM1{}, fmt.Errorf("%w: λ=%v µ=%v", ErrRate, lambda, mu)
	}
	if lambda >= mu {
		return MM1{}, fmt.Errorf("%w: λ=%v µ=%v", ErrUnstable, lambda, mu)
	}
	return MM1{Lambda: lambda, Mu: mu}, nil
}

// Rho returns the utilization λ/µ.
func (q MM1) Rho() float64 { return q.Lambda / q.Mu }

// MeanSojourn returns the mean time a packet spends in the system
// (waiting + service): W = 1/(µ−λ). This is the T̄ of Eq. (22).
func (q MM1) MeanSojourn() float64 { return 1 / (q.Mu - q.Lambda) }

// MeanWait returns the mean queueing delay excluding service:
// Wq = ρ/(µ−λ).
func (q MM1) MeanWait() float64 { return q.Rho() / (q.Mu - q.Lambda) }

// MeanNumber returns the mean number of packets in the system:
// L = ρ/(1−ρ).
func (q MM1) MeanNumber() float64 {
	rho := q.Rho()
	return rho / (1 - rho)
}

// MeanQueueLength returns the mean number waiting (excluding in service):
// Lq = ρ²/(1−ρ).
func (q MM1) MeanQueueLength() float64 {
	rho := q.Rho()
	return rho * rho / (1 - rho)
}

// SojournQuantile returns the p-th quantile of the sojourn-time
// distribution, which for M/M/1 is exponential with rate µ−λ.
func (q MM1) SojournQuantile(p float64) (float64, error) {
	if p <= 0 || p >= 1 {
		return 0, fmt.Errorf("queue: quantile %v out of (0,1)", p)
	}
	return -math.Log(1-p) / (q.Mu - q.Lambda), nil
}

// SimResult summarizes a discrete-event simulation run.
type SimResult struct {
	// Served is the number of completed packets.
	Served int
	// MeanSojourn is the empirical mean time in system (ms).
	MeanSojourn float64
	// MeanWait is the empirical mean queueing delay (ms).
	MeanWait float64
	// Utilization is the fraction of time the server was busy.
	Utilization float64
	// Sojourns holds per-packet system times for distribution checks.
	Sojourns []float64
}

// Simulate runs a single-server FIFO discrete-event simulation of the
// queue for n packets using rng, returning empirical statistics. A warm-up
// fraction of 10% of packets is discarded so the estimate reflects steady
// state.
func (q MM1) Simulate(n int, rng *stats.RNG) (SimResult, error) {
	if n <= 0 {
		return SimResult{}, fmt.Errorf("queue: packet count must be positive, have %d", n)
	}
	if rng == nil {
		return SimResult{}, errors.New("queue: nil rng")
	}

	warm := n / 10
	var (
		clock        float64 // arrival clock
		serverFreeAt float64
		busyTime     float64
		lastDepart   float64
		sojourns     = make([]float64, 0, n-warm)
		waits        = make([]float64, 0, n-warm)
	)
	for i := 0; i < n; i++ {
		ia, err := rng.Exponential(q.Lambda)
		if err != nil {
			return SimResult{}, fmt.Errorf("interarrival: %w", err)
		}
		clock += ia
		sv, err := rng.Exponential(q.Mu)
		if err != nil {
			return SimResult{}, fmt.Errorf("service: %w", err)
		}
		start := clock
		if serverFreeAt > start {
			start = serverFreeAt
		}
		depart := start + sv
		serverFreeAt = depart
		busyTime += sv
		lastDepart = depart
		if i >= warm {
			sojourns = append(sojourns, depart-clock)
			waits = append(waits, start-clock)
		}
	}

	meanS, err := stats.Mean(sojourns)
	if err != nil {
		return SimResult{}, fmt.Errorf("mean sojourn: %w", err)
	}
	meanW, err := stats.Mean(waits)
	if err != nil {
		return SimResult{}, fmt.Errorf("mean wait: %w", err)
	}
	util := 0.0
	if lastDepart > 0 {
		util = busyTime / lastDepart
	}
	return SimResult{
		Served:      len(sojourns),
		MeanSojourn: meanS,
		MeanWait:    meanW,
		Utilization: util,
		Sojourns:    sojourns,
	}, nil
}

// CompositeArrivalRate sums the arrival rates of independent Poisson
// streams; the superposition of Poisson processes is Poisson, which is how
// the input buffer sees captured frames, volumetric data, and the external
// sensors together (Fig. 2).
func CompositeArrivalRate(rates ...float64) (float64, error) {
	var sum float64
	for _, r := range rates {
		if r < 0 {
			return 0, fmt.Errorf("%w: component rate %v", ErrRate, r)
		}
		sum += r
	}
	if sum == 0 {
		return 0, fmt.Errorf("%w: all component rates zero", ErrRate)
	}
	return sum, nil
}
