package queue

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestNewMM1KValidation(t *testing.T) {
	if _, err := NewMM1K(0, 1, 5); !errors.Is(err, ErrRate) {
		t.Fatal("zero lambda must error")
	}
	if _, err := NewMM1K(1, 0, 5); !errors.Is(err, ErrRate) {
		t.Fatal("zero mu must error")
	}
	if _, err := NewMM1K(1, 2, 0); !errors.Is(err, ErrRate) {
		t.Fatal("zero capacity must error")
	}
	// Overloaded finite systems are valid (they just drop).
	if _, err := NewMM1K(3, 1, 5); err != nil {
		t.Fatalf("overloaded MM1K: %v", err)
	}
}

func TestMM1KBlockingKnownValue(t *testing.T) {
	// ρ = 0.5, K = 2: P_2 = (1−ρ)ρ²/(1−ρ³) = 0.5·0.25/0.875 = 1/7.
	q, err := NewMM1K(0.5, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.BlockingProbability(); math.Abs(got-1.0/7) > 1e-12 {
		t.Fatalf("P_K = %v, want 1/7", got)
	}
}

func TestMM1KCriticalLoad(t *testing.T) {
	// ρ = 1: uniform state distribution, P_K = 1/(K+1), L = K/2.
	q, err := NewMM1K(1, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.BlockingProbability(); math.Abs(got-0.2) > 1e-9 {
		t.Fatalf("critical P_K = %v, want 0.2", got)
	}
	if got := q.MeanNumber(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("critical L = %v, want 2", got)
	}
}

func TestMM1KApproachesMM1ForLargeBuffers(t *testing.T) {
	inf, err := NewMM1(0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	fin, err := NewMM1K(0.5, 1, 60)
	if err != nil {
		t.Fatal(err)
	}
	if fin.BlockingProbability() > 1e-15 {
		t.Fatalf("large-buffer blocking = %v, want ≈0", fin.BlockingProbability())
	}
	if math.Abs(fin.MeanSojourn()-inf.MeanSojourn()) > 1e-9 {
		t.Fatalf("large-buffer W = %v vs M/M/1 %v", fin.MeanSojourn(), inf.MeanSojourn())
	}
	if math.Abs(fin.Throughput()-0.5) > 1e-12 {
		t.Fatalf("throughput = %v, want 0.5", fin.Throughput())
	}
}

func TestMM1KOverload(t *testing.T) {
	q, err := NewMM1K(5, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Heavily overloaded: most arrivals drop, throughput saturates near µ.
	if q.BlockingProbability() < 0.7 {
		t.Fatalf("overload blocking = %v, want high", q.BlockingProbability())
	}
	if q.Throughput() > q.Mu {
		t.Fatal("throughput cannot exceed service rate")
	}
}

func TestNewMD1Validation(t *testing.T) {
	if _, err := NewMD1(0, 1); !errors.Is(err, ErrRate) {
		t.Fatal("zero lambda must error")
	}
	if _, err := NewMD1(1, 0); !errors.Is(err, ErrRate) {
		t.Fatal("zero service must error")
	}
	if _, err := NewMD1(1, 1); !errors.Is(err, ErrUnstable) {
		t.Fatal("ρ=1 must be unstable")
	}
}

func TestMD1KnownValues(t *testing.T) {
	// λ = 0.5, D = 1 → ρ = 0.5, Wq = 0.5·1/(2·0.5) = 0.5, W = 1.5.
	q, err := NewMD1(0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.MeanWait(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Wq = %v, want 0.5", got)
	}
	if got := q.MeanSojourn(); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("W = %v, want 1.5", got)
	}
	if got := q.MeanNumber(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("L = %v, want 0.75", got)
	}
}

func TestMD1HalvesMM1Wait(t *testing.T) {
	// At equal utilization, deterministic service halves the queueing
	// delay of exponential service (PK factor (1+C²)/2 with C²=0).
	mm1, err := NewMM1(0.6, 1)
	if err != nil {
		t.Fatal(err)
	}
	md1, err := NewMD1(0.6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := md1.MeanWait(), mm1.MeanWait()/2; math.Abs(got-want) > 1e-12 {
		t.Fatalf("M/D/1 Wq = %v, want half of M/M/1 (%v)", got, want)
	}
}

// Property: blocking probability decreases with buffer size and lies in
// (0,1); throughput increases with buffer size.
func TestMM1KMonotonicInK(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		lambda := 0.2 + 1.5*rng.Float64()
		mu := 0.2 + 1.5*rng.Float64()
		k := 1 + rng.Intn(20)
		small, err1 := NewMM1K(lambda, mu, k)
		large, err2 := NewMM1K(lambda, mu, k+5)
		if err1 != nil || err2 != nil {
			return false
		}
		pS, pL := small.BlockingProbability(), large.BlockingProbability()
		if pS <= 0 || pS >= 1 || pL <= 0 || pL >= 1 {
			return false
		}
		// In deep overload blocking saturates, so allow equality to
		// machine precision.
		return pL <= pS+1e-12 && large.Throughput() > small.Throughput()-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: M/M/1/K state probabilities sum to one.
func TestMM1KProbabilitiesSum(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		q, err := NewMM1K(0.1+2*rng.Float64(), 0.1+2*rng.Float64(), 1+rng.Intn(15))
		if err != nil {
			return false
		}
		var sum float64
		for n := 0; n <= q.K; n++ {
			p := q.stateProb(n)
			if p < 0 {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
