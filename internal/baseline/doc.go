// Package baseline re-implements the two state-of-the-art analytical
// models the paper compares against (Section VIII-D):
//
//   - FACT [20] — an edge-network-orchestrator model that folds the whole
//     service latency into computation + wireless + core-network terms.
//     Computation latency is a pure cycles/capability ratio — one
//     complexity coefficient over the effective clock frequency — with no
//     per-segment breakdown, no memory term, and no constant overhead;
//     energy is a single power constant times latency.
//
//   - LEAF [21] — an edge-assisted energy-aware object-detection model
//     that does break the pipeline into segments (so it carries
//     per-segment constants FACT lacks) but keeps the cycles-style
//     computation form: every computation term scales exactly as 1/f with
//     clock frequency, and segment powers are constants rather than
//     frequency-dependent.
//
// Both baselines estimate their constants from measurements at a small
// reference campaign (the way the original papers parameterized their
// models on their own testbeds) and are then applied across the
// evaluation sweep. Their structural assumption — computation capability
// ≡ raw clock frequency — is precisely the gap the proposed framework's
// allocated-resource regression (Eq. 3) closes, and it is what costs them
// accuracy away from the reference operating point.
//
// Calibration mutates a model; prediction (LatencyMs/EnergyMJ) is
// read-only afterwards, so a calibrated model may be shared across sweep
// workers. Feeding Calibrate observations measured with deterministic
// per-cell seeds (testbed.MeasureFramesSeeded) makes the calibrated
// constants — and every downstream comparison — independent of
// measurement order and worker count.
package baseline
