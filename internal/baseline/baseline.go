package baseline

import (
	"errors"
	"fmt"

	"repro/internal/codec"
	"repro/internal/pipeline"
	"repro/internal/regress"
)

// Common errors.
var (
	// ErrNotCalibrated indicates prediction before calibration.
	ErrNotCalibrated = errors.New("baseline: model not calibrated")
	// ErrObservations indicates unusable calibration data.
	ErrObservations = errors.New("baseline: bad observations")
)

// Observation is one ground-truth calibration point.
type Observation struct {
	// Scenario is the operating configuration.
	Scenario *pipeline.Scenario
	// LatencyMs is the measured end-to-end latency.
	LatencyMs float64
	// EnergyMJ is the measured end-to-end energy.
	EnergyMJ float64
}

// CalibratePair calibrates both baselines on the same reference
// campaign, the way the Fig. 5 comparison uses them.
func CalibratePair(obs []Observation) (*FACT, *LEAF, error) {
	fact := NewFACT()
	if err := fact.Calibrate(obs); err != nil {
		return nil, nil, fmt.Errorf("calibrate FACT: %w", err)
	}
	leaf := NewLEAF()
	if err := leaf.Calibrate(obs); err != nil {
		return nil, nil, fmt.Errorf("calibrate LEAF: %w", err)
	}
	return fact, leaf, nil
}

// effectiveGHz is the naive capability both baselines share: the raw
// utilization-weighted clock frequency, with no allocated-resource
// regression behind it.
func effectiveGHz(sc *pipeline.Scenario) float64 {
	return sc.CPUShare*sc.CPUFreqGHz + (1-sc.CPUShare)*sc.GPUFreqGHz
}

// feature is the raw regressor vector shared by both baselines:
// [s_f1, f_eff].
func feature(sc *pipeline.Scenario) []float64 {
	return []float64{sc.FrameSizePx2, effectiveGHz(sc)}
}

// wirelessMs is the transmission time both baselines model analytically
// (payload over link throughput plus propagation); zero for local
// inference.
func wirelessMs(sc *pipeline.Scenario) (float64, error) {
	if sc.Mode != pipeline.ModeRemote {
		return 0, nil
	}
	payload, err := codec.CompressedSizeMB(sc.Encoding)
	if err != nil {
		return 0, fmt.Errorf("payload: %w", err)
	}
	return sc.EdgeLink.TransmitLatencyMs(payload + sc.ResultSizeMB)
}

// FACT is the re-implemented FACT model. Latency:
//
//	L = 1/fps + k·s_f1/f_eff + L_wireless + L_core
//
// with a single calibrated complexity-per-capability coefficient k and a
// fixed core-network allowance. Energy: E = p·L with one calibrated
// power constant.
type FACT struct {
	// CoreNetworkMs is the fixed core-network latency allowance.
	CoreNetworkMs float64

	latFit *regress.Fit
	enFit  *regress.Fit
}

// NewFACT returns an uncalibrated FACT with a 4 ms core-network allowance.
func NewFACT() *FACT { return &FACT{CoreNetworkMs: 4} }

// factTerms is FACT's single cycles-over-frequency regressor.
func factTerms() []regress.Term {
	return []regress.Term{
		{Name: "s/f", Eval: func(x []float64) float64 { return x[0] / x[1] }},
	}
}

// fixedLatencyMs is the part of FACT's latency model with no free
// parameters.
func (f *FACT) fixedLatencyMs(sc *pipeline.Scenario) (float64, error) {
	w, err := wirelessMs(sc)
	if err != nil {
		return 0, err
	}
	core := 0.0
	if sc.Mode == pipeline.ModeRemote {
		core = f.CoreNetworkMs
	}
	return 1000/sc.FPS + w + core, nil
}

// Calibrate estimates FACT's complexity coefficient and power constant
// from a reference measurement campaign.
func (f *FACT) Calibrate(obs []Observation) error {
	if len(obs) < 2 {
		return fmt.Errorf("%w: need >= 2 observations, have %d", ErrObservations, len(obs))
	}
	xs := make([][]float64, 0, len(obs))
	latResidual := make([]float64, 0, len(obs))
	for _, o := range obs {
		if o.Scenario == nil {
			return fmt.Errorf("%w: nil scenario", ErrObservations)
		}
		fixed, err := f.fixedLatencyMs(o.Scenario)
		if err != nil {
			return fmt.Errorf("fixed terms: %w", err)
		}
		xs = append(xs, feature(o.Scenario))
		latResidual = append(latResidual, o.LatencyMs-fixed)
	}
	latFit, err := regress.FitOLS(factTerms(), xs, latResidual)
	if err != nil {
		return fmt.Errorf("latency calibration: %w", err)
	}
	f.latFit = latFit

	// Energy: E = p·L_pred — one power constant against predicted
	// latency.
	exs := make([][]float64, 0, len(obs))
	eys := make([]float64, 0, len(obs))
	for _, o := range obs {
		l, err := f.latencyWithFit(o.Scenario)
		if err != nil {
			return err
		}
		exs = append(exs, []float64{l})
		eys = append(eys, o.EnergyMJ)
	}
	enFit, err := regress.FitOLS([]regress.Term{regress.Linear("L", 0)}, exs, eys)
	if err != nil {
		return fmt.Errorf("energy calibration: %w", err)
	}
	f.enFit = enFit
	return nil
}

func (f *FACT) latencyWithFit(sc *pipeline.Scenario) (float64, error) {
	fixed, err := f.fixedLatencyMs(sc)
	if err != nil {
		return 0, err
	}
	return fixed + f.latFit.Predict(feature(sc)), nil
}

// LatencyMs predicts end-to-end latency.
func (f *FACT) LatencyMs(sc *pipeline.Scenario) (float64, error) {
	if f.latFit == nil {
		return 0, ErrNotCalibrated
	}
	if sc == nil {
		return 0, fmt.Errorf("%w: nil scenario", ErrObservations)
	}
	return f.latencyWithFit(sc)
}

// EnergyMJ predicts end-to-end energy.
func (f *FACT) EnergyMJ(sc *pipeline.Scenario) (float64, error) {
	if f.enFit == nil {
		return 0, ErrNotCalibrated
	}
	l, err := f.LatencyMs(sc)
	if err != nil {
		return 0, err
	}
	return f.enFit.Predict([]float64{l}), nil
}

// LEAF is the re-implemented LEAF model. Its per-segment breakdown gives
// it a constant-work and a size-proportional-work term, but both scale
// with raw clock frequency (the cycles assumption):
//
//	L = 1/fps + (a + b·s_f1)/f_eff + L_wireless
//
// Energy separates computation from radio with constant segment powers:
//
//	E = e0 + e1·L_comp + e2·L_radio
type LEAF struct {
	latFit *regress.Fit
	enFit  *regress.Fit

	radioDropped bool
}

// NewLEAF returns an uncalibrated LEAF.
func NewLEAF() *LEAF { return &LEAF{} }

// leafLatTerms is LEAF's two-segment cycles design: a/f + b·s/f.
func leafLatTerms() []regress.Term {
	return []regress.Term{
		{Name: "1/f", Eval: func(x []float64) float64 { return 1 / x[1] }},
		{Name: "s/f", Eval: func(x []float64) float64 { return x[0] / x[1] }},
	}
}

func (l *LEAF) fixedLatencyMs(sc *pipeline.Scenario) (float64, error) {
	w, err := wirelessMs(sc)
	if err != nil {
		return 0, err
	}
	return 1000/sc.FPS + w, nil
}

// Calibrate estimates LEAF's per-segment constants from a reference
// measurement campaign.
func (l *LEAF) Calibrate(obs []Observation) error {
	if len(obs) < 3 {
		return fmt.Errorf("%w: need >= 3 observations, have %d", ErrObservations, len(obs))
	}
	xs := make([][]float64, 0, len(obs))
	latResidual := make([]float64, 0, len(obs))
	for _, o := range obs {
		if o.Scenario == nil {
			return fmt.Errorf("%w: nil scenario", ErrObservations)
		}
		fixed, err := l.fixedLatencyMs(o.Scenario)
		if err != nil {
			return fmt.Errorf("fixed terms: %w", err)
		}
		xs = append(xs, feature(o.Scenario))
		latResidual = append(latResidual, o.LatencyMs-fixed)
	}
	latFit, err := regress.FitOLS(leafLatTerms(), xs, latResidual)
	if err != nil {
		return fmt.Errorf("latency calibration: %w", err)
	}
	l.latFit = latFit

	// Energy: segment-aware constant powers — intercept, computation
	// term, radio term.
	exs := make([][]float64, 0, len(obs))
	eys := make([]float64, 0, len(obs))
	for _, o := range obs {
		comp := l.latFit.Predict(feature(o.Scenario))
		radio, err := wirelessMs(o.Scenario)
		if err != nil {
			return err
		}
		exs = append(exs, []float64{comp, radio})
		eys = append(eys, o.EnergyMJ)
	}
	enTerms := []regress.Term{
		regress.Intercept(),
		regress.Linear("L_comp", 0),
		regress.Linear("L_radio", 1),
	}
	// A constant radio column (all-local campaigns, or remote campaigns
	// with a fixed payload and link) is collinear with the intercept;
	// drop it rather than fail on a singular design — the intercept
	// absorbs the constant radio energy.
	radioMin, radioMax := exs[0][1], exs[0][1]
	for _, x := range exs {
		if x[1] < radioMin {
			radioMin = x[1]
		}
		if x[1] > radioMax {
			radioMax = x[1]
		}
	}
	l.radioDropped = radioMax-radioMin < 1e-9*(1+radioMax)
	if l.radioDropped {
		enTerms = enTerms[:2]
	}
	enFit, err := regress.FitOLS(enTerms, exs, eys)
	if err != nil {
		return fmt.Errorf("energy calibration: %w", err)
	}
	l.enFit = enFit
	return nil
}

// LatencyMs predicts end-to-end latency.
func (l *LEAF) LatencyMs(sc *pipeline.Scenario) (float64, error) {
	if l.latFit == nil {
		return 0, ErrNotCalibrated
	}
	if sc == nil {
		return 0, fmt.Errorf("%w: nil scenario", ErrObservations)
	}
	fixed, err := l.fixedLatencyMs(sc)
	if err != nil {
		return 0, err
	}
	return fixed + l.latFit.Predict(feature(sc)), nil
}

// EnergyMJ predicts end-to-end energy.
func (l *LEAF) EnergyMJ(sc *pipeline.Scenario) (float64, error) {
	if l.enFit == nil {
		return 0, ErrNotCalibrated
	}
	if sc == nil {
		return 0, fmt.Errorf("%w: nil scenario", ErrObservations)
	}
	comp := l.latFit.Predict(feature(sc))
	radio, err := wirelessMs(sc)
	if err != nil {
		return 0, err
	}
	return l.enFit.Predict([]float64{comp, radio}), nil
}
