package baseline

import (
	"errors"
	"math"
	"testing"

	"repro/internal/device"
	"repro/internal/pipeline"
	"repro/internal/stats"
	"repro/internal/testbed"
)

// calibrationSet builds ground-truth observations over the Fig. 4 sweep
// (frame size × CPU frequency) from the synthetic bench.
func calibrationSet(t *testing.T, bench *testbed.Bench, mode pipeline.InferenceMode) []Observation {
	t.Helper()
	d, err := device.ByName("XR1")
	if err != nil {
		t.Fatal(err)
	}
	var obs []Observation
	for _, size := range []float64{300, 400, 500, 600, 700} {
		for _, freq := range []float64{1, 1.5, 2, 2.5, 3} {
			sc, err := pipeline.NewScenario(d,
				pipeline.WithMode(mode),
				pipeline.WithFrameSize(size),
				pipeline.WithCPUFreq(freq),
			)
			if err != nil {
				t.Fatal(err)
			}
			m, err := bench.MeasureFrames(sc, 20)
			if err != nil {
				t.Fatal(err)
			}
			obs = append(obs, Observation{
				Scenario: sc, LatencyMs: m.LatencyMs, EnergyMJ: m.EnergyMJ,
			})
		}
	}
	return obs
}

func TestFACTNotCalibrated(t *testing.T) {
	f := NewFACT()
	if _, err := f.LatencyMs(nil); !errors.Is(err, ErrNotCalibrated) {
		t.Fatal("uncalibrated FACT must refuse to predict")
	}
	if _, err := f.EnergyMJ(nil); !errors.Is(err, ErrNotCalibrated) {
		t.Fatal("uncalibrated FACT must refuse energy")
	}
}

func TestLEAFNotCalibrated(t *testing.T) {
	l := NewLEAF()
	if _, err := l.LatencyMs(nil); !errors.Is(err, ErrNotCalibrated) {
		t.Fatal("uncalibrated LEAF must refuse to predict")
	}
	if _, err := l.EnergyMJ(nil); !errors.Is(err, ErrNotCalibrated) {
		t.Fatal("uncalibrated LEAF must refuse energy")
	}
}

func TestCalibrateRejectsBadInput(t *testing.T) {
	if err := NewFACT().Calibrate(nil); !errors.Is(err, ErrObservations) {
		t.Fatal("empty calibration must error")
	}
	if err := NewLEAF().Calibrate(nil); !errors.Is(err, ErrObservations) {
		t.Fatal("empty calibration must error")
	}
	bad := make([]Observation, 8)
	if err := NewFACT().Calibrate(bad); !errors.Is(err, ErrObservations) {
		t.Fatal("nil scenarios must error")
	}
	if err := NewLEAF().Calibrate(bad); !errors.Is(err, ErrObservations) {
		t.Fatal("nil scenarios must error")
	}
}

func TestBaselinesPredictAfterCalibration(t *testing.T) {
	bench := testbed.NewBench(5)
	obs := calibrationSet(t, bench, pipeline.ModeRemote)

	fact := NewFACT()
	if err := fact.Calibrate(obs); err != nil {
		t.Fatal(err)
	}
	leaf := NewLEAF()
	if err := leaf.Calibrate(obs); err != nil {
		t.Fatal(err)
	}

	for _, o := range obs {
		fl, err := fact.LatencyMs(o.Scenario)
		if err != nil {
			t.Fatal(err)
		}
		ll, err := leaf.LatencyMs(o.Scenario)
		if err != nil {
			t.Fatal(err)
		}
		if fl <= 0 || ll <= 0 {
			t.Fatalf("non-positive baseline latency: fact=%v leaf=%v", fl, ll)
		}
		fe, err := fact.EnergyMJ(o.Scenario)
		if err != nil {
			t.Fatal(err)
		}
		le, err := leaf.EnergyMJ(o.Scenario)
		if err != nil {
			t.Fatal(err)
		}
		if fe <= 0 || le <= 0 {
			t.Fatalf("non-positive baseline energy: fact=%v leaf=%v", fe, le)
		}
	}
}

func TestLEAFBeatsFACTOnTrainingSweep(t *testing.T) {
	// The paper's Fig. 5 ordering: LEAF's per-segment structure tracks
	// ground truth more closely than FACT's monolithic form.
	bench := testbed.NewBench(8)
	obs := calibrationSet(t, bench, pipeline.ModeRemote)
	fact := NewFACT()
	if err := fact.Calibrate(obs); err != nil {
		t.Fatal(err)
	}
	leaf := NewLEAF()
	if err := leaf.Calibrate(obs); err != nil {
		t.Fatal(err)
	}

	var factAcc, leafAcc float64
	for _, o := range obs {
		fl, err := fact.LatencyMs(o.Scenario)
		if err != nil {
			t.Fatal(err)
		}
		ll, err := leaf.LatencyMs(o.Scenario)
		if err != nil {
			t.Fatal(err)
		}
		factAcc += stats.NormalizedAccuracy(fl, o.LatencyMs)
		leafAcc += stats.NormalizedAccuracy(ll, o.LatencyMs)
	}
	factAcc /= float64(len(obs))
	leafAcc /= float64(len(obs))
	if leafAcc <= factAcc {
		t.Fatalf("LEAF accuracy %v must beat FACT %v", leafAcc, factAcc)
	}
}

func TestBaselineLatencyMonotonicInFrameSize(t *testing.T) {
	bench := testbed.NewBench(12)
	obs := calibrationSet(t, bench, pipeline.ModeRemote)
	fact := NewFACT()
	if err := fact.Calibrate(obs); err != nil {
		t.Fatal(err)
	}
	d, err := device.ByName("XR1")
	if err != nil {
		t.Fatal(err)
	}
	small, err := pipeline.NewScenario(d, pipeline.WithMode(pipeline.ModeRemote), pipeline.WithFrameSize(300))
	if err != nil {
		t.Fatal(err)
	}
	large, err := pipeline.NewScenario(d, pipeline.WithMode(pipeline.ModeRemote), pipeline.WithFrameSize(700))
	if err != nil {
		t.Fatal(err)
	}
	ls, err := fact.LatencyMs(small)
	if err != nil {
		t.Fatal(err)
	}
	ll, err := fact.LatencyMs(large)
	if err != nil {
		t.Fatal(err)
	}
	if ll <= ls {
		t.Fatalf("FACT latency must grow with frame size: %v vs %v", ls, ll)
	}
}

func TestLEAFLocalModeCalibration(t *testing.T) {
	// Local-only observations zero the radio column; calibration must
	// drop it rather than fail on a singular design.
	bench := testbed.NewBench(21)
	obs := calibrationSet(t, bench, pipeline.ModeLocal)
	leaf := NewLEAF()
	if err := leaf.Calibrate(obs); err != nil {
		t.Fatal(err)
	}
	e, err := leaf.EnergyMJ(obs[0].Scenario)
	if err != nil {
		t.Fatal(err)
	}
	if e <= 0 {
		t.Fatalf("local-mode LEAF energy = %v", e)
	}
}

func TestBaselinesNilScenarioAfterCalibration(t *testing.T) {
	bench := testbed.NewBench(30)
	obs := calibrationSet(t, bench, pipeline.ModeRemote)
	fact := NewFACT()
	if err := fact.Calibrate(obs); err != nil {
		t.Fatal(err)
	}
	leaf := NewLEAF()
	if err := leaf.Calibrate(obs); err != nil {
		t.Fatal(err)
	}
	if _, err := fact.LatencyMs(nil); err == nil {
		t.Fatal("nil scenario must error")
	}
	if _, err := leaf.LatencyMs(nil); err == nil {
		t.Fatal("nil scenario must error")
	}
	if _, err := leaf.EnergyMJ(nil); err == nil {
		t.Fatal("nil scenario must error")
	}
}

func TestFACTReasonableOnTrainingPoints(t *testing.T) {
	// Even FACT should land within 50% of truth after calibration — it
	// is a published model, not a strawman.
	bench := testbed.NewBench(17)
	obs := calibrationSet(t, bench, pipeline.ModeRemote)
	fact := NewFACT()
	if err := fact.Calibrate(obs); err != nil {
		t.Fatal(err)
	}
	for _, o := range obs {
		l, err := fact.LatencyMs(o.Scenario)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(l-o.LatencyMs) / o.LatencyMs; rel > 0.5 {
			t.Fatalf("FACT off by %v on a training point", rel)
		}
	}
}
