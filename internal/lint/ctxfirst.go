package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// Execution-surface matching for the must-accept-a-context rule:
// exported methods that execute work on runner/executor/job types. The
// repo's cancelation story — a disconnected client aborts its in-flight
// sweep, a canceled dispatch kills a population shard mid-run — only
// holds if every link of the execution chain threads a context.
var (
	// ctxExecTypes matches the named receiver types whose execution
	// methods must be cancelable.
	ctxExecTypes = regexp.MustCompile(`(Runner|Executor|Job)$`)
	// ctxExecMethods matches the exported method names that dispatch or
	// execute work on those types.
	ctxExecMethods = regexp.MustCompile(`^(Do|Run|Stream|Execute|Dispatch|Submit|Serve)`)
)

// CtxFirst enforces the two context conventions.
var CtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc: `enforces ctx-first cancelable APIs: any function taking a
context.Context must take it as the first parameter, and exported
execution methods (Do*/Run*/Stream*/Execute*/Dispatch*/Submit*/Serve*)
on Runner/Executor/Job types must accept a context at all, so
cancelation reaches every link of the dispatch chain`,
	Run: runCtxFirst,
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// ctxParamIndex returns the index of the first context.Context parameter
// of sig, or -1.
func ctxParamIndex(sig *types.Signature) int {
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return i
		}
	}
	return -1
}

func runCtxFirst(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				fn, ok := pass.Info.Defs[d.Name].(*types.Func)
				if !ok {
					return true
				}
				sig, ok := fn.Type().(*types.Signature)
				if !ok {
					return true
				}
				checkCtxPosition(pass, d.Pos(), fn.Name(), sig)
				checkExecMethod(pass, d, fn, sig)
			case *ast.FuncLit:
				if tv, ok := pass.Info.Types[d]; ok {
					if sig, ok := tv.Type.(*types.Signature); ok {
						checkCtxPosition(pass, d.Pos(), "function literal", sig)
					}
				}
			}
			return true
		})
	}
}

// checkCtxPosition reports a context parameter that is not first.
func checkCtxPosition(pass *Pass, pos token.Pos, name string, sig *types.Signature) {
	if idx := ctxParamIndex(sig); idx > 0 {
		pass.Reportf(pos,
			"%s takes a context.Context as parameter %d; the context must be the first parameter", name, idx+1)
	}
}

// checkExecMethod reports an exported execution method on a
// runner/executor/job type that accepts no context at all.
func checkExecMethod(pass *Pass, d *ast.FuncDecl, fn *types.Func, sig *types.Signature) {
	recv := sig.Recv()
	if recv == nil || !fn.Exported() {
		return
	}
	if !ctxExecMethods.MatchString(fn.Name()) {
		return
	}
	rt := recv.Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || !ctxExecTypes.MatchString(named.Obj().Name()) {
		return
	}
	if ctxParamIndex(sig) >= 0 {
		return
	}
	pass.Reportf(d.Pos(),
		"exported execution method %s.%s accepts no context.Context; cancelation cannot reach it (add a ctx parameter or annotate a compatibility wrapper)",
		named.Obj().Name(), fn.Name())
}
