package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// LockHygiene flags operations that can block indefinitely while a
// sync.Mutex/RWMutex is lexically held — the exact shape behind the
// cache-I/O-under-mutex fix (PR 4) and the dispatcher hold-and-wait
// deadlock (PR 8). The analysis is lexical and per function body:
// statements between a mu.Lock()/mu.RLock() and the matching
// mu.Unlock()/mu.RUnlock() (or to the end of the body after a
// `defer mu.Unlock()`) must not perform network or file I/O, run or
// wait on subprocesses, send/receive on channels, select without a
// default, range over a channel, sleep, wait on a WaitGroup/Cond, or
// call the testbed frame codecs against a connection.
//
// Function literals are separate bodies: a goroutine or stored closure
// does not execute under the lexically surrounding lock, and
// conversely a lock taken inside a literal is scoped to it.
var LockHygiene = &Analyzer{
	Name: "lockhygiene",
	Doc: `flags blocking operations (network/file I/O, exec, channel
send/recv, selects without default, Wait, frame encode/decode to a
conn) lexically between a mutex Lock and its Unlock in the same
function body — holding a lock across an unbounded wait is the
hold-and-wait half of every deadlock this repo has shipped`,
	Run: runLockHygiene,
}

func runLockHygiene(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch d := n.(type) {
			case *ast.FuncDecl:
				body = d.Body
			case *ast.FuncLit:
				body = d.Body
			default:
				return true
			}
			if body != nil {
				w := &lockWalker{pass: pass, held: map[string]token.Pos{}}
				w.stmts(body.List)
			}
			return true // descend: nested literals start their own walker
		})
	}
}

// lockWalker tracks lexically held mutexes through one function body.
type lockWalker struct {
	pass *Pass
	// held maps the rendered mutex expression (e.g. "s.mu") to the
	// position of its Lock call.
	held map[string]token.Pos
}

// stmts walks a statement list in source order.
func (w *lockWalker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *lockWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if w.lockTransition(call, false) {
				return
			}
		}
		w.expr(s.X)
	case *ast.DeferStmt:
		// A deferred Unlock keeps the mutex lexically held to the end of
		// the body (every later statement runs under it). Other deferred
		// calls run at return time with unknowable lock state; skip them.
		w.lockTransition(s.Call, true)
	case *ast.GoStmt:
		// The spawned goroutine does not hold the caller's locks; only
		// the call's argument expressions evaluate here.
		for _, arg := range s.Call.Args {
			w.expr(arg)
		}
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
		if key, pos := w.anyHeld(); key != "" {
			w.pass.Reportf(s.Arrow,
				"channel send while %s is held (locked at %s) can block indefinitely under the lock",
				key, w.pass.Fset.Position(pos))
		}
	case *ast.SelectStmt:
		w.selectStmt(s)
	case *ast.RangeStmt:
		w.expr(s.X)
		if key, pos := w.anyHeld(); key != "" {
			if tv, ok := w.pass.Info.Types[s.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					w.pass.Reportf(s.Range,
						"range over a channel while %s is held (locked at %s) blocks under the lock until the channel closes",
						key, w.pass.Fset.Position(pos))
				}
			}
		}
		w.stmts(s.Body.List)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e)
		}
		for _, e := range s.Lhs {
			w.expr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e)
		}
	case *ast.IfStmt:
		w.stmt(s.Init)
		w.expr(s.Cond)
		w.stmts(s.Body.List)
		w.stmt(s.Else)
	case *ast.ForStmt:
		w.stmt(s.Init)
		w.expr(s.Cond)
		w.stmts(s.Body.List)
		w.stmt(s.Post)
	case *ast.SwitchStmt:
		w.stmt(s.Init)
		w.expr(s.Tag)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.expr(e)
				}
				w.stmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init)
		w.stmt(s.Assign)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body)
			}
		}
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.IncDecStmt:
		w.expr(s.X)
	default:
		// Branch/empty statements carry no expressions.
	}
}

// selectStmt handles select: with a default clause every communication
// is non-blocking; without one the select parks the goroutine.
func (w *lockWalker) selectStmt(s *ast.SelectStmt) {
	hasDefault := false
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			hasDefault = true
		}
	}
	if key, pos := w.anyHeld(); key != "" && !hasDefault {
		w.pass.Reportf(s.Select,
			"select without a default while %s is held (locked at %s) parks the goroutine under the lock",
			key, w.pass.Fset.Position(pos))
	}
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		// The comm statements themselves were accounted for above (or are
		// non-blocking under a default); the clause bodies run normally.
		w.stmts(cc.Body)
	}
}

// expr scans an expression tree for blocking operations, skipping
// function literals (separate bodies).
func (w *lockWalker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if key, pos := w.anyHeld(); key != "" {
					w.pass.Reportf(n.OpPos,
						"channel receive while %s is held (locked at %s) can block indefinitely under the lock",
						key, w.pass.Fset.Position(pos))
				}
			}
		case *ast.CallExpr:
			w.checkBlockingCall(n)
		}
		return true
	})
}

// anyHeld returns one currently held mutex key and its lock position
// ("" when none are held).
func (w *lockWalker) anyHeld() (string, token.Pos) {
	best := ""
	var bestPos token.Pos
	for key, pos := range w.held {
		if best == "" || key < best {
			best, bestPos = key, pos
		}
	}
	return best, bestPos
}

// lockTransition updates the held set when call is a Lock/Unlock on a
// sync mutex, returning true if the call was such a transition. A
// deferred Unlock marks the mutex held for the rest of the body rather
// than releasing it.
func (w *lockWalker) lockTransition(call *ast.CallExpr, deferred bool) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := w.pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	key := w.render(sel.X)
	switch fn.Name() {
	case "Lock", "RLock":
		if deferred {
			return true // defer mu.Lock() is a bug, but not this analyzer's
		}
		w.held[key] = call.Pos()
		return true
	case "Unlock", "RUnlock":
		if !deferred {
			delete(w.held, key)
		}
		// Deferred: the mutex stays lexically held to the end of the body.
		return true
	case "TryLock", "TryRLock":
		return true // conditional acquisition: not tracked
	}
	return false
}

// render prints the receiver expression as its source text, the key two
// Lock/Unlock calls on the same mutex share.
func (w *lockWalker) render(e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, w.pass.Fset, e); err != nil {
		return "<mutex>"
	}
	return buf.String()
}

// ioMethodNames are method names that perform transport I/O when the
// receiver is a net/bufio/os/io type.
var ioMethodNames = map[string]bool{
	"Read": true, "Write": true, "Flush": true, "ReadFrom": true,
	"WriteTo": true, "ReadString": true, "ReadBytes": true,
	"ReadSlice": true, "ReadLine": true, "Peek": true, "WriteString": true,
	"ReadRune": true, "ReadByte": true, "Accept": true,
}

// blockingOsFuncs are the os package-level file-I/O entry points.
var blockingOsFuncs = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "ReadDir": true, "Mkdir": true,
	"MkdirAll": true, "MkdirTemp": true, "Remove": true, "RemoveAll": true,
	"Rename": true, "Stat": true, "Lstat": true, "Chmod": true,
	"Truncate": true, "Symlink": true, "Link": true,
}

// blockingIoFuncs are the io package-level copy/read helpers that drive
// an underlying reader/writer.
var blockingIoFuncs = map[string]bool{
	"Copy": true, "CopyN": true, "CopyBuffer": true, "ReadAll": true,
	"ReadFull": true, "ReadAtLeast": true, "WriteString": true,
}

// testbedFrameFuncs are this repo's frame-codec entry points that read
// or write a transport (the PR 8 deadlock called one with a dispatcher
// lock held). The pure in-memory codecs (EncodeBinary, DecodeBinary)
// are deliberately absent.
var testbedFrameFuncs = map[string]bool{
	"WriteFrame": true, "ReadFrame": true, "WriteFrameCodec": true,
	"ReadFrameCodec": true, "WriteRawFrame": true, "ReadRawFrame": true,
	"ReadHello": true, "Serve": true, "ServeListener": true,
	"ServeListenerOpts": true, "ServeConn": true, "ServeConnOpts": true,
}

// checkBlockingCall reports call if it is a known blocking operation and
// a mutex is held.
func (w *lockWalker) checkBlockingCall(call *ast.CallExpr) {
	key, lockPos := w.anyHeld()
	if key == "" {
		return
	}
	fn := w.pass.Callee(call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	what := blockingCallee(fn)
	if what == "" {
		return
	}
	w.pass.Reportf(call.Pos(),
		"%s while %s is held (locked at %s): blocking under a mutex invites hold-and-wait deadlocks; do the work outside the critical section",
		what, key, w.pass.Fset.Position(lockPos))
}

// blockingCallee classifies fn, returning a short description when it
// can block indefinitely and "" otherwise.
func blockingCallee(fn *types.Func) string {
	name := fn.Name()
	pkgPath := fn.Pkg().Path()
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if recv := sig.Recv(); recv != nil {
		rt := recv.Type()
		if ptr, ok := rt.(*types.Pointer); ok {
			rt = ptr.Elem()
		}
		rname := ""
		if named, ok := rt.(*types.Named); ok {
			rname = named.Obj().Name()
		}
		switch {
		case pkgPath == "sync" && name == "Wait" && (rname == "WaitGroup" || rname == "Cond"):
			return "sync." + rname + ".Wait"
		case pkgPath == "os/exec" && rname == "Cmd" &&
			(name == "Run" || name == "Wait" || name == "Output" || name == "CombinedOutput"):
			return "exec.Cmd." + name
		case pkgPath == "net" && rname == "Dialer" && strings.HasPrefix(name, "Dial"):
			return "net.Dialer." + name
		case pkgPath == "net/http" && rname == "Client" &&
			(name == "Do" || name == "Get" || name == "Post" || name == "PostForm" || name == "Head"):
			return "http.Client." + name
		case ioMethodNames[name] &&
			(pkgPath == "net" || pkgPath == "bufio" || pkgPath == "os" || pkgPath == "io"):
			return pkgPath + " " + rname + "." + name
		case pkgPath == "repro/internal/sweep" && rname == "DiskCache" && (name == "Get" || name == "Put"):
			return "disk-cache " + rname + "." + name + " (file I/O)"
		case pkgPath == "repro/internal/testbed" && strings.HasPrefix(name, "ServeFrames"):
			return "testbed Executor." + name + " (serve loop)"
		}
		return ""
	}
	switch pkgPath {
	case "time":
		if name == "Sleep" {
			return "time.Sleep"
		}
	case "net":
		if strings.HasPrefix(name, "Dial") || strings.HasPrefix(name, "Listen") {
			return "net." + name
		}
	case "os":
		if blockingOsFuncs[name] {
			return "os." + name + " (file I/O)"
		}
	case "io":
		if blockingIoFuncs[name] {
			return "io." + name
		}
	case "net/http":
		if name == "Get" || name == "Post" || name == "PostForm" || name == "Head" {
			return "http." + name
		}
	case "repro/internal/testbed":
		if testbedFrameFuncs[name] {
			return "testbed." + name + " (frame I/O)"
		}
	}
	return ""
}
