// Package lint is xrlint: a suite of custom static analyzers that move
// this repository's load-bearing runtime invariants — byte-identical
// reports across backends, ctx-first cancelable APIs, no blocking I/O
// under a mutex, and wire-complete frame structs — into the build, the
// way vet and staticcheck already gate style.
//
// The suite is built directly on the standard library's go/ast and
// go/types (plus the source importer) rather than on
// golang.org/x/tools/go/analysis, so it needs no module dependencies:
// the API below is a deliberately small subset of the x/tools analysis
// framework (Analyzer, Pass, Reportf, analysistest-style fixtures), and
// an analyzer written here ports to the real framework mechanically if
// the dependency ever lands.
//
// # Suppression
//
// Every diagnostic can be suppressed — with a mandatory reason — by an
// //xrlint:allow directive on the offending line or on the line
// directly above it:
//
//	now := time.Now() //xrlint:allow determinism -- quarantine backoff timer, not measurement data
//
//	//xrlint:allow lockhygiene -- bounded in-memory write, cannot block
//	ch <- v
//
// The directive names one analyzer (or a comma-separated list); a
// directive without a “-- reason”, or naming an unknown analyzer, is
// itself a diagnostic, so suppressions stay auditable.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named invariant check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //xrlint:allow
	// directives.
	Name string
	// Doc is the one-paragraph description printed by `xrlint -help`.
	Doc string
	// Run inspects the pass's package and reports findings via
	// pass.Reportf.
	Run func(pass *Pass)
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Analyzer names the reporting analyzer ("" for directive errors
	// reported by the driver itself).
	Analyzer string
	// Message describes the finding.
	Message string
}

func (d Diagnostic) String() string {
	name := d.Analyzer
	if name == "" {
		name = "xrlint"
	}
	return fmt.Sprintf("%s: [%s] %s", d.Pos, name, d.Message)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	// Analyzer is the running analyzer.
	Analyzer *Analyzer
	// Fset resolves token positions for Files and for every package the
	// shared source importer loaded.
	Fset *token.FileSet
	// Files are the package's parsed (non-test) source files, with
	// comments.
	Files []*ast.File
	// PkgPath is the package's import path.
	PkgPath string
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's resolutions for Files.
	Info *types.Info

	allow map[string]map[int]bool // file -> directive lines for this analyzer
	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos unless an //xrlint:allow directive
// for this analyzer covers the line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if lines := p.allow[position.Filename]; lines != nil {
		// A directive suppresses the line it trails and the line below it.
		if lines[position.Line] || lines[position.Line-1] {
			return
		}
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ObjectOf resolves an identifier to its object (uses before defs).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if obj := p.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Info.Defs[id]
}

// Callee resolves a call expression to the package-level function or
// method it statically invokes, or nil for calls through function
// values, type conversions, and builtins.
func (p *Pass) Callee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.ObjectOf(id).(*types.Func)
	return fn
}

// unparen strips any parenthesis layers around e. (ast.Unparen exists
// only from go1.22; the module targets go1.21.)
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// allowDirective matches one //xrlint:allow comment: analyzer names,
// then a mandatory “-- reason”.
var allowDirective = regexp.MustCompile(`^//xrlint:allow\s+([A-Za-z0-9_,]+)\s*(?:--\s*(\S.*))?$`)

// directives is the per-package index of //xrlint:allow comments.
type directives struct {
	// byAnalyzer maps analyzer name -> file -> lines carrying a
	// well-formed directive for it.
	byAnalyzer map[string]map[string]map[int]bool
	// malformed collects directive syntax errors (missing reason,
	// unknown analyzer name), reported once per package by the driver.
	malformed []Diagnostic
}

// collectDirectives scans the package's comments for //xrlint:allow
// directives, validating names against the known analyzer set.
func collectDirectives(fset *token.FileSet, files []*ast.File, known map[string]bool) directives {
	d := directives{byAnalyzer: make(map[string]map[string]map[int]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//xrlint:") {
					continue
				}
				pos := fset.Position(c.Pos())
				m := allowDirective.FindStringSubmatch(c.Text)
				if m == nil {
					d.malformed = append(d.malformed, Diagnostic{
						Pos:     pos,
						Message: fmt.Sprintf("malformed xrlint directive %q: want //xrlint:allow <analyzer> -- <reason>", c.Text),
					})
					continue
				}
				if m[2] == "" {
					d.malformed = append(d.malformed, Diagnostic{
						Pos:     pos,
						Message: "xrlint:allow directive is missing its mandatory “-- reason”",
					})
					continue
				}
				for _, name := range strings.Split(m[1], ",") {
					name = strings.TrimSpace(name)
					if !known[name] {
						d.malformed = append(d.malformed, Diagnostic{
							Pos:     pos,
							Message: fmt.Sprintf("xrlint:allow names unknown analyzer %q", name),
						})
						continue
					}
					files := d.byAnalyzer[name]
					if files == nil {
						files = make(map[string]map[int]bool)
						d.byAnalyzer[name] = files
					}
					lines := files[pos.Filename]
					if lines == nil {
						lines = make(map[int]bool)
						files[pos.Filename] = lines
					}
					lines[pos.Line] = true
				}
			}
		}
	}
	return d
}

// Analyzers is the full xrlint suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{Determinism, CtxFirst, LockHygiene, WireSafe}
}

// RunAnalyzers runs every analyzer over every package and returns the
// surviving diagnostics sorted by position. Directive errors (a
// suppression without a reason, an unknown analyzer name) are included:
// an unauditable suppression must not silently suppress.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		dir := collectDirectives(pkg.Fset, pkg.Files, known)
		diags = append(diags, dir.malformed...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				PkgPath:  pkg.PkgPath,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				allow:    dir.byAnalyzer[a.Name],
				diags:    &diags,
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return diags
}
