package lint

// analysistest-style golden harness: each analyzer gets a fixture
// package under testdata/src/<name>/ whose sources carry trailing
//
//	// want `regex`
//
// comments on the lines expected to be flagged. The harness type-checks
// the fixture (with a caller-chosen import path, so scope rules like
// DeterminismScope can be exercised from both sides), runs one
// analyzer, and diffs reported diagnostics against the expectations —
// unexpected findings and unmatched expectations both fail the test.

import (
	"go/importer"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// expectKey addresses one fixture line.
type expectKey struct {
	file string // base name
	line int
}

// wantComment matches a `// want ...` expectation comment.
var wantComment = regexp.MustCompile("//\\s*want\\s+(.+)$")

// wantPattern extracts the backquoted regexes from a want comment.
var wantPattern = regexp.MustCompile("`[^`]*`")

// runFixture type-checks testdata/src/<fixture> as pkgPath, runs a
// alone, and compares diagnostics against the fixture's want comments.
func runFixture(t *testing.T, a *Analyzer, fixture, pkgPath string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixture dir: %v", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		t.Fatalf("fixture %s has no Go files", fixture)
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	parsed, info, tpkg, err := typeCheck(fset, imp, pkgPath, files, nil)
	if err != nil {
		t.Fatalf("type-check fixture: %v", err)
	}
	pkg := &Package{PkgPath: pkgPath, Dir: dir, Fset: fset, Files: parsed, Types: tpkg, Info: info}

	// Collect expectations from the fixture's comments.
	type expectation struct {
		re   *regexp.Regexp
		used bool
	}
	expects := make(map[expectKey][]*expectation)
	for _, f := range parsed {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantComment.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := expectKey{file: filepath.Base(pos.Filename), line: pos.Line}
				pats := wantPattern.FindAllString(m[1], -1)
				if len(pats) == 0 {
					t.Fatalf("%s:%d: want comment carries no backquoted pattern: %s", key.file, key.line, c.Text)
				}
				for _, quoted := range pats {
					pat := strings.Trim(quoted, "`")
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", key.file, key.line, strconv.Quote(pat), err)
					}
					expects[key] = append(expects[key], &expectation{re: re})
				}
			}
		}
	}

	diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{a})
	for _, d := range diags {
		key := expectKey{file: filepath.Base(d.Pos.Filename), line: d.Pos.Line}
		matched := false
		for _, e := range expects[key] {
			if !e.used && e.re.MatchString(d.Message) {
				e.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s:%d: [%s] %s", key.file, key.line, d.Analyzer, d.Message)
		}
	}
	for key, list := range expects {
		for _, e := range list {
			if !e.used {
				t.Errorf("%s:%d: expected a diagnostic matching %q, got none", key.file, key.line, e.re)
			}
		}
	}
}
