package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, parsed, and type-checked target package.
type Package struct {
	// PkgPath is the import path.
	PkgPath string
	// Dir is the package directory.
	Dir string
	// Fset is the file set shared by every loaded package and by the
	// source importer's view of their dependencies.
	Fset *token.FileSet
	// Files are the parsed non-test source files.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the checker's resolutions for Files.
	Info *types.Info
}

// Load resolves patterns (e.g. "./...") with the go tool from dir and
// type-checks every matched package from source. Test files are not
// analyzed: the invariants guard production paths, and tests routinely
// use wall clocks and blocking helpers legitimately.
//
// Dependencies — including the standard library — are type-checked on
// demand by the compiler-independent source importer, so loading works
// offline and needs no installed export data.
func Load(dir string, patterns ...string) ([]*Package, error) {
	metas, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, m := range metas {
		if len(m.GoFiles) == 0 {
			continue // test-only or empty package: nothing to analyze
		}
		pkg, err := checkPackage(fset, imp, m)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
}

// goList enumerates the packages matching patterns, in the go tool's
// deterministic order.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, errBuf.String())
	}
	var metas []listedPackage
	dec := json.NewDecoder(&out)
	for {
		var m listedPackage
		if err := dec.Decode(&m); err != nil {
			if errors.Is(err, io.EOF) {
				return metas, nil
			}
			return nil, fmt.Errorf("lint: decode go list output: %v", err)
		}
		metas = append(metas, m)
	}
}

// checkPackage parses and type-checks one listed package against the
// shared importer.
func checkPackage(fset *token.FileSet, imp types.Importer, m listedPackage) (*Package, error) {
	files := make([]string, len(m.GoFiles))
	for i, f := range m.GoFiles {
		files[i] = filepath.Join(m.Dir, f)
	}
	parsed, info, tpkg, err := typeCheck(fset, imp, m.ImportPath, files, nil)
	if err != nil {
		return nil, err
	}
	return &Package{
		PkgPath: m.ImportPath,
		Dir:     m.Dir,
		Fset:    fset,
		Files:   parsed,
		Types:   tpkg,
		Info:    info,
	}, nil
}

// typeCheck parses the named files (or uses src overlays keyed by file
// name, when non-nil) and type-checks them as one package with the
// given import path.
func typeCheck(fset *token.FileSet, imp types.Importer, pkgPath string, files []string, src map[string][]byte) ([]*ast.File, *types.Info, *types.Package, error) {
	var parsed []*ast.File
	for _, name := range files {
		var content any
		if src != nil {
			content = src[name]
		}
		f, err := parser.ParseFile(fset, name, content, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("lint: parse %s: %v", name, err)
		}
		parsed = append(parsed, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(pkgPath, fset, parsed, info)
	if len(typeErrs) > 0 {
		msgs := make([]string, 0, len(typeErrs))
		for _, e := range typeErrs {
			msgs = append(msgs, e.Error())
		}
		return nil, nil, nil, fmt.Errorf("lint: type-check %s:\n\t%s", pkgPath, strings.Join(msgs, "\n\t"))
	}
	if err != nil {
		return nil, nil, nil, fmt.Errorf("lint: type-check %s: %v", pkgPath, err)
	}
	return parsed, info, tpkg, nil
}
