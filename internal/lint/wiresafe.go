package lint

import (
	"go/token"
	"go/types"
	"strings"
)

// WireSafe proves, at build time, that every struct handed to the
// testbed frame codecs round-trips completely. The binary codec
// (internal/testbed/codec_binary.go) walks structs reflectively and
// *silently skips* what it cannot represent — an unexported field or an
// unsupported kind does not error, it just vanishes from the wire, and
// the bug surfaces later as a mismatched report on the far side.
//
// Roots are every package-scope struct type named Wire* plus
// testbed.Request and testbed.SessionConfig (the payloads embedded in
// wire batches); the analyzer walks all field types reachable from
// them.
//
// Rules, mirrored from the codec:
//
//   - unexported fields are flagged: the codec drops them without error;
//   - func, chan, array, complex, float32, uintptr and unsafe.Pointer
//     fields are flagged: the codec has no encoding for them;
//   - maps ride the wire as embedded JSON, so keys must be strings or
//     integers and values are checked recursively;
//   - interface fields are accepted silently: the codec encodes only nil
//     interfaces, and non-nil values are rejected at runtime by the
//     Request.WireSafe() gate, which is the right layer for a
//     value-dependent rule.
var WireSafe = &Analyzer{
	Name: "wiresafe",
	Doc: `verifies every struct reachable from the frame-codec roots
(Wire* types, testbed.Request, testbed.SessionConfig) carries only
codec-representable exported fields; the binary codec silently drops
anything else, corrupting reports across the wire instead of failing
fast`,
	Run: runWireSafe,
}

func runWireSafe(pass *Pass) {
	w := &wireWalker{pass: pass, visited: map[*types.Named]bool{}}
	scope := pass.Pkg.Scope()
	var roots []string
	for _, name := range scope.Names() {
		if strings.HasPrefix(name, "Wire") {
			roots = append(roots, name)
		}
	}
	if pass.PkgPath == "repro/internal/testbed" {
		roots = append(roots, "Request", "SessionConfig")
	}
	for _, name := range roots {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
			continue
		}
		w.walkNamed(named)
	}
}

// wireWalker walks the type graph reachable from the wire roots once.
type wireWalker struct {
	pass    *Pass
	visited map[*types.Named]bool
}

// walkNamed checks every field of a named struct, recursing into field
// types.
func (w *wireWalker) walkNamed(named *types.Named) {
	if w.visited[named] {
		return
	}
	w.visited[named] = true
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	tname := named.Obj().Name()
	for i := 0; i < st.NumFields(); i++ {
		field := st.Field(i)
		if !field.Exported() {
			w.pass.Reportf(field.Pos(),
				"wire struct %s has unexported field %s: the frame codec silently drops it, so the value never crosses the wire",
				tname, field.Name())
			continue
		}
		w.checkType(field.Type(), tname+"."+field.Name(), field.Pos(), false)
	}
}

// checkType verifies t is codec-representable, reporting at pos with
// path naming the offending field. inJSON marks map-value context,
// where the payload is carried as JSON rather than by the binary codec.
func (w *wireWalker) checkType(t types.Type, path string, pos token.Pos, inJSON bool) {
	switch t := t.(type) {
	case *types.Basic:
		switch t.Kind() {
		case types.Bool, types.String, types.Float64,
			types.Int, types.Int8, types.Int16, types.Int32, types.Int64,
			types.Uint, types.Uint8, types.Uint16, types.Uint32, types.Uint64:
			return
		case types.Float32:
			w.pass.Reportf(pos,
				"wire field %s has type float32: the frame codec encodes only float64; widen the field", path)
		case types.Uintptr:
			w.pass.Reportf(pos,
				"wire field %s has type uintptr: pointer-sized integers are not wire data", path)
		case types.Complex64, types.Complex128:
			w.pass.Reportf(pos,
				"wire field %s has complex type %s: the frame codec has no encoding for it", path, t)
		case types.UnsafePointer:
			w.pass.Reportf(pos,
				"wire field %s is an unsafe.Pointer: it cannot cross the wire", path)
		default:
			w.pass.Reportf(pos,
				"wire field %s has non-representable basic type %s", path, t)
		}
	case *types.Pointer:
		w.checkType(t.Elem(), path, pos, inJSON)
	case *types.Slice:
		w.checkType(t.Elem(), path, pos, inJSON)
	case *types.Array:
		if inJSON {
			// encoding/json handles fixed arrays; the binary codec does not.
			w.checkType(t.Elem(), path, pos, true)
			return
		}
		w.pass.Reportf(pos,
			"wire field %s is a fixed array: the frame codec encodes only slices; use %s", path, types.NewSlice(t.Elem()))
	case *types.Map:
		// Maps ride the wire as embedded JSON: keys must render as JSON
		// object keys, values must themselves serialize.
		if !jsonKeyOK(t.Key()) {
			w.pass.Reportf(pos,
				"wire field %s is a map with non-string, non-integer key type %s: it cannot render as a JSON object on the wire", path, t.Key())
		}
		w.checkType(t.Elem(), path, pos, true)
	case *types.Signature:
		w.pass.Reportf(pos,
			"wire field %s is a func: behavior cannot cross the wire; carry the data it derives from instead", path)
	case *types.Chan:
		w.pass.Reportf(pos,
			"wire field %s is a channel: it cannot cross the wire", path)
	case *types.Interface:
		// Accepted: the codec encodes nil interfaces only, and non-nil
		// values are rejected at runtime by the WireSafe() request gate.
	case *types.Named:
		if _, ok := t.Underlying().(*types.Struct); ok {
			w.walkNamed(t)
			return
		}
		w.checkType(t.Underlying(), path, pos, inJSON)
	default:
		w.pass.Reportf(pos,
			"wire field %s has type %s, which the frame codec cannot represent", path, t)
	}
}

// jsonKeyOK reports whether k can be a JSON object key (string or
// integer kinds, matching encoding/json's map-key rules minus
// TextMarshaler).
func jsonKeyOK(k types.Type) bool {
	basic, ok := k.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch basic.Kind() {
	case types.String,
		types.Int, types.Int8, types.Int16, types.Int32, types.Int64,
		types.Uint, types.Uint8, types.Uint16, types.Uint32, types.Uint64:
		return true
	}
	return false
}
