// Package fixture exercises the determinism analyzer: the harness
// loads it under an in-scope import path, so wall clocks and the
// global rand source are flagged while seeded generators stay clean.
package fixture

import (
	"math/rand"
	"time"
)

// Sample mixes banned and sanctioned randomness on the fixture's
// measurement path.
func Sample() (int, float64) {
	n := rand.Intn(10)                              // want `global rand\.Intn on the measurement/report path`
	f := rand.Float64()                             // want `global rand\.Float64 on the measurement/report path`
	rand.Shuffle(n, func(i, j int) { _, _ = i, j }) // want `global rand\.Shuffle on the measurement/report path`
	return n, f
}

// Stamp reads the wall clock three banned ways.
func Stamp() time.Duration {
	start := time.Now()    // want `time\.Now on the measurement/report path`
	d := time.Since(start) // want `time\.Since on the measurement/report path`
	d += time.Until(start) // want `time\.Until on the measurement/report path`
	return d
}

// Seeded draws from an explicitly seeded generator: the constructors
// and the generator's methods are the sanctioned path and stay clean.
func Seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(100)
}

// Pause waits without reading the clock into a value; time.Sleep is not
// banned.
func Pause() {
	time.Sleep(time.Millisecond)
}
