package fixture

import "time"

// Deadline reads the wall clock for an operational timeout; the allow
// directive (with its mandatory reason) suppresses the diagnostic.
func Deadline() time.Time {
	//xrlint:allow determinism -- fixture: operational deadline, not measurement data
	return time.Now().Add(time.Second)
}

// Trailing suppresses with the directive on the flagged line itself.
func Trailing() time.Time {
	return time.Now() //xrlint:allow determinism -- fixture: trailing-directive form
}
