package fixture

import "context"

// Do is a compatibility wrapper over DoContext; the directive in its
// doc comment suppresses the execution-method diagnostic.
//
//xrlint:allow ctxfirst -- fixture: compatibility wrapper, cancelable callers use DoContext
func (FixtureRunner) Do(n int) int { return n }

// DoContext is the cancelable variant Do wraps.
func (FixtureRunner) DoContext(ctx context.Context, n int) int {
	_ = ctx
	return n
}
