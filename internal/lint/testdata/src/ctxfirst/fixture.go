// Package fixture exercises the ctxfirst analyzer: contexts must come
// first, and exported execution methods on Runner/Executor/Job types
// must accept one at all.
package fixture

import "context"

// Bad takes its context second and is flagged.
func Bad(name string, ctx context.Context) error { // want `Bad takes a context\.Context as parameter 2`
	_ = name
	return ctx.Err()
}

// Good takes its context first and is clean.
func Good(ctx context.Context, name string) error {
	_ = name
	return ctx.Err()
}

// Literal carries the same rule into function literals.
var Literal = func(n int, ctx context.Context) error { // want `function literal takes a context\.Context as parameter 2`
	_ = n
	return ctx.Err()
}

// FixtureRunner is an execution type by naming convention.
type FixtureRunner struct{}

// Run accepts no context on an execution type and is flagged.
func (FixtureRunner) Run(n int) int { return n } // want `exported execution method FixtureRunner\.Run accepts no context\.Context`

// RunContext threads a context and is clean.
func (FixtureRunner) RunContext(ctx context.Context, n int) int {
	_ = ctx
	return n
}

// run is unexported and exempt from the execution-method rule.
func (FixtureRunner) run(n int) int { return n }

// Name is exported but not an execution method; exempt.
func (FixtureRunner) Name() string { return "fixture" }

// Widget is not an execution type, so its Run is exempt.
type Widget struct{}

// Run on a non-execution type is clean.
func (Widget) Run() {}
