// Package fixture exercises the lockhygiene analyzer: operations that
// can block indefinitely are flagged between a mutex Lock and its
// Unlock in the same function body.
package fixture

import (
	"os"
	"sync"
	"time"
)

// Guard owns the fixture's locked state.
type Guard struct {
	mu sync.Mutex
	ch chan int
	n  int
}

// SendUnderLock sends on a channel while the lock is held.
func (g *Guard) SendUnderLock(v int) {
	g.mu.Lock()
	g.ch <- v // want `channel send while g\.mu is held`
	g.mu.Unlock()
}

// RecvUnderDefer receives while a deferred Unlock keeps the lock held.
func (g *Guard) RecvUnderDefer() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return <-g.ch // want `channel receive while g\.mu is held`
}

// FileUnderLock performs file I/O under the lock.
func (g *Guard) FileUnderLock(path string) ([]byte, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return os.ReadFile(path) // want `os\.ReadFile \(file I/O\) while g\.mu is held`
}

// SleepUnderLock sleeps under the lock.
func (g *Guard) SleepUnderLock() {
	g.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while g\.mu is held`
	g.mu.Unlock()
}

// SelectUnderLock parks in a default-less select under the lock.
func (g *Guard) SelectUnderLock() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	select { // want `select without a default while g\.mu is held`
	case v := <-g.ch:
		return v
	case g.ch <- 1:
		return 1
	}
}

// AfterUnlock releases the lock before the send; clean.
func (g *Guard) AfterUnlock(v int) {
	g.mu.Lock()
	g.n = v
	g.mu.Unlock()
	g.ch <- v
}

// NonBlockingSelect has a default clause, so nothing can park; clean.
func (g *Guard) NonBlockingSelect() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	select {
	case v := <-g.ch:
		return v
	default:
		return g.n
	}
}

// SpawnUnderLock starts a goroutine under the lock; the literal's body
// runs without the caller's lock and is a separate analysis scope.
func (g *Guard) SpawnUnderLock(v int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	go func() {
		g.ch <- v
	}()
}

// PureUnderLock does CPU-bound work under the lock; clean.
func (g *Guard) PureUnderLock(v int) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n += v
	return g.n
}
