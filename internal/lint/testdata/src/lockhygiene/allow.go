package fixture

// Fill sends under the lock, but only to top up a freshly sized
// buffered channel; the allow directive records why it cannot block.
func (g *Guard) Fill() {
	g.mu.Lock()
	defer g.mu.Unlock()
	for i := 0; i < cap(g.ch); i++ {
		//xrlint:allow lockhygiene -- fixture: filling a fresh buffered channel to capacity cannot block
		g.ch <- i
	}
}
