// Package fixture sits outside DeterminismScope when loaded under an
// out-of-scope import path: operational code may read the wall clock
// freely, so nothing below carries a want comment.
package fixture

import "time"

// Uptime reads the wall clock outside the measurement path.
func Uptime(start time.Time) time.Duration {
	return time.Since(start)
}
