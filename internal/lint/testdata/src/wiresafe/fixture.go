// Package fixture exercises the wiresafe analyzer. The harness loads
// it under the testbed import path, so both the Wire* naming roots and
// the Request root are active.
package fixture

// WireGood is fully codec-representable: every exported field is a
// supported kind, the pointer cycle is fine, the map rides as JSON,
// and the interface field is accepted (nil-only on the wire, gated at
// runtime).
type WireGood struct {
	ID    int64
	Name  string
	Score float64
	Raw   []byte
	Next  *WireGood
	Tags  map[string]int
	Cause error
}

// WireBad collects every kind the frame codec cannot carry.
type WireBad struct {
	hidden int          // want `unexported field hidden`
	Fn     func() error // want `is a func`
	Ch     chan int     // want `is a channel`
	Arr    [4]byte      // want `fixed array`
	F32    float32      // want `encodes only float64`
	Ptr    uintptr      // want `uintptr`
}

// payload is reached from WireDeep through a slice of pointers and is
// checked transitively.
type payload struct {
	OK   bool
	Done chan struct{} // want `is a channel`
}

// WireDeep reaches payload indirectly.
type WireDeep struct {
	Items []*payload
}

// payloadKey cannot render as a JSON object key.
type payloadKey struct{ A, B int }

// WireKeys carries a map whose key type JSON cannot encode.
type WireKeys struct {
	ByPair map[payloadKey]int // want `non-string, non-integer key`
}

// Request is a root by name under the testbed import path, so its
// unexported field is flagged even without the Wire prefix.
type Request struct {
	Seed   int64
	notify func() // want `unexported field notify`
}

// local is reachable from no wire root; its channel field is exempt.
type local struct {
	Ch chan int
}
