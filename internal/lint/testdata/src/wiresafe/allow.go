package fixture

// WireLegacy keeps a scratch field off the wire deliberately; the
// allow directive above the field records the decision.
type WireLegacy struct {
	ID int64
	//xrlint:allow wiresafe -- fixture: scratch buffer intentionally not serialized
	scratch []byte
}
