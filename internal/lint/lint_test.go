package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestDeterminismFixture(t *testing.T) {
	// An in-scope import path: the sweep subtree is on the
	// measurement/report data path.
	runFixture(t, Determinism, "determinism", "repro/internal/sweep/fixture")
}

func TestDeterminismOutOfScope(t *testing.T) {
	// The same rules must not fire outside DeterminismScope: the fixture
	// reads the wall clock and carries no want comments.
	runFixture(t, Determinism, "determinism_out", "repro/internal/server/fixture")
}

func TestCtxFirstFixture(t *testing.T) {
	runFixture(t, CtxFirst, "ctxfirst", "repro/internal/fixture")
}

func TestLockHygieneFixture(t *testing.T) {
	runFixture(t, LockHygiene, "lockhygiene", "repro/internal/fixture")
}

func TestWireSafeFixture(t *testing.T) {
	// The testbed import path activates the Request/SessionConfig roots
	// alongside the Wire* naming rule.
	runFixture(t, WireSafe, "wiresafe", "repro/internal/testbed")
}

func TestAnalyzersWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range Analyzers() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing a name, doc, or run function", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	for _, want := range []string{"determinism", "ctxfirst", "lockhygiene", "wiresafe"} {
		if !seen[want] {
			t.Errorf("suite is missing analyzer %q", want)
		}
	}
}

// parseDirectives parses src as one file and collects its directives
// against the real analyzer set.
func parseDirectives(t *testing.T, src string) directives {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "d.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	return collectDirectives(fset, []*ast.File{f}, known)
}

func TestDirectiveMissingReason(t *testing.T) {
	d := parseDirectives(t, "package p\n\n//xrlint:allow determinism\nvar X = 1\n")
	if len(d.malformed) != 1 || !strings.Contains(d.malformed[0].Message, "mandatory") {
		t.Fatalf("want one missing-reason diagnostic, got %+v", d.malformed)
	}
}

func TestDirectiveUnknownAnalyzer(t *testing.T) {
	d := parseDirectives(t, "package p\n\n//xrlint:allow nosuch -- because\nvar X = 1\n")
	if len(d.malformed) != 1 || !strings.Contains(d.malformed[0].Message, "unknown analyzer") {
		t.Fatalf("want one unknown-analyzer diagnostic, got %+v", d.malformed)
	}
}

func TestDirectiveMultiName(t *testing.T) {
	d := parseDirectives(t, "package p\n\n//xrlint:allow determinism,lockhygiene -- shared reason\nvar X = 1\n")
	if len(d.malformed) != 0 {
		t.Fatalf("well-formed multi-name directive reported malformed: %+v", d.malformed)
	}
	for _, name := range []string{"determinism", "lockhygiene"} {
		if len(d.byAnalyzer[name]["d.go"]) != 1 {
			t.Errorf("directive not indexed for %s: %+v", name, d.byAnalyzer[name])
		}
	}
}

func TestLoadRejectsBadPattern(t *testing.T) {
	if _, err := Load(t.TempDir(), "./..."); err == nil {
		t.Fatal("Load in an empty non-module directory should fail")
	}
}

func TestSourceImporterResolvesStdlib(t *testing.T) {
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	src := map[string][]byte{"p.go": []byte("package p\n\nimport \"time\"\n\n// T is a fixture alias.\ntype T = time.Duration\n")}
	if _, _, _, err := typeCheck(fset, imp, "p", []string{"p.go"}, src); err != nil {
		t.Fatalf("stdlib import via source importer failed: %v", err)
	}
}
