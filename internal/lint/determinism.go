package lint

import (
	"go/ast"
	"go/types"
	"regexp"
)

// DeterminismScope matches the import paths whose code is on the
// measurement/report data path: everything these packages compute must
// be a pure function of (request content, seed), because the
// byte-identical-across-backends contract replays their work on
// arbitrary processes. Wall clocks and the global math/rand source break
// that silently.
//
// Exported so the fixture tests (and a future config hook) can observe
// the boundary; the variable is not intended to be mutated.
var DeterminismScope = regexp.MustCompile(
	`^repro/internal/(testbed|experiments|baseline|stats|session|scenario|sweep)(/|$)`)

// randConstructors are the math/rand (and v2) package-level functions
// that build explicitly seeded generators rather than drawing from the
// global source; they are the sanctioned way to use rand on the data
// path.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// timeBanned are the time functions that read the wall clock into a
// value. (time.Sleep waits but yields no nondeterministic datum, and
// timers/deadlines are flagged only through the time.Now they read.)
var timeBanned = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// Determinism flags wall-clock reads and global-source randomness inside
// the measurement/report data path (DeterminismScope).
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: `flags time.Now/Since/Until and global math/rand functions in the
measurement/report data path, where every value must derive from
(request content, seed) so pool, proc, and net backends produce
byte-identical reports; suppress legitimate operational clocks
(quarantine backoff, connection deadlines) with
//xrlint:allow determinism -- <reason>`,
	Run: runDeterminism,
}

func runDeterminism(pass *Pass) {
	if !DeterminismScope.MatchString(pass.PkgPath) {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := pass.Callee(call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // methods (e.g. on a seeded *rand.Rand) are fine
			}
			name := fn.Name()
			switch fn.Pkg().Path() {
			case "time":
				if timeBanned[name] {
					pass.Reportf(call.Pos(),
						"time.%s on the measurement/report path: values must derive from (request content, seed), not the wall clock", name)
				}
			case "math/rand", "math/rand/v2":
				if !randConstructors[name] {
					pass.Reportf(call.Pos(),
						"global rand.%s on the measurement/report path: draw from an explicitly seeded generator (stats.NewRNG) instead", name)
				}
			}
			return true
		})
	}
}
