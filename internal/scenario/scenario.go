// Package scenario promotes the repository's example scenarios —
// vehicular handoff storms, multiplayer split inference, coverage walks,
// offload operating points — into named, parameterizable population
// generators. A generator expands a scenario family into sweep.Cohorts:
// homogeneous user blocks whose session requests are plain serializable
// data, ready for any sweep backend. The examples/ programs remain the
// narrative single-frame walkthroughs; these generators are their
// population-scale counterparts, so `xrperf population -scenario
// vehicular` and the vehicular example agree on the operating points by
// construction.
package scenario

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/device"
	"repro/internal/mobility"
	"repro/internal/pipeline"
	"repro/internal/sensors"
	"repro/internal/session"
	"repro/internal/sweep"
	"repro/internal/testbed"
	"repro/internal/wireless"
)

// ErrUnknown indicates a scenario name with no registered generator.
var ErrUnknown = errors.New("scenario: unknown scenario")

// Params parameterizes a generator.
type Params struct {
	// Users is the total population, split deterministically across the
	// scenario's cohorts (0 → one user per cohort).
	Users int
	// Frames is the per-user session length (0 → 120, four seconds of
	// 30 fps XR).
	Frames int
	// Seed is the base seed; each cohort derives its own from it.
	Seed int64
}

func (p Params) frames() int {
	if p.Frames <= 0 {
		return 120
	}
	return p.Frames
}

// generator builds the cohort list of one named scenario.
type generator func(p Params) ([]sweep.Cohort, error)

var generators = map[string]generator{
	"coverage":    coverage,
	"multiplayer": multiplayer,
	"offload":     offload,
	"vehicular":   vehicular,
}

// Names lists the registered scenario names in sorted order.
func Names() []string {
	names := make([]string, 0, len(generators))
	for n := range generators {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Generate expands the named scenario into its cohorts.
func Generate(name string, p Params) ([]sweep.Cohort, error) {
	gen, ok := generators[name]
	if !ok {
		return nil, fmt.Errorf("%w %q (have %v)", ErrUnknown, name, Names())
	}
	cohorts, err := gen(p)
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", name, err)
	}
	return cohorts, nil
}

// splitUsers distributes total users over n cohorts, earlier cohorts
// absorbing the remainder — a deterministic split at any total.
func splitUsers(total, n int) []int {
	if total <= 0 {
		total = n
	}
	out := make([]int, n)
	for i := range out {
		out[i] = total / n
		if i < total%n {
			out[i]++
		}
	}
	return out
}

// finish stamps per-cohort users and seeds onto the cohort list.
func finish(cohorts []sweep.Cohort, p Params) []sweep.Cohort {
	users := splitUsers(p.Users, len(cohorts))
	for i := range cohorts {
		cohorts[i].Request.Op = testbed.OpSession
		cohorts[i].Request.Seed = sweep.ShardSeed(p.Seed, i)
		cohorts[i].Request.Session.Users = users[i]
		cohorts[i].Request.Session.Frames = p.frames()
	}
	return cohorts
}

// vehicular is the population form of examples/vehicular: Jetson-class
// vehicle XR (XR7) with roadside sensors, remote inference, and vertical
// handoffs out of a Wi-Fi zone — city vs highway speeds crossed with
// battery state. The paper's published power regression extrapolates
// non-physically at the Jetson's GPU clock, so the cohorts carry the
// example's re-fitted model provenance (seed 7, 8000/2000 rows).
func vehicular(p Params) ([]sweep.Cohort, error) {
	ads, err := device.ByName("XR7")
	if err != nil {
		return nil, err
	}
	rsu, err := sensors.NewSensor("rsu-camera", 120, 80)
	if err != nil {
		return nil, err
	}
	beacon, err := sensors.NewSensor("v2v-beacon", 50, 45)
	if err != nil {
		return nil, err
	}
	lidar, err := sensors.NewSensor("lidar", 20, 60)
	if err != nil {
		return nil, err
	}
	sc, err := pipeline.NewScenario(ads,
		pipeline.WithMode(pipeline.ModeRemote),
		pipeline.WithFrameSize(640),
		pipeline.WithSensors(sensors.NewArray(rsu, beacon, lidar), 3),
		pipeline.WithRequiredUpdateHz(60),
	)
	if err != nil {
		return nil, err
	}
	fit := &testbed.FitConfig{Seed: 7, TrainRows: 8000, TestRows: 2000}
	mob := func(speedMps float64) *testbed.MobilityConfig {
		return &testbed.MobilityConfig{
			SpeedMps:       speedMps,
			StepMs:         50,
			ZoneTechnology: wireless.WiFi5GHz,
			ZoneRadiusM:    120,
			Kind:           mobility.HandoffVertical,
		}
	}
	base := func(speedMps, startSoC float64) testbed.Request {
		return testbed.Request{
			Scenario: sc,
			Fit:      fit,
			Session: &testbed.SessionConfig{
				Mobility:        mob(speedMps),
				BatteryMAh:      5000,
				BatteryStartSoC: startSoC,
			},
		}
	}
	const city, highway = 13.9, 27.8 // 50 and 100 km/h
	return finish([]sweep.Cohort{
		{Name: "city-full", Request: base(city, 0)},
		{Name: "city-low", Request: base(city, 0.2)},
		{Name: "highway-full", Request: base(highway, 0)},
		{Name: "highway-low", Request: base(highway, 0.2)},
	}, p), nil
}

// multiplayer is the population form of examples/multiplayer: Quest-class
// headsets (XR6) offloading to one edge server vs inference split across
// two (Eq. 15), both under the default thermal envelope.
func multiplayer(p Params) ([]sweep.Cohort, error) {
	quest, err := device.ByName("XR6")
	if err != nil {
		return nil, err
	}
	single, err := pipeline.NewScenario(quest,
		pipeline.WithMode(pipeline.ModeRemote),
		pipeline.WithFrameSize(600),
	)
	if err != nil {
		return nil, err
	}
	edge := single.Edges[0]
	split, err := pipeline.NewScenario(quest,
		pipeline.WithMode(pipeline.ModeRemote),
		pipeline.WithFrameSize(600),
		pipeline.WithEdges(
			pipeline.EdgeAssignment{Share: 0.5, Resource: edge.Resource, MemBandwidthGBs: edge.MemBandwidthGBs},
			pipeline.EdgeAssignment{Share: 0.5, Resource: edge.Resource, MemBandwidthGBs: edge.MemBandwidthGBs},
		),
	)
	if err != nil {
		return nil, err
	}
	th := session.DefaultThermal()
	base := func(sc *pipeline.Scenario) testbed.Request {
		return testbed.Request{
			Scenario: sc,
			Session:  &testbed.SessionConfig{Thermal: &th, BatteryMAh: 5000},
		}
	}
	return finish([]sweep.Cohort{
		{Name: "single-edge", Request: base(single)},
		{Name: "split-edge", Request: base(split)},
	}, p), nil
}

// coverage is the population form of examples/coverage: XR6 users at
// increasing distance from the access point on the SNR-driven radio,
// walking inside their cell so handoffs grow with the cell edge.
func coverage(p Params) ([]sweep.Cohort, error) {
	dev, err := device.ByName("XR6")
	if err != nil {
		return nil, err
	}
	radio := wireless.DefaultWiFi5SNR()
	th := session.DefaultThermal()
	var cohorts []sweep.Cohort
	for _, d := range []float64{10, 80, 160} {
		link, err := radio.LinkAt(d)
		if err != nil {
			return nil, err
		}
		sc, err := pipeline.NewScenario(dev,
			pipeline.WithMode(pipeline.ModeRemote),
			pipeline.WithFrameSize(500),
		)
		if err != nil {
			return nil, err
		}
		sc.EdgeLink = link
		cohorts = append(cohorts, sweep.Cohort{
			Name: fmt.Sprintf("at-%.0fm", d),
			Request: testbed.Request{
				Scenario: sc,
				Session: &testbed.SessionConfig{
					Thermal: &th,
					Mobility: &testbed.MobilityConfig{
						SpeedMps:       1.4, // walking pace
						StepMs:         100,
						ZoneTechnology: wireless.WiFi5GHz,
						ZoneRadiusM:    d,
						Kind:           mobility.HandoffHorizontal,
					},
				},
			},
		})
	}
	return finish(cohorts, p), nil
}

// offload is the population form of examples/offload: phone-class XR2
// users at the operating points the per-frame decision loop walks through
// — local inference at full clock, local under thermal throttle, and
// remote over a congested link — each draining a phone battery.
func offload(p Params) ([]sweep.Cohort, error) {
	phone, err := device.ByName("XR2")
	if err != nil {
		return nil, err
	}
	th := session.DefaultThermal()
	local, err := pipeline.NewScenario(phone,
		pipeline.WithFrameSize(700),
	)
	if err != nil {
		return nil, err
	}
	throttled, err := pipeline.NewScenario(phone,
		pipeline.WithFrameSize(700),
		pipeline.WithCPUFreq(1.2),
	)
	if err != nil {
		return nil, err
	}
	congested, err := pipeline.NewScenario(phone,
		pipeline.WithMode(pipeline.ModeRemote),
		pipeline.WithFrameSize(700),
	)
	if err != nil {
		return nil, err
	}
	link, err := wireless.NewLink(wireless.WiFi5GHz, 8, congested.EdgeLink.DistanceM)
	if err != nil {
		return nil, err
	}
	congested.EdgeLink = link
	base := func(sc *pipeline.Scenario) testbed.Request {
		return testbed.Request{
			Scenario: sc,
			Session:  &testbed.SessionConfig{Thermal: &th, BatteryMAh: 4000},
		}
	}
	return finish([]sweep.Cohort{
		{Name: "local", Request: base(local)},
		{Name: "local-throttled", Request: base(throttled)},
		{Name: "remote-congested", Request: base(congested)},
	}, p), nil
}
