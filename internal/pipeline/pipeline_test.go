package pipeline

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/device"
	"repro/internal/mobility"
	"repro/internal/sensors"
	"repro/internal/wireless"
)

func testDevice(t *testing.T) device.Device {
	t.Helper()
	d, err := device.ByName("XR1")
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewScenarioDefaults(t *testing.T) {
	s, err := NewScenario(testDevice(t))
	if err != nil {
		t.Fatal(err)
	}
	if s.Mode != ModeLocal {
		t.Fatalf("default mode = %v, want local", s.Mode)
	}
	if s.FPS != 30 || s.FrameSizePx2 != 500 {
		t.Fatalf("defaults = fps %v, frame %v", s.FPS, s.FrameSizePx2)
	}
	if s.LocalCNN.Name == "" || s.RemoteCNN.Name == "" {
		t.Fatal("default CNNs missing")
	}
	if len(s.Edges) != 1 || s.Edges[0].Share != 1 {
		t.Fatalf("default edges = %+v", s.Edges)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("default scenario must validate: %v", err)
	}
}

func TestNewScenarioOptions(t *testing.T) {
	arr := sensors.NewArray(mustSensor(t, 100, 20))
	h, err := mobility.NewHandoffModel(mobility.HandoffVertical, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	coopLink, err := wireless.NewLink(wireless.WiFi5GHz, 100, 15)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScenario(testDevice(t),
		WithMode(ModeRemote),
		WithFrameSize(700),
		WithCPUFreq(2),
		WithCPUShare(0.8),
		WithSensors(arr, 3),
		WithHandoff(h),
		WithCooperation(CoopConfig{Link: coopLink, DataSizeMB: 0.2}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if s.Mode != ModeRemote || s.FrameSizePx2 != 700 || s.CPUFreqGHz != 2 || s.CPUShare != 0.8 {
		t.Fatalf("options not applied: %+v", s)
	}
	if s.Encoding.FrameSizePx2 != 700 {
		t.Fatal("WithFrameSize must update the encoder frame size")
	}
	if s.Handoff == nil || s.Coop == nil || s.SensorUpdates != 3 {
		t.Fatal("sensor/handoff/coop options not applied")
	}
}

func mustSensor(t *testing.T, hz, dist float64) sensors.Sensor {
	t.Helper()
	s, err := sensors.NewSensor("s", hz, dist)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestValidateRejections(t *testing.T) {
	base := func(t *testing.T) *Scenario {
		s, err := NewScenario(testDevice(t))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	tests := []struct {
		name   string
		mutate func(*Scenario)
		substr string
	}{
		{name: "missing device", mutate: func(s *Scenario) { s.Device = device.Device{} }, substr: "device"},
		{name: "zero cpu freq", mutate: func(s *Scenario) { s.CPUFreqGHz = 0 }, substr: "CPU frequency"},
		{name: "over max cpu freq", mutate: func(s *Scenario) { s.CPUFreqGHz = 99 }, substr: "exceeds"},
		{name: "zero gpu freq", mutate: func(s *Scenario) { s.GPUFreqGHz = 0 }, substr: "GPU frequency"},
		{name: "bad share", mutate: func(s *Scenario) { s.CPUShare = 1.5 }, substr: "CPU share"},
		{name: "bad mode", mutate: func(s *Scenario) { s.Mode = 0 }, substr: "mode"},
		{name: "zero frame", mutate: func(s *Scenario) { s.FrameSizePx2 = 0 }, substr: "frame size"},
		{name: "negative scene", mutate: func(s *Scenario) { s.SceneSizePx2 = -1 }, substr: "scene size"},
		{name: "zero fps", mutate: func(s *Scenario) { s.FPS = 0 }, substr: "fps"},
		{name: "zero buffer mu", mutate: func(s *Scenario) { s.BufferServiceRatePerMs = 0 }, substr: "buffer"},
		{name: "unstable buffer", mutate: func(s *Scenario) { s.BufferServiceRatePerMs = 0.01 }, substr: "unstable"},
		{name: "sensors without updates", mutate: func(s *Scenario) {
			s.Sensors = sensors.NewArray(mustSensor(t, 100, 10))
			s.SensorUpdates = 0
		}, substr: "updates"},
		{name: "local without cnn", mutate: func(s *Scenario) { s.LocalCNN.Name = "" }, substr: "local"},
		{name: "local without converted size", mutate: func(s *Scenario) { s.ConvertedSizePx2 = 0 }, substr: "converted"},
		{name: "bad client share", mutate: func(s *Scenario) { s.ClientShare = 0 }, substr: "client share"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := base(t)
			tt.mutate(s)
			err := s.Validate()
			if !errors.Is(err, ErrConfig) {
				t.Fatalf("Validate error = %v, want ErrConfig", err)
			}
			if !strings.Contains(err.Error(), tt.substr) {
				t.Fatalf("error %q missing %q", err, tt.substr)
			}
		})
	}
}

func TestValidateRemoteRejections(t *testing.T) {
	base := func(t *testing.T) *Scenario {
		s, err := NewScenario(testDevice(t), WithMode(ModeRemote))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	tests := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{name: "no remote cnn", mutate: func(s *Scenario) { s.RemoteCNN.Name = "" }},
		{name: "no edges", mutate: func(s *Scenario) { s.Edges = nil }},
		{name: "bad edge share", mutate: func(s *Scenario) { s.Edges[0].Share = 0 }},
		{name: "bad edge resource", mutate: func(s *Scenario) { s.Edges[0].Resource = 0 }},
		{name: "bad edge bandwidth", mutate: func(s *Scenario) { s.Edges[0].MemBandwidthGBs = 0 }},
		{name: "shares over one", mutate: func(s *Scenario) {
			s.Edges = []EdgeAssignment{
				{Share: 0.7, Resource: 100, MemBandwidthGBs: 100},
				{Share: 0.7, Resource: 100, MemBandwidthGBs: 100},
			}
		}},
		{name: "bad encoding", mutate: func(s *Scenario) { s.Encoding.FPS = 0 }},
		{name: "no link", mutate: func(s *Scenario) { s.EdgeLink = wireless.Link{} }},
		{name: "negative result", mutate: func(s *Scenario) { s.ResultSizeMB = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := base(t)
			tt.mutate(s)
			if err := s.Validate(); err == nil {
				t.Fatal("Validate must reject")
			}
		})
	}
}

func TestFrameDataMB(t *testing.T) {
	// 500×500 RGB = 750000 bytes = 0.75 MB.
	if got := FrameDataMB(500); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("FrameDataMB(500) = %v, want 0.75", got)
	}
	if got := FrameDataMB(300); math.Abs(got-0.27) > 1e-12 {
		t.Fatalf("FrameDataMB(300) = %v, want 0.27", got)
	}
}

func TestBufferArrivalRate(t *testing.T) {
	s, err := NewScenario(testDevice(t))
	if err != nil {
		t.Fatal(err)
	}
	// 30 fps → frame + volumetric = 0.06 packets/ms.
	if got := s.BufferArrivalRatePerMs(); math.Abs(got-0.06) > 1e-12 {
		t.Fatalf("λ = %v, want 0.06", got)
	}
	if got := s.BufferClasses(); got != 2 {
		t.Fatalf("classes = %d, want 2", got)
	}
	s.Sensors = sensors.NewArray(mustSensor(t, 100, 5))
	s.SensorUpdates = 1
	if got := s.BufferArrivalRatePerMs(); math.Abs(got-0.16) > 1e-12 {
		t.Fatalf("λ with sensor = %v, want 0.16", got)
	}
	if got := s.BufferClasses(); got != 3 {
		t.Fatalf("classes with sensor = %d, want 3", got)
	}
}

func TestSegmentStrings(t *testing.T) {
	segs := Segments()
	if len(segs) != 11 {
		t.Fatalf("segments = %d, want 11", len(segs))
	}
	seen := map[string]bool{}
	for _, s := range segs {
		name := s.String()
		if name == "" || strings.HasPrefix(name, "Segment(") {
			t.Fatalf("segment %d renders %q", int(s), name)
		}
		if seen[name] {
			t.Fatalf("duplicate segment name %q", name)
		}
		seen[name] = true
	}
	if Segment(99).String() != "Segment(99)" {
		t.Fatal("unknown segment must render as Segment(n)")
	}
}

func TestModeStrings(t *testing.T) {
	if ModeLocal.String() != "local" || ModeRemote.String() != "remote" {
		t.Fatal("mode strings wrong")
	}
	if InferenceMode(7).String() == "" {
		t.Fatal("unknown mode must render non-empty")
	}
}

func TestWithEdgesCopies(t *testing.T) {
	edges := []EdgeAssignment{{Share: 0.5, Resource: 100, MemBandwidthGBs: 50}}
	s, err := NewScenario(testDevice(t), WithMode(ModeRemote), WithEdges(edges...))
	if err != nil {
		t.Fatal(err)
	}
	edges[0].Share = 0.9
	if s.Edges[0].Share != 0.5 {
		t.Fatal("WithEdges must copy the slice")
	}
}
