// Package pipeline defines the XR application pipeline of Fig. 1 — the
// nine segments of the object-detection reference application — and the
// Scenario configuration consumed by the latency, energy, and AoI models.
// A Scenario pins one frame's worth of operating conditions: device and
// clocks, CPU/GPU split, inference mode, frame/scene geometry, encoder
// configuration, sensor array, edge assignment, wireless links, mobility,
// and input-buffer service rate.
package pipeline

import (
	"errors"
	"fmt"

	"repro/internal/cnn"
	"repro/internal/codec"
	"repro/internal/device"
	"repro/internal/mobility"
	"repro/internal/sensors"
	"repro/internal/wireless"
)

// Common errors.
var (
	// ErrConfig indicates an invalid scenario configuration.
	ErrConfig = errors.New("pipeline: invalid scenario")
)

// Segment identifies one stage of the XR pipeline (Fig. 1).
type Segment int

// The pipeline segments. Conversion+local inference and encoding+remote
// inference are the two mutually exclusive branches selected by ω_loc in
// Eq. (1).
const (
	SegFrameGeneration Segment = iota + 1
	SegVolumetricData
	SegExternalInfo
	SegFrameConversion
	SegFrameEncoding
	SegLocalInference
	SegRemoteInference
	SegTransmission
	SegHandoff
	SegRendering
	SegCooperation
)

// String returns the segment name.
func (s Segment) String() string {
	switch s {
	case SegFrameGeneration:
		return "frame-generation"
	case SegVolumetricData:
		return "volumetric-data"
	case SegExternalInfo:
		return "external-info"
	case SegFrameConversion:
		return "frame-conversion"
	case SegFrameEncoding:
		return "frame-encoding"
	case SegLocalInference:
		return "local-inference"
	case SegRemoteInference:
		return "remote-inference"
	case SegTransmission:
		return "transmission"
	case SegHandoff:
		return "handoff"
	case SegRendering:
		return "rendering"
	case SegCooperation:
		return "cooperation"
	default:
		return fmt.Sprintf("Segment(%d)", int(s))
	}
}

// Segments lists all pipeline segments in order.
func Segments() []Segment {
	return []Segment{
		SegFrameGeneration, SegVolumetricData, SegExternalInfo,
		SegFrameConversion, SegFrameEncoding, SegLocalInference,
		SegRemoteInference, SegTransmission, SegHandoff,
		SegRendering, SegCooperation,
	}
}

// InferenceMode selects local (ω_loc = 1) or remote (ω_loc = 0)
// inference in Eq. (1).
type InferenceMode int

const (
	// ModeLocal runs the lightweight on-device CNN.
	ModeLocal InferenceMode = iota + 1
	// ModeRemote offloads inference to the edge server(s).
	ModeRemote
)

// String returns the mode name.
func (m InferenceMode) String() string {
	switch m {
	case ModeLocal:
		return "local"
	case ModeRemote:
		return "remote"
	default:
		return fmt.Sprintf("InferenceMode(%d)", int(m))
	}
}

// EdgeAssignment describes one edge server's share of a split remote
// inference task (Eq. 15).
type EdgeAssignment struct {
	// Share is ω_edge^e, this server's portion of the inference task.
	Share float64
	// Resource is the allocated computation resource c_ε.
	Resource float64
	// MemBandwidthGBs is the server memory bandwidth m_ε.
	MemBandwidthGBs float64
}

// CoopConfig configures the XR-cooperation segment (Eq. 18).
type CoopConfig struct {
	// Link is the wireless path to the cooperative XR device.
	Link wireless.Link
	// DataSizeMB is δ_f4, the scene or fragment payload.
	DataSizeMB float64
	// IncludeInTotal adds L_coop/E_coop to the end-to-end figures;
	// by default cooperation runs parallel to rendering and is excluded
	// (Section IV-B).
	IncludeInTotal bool
}

// Scenario is one frame's operating configuration.
type Scenario struct {
	// Device is the client XR device.
	Device device.Device
	// CPUFreqGHz and GPUFreqGHz are the operating clocks f_c, f_g
	// (bounded by the device maxima).
	CPUFreqGHz float64
	GPUFreqGHz float64
	// CPUShare is ω_c, the CPU share of the computation split.
	CPUShare float64
	// Mode selects local vs remote inference.
	Mode InferenceMode
	// ClientShare is ω_client ∈ [0,1], the portion of a split inference
	// task kept on the device (Eq. 11).
	ClientShare float64
	// FrameSizePx2 is s_f1 in the paper's pixel² unit (Fig. 4 sweeps
	// 300–700, interpreted as the square frame side length).
	FrameSizePx2 float64
	// SceneSizePx2 is s_vol, the virtual scene size (Eq. 4).
	SceneSizePx2 float64
	// ConvertedSizePx2 is s_f2, the CNN input size after scaling and
	// cropping (Eq. 11).
	ConvertedSizePx2 float64
	// FPS is the capture frame rate n_fps.
	FPS float64
	// Encoding configures H.264 for the remote branch.
	Encoding codec.EncodingParams
	// LocalCNN is the lightweight on-device model.
	LocalCNN cnn.Model
	// RemoteCNN is the large edge model.
	RemoteCNN cnn.Model
	// Sensors is the external sensor array.
	Sensors sensors.Array
	// SensorUpdates is N, the updates required per frame.
	SensorUpdates int
	// RequiredUpdateHz optionally pins the application's information
	// freshness requirement f_req (Section VI-B; the paper's emulation
	// uses 200 Hz — one update per 5 ms). Zero derives f_req = N/L_tot
	// from the frame processing time.
	RequiredUpdateHz float64
	// Edges lists the edge servers for remote inference; shares must
	// satisfy ω_client + Σω_e = ω_task ≤ 1 scale.
	Edges []EdgeAssignment
	// EdgeLink is the wireless path to the (first) edge server.
	EdgeLink wireless.Link
	// ResultSizeMB is the inference result payload returned to the
	// renderer.
	ResultSizeMB float64
	// Handoff optionally models mobility-induced handoff (Eq. 17);
	// nil means a static device.
	Handoff *mobility.HandoffModel
	// Coop optionally configures XR cooperation.
	Coop *CoopConfig
	// BufferServiceRatePerMs is µ of the M/M/1 input buffer (Eq. 7/22).
	BufferServiceRatePerMs float64
}

// FrameDataMB converts the paper's pixel² frame-size unit into a raw RGB
// payload δ in megabytes: a sizePx² × sizePx² frame at 3 bytes/pixel.
func FrameDataMB(sizePx2 float64) float64 {
	return sizePx2 * sizePx2 * 3 / 1e6
}

// BufferArrivalRatePerMs returns the aggregate Poisson arrival rate λ
// offered to the input buffer: one captured frame and one volumetric
// snapshot per frame interval plus the sensor packet superposition.
func (s *Scenario) BufferArrivalRatePerMs() float64 {
	frameRate := s.FPS / 1000
	return 2*frameRate + s.Sensors.ArrivalRatePerMs()
}

// BufferClasses returns how many data classes queue in the input buffer
// for Eq. (7): captured frame, volumetric data, and (when sensors are
// attached) external information.
func (s *Scenario) BufferClasses() int {
	if len(s.Sensors.Sensors) > 0 {
		return 3
	}
	return 2
}

// Validate checks scenario consistency. It is called by every model entry
// point so misconfiguration fails loudly rather than producing plausible
// nonsense.
func (s *Scenario) Validate() error {
	switch {
	case s.Device.Name == "":
		return fmt.Errorf("%w: missing device", ErrConfig)
	case s.CPUFreqGHz <= 0:
		return fmt.Errorf("%w: CPU frequency %v GHz", ErrConfig, s.CPUFreqGHz)
	case s.CPUFreqGHz > s.Device.CPUGHz+1e-9:
		return fmt.Errorf("%w: CPU frequency %v exceeds %s max %v",
			ErrConfig, s.CPUFreqGHz, s.Device.Name, s.Device.CPUGHz)
	case s.GPUFreqGHz <= 0:
		return fmt.Errorf("%w: GPU frequency %v GHz", ErrConfig, s.GPUFreqGHz)
	case s.CPUShare < 0 || s.CPUShare > 1:
		return fmt.Errorf("%w: CPU share %v", ErrConfig, s.CPUShare)
	case s.Mode != ModeLocal && s.Mode != ModeRemote:
		return fmt.Errorf("%w: inference mode %v", ErrConfig, s.Mode)
	case s.FrameSizePx2 <= 0:
		return fmt.Errorf("%w: frame size %v px²", ErrConfig, s.FrameSizePx2)
	case s.SceneSizePx2 < 0:
		return fmt.Errorf("%w: scene size %v px²", ErrConfig, s.SceneSizePx2)
	case s.FPS <= 0:
		return fmt.Errorf("%w: fps %v", ErrConfig, s.FPS)
	case s.BufferServiceRatePerMs <= 0:
		return fmt.Errorf("%w: buffer service rate %v /ms", ErrConfig, s.BufferServiceRatePerMs)
	}
	if len(s.Sensors.Sensors) > 0 && s.SensorUpdates <= 0 {
		return fmt.Errorf("%w: %d sensors but %d updates per frame",
			ErrConfig, len(s.Sensors.Sensors), s.SensorUpdates)
	}
	if lambda := s.BufferArrivalRatePerMs(); lambda >= s.BufferServiceRatePerMs {
		return fmt.Errorf("%w: input buffer unstable (λ=%v ≥ µ=%v)",
			ErrConfig, lambda, s.BufferServiceRatePerMs)
	}

	switch s.Mode {
	case ModeLocal:
		if s.ConvertedSizePx2 <= 0 {
			return fmt.Errorf("%w: converted frame size %v px²", ErrConfig, s.ConvertedSizePx2)
		}
		if s.LocalCNN.Name == "" {
			return fmt.Errorf("%w: local mode without a local CNN", ErrConfig)
		}
		if s.ClientShare <= 0 || s.ClientShare > 1 {
			return fmt.Errorf("%w: client share %v", ErrConfig, s.ClientShare)
		}
	case ModeRemote:
		if s.RemoteCNN.Name == "" {
			return fmt.Errorf("%w: remote mode without a remote CNN", ErrConfig)
		}
		if len(s.Edges) == 0 {
			return fmt.Errorf("%w: remote mode without edge servers", ErrConfig)
		}
		var shareSum float64
		for i, e := range s.Edges {
			if e.Share <= 0 || e.Share > 1 {
				return fmt.Errorf("%w: edge %d share %v", ErrConfig, i, e.Share)
			}
			if e.Resource <= 0 {
				return fmt.Errorf("%w: edge %d resource %v", ErrConfig, i, e.Resource)
			}
			if e.MemBandwidthGBs <= 0 {
				return fmt.Errorf("%w: edge %d memory bandwidth %v", ErrConfig, i, e.MemBandwidthGBs)
			}
			shareSum += e.Share
		}
		if shareSum > 1+1e-9 {
			return fmt.Errorf("%w: edge shares sum to %v > 1", ErrConfig, shareSum)
		}
		if err := s.Encoding.Validate(); err != nil {
			return fmt.Errorf("encoding: %w", err)
		}
		if s.EdgeLink.ThroughputMbps <= 0 {
			return fmt.Errorf("%w: remote mode needs an edge link", ErrConfig)
		}
		if s.ResultSizeMB < 0 {
			return fmt.Errorf("%w: result size %v MB", ErrConfig, s.ResultSizeMB)
		}
	}
	if s.Coop != nil {
		if s.Coop.Link.ThroughputMbps <= 0 {
			return fmt.Errorf("%w: cooperation without a link", ErrConfig)
		}
		if s.Coop.DataSizeMB < 0 {
			return fmt.Errorf("%w: cooperation payload %v MB", ErrConfig, s.Coop.DataSizeMB)
		}
	}
	return nil
}

// Option mutates a scenario during construction.
type Option func(*Scenario)

// WithMode sets the inference mode.
func WithMode(m InferenceMode) Option { return func(s *Scenario) { s.Mode = m } }

// WithFrameSize sets s_f1 (pixel² unit).
func WithFrameSize(px2 float64) Option {
	return func(s *Scenario) {
		s.FrameSizePx2 = px2
		s.Encoding.FrameSizePx2 = px2
	}
}

// WithCPUFreq sets the operating CPU clock.
func WithCPUFreq(ghz float64) Option { return func(s *Scenario) { s.CPUFreqGHz = ghz } }

// WithCPUShare sets ω_c.
func WithCPUShare(wc float64) Option { return func(s *Scenario) { s.CPUShare = wc } }

// WithSensors attaches a sensor array requiring updates per frame.
func WithSensors(arr sensors.Array, updates int) Option {
	return func(s *Scenario) {
		s.Sensors = arr
		s.SensorUpdates = updates
	}
}

// WithRequiredUpdateHz pins the application's freshness requirement f_req.
func WithRequiredUpdateHz(hz float64) Option {
	return func(s *Scenario) { s.RequiredUpdateHz = hz }
}

// WithHandoff attaches a mobility handoff model.
func WithHandoff(h mobility.HandoffModel) Option {
	return func(s *Scenario) { s.Handoff = &h }
}

// WithCooperation attaches an XR-cooperation segment.
func WithCooperation(c CoopConfig) Option {
	return func(s *Scenario) { s.Coop = &c }
}

// WithEdges replaces the edge assignment list.
func WithEdges(edges ...EdgeAssignment) Option {
	return func(s *Scenario) {
		s.Edges = make([]EdgeAssignment, len(edges))
		copy(s.Edges, edges)
	}
}

// NewScenario builds the reference object-detection scenario of Fig. 1 on
// the given device and applies options. Defaults: 30 fps, 500 px² frames,
// CNN input 300 px², MobileNetv2 locally, YOLOv3 remotely, one Jetson-class
// edge server over 5 GHz Wi-Fi at 25 m, balanced CPU/GPU split, and a
// stable input buffer.
func NewScenario(dev device.Device, opts ...Option) (*Scenario, error) {
	localCNN, err := cnn.ByName("MobileNetv2_300_Float")
	if err != nil {
		return nil, fmt.Errorf("default local cnn: %w", err)
	}
	remoteCNN, err := cnn.ByName("YOLOv3")
	if err != nil {
		return nil, fmt.Errorf("default remote cnn: %w", err)
	}
	link, err := wireless.NewLink(wireless.WiFi5GHz, 120, 25)
	if err != nil {
		return nil, fmt.Errorf("default edge link: %w", err)
	}

	resModel := device.PaperResourceModel()
	clientRes, err := resModel.Compute(dev.CPUGHz, dev.GPUGHz, 0.5)
	if err != nil {
		return nil, fmt.Errorf("default edge resource: %w", err)
	}
	edge := device.EdgeServer()

	s := &Scenario{
		Device:           dev,
		CPUFreqGHz:       dev.CPUGHz,
		GPUFreqGHz:       dev.GPUGHz,
		CPUShare:         0.5,
		Mode:             ModeLocal,
		ClientShare:      1,
		FrameSizePx2:     500,
		SceneSizePx2:     500,
		ConvertedSizePx2: 300,
		FPS:              30,
		Encoding:         codec.DefaultParams(500),
		LocalCNN:         localCNN,
		RemoteCNN:        remoteCNN,
		Edges: []EdgeAssignment{{
			Share:           1,
			Resource:        device.EdgeResource(clientRes),
			MemBandwidthGBs: edge.MemBandwidthGBs,
		}},
		EdgeLink:               link,
		ResultSizeMB:           0.01,
		BufferServiceRatePerMs: 1.0,
	}
	for _, opt := range opts {
		opt(s)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
