package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/cnn"
	"repro/internal/device"
	"repro/internal/testbed"
)

// Table1Result reproduces Table I: the XR and edge device catalog.
type Table1Result struct {
	// Devices holds the catalog entries.
	Devices []device.Device
}

// ID implements Result.
func (r *Table1Result) ID() string { return "table1" }

// Render implements Result.
func (r *Table1Result) Render() string {
	var b strings.Builder
	b.WriteString("table1 — XR and edge devices (Table I)\n")
	fmt.Fprintf(&b, "%-5s %-33s %-28s %6s %6s %5s %7s %-6s\n",
		"name", "model", "soc", "fc", "fg", "ram", "mem", "split")
	for _, d := range r.Devices {
		split := "test"
		if d.TrainSplit {
			split = "train"
		}
		if d.Class == device.ClassEdge {
			split = "edge"
		}
		fmt.Fprintf(&b, "%-5s %-33s %-28s %6.2f %6.2f %5.0f %7.1f %-6s\n",
			d.Name, d.Model, d.SoC, d.CPUGHz, d.GPUGHz, d.RAMGB, d.MemBandwidthGBs, split)
	}
	return b.String()
}

// Table1 dumps the device catalog.
func (s *Suite) Table1(_ context.Context) (*Table1Result, error) {
	return &Table1Result{Devices: device.Catalog()}, nil
}

// Table2Result reproduces Table II: the CNN catalog.
type Table2Result struct {
	// Models holds the catalog entries.
	Models []cnn.Model
	// Complexity holds each model's fitted C_CNN.
	Complexity []float64
}

// ID implements Result.
func (r *Table2Result) ID() string { return "table2" }

// Render implements Result.
func (r *Table2Result) Render() string {
	var b strings.Builder
	b.WriteString("table2 — CNNs used in this research (Table II)\n")
	fmt.Fprintf(&b, "%-24s %6s %9s %6s %4s %6s %8s\n",
		"model", "depth", "size(MB)", "scale", "gpu", "class", "C_CNN")
	for i, m := range r.Models {
		gpu := "n"
		if m.GPUSupport {
			gpu = "y"
		}
		class := "device"
		if m.EdgeClass {
			class = "edge"
		}
		fmt.Fprintf(&b, "%-24s %6d %9.1f %6.2f %4s %6s %8.3f\n",
			m.Name, m.Depth, m.SizeMB, m.DepthScale, gpu, class, r.Complexity[i])
	}
	return b.String()
}

// Table2 dumps the CNN catalog with the suite's fitted complexities. The
// fitted complexity model is a deterministic in-memory evaluation, so the
// table needs no measurement seeds and no engine fan-out of its own; it
// parallelizes with the other experiments as a RunAll task.
func (s *Suite) Table2(ctx context.Context) (*Table2Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	models := cnn.Catalog()
	cplx := make([]float64, len(models))
	for i, m := range models {
		c, err := s.Fitted.Complexity.ComplexityOf(m)
		if err != nil {
			return nil, fmt.Errorf("complexity of %s: %w", m.Name, err)
		}
		cplx[i] = c
	}
	return &Table2Result{Models: models, Complexity: cplx}, nil
}

// FitSummaryResult reports the regression fits against the paper's R²
// values (Eq. 3: 0.87, Eq. 10: 0.79, Eq. 12: 0.844, Eq. 21: 0.863).
type FitSummaryResult struct {
	// Report holds the four model fit diagnostics.
	Report testbed.FitReport
}

// ID implements Result.
func (r *FitSummaryResult) ID() string { return "fit" }

// Render implements Result.
func (r *FitSummaryResult) Render() string {
	var b strings.Builder
	b.WriteString("fit — regression models (train XR1/XR3/XR5/XR6, test XR2/XR4/XR7, 95% CI)\n")
	fmt.Fprintf(&b, "%-26s %8s %8s %8s %9s %8s %8s\n",
		"model", "paperR²", "trainR²", "testR²", "testMAPE", "CI cov", "rows")
	for _, m := range []testbed.ModelFitReport{
		r.Report.Resource, r.Report.Power, r.Report.Encoder, r.Report.Complexity,
	} {
		fmt.Fprintf(&b, "%-26s %8.3f %8.3f %8.3f %8.2f%% %8.3f %8d\n",
			m.Name, m.PaperR2, m.TrainR2, m.TestR2, m.TestMAPE, m.CICoverage, m.TrainRows)
	}
	return b.String()
}

// FitSummary reports the suite's regression fits.
func (s *Suite) FitSummary(_ context.Context) (*FitSummaryResult, error) {
	return &FitSummaryResult{Report: s.Fitted.Report}, nil
}
