package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/stats"
)

// AblationResult quantifies the DESIGN.md "re-fit, don't replay" decision:
// the paper's published coefficients (trained on the authors' physical
// testbed) versus coefficients re-fitted on this repository's synthetic
// testbed, both judged against the synthetic ground truth over the
// Fig. 4(a) sweep.
type AblationResult struct {
	// PaperErrPct is the mean latency error of the published
	// coefficients.
	PaperErrPct float64
	// FittedErrPct is the mean latency error of the re-fitted models.
	FittedErrPct float64
	// Points counts the sweep cells evaluated.
	Points int
}

// ID implements Result.
func (r *AblationResult) ID() string { return "ablation" }

// Render implements Result.
func (r *AblationResult) Render() string {
	var b strings.Builder
	b.WriteString("ablation — paper coefficients vs re-fitted models (Fig. 4a sweep)\n")
	fmt.Fprintf(&b, "  published coefficients: %6.2f%% mean latency error\n", r.PaperErrPct)
	fmt.Fprintf(&b, "  re-fitted coefficients: %6.2f%% mean latency error\n", r.FittedErrPct)
	b.WriteString("  regression coefficients are testbed-specific; the model *forms* carry.\n")
	return b.String()
}

// Ablation runs the paper-vs-fitted comparison: ground truth on the
// suite's backend (the same local cells Fig. 4(a)/(c) measure, served
// from the cache), predictions from both coefficient sets in-process.
func (s *Suite) Ablation(ctx context.Context) (*AblationResult, error) {
	paper := core.NewWithPaperCoefficients()
	scs, err := s.sweepScenarios(pipeline.ModeLocal)
	if err != nil {
		return nil, err
	}
	ms, err := s.measure(ctx, scs)
	if err != nil {
		return nil, fmt.Errorf("measure: %w", err)
	}
	paperPred := make([]float64, len(scs))
	fittedPred := make([]float64, len(scs))
	gts := make([]float64, len(scs))
	for i, sc := range scs {
		pRep, err := paper.Analyze(sc)
		if err != nil {
			return nil, fmt.Errorf("paper model: %w", err)
		}
		fLat, err := s.Latency.FrameLatency(sc)
		if err != nil {
			return nil, fmt.Errorf("fitted model: %w", err)
		}
		paperPred[i] = pRep.Latency.Total
		fittedPred[i] = fLat.Total
		gts[i] = ms[i].LatencyMs
	}
	paperErr, err := stats.MAPE(paperPred, gts)
	if err != nil {
		return nil, err
	}
	fittedErr, err := stats.MAPE(fittedPred, gts)
	if err != nil {
		return nil, err
	}
	return &AblationResult{
		PaperErrPct:  paperErr,
		FittedErrPct: fittedErr,
		Points:       len(gts),
	}, nil
}
