package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/stats"
	"repro/internal/sweep"
)

// AblationResult quantifies the DESIGN.md "re-fit, don't replay" decision:
// the paper's published coefficients (trained on the authors' physical
// testbed) versus coefficients re-fitted on this repository's synthetic
// testbed, both judged against the synthetic ground truth over the
// Fig. 4(a) sweep.
type AblationResult struct {
	// PaperErrPct is the mean latency error of the published
	// coefficients.
	PaperErrPct float64
	// FittedErrPct is the mean latency error of the re-fitted models.
	FittedErrPct float64
	// Points counts the sweep cells evaluated.
	Points int
}

// ID implements Result.
func (r *AblationResult) ID() string { return "ablation" }

// Render implements Result.
func (r *AblationResult) Render() string {
	var b strings.Builder
	b.WriteString("ablation — paper coefficients vs re-fitted models (Fig. 4a sweep)\n")
	fmt.Fprintf(&b, "  published coefficients: %6.2f%% mean latency error\n", r.PaperErrPct)
	fmt.Fprintf(&b, "  re-fitted coefficients: %6.2f%% mean latency error\n", r.FittedErrPct)
	b.WriteString("  regression coefficients are testbed-specific; the model *forms* carry.\n")
	return b.String()
}

// ablationCell is one sweep point's three-way evaluation.
type ablationCell struct {
	paperPred, fittedPred, gt float64
}

// Ablation runs the paper-vs-fitted comparison on the sweep engine.
func (s *Suite) Ablation(ctx context.Context) (*AblationResult, error) {
	paper := core.NewWithPaperCoefficients()
	cells := sweepCells()
	evals, err := sweep.Run(ctx, len(cells), s.sweepOpts("ablation"),
		func(_ context.Context, sh sweep.Shard) (ablationCell, error) {
			c := cells[sh.Index]
			sc, err := s.sweepScenario(pipeline.ModeLocal, c.size, c.freq)
			if err != nil {
				return ablationCell{}, err
			}
			meas, err := s.Bench.MeasureFramesSeeded(sc, s.Trials, sh.Seed)
			if err != nil {
				return ablationCell{}, fmt.Errorf("measure: %w", err)
			}
			pRep, err := paper.Analyze(sc)
			if err != nil {
				return ablationCell{}, fmt.Errorf("paper model: %w", err)
			}
			fLat, err := s.Latency.FrameLatency(sc)
			if err != nil {
				return ablationCell{}, fmt.Errorf("fitted model: %w", err)
			}
			return ablationCell{
				paperPred:  pRep.Latency.Total,
				fittedPred: fLat.Total,
				gt:         meas.LatencyMs,
			}, nil
		})
	if err != nil {
		return nil, err
	}
	paperPred := make([]float64, len(evals))
	fittedPred := make([]float64, len(evals))
	gts := make([]float64, len(evals))
	for i, e := range evals {
		paperPred[i] = e.paperPred
		fittedPred[i] = e.fittedPred
		gts[i] = e.gt
	}
	paperErr, err := stats.MAPE(paperPred, gts)
	if err != nil {
		return nil, err
	}
	fittedErr, err := stats.MAPE(fittedPred, gts)
	if err != nil {
		return nil, err
	}
	return &AblationResult{
		PaperErrPct:  paperErr,
		FittedErrPct: fittedErr,
		Points:       len(gts),
	}, nil
}
