package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/stats"
)

// AblationResult quantifies the DESIGN.md "re-fit, don't replay" decision:
// the paper's published coefficients (trained on the authors' physical
// testbed) versus coefficients re-fitted on this repository's synthetic
// testbed, both judged against the synthetic ground truth over the
// Fig. 4(a) sweep.
type AblationResult struct {
	// PaperErrPct is the mean latency error of the published
	// coefficients.
	PaperErrPct float64
	// FittedErrPct is the mean latency error of the re-fitted models.
	FittedErrPct float64
	// Points counts the sweep cells evaluated.
	Points int
}

// ID implements Result.
func (r *AblationResult) ID() string { return "ablation" }

// Render implements Result.
func (r *AblationResult) Render() string {
	var b strings.Builder
	b.WriteString("ablation — paper coefficients vs re-fitted models (Fig. 4a sweep)\n")
	fmt.Fprintf(&b, "  published coefficients: %6.2f%% mean latency error\n", r.PaperErrPct)
	fmt.Fprintf(&b, "  re-fitted coefficients: %6.2f%% mean latency error\n", r.FittedErrPct)
	b.WriteString("  regression coefficients are testbed-specific; the model *forms* carry.\n")
	return b.String()
}

// Ablation runs the paper-vs-fitted comparison.
func (s *Suite) Ablation() (*AblationResult, error) {
	paper := core.NewWithPaperCoefficients()
	var paperPred, fittedPred, gts []float64
	for _, size := range FrameSizes() {
		for _, freq := range CPUFrequencies() {
			sc, err := s.sweepScenario(pipeline.ModeLocal, size, freq)
			if err != nil {
				return nil, err
			}
			meas, err := s.Bench.MeasureFrames(sc, s.Trials)
			if err != nil {
				return nil, fmt.Errorf("measure: %w", err)
			}
			pRep, err := paper.Analyze(sc)
			if err != nil {
				return nil, fmt.Errorf("paper model: %w", err)
			}
			fLat, err := s.Latency.FrameLatency(sc)
			if err != nil {
				return nil, fmt.Errorf("fitted model: %w", err)
			}
			paperPred = append(paperPred, pRep.Latency.Total)
			fittedPred = append(fittedPred, fLat.Total)
			gts = append(gts, meas.LatencyMs)
		}
	}
	paperErr, err := stats.MAPE(paperPred, gts)
	if err != nil {
		return nil, err
	}
	fittedErr, err := stats.MAPE(fittedPred, gts)
	if err != nil {
		return nil, err
	}
	return &AblationResult{
		PaperErrPct:  paperErr,
		FittedErrPct: fittedErr,
		Points:       len(gts),
	}, nil
}
