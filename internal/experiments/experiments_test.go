package experiments

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/device"
	"repro/internal/sweep"
)

// suite is shared across tests: construction fits four regressions, which
// is the expensive part.
var testSuite *Suite

func getSuite(t *testing.T) *Suite {
	t.Helper()
	if testSuite == nil {
		s, err := NewSuite(42, 8000, 2000)
		if err != nil {
			t.Fatal(err)
		}
		s.Trials = 10
		testSuite = s
	}
	return testSuite
}

func TestNewSuiteRejectsTinyDatasets(t *testing.T) {
	if _, err := NewSuite(1, 10, 10); err == nil {
		t.Fatal("tiny datasets must error")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	s := getSuite(t)
	if _, err := s.Run("fig9z"); !errors.Is(err, ErrUnknownExperiment) {
		t.Fatalf("unknown id error = %v", err)
	}
}

func TestIDsCoverAllRunners(t *testing.T) {
	s := getSuite(t)
	for _, id := range IDs() {
		r, err := s.Run(id)
		if err != nil {
			t.Fatalf("run %s: %v", id, err)
		}
		if r.ID() != id {
			t.Fatalf("result id %q != %q", r.ID(), id)
		}
		if r.Render() == "" {
			t.Fatalf("%s renders empty", id)
		}
	}
}

func TestFig4aAccuracy(t *testing.T) {
	s := getSuite(t)
	res, err := s.Fig4a(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(FrameSizes())*len(CPUFrequencies()) {
		t.Fatalf("grid size = %d", len(res.Points))
	}
	// The paper reports 2.74% mean error; the reproduction target is
	// single-digit error.
	if res.MeanErrPct > 10 {
		t.Fatalf("fig4a mean error = %v%%, want < 10%%", res.MeanErrPct)
	}
	// Shape: latency grows with frame size at fixed frequency.
	byFreq := map[float64][]SweepPoint{}
	for _, p := range res.Points {
		byFreq[p.CPUFreqGHz] = append(byFreq[p.CPUFreqGHz], p)
	}
	for freq, pts := range byFreq {
		for i := 1; i < len(pts); i++ {
			if pts[i].GroundTruth <= pts[i-1].GroundTruth {
				t.Fatalf("GT latency not increasing in size at %v GHz", freq)
			}
			if pts[i].Proposed <= pts[i-1].Proposed {
				t.Fatalf("model latency not increasing in size at %v GHz", freq)
			}
		}
	}
	// Shape: at fixed size, 3 GHz beats 1 GHz.
	for _, size := range FrameSizes() {
		var l1, l3 float64
		for _, p := range res.Points {
			if p.FrameSizePx2 == size && p.CPUFreqGHz == 1 {
				l1 = p.GroundTruth
			}
			if p.FrameSizePx2 == size && p.CPUFreqGHz == 3 {
				l3 = p.GroundTruth
			}
		}
		if l3 >= l1 {
			t.Fatalf("GT at %v px²: 3 GHz (%v) must beat 1 GHz (%v)", size, l3, l1)
		}
	}
}

func TestFig4bAccuracy(t *testing.T) {
	s := getSuite(t)
	res, err := s.Fig4b(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanErrPct > 10 {
		t.Fatalf("fig4b mean error = %v%%, want < 10%%", res.MeanErrPct)
	}
}

func TestFig4cdAccuracy(t *testing.T) {
	s := getSuite(t)
	c, err := s.Fig4c(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if c.MeanErrPct > 12 {
		t.Fatalf("fig4c mean error = %v%%, want < 12%%", c.MeanErrPct)
	}
	d, err := s.Fig4d(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if d.MeanErrPct > 12 {
		t.Fatalf("fig4d mean error = %v%%, want < 12%%", d.MeanErrPct)
	}
	for _, p := range append(c.Points, d.Points...) {
		if p.GroundTruth <= 0 || p.Proposed <= 0 {
			t.Fatalf("non-positive energy point: %+v", p)
		}
	}
}

func TestFig4eOrdering(t *testing.T) {
	s := getSuite(t)
	res, err := s.Fig4e(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("series = %d, want 3", len(res.Series))
	}
	// Final AoI must order 67 Hz > 100 Hz > 200 Hz in both GT and model.
	m200 := res.Series[0].Model[len(res.Series[0].Model)-1].AoIMs
	m100 := res.Series[1].Model[len(res.Series[1].Model)-1].AoIMs
	m67 := res.Series[2].Model[len(res.Series[2].Model)-1].AoIMs
	if !(m67 > m100 && m100 > m200) {
		t.Fatalf("model AoI ordering wrong: 67=%v 100=%v 200=%v", m67, m100, m200)
	}
	g200 := res.Series[0].GroundTruth[len(res.Series[0].GroundTruth)-1].AoIMs
	g100 := res.Series[1].GroundTruth[len(res.Series[1].GroundTruth)-1].AoIMs
	g67 := res.Series[2].GroundTruth[len(res.Series[2].GroundTruth)-1].AoIMs
	if !(g67 > g100 && g100 > g200) {
		t.Fatalf("GT AoI ordering wrong: 67=%v 100=%v 200=%v", g67, g100, g200)
	}
	for _, srs := range res.Series {
		if srs.MeanErrMs > 3 {
			t.Fatalf("series %s model-vs-GT gap = %v ms", srs.Label, srs.MeanErrMs)
		}
	}
}

func TestFig4fAnchors(t *testing.T) {
	s := getSuite(t)
	res, err := s.Fig4f(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Paper anchors: AoI 10/15/20 ms with RoI 0.5/0.33/0.25 at the first
	// three updates (small buffer epsilon tolerated).
	wantAoI := []float64{10, 15, 20}
	wantRoI := []float64{0.5, 1.0 / 3.0, 0.25}
	for i := 0; i < 3; i++ {
		if diff := res.Points[i].AoIMs - wantAoI[i]; diff < -0.2 || diff > 0.2 {
			t.Fatalf("AoI[%d] = %v, want ≈%v", i, res.Points[i].AoIMs, wantAoI[i])
		}
		if diff := res.Points[i].RoI - wantRoI[i]; diff < -0.02 || diff > 0.02 {
			t.Fatalf("RoI[%d] = %v, want ≈%v", i, res.Points[i].RoI, wantRoI[i])
		}
	}
}

func TestFig5Ordering(t *testing.T) {
	s := getSuite(t)
	for _, run := range []func(context.Context) (*Fig5Result, error){s.Fig5a, s.Fig5b} {
		res, err := run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Points) != len(FrameSizes()) {
			t.Fatalf("%s points = %d", res.ID(), len(res.Points))
		}
		// The paper's headline: proposed > LEAF > FACT.
		if !(res.MeanProposed > res.MeanLEAF && res.MeanLEAF > res.MeanFACT) {
			t.Fatalf("%s ordering wrong: proposed=%v LEAF=%v FACT=%v",
				res.ID(), res.MeanProposed, res.MeanLEAF, res.MeanFACT)
		}
		if res.MeanProposed < 85 {
			t.Fatalf("%s proposed accuracy = %v%%, want ≥ 85%%", res.ID(), res.MeanProposed)
		}
		if res.GapFACT <= 0 || res.GapLEAF <= 0 {
			t.Fatalf("%s gaps must be positive: %v %v", res.ID(), res.GapFACT, res.GapLEAF)
		}
	}
}

// TestFig5IndependentOfPriorMeasurements is the regression test for the
// latent order-dependence bug: the Fig. 5 calibration campaign used to
// draw from the bench's shared serial RNG, so its observations — and the
// calibrated FACT/LEAF constants — changed if any measurement ran before
// it. With seeded measurements, Fig5a after a full Fig4a run must match
// Fig5a on a fresh suite byte for byte.
func TestFig5IndependentOfPriorMeasurements(t *testing.T) {
	build := func() *Suite {
		t.Helper()
		s, err := NewSuite(7, 4000, 1000)
		if err != nil {
			t.Fatal(err)
		}
		s.Trials = 5
		return s
	}

	fresh := build()
	want, err := fresh.Fig5a(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	used := build()
	if _, err := used.Fig4a(context.Background()); err != nil {
		t.Fatal(err)
	}
	got, err := used.Fig5a(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got.Render() != want.Render() {
		t.Fatalf("Fig5a depends on prior measurements:\n--- fresh suite\n%s\n--- after Fig4a\n%s",
			want.Render(), got.Render())
	}
}

// TestRunContextCanceled pins the cancelation contract: a canceled
// context must abort an experiment's in-flight sweeps instead of letting
// the full measurement grid run to completion.
func TestRunContextCanceled(t *testing.T) {
	s := getSuite(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, id := range []string{"fig4a", "fig5a", "ablation"} {
		if _, err := s.RunContext(ctx, id); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s with canceled ctx: err = %v, want context.Canceled", id, err)
		}
	}
}

// TestStreamAllOrderAndEquivalence checks that StreamAll emits every
// experiment in paper order and produces the same results as RunAll.
func TestStreamAllOrderAndEquivalence(t *testing.T) {
	s := getSuite(t)
	all, err := s.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	var streamed []Result
	if err := s.StreamAll(context.Background(), func(r Result) error {
		streamed = append(streamed, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(IDs()) {
		t.Fatalf("streamed %d results, want %d", len(streamed), len(IDs()))
	}
	for i, id := range IDs() {
		if streamed[i].ID() != id {
			t.Fatalf("streamed[%d] = %s, want %s", i, streamed[i].ID(), id)
		}
		if streamed[i].Render() != all[i].Render() {
			t.Fatalf("%s: StreamAll diverges from RunAll", id)
		}
	}
}

// TestStreamGridMatchesRunGrid pins the streaming grid API: emitted
// points arrive in canonical order and match the buffered result
// exactly.
func TestStreamGridMatchesRunGrid(t *testing.T) {
	s := getSuite(t)
	grid := sweep.Grid{
		Devices:    deviceList(t, "XR1", "XR6"),
		FrameSizes: []float64{300, 700},
		CPUFreqs:   []float64{1, 2},
	}
	want, err := s.RunGrid(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []GridPoint
	got, err := s.StreamGrid(context.Background(), grid, func(p GridPoint) error {
		streamed = append(streamed, p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(want.Points) {
		t.Fatalf("streamed %d points, want %d", len(streamed), len(want.Points))
	}
	for i := range streamed {
		if streamed[i] != want.Points[i] {
			t.Fatalf("streamed[%d] diverges from RunGrid", i)
		}
	}
	if got.Render() != want.Render() {
		t.Fatal("StreamGrid result diverges from RunGrid")
	}
	// The incremental render pieces reassemble the exact buffered table.
	var b strings.Builder
	b.WriteString(want.RenderHeader())
	for _, p := range want.Points {
		b.WriteString(p.RenderRow())
	}
	b.WriteString(want.RenderFooter())
	if b.String() != want.Render() {
		t.Fatal("header/row/footer pieces diverge from Render")
	}
}

func deviceList(t *testing.T, names ...string) []device.Device {
	t.Helper()
	out := make([]device.Device, len(names))
	for i, n := range names {
		d, err := device.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = d
	}
	return out
}

// TestCacheSharesCellsAcrossExperiments pins the memoizing cache at the
// experiments layer: the ablation evaluates exactly the Fig. 4(a) local
// grid, so running it after Fig. 4(a) must measure nothing new.
func TestCacheSharesCellsAcrossExperiments(t *testing.T) {
	s, err := NewSuite(7, 4000, 1000)
	if err != nil {
		t.Fatal(err)
	}
	s.Trials = 5
	if _, err := s.Fig4a(context.Background()); err != nil {
		t.Fatal(err)
	}
	st, ok := s.CacheStats()
	if !ok {
		t.Fatal("default suite must expose cache stats")
	}
	if st.Misses != 15 || st.Hits != 0 {
		t.Fatalf("after fig4a: %+v, want 15 misses / 0 hits", st)
	}
	if _, err := s.Ablation(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st, _ = s.CacheStats(); st.Misses != 15 || st.Hits != 15 {
		t.Fatalf("after ablation: %+v, want 15 misses / 15 hits", st)
	}
}

func TestTableRenders(t *testing.T) {
	s := getSuite(t)
	t1, err := s.Table1(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Devices) != 8 {
		t.Fatalf("table1 devices = %d", len(t1.Devices))
	}
	for _, want := range []string{"XR1", "Meta Quest 2", "Jetson AGX"} {
		if !strings.Contains(t1.Render(), want) {
			t.Fatalf("table1 missing %q", want)
		}
	}
	t2, err := s.Table2(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Models) != 11 || len(t2.Complexity) != 11 {
		t.Fatalf("table2 sizes = %d/%d", len(t2.Models), len(t2.Complexity))
	}
	if !strings.Contains(t2.Render(), "YOLOv3") {
		t.Fatal("table2 missing YOLOv3")
	}
}

func TestFitSummaryAgainstPaper(t *testing.T) {
	s := getSuite(t)
	res, err := s.FitSummary(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	for _, want := range []string{"Eq. 3", "Eq. 10", "Eq. 12", "Eq. 21"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fit summary missing %q:\n%s", want, out)
		}
	}
}

func TestRunAll(t *testing.T) {
	s := getSuite(t)
	results, err := s.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(IDs()) {
		t.Fatalf("results = %d, want %d", len(results), len(IDs()))
	}
}

func TestWriteReport(t *testing.T) {
	s := getSuite(t)
	var buf bytes.Buffer
	if err := s.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# XR performance-analysis reproduction report",
		"## Table I", "## Regression fits", "## Fig. 4(a)",
		"## Fig. 5(b)", "## Ablation", "## Verdict",
		"| Latency accuracy ordering |",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
	// Both headline orderings must hold in the generated verdict.
	if strings.Contains(out, "| NO |") {
		t.Fatalf("verdict failed:\n%s", out[strings.Index(out, "## Verdict"):])
	}
}
