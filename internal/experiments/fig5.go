package experiments

import (
	"fmt"
	"strings"

	"repro/internal/baseline"
	"repro/internal/pipeline"
	"repro/internal/stats"
)

// AccuracyPoint is one frame-size cell of a Fig. 5 panel: normalized
// accuracy (GT = 100%) of each analytical model.
type AccuracyPoint struct {
	// FrameSizePx2 is the x-axis value.
	FrameSizePx2 float64
	// Proposed, FACT, LEAF are normalized accuracies in percent.
	Proposed float64
	FACT     float64
	LEAF     float64
}

// Fig5Result is one Fig. 5 panel (latency or energy, remote inference).
type Fig5Result struct {
	id string
	// Title describes the panel.
	Title string
	// Points holds the per-frame-size accuracies.
	Points []AccuracyPoint
	// MeanProposed/MeanFACT/MeanLEAF are grid means.
	MeanProposed float64
	MeanFACT     float64
	MeanLEAF     float64
	// GapFACT and GapLEAF are the accuracy advantages of the proposed
	// model in percentage points; the paper reports 17.59/7.49 for
	// latency and 15.30/8.71 for energy.
	GapFACT float64
	GapLEAF float64
	// PaperGapFACT and PaperGapLEAF are the published advantages.
	PaperGapFACT float64
	PaperGapLEAF float64
}

// ID implements Result.
func (r *Fig5Result) ID() string { return r.id }

// Render implements Result.
func (r *Fig5Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s (normalized accuracy, GT = 100%%)\n", r.id, r.Title)
	fmt.Fprintf(&b, "%10s %10s %8s %8s\n", "size(px²)", "proposed", "FACT", "LEAF")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%10.0f %10.2f %8.2f %8.2f\n",
			p.FrameSizePx2, p.Proposed, p.FACT, p.LEAF)
	}
	fmt.Fprintf(&b, "means: proposed %.2f%%, FACT %.2f%%, LEAF %.2f%%\n",
		r.MeanProposed, r.MeanFACT, r.MeanLEAF)
	fmt.Fprintf(&b, "proposed advantage: +%.2f pp vs FACT (paper +%.2f), +%.2f pp vs LEAF (paper +%.2f)\n",
		r.GapFACT, r.PaperGapFACT, r.GapLEAF, r.PaperGapLEAF)
	return b.String()
}

// calibrationGrid builds the baselines' reference measurement campaign: a
// compact remote-mode grid around the center operating point (the way the
// original FACT/LEAF papers estimated their model constants on their own
// testbeds). The evaluation grid then stresses the corners — 1 and 3 GHz —
// where the baselines' cycles-over-frequency assumption departs from the
// allocated-resource reality.
func (s *Suite) calibrationGrid() ([]baseline.Observation, error) {
	var obs []baseline.Observation
	for _, size := range []float64{400, 500, 600} {
		for _, freq := range []float64{1.5, 2, 2.5} {
			sc, err := s.sweepScenario(pipeline.ModeRemote, size, freq)
			if err != nil {
				return nil, err
			}
			m, err := s.Bench.MeasureFrames(sc, s.Trials)
			if err != nil {
				return nil, fmt.Errorf("calibration measure: %w", err)
			}
			obs = append(obs, baseline.Observation{
				Scenario: sc, LatencyMs: m.LatencyMs, EnergyMJ: m.EnergyMJ,
			})
		}
	}
	return obs, nil
}

// runFig5 evaluates one Fig. 5 panel across frame sizes, averaging each
// model's normalized accuracy over the 1/2/3 GHz operating points.
func (s *Suite) runFig5(id, title string, wantEnergy bool, paperGapFACT, paperGapLEAF float64) (*Fig5Result, error) {
	obs, err := s.calibrationGrid()
	if err != nil {
		return nil, err
	}
	fact := baseline.NewFACT()
	if err := fact.Calibrate(obs); err != nil {
		return nil, fmt.Errorf("calibrate FACT: %w", err)
	}
	leaf := baseline.NewLEAF()
	if err := leaf.Calibrate(obs); err != nil {
		return nil, fmt.Errorf("calibrate LEAF: %w", err)
	}

	res := &Fig5Result{
		id: id, Title: title,
		PaperGapFACT: paperGapFACT, PaperGapLEAF: paperGapLEAF,
	}
	for _, size := range FrameSizes() {
		var accP, accF, accL float64
		for _, freq := range CPUFrequencies() {
			sc, err := s.sweepScenario(pipeline.ModeRemote, size, freq)
			if err != nil {
				return nil, err
			}
			meas, err := s.Bench.MeasureFrames(sc, s.Trials)
			if err != nil {
				return nil, fmt.Errorf("measure: %w", err)
			}

			var gt, proposed, factPred, leafPred float64
			if wantEnergy {
				gt = meas.EnergyMJ
				eb, _, err := s.Energy.FrameEnergy(sc)
				if err != nil {
					return nil, err
				}
				proposed = eb.Total
				if factPred, err = fact.EnergyMJ(sc); err != nil {
					return nil, err
				}
				if leafPred, err = leaf.EnergyMJ(sc); err != nil {
					return nil, err
				}
			} else {
				gt = meas.LatencyMs
				lb, err := s.Latency.FrameLatency(sc)
				if err != nil {
					return nil, err
				}
				proposed = lb.Total
				if factPred, err = fact.LatencyMs(sc); err != nil {
					return nil, err
				}
				if leafPred, err = leaf.LatencyMs(sc); err != nil {
					return nil, err
				}
			}
			accP += stats.NormalizedAccuracy(proposed, gt)
			accF += stats.NormalizedAccuracy(factPred, gt)
			accL += stats.NormalizedAccuracy(leafPred, gt)
		}
		nf := float64(len(CPUFrequencies()))
		res.Points = append(res.Points, AccuracyPoint{
			FrameSizePx2: size,
			Proposed:     accP / nf,
			FACT:         accF / nf,
			LEAF:         accL / nf,
		})
	}
	for _, p := range res.Points {
		res.MeanProposed += p.Proposed
		res.MeanFACT += p.FACT
		res.MeanLEAF += p.LEAF
	}
	n := float64(len(res.Points))
	res.MeanProposed /= n
	res.MeanFACT /= n
	res.MeanLEAF /= n
	res.GapFACT = res.MeanProposed - res.MeanFACT
	res.GapLEAF = res.MeanProposed - res.MeanLEAF
	return res, nil
}

// Fig5a reproduces Fig. 5(a): end-to-end latency accuracy for remote
// inference — proposed vs FACT vs LEAF.
func (s *Suite) Fig5a() (*Fig5Result, error) {
	return s.runFig5("fig5a", "end-to-end latency accuracy, remote inference",
		false, 17.59, 7.49)
}

// Fig5b reproduces Fig. 5(b): end-to-end energy accuracy for remote
// inference.
func (s *Suite) Fig5b() (*Fig5Result, error) {
	return s.runFig5("fig5b", "end-to-end energy accuracy, remote inference",
		true, 15.30, 8.71)
}
