package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/baseline"
	"repro/internal/pipeline"
	"repro/internal/stats"
)

// AccuracyPoint is one frame-size cell of a Fig. 5 panel: normalized
// accuracy (GT = 100%) of each analytical model.
type AccuracyPoint struct {
	// FrameSizePx2 is the x-axis value.
	FrameSizePx2 float64
	// Proposed, FACT, LEAF are normalized accuracies in percent.
	Proposed float64
	FACT     float64
	LEAF     float64
}

// Fig5Result is one Fig. 5 panel (latency or energy, remote inference).
type Fig5Result struct {
	id string
	// Title describes the panel.
	Title string
	// Points holds the per-frame-size accuracies.
	Points []AccuracyPoint
	// MeanProposed/MeanFACT/MeanLEAF are grid means.
	MeanProposed float64
	MeanFACT     float64
	MeanLEAF     float64
	// GapFACT and GapLEAF are the accuracy advantages of the proposed
	// model in percentage points; the paper reports 17.59/7.49 for
	// latency and 15.30/8.71 for energy.
	GapFACT float64
	GapLEAF float64
	// PaperGapFACT and PaperGapLEAF are the published advantages.
	PaperGapFACT float64
	PaperGapLEAF float64
}

// ID implements Result.
func (r *Fig5Result) ID() string { return r.id }

// Render implements Result.
func (r *Fig5Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s (normalized accuracy, GT = 100%%)\n", r.id, r.Title)
	fmt.Fprintf(&b, "%10s %10s %8s %8s\n", "size(px²)", "proposed", "FACT", "LEAF")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%10.0f %10.2f %8.2f %8.2f\n",
			p.FrameSizePx2, p.Proposed, p.FACT, p.LEAF)
	}
	fmt.Fprintf(&b, "means: proposed %.2f%%, FACT %.2f%%, LEAF %.2f%%\n",
		r.MeanProposed, r.MeanFACT, r.MeanLEAF)
	fmt.Fprintf(&b, "proposed advantage: +%.2f pp vs FACT (paper +%.2f), +%.2f pp vs LEAF (paper +%.2f)\n",
		r.GapFACT, r.PaperGapFACT, r.GapLEAF, r.PaperGapLEAF)
	return b.String()
}

// calibrationGrid builds the baselines' reference measurement campaign: a
// compact remote-mode grid around the center operating point (the way the
// original FACT/LEAF papers estimated their model constants on their own
// testbeds). The evaluation grid then stresses the corners — 1 and 3 GHz —
// where the baselines' cycles-over-frequency assumption departs from the
// allocated-resource reality.
// Its observations are measured with content-addressed seeds on the
// suite's backend, so the campaign — and therefore the calibrated
// baselines — depends only on (Suite.Seed, cell configuration), never on
// measurements that happened to run earlier in the process; the two
// Fig. 5 panels share one campaign through the measurement cache.
func (s *Suite) calibrationGrid(ctx context.Context) ([]baseline.Observation, error) {
	var scs []*pipeline.Scenario
	for _, size := range []float64{400, 500, 600} {
		for _, freq := range []float64{1.5, 2, 2.5} {
			sc, err := s.sweepScenario(pipeline.ModeRemote, size, freq)
			if err != nil {
				return nil, err
			}
			scs = append(scs, sc)
		}
	}
	ms, err := s.measure(ctx, scs)
	if err != nil {
		return nil, fmt.Errorf("calibration measure: %w", err)
	}
	obs := make([]baseline.Observation, len(scs))
	for i, sc := range scs {
		obs[i] = baseline.Observation{
			Scenario: sc, LatencyMs: ms[i].LatencyMs, EnergyMJ: ms[i].EnergyMJ,
		}
	}
	return obs, nil
}

// fig5Cell is one (frame size, CPU frequency) cell's normalized
// accuracies.
type fig5Cell struct {
	accP, accF, accL float64
}

// runFig5 evaluates one Fig. 5 panel across frame sizes, averaging each
// model's normalized accuracy over the 1/2/3 GHz operating points. The
// evaluation grid's ground truth is measured on the suite's backend with
// content-addressed seeds — the same remote cells Fig. 4(b)/(d) measure,
// so the cache serves them without re-measuring — and the panel is
// byte-identical for any backend at any parallelism.
func (s *Suite) runFig5(ctx context.Context, id, title string, wantEnergy bool, paperGapFACT, paperGapLEAF float64) (*Fig5Result, error) {
	obs, err := s.calibrationGrid(ctx)
	if err != nil {
		return nil, err
	}
	fact, leaf, err := baseline.CalibratePair(obs)
	if err != nil {
		return nil, err
	}

	res := &Fig5Result{
		id: id, Title: title,
		PaperGapFACT: paperGapFACT, PaperGapLEAF: paperGapLEAF,
	}
	scs, err := s.sweepScenarios(pipeline.ModeRemote)
	if err != nil {
		return nil, err
	}
	ms, err := s.measure(ctx, scs)
	if err != nil {
		return nil, fmt.Errorf("measure: %w", err)
	}
	evals := make([]fig5Cell, len(scs))
	for i, sc := range scs {
		var gt, proposed, factPred, leafPred float64
		if wantEnergy {
			gt = ms[i].EnergyMJ
			eb, _, err := s.Energy.FrameEnergy(sc)
			if err != nil {
				return nil, err
			}
			proposed = eb.Total
			if factPred, err = fact.EnergyMJ(sc); err != nil {
				return nil, err
			}
			if leafPred, err = leaf.EnergyMJ(sc); err != nil {
				return nil, err
			}
		} else {
			gt = ms[i].LatencyMs
			lb, err := s.Latency.FrameLatency(sc)
			if err != nil {
				return nil, err
			}
			proposed = lb.Total
			if factPred, err = fact.LatencyMs(sc); err != nil {
				return nil, err
			}
			if leafPred, err = leaf.LatencyMs(sc); err != nil {
				return nil, err
			}
		}
		evals[i] = fig5Cell{
			accP: stats.NormalizedAccuracy(proposed, gt),
			accF: stats.NormalizedAccuracy(factPred, gt),
			accL: stats.NormalizedAccuracy(leafPred, gt),
		}
	}
	// sweepCells enumerates frequencies innermost, so each frame size owns
	// one contiguous run of len(CPUFrequencies()) cells.
	nf := len(CPUFrequencies())
	for i, size := range FrameSizes() {
		var p AccuracyPoint
		p.FrameSizePx2 = size
		for _, c := range evals[i*nf : (i+1)*nf] {
			p.Proposed += c.accP
			p.FACT += c.accF
			p.LEAF += c.accL
		}
		p.Proposed /= float64(nf)
		p.FACT /= float64(nf)
		p.LEAF /= float64(nf)
		res.Points = append(res.Points, p)
	}
	for _, p := range res.Points {
		res.MeanProposed += p.Proposed
		res.MeanFACT += p.FACT
		res.MeanLEAF += p.LEAF
	}
	n := float64(len(res.Points))
	res.MeanProposed /= n
	res.MeanFACT /= n
	res.MeanLEAF /= n
	res.GapFACT = res.MeanProposed - res.MeanFACT
	res.GapLEAF = res.MeanProposed - res.MeanLEAF
	return res, nil
}

// Fig5a reproduces Fig. 5(a): end-to-end latency accuracy for remote
// inference — proposed vs FACT vs LEAF.
func (s *Suite) Fig5a(ctx context.Context) (*Fig5Result, error) {
	return s.runFig5(ctx, "fig5a", "end-to-end latency accuracy, remote inference",
		false, 17.59, 7.49)
}

// Fig5b reproduces Fig. 5(b): end-to-end energy accuracy for remote
// inference.
func (s *Suite) Fig5b(ctx context.Context) (*Fig5Result, error) {
	return s.runFig5(ctx, "fig5b", "end-to-end energy accuracy, remote inference",
		true, 15.30, 8.71)
}
