package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/aoi"
	"repro/internal/pipeline"
	"repro/internal/queue"
	"repro/internal/sensors"
	"repro/internal/stats"
	"repro/internal/sweep"
)

// SweepPoint is one (frame size, CPU frequency) cell of a Fig. 4 panel.
type SweepPoint struct {
	// FrameSizePx2 is the x-axis value.
	FrameSizePx2 float64
	// CPUFreqGHz is the series.
	CPUFreqGHz float64
	// GroundTruth is the bench measurement (ms or mJ).
	GroundTruth float64
	// Proposed is the fitted analytical model's prediction.
	Proposed float64
	// ErrPct is |Proposed−GT|/GT in percent.
	ErrPct float64
}

// SweepResult is one Fig. 4(a)–(d) panel.
type SweepResult struct {
	id string
	// Title describes the panel.
	Title string
	// Unit is "ms" or "mJ".
	Unit string
	// Points holds the sweep grid.
	Points []SweepPoint
	// MeanErrPct is the mean absolute percentage error across the grid.
	MeanErrPct float64
	// PaperMeanErrPct is the error the paper reports for this panel.
	PaperMeanErrPct float64
}

// ID implements Result.
func (r *SweepResult) ID() string { return r.id }

// Render implements Result.
func (r *SweepResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", r.id, r.Title)
	fmt.Fprintf(&b, "%10s %8s %12s %12s %8s\n", "size(px²)", "f_c(GHz)", "GT("+r.Unit+")", "model("+r.Unit+")", "err%%")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%10.0f %8.0f %12.1f %12.1f %8.2f\n",
			p.FrameSizePx2, p.CPUFreqGHz, p.GroundTruth, p.Proposed, p.ErrPct)
	}
	fmt.Fprintf(&b, "mean error: %.2f%% (paper: %.2f%%)\n", r.MeanErrPct, r.PaperMeanErrPct)
	return b.String()
}

// sweepCell enumerates the Fig. 4 grid in panel order: frame sizes
// outermost, CPU frequencies innermost.
type sweepCell struct {
	size, freq float64
}

func sweepCells() []sweepCell {
	var cells []sweepCell
	for _, size := range FrameSizes() {
		for _, freq := range CPUFrequencies() {
			cells = append(cells, sweepCell{size, freq})
		}
	}
	return cells
}

// sweepScenarios materializes the Fig. 4 grid for one inference mode.
func (s *Suite) sweepScenarios(mode pipeline.InferenceMode) ([]*pipeline.Scenario, error) {
	cells := sweepCells()
	scs := make([]*pipeline.Scenario, len(cells))
	for i, c := range cells {
		sc, err := s.sweepScenario(mode, c.size, c.freq)
		if err != nil {
			return nil, err
		}
		scs[i] = sc
	}
	return scs, nil
}

// runSweep evaluates a Fig. 4 panel: ground truth measured on the suite's
// execution backend (in-process pool, subprocess shards, or the
// memoizing cache over either), predictions from the fitted models. The
// content-addressed measurement seeds keep the panel byte-identical for
// any backend at any parallelism.
func (s *Suite) runSweep(ctx context.Context, id, title, unit string, mode pipeline.InferenceMode,
	wantEnergy bool, paperErr float64) (*SweepResult, error) {
	res := &SweepResult{id: id, Title: title, Unit: unit, PaperMeanErrPct: paperErr}
	cells := sweepCells()
	scs, err := s.sweepScenarios(mode)
	if err != nil {
		return nil, err
	}
	ms, err := s.measure(ctx, scs)
	if err != nil {
		return nil, fmt.Errorf("measure: %w", err)
	}
	points := make([]SweepPoint, len(cells))
	for i, c := range cells {
		var gt, pred float64
		if wantEnergy {
			gt = ms[i].EnergyMJ
			eb, _, err := s.Energy.FrameEnergy(scs[i])
			if err != nil {
				return nil, fmt.Errorf("model energy: %w", err)
			}
			pred = eb.Total
		} else {
			gt = ms[i].LatencyMs
			lb, err := s.Latency.FrameLatency(scs[i])
			if err != nil {
				return nil, fmt.Errorf("model latency: %w", err)
			}
			pred = lb.Total
		}
		errPct := 0.0
		if gt != 0 {
			errPct = 100 * abs(pred-gt) / gt
		}
		points[i] = SweepPoint{
			FrameSizePx2: c.size, CPUFreqGHz: c.freq,
			GroundTruth: gt, Proposed: pred, ErrPct: errPct,
		}
	}
	res.Points = points
	preds := make([]float64, len(points))
	gts := make([]float64, len(points))
	for i, p := range points {
		preds[i] = p.Proposed
		gts[i] = p.GroundTruth
	}
	mape, err := stats.MAPE(preds, gts)
	if err != nil {
		return nil, fmt.Errorf("mean error: %w", err)
	}
	res.MeanErrPct = mape
	return res, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Fig4a reproduces Fig. 4(a): end-to-end latency, local inference.
func (s *Suite) Fig4a(ctx context.Context) (*SweepResult, error) {
	return s.runSweep(ctx, "fig4a", "end-to-end latency, local inference (GT vs proposed)",
		"ms", pipeline.ModeLocal, false, 2.74)
}

// Fig4b reproduces Fig. 4(b): end-to-end latency, remote inference
// (no device mobility).
func (s *Suite) Fig4b(ctx context.Context) (*SweepResult, error) {
	return s.runSweep(ctx, "fig4b", "end-to-end latency, remote inference (GT vs proposed)",
		"ms", pipeline.ModeRemote, false, 3.23)
}

// Fig4c reproduces Fig. 4(c): end-to-end energy, local inference.
func (s *Suite) Fig4c(ctx context.Context) (*SweepResult, error) {
	return s.runSweep(ctx, "fig4c", "end-to-end energy, local inference (GT vs proposed)",
		"mJ", pipeline.ModeLocal, true, 3.52)
}

// Fig4d reproduces Fig. 4(d): end-to-end energy, remote inference.
func (s *Suite) Fig4d(ctx context.Context) (*SweepResult, error) {
	return s.runSweep(ctx, "fig4d", "end-to-end energy, remote inference (GT vs proposed)",
		"mJ", pipeline.ModeRemote, true, 5.38)
}

// AoISeriesResult is one sensor's trajectory in Fig. 4(e).
type AoISeriesResult struct {
	// Label names the series (e.g. "200 Hz").
	Label string
	// SensorHz is the generation frequency.
	SensorHz float64
	// GroundTruth is the discrete-event simulated trajectory.
	GroundTruth []aoi.Point
	// Model is the analytical trajectory.
	Model []aoi.Point
	// MeanErrMs is the mean absolute gap between the two.
	MeanErrMs float64
}

// Fig4eResult reproduces Fig. 4(e): AoI over time for three sensor
// frequencies.
type Fig4eResult struct {
	// Series holds one entry per sensor frequency.
	Series []AoISeriesResult
}

// ID implements Result.
func (r *Fig4eResult) ID() string { return "fig4e" }

// Render implements Result.
func (r *Fig4eResult) Render() string {
	var b strings.Builder
	b.WriteString("fig4e — AoI vs time at sensor frequencies 200/100/67 Hz (GT = DES, model = Eq. 23)\n")
	for _, srs := range r.Series {
		fmt.Fprintf(&b, "series %s (mean |GT−model| = %.2f ms)\n", srs.Label, srs.MeanErrMs)
		fmt.Fprintf(&b, "%10s %12s %12s\n", "t(ms)", "GT AoI(ms)", "model AoI(ms)")
		for i := range srs.Model {
			fmt.Fprintf(&b, "%10.0f %12.2f %12.2f\n",
				srs.Model[i].TimeMs, srs.GroundTruth[i].AoIMs, srs.Model[i].AoIMs)
		}
	}
	return b.String()
}

// fig4eBuffer is the input-buffer configuration of the AoI emulation: the
// aggregate sensor stream (200+100+66.67 Hz ≈ 0.367 packets/ms) against a
// 2 packets/ms service rate.
func fig4eBuffer() (queue.MM1, error) {
	lambda, err := queue.CompositeArrivalRate(0.2, 0.1, 0.0667)
	if err != nil {
		return queue.MM1{}, err
	}
	return queue.NewMM1(lambda, 2.0)
}

// Fig4e reproduces the AoI emulation: three sensors generating every 5,
// 10, and 15 ms against an application requiring one update per 5 ms.
func (s *Suite) Fig4e(ctx context.Context) (*Fig4eResult, error) {
	buf, err := fig4eBuffer()
	if err != nil {
		return nil, fmt.Errorf("buffer: %w", err)
	}
	specs := []struct {
		label string
		hz    float64
	}{
		{"200 Hz", 200}, {"100 Hz", 100}, {"67 Hz", 66.67},
	}
	const updates = 18 // covers the paper's 15–90 ms time axis
	// The three series are independent discrete-event simulations, so they
	// run on the sweep engine. The simulation keeps its historical fixed
	// seeds (1000+index) rather than engine shard seeds so the figure
	// reproduces the seed repository's trajectories exactly — hence only
	// the worker count is taken from the suite, not a seed base.
	series, err := sweep.Run(ctx, len(specs), sweep.Options{Workers: s.Workers},
		func(_ context.Context, sh sweep.Shard) (AoISeriesResult, error) {
			spec := specs[sh.Index]
			sen, err := sensors.NewSensor(spec.label, spec.hz, 30)
			if err != nil {
				return AoISeriesResult{}, fmt.Errorf("sensor %s: %w", spec.label, err)
			}
			cfg := aoi.Config{Sensor: sen, RequestFrequencyHz: 200, Buffer: buf}
			model, err := cfg.Series(updates)
			if err != nil {
				return AoISeriesResult{}, fmt.Errorf("model series %s: %w", spec.label, err)
			}
			gt, err := cfg.Simulate(updates, 0.02, stats.NewRNG(1000+int64(sh.Index)))
			if err != nil {
				return AoISeriesResult{}, fmt.Errorf("simulate %s: %w", spec.label, err)
			}
			var gap float64
			for j := range model {
				gap += abs(gt[j].AoIMs - model[j].AoIMs)
			}
			return AoISeriesResult{
				Label: spec.label, SensorHz: spec.hz,
				GroundTruth: gt, Model: model,
				MeanErrMs: gap / float64(len(model)),
			}, nil
		})
	if err != nil {
		return nil, err
	}
	return &Fig4eResult{Series: series}, nil
}

// Fig4fResult reproduces Fig. 4(f): the AoI staircase and RoI of the
// 100 Hz sensor at each update cycle.
type Fig4fResult struct {
	// Points holds the staircase.
	Points []aoi.Point
}

// ID implements Result.
func (r *Fig4fResult) ID() string { return "fig4f" }

// Render implements Result.
func (r *Fig4fResult) Render() string {
	var b strings.Builder
	b.WriteString("fig4f — AoI staircase and RoI, 100 Hz sensor vs 5 ms update requirement\n")
	fmt.Fprintf(&b, "%8s %10s %8s\n", "t(ms)", "AoI(ms)", "RoI")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%8.0f %10.2f %8.3f\n", p.TimeMs, p.AoIMs, p.RoI)
	}
	b.WriteString("paper anchors: AoI 10/15/20 ms ↔ RoI 0.5/0.33/0.25\n")
	return b.String()
}

// Fig4f reproduces the 100 Hz staircase with a near-ideal buffer so the
// paper's exact anchor values (AoI 10/15/20 ms ↔ RoI 0.5/0.33/0.25) are
// visible.
func (s *Suite) Fig4f(_ context.Context) (*Fig4fResult, error) {
	sen, err := sensors.NewSensor("100 Hz", 100, 0)
	if err != nil {
		return nil, err
	}
	buf, err := queue.NewMM1(0.1, 1000)
	if err != nil {
		return nil, err
	}
	cfg := aoi.Config{Sensor: sen, RequestFrequencyHz: 200, Buffer: buf}
	pts, err := cfg.Series(7)
	if err != nil {
		return nil, err
	}
	return &Fig4fResult{Points: pts}, nil
}
