package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/stats"
	"repro/internal/sweep"
)

// GridPoint is one evaluated point of a user-defined sweep grid: bench
// ground truth versus the fitted models, for both latency and energy.
type GridPoint struct {
	// Spec is the grid point configuration.
	Spec sweep.Spec
	// LatencyGTMs and LatencyModelMs are measured vs predicted latency.
	LatencyGTMs    float64
	LatencyModelMs float64
	// LatencyErrPct is |model−GT|/GT in percent.
	LatencyErrPct float64
	// EnergyGTMJ and EnergyModelMJ are measured vs predicted energy.
	EnergyGTMJ    float64
	EnergyModelMJ float64
	// EnergyErrPct is |model−GT|/GT in percent.
	EnergyErrPct float64
}

// GridResult aggregates a full grid sweep.
type GridResult struct {
	// Points holds every grid point in canonical grid order.
	Points []GridPoint
	// MeanLatencyErrPct and MeanEnergyErrPct are the grid-wide MAPEs.
	MeanLatencyErrPct float64
	MeanEnergyErrPct  float64
}

// ID implements Result.
func (r *GridResult) ID() string { return "sweep" }

// Render implements Result: one row per grid point plus the aggregate.
func (r *GridResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sweep — %d-point scenario grid (GT vs fitted models)\n", len(r.Points))
	fmt.Fprintf(&b, "%-42s %10s %10s %7s %10s %10s %7s\n",
		"point", "GT(ms)", "model(ms)", "err%", "GT(mJ)", "model(mJ)", "err%")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-42s %10.1f %10.1f %7.2f %10.1f %10.1f %7.2f\n",
			p.Spec.Label(),
			p.LatencyGTMs, p.LatencyModelMs, p.LatencyErrPct,
			p.EnergyGTMJ, p.EnergyModelMJ, p.EnergyErrPct)
	}
	fmt.Fprintf(&b, "mean error: latency %.2f%%, energy %.2f%%\n",
		r.MeanLatencyErrPct, r.MeanEnergyErrPct)
	return b.String()
}

// RunGrid evaluates an arbitrary device × CNN × mode × resolution × clock
// grid on the sweep engine: each point measures ground truth on the bench
// with a deterministic per-shard seed and predicts latency and energy
// with the fitted models. Results are in canonical grid order and
// byte-identical for any worker count. Cancel ctx to abort mid-sweep.
func (s *Suite) RunGrid(ctx context.Context, grid sweep.Grid) (*GridResult, error) {
	specs := grid.Points()
	points, err := sweep.Run(ctx, len(specs), s.sweepOpts("sweep"),
		func(_ context.Context, sh sweep.Shard) (GridPoint, error) {
			spec := specs[sh.Index]
			sc, err := spec.Scenario()
			if err != nil {
				return GridPoint{}, err
			}
			meas, err := s.Bench.MeasureFramesSeeded(sc, s.Trials, sh.Seed)
			if err != nil {
				return GridPoint{}, fmt.Errorf("measure %s: %w", spec.Label(), err)
			}
			eb, lb, err := s.Energy.FrameEnergy(sc)
			if err != nil {
				return GridPoint{}, fmt.Errorf("model %s: %w", spec.Label(), err)
			}
			p := GridPoint{
				Spec:           spec,
				LatencyGTMs:    meas.LatencyMs,
				LatencyModelMs: lb.Total,
				EnergyGTMJ:     meas.EnergyMJ,
				EnergyModelMJ:  eb.Total,
			}
			if p.LatencyGTMs != 0 {
				p.LatencyErrPct = 100 * abs(p.LatencyModelMs-p.LatencyGTMs) / p.LatencyGTMs
			}
			if p.EnergyGTMJ != 0 {
				p.EnergyErrPct = 100 * abs(p.EnergyModelMJ-p.EnergyGTMJ) / p.EnergyGTMJ
			}
			return p, nil
		})
	if err != nil {
		return nil, err
	}
	res := &GridResult{Points: points}
	if len(points) == 0 {
		return res, nil
	}
	latPred := make([]float64, len(points))
	latGT := make([]float64, len(points))
	enPred := make([]float64, len(points))
	enGT := make([]float64, len(points))
	for i, p := range points {
		latPred[i], latGT[i] = p.LatencyModelMs, p.LatencyGTMs
		enPred[i], enGT[i] = p.EnergyModelMJ, p.EnergyGTMJ
	}
	if res.MeanLatencyErrPct, err = stats.MAPE(latPred, latGT); err != nil {
		return nil, fmt.Errorf("latency mean error: %w", err)
	}
	if res.MeanEnergyErrPct, err = stats.MAPE(enPred, enGT); err != nil {
		return nil, fmt.Errorf("energy mean error: %w", err)
	}
	return res, nil
}
