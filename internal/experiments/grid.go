package experiments

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/pipeline"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/testbed"
)

// GridPoint is one evaluated point of a user-defined sweep grid: bench
// ground truth versus the fitted models, for both latency and energy.
type GridPoint struct {
	// Spec is the grid point configuration.
	Spec sweep.Spec
	// LatencyGTMs and LatencyModelMs are measured vs predicted latency.
	LatencyGTMs    float64
	LatencyModelMs float64
	// LatencyErrPct is |model−GT|/GT in percent.
	LatencyErrPct float64
	// EnergyGTMJ and EnergyModelMJ are measured vs predicted energy.
	EnergyGTMJ    float64
	EnergyModelMJ float64
	// EnergyErrPct is |model−GT|/GT in percent.
	EnergyErrPct float64
}

// GridResult aggregates a full grid sweep.
type GridResult struct {
	// Points holds every grid point in canonical grid order.
	Points []GridPoint
	// MeanLatencyErrPct and MeanEnergyErrPct are the grid-wide MAPEs.
	MeanLatencyErrPct float64
	MeanEnergyErrPct  float64
}

// ID implements Result.
func (r *GridResult) ID() string { return "sweep" }

// Render implements Result: one row per grid point plus the aggregate.
func (r *GridResult) Render() string {
	var b strings.Builder
	b.WriteString(r.RenderHeader())
	for _, p := range r.Points {
		b.WriteString(p.RenderRow())
	}
	b.WriteString(r.RenderFooter())
	return b.String()
}

// RenderHeader returns the table header lines; with RenderRow and
// RenderFooter it lets a streaming caller emit the exact bytes of
// Render incrementally.
func (r *GridResult) RenderHeader() string {
	return fmt.Sprintf("sweep — %d-point scenario grid (GT vs fitted models)\n", len(r.Points)) +
		fmt.Sprintf("%-42s %10s %10s %7s %10s %10s %7s\n",
			"point", "GT(ms)", "model(ms)", "err%", "GT(mJ)", "model(mJ)", "err%")
}

// RenderRow returns the point's table line.
func (p GridPoint) RenderRow() string {
	return fmt.Sprintf("%-42s %10.1f %10.1f %7.2f %10.1f %10.1f %7.2f\n",
		p.Spec.Label(),
		p.LatencyGTMs, p.LatencyModelMs, p.LatencyErrPct,
		p.EnergyGTMJ, p.EnergyModelMJ, p.EnergyErrPct)
}

// RenderFooter returns the aggregate line.
func (r *GridResult) RenderFooter() string {
	return fmt.Sprintf("mean error: latency %.2f%%, energy %.2f%%\n",
		r.MeanLatencyErrPct, r.MeanEnergyErrPct)
}

// CSVHeader is the machine-readable sweep schema.
func CSVHeader() []string {
	return []string{
		"device", "mode", "cnn", "size_px2", "cpu_ghz",
		"gt_latency_ms", "model_latency_ms", "latency_err_pct",
		"gt_energy_mj", "model_energy_mj", "energy_err_pct",
	}
}

// CSVRecord renders the point as one CSV record with full float
// precision (shortest round-trip form), so downstream tooling sees the
// exact evaluated numbers rather than the table's display rounding.
func (p GridPoint) CSVRecord() []string {
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	cnnName := p.Spec.CNN.Name
	if cnnName == "" {
		cnnName = "default"
	}
	return []string{
		p.Spec.Device.Name, p.Spec.Mode.String(), cnnName,
		f(p.Spec.FrameSizePx2), f(p.Spec.CPUFreqGHz),
		f(p.LatencyGTMs), f(p.LatencyModelMs), f(p.LatencyErrPct),
		f(p.EnergyGTMJ), f(p.EnergyModelMJ), f(p.EnergyErrPct),
	}
}

// WriteCSV writes the grid as CSV: a header row plus one record per
// point, data only (aggregates are derivable), in canonical grid order.
func (r *GridResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(CSVHeader()); err != nil {
		return err
	}
	for _, p := range r.Points {
		if err := cw.Write(p.CSVRecord()); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RunGrid evaluates an arbitrary device × CNN × mode × resolution × clock
// grid: each point measures ground truth on the suite's execution backend
// with a content-addressed deterministic seed and predicts latency and
// energy with the fitted models. Results are in canonical grid order and
// byte-identical for any backend at any parallelism. Cancel ctx to abort
// mid-sweep.
func (s *Suite) RunGrid(ctx context.Context, grid sweep.Grid) (*GridResult, error) {
	return s.StreamGrid(ctx, grid, nil)
}

// StreamGrid is RunGrid with incremental delivery: emit (when non-nil)
// runs on the caller's goroutine in canonical grid order as soon as each
// prefix of the grid completes — point k is emitted the moment points
// 0..k are all measured, even while later points are in flight. A
// non-nil error from emit cancels the sweep. The returned result holds
// the same points plus the grid-wide aggregates.
func (s *Suite) StreamGrid(ctx context.Context, grid sweep.Grid, emit func(p GridPoint) error) (*GridResult, error) {
	specs := grid.Points()
	scs := make([]*pipeline.Scenario, len(specs))
	for i, spec := range specs {
		sc, err := spec.Scenario()
		if err != nil {
			return nil, err
		}
		scs[i] = sc
	}

	res := &GridResult{Points: make([]GridPoint, 0, len(specs))}
	err := s.streamMeasurements(ctx, scs, func(i int, m testbed.Measurement) error {
		spec := specs[i]
		eb, lb, err := s.Energy.FrameEnergy(scs[i])
		if err != nil {
			return fmt.Errorf("model %s: %w", spec.Label(), err)
		}
		p := GridPoint{
			Spec:           spec,
			LatencyGTMs:    m.LatencyMs,
			LatencyModelMs: lb.Total,
			EnergyGTMJ:     m.EnergyMJ,
			EnergyModelMJ:  eb.Total,
		}
		if p.LatencyGTMs != 0 {
			p.LatencyErrPct = 100 * abs(p.LatencyModelMs-p.LatencyGTMs) / p.LatencyGTMs
		}
		if p.EnergyGTMJ != 0 {
			p.EnergyErrPct = 100 * abs(p.EnergyModelMJ-p.EnergyGTMJ) / p.EnergyGTMJ
		}
		res.Points = append(res.Points, p)
		if emit != nil {
			return emit(p)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	points := res.Points
	if len(points) == 0 {
		return res, nil
	}
	latPred := make([]float64, len(points))
	latGT := make([]float64, len(points))
	enPred := make([]float64, len(points))
	enGT := make([]float64, len(points))
	for i, p := range points {
		latPred[i], latGT[i] = p.LatencyModelMs, p.LatencyGTMs
		enPred[i], enGT[i] = p.EnergyModelMJ, p.EnergyGTMJ
	}
	if res.MeanLatencyErrPct, err = stats.MAPE(latPred, latGT); err != nil {
		return nil, fmt.Errorf("latency mean error: %w", err)
	}
	if res.MeanEnergyErrPct, err = stats.MAPE(enPred, enGT); err != nil {
		return nil, fmt.Errorf("energy mean error: %w", err)
	}
	return res, nil
}
