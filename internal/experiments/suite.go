package experiments

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/device"
	"repro/internal/energy"
	"repro/internal/latency"
	"repro/internal/pipeline"
	"repro/internal/sweep"
	"repro/internal/testbed"
)

// Common errors.
var (
	// ErrUnknownExperiment indicates an unrecognized experiment id.
	ErrUnknownExperiment = errors.New("experiments: unknown experiment")
)

// Defaults for suite construction. Trials averages repeated measurements
// per ground-truth point (the paper's controlled repeated experiments).
const (
	DefaultTrainRows = 20000
	DefaultTestRows  = 6000
	DefaultTrials    = 30
	// SweepDevice is the device used for the Fig. 4/5 sweeps; XR1 is the
	// only Table I device whose CPU reaches the paper's 3 GHz operating
	// point.
	SweepDevice = "XR1"
	// SweepCPUShare biases the sweeps toward the CPU so the frequency
	// axis of Fig. 4 is the dominant knob, as in the paper's plots.
	SweepCPUShare = 0.9
)

// FrameSizes is the Fig. 4/5 x-axis (pixel² unit).
func FrameSizes() []float64 { return []float64{300, 400, 500, 600, 700} }

// CPUFrequencies is the Fig. 4 series set in GHz.
func CPUFrequencies() []float64 { return []float64{1, 2, 3} }

// Suite owns the synthetic bench, the re-fitted models, and the evaluation
// configuration shared by all experiments.
type Suite struct {
	// Bench is the simulated testbed.
	Bench *testbed.Bench
	// Fitted holds the re-fitted regression models.
	Fitted *testbed.FitResult
	// Latency is the proposed analytical model wired with the fitted
	// components.
	Latency latency.Models
	// Energy is the proposed energy model wired with the fitted
	// components.
	Energy energy.Models
	// Trials is the measurement-averaging count for ground truth.
	Trials int
	// Seed is the bench seed; sweep shard seeds derive from it so every
	// figure is reproducible run-to-run and worker-count-independent.
	Seed int64
	// Workers sizes the sweep worker pool; 0 means GOMAXPROCS. Results
	// are byte-identical for any worker count.
	Workers int
	// Runner is the measurement execution backend. Nil selects the
	// default: an in-process sweep.PoolRunner sized by Workers, wrapped
	// in the memoizing measurement cache. Set it before the first run
	// (e.g. to a cached sweep.ProcRunner) to dispatch ground-truth
	// measurements elsewhere; every backend produces byte-identical
	// results at any parallelism.
	Runner sweep.Runner
	// Disk optionally persists measured cells across suite lifetimes
	// and processes: the default cached runner consults it before
	// dispatching to the backend and writes completed measurements
	// back, so a warm run re-measures nothing yet stays byte-identical.
	// It only applies to the default runner; a custom Runner attaches
	// its own store via sweep.WithDiskCache. Set before the first run.
	Disk *sweep.DiskCache

	defOnce   sync.Once
	defRunner sweep.Runner
}

// runner resolves the measurement backend, building the default cached
// in-process pool on first use.
func (s *Suite) runner() sweep.Runner {
	if r := s.Runner; r != nil {
		return r
	}
	s.defOnce.Do(func() {
		s.defRunner = sweep.NewCachedRunner(&sweep.PoolRunner{
			Workers: s.Workers,
			Exec:    testbed.NewExecutor(s.Bench),
		}, sweep.WithDiskCache(s.Disk))
	})
	return s.defRunner
}

// CacheStats reports the measurement cache's counters (including disk
// hits when a persistent store is attached); ok is false when the suite
// runs on a custom uncached Runner.
func (s *Suite) CacheStats() (sweep.CacheStats, bool) {
	c, ok := s.runner().(*sweep.CachedRunner)
	if !ok {
		return sweep.CacheStats{}, false
	}
	return c.Stats(), true
}

// request builds the serializable measurement unit for one scenario. The
// monitor-noise seed is content-addressed — derived from (Suite.Seed,
// request fingerprint) — so the same grid cell requested by any
// experiment, in any order, on any backend draws the same noise stream;
// that is what lets the cache serve repeats across Fig. 4, Fig. 5, and
// the ablation without changing a byte of output.
func (s *Suite) request(sc *pipeline.Scenario) (testbed.Request, error) {
	req := testbed.Request{Scenario: sc, Trials: s.Trials, NoiseRel: s.Bench.NoiseRel}
	seed, err := req.ContentSeed(s.Seed)
	if err != nil {
		return testbed.Request{}, err
	}
	req.Seed = seed
	return req, nil
}

// streamMeasurements runs seeded ground-truth measurements for the
// scenarios on the suite's backend, invoking emit on the caller's
// goroutine in input order as each prefix completes.
func (s *Suite) streamMeasurements(ctx context.Context, scs []*pipeline.Scenario, emit func(i int, m testbed.Measurement) error) error {
	reqs := make([]testbed.Request, len(scs))
	for i, sc := range scs {
		req, err := s.request(sc)
		if err != nil {
			return err
		}
		reqs[i] = req
	}
	return s.runner().Stream(ctx, reqs, emit)
}

// measure runs seeded ground-truth measurements for the scenarios on the
// suite's backend, returning observations in input order.
func (s *Suite) measure(ctx context.Context, scs []*pipeline.Scenario) ([]testbed.Measurement, error) {
	out := make([]testbed.Measurement, 0, len(scs))
	err := s.streamMeasurements(ctx, scs, func(_ int, m testbed.Measurement) error {
		out = append(out, m)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// NewSuite builds a suite: spin up the bench, generate the synthetic
// datasets, and fit the regression models per the Section VII protocol.
func NewSuite(seed int64, trainRows, testRows int) (*Suite, error) {
	bench := testbed.NewBench(seed)
	fitted, err := bench.FitModels(trainRows, testRows)
	if err != nil {
		return nil, fmt.Errorf("fit models: %w", err)
	}
	lm := latency.Models{
		Resource:   fitted.Resource,
		Encoder:    fitted.Encoder,
		Complexity: fitted.Complexity,
	}
	return &Suite{
		Bench:   bench,
		Fitted:  fitted,
		Latency: lm,
		Energy:  energy.Models{Latency: lm, Power: fitted.Power},
		Trials:  DefaultTrials,
		Seed:    seed,
	}, nil
}

// NewDefaultSuite builds a suite with the default dataset sizes.
func NewDefaultSuite(seed int64) (*Suite, error) {
	return NewSuite(seed, DefaultTrainRows, DefaultTestRows)
}

// sweepScenario builds one Fig. 4 sweep point on the sweep device.
func (s *Suite) sweepScenario(mode pipeline.InferenceMode, frameSize, cpuFreq float64) (*pipeline.Scenario, error) {
	dev, err := device.ByName(SweepDevice)
	if err != nil {
		return nil, fmt.Errorf("sweep device: %w", err)
	}
	return pipeline.NewScenario(dev,
		pipeline.WithMode(mode),
		pipeline.WithFrameSize(frameSize),
		pipeline.WithCPUFreq(cpuFreq),
		pipeline.WithCPUShare(SweepCPUShare),
	)
}

// Result is the common interface of all experiment outputs.
type Result interface {
	// ID returns the experiment identifier (e.g. "fig4a").
	ID() string
	// Render returns the human-readable table/series text.
	Render() string
}

// IDs lists the experiment identifiers in paper order.
func IDs() []string {
	return []string{
		"table1", "table2", "fit",
		"fig4a", "fig4b", "fig4c", "fig4d", "fig4e", "fig4f",
		"fig5a", "fig5b", "ablation",
	}
}

// Run executes one experiment by id.
func (s *Suite) Run(id string) (Result, error) {
	return s.RunContext(context.Background(), id)
}

// RunContext executes one experiment by id; canceling ctx aborts the
// experiment's in-flight sweeps.
func (s *Suite) RunContext(ctx context.Context, id string) (Result, error) {
	switch id {
	case "table1":
		return s.Table1(ctx)
	case "table2":
		return s.Table2(ctx)
	case "fit":
		return s.FitSummary(ctx)
	case "fig4a":
		return s.Fig4a(ctx)
	case "fig4b":
		return s.Fig4b(ctx)
	case "fig4c":
		return s.Fig4c(ctx)
	case "fig4d":
		return s.Fig4d(ctx)
	case "fig4e":
		return s.Fig4e(ctx)
	case "fig4f":
		return s.Fig4f(ctx)
	case "fig5a":
		return s.Fig5a(ctx)
	case "fig5b":
		return s.Fig5b(ctx)
	case "ablation":
		return s.Ablation(ctx)
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownExperiment, id)
	}
}

// tasks wraps every experiment as a named sweep task. The experiments
// are mutually independent — they share only read-only suite state (the
// bench physics, the fitted models) and draw noise from per-experiment
// seed streams — so the group can run at any parallelism.
func (s *Suite) tasks() []sweep.Task[Result] {
	tasks := make([]sweep.Task[Result], 0, len(IDs()))
	for _, id := range IDs() {
		id := id
		tasks = append(tasks, sweep.Task[Result]{
			Name: id,
			Run: func(ctx context.Context) (Result, error) {
				r, err := s.RunContext(ctx, id)
				if err != nil {
					return nil, fmt.Errorf("experiment %s: %w", id, err)
				}
				return r, nil
			},
		})
	}
	return tasks
}

// RunAll executes every experiment concurrently across the suite's worker
// pool and returns the results in paper order. Output is byte-identical
// for any worker count. Workers bounds each pool level, not their
// product: the task group runs up to Workers experiments at once and
// each experiment's inner sweep uses its own Workers-sized pool, so the
// transient goroutine count can reach Workers²; on oversubscribed hosts
// this costs scheduler time only, never changes a byte of output.
func (s *Suite) RunAll() ([]Result, error) {
	return sweep.RunTasks(context.Background(), s.tasks(),
		sweep.Options{Workers: s.Workers})
}

// StreamAll executes every experiment concurrently and invokes emit in
// paper order as soon as each prefix of the evaluation completes —
// experiment k is emitted the moment experiments 0..k are all done, even
// while later ones are still running. A non-nil error from emit cancels
// the remaining experiments.
func (s *Suite) StreamAll(ctx context.Context, emit func(r Result) error) error {
	return sweep.StreamTasks(ctx, s.tasks(), sweep.Options{Workers: s.Workers},
		func(_ int, _ string, r Result) error { return emit(r) })
}
