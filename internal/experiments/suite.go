// Package experiments reproduces every table and figure of the paper's
// evaluation (Section VIII): the Fig. 4 latency/energy validation sweeps,
// the Fig. 4e/4f AoI and RoI emulation, the Fig. 5 comparison against FACT
// and LEAF, the Table I/II catalogs, and the regression-fit R² summary of
// Section VII. Each runner returns a typed result plus a Render method
// producing the rows/series the paper reports.
package experiments

import (
	"errors"
	"fmt"
	"hash/fnv"

	"repro/internal/device"
	"repro/internal/energy"
	"repro/internal/latency"
	"repro/internal/pipeline"
	"repro/internal/sweep"
	"repro/internal/testbed"
)

// Common errors.
var (
	// ErrUnknownExperiment indicates an unrecognized experiment id.
	ErrUnknownExperiment = errors.New("experiments: unknown experiment")
)

// Defaults for suite construction. Trials averages repeated measurements
// per ground-truth point (the paper's controlled repeated experiments).
const (
	DefaultTrainRows = 20000
	DefaultTestRows  = 6000
	DefaultTrials    = 30
	// SweepDevice is the device used for the Fig. 4/5 sweeps; XR1 is the
	// only Table I device whose CPU reaches the paper's 3 GHz operating
	// point.
	SweepDevice = "XR1"
	// SweepCPUShare biases the sweeps toward the CPU so the frequency
	// axis of Fig. 4 is the dominant knob, as in the paper's plots.
	SweepCPUShare = 0.9
)

// FrameSizes is the Fig. 4/5 x-axis (pixel² unit).
func FrameSizes() []float64 { return []float64{300, 400, 500, 600, 700} }

// CPUFrequencies is the Fig. 4 series set in GHz.
func CPUFrequencies() []float64 { return []float64{1, 2, 3} }

// Suite owns the synthetic bench, the re-fitted models, and the evaluation
// configuration shared by all experiments.
type Suite struct {
	// Bench is the simulated testbed.
	Bench *testbed.Bench
	// Fitted holds the re-fitted regression models.
	Fitted *testbed.FitResult
	// Latency is the proposed analytical model wired with the fitted
	// components.
	Latency latency.Models
	// Energy is the proposed energy model wired with the fitted
	// components.
	Energy energy.Models
	// Trials is the measurement-averaging count for ground truth.
	Trials int
	// Seed is the bench seed; sweep shard seeds derive from it so every
	// figure is reproducible run-to-run and worker-count-independent.
	Seed int64
	// Workers sizes the sweep worker pool; 0 means GOMAXPROCS. Results
	// are byte-identical for any worker count.
	Workers int
}

// sweepOpts returns the engine options for one experiment: the shard
// seed base mixes the suite seed with the experiment id so panels draw
// independent noise streams.
func (s *Suite) sweepOpts(id string) sweep.Options {
	h := fnv.New64a()
	h.Write([]byte(id))
	return sweep.Options{
		Workers:  s.Workers,
		BaseSeed: s.Seed ^ int64(h.Sum64()),
	}
}

// NewSuite builds a suite: spin up the bench, generate the synthetic
// datasets, and fit the regression models per the Section VII protocol.
func NewSuite(seed int64, trainRows, testRows int) (*Suite, error) {
	bench := testbed.NewBench(seed)
	fitted, err := bench.FitModels(trainRows, testRows)
	if err != nil {
		return nil, fmt.Errorf("fit models: %w", err)
	}
	lm := latency.Models{
		Resource:   fitted.Resource,
		Encoder:    fitted.Encoder,
		Complexity: fitted.Complexity,
	}
	return &Suite{
		Bench:   bench,
		Fitted:  fitted,
		Latency: lm,
		Energy:  energy.Models{Latency: lm, Power: fitted.Power},
		Trials:  DefaultTrials,
		Seed:    seed,
	}, nil
}

// NewDefaultSuite builds a suite with the default dataset sizes.
func NewDefaultSuite(seed int64) (*Suite, error) {
	return NewSuite(seed, DefaultTrainRows, DefaultTestRows)
}

// sweepScenario builds one Fig. 4 sweep point on the sweep device.
func (s *Suite) sweepScenario(mode pipeline.InferenceMode, frameSize, cpuFreq float64) (*pipeline.Scenario, error) {
	dev, err := device.ByName(SweepDevice)
	if err != nil {
		return nil, fmt.Errorf("sweep device: %w", err)
	}
	return pipeline.NewScenario(dev,
		pipeline.WithMode(mode),
		pipeline.WithFrameSize(frameSize),
		pipeline.WithCPUFreq(cpuFreq),
		pipeline.WithCPUShare(SweepCPUShare),
	)
}

// Result is the common interface of all experiment outputs.
type Result interface {
	// ID returns the experiment identifier (e.g. "fig4a").
	ID() string
	// Render returns the human-readable table/series text.
	Render() string
}

// IDs lists the experiment identifiers in paper order.
func IDs() []string {
	return []string{
		"table1", "table2", "fit",
		"fig4a", "fig4b", "fig4c", "fig4d", "fig4e", "fig4f",
		"fig5a", "fig5b", "ablation",
	}
}

// Run executes one experiment by id.
func (s *Suite) Run(id string) (Result, error) {
	switch id {
	case "table1":
		return s.Table1()
	case "table2":
		return s.Table2()
	case "fit":
		return s.FitSummary()
	case "fig4a":
		return s.Fig4a()
	case "fig4b":
		return s.Fig4b()
	case "fig4c":
		return s.Fig4c()
	case "fig4d":
		return s.Fig4d()
	case "fig4e":
		return s.Fig4e()
	case "fig4f":
		return s.Fig4f()
	case "fig5a":
		return s.Fig5a()
	case "fig5b":
		return s.Fig5b()
	case "ablation":
		return s.Ablation()
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownExperiment, id)
	}
}

// RunAll executes every experiment in paper order.
func (s *Suite) RunAll() ([]Result, error) {
	out := make([]Result, 0, len(IDs()))
	for _, id := range IDs() {
		r, err := s.Run(id)
		if err != nil {
			return nil, fmt.Errorf("experiment %s: %w", id, err)
		}
		out = append(out, r)
	}
	return out, nil
}
