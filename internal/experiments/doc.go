// Package experiments reproduces every table and figure of the paper's
// evaluation (Section VIII): the Fig. 4 latency/energy validation sweeps,
// the Fig. 4e/4f AoI and RoI emulation, the Fig. 5 comparison against FACT
// and LEAF, the Table I/II catalogs, and the regression-fit R² summary of
// Section VII. Each runner returns a typed result plus a Render method
// producing the rows/series the paper reports.
//
// Every runner evaluates on the sweep engine with per-cell deterministic
// seeds derived from (Suite.Seed, experiment id, cell index); no path
// touches the bench's shared serial RNG. Consequently each experiment's
// output is independent of worker count and of whatever ran before it,
// RunAll can fan the whole evaluation out concurrently, and StreamAll /
// Suite.WriteReport emit sections in paper order as each prefix of the
// evaluation completes.
package experiments
