// Package core is the public façade of the XR performance-analysis
// modeling framework — the paper's primary contribution. A Framework
// bundles the end-to-end latency model (Section IV), the energy model
// (Section V), and the AoI/RoI model (Section VI) behind a single Analyze
// call over a pipeline.Scenario.
//
// Construct a Framework either from the paper's published regression
// coefficients (NewWithPaperCoefficients) or by re-fitting the regressions
// on the synthetic testbed (NewFitted), which follows the Section VII
// protocol: train on devices XR1/XR3/XR5/XR6, test on XR2/XR4/XR7.
package core

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/aoi"
	"repro/internal/energy"
	"repro/internal/latency"
	"repro/internal/pipeline"
	"repro/internal/queue"
	"repro/internal/sweep"
	"repro/internal/testbed"
)

// ErrAnalyze indicates an analysis failure.
var ErrAnalyze = errors.New("core: analysis failed")

// Framework is the assembled performance-analysis model.
type Framework struct {
	// Latency is the end-to-end latency model.
	Latency latency.Models
	// Energy is the energy-consumption model.
	Energy energy.Models

	// provenance records how a worker process can reconstruct the model
	// bundle — the paper coefficients or a FitConfig — which is what lets
	// AnalyzeBatch dispatch analysis over a sweep backend. Nil for
	// hand-assembled frameworks, which are process-local.
	provenance *provenance
}

// provenance identifies a reconstructible model bundle.
type provenance struct {
	// fit is nil for the paper's published coefficients.
	fit *testbed.FitConfig
}

// NewWithPaperCoefficients builds the framework from the paper's published
// Eq. (3)/(10)/(12)/(21) coefficients.
func NewWithPaperCoefficients() *Framework {
	return &Framework{
		Latency:    latency.PaperModels(),
		Energy:     energy.PaperModels(),
		provenance: &provenance{},
	}
}

// NewFitted builds the framework by generating synthetic testbed datasets
// and re-fitting the four regressions. It returns the fit diagnostics so
// callers can compare against the paper's R² values.
func NewFitted(seed int64, trainRows, testRows int) (*Framework, *testbed.FitReport, error) {
	bench := testbed.NewBench(seed)
	fitted, err := bench.FitModels(trainRows, testRows)
	if err != nil {
		return nil, nil, fmt.Errorf("fit models: %w", err)
	}
	lm := latency.Models{
		Resource:   fitted.Resource,
		Encoder:    fitted.Encoder,
		Complexity: fitted.Complexity,
	}
	fw := &Framework{
		Latency: lm,
		Energy:  energy.Models{Latency: lm, Power: fitted.Power},
		provenance: &provenance{fit: &testbed.FitConfig{
			Seed: seed, TrainRows: trainRows, TestRows: testRows,
		}},
	}
	return fw, &fitted.Report, nil
}

// SensorAoI is one sensor's AoI/RoI assessment within a frame.
type SensorAoI struct {
	// Sensor names the source.
	Sensor string
	// GenFrequencyHz is the sensor's generation frequency.
	GenFrequencyHz float64
	// AverageAoIMs is A^m (Eq. 24) over the frame's updates.
	AverageAoIMs float64
	// RoI is the Relevance-of-Information (Eq. 26).
	RoI float64
	// Fresh reports RoI >= 1.
	Fresh bool
}

// Report is the full per-frame analysis output.
type Report struct {
	// Latency is the per-segment latency breakdown (ms).
	Latency latency.Breakdown
	// Energy is the per-segment energy breakdown (mJ).
	Energy energy.Breakdown
	// Sensors holds per-sensor AoI when the scenario has sensors.
	Sensors []SensorAoI
	// FPSAchievable is 1000/L_tot, the frame rate the pipeline
	// sustains.
	FPSAchievable float64
}

// Analyze evaluates latency, energy, and AoI for one frame of the
// scenario.
func (f *Framework) Analyze(sc *pipeline.Scenario) (*Report, error) {
	if sc == nil {
		return nil, fmt.Errorf("%w: nil scenario", ErrAnalyze)
	}
	eb, lb, err := f.Energy.FrameEnergy(sc)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrAnalyze, err)
	}
	return finishReport(sc, lb, eb)
}

// finishReport derives the scenario-local parts of a report — achievable
// FPS and the AoI/RoI sensor assessment — from the model breakdowns. It
// is shared by Analyze and the backend-dispatched AnalyzeBatch, whose
// workers return only the breakdowns.
func finishReport(sc *pipeline.Scenario, lb latency.Breakdown, eb energy.Breakdown) (*Report, error) {
	rep := &Report{Latency: lb, Energy: eb}
	if lb.Total > 0 {
		rep.FPSAchievable = 1000 / lb.Total
	}

	if n := sc.SensorUpdates; n > 0 && len(sc.Sensors.Sensors) > 0 {
		buf, err := queue.NewMM1(sc.BufferArrivalRatePerMs(), sc.BufferServiceRatePerMs)
		if err != nil {
			return nil, fmt.Errorf("%w: buffer: %v", ErrAnalyze, err)
		}
		// The application's required update frequency: an explicit
		// requirement when the scenario pins one, otherwise N updates
		// per frame processing time, f_req = N/L_tot (Section VI-B).
		reqHz := sc.RequiredUpdateHz
		if reqHz <= 0 {
			reqHz = 1000 * float64(n) / lb.Total
		}
		for _, s := range sc.Sensors.Sensors {
			cfg := aoi.Config{Sensor: s, RequestFrequencyHz: reqHz, Buffer: buf}
			avg, err := cfg.AverageAoIMs(n)
			if err != nil {
				return nil, fmt.Errorf("%w: aoi for %s: %v", ErrAnalyze, s.Name, err)
			}
			roi, err := cfg.RoI(n)
			if err != nil {
				return nil, fmt.Errorf("%w: roi for %s: %v", ErrAnalyze, s.Name, err)
			}
			rep.Sensors = append(rep.Sensors, SensorAoI{
				Sensor:         s.Name,
				GenFrequencyHz: s.GenFrequencyHz,
				AverageAoIMs:   avg,
				RoI:            roi,
				Fresh:          aoi.IsFresh(roi),
			})
		}
	}
	return rep, nil
}

// Render returns a human-readable report.
func (r *Report) Render() string {
	var b strings.Builder
	b.WriteString("XR performance analysis\n")
	fmt.Fprintf(&b, "  end-to-end latency: %.1f ms (≈%.1f fps achievable)\n",
		r.Latency.Total, r.FPSAchievable)
	fmt.Fprintf(&b, "  end-to-end energy:  %.1f mJ (mean power %.2f W)\n",
		r.Energy.Total, r.Energy.MeanPowerW)
	b.WriteString("  latency segments (ms):\n")
	for _, row := range []struct {
		name string
		val  float64
	}{
		{"frame generation", r.Latency.FrameGen},
		{"volumetric data", r.Latency.Volumetric},
		{"external info", r.Latency.External},
		{"rendering (incl. buffer)", r.Latency.Rendering},
		{"frame conversion", r.Latency.Conversion},
		{"frame encoding", r.Latency.Encoding},
		{"local inference", r.Latency.LocalInf},
		{"remote inference", r.Latency.RemoteInf},
		{"transmission", r.Latency.Transmission},
		{"handoff", r.Latency.Handoff},
		{"cooperation", r.Latency.Cooperation},
	} {
		if row.val > 0 {
			fmt.Fprintf(&b, "    %-26s %8.2f\n", row.name, row.val)
		}
	}
	b.WriteString("  energy extras (mJ):\n")
	fmt.Fprintf(&b, "    %-26s %8.2f\n", "thermal (E_θ)", r.Energy.Thermal)
	fmt.Fprintf(&b, "    %-26s %8.2f\n", "base (E_base)", r.Energy.Base)
	if len(r.Sensors) > 0 {
		b.WriteString("  sensor freshness:\n")
		for _, s := range r.Sensors {
			state := "STALE"
			if s.Fresh {
				state = "fresh"
			}
			fmt.Fprintf(&b, "    %-12s %6.1f Hz  AoI %7.2f ms  RoI %6.3f  %s\n",
				s.Sensor, s.GenFrequencyHz, s.AverageAoIMs, s.RoI, state)
		}
	}
	return b.String()
}

// AnalyzeBatch analyzes many scenarios and returns the reports in input
// order. A nil runner evaluates the framework's own models across an
// in-process GOMAXPROCS pool — the fan-out is race-free because the
// models are pure functions of the scenario. A non-nil runner dispatches
// the model evaluation as serializable analyze requests over that sweep
// backend (in-process pool, worker subprocesses, or a memoizing cache);
// workers reconstruct the exact model bundle from the framework's
// provenance — the paper coefficients or the deterministic fit config —
// so every backend returns identical reports. Frameworks assembled by
// hand carry no provenance and reject non-nil runners. Cancel ctx to
// abort a large batch early; the first (lowest-index) scenario error is
// returned.
func (f *Framework) AnalyzeBatch(ctx context.Context, scs []*pipeline.Scenario, r sweep.Runner) ([]*Report, error) {
	if r == nil {
		return sweep.Run(ctx, len(scs), sweep.Options{},
			func(_ context.Context, sh sweep.Shard) (*Report, error) {
				return f.Analyze(scs[sh.Index])
			})
	}
	if f.provenance == nil {
		return nil, fmt.Errorf("%w: hand-assembled framework has no serializable model provenance; use a nil runner", ErrAnalyze)
	}
	reqs := make([]testbed.Request, len(scs))
	for i, sc := range scs {
		if sc == nil {
			return nil, fmt.Errorf("%w: nil scenario %d", ErrAnalyze, i)
		}
		reqs[i] = testbed.Request{Op: testbed.OpAnalyze, Scenario: sc, Fit: f.provenance.fit}
	}
	reports := make([]*Report, 0, len(scs))
	err := r.Stream(ctx, reqs, func(i int, m testbed.Measurement) error {
		rep, err := finishReport(scs[i], m.Latency, m.Energy)
		if err != nil {
			return err
		}
		reports = append(reports, rep)
		return nil
	})
	if err != nil {
		// Match the nil-runner path's error identity: analysis failures
		// satisfy errors.Is(err, ErrAnalyze) regardless of backend,
		// while cancelation stays bare.
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
		return nil, fmt.Errorf("%w: %w", ErrAnalyze, err)
	}
	return reports, nil
}

// CompareModes analyzes the scenario under both local and remote
// inference and returns the two reports, supporting offload decisions.
// The scenario is not mutated.
func (f *Framework) CompareModes(sc *pipeline.Scenario) (local, remote *Report, err error) {
	if sc == nil {
		return nil, nil, fmt.Errorf("%w: nil scenario", ErrAnalyze)
	}
	lsc := *sc
	lsc.Mode = pipeline.ModeLocal
	rsc := *sc
	rsc.Mode = pipeline.ModeRemote
	local, err = f.Analyze(&lsc)
	if err != nil {
		return nil, nil, fmt.Errorf("local: %w", err)
	}
	remote, err = f.Analyze(&rsc)
	if err != nil {
		return nil, nil, fmt.Errorf("remote: %w", err)
	}
	return local, remote, nil
}
