package core

import (
	"strings"
	"testing"

	"repro/internal/device"
	"repro/internal/pipeline"
	"repro/internal/sensors"
)

func scenario(t *testing.T, opts ...pipeline.Option) *pipeline.Scenario {
	t.Helper()
	d, err := device.ByName("XR1")
	if err != nil {
		t.Fatal(err)
	}
	s, err := pipeline.NewScenario(d, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAnalyzeWithPaperCoefficients(t *testing.T) {
	fw := NewWithPaperCoefficients()
	rep, err := fw.Analyze(scenario(t))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Latency.Total <= 0 || rep.Energy.Total <= 0 {
		t.Fatalf("report totals: %v ms, %v mJ", rep.Latency.Total, rep.Energy.Total)
	}
	if rep.FPSAchievable <= 0 {
		t.Fatal("achievable fps missing")
	}
	if len(rep.Sensors) != 0 {
		t.Fatal("no sensors configured, no AoI expected")
	}
}

func TestAnalyzeNil(t *testing.T) {
	fw := NewWithPaperCoefficients()
	if _, err := fw.Analyze(nil); err == nil {
		t.Fatal("nil scenario must error")
	}
	if _, _, err := fw.CompareModes(nil); err == nil {
		t.Fatal("nil scenario must error")
	}
}

func TestAnalyzeWithSensors(t *testing.T) {
	fast, err := sensors.NewSensor("camera-rsu", 500, 20)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := sensors.NewSensor("lidar", 10, 35)
	if err != nil {
		t.Fatal(err)
	}
	fw := NewWithPaperCoefficients()
	// The application demands 100 Hz freshness: the 500 Hz camera keeps
	// up, the 10 Hz lidar cannot.
	rep, err := fw.Analyze(scenario(t,
		pipeline.WithSensors(sensors.NewArray(fast, slow), 2),
		pipeline.WithRequiredUpdateHz(100)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Sensors) != 2 {
		t.Fatalf("sensor reports = %d, want 2", len(rep.Sensors))
	}
	var fastRep, slowRep SensorAoI
	for _, s := range rep.Sensors {
		switch s.Sensor {
		case "camera-rsu":
			fastRep = s
		case "lidar":
			slowRep = s
		}
	}
	if fastRep.AverageAoIMs >= slowRep.AverageAoIMs {
		t.Fatalf("fast sensor AoI %v must be below slow %v",
			fastRep.AverageAoIMs, slowRep.AverageAoIMs)
	}
	if fastRep.RoI <= slowRep.RoI {
		t.Fatal("fast sensor must have higher RoI")
	}
	// A 500 Hz sensor against a per-frame cadence is fresh; a 10 Hz
	// lidar against multiple updates per frame is stale.
	if !fastRep.Fresh {
		t.Fatalf("500 Hz sensor should be fresh (RoI %v)", fastRep.RoI)
	}
	if slowRep.Fresh {
		t.Fatalf("10 Hz sensor should be stale (RoI %v)", slowRep.RoI)
	}
}

func TestReportRender(t *testing.T) {
	s1, err := sensors.NewSensor("rsu", 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	fw := NewWithPaperCoefficients()
	rep, err := fw.Analyze(scenario(t,
		pipeline.WithMode(pipeline.ModeRemote),
		pipeline.WithSensors(sensors.NewArray(s1), 1)))
	if err != nil {
		t.Fatal(err)
	}
	out := rep.Render()
	for _, want := range []string{
		"end-to-end latency", "end-to-end energy", "frame encoding",
		"remote inference", "transmission", "thermal", "base",
		"sensor freshness", "rsu",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Local-branch segments are zero in remote mode and must be elided.
	if strings.Contains(out, "local inference") {
		t.Fatal("zero segments must not render")
	}
}

func TestCompareModes(t *testing.T) {
	fw := NewWithPaperCoefficients()
	sc := scenario(t)
	local, remote, err := fw.CompareModes(sc)
	if err != nil {
		t.Fatal(err)
	}
	if local.Latency.LocalInf <= 0 || local.Latency.Encoding != 0 {
		t.Fatal("local report wrong branch")
	}
	if remote.Latency.Encoding <= 0 || remote.Latency.LocalInf != 0 {
		t.Fatal("remote report wrong branch")
	}
	// The input scenario must be untouched.
	if sc.Mode != pipeline.ModeLocal {
		t.Fatal("CompareModes must not mutate the scenario")
	}
}

func TestNewFitted(t *testing.T) {
	fw, report, err := NewFitted(3, 6000, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if report.Resource.TrainR2 <= 0 || report.Power.TrainR2 <= 0 {
		t.Fatalf("fit report empty: %+v", report)
	}
	rep, err := fw.Analyze(scenario(t, pipeline.WithMode(pipeline.ModeRemote)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Latency.Total <= 0 {
		t.Fatal("fitted framework must analyze")
	}
	if _, _, err := NewFitted(3, 1, 1); err == nil {
		t.Fatal("tiny datasets must error")
	}
}
