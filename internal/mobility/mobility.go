// Package mobility implements the device-mobility substrate behind the
// handoff latency term of the end-to-end model (Eq. 17): a 2-D random-walk
// over a grid of wireless coverage zones, a Monte-Carlo estimator for the
// handoff probability P(HO), and horizontal/vertical handoff latency
// presets following the analyses the paper cites ([49]–[51]).
package mobility

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/stats"
	"repro/internal/wireless"
)

// Common errors.
var (
	// ErrZone indicates an invalid coverage-zone configuration.
	ErrZone = errors.New("mobility: invalid zone configuration")
	// ErrWalk indicates invalid random-walk parameters.
	ErrWalk = errors.New("mobility: invalid walk parameters")
)

// HandoffKind distinguishes the two handoff classes of Section I.
type HandoffKind int

const (
	// HandoffHorizontal is a handoff within the same access technology.
	HandoffHorizontal HandoffKind = iota + 1
	// HandoffVertical is a handoff across access technologies (e.g.
	// Wi-Fi → LTE), a.k.a. service migration in edge computing.
	HandoffVertical
)

// String returns the handoff kind name.
func (k HandoffKind) String() string {
	switch k {
	case HandoffHorizontal:
		return "horizontal"
	case HandoffVertical:
		return "vertical"
	default:
		return fmt.Sprintf("HandoffKind(%d)", int(k))
	}
}

// Typical handoff latencies in milliseconds, following the 802.11 fast
// handoff analysis of [50] (layer-2 + Mobile IP registration, tens of ms)
// and the WLAN↔UMTS vertical handoff measurements of [51] (hundreds of ms
// due to inter-system authentication and registration).
const (
	DefaultHorizontalHandoffMs = 55
	DefaultVerticalHandoffMs   = 320
)

// Zone is one wireless coverage zone on the grid.
type Zone struct {
	// Technology served inside the zone.
	Technology wireless.AccessTechnology
	// RadiusM approximates the circular coverage radius in meters.
	RadiusM float64
}

// Walk is a 2-D random-walk mobility model inside a zone of the given
// radius. At every step of duration StepMs, the device moves SpeedMps in a
// uniformly random direction. A handoff occurs when the walk exits the
// zone radius.
type Walk struct {
	// SpeedMps is the device speed in meters per second.
	SpeedMps float64
	// StepMs is the walk step duration in milliseconds.
	StepMs float64
}

// NewWalk validates the walk parameters.
func NewWalk(speedMps, stepMs float64) (Walk, error) {
	if speedMps < 0 {
		return Walk{}, fmt.Errorf("%w: speed %v m/s", ErrWalk, speedMps)
	}
	if stepMs <= 0 {
		return Walk{}, fmt.Errorf("%w: step %v ms", ErrWalk, stepMs)
	}
	return Walk{SpeedMps: speedMps, StepMs: stepMs}, nil
}

// HandoffProbability estimates, by Monte-Carlo over trials walks, the
// probability that a device starting uniformly at random inside the zone
// exits it within horizon milliseconds. This plays the role of P(HO) in
// Eq. (17); the paper derives it from the random-walk model of [49].
func (w Walk) HandoffProbability(zone Zone, horizonMs float64, trials int, rng *stats.RNG) (float64, error) {
	if zone.RadiusM <= 0 {
		return 0, fmt.Errorf("%w: radius %v m", ErrZone, zone.RadiusM)
	}
	if horizonMs <= 0 {
		return 0, fmt.Errorf("%w: horizon %v ms", ErrWalk, horizonMs)
	}
	if trials <= 0 {
		return 0, fmt.Errorf("%w: trials %d", ErrWalk, trials)
	}
	if rng == nil {
		return 0, errors.New("mobility: nil rng")
	}
	if w.SpeedMps == 0 {
		return 0, nil
	}
	stepLen := w.SpeedMps * w.StepMs / 1000 // meters per step
	steps := int(horizonMs / w.StepMs)
	if steps == 0 {
		steps = 1
	}
	exits := 0
	for t := 0; t < trials; t++ {
		// Uniform start inside the disk by rejection-free sqrt sampling.
		r := zone.RadiusM * math.Sqrt(rng.Float64())
		theta := 2 * math.Pi * rng.Float64()
		x, y := r*math.Cos(theta), r*math.Sin(theta)
		for s := 0; s < steps; s++ {
			dir := 2 * math.Pi * rng.Float64()
			x += stepLen * math.Cos(dir)
			y += stepLen * math.Sin(dir)
			if x*x+y*y > zone.RadiusM*zone.RadiusM {
				exits++
				break
			}
		}
	}
	return float64(exits) / float64(trials), nil
}

// HandoffModel carries the per-kind handoff latency and the estimated
// handoff probability, producing the expected per-frame handoff latency
// of Eq. (17): L_HO = l_HO · P(HO).
type HandoffModel struct {
	// Kind selects horizontal vs vertical latency.
	Kind HandoffKind
	// LatencyMs is l_HO, the latency of one handoff event.
	LatencyMs float64
	// Probability is P(HO) during one frame's processing time.
	Probability float64
}

// NewHandoffModel builds a model with the default latency for the kind.
func NewHandoffModel(kind HandoffKind, probability float64) (HandoffModel, error) {
	if probability < 0 || probability > 1 {
		return HandoffModel{}, fmt.Errorf("%w: probability %v", ErrWalk, probability)
	}
	lat := DefaultHorizontalHandoffMs
	if kind == HandoffVertical {
		lat = DefaultVerticalHandoffMs
	}
	return HandoffModel{Kind: kind, LatencyMs: float64(lat), Probability: probability}, nil
}

// ExpectedLatencyMs returns L_HO = l_HO · P(HO) (Eq. 17).
func (h HandoffModel) ExpectedLatencyMs() float64 {
	return h.LatencyMs * h.Probability
}

// CrossTechnology reports whether moving between the two zones is a
// vertical handoff.
func CrossTechnology(from, to Zone) HandoffKind {
	if from.Technology != to.Technology {
		return HandoffVertical
	}
	return HandoffHorizontal
}
