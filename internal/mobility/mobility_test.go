package mobility

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/stats"
	"repro/internal/wireless"
)

func TestNewWalkValidation(t *testing.T) {
	if _, err := NewWalk(-1, 10); !errors.Is(err, ErrWalk) {
		t.Fatal("negative speed must error")
	}
	if _, err := NewWalk(1, 0); !errors.Is(err, ErrWalk) {
		t.Fatal("zero step must error")
	}
	if _, err := NewWalk(0, 10); err != nil {
		t.Fatal("zero speed (static device) is valid")
	}
}

func TestHandoffProbabilityStaticDevice(t *testing.T) {
	w, _ := NewWalk(0, 10)
	zone := Zone{Technology: wireless.WiFi5GHz, RadiusM: 50}
	p, err := w.HandoffProbability(zone, 1000, 100, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if p != 0 {
		t.Fatalf("static device P(HO) = %v, want 0", p)
	}
}

func TestHandoffProbabilityFastDevice(t *testing.T) {
	// Diffusive walk: RMS displacement is stepLen·√steps. With 1.5 m
	// steps over 60 steps the RMS is ≈11.6 m against a 4 m zone, so exit
	// is near certain.
	w, _ := NewWalk(30, 50)
	zone := Zone{Technology: wireless.WiFi5GHz, RadiusM: 4}
	p, err := w.HandoffProbability(zone, 3000, 500, stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.9 {
		t.Fatalf("fast device P(HO) = %v, want ≈1", p)
	}
}

func TestHandoffProbabilityErrors(t *testing.T) {
	w, _ := NewWalk(1, 10)
	zone := Zone{Technology: wireless.WiFi5GHz, RadiusM: 50}
	if _, err := w.HandoffProbability(Zone{RadiusM: 0}, 100, 10, stats.NewRNG(1)); !errors.Is(err, ErrZone) {
		t.Fatal("zero radius must error")
	}
	if _, err := w.HandoffProbability(zone, 0, 10, stats.NewRNG(1)); !errors.Is(err, ErrWalk) {
		t.Fatal("zero horizon must error")
	}
	if _, err := w.HandoffProbability(zone, 100, 0, stats.NewRNG(1)); !errors.Is(err, ErrWalk) {
		t.Fatal("zero trials must error")
	}
	if _, err := w.HandoffProbability(zone, 100, 10, nil); err == nil {
		t.Fatal("nil rng must error")
	}
}

func TestHandoffProbabilityDeterministic(t *testing.T) {
	w, _ := NewWalk(5, 20)
	zone := Zone{Technology: wireless.WiFi24GHz, RadiusM: 30}
	a, err := w.HandoffProbability(zone, 500, 200, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.HandoffProbability(zone, 500, 200, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("seeded Monte-Carlo must reproduce")
	}
}

func TestNewHandoffModel(t *testing.T) {
	h, err := NewHandoffModel(HandoffHorizontal, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if h.LatencyMs != DefaultHorizontalHandoffMs {
		t.Fatalf("horizontal latency = %v", h.LatencyMs)
	}
	v, err := NewHandoffModel(HandoffVertical, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if v.LatencyMs != DefaultVerticalHandoffMs {
		t.Fatalf("vertical latency = %v", v.LatencyMs)
	}
	if v.LatencyMs <= h.LatencyMs {
		t.Fatal("vertical handoff must cost more than horizontal")
	}
	if _, err := NewHandoffModel(HandoffVertical, 1.5); !errors.Is(err, ErrWalk) {
		t.Fatal("probability > 1 must error")
	}
	if _, err := NewHandoffModel(HandoffVertical, -0.1); !errors.Is(err, ErrWalk) {
		t.Fatal("negative probability must error")
	}
}

func TestExpectedLatency(t *testing.T) {
	h, _ := NewHandoffModel(HandoffHorizontal, 0.2)
	want := 0.2 * DefaultHorizontalHandoffMs
	if got := h.ExpectedLatencyMs(); got != want {
		t.Fatalf("expected latency = %v, want %v", got, want)
	}
	zero, _ := NewHandoffModel(HandoffVertical, 0)
	if zero.ExpectedLatencyMs() != 0 {
		t.Fatal("zero probability must give zero expected latency")
	}
}

func TestCrossTechnology(t *testing.T) {
	wifi := Zone{Technology: wireless.WiFi5GHz, RadiusM: 50}
	wifi24 := Zone{Technology: wireless.WiFi24GHz, RadiusM: 80}
	lte := Zone{Technology: wireless.LTE, RadiusM: 500}
	if got := CrossTechnology(wifi, wifi); got != HandoffHorizontal {
		t.Fatalf("same zone kind = %v", got)
	}
	if got := CrossTechnology(wifi, wifi24); got != HandoffVertical {
		t.Fatalf("2.4 vs 5 GHz kind = %v (different technologies)", got)
	}
	if got := CrossTechnology(wifi, lte); got != HandoffVertical {
		t.Fatalf("wifi vs lte kind = %v", got)
	}
}

func TestHandoffKindString(t *testing.T) {
	if HandoffHorizontal.String() != "horizontal" || HandoffVertical.String() != "vertical" {
		t.Fatal("kind strings wrong")
	}
	if HandoffKind(9).String() == "" {
		t.Fatal("unknown kind string must be non-empty")
	}
}

// Property: P(HO) is monotonically non-decreasing in speed and in horizon,
// and always within [0,1].
func TestHandoffProbabilityMonotonic(t *testing.T) {
	zone := Zone{Technology: wireless.WiFi5GHz, RadiusM: 40}
	f := func(seed int64) bool {
		slow, err := NewWalk(2, 10)
		if err != nil {
			return false
		}
		fast, err := NewWalk(12, 10)
		if err != nil {
			return false
		}
		pSlow, err1 := slow.HandoffProbability(zone, 800, 400, stats.NewRNG(seed))
		pFast, err2 := fast.HandoffProbability(zone, 800, 400, stats.NewRNG(seed))
		if err1 != nil || err2 != nil {
			return false
		}
		if pSlow < 0 || pSlow > 1 || pFast < 0 || pFast > 1 {
			return false
		}
		// Allow Monte-Carlo slack of 5 percentage points.
		return pFast >= pSlow-0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
