package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/testbed"
)

// requireNonRoot skips permission-based degradation tests that cannot
// work when the test runs as root (root bypasses file-mode checks).
func requireNonRoot(t *testing.T) {
	t.Helper()
	if os.Getuid() == 0 {
		t.Skip("running as root; permission checks are bypassed")
	}
}

// failingRunner is a backend that must never be reached: any dispatch
// fails the test. It pins "a warm run dispatches zero measurements".
type failingRunner struct{ t *testing.T }

func (f failingRunner) Run(ctx context.Context, reqs []testbed.Request) ([]testbed.Measurement, error) {
	return nil, f.fail(len(reqs))
}

func (f failingRunner) Stream(ctx context.Context, reqs []testbed.Request, emit func(int, testbed.Measurement) error) error {
	return f.fail(len(reqs))
}

func (f failingRunner) fail(n int) error {
	f.t.Errorf("backend dispatched %d measurements; the warm cache must serve everything from disk", n)
	return fmt.Errorf("unexpected backend dispatch")
}

// TestDiskCacheRoundTrip pins the basic persistence contract: a stored
// measurement is returned bit for bit under its exact key, and near-miss
// keys (other seed, other fingerprint) stay misses.
func TestDiskCacheRoundTrip(t *testing.T) {
	d, err := OpenDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reqs := testRequests(t, 3)
	fp, err := reqs[0].Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	m, err := (&PoolRunner{}).Run(context.Background(), reqs[:1])
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get(fp, reqs[0].Seed); ok {
		t.Fatal("empty store returned a hit")
	}
	if err := d.Put(fp, reqs[0].Seed, m[0]); err != nil {
		t.Fatal(err)
	}
	got, ok := d.Get(fp, reqs[0].Seed)
	if !ok {
		t.Fatal("stored entry not found")
	}
	if got != m[0] {
		t.Fatalf("round trip diverges:\nput %+v\ngot %+v", m[0], got)
	}
	if _, ok := d.Get(fp, reqs[0].Seed+1); ok {
		t.Fatal("different seed returned a hit")
	}
	otherFP, err := reqs[1].Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get(otherFP, reqs[0].Seed); ok {
		t.Fatal("different fingerprint returned a hit")
	}
}

// TestDiskCacheCorruptEntryIsMissAndRewritten pins the corrupt-entry
// rule: garbage (or truncated) entry files read as misses, never as
// errors or wrong data, and the next measured run rewrites them.
func TestDiskCacheCorruptEntryIsMissAndRewritten(t *testing.T) {
	d, err := OpenDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reqs := testRequests(t, 3)[:1]
	fp, err := reqs[0].Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	m, err := (&PoolRunner{}).Run(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	dir, path := d.entryPath(fp, reqs[0].Seed)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	valid, err := json.Marshal(diskEntry{
		Version: diskCacheVersion, Physics: testbed.PhysicsVersion,
		Fingerprint: fp, Seed: reqs[0].Seed, M: m[0],
	})
	if err != nil {
		t.Fatal(err)
	}
	for name, raw := range map[string][]byte{
		"garbage":   []byte("{not json"),
		"empty":     {},
		"truncated": valid[:len(valid)/2],
	} {
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := d.Get(fp, reqs[0].Seed); ok {
			t.Fatalf("%s entry returned a hit", name)
		}
	}
	if st := d.Stats(); st.LoadErrors == 0 {
		t.Fatal("defective entries not counted")
	}

	// A cached run over the corrupt store re-measures and rewrites.
	c := NewCachedRunner(&PoolRunner{}, WithDiskCache(d))
	got, err := c.Run(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != m[0] {
		t.Fatal("re-measured cell diverges from the uncached backend")
	}
	if st := c.Stats(); st.Misses != 1 || st.DiskHits != 0 {
		t.Fatalf("corrupt entry not treated as a miss: %+v", st)
	}
	if back, ok := d.Get(fp, reqs[0].Seed); !ok || back != m[0] {
		t.Fatal("corrupt entry was not rewritten with the fresh measurement")
	}
}

// TestDiskCacheVersionMismatchInvalidates pins the schema-version rule:
// entries written under another version read as misses.
func TestDiskCacheVersionMismatchInvalidates(t *testing.T) {
	d, err := OpenDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reqs := testRequests(t, 3)[:1]
	fp, err := reqs[0].Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	m, err := (&PoolRunner{}).Run(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	dir, path := d.entryPath(fp, reqs[0].Seed)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, e := range map[string]diskEntry{
		"stale schema": {Version: diskCacheVersion + 1, Physics: testbed.PhysicsVersion,
			Fingerprint: fp, Seed: reqs[0].Seed, M: m[0]},
		"other physics": {Version: diskCacheVersion, Physics: testbed.PhysicsVersion + 1,
			Fingerprint: fp, Seed: reqs[0].Seed, M: m[0]},
	} {
		stale, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, stale, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := d.Get(fp, reqs[0].Seed); ok {
			t.Fatalf("%s entry returned a hit", name)
		}
	}
}

// TestDiskCacheKeyMismatchIsMiss pins the collision guard: an entry
// whose stored fingerprint disagrees with the lookup key (hash
// collision, hand-edited file) must not serve a wrong measurement.
func TestDiskCacheKeyMismatchIsMiss(t *testing.T) {
	d, err := OpenDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reqs := testRequests(t, 3)[:1]
	fp, err := reqs[0].Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	dir, path := d.entryPath(fp, reqs[0].Seed)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	forged, err := json.Marshal(diskEntry{
		Version: diskCacheVersion, Physics: testbed.PhysicsVersion,
		Fingerprint: "someone else's cell", Seed: reqs[0].Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, forged, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get(fp, reqs[0].Seed); ok {
		t.Fatal("fingerprint-mismatched entry returned a hit")
	}
}

// TestOpenDiskCacheUnusableDir pins the degradation contract's first
// half: an unusable directory fails at open time with ErrDiskCache (the
// CLI catches exactly this and falls back to the in-memory cache).
func TestOpenDiskCacheUnusableDir(t *testing.T) {
	// A regular file where the directory should be fails for any user.
	file := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDiskCache(file); !errors.Is(err, ErrDiskCache) {
		t.Fatalf("file-as-dir error = %v, want ErrDiskCache", err)
	}
	if _, err := OpenDiskCache(""); !errors.Is(err, ErrDiskCache) {
		t.Fatalf("empty dir error = %v, want ErrDiskCache", err)
	}
}

// TestOpenDiskCacheReadOnlyDir pins that a read-only directory is
// detected by the writability probe at open time.
func TestOpenDiskCacheReadOnlyDir(t *testing.T) {
	requireNonRoot(t)
	dir := t.TempDir()
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	if _, err := OpenDiskCache(dir); !errors.Is(err, ErrDiskCache) {
		t.Fatalf("read-only dir error = %v, want ErrDiskCache", err)
	}
}

// TestDiskCacheWriteFailureTolerated pins the mid-run degradation rule:
// if the store stops accepting writes after open, measurements still
// succeed — the entry just is not persisted.
func TestDiskCacheWriteFailureTolerated(t *testing.T) {
	requireNonRoot(t)
	dir := t.TempDir()
	d, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)

	reqs := testRequests(t, 3)
	c := NewCachedRunner(&PoolRunner{}, WithDiskCache(d))
	want, err := (&PoolRunner{}).Run(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Run(context.Background(), reqs)
	if err != nil {
		t.Fatalf("run must tolerate failed persists: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d diverges under failed persists", i)
		}
	}
	if st := d.Stats(); st.StoreErrors == 0 || st.Stores != 0 {
		t.Fatalf("write failures not accounted: %+v", st)
	}
}

// TestCachedRunnerWarmFromDisk pins the tentpole at the runner layer: a
// second runner lifetime (a new process, as far as the cache can tell)
// over the same directory serves every cell from disk — zero backend
// dispatches — and returns bit-identical measurements.
func TestCachedRunnerWarmFromDisk(t *testing.T) {
	dir := t.TempDir()
	reqs := testRequests(t, 3)

	cold, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	c1 := NewCachedRunner(&PoolRunner{}, WithDiskCache(cold))
	want, err := c1.Run(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if st := c1.Stats(); st.Misses != int64(len(reqs)) || st.DiskHits != 0 {
		t.Fatalf("cold run counters: %+v", st)
	}
	if st := cold.Stats(); st.Stores != int64(len(reqs)) {
		t.Fatalf("cold run persisted %d of %d cells", st.Stores, len(reqs))
	}

	warm, err := OpenDiskCache(dir) // fresh handle: simulates a new process
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewCachedRunner(failingRunner{t}, WithDiskCache(warm))
	got, err := c2.Run(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("warm point %d diverges from the cold run", i)
		}
	}
	st := c2.Stats()
	if st.Misses != 0 || st.DiskHits != int64(len(reqs)) || st.Entries != len(reqs) {
		t.Fatalf("warm run counters: %+v, want 0 misses / %d disk hits", st, len(reqs))
	}
}

// TestDiskCacheSkipsAnalyzeRequests pins the persistence gate: only
// measure results live on disk. Analyze results depend on the
// analytical-model code, which PhysicsVersion does not cover, so a
// warm directory must never replay them across binaries — they stay
// memoized in memory for the runner's lifetime and are recomputed by
// the next process.
func TestDiskCacheSkipsAnalyzeRequests(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	reqs := testRequests(t, 3)
	for i := range reqs {
		reqs[i] = testbed.Request{Op: testbed.OpAnalyze, Scenario: reqs[i].Scenario}
	}

	c1 := NewCachedRunner(&PoolRunner{}, WithDiskCache(d))
	want, err := c1.Run(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if st := d.Stats(); st.Stores != 0 || st.Loads != 0 {
		t.Fatalf("analyze results touched the persistent store: %+v", st)
	}
	// The in-memory layer still memoizes them within the runner.
	if _, err := c1.Run(context.Background(), reqs); err != nil {
		t.Fatal(err)
	}
	if st := c1.Stats(); st.Misses != int64(len(reqs)) || st.Hits != int64(len(reqs)) {
		t.Fatalf("analyze cells not memoized in memory: %+v", st)
	}

	// A fresh runner over the same directory recomputes rather than
	// loading from disk — identically, since analysis is deterministic.
	c2 := NewCachedRunner(&PoolRunner{}, WithDiskCache(d))
	got, err := c2.Run(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("recomputed analyze point %d diverges", i)
		}
	}
	if st := c2.Stats(); st.DiskHits != 0 || st.Misses != int64(len(reqs)) {
		t.Fatalf("analyze cells served from disk: %+v", st)
	}
}

// TestDiskCacheConcurrentSharedDir pins multi-process safety: many
// handles over one directory — as concurrent `xrperf -cache-dir` runs
// would hold — racing to measure and persist the same cells must each
// end with the exact measurements, whether they loaded or stored them.
func TestDiskCacheConcurrentSharedDir(t *testing.T) {
	dir := t.TempDir()
	reqs := testRequests(t, 2)
	want, err := (&PoolRunner{}).Run(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}

	const procs = 8
	results := make([][]testbed.Measurement, procs)
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d, err := OpenDiskCache(dir)
			if err != nil {
				t.Error(err)
				return
			}
			c := NewCachedRunner(&PoolRunner{}, WithDiskCache(d))
			ms, err := c.Run(context.Background(), reqs)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = ms
		}(i)
	}
	wg.Wait()
	for i := 0; i < procs; i++ {
		for j := range reqs {
			if results[i][j] != want[j] {
				t.Fatalf("handle %d point %d diverges under shared-directory races", i, j)
			}
		}
	}
	// The directory holds exactly one complete entry per cell, no torn
	// files — renames are atomic — and a final reader sees all of them.
	d, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	for j, r := range reqs {
		fp, err := r.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		m, ok := d.Get(fp, r.Seed)
		if !ok {
			t.Fatalf("cell %d missing after concurrent runs", j)
		}
		if m != want[j] {
			t.Fatalf("cell %d torn or wrong after concurrent runs", j)
		}
	}
}
