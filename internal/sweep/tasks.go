package sweep

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
)

// ErrTaskName indicates an unusable task declaration.
var ErrTaskName = errors.New("sweep: task needs a name and a Run func")

// TaskSeed derives a task-scoped seed base by mixing base with the FNV-1a
// hash of the task's name, so heterogeneous tasks grouped under one pool
// draw independent noise streams. The derivation depends only on
// (base, name) — never on task order — which keeps a task's output stable
// when tasks are added, removed, or reordered around it.
func TaskSeed(base int64, name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return base ^ int64(h.Sum64())
}

// Task is one named unit of a heterogeneous sweep group — typically a
// whole experiment that internally fans out its own grid. Run must be
// safe to execute concurrently with the group's other tasks and must
// derive any randomness from deterministic seeds, never from shared
// mutable state, so the group's output is independent of scheduling.
// The engine does not inject seeds into Run; a task needing one derives
// it itself as TaskSeed(base, Name), which keeps its stream independent
// of sibling tasks and of its position in the group.
type Task[T any] struct {
	// Name identifies the task and scopes TaskSeed derivations.
	Name string
	// Run produces the task's result; ctx is canceled when a sibling
	// task fails, emit errors, or the caller's context ends.
	Run func(ctx context.Context) (T, error)
}

// RunTasks executes a task group across the worker pool and returns the
// results in declaration order. The first (lowest-index) task error
// cancels the remaining tasks and is returned.
func RunTasks[T any](ctx context.Context, tasks []Task[T], opts Options) ([]T, error) {
	out := make([]T, 0, len(tasks))
	err := StreamTasks(ctx, tasks, opts, func(_ int, _ string, v T) error {
		out = append(out, v)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// StreamTasks executes a task group across the worker pool and invokes
// emit on the caller's goroutine in strict declaration order, as soon as
// each prefix of the group completes — task k is emitted the moment tasks
// 0..k are all done, even while later tasks are still in flight. A
// non-nil error from emit cancels the group and is returned.
func StreamTasks[T any](ctx context.Context, tasks []Task[T], opts Options, emit func(idx int, name string, v T) error) error {
	for i, t := range tasks {
		if t.Name == "" || t.Run == nil {
			return fmt.Errorf("%w (task %d)", ErrTaskName, i)
		}
	}
	return Stream(ctx, len(tasks), opts,
		func(ctx context.Context, sh Shard) (T, error) {
			return tasks[sh.Index].Run(ctx)
		},
		func(idx int, v T) error {
			return emit(idx, tasks[idx].Name, v)
		})
}
