package sweep

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/testbed"
)

// ErrPopulation indicates an invalid population-sweep configuration.
var ErrPopulation = errors.New("sweep: invalid population")

// DefaultShardUsers is the default number of sessions per request shard:
// large enough that dispatch overhead amortizes, small enough that a
// worker answers within a scheduling quantum and cancelation lands fast.
const DefaultShardUsers = 1000

// Cohort is one homogeneous slice of a simulated population: N users
// running the same scenario and session configuration, each under its own
// globally-derived seed. Cohorts are the unit of reporting; shards are the
// unit of dispatch.
type Cohort struct {
	// Name labels the cohort in reports.
	Name string
	// Request is the cohort's session request template: Op OpSession,
	// the scenario, the fit provenance, the base seed, and a Session
	// whose Users field is the cohort's TOTAL population. RunPopulation
	// splits it into shards by rewriting Users/FirstUser only, so every
	// other field is shared verbatim by construction.
	Request testbed.Request
}

// PopulationOptions configures a population sweep.
type PopulationOptions struct {
	// ShardUsers caps sessions per request shard (0 → DefaultShardUsers).
	ShardUsers int
}

// CohortResult pairs a cohort with its merged summary.
type CohortResult struct {
	Name    string
	Summary *testbed.SessionSummary
}

// PopulationResult is the outcome of a population sweep: per-cohort
// summaries plus the population-wide merge, all built from shard summaries
// folded in strict request order so the float accumulations — and
// therefore the rendered report — are byte-identical on any backend at any
// worker count. Changing the shard size changes how float sums associate
// (round-off only, invisible at report precision); everything integer —
// counts, sketch buckets, extremes — is exact at any shard size.
type PopulationResult struct {
	Cohorts []CohortResult
	Total   *testbed.SessionSummary
	// Shards counts the dispatched requests.
	Shards int
}

// RunPopulation expands each cohort into session-request shards, executes
// them on the runner, and folds the shard summaries per cohort and in
// total. Memory stays flat at any population size: a shard's response is a
// few kilobytes of sketches, merged and dropped as it streams in. Shard
// summaries coming from a memoizing cache may be shared with other
// waiters, so they are merged into fresh accumulators, never mutated.
func RunPopulation(ctx context.Context, r Runner, cohorts []Cohort, opts PopulationOptions) (*PopulationResult, error) {
	if len(cohorts) == 0 {
		return nil, fmt.Errorf("%w: no cohorts", ErrPopulation)
	}
	shardUsers := opts.ShardUsers
	if shardUsers <= 0 {
		shardUsers = DefaultShardUsers
	}

	res := &PopulationResult{}
	var reqs []testbed.Request
	var owner []int // request index → cohort index
	for ci, c := range cohorts {
		if c.Request.Session == nil {
			return nil, fmt.Errorf("%w: cohort %q has no session config", ErrPopulation, c.Name)
		}
		if op := c.Request.Op; op != testbed.OpSession {
			return nil, fmt.Errorf("%w: cohort %q op %q, want %q", ErrPopulation, c.Name, op, testbed.OpSession)
		}
		users := c.Request.Session.Users
		if users <= 0 {
			users = 1
		}
		if c.Request.Session.IncludeTrace {
			return nil, fmt.Errorf("%w: cohort %q retains traces; population sweeps must stay compact", ErrPopulation, c.Name)
		}
		res.Cohorts = append(res.Cohorts, CohortResult{Name: c.Name})
		base := c.Request.Session.FirstUser
		for off := 0; off < users; off += shardUsers {
			n := users - off
			if n > shardUsers {
				n = shardUsers
			}
			req := c.Request
			s := *c.Request.Session
			s.Users = n
			s.FirstUser = base + uint64(off)
			req.Session = &s
			reqs = append(reqs, req)
			owner = append(owner, ci)
		}
	}
	res.Shards = len(reqs)

	err := r.Stream(ctx, reqs, func(idx int, m testbed.Measurement) error {
		sum := m.Session
		if sum == nil {
			return fmt.Errorf("%w: shard %d returned no session summary", ErrPopulation, idx)
		}
		ci := owner[idx]
		if res.Cohorts[ci].Summary == nil {
			res.Cohorts[ci].Summary = testbed.NewSessionSummary(sum.Latency.Alpha)
		}
		if res.Total == nil {
			res.Total = testbed.NewSessionSummary(sum.Latency.Alpha)
		}
		if err := res.Cohorts[ci].Summary.Merge(sum); err != nil {
			return err
		}
		return res.Total.Merge(sum)
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Render formats the population report. The layout depends only on the
// merged summaries, which are deterministic in the request list — so two
// backends that honor the Runner contract render identical bytes.
func (r *PopulationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %10s %12s %9s %9s %9s %9s %10s %7s %9s\n",
		"cohort", "users", "frames", "p50 ms", "p90 ms", "p99 ms", "max ms",
		"mJ/frame", "thr %", "depleted")
	row := func(name string, s *testbed.SessionSummary) {
		if s == nil || s.Users == 0 {
			fmt.Fprintf(&b, "%-14s %10s\n", name, "-")
			return
		}
		p50, _ := s.Latency.Quantile(0.50)
		p90, _ := s.Latency.Quantile(0.90)
		p99, _ := s.Latency.Quantile(0.99)
		thr := 100 * float64(s.ThrottledFrames) / float64(s.Frames)
		fmt.Fprintf(&b, "%-14s %10d %12d %9.2f %9.2f %9.2f %9.2f %10.2f %7.2f %9d\n",
			name, s.Users, s.Frames, p50, p90, p99, s.Latency.Max,
			s.Energy.Mean(), thr, s.Depleted)
	}
	for _, c := range r.Cohorts {
		row(c.Name, c.Summary)
	}
	if len(r.Cohorts) > 1 {
		row("TOTAL", r.Total)
	}
	return b.String()
}
