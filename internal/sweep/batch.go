package sweep

// The batched, pipelined dispatch engine shared by ProcRunner and
// NetRunner. Version 1 of the wire protocol round-tripped one request
// per frame, so every grid point paid one full dispatcher↔worker
// latency; profiles (BENCH_7) showed that latency — not measurement —
// dominating both distributed backends. The engine here removes it two
// ways:
//
//   - Batching: contiguous runs of the request slice ride together in
//     one WireBatch frame (splitBatches), so a 64-point grid costs a
//     handful of round trips instead of 64. Session requests stay
//     singleton batches — their results carry traces and sketches, and
//     a 16-wide session batch could overflow MaxFrameBytes.
//   - Pipelining: each worker session keeps a window of batches in
//     flight (cfg.depth), sending the next batch while earlier ones are
//     still being answered, so a worker never idles between frames.
//
// The engine mirrors the generic in-process Stream engine's contract at
// request granularity, which is what keeps the three backends
// byte-identical: results are delivered to an ordered aggregator that
// emits each contiguous prefix as it forms; failures report through the
// same lowest-index, genuine-beats-canceled selection; cancelation
// destroys transports to unblock in-flight I/O; and a dead transport's
// unanswered batches are re-dispatched to a fresh one under a bounded
// per-batch attempt budget, exactly like v1 re-dispatched shards.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/testbed"
)

// Tuning defaults shared by the dispatching backends.
const (
	// DefaultBatch is the default cap on requests per WireBatch frame.
	// Small grids use smaller batches automatically so every session
	// window stays busy (splitBatches).
	DefaultBatch = 16
	// DefaultPipeline is the default window of outstanding batches per
	// worker session.
	DefaultPipeline = 2
)

// batchJob is one batch of contiguous requests on its way through the
// dispatcher. Its tag (id) doubles as the grid offset of reqs[0], so a
// result frame identifies both its window slot and its output indices.
//
// With work stealing a job can be in flight on two transports at once
// (the slow victim's copy and the thief's); claimed arbitrates exactly
// one delivery. Ownership — who retries and requeues the job — stays
// unique throughout: a steal transfers it, so attempts/lastErr need no
// lock.
type batchJob struct {
	id       int
	off      int
	reqs     []testbed.Request
	attempts int
	lastErr  error
	// claimed flips exactly once, by the first result that answers this
	// job; a duplicate answer (the batch was stolen) is discarded.
	// Measurements are pure functions of (request, seed), so the two
	// answers carry identical bytes and the winner's identity is
	// irrelevant to output.
	claimed atomic.Bool
}

// terminalError marks an acquire failure that fails the pulled batch —
// and therefore the sweep — immediately instead of consuming one of its
// retry attempts: a quarantined spawn source, a spawn failure, a version
// mismatch, a fully poisoned fleet, or cancelation.
type terminalError struct {
	err error
	// needsIdx renders the error through noHealthySource with the
	// batch's index and last dispatch failure (the net backend's
	// fleet-exhausted diagnostics).
	needsIdx bool
}

func (e *terminalError) Error() string { return e.err.Error() }
func (e *terminalError) Unwrap() error { return e.err }

// errAllCooling reports an acquire that waited out a fully quarantined
// fleet: the attempt is consumed but carries no new failure cause.
var errAllCooling = errors.New("every node quarantined after repeated failures")

// errStandby reports an acquire that stood down without dispatching —
// an empty elastic fleet waiting for its first member, or a membership
// change worth re-evaluating. The batch is requeued without consuming
// one of its attempts: standing by is not a dispatch failure.
var errStandby = errors.New("standing by for fleet membership")

// batchSource checks out transports for the dispatcher. Attempt-level
// failures (a crashed spawn handshake, an unreachable node) return plain
// errors; unrecoverable conditions return *terminalError.
type batchSource interface {
	acquire(cctx context.Context) (batchTransport, error)
}

// batchTransport is one live worker session: a subprocess pipe pair or
// a fleet TCP connection, post-handshake, speaking the negotiated codec.
type batchTransport interface {
	// send writes one batch frame; errors are retryable worker failures.
	send(b testbed.WireBatch) error
	// recv reads one batch-result frame; errors are retryable worker
	// failures.
	recv() (testbed.WireBatchResult, error)
	// success records one healthy batch round trip (resets quarantine).
	success()
	// reject converts a request-level rejection reported by a healthy
	// worker into its non-retryable error.
	reject(msg string) error
	// corrupt converts protocol corruption into a retryable worker
	// failure naming the source.
	corrupt(format string, args ...any) error
	// park returns the healthy transport for reuse by a later acquire.
	park()
	// fail records a transport death with its cause, destroys the
	// transport, and frees its slot for a replacement.
	fail(cause error)
	// abort destroys the transport and frees its slot without failure
	// accounting (cancelation and request-rejection paths).
	abort()
	// destroy kills the transport without blocking (idempotent); the
	// dispatcher hooks it to cancelation to unblock in-flight I/O.
	destroy()
}

// batchObserver is optionally implemented by transports that fold
// observed batch latency into capacity weights (the net backend). The
// dispatcher reports each first-answer delivery: how many requests,
// how long from send to receive.
type batchObserver interface {
	observe(cells int, elapsed time.Duration)
}

// batchConfig parameterizes one dispatch run.
type batchConfig struct {
	sessions int // concurrent worker sessions (procs, or nodes×conns)
	batch    int // per-frame request cap; <=0 means DefaultBatch
	depth    int // pipeline window per session; <=0 means DefaultPipeline
	budget   int // attempts per batch before givingUp
	source   batchSource
	givingUp func(j *batchJob) error
	// watch, when set, runs alongside the sessions for the length of the
	// dispatch: stop closes when the work is delivered or canceled, and
	// spawn adds worker sessions mid-run — how an elastic fleet's
	// joiners get lanes of their own. spawn is only valid until watch
	// returns.
	watch func(stop <-chan struct{}, spawn func(n int))
	// stealAfter enables work stealing when positive: an idle session
	// may re-dispatch another session's unstarted batch once it has been
	// in flight that long. Zero disables stealing (the proc backend:
	// its transports come from a bounded slot pool, and an idle lane
	// camping on a transport could hold the slot a blocked acquire
	// needs).
	stealAfter time.Duration
	// onSteal, when set, is called once per successful steal (metrics
	// and test observability).
	onSteal func()
}

// splitBatches carves the request slice into contiguous batch jobs of at
// most batch requests, shrinking the batch size on small grids so every
// session window (sessions×depth lanes) has work. Session requests are
// isolated into singleton batches.
func splitBatches(reqs []testbed.Request, sessions, batch, depth int) []*batchJob {
	if sessions < 1 {
		sessions = 1
	}
	lanes := sessions * depth
	if per := (len(reqs) + lanes - 1) / lanes; per < batch {
		batch = per
	}
	if batch < 1 {
		batch = 1
	}
	var jobs []*batchJob
	flush := func(off, end int) {
		for off < end {
			e := off + batch
			if e > end {
				e = end
			}
			jobs = append(jobs, &batchJob{id: off, off: off, reqs: reqs[off:e]})
			off = e
		}
	}
	start := 0
	for i, r := range reqs {
		if r.Op == testbed.OpSession {
			flush(start, i)
			jobs = append(jobs, &batchJob{id: i, off: i, reqs: reqs[i : i+1]})
			start = i + 1
		}
	}
	flush(start, len(reqs))
	return jobs
}

// batchDispatcher is the run state of one runBatches call.
type batchDispatcher struct {
	cfg     batchConfig
	cctx    context.Context
	cancel  context.CancelFunc
	queue   chan *batchJob
	results chan indexed[testbed.Measurement]
	// queueDone closes when every batch has been delivered. The queue
	// channel itself is never closed: with stealing, a retry can race
	// the final delivery, and a send on a closed channel is a panic
	// where a send raced against queueDone is just a no-op.
	queueDone chan struct{}
	doneOnce  sync.Once

	remaining atomic.Int64

	// drives registers every live transport session's in-flight window
	// so idle sessions can steal from loaded ones.
	drivesMu sync.Mutex
	drives   map[*driveState]struct{}

	errMu    sync.Mutex
	firstErr *pointError
}

// finish marks all batches delivered, waking pullers and campers.
func (d *batchDispatcher) finish() {
	d.doneOnce.Do(func() { close(d.queueDone) })
}

// runBatches evaluates reqs across the source's transports and invokes
// emit in strict request order — the batch-dispatch mirror of the
// generic Stream engine, with identical error selection and final-error
// semantics.
func runBatches(ctx context.Context, reqs []testbed.Request, cfg batchConfig, emit func(idx int, m testbed.Measurement) error) error {
	n := len(reqs)
	if cfg.batch <= 0 {
		cfg.batch = DefaultBatch
	}
	if cfg.depth <= 0 {
		cfg.depth = DefaultPipeline
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	jobs := splitBatches(reqs, cfg.sessions, cfg.batch, cfg.depth)
	d := &batchDispatcher{
		cfg:       cfg,
		cctx:      cctx,
		cancel:    cancel,
		queue:     make(chan *batchJob, len(jobs)),
		results:   make(chan indexed[testbed.Measurement], n),
		queueDone: make(chan struct{}),
		drives:    make(map[*driveState]struct{}),
	}
	for _, j := range jobs {
		d.queue <- j
	}
	d.remaining.Store(int64(len(jobs)))

	sessions := cfg.sessions
	if sessions > len(jobs) {
		sessions = len(jobs)
	}
	var wg sync.WaitGroup
	spawn := func(k int) {
		for i := 0; i < k; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				d.session()
			}()
		}
	}
	spawn(sessions)
	if cfg.watch != nil {
		// The watcher holds a WaitGroup slot of its own, so its spawn
		// calls always run while the counter is positive — no Add-after-
		// Wait race with the results close below.
		stop := make(chan struct{})
		wg.Add(1)
		go func() {
			defer wg.Done()
			cfg.watch(stop, spawn)
		}()
		go func() {
			select {
			case <-d.queueDone:
			case <-cctx.Done():
			}
			close(stop)
		}()
	}
	go func() {
		wg.Wait()
		close(d.results)
	}()

	// Ordered streaming aggregation, identical to the Stream engine's:
	// buffer out-of-order completions, flush each contiguous prefix.
	pending := make(map[int]testbed.Measurement)
	next := 0
	var emitErr error
	for r := range d.results {
		if emitErr != nil {
			continue // drain; the sweep is already canceled
		}
		pending[r.idx] = r.val
		for {
			v, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			if err := emit(next, v); err != nil {
				emitErr = fmt.Errorf("sweep: emit point %d: %w", next, err)
				cancel()
				break
			}
			next++
		}
	}

	d.errMu.Lock()
	pe := d.firstErr
	d.errMu.Unlock()
	if pe != nil && (emitErr == nil || !errors.Is(pe.err, context.Canceled)) {
		return fmt.Errorf("sweep: point %d: %w", pe.idx, pe.err)
	}
	if emitErr != nil {
		return emitErr
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	if next != n {
		// Cancelation raced result delivery: some points never ran.
		return fmt.Errorf("sweep: %w", cctx.Err())
	}
	return nil
}

// report records a failed request index with the Stream engine's
// selection rule — genuine errors outrank consequential Canceled ones,
// lowest index wins within a class — and cancels the sweep.
func (d *batchDispatcher) report(idx int, err error) {
	canceled := errors.Is(err, context.Canceled)
	d.errMu.Lock()
	if d.firstErr == nil ||
		(!canceled && errors.Is(d.firstErr.err, context.Canceled)) ||
		(canceled == errors.Is(d.firstErr.err, context.Canceled) && idx < d.firstErr.idx) {
		d.firstErr = &pointError{idx, err}
	}
	d.errMu.Unlock()
	d.cancel()
}

// pull takes the next batch job, or reports done when every batch has
// been delivered or the sweep canceled. With stealing enabled an empty
// queue does not block: pull returns (nil, true) so the session checks
// out a transport anyway and goes poaching — the only way a node that
// joined after the queue drained can help finish work that was already
// in flight when it arrived.
func (d *batchDispatcher) pull() (*batchJob, bool) {
	select {
	case j := <-d.queue:
		return j, true
	case <-d.queueDone:
		return nil, false
	case <-d.cctx.Done():
		return nil, false
	default:
	}
	if d.cfg.stealAfter > 0 {
		return nil, true
	}
	select {
	case j := <-d.queue:
		return j, true
	case <-d.queueDone:
		return nil, false
	case <-d.cctx.Done():
		return nil, false
	}
}

// requeue puts a batch back on the queue without charging an attempt —
// the standby path, where nothing was actually dispatched.
func (d *batchDispatcher) requeue(j *batchJob) {
	select {
	case d.queue <- j:
	case <-d.queueDone:
	case <-d.cctx.Done():
	}
}

// retry charges one attempt against the batch and requeues it, or gives
// up through cfg.givingUp when the budget is spent. A nil cause (a
// quarantine wait) leaves the recorded last failure untouched. A batch
// whose result already arrived on another transport (it was stolen) is
// dropped: its delivery is done, there is nothing to retry.
func (d *batchDispatcher) retry(j *batchJob, cause error) {
	if j.claimed.Load() {
		return
	}
	if cause != nil {
		j.lastErr = cause
	}
	j.attempts++
	if j.attempts >= d.cfg.budget {
		d.report(j.off, d.cfg.givingUp(j))
		return
	}
	d.requeue(j)
}

// session is one worker lane: pull a batch (or, in stealing mode, a
// nil poaching ticket), check out a transport, and drive it until the
// transport dies or the work runs out.
func (d *batchDispatcher) session() {
	for {
		j, ok := d.pull()
		if !ok {
			return
		}
		t, err := d.cfg.source.acquire(d.cctx)
		if err != nil {
			var te *terminalError
			if errors.As(err, &te) {
				if j == nil {
					// A jobless poacher owes nothing: every batch is on
					// some other session's drive, and that session will do
					// the reporting if the fleet is truly gone.
					return
				}
				e := te.err
				if te.needsIdx {
					e = noHealthySource(j.off, te.err, j.lastErr)
				}
				d.report(j.off, e)
				return
			}
			if errors.Is(err, errStandby) {
				if j != nil {
					d.requeue(j)
				}
				continue
			}
			if j == nil {
				// No transport and no batch charged: wait a beat before
				// rechecking the fleet, so a flapping node cannot spin
				// this lane hot.
				select {
				case <-time.After(d.cfg.stealAfter):
				case <-d.queueDone:
					return
				case <-d.cctx.Done():
					return
				}
				continue
			}
			if errors.Is(err, errAllCooling) {
				err = nil
			}
			d.retry(j, err)
			continue
		}
		d.drive(t, j)
	}
}

// inflightEntry is one sent-but-unanswered batch in a drive's FIFO.
type inflightEntry struct {
	j *batchJob
	// sentAt stamps the send, for the steal age criterion.
	sentAt time.Time
	// stolen marks an entry another session has re-dispatched: ownership
	// moved to the thief, so this drive must not retry it on death. The
	// entry stays in the FIFO — the victim's worker will still answer it
	// in order, and that answer must be consumed (and discarded via the
	// claim) to keep FIFO matching exact.
	stolen bool
}

// driveState is one transport session's in-flight window, registered
// with the dispatcher so idle sessions can steal from it.
type driveState struct {
	mu      sync.Mutex
	entries []inflightEntry
}

func (ds *driveState) push(j *batchJob, sentAt time.Time) {
	ds.mu.Lock()
	ds.entries = append(ds.entries, inflightEntry{j: j, sentAt: sentAt})
	ds.mu.Unlock()
}

func (ds *driveState) pop() (inflightEntry, bool) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if len(ds.entries) == 0 {
		return inflightEntry{}, false
	}
	e := ds.entries[0]
	ds.entries = ds.entries[1:]
	return e, true
}

func (ds *driveState) unpop(e inflightEntry) {
	ds.mu.Lock()
	ds.entries = append([]inflightEntry{e}, ds.entries...)
	ds.mu.Unlock()
}

// pendingOnlyStolen reports whether the drive still awaits answers and
// every one of them is for an entry whose delivery is someone else's:
// stolen (a thief owns it) or already claimed (a duplicate answered).
func (ds *driveState) pendingOnlyStolen() bool {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if len(ds.entries) == 0 {
		return false
	}
	for _, e := range ds.entries {
		if !e.stolen && !e.j.claimed.Load() {
			return false
		}
	}
	return true
}

// steal re-dispatches one batch from the most loaded other session: the
// newest unanswered, unstolen, unclaimed entry at least stealAfter old.
// A session's head entry is held to a 4× stiffer age bar — its worker
// is most likely midway through measuring it, and duplicating that
// compute is only worth it once the batch has gone unanswered long
// enough to look like a genuine straggler (a slow node whose every
// in-flight batch is a singleton head is exactly the case stealing
// exists to rescue). Returns nil when nothing qualifies.
func (d *batchDispatcher) steal(me *driveState, now time.Time) *batchJob {
	d.drivesMu.Lock()
	defer d.drivesMu.Unlock()
	var victim *driveState
	var best int
	for ds := range d.drives {
		if ds == me {
			continue
		}
		ds.mu.Lock()
		n := len(ds.entries)
		ds.mu.Unlock()
		if n > best {
			victim, best = ds, n
		}
	}
	if victim == nil {
		return nil
	}
	victim.mu.Lock()
	defer victim.mu.Unlock()
	for i := len(victim.entries) - 1; i >= 0; i-- {
		e := &victim.entries[i]
		age := now.Sub(e.sentAt)
		if e.stolen || e.j.claimed.Load() || age < d.cfg.stealAfter {
			continue
		}
		if i == 0 && age < 4*d.cfg.stealAfter {
			continue
		}
		e.stolen = true
		if d.cfg.onSteal != nil {
			d.cfg.onSteal()
		}
		return e.j
	}
	return nil
}

// drive runs one transport's send/receive session: the calling goroutine
// sends batch frames with up to depth outstanding, while a receiver
// goroutine matches result frames to the in-flight FIFO and delivers
// items. Responses come back in send order on a connection (the worker
// loop is sequential), so FIFO matching is exact; the echoed batch tag
// is checked as a corruption guard. On transport death every unanswered
// batch this drive still owns is collected and re-dispatched through
// retry; entries stolen by other sessions are theirs to finish.
func (d *batchDispatcher) drive(t batchTransport, first *batchJob) {
	stop := context.AfterFunc(d.cctx, t.destroy)
	defer stop()

	me := &driveState{}
	d.drivesMu.Lock()
	d.drives[me] = struct{}{}
	d.drivesMu.Unlock()
	defer func() {
		d.drivesMu.Lock()
		delete(d.drives, me)
		d.drivesMu.Unlock()
	}()

	// sem bounds the window; tokens hands sent batches to the receiver.
	// Tokens in flight never exceed held window slots, so the token send
	// cannot block even after the receiver dies.
	sem := make(chan struct{}, d.cfg.depth)
	tokens := make(chan struct{}, d.cfg.depth)
	recvDone := make(chan error, 1)
	// outstanding counts sent-but-not-fully-processed batches; drained
	// pulses when it returns to zero, so the sender can wake up and
	// release an idle transport instead of holding it against the queue.
	var outstanding atomic.Int64
	drained := make(chan struct{}, 1)

	go func() {
		for range tokens {
			res, err := t.recv()
			if err != nil {
				recvDone <- err
				return
			}
			e, ok := me.pop()
			if !ok {
				recvDone <- t.corrupt("answered with no batch in flight")
				return
			}
			j := e.j
			if res.Err != "" {
				me.unpop(e)
				recvDone <- t.corrupt("rejected the stream: %s", sanitizeLine(res.Err))
				return
			}
			if res.ID != j.id {
				me.unpop(e)
				recvDone <- t.corrupt("answered batch %d to batch %d", res.ID, j.id)
				return
			}
			if len(res.Items) != len(j.reqs) {
				me.unpop(e)
				recvDone <- t.corrupt("answered %d items to a %d-request batch", len(res.Items), len(j.reqs))
				return
			}
			if !j.claimed.CompareAndSwap(false, true) {
				// The batch was stolen and the other copy answered first.
				// The worker was healthy and the bytes identical — only
				// the delivery is already done. Window accounting only.
				t.success()
				<-sem
				if outstanding.Add(-1) == 0 {
					select {
					case drained <- struct{}{}:
					default:
					}
				}
				continue
			}
			bad := -1
			for i, it := range res.Items {
				if it.Err != "" {
					bad = i
					break
				}
				d.results <- indexed[testbed.Measurement]{j.off + i, it.M}
			}
			if bad >= 0 {
				// Request-level rejection from a healthy worker:
				// deterministic, never retried. Earlier items of the batch
				// still count — they are valid prefix results.
				d.report(j.off+bad, t.reject(res.Items[bad].Err))
				recvDone <- nil
				return
			}
			t.success()
			if bo, ok := t.(batchObserver); ok {
				//xrlint:allow determinism -- batch latency feeds capacity weights (dispatch steering), never measurement data
				bo.observe(len(j.reqs), time.Since(e.sentAt))
			}
			if d.remaining.Add(-1) == 0 {
				d.finish()
			}
			<-sem
			if outstanding.Add(-1) == 0 {
				select {
				case drained <- struct{}{}:
				default:
				}
			}
		}
		recvDone <- nil
	}()

	j := first
	var rerr, sendFail error
	recvSeen := false
send:
	for {
		for j == nil {
			// Fast path: take queued work if immediately available.
			select {
			case j = <-d.queue:
				continue
			case <-d.queueDone:
				break send
			case <-d.cctx.Done():
				break send
			case rerr = <-recvDone:
				recvSeen = true
				break send
			default:
			}
			if outstanding.Load() > 0 {
				// The window is still working; block until something
				// changes.
				select {
				case j = <-d.queue:
				case <-d.queueDone:
					break send
				case <-d.cctx.Done():
					break send
				case rerr = <-recvDone:
					recvSeen = true
					break send
				case <-drained:
					// The window just emptied; re-evaluate idleness.
				}
				continue
			}
			// Idle: nothing queued and nothing in flight.
			if d.cfg.stealAfter <= 0 {
				// Holding the transport against the queue here can
				// deadlock: with concurrent dispatchers over one shared
				// bounded source, the next batch may be in the hands of a
				// session blocked in acquire, waiting for exactly this
				// slot. Release the transport instead; the session loop
				// re-acquires when more work arrives.
				break send
			}
			// Stealing enabled — transports are unbounded connections,
			// so camping here starves no one. Re-dispatch the most loaded
			// session's freshest unstarted batch, or wait for one to age
			// past the threshold.
			//xrlint:allow determinism -- steal age clock for dispatch steering, never measurement data
			if sj := d.steal(me, time.Now()); sj != nil {
				j = sj
				continue
			}
			wait := d.cfg.stealAfter / 2
			if wait < time.Millisecond {
				wait = time.Millisecond
			}
			select {
			case j = <-d.queue:
			case <-d.queueDone:
				break send
			case <-d.cctx.Done():
				break send
			case rerr = <-recvDone:
				recvSeen = true
				break send
			case <-time.After(wait):
			}
		}
		if j.claimed.Load() {
			// Answered elsewhere while it sat queued; nothing to send.
			j = nil
			continue
		}
		select {
		case sem <- struct{}{}:
		case <-d.cctx.Done():
			break send
		case rerr = <-recvDone:
			recvSeen = true
			break send
		}
		//xrlint:allow determinism -- send timestamp for steal age and latency weights, never measurement data
		sentAt := time.Now()
		if err := t.send(testbed.WireBatch{ID: j.id, Reqs: j.reqs}); err != nil {
			sendFail = err
			break send
		}
		me.push(j, sentAt)
		outstanding.Add(1)
		tokens <- struct{}{}
		j = nil
	}
	close(tokens)
	if !recvSeen {
		select {
		case <-d.queueDone:
			// The sweep is complete. If every answer this drive still
			// expects was delivered by a thief, the slow pipe has nothing
			// left to say worth waiting for: sacrifice the connection
			// instead of draining it, so the sweep returns at the fast
			// nodes' pace — which is the entire point of stealing.
			if (j == nil || j.claimed.Load()) && me.pendingOnlyStolen() {
				t.abort()
				return
			}
		default:
		}
		// Wait the receiver out: it exits on the closed token stream, or
		// on the recv error cancelation's transport destroy provokes.
		if r := <-recvDone; rerr == nil {
			rerr = r
		}
	}

	// Collect the batches this drive still owns: stolen entries belong
	// to their thief now, and claimed ones were already delivered by a
	// duplicate answer.
	var orphans []*batchJob
	me.mu.Lock()
	for _, e := range me.entries {
		if !e.stolen && !e.j.claimed.Load() {
			orphans = append(orphans, e.j)
		}
	}
	me.entries = nil
	me.mu.Unlock()
	if j != nil && !j.claimed.Load() {
		orphans = append(orphans, j)
	}

	if d.cctx.Err() != nil {
		// Canceled (by a report, an emit failure, or the caller): no
		// accounting, no retries — just make sure the transport is dead
		// and its slot freed.
		t.abort()
		return
	}
	cause := sendFail
	if cause == nil {
		cause = rerr
	}
	if cause == nil {
		t.park()
		return
	}
	t.fail(cause)
	for _, o := range orphans {
		d.retry(o, cause)
	}
}
