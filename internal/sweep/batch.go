package sweep

// The batched, pipelined dispatch engine shared by ProcRunner and
// NetRunner. Version 1 of the wire protocol round-tripped one request
// per frame, so every grid point paid one full dispatcher↔worker
// latency; profiles (BENCH_7) showed that latency — not measurement —
// dominating both distributed backends. The engine here removes it two
// ways:
//
//   - Batching: contiguous runs of the request slice ride together in
//     one WireBatch frame (splitBatches), so a 64-point grid costs a
//     handful of round trips instead of 64. Session requests stay
//     singleton batches — their results carry traces and sketches, and
//     a 16-wide session batch could overflow MaxFrameBytes.
//   - Pipelining: each worker session keeps a window of batches in
//     flight (cfg.depth), sending the next batch while earlier ones are
//     still being answered, so a worker never idles between frames.
//
// The engine mirrors the generic in-process Stream engine's contract at
// request granularity, which is what keeps the three backends
// byte-identical: results are delivered to an ordered aggregator that
// emits each contiguous prefix as it forms; failures report through the
// same lowest-index, genuine-beats-canceled selection; cancelation
// destroys transports to unblock in-flight I/O; and a dead transport's
// unanswered batches are re-dispatched to a fresh one under a bounded
// per-batch attempt budget, exactly like v1 re-dispatched shards.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/testbed"
)

// Tuning defaults shared by the dispatching backends.
const (
	// DefaultBatch is the default cap on requests per WireBatch frame.
	// Small grids use smaller batches automatically so every session
	// window stays busy (splitBatches).
	DefaultBatch = 16
	// DefaultPipeline is the default window of outstanding batches per
	// worker session.
	DefaultPipeline = 2
)

// batchJob is one batch of contiguous requests on its way through the
// dispatcher. Its tag (id) doubles as the grid offset of reqs[0], so a
// result frame identifies both its window slot and its output indices.
type batchJob struct {
	id       int
	off      int
	reqs     []testbed.Request
	attempts int
	lastErr  error
}

// terminalError marks an acquire failure that fails the pulled batch —
// and therefore the sweep — immediately instead of consuming one of its
// retry attempts: a quarantined spawn source, a spawn failure, a version
// mismatch, a fully poisoned fleet, or cancelation.
type terminalError struct {
	err error
	// needsIdx renders the error through noHealthySource with the
	// batch's index and last dispatch failure (the net backend's
	// fleet-exhausted diagnostics).
	needsIdx bool
}

func (e *terminalError) Error() string { return e.err.Error() }
func (e *terminalError) Unwrap() error { return e.err }

// errAllCooling reports an acquire that waited out a fully quarantined
// fleet: the attempt is consumed but carries no new failure cause.
var errAllCooling = errors.New("every node quarantined after repeated failures")

// batchSource checks out transports for the dispatcher. Attempt-level
// failures (a crashed spawn handshake, an unreachable node) return plain
// errors; unrecoverable conditions return *terminalError.
type batchSource interface {
	acquire(cctx context.Context) (batchTransport, error)
}

// batchTransport is one live worker session: a subprocess pipe pair or
// a fleet TCP connection, post-handshake, speaking the negotiated codec.
type batchTransport interface {
	// send writes one batch frame; errors are retryable worker failures.
	send(b testbed.WireBatch) error
	// recv reads one batch-result frame; errors are retryable worker
	// failures.
	recv() (testbed.WireBatchResult, error)
	// success records one healthy batch round trip (resets quarantine).
	success()
	// reject converts a request-level rejection reported by a healthy
	// worker into its non-retryable error.
	reject(msg string) error
	// corrupt converts protocol corruption into a retryable worker
	// failure naming the source.
	corrupt(format string, args ...any) error
	// park returns the healthy transport for reuse by a later acquire.
	park()
	// fail records a transport death with its cause, destroys the
	// transport, and frees its slot for a replacement.
	fail(cause error)
	// abort destroys the transport and frees its slot without failure
	// accounting (cancelation and request-rejection paths).
	abort()
	// destroy kills the transport without blocking (idempotent); the
	// dispatcher hooks it to cancelation to unblock in-flight I/O.
	destroy()
}

// batchConfig parameterizes one dispatch run.
type batchConfig struct {
	sessions int // concurrent worker sessions (procs, or nodes×conns)
	batch    int // per-frame request cap; <=0 means DefaultBatch
	depth    int // pipeline window per session; <=0 means DefaultPipeline
	budget   int // attempts per batch before givingUp
	source   batchSource
	givingUp func(j *batchJob) error
}

// splitBatches carves the request slice into contiguous batch jobs of at
// most batch requests, shrinking the batch size on small grids so every
// session window (sessions×depth lanes) has work. Session requests are
// isolated into singleton batches.
func splitBatches(reqs []testbed.Request, sessions, batch, depth int) []*batchJob {
	if sessions < 1 {
		sessions = 1
	}
	lanes := sessions * depth
	if per := (len(reqs) + lanes - 1) / lanes; per < batch {
		batch = per
	}
	if batch < 1 {
		batch = 1
	}
	var jobs []*batchJob
	flush := func(off, end int) {
		for off < end {
			e := off + batch
			if e > end {
				e = end
			}
			jobs = append(jobs, &batchJob{id: off, off: off, reqs: reqs[off:e]})
			off = e
		}
	}
	start := 0
	for i, r := range reqs {
		if r.Op == testbed.OpSession {
			flush(start, i)
			jobs = append(jobs, &batchJob{id: i, off: i, reqs: reqs[i : i+1]})
			start = i + 1
		}
	}
	flush(start, len(reqs))
	return jobs
}

// batchDispatcher is the run state of one runBatches call.
type batchDispatcher struct {
	cfg     batchConfig
	cctx    context.Context
	cancel  context.CancelFunc
	queue   chan *batchJob
	results chan indexed[testbed.Measurement]

	remaining atomic.Int64

	errMu    sync.Mutex
	firstErr *pointError
}

// runBatches evaluates reqs across the source's transports and invokes
// emit in strict request order — the batch-dispatch mirror of the
// generic Stream engine, with identical error selection and final-error
// semantics.
func runBatches(ctx context.Context, reqs []testbed.Request, cfg batchConfig, emit func(idx int, m testbed.Measurement) error) error {
	n := len(reqs)
	if cfg.batch <= 0 {
		cfg.batch = DefaultBatch
	}
	if cfg.depth <= 0 {
		cfg.depth = DefaultPipeline
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	jobs := splitBatches(reqs, cfg.sessions, cfg.batch, cfg.depth)
	d := &batchDispatcher{
		cfg:     cfg,
		cctx:    cctx,
		cancel:  cancel,
		queue:   make(chan *batchJob, len(jobs)),
		results: make(chan indexed[testbed.Measurement], n),
	}
	for _, j := range jobs {
		d.queue <- j
	}
	d.remaining.Store(int64(len(jobs)))

	sessions := cfg.sessions
	if sessions > len(jobs) {
		sessions = len(jobs)
	}
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.session()
		}()
	}
	go func() {
		wg.Wait()
		close(d.results)
	}()

	// Ordered streaming aggregation, identical to the Stream engine's:
	// buffer out-of-order completions, flush each contiguous prefix.
	pending := make(map[int]testbed.Measurement)
	next := 0
	var emitErr error
	for r := range d.results {
		if emitErr != nil {
			continue // drain; the sweep is already canceled
		}
		pending[r.idx] = r.val
		for {
			v, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			if err := emit(next, v); err != nil {
				emitErr = fmt.Errorf("sweep: emit point %d: %w", next, err)
				cancel()
				break
			}
			next++
		}
	}

	d.errMu.Lock()
	pe := d.firstErr
	d.errMu.Unlock()
	if pe != nil && (emitErr == nil || !errors.Is(pe.err, context.Canceled)) {
		return fmt.Errorf("sweep: point %d: %w", pe.idx, pe.err)
	}
	if emitErr != nil {
		return emitErr
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	if next != n {
		// Cancelation raced result delivery: some points never ran.
		return fmt.Errorf("sweep: %w", cctx.Err())
	}
	return nil
}

// report records a failed request index with the Stream engine's
// selection rule — genuine errors outrank consequential Canceled ones,
// lowest index wins within a class — and cancels the sweep.
func (d *batchDispatcher) report(idx int, err error) {
	canceled := errors.Is(err, context.Canceled)
	d.errMu.Lock()
	if d.firstErr == nil ||
		(!canceled && errors.Is(d.firstErr.err, context.Canceled)) ||
		(canceled == errors.Is(d.firstErr.err, context.Canceled) && idx < d.firstErr.idx) {
		d.firstErr = &pointError{idx, err}
	}
	d.errMu.Unlock()
	d.cancel()
}

// pull takes the next batch job, or reports done when the queue closed
// (all batches delivered) or the sweep canceled.
func (d *batchDispatcher) pull() (*batchJob, bool) {
	select {
	case j, ok := <-d.queue:
		return j, ok
	case <-d.cctx.Done():
		return nil, false
	}
}

// retry charges one attempt against the batch and requeues it, or gives
// up through cfg.givingUp when the budget is spent. A nil cause (a
// quarantine wait) leaves the recorded last failure untouched.
func (d *batchDispatcher) retry(j *batchJob, cause error) {
	if cause != nil {
		j.lastErr = cause
	}
	j.attempts++
	if j.attempts >= d.cfg.budget {
		d.report(j.off, d.cfg.givingUp(j))
		return
	}
	select {
	case d.queue <- j:
	case <-d.cctx.Done():
	}
}

// session is one worker lane: pull a batch, check out a transport, and
// drive it until the transport dies or the work runs out.
func (d *batchDispatcher) session() {
	for {
		j, ok := d.pull()
		if !ok {
			return
		}
		t, err := d.cfg.source.acquire(d.cctx)
		if err != nil {
			var te *terminalError
			if errors.As(err, &te) {
				e := te.err
				if te.needsIdx {
					e = noHealthySource(j.off, te.err, j.lastErr)
				}
				d.report(j.off, e)
				return
			}
			if errors.Is(err, errAllCooling) {
				err = nil
			}
			d.retry(j, err)
			continue
		}
		d.drive(t, j)
	}
}

// drive runs one transport's send/receive session: the calling goroutine
// sends batch frames with up to depth outstanding, while a receiver
// goroutine matches result frames to the in-flight FIFO and delivers
// items. Responses come back in send order on a connection (the worker
// loop is sequential), so FIFO matching is exact; the echoed batch tag
// is checked as a corruption guard. On transport death every unanswered
// batch is collected and re-dispatched through retry.
func (d *batchDispatcher) drive(t batchTransport, first *batchJob) {
	stop := context.AfterFunc(d.cctx, t.destroy)
	defer stop()

	var (
		mu       sync.Mutex
		inflight []*batchJob
	)
	push := func(j *batchJob) {
		mu.Lock()
		inflight = append(inflight, j)
		mu.Unlock()
	}
	pop := func() *batchJob {
		mu.Lock()
		defer mu.Unlock()
		if len(inflight) == 0 {
			return nil
		}
		j := inflight[0]
		inflight = inflight[1:]
		return j
	}
	unpop := func(j *batchJob) {
		mu.Lock()
		inflight = append([]*batchJob{j}, inflight...)
		mu.Unlock()
	}

	// sem bounds the window; tokens hands sent batches to the receiver.
	// Tokens in flight never exceed held window slots, so the token send
	// cannot block even after the receiver dies.
	sem := make(chan struct{}, d.cfg.depth)
	tokens := make(chan struct{}, d.cfg.depth)
	recvDone := make(chan error, 1)
	// outstanding counts sent-but-not-fully-processed batches; drained
	// pulses when it returns to zero, so the sender can wake up and
	// release an idle transport instead of holding it against the queue.
	var outstanding atomic.Int64
	drained := make(chan struct{}, 1)

	go func() {
		for range tokens {
			res, err := t.recv()
			if err != nil {
				recvDone <- err
				return
			}
			j := pop()
			if j == nil {
				recvDone <- t.corrupt("answered with no batch in flight")
				return
			}
			if res.Err != "" {
				unpop(j)
				recvDone <- t.corrupt("rejected the stream: %s", sanitizeLine(res.Err))
				return
			}
			if res.ID != j.id {
				unpop(j)
				recvDone <- t.corrupt("answered batch %d to batch %d", res.ID, j.id)
				return
			}
			if len(res.Items) != len(j.reqs) {
				unpop(j)
				recvDone <- t.corrupt("answered %d items to a %d-request batch", len(res.Items), len(j.reqs))
				return
			}
			bad := -1
			for i, it := range res.Items {
				if it.Err != "" {
					bad = i
					break
				}
				d.results <- indexed[testbed.Measurement]{j.off + i, it.M}
			}
			if bad >= 0 {
				// Request-level rejection from a healthy worker:
				// deterministic, never retried. Earlier items of the batch
				// still count — they are valid prefix results.
				d.report(j.off+bad, t.reject(res.Items[bad].Err))
				recvDone <- nil
				return
			}
			t.success()
			if d.remaining.Add(-1) == 0 {
				close(d.queue)
			}
			<-sem
			if outstanding.Add(-1) == 0 {
				select {
				case drained <- struct{}{}:
				default:
				}
			}
		}
		recvDone <- nil
	}()

	j := first
	var rerr, sendFail error
	recvSeen := false
send:
	for {
		if j == nil {
			select {
			case jj, ok := <-d.queue:
				if !ok {
					break send
				}
				j = jj
			case <-d.cctx.Done():
				break send
			case rerr = <-recvDone:
				recvSeen = true
				break send
			default:
				if outstanding.Load() == 0 {
					// Nothing queued and nothing in flight. Holding the
					// transport against the queue here can deadlock: with
					// concurrent dispatchers over one shared source, the next
					// batch may be in the hands of a session blocked in
					// acquire, waiting for exactly this slot. Release the
					// transport instead; the session loop re-acquires when
					// more work arrives.
					break send
				}
				select {
				case jj, ok := <-d.queue:
					if !ok {
						break send
					}
					j = jj
				case <-d.cctx.Done():
					break send
				case rerr = <-recvDone:
					recvSeen = true
					break send
				case <-drained:
					// The window just emptied; re-evaluate idleness.
					continue
				}
			}
		}
		select {
		case sem <- struct{}{}:
		case <-d.cctx.Done():
			break send
		case rerr = <-recvDone:
			recvSeen = true
			break send
		}
		if err := t.send(testbed.WireBatch{ID: j.id, Reqs: j.reqs}); err != nil {
			sendFail = err
			break send
		}
		push(j)
		outstanding.Add(1)
		tokens <- struct{}{}
		j = nil
	}
	close(tokens)
	if !recvSeen {
		// Wait the receiver out: it exits on the closed token stream, or
		// on the recv error cancelation's transport destroy provokes.
		if r := <-recvDone; rerr == nil {
			rerr = r
		}
	}

	var orphans []*batchJob
	mu.Lock()
	orphans = append(orphans, inflight...)
	inflight = nil
	mu.Unlock()
	if j != nil {
		orphans = append(orphans, j)
	}

	if d.cctx.Err() != nil {
		// Canceled (by a report, an emit failure, or the caller): no
		// accounting, no retries — just make sure the transport is dead
		// and its slot freed.
		t.abort()
		return
	}
	cause := sendFail
	if cause == nil {
		cause = rerr
	}
	if cause == nil {
		t.park()
		return
	}
	t.fail(cause)
	for _, o := range orphans {
		d.retry(o, cause)
	}
}
