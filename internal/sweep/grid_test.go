package sweep

import (
	"strings"
	"testing"

	"repro/internal/cnn"
	"repro/internal/device"
	"repro/internal/pipeline"
)

func testDevices(t *testing.T, names ...string) []device.Device {
	t.Helper()
	out := make([]device.Device, len(names))
	for i, n := range names {
		d, err := device.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = d
	}
	return out
}

func TestGridSizeAndOrder(t *testing.T) {
	g := Grid{
		Devices:    testDevices(t, "XR1", "XR2"),
		Modes:      []pipeline.InferenceMode{pipeline.ModeLocal, pipeline.ModeRemote},
		FrameSizes: []float64{300, 500},
		CPUFreqs:   []float64{1, 2},
	}
	pts := g.Points()
	if len(pts) != g.Size() || len(pts) != 16 {
		t.Fatalf("points = %d, size = %d, want 16", len(pts), g.Size())
	}
	// Row-major order: devices outermost, frequencies innermost.
	if pts[0].Device.Name != "XR1" || pts[0].CPUFreqGHz != 1 {
		t.Fatalf("first point %+v", pts[0])
	}
	if pts[1].CPUFreqGHz != 2 || pts[1].FrameSizePx2 != 300 {
		t.Fatalf("second point %+v", pts[1])
	}
	if pts[8].Device.Name != "XR2" {
		t.Fatalf("ninth point device = %s, want XR2", pts[8].Device.Name)
	}
}

func TestGridDefaultsFillEmptyAxes(t *testing.T) {
	g := Grid{Devices: testDevices(t, "XR1")}
	pts := g.Points()
	if len(pts) != 1 {
		t.Fatalf("points = %d, want 1", len(pts))
	}
	sc, err := pts[0].Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Mode != pipeline.ModeLocal || sc.FrameSizePx2 != 500 {
		t.Fatalf("defaults not applied: mode=%v size=%v", sc.Mode, sc.FrameSizePx2)
	}
	if sc.CPUFreqGHz != pts[0].Device.CPUGHz {
		t.Fatalf("zero freq must mean device max, got %v", sc.CPUFreqGHz)
	}
}

func TestGridEmptyDevicesYieldsZeroPoints(t *testing.T) {
	if n := (Grid{}).Size(); n != 0 {
		t.Fatalf("empty grid size = %d", n)
	}
	if pts := (Grid{}).Points(); len(pts) != 0 {
		t.Fatalf("empty grid points = %d", len(pts))
	}
}

// TestSpecClampsFrequency checks that one grid can span heterogeneous
// devices: a clock above a device's maximum clamps instead of failing
// scenario validation.
func TestSpecClampsFrequency(t *testing.T) {
	devs := testDevices(t, "XR5") // Snapdragon XR1, low max clock
	spec := Spec{
		Device:       devs[0],
		Mode:         pipeline.ModeLocal,
		FrameSizePx2: 500,
		CPUFreqGHz:   99,
	}
	sc, err := spec.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if sc.CPUFreqGHz != devs[0].CPUGHz {
		t.Fatalf("freq = %v, want clamped to %v", sc.CPUFreqGHz, devs[0].CPUGHz)
	}
}

func TestSpecCNNOverridePerMode(t *testing.T) {
	dev := testDevices(t, "XR1")[0]
	model, err := cnn.ByName("EfficientNet_Float")
	if err != nil {
		t.Fatal(err)
	}
	local := Spec{Device: dev, Mode: pipeline.ModeLocal, CNN: model, FrameSizePx2: 500}
	sc, err := local.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if sc.LocalCNN.Name != model.Name {
		t.Fatalf("local CNN = %s", sc.LocalCNN.Name)
	}
	remote := Spec{Device: dev, Mode: pipeline.ModeRemote, CNN: model, FrameSizePx2: 500}
	sc, err = remote.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if sc.RemoteCNN.Name != model.Name {
		t.Fatalf("remote CNN = %s", sc.RemoteCNN.Name)
	}
	if sc.LocalCNN.Name == model.Name {
		t.Fatal("remote override must not touch the local CNN")
	}
}

func TestSpecLabel(t *testing.T) {
	dev := testDevices(t, "XR1")[0]
	spec := Spec{Device: dev, Mode: pipeline.ModeRemote, FrameSizePx2: 600, CPUFreqGHz: 2}
	label := spec.Label()
	for _, want := range []string{"XR1", "remote", "default", "600"} {
		if !strings.Contains(label, want) {
			t.Fatalf("label %q missing %q", label, want)
		}
	}
}
