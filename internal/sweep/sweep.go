package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// Common errors.
var (
	// ErrBadGrid indicates an invalid grid size.
	ErrBadGrid = errors.New("sweep: negative grid size")
)

// Shard identifies one grid point handed to a worker.
type Shard struct {
	// Index is the point's position in grid order (0-based).
	Index int
	// Seed is the point's deterministic RNG seed, derived from the
	// engine's base seed and Index only.
	Seed int64
}

// Options configures an engine run.
type Options struct {
	// Workers is the pool size; 0 or negative means GOMAXPROCS. The
	// pool never exceeds the grid size.
	Workers int
	// BaseSeed is mixed into every shard seed. Two runs with the same
	// base seed and grid produce identical results.
	BaseSeed int64
}

func (o Options) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// ShardSeed derives the deterministic seed of grid point idx from base
// using a SplitMix64 finalizer, so adjacent indices land on statistically
// independent streams.
func ShardSeed(base int64, idx int) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*uint64(idx+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// indexed pairs a result with its grid position for reordering.
type indexed[T any] struct {
	idx int
	val T
}

// pointError carries a failed point's position so error selection favors
// the lowest-index failure among those reported, regardless of which
// worker observed its error first. A genuine failure always outranks a
// consequential context.Canceled from a point that died only because a
// sibling's failure canceled the sweep.
type pointError struct {
	idx int
	err error
}

// Run evaluates n grid points across the worker pool and returns their
// results in grid order. fn receives a canceled context as soon as any
// point fails or the caller's context ends; the first (lowest-index)
// point error is returned. A zero-size grid returns an empty slice.
func Run[T any](ctx context.Context, n int, opts Options, fn func(ctx context.Context, sh Shard) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadGrid, n)
	}
	out := make([]T, 0, n)
	err := Stream(ctx, n, opts, fn, func(_ int, v T) error {
		out = append(out, v)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Stream evaluates n grid points across the worker pool and invokes emit
// on the caller's goroutine in strict grid order, as soon as each prefix
// of the grid completes — point k is emitted the moment points 0..k are
// all done, even while later points are still in flight. Results that
// finish out of order are buffered until their turn. A non-nil error
// from emit cancels the sweep and is returned.
func Stream[T any](ctx context.Context, n int, opts Options, fn func(ctx context.Context, sh Shard) (T, error), emit func(idx int, v T) error) error {
	if n < 0 {
		return fmt.Errorf("%w: %d", ErrBadGrid, n)
	}
	if n == 0 {
		return ctx.Err()
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	jobs := make(chan int)
	results := make(chan indexed[T], n)
	workers := opts.workers(n)

	// Failed points report under the mutex. A ctx-aware point that dies
	// with context.Canceled only did so because a sibling's failure (or a
	// failed emit) canceled the sweep, so genuine errors outrank Canceled
	// ones; within the same class the lowest-index failure is surfaced,
	// no matter which worker lost the race to cancel.
	var (
		errMu    sync.Mutex
		firstErr *pointError
	)
	report := func(idx int, err error) {
		canceled := errors.Is(err, context.Canceled)
		errMu.Lock()
		if firstErr == nil ||
			(!canceled && errors.Is(firstErr.err, context.Canceled)) ||
			(canceled == errors.Is(firstErr.err, context.Canceled) && idx < firstErr.idx) {
			firstErr = &pointError{idx, err}
		}
		errMu.Unlock()
		cancel()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				if cctx.Err() != nil {
					return
				}
				v, err := fn(cctx, Shard{Index: idx, Seed: ShardSeed(opts.BaseSeed, idx)})
				if err != nil {
					report(idx, err)
					return
				}
				results <- indexed[T]{idx, v}
			}
		}()
	}

	go func() {
		defer close(jobs)
		for i := 0; i < n; i++ {
			select {
			case jobs <- i:
			case <-cctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	// Ordered streaming aggregation: buffer out-of-order completions and
	// flush each contiguous prefix as it forms.
	pending := make(map[int]T)
	next := 0
	var emitErr error
	for r := range results {
		if emitErr != nil {
			continue // drain; the sweep is already canceled
		}
		pending[r.idx] = r.val
		for {
			v, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			if err := emit(next, v); err != nil {
				emitErr = fmt.Errorf("sweep: emit point %d: %w", next, err)
				cancel()
				break
			}
			next++
		}
	}

	errMu.Lock()
	pe := firstErr
	errMu.Unlock()
	// An emit failure cancels the sweep, so workers dying afterwards
	// report consequential context.Canceled errors; prefer the emit error
	// (the root cause) over those, but never over a genuine point
	// failure.
	if pe != nil && (emitErr == nil || !errors.Is(pe.err, context.Canceled)) {
		return fmt.Errorf("sweep: point %d: %w", pe.idx, pe.err)
	}
	if emitErr != nil {
		return emitErr
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	if next != n {
		// Cancelation raced result delivery: some points never ran.
		return fmt.Errorf("sweep: %w", cctx.Err())
	}
	return nil
}
