package sweep

// Worker-lifecycle helpers shared by the dispatching backends. ProcRunner
// (subprocesses over pipes) and NetRunner (serve nodes over TCP) manage
// the same kind of resource — a remote worker that can crash, hang, or
// babble — so the pieces that make those failures survivable live here
// once: the error taxonomy separating a broken worker from a request the
// worker correctly rejected, the stderr/error-text sanitizer, and the
// per-source failure tracker that quarantines a repeatedly failing
// worker source with exponential backoff.

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"
	"unicode"
)

// workerFailure marks an error as a broken worker — a crash, disconnect,
// or protocol corruption — rather than a request-level rejection the
// worker reported while healthy. Worker failures are retryable: the
// measurement is a pure function of the request, so re-dispatching the
// shard to another worker reproduces the exact same bytes. Request-level
// errors are deterministic and re-dispatching them would only repeat the
// rejection, so they surface immediately.
type workerFailure struct{ err error }

func (e *workerFailure) Error() string { return e.err.Error() }
func (e *workerFailure) Unwrap() error { return e.err }

// retryable reports whether err marks a broken worker whose shard may be
// re-dispatched.
func retryable(err error) bool {
	var wf *workerFailure
	return errors.As(err, &wf)
}

// Quarantine policy shared by the dispatching backends: a source that
// fails quarantineAfter times in a row is benched for backoffBase,
// doubling on each further failure up to backoffMax; any success resets
// it.
const (
	quarantineAfter = 3
	backoffBase     = 250 * time.Millisecond
	backoffMax      = 8 * time.Second
)

// sourceHealth tracks one worker source — the proc backend's subprocess
// spawner, or one remote node — through failures. It answers two
// questions at checkout time: is the source quarantined (cooling off
// after repeated failures), and is it poisoned (permanently unusable,
// e.g. a handshake version mismatch)? Quarantine heals with time and
// success; poison never does.
type sourceHealth struct {
	mu          sync.Mutex
	consecutive int
	until       time.Time
	lastErr     error
	poison      error
	// jitterKey/jitterN drive the deterministic backoff jitter: the key
	// identifies the source (a node address; zero for anonymous sources),
	// the counter sequences the draws. Seeded rather than random so two
	// runs of the same fleet land the same windows — the determinism
	// contract covers timing-free output, but reproducible schedules keep
	// failures debuggable.
	jitterKey uint64
	jitterN   uint64
}

// seedJitter keys this source's jitter stream to a stable identity.
func (h *sourceHealth) seedJitter(key string) {
	// FNV-1a over the key.
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	v := uint64(offset64)
	for i := 0; i < len(key); i++ {
		v ^= uint64(key[i])
		v *= prime64
	}
	h.mu.Lock()
	h.jitterKey = v
	h.mu.Unlock()
}

// mix64 is the SplitMix64 finalizer: a bijective avalanche over 64 bits,
// turning (key, draw counter) into an evenly spread jitter fraction with
// no clock and no global rand — xrlint's determinism contract holds.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// failure records one worker failure and its cause, starting or
// extending the quarantine window once the consecutive-failure
// threshold is reached. The cause is kept so a quarantine error can
// carry the diagnostic that triggered it (exit status, stderr tail)
// instead of just "quarantined".
func (h *sourceHealth) failure(now time.Time, cause error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.consecutive++
	if cause != nil {
		h.lastErr = cause
	}
	if h.consecutive < quarantineAfter {
		return
	}
	shift := h.consecutive - quarantineAfter
	if shift > 10 {
		shift = 10 // backoffMax is hit long before the shift overflows
	}
	d := backoffBase << shift
	if d > backoffMax {
		d = backoffMax
	}
	// Jitter the window into [d/2, d): unjittered exponential backoff
	// synchronizes every dispatcher benching the same node, so all of
	// them re-probe in the same instant and thundering-herd a node that
	// was recovering. The jitter is deterministic — keyed per source,
	// sequenced per draw — so the desynchronization costs none of the
	// reproducibility.
	h.jitterN++
	frac := float64(mix64(h.jitterKey^h.jitterN*0x9e3779b97f4a7c15)>>11) / (1 << 53)
	d = d/2 + time.Duration(frac*float64(d/2))
	h.until = now.Add(d)
}

// success resets the failure streak and lifts any quarantine.
func (h *sourceHealth) success() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.consecutive = 0
	h.until = time.Time{}
}

// quarantinedFor returns how much longer the source is benched; zero
// means usable now.
func (h *sourceHealth) quarantinedFor(now time.Time) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.until.After(now) {
		return h.until.Sub(now)
	}
	return 0
}

// lastFailure returns the most recent failure cause, or nil.
func (h *sourceHealth) lastFailure() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.lastErr
}

// poisonWith marks the source permanently unusable; the first reason
// sticks.
func (h *sourceHealth) poisonWith(err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.poison == nil {
		h.poison = err
	}
}

// poisoned returns the permanent-failure reason, or nil.
func (h *sourceHealth) poisoned() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.poison
}

// sanitizeLine renders arbitrary worker-reported text as printable
// single-line UTF-8 safe to embed in an error message: truncation-split
// runes and other invalid sequences are dropped, newlines and tabs
// collapse to spaces, and remaining non-printable runes are removed.
func sanitizeLine(s string) string {
	s = strings.ToValidUTF8(s, "")
	s = strings.Map(func(r rune) rune {
		switch {
		case r == '\n' || r == '\t' || r == '\r':
			return ' '
		case !unicode.IsPrint(r):
			return -1
		}
		return r
	}, s)
	return strings.Join(strings.Fields(s), " ")
}

// tailWriter keeps the last limit bytes written — enough stderr context
// to make a crash error actionable without unbounded buffering.
type tailWriter struct {
	mu    sync.Mutex
	limit int
	buf   []byte
}

func (t *tailWriter) Write(p []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buf = append(t.buf, p...)
	if len(t.buf) > t.limit {
		t.buf = t.buf[len(t.buf)-t.limit:]
	}
	return len(p), nil
}

// suffix renders the tail as a sanitized "; stderr: ..." fragment, or
// nothing when the tail is empty (or pure garbage).
func (t *tailWriter) suffix() string {
	t.mu.Lock()
	buf := string(t.buf)
	t.mu.Unlock()
	s := sanitizeLine(buf)
	if s == "" {
		return ""
	}
	return "; stderr: " + s
}

// noHealthySource builds the give-up error for a dispatch loop that ran
// out of usable sources, folding in the most recent failure when there
// is one.
func noHealthySource(idx int, cause, lastErr error) error {
	if lastErr != nil {
		return fmt.Errorf("sweep: shard %d: %w (last dispatch failure: %v)", idx, cause, lastErr)
	}
	return fmt.Errorf("sweep: shard %d: %w", idx, cause)
}
