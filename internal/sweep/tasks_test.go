package sweep

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestRunTasksOrdersResults(t *testing.T) {
	var tasks []Task[string]
	for i := 0; i < 16; i++ {
		i := i
		tasks = append(tasks, Task[string]{
			Name: fmt.Sprintf("task-%d", i),
			Run: func(context.Context) (string, error) {
				if i < 4 {
					time.Sleep(3 * time.Millisecond) // later tasks finish first
				}
				return fmt.Sprintf("result-%d", i), nil
			},
		})
	}
	out, err := RunTasks(context.Background(), tasks, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(tasks) {
		t.Fatalf("results = %d, want %d", len(out), len(tasks))
	}
	for i, v := range out {
		if want := fmt.Sprintf("result-%d", i); v != want {
			t.Fatalf("out[%d] = %q, want %q", i, v, want)
		}
	}
}

func TestStreamTasksEmitsPrefixesInOrder(t *testing.T) {
	tasks := []Task[int]{
		{Name: "slow", Run: func(context.Context) (int, error) {
			time.Sleep(3 * time.Millisecond)
			return 10, nil
		}},
		{Name: "fast", Run: func(context.Context) (int, error) { return 20, nil }},
	}
	var names []string
	err := StreamTasks(context.Background(), tasks, Options{Workers: 2},
		func(idx int, name string, v int) error {
			if v != (idx+1)*10 {
				t.Fatalf("task %d value = %d", idx, v)
			}
			names = append(names, name)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "slow" || names[1] != "fast" {
		t.Fatalf("emit order = %v, want [slow fast]", names)
	}
}

func TestRunTasksPropagatesLowestIndexError(t *testing.T) {
	boom := errors.New("boom")
	tasks := []Task[int]{
		{Name: "ok", Run: func(context.Context) (int, error) { return 1, nil }},
		{Name: "bad", Run: func(context.Context) (int, error) { return 0, boom }},
	}
	if _, err := RunTasks(context.Background(), tasks, Options{Workers: 1}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestRunTasksRejectsAnonymousTasks(t *testing.T) {
	tasks := []Task[int]{{Name: "", Run: func(context.Context) (int, error) { return 0, nil }}}
	if _, err := RunTasks(context.Background(), tasks, Options{}); !errors.Is(err, ErrTaskName) {
		t.Fatalf("err = %v, want ErrTaskName", err)
	}
	tasks = []Task[int]{{Name: "nil-run"}}
	if _, err := RunTasks(context.Background(), tasks, Options{}); !errors.Is(err, ErrTaskName) {
		t.Fatalf("err = %v, want ErrTaskName", err)
	}
}

func TestStreamTasksEmitErrorCancels(t *testing.T) {
	stop := errors.New("stop")
	tasks := []Task[int]{
		{Name: "a", Run: func(context.Context) (int, error) { return 1, nil }},
		{Name: "b", Run: func(ctx context.Context) (int, error) {
			select { // give the emit error time to cancel the group
			case <-ctx.Done():
			case <-time.After(time.Second):
			}
			return 2, nil
		}},
	}
	err := StreamTasks(context.Background(), tasks, Options{Workers: 2},
		func(int, string, int) error { return stop })
	if !errors.Is(err, stop) {
		t.Fatalf("err = %v, want stop", err)
	}
}

// TestRunTasksRealErrorNotMaskedByCanceledSibling pins error precedence
// for ctx-aware tasks: when a later task's genuine failure cancels the
// group, an earlier in-flight task that dies with the consequential
// context.Canceled must not mask the root cause just by having the
// lower index.
func TestRunTasksRealErrorNotMaskedByCanceledSibling(t *testing.T) {
	boom := errors.New("boom")
	tasks := []Task[int]{
		{Name: "ctx-aware", Run: func(ctx context.Context) (int, error) {
			<-ctx.Done() // dies only because the sibling's failure canceled us
			return 0, ctx.Err()
		}},
		{Name: "genuinely-broken", Run: func(context.Context) (int, error) {
			return 0, boom
		}},
	}
	if _, err := RunTasks(context.Background(), tasks, Options{Workers: 2}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the genuine task error", err)
	}
}

// TestStreamEmitErrorNotMaskedByCanceledWorkers pins the error
// precedence of a failed emit: the cancelation it triggers makes
// in-flight workers die with context.Canceled, and the root-cause emit
// error — not a consequential worker error — must surface.
func TestStreamEmitErrorNotMaskedByCanceledWorkers(t *testing.T) {
	writeErr := errors.New("write failed")
	err := Stream(context.Background(), 2, Options{Workers: 2},
		func(ctx context.Context, sh Shard) (int, error) {
			if sh.Index == 1 {
				<-ctx.Done() // dies only because the emit error canceled us
				return 0, ctx.Err()
			}
			return 1, nil
		},
		func(int, int) error { return writeErr })
	if !errors.Is(err, writeErr) {
		t.Fatalf("err = %v, want the emit error", err)
	}
}

// TestTaskSeedIndependentOfOrder pins the property RunAll-style groups
// rely on: a task's seed stream depends only on (base, name), so adding
// or reordering sibling tasks never changes its output.
func TestTaskSeedIndependentOfOrder(t *testing.T) {
	if TaskSeed(42, "fig5a") != TaskSeed(42, "fig5a") {
		t.Fatal("TaskSeed not stable")
	}
	if TaskSeed(42, "fig5a") == TaskSeed(42, "fig5b") {
		t.Fatal("distinct names must map to distinct seeds")
	}
	if TaskSeed(42, "fig5a") == TaskSeed(43, "fig5a") {
		t.Fatal("distinct bases must map to distinct seeds")
	}
}
