package sweep

// Elastic-fleet chaos tests: membership changing under a live sweep —
// joiners admitted mid-run, leavers drained on SIGHUP, queued batches
// stolen off a slow node — each pinned against the same invariant as
// every other fault test in this package: the output bytes never move.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/testbed"
)

// slowProxy fronts a real serve node with a frame-delaying chaos proxy,
// making the node's answers slow without making them wrong.
func slowProxy(t *testing.T, delay time.Duration) *ChaosProxy {
	t.Helper()
	proxy, err := NewChaosProxy(startServeNode(t), ChaosConfig{FrameDelay: delay})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })
	return proxy
}

// nodesFile seeds a membership file and opens it as a fleet source.
func nodesFile(t *testing.T, addrs ...string) (string, *fleet.FileSource) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "nodes")
	writeNodesFile(t, path, addrs...)
	src, err := fleet.NewFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, src
}

func writeNodesFile(t *testing.T, path string, addrs ...string) {
	t.Helper()
	body := "# fleet membership\n"
	for _, a := range addrs {
		body += a + "\n"
	}
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestNetRunnerElasticJoinMidSweep pins mid-run admission: a sweep
// starts on a single slow node, a second node joins through a nodes-file
// reload while batches are in flight, the joiner picks up real work, and
// the output stays byte-identical to the pool backend.
func TestNetRunnerElasticJoinMidSweep(t *testing.T) {
	reqs := testRequests(t, 4)
	want, err := (&PoolRunner{Workers: 2}).Run(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}

	slow := slowProxy(t, 15*time.Millisecond)
	joiner, err := NewChaosProxy(startServeNode(t), ChaosConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer joiner.Close()

	path, src := nodesFile(t, slow.Addr())
	nr := &NetRunner{Members: src, Batch: 1, Pipeline: 2}
	defer nr.Close()

	joined := false
	next := 0
	err = nr.Stream(context.Background(), reqs, func(idx int, m testbed.Measurement) error {
		if idx != next {
			return fmt.Errorf("emitted %d, want %d", idx, next)
		}
		if m != want[idx] {
			return fmt.Errorf("point %d diverged after elastic join", idx)
		}
		next++
		if !joined {
			// First delivery: most of the sweep is still queued on the
			// slow node. Grow the fleet under it.
			joined = true
			writeNodesFile(t, path, slow.Addr(), joiner.Addr())
			if err := src.Reload(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if next != len(reqs) {
		t.Fatalf("delivered %d of %d", next, len(reqs))
	}
	if joiner.Conns() == 0 {
		t.Fatal("mid-sweep joiner was never dialed")
	}
}

// TestNetRunnerSIGHUPDrainsLeaver pins the operator workflow end to end:
// membership lives in a file watched via SIGHUP, and shrinking the fleet
// mid-sweep — the slow node is removed while it still holds in-flight
// batches — drains the leaver without losing, duplicating, or reordering
// a single result.
func TestNetRunnerSIGHUPDrainsLeaver(t *testing.T) {
	reqs := testRequests(t, 4)
	want, err := (&PoolRunner{Workers: 2}).Run(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}

	slow := slowProxy(t, 15*time.Millisecond)
	fast := startServeNode(t)

	path, src := nodesFile(t, slow.Addr(), fast)
	stop := fleet.WatchSIGHUP(src, nil)
	defer stop()

	nr := &NetRunner{Members: src, Batch: 1, Pipeline: 2}
	defer nr.Close()

	_, gen0 := src.Snapshot()
	signaled := false
	next := 0
	err = nr.Stream(context.Background(), reqs, func(idx int, m testbed.Measurement) error {
		if m != want[idx] {
			return fmt.Errorf("point %d diverged across SIGHUP membership change", idx)
		}
		next++
		if !signaled {
			signaled = true
			writeNodesFile(t, path, fast)
			if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
				return err
			}
			// Wait for the asynchronous reload so the shrink really lands
			// mid-sweep, not after it.
			for i := 0; ; i++ {
				if _, gen := src.Snapshot(); gen != gen0 {
					break
				}
				if i > 5000 {
					return fmt.Errorf("SIGHUP reload never landed")
				}
				time.Sleep(time.Millisecond)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if next != len(reqs) {
		t.Fatalf("delivered %d of %d", next, len(reqs))
	}
	if addrs, _ := src.Snapshot(); len(addrs) != 1 || addrs[0] != fast {
		t.Fatalf("membership after SIGHUP = %v", addrs)
	}
}

// TestNetRunnerStealsFromSlowNode pins the work-stealing path under real
// asymmetry: one node answers through a delaying proxy, the other at
// loopback speed. The idle fast node must repark queued batches off the
// slow one — observable through the steal counter — and the stolen work
// must change nothing about the output.
func TestNetRunnerStealsFromSlowNode(t *testing.T) {
	base := testRequests(t, 4)
	reqs := append(append([]testbed.Request{}, base...), base...) // 12 batches at Batch:1
	want, err := (&PoolRunner{Workers: 2}).Run(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}

	run := func(noSteal bool) *NetRunner {
		t.Helper()
		slow := slowProxy(t, 30*time.Millisecond)
		fast := startServeNode(t)
		nr := &NetRunner{
			Nodes:        []string{slow.Addr(), fast},
			ConnsPerNode: 1,
			Batch:        1,
			Pipeline:     4,
			StealAfter:   2 * time.Millisecond,
			NoSteal:      noSteal,
		}
		t.Cleanup(func() { nr.Close() })
		got, err := nr.Run(context.Background(), reqs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("noSteal=%v: point %d diverged from pool", noSteal, i)
			}
		}
		return nr
	}

	if nr := run(false); nr.Steals() == 0 {
		t.Fatal("idle fast node never stole from the slow node")
	}
	if nr := run(true); nr.Steals() != 0 {
		t.Fatal("NoSteal runner stole anyway")
	}
}

// TestNetRunnerStandbyUntilFirstJoin pins the empty-elastic-fleet start:
// a dispatcher opened on a membership feed with zero nodes parks in
// standby instead of failing, and completes normally once the first
// node arrives.
func TestNetRunnerStandbyUntilFirstJoin(t *testing.T) {
	reqs := testRequests(t, 4)
	want, err := (&PoolRunner{Workers: 2}).Run(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}

	node := startServeNode(t)
	path, src := nodesFile(t) // legal: an empty fleet, for now
	nr := &NetRunner{Members: src, Batch: 2}
	defer nr.Close()

	go func() {
		time.Sleep(50 * time.Millisecond)
		writeNodesFile(t, path, node)
		_ = src.Reload()
	}()

	got, err := nr.Run(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d diverged after standby start", i)
		}
	}
}

// TestNetNodeWeightPrecedence pins the capacity model: observed EWMA
// throughput outranks the handshake's advertised rate, which outranks
// the core count, which outranks the know-nothing default of 1 — and
// degenerate samples never poison the estimate.
func TestNetNodeWeightPrecedence(t *testing.T) {
	nd := &netNode{}
	if w := nd.weight(); w != 1 {
		t.Fatalf("unknown node weight = %v, want 1", w)
	}
	if _, known := nd.estimate(); known {
		t.Fatal("un-dialed node claims a known estimate")
	}
	nd.hinted(testbed.WireHello{Cores: 8})
	if w := nd.weight(); w != 8 {
		t.Fatalf("cores-only weight = %v, want 8", w)
	}
	if _, known := nd.estimate(); !known {
		t.Fatal("hinted node claims no estimate")
	}
	nd.hinted(testbed.WireHello{Cores: 8, CellsPerSec: 120.5})
	if w := nd.weight(); w != 120.5 {
		t.Fatalf("advertised-rate weight = %v, want 120.5", w)
	}
	nd.observe(100, 500*time.Millisecond) // 200 cells/s, first sample sticks
	if w := nd.weight(); w != 200 {
		t.Fatalf("first observed weight = %v, want 200", w)
	}
	nd.observe(100, time.Second) // EWMA: 0.7*200 + 0.3*100
	if w := nd.weight(); w != 170 {
		t.Fatalf("EWMA weight = %v, want 170", w)
	}
	nd.observe(0, time.Second)
	nd.observe(10, 0)
	if w := nd.weight(); w != 170 {
		t.Fatalf("degenerate samples moved the weight to %v", w)
	}
}
