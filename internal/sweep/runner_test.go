package sweep

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
	"unicode"
	"unicode/utf8"

	"repro/internal/device"
	"repro/internal/pipeline"
	"repro/internal/testbed"
)

// TestMain lets the proc backend re-execute this test binary as a
// measurement worker instead of re-running the test suite.
func TestMain(m *testing.M) {
	testbed.MaybeServeWorker()
	os.Exit(m.Run())
}

// testRequests builds a deterministic batch of seeded measurement
// requests over a small scenario grid.
func testRequests(t testing.TB, trials int) []testbed.Request {
	t.Helper()
	dev, err := device.ByName("XR1")
	if err != nil {
		t.Fatal(err)
	}
	var reqs []testbed.Request
	for _, mode := range []pipeline.InferenceMode{pipeline.ModeLocal, pipeline.ModeRemote} {
		for _, size := range []float64{300, 500, 700} {
			sc, err := pipeline.NewScenario(dev,
				pipeline.WithMode(mode), pipeline.WithFrameSize(size))
			if err != nil {
				t.Fatal(err)
			}
			req := testbed.Request{Scenario: sc, Trials: trials, NoiseRel: testbed.DefaultNoiseRel}
			seed, err := req.ContentSeed(42)
			if err != nil {
				t.Fatal(err)
			}
			req.Seed = seed
			reqs = append(reqs, req)
		}
	}
	return reqs
}

// requireSh skips tests that drive a crashing worker through /bin/sh.
func requireSh(t *testing.T) {
	t.Helper()
	if _, err := exec.LookPath("sh"); err != nil {
		t.Skip("sh not available")
	}
}

// TestPoolRunnerMatchesDirectExecution pins the pool backend against
// direct serial execution: same requests, bit-identical measurements,
// at any worker count.
func TestPoolRunnerMatchesDirectExecution(t *testing.T) {
	reqs := testRequests(t, 4)
	exec := testbed.NewExecutor(nil)
	want := make([]testbed.Measurement, len(reqs))
	for i, r := range reqs {
		m, err := exec.Do(r)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = m
	}
	for _, workers := range []int{1, 4} {
		p := &PoolRunner{Workers: workers}
		got, err := p.Run(context.Background(), reqs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: point %d diverges from direct execution", workers, i)
			}
		}
	}
}

// TestProcRunnerMatchesPool pins the tentpole invariant at the runner
// layer: subprocess workers reproduce the in-process pool bit for bit —
// the JSON wire encoding round-trips every float exactly.
func TestProcRunnerMatchesPool(t *testing.T) {
	reqs := testRequests(t, 4)
	want, err := (&PoolRunner{Workers: 2}).Run(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	pr := &ProcRunner{Procs: 2}
	defer pr.Close()
	got, err := pr.Run(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d diverges across the process boundary:\npool %+v\nproc %+v", i, want[i], got[i])
		}
	}
}

// TestProcRunnerBatchPipelineConfigs pins the tuning contract: any
// batch size, pipeline depth, and frame codec produce the same
// measurements bit for bit — the knobs change wire traffic, never
// output.
func TestProcRunnerBatchPipelineConfigs(t *testing.T) {
	reqs := testRequests(t, 2)
	want, err := (&PoolRunner{Workers: 2}).Run(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	configs := []ProcRunner{
		{Procs: 1, Batch: 1, Pipeline: 1},
		{Procs: 2, Batch: 2, Pipeline: 3},
		{Procs: 3, Batch: 64, Pipeline: 2},
		{Procs: 2, Codec: testbed.CodecJSON},
		{Procs: 2, Codec: testbed.CodecBinary, Batch: 1},
	}
	for i := range configs {
		pr := &configs[i]
		got, err := pr.Run(context.Background(), reqs)
		pr.Close()
		if err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("config %d point %d diverges from pool", i, j)
			}
		}
	}
}

// TestProcRunnerRejectsUnknownCodec pins the config validation: a codec
// this binary does not implement fails fast, before any worker spawns.
func TestProcRunnerRejectsUnknownCodec(t *testing.T) {
	pr := &ProcRunner{Procs: 1, Codec: "protobuf"}
	defer pr.Close()
	_, err := pr.Run(context.Background(), testRequests(t, 1))
	if err == nil || !strings.Contains(err.Error(), `unknown frame codec "protobuf"`) {
		t.Fatalf("unknown codec error = %v", err)
	}
}

// TestProcRunnerStreamsInOrder checks prefix-ordered delivery and pool
// reuse across calls on one persistent runner.
func TestProcRunnerStreamsInOrder(t *testing.T) {
	reqs := testRequests(t, 2)
	pr := &ProcRunner{Procs: 2}
	defer pr.Close()
	for round := 0; round < 2; round++ {
		next := 0
		err := pr.Stream(context.Background(), reqs, func(idx int, _ testbed.Measurement) error {
			if idx != next {
				return fmt.Errorf("emitted %d, want %d", idx, next)
			}
			next++
			return nil
		})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if next != len(reqs) {
			t.Fatalf("round %d: emitted %d of %d", round, next, len(reqs))
		}
	}
}

// TestProcRunnerWorkerCrash pins crash recovery: a worker that dies
// without ever completing its handshake must surface a descriptive
// error — exit status and stderr included — not hang the sweep.
func TestProcRunnerWorkerCrash(t *testing.T) {
	requireSh(t)
	reqs := testRequests(t, 2)
	pr := &ProcRunner{
		Procs:   2,
		Command: []string{"sh", "-c", "echo boom >&2; exit 9"},
	}
	defer pr.Close()

	done := make(chan error, 1)
	go func() { _, err := pr.Run(context.Background(), reqs); done <- err }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("crashed worker must fail the sweep")
		}
		msg := err.Error()
		if !strings.Contains(msg, "worker") || !strings.Contains(msg, "boom") {
			t.Fatalf("crash error not descriptive: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("sweep hung on a crashed worker")
	}
}

// TestProcRunnerBadCommand checks that an unstartable worker command
// fails fast with a descriptive error.
func TestProcRunnerBadCommand(t *testing.T) {
	pr := &ProcRunner{Procs: 1, Command: []string{"/nonexistent/xrperf-worker"}}
	defer pr.Close()
	_, err := pr.Run(context.Background(), testRequests(t, 1))
	if err == nil || !strings.Contains(err.Error(), "start worker") {
		t.Fatalf("bad command error = %v", err)
	}
}

// TestProcRunnerCancelMidShard pins mid-shard cancelation: canceling the
// context while workers are deep inside a long measurement must kill the
// in-flight round trips and return promptly with context.Canceled — the
// subprocess pipe must not hold the sweep hostage.
func TestProcRunnerCancelMidShard(t *testing.T) {
	reqs := testRequests(t, 20_000_000) // several seconds of trials per shard
	pr := &ProcRunner{Procs: 2}
	defer pr.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { _, err := pr.Run(ctx, reqs); done <- err }()
	time.Sleep(200 * time.Millisecond)
	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Fatalf("cancelation took %v", elapsed)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("sweep hung after mid-shard cancelation")
	}
}

// TestProcRunnerRecoversAfterRequestError checks that a request-level
// failure (reported by a healthy worker) surfaces with its message and
// that the same runner keeps working afterwards — the suspect worker is
// replaced, not the pool poisoned.
func TestProcRunnerRecoversAfterRequestError(t *testing.T) {
	good := testRequests(t, 2)
	bad := make([]testbed.Request, len(good))
	copy(bad, good)
	bad[1].Trials = 0 // worker rejects: "trial count 0"
	pr := &ProcRunner{Procs: 2}
	defer pr.Close()

	if _, err := pr.Run(context.Background(), bad); err == nil || !strings.Contains(err.Error(), "trial count") {
		t.Fatalf("bad request error = %v", err)
	}
	if _, err := pr.Run(context.Background(), good); err != nil {
		t.Fatalf("runner did not recover: %v", err)
	}
}

// TestProcRunnerRejectsUnserializable checks the wire-safety gate:
// scenarios carrying process-local path-loss models cannot cross the
// worker boundary and must be rejected up front.
func TestProcRunnerRejectsUnserializable(t *testing.T) {
	reqs := testRequests(t, 2)
	reqs[1].Scenario.EdgeLink.Loss = pathLossStub{}
	pr := &ProcRunner{Procs: 1}
	defer pr.Close()
	_, err := pr.Run(context.Background(), reqs)
	if !errors.Is(err, testbed.ErrRequest) || !strings.Contains(err.Error(), "point 1") {
		t.Fatalf("unserializable request error = %v", err)
	}
}

type pathLossStub struct{}

func (pathLossStub) ThroughputFactor(float64) float64 { return 1 }

// TestCachedRunnerMemoizes pins the cache contract: identical cells are
// measured once per runner lifetime, results are bit-identical to the
// uncached backend, and in-batch duplicates resolve to one measurement.
func TestCachedRunnerMemoizes(t *testing.T) {
	reqs := testRequests(t, 3)
	dup := append(append([]testbed.Request{}, reqs...), reqs[0], reqs[2])

	want, err := (&PoolRunner{}).Run(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}

	c := NewCachedRunner(&PoolRunner{})
	got, err := c.Run(context.Background(), dup)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		if got[i] != want[i] {
			t.Fatalf("cached point %d diverges from uncached backend", i)
		}
	}
	if got[len(reqs)] != want[0] || got[len(reqs)+1] != want[2] {
		t.Fatal("in-batch duplicates diverge from their originals")
	}
	st := c.Stats()
	if st.Misses != int64(len(reqs)) || st.Hits != 2 {
		t.Fatalf("after first batch: %+v, want %d misses / 2 hits", st, len(reqs))
	}

	// A full re-run is served entirely from the cache.
	again, err := c.Run(context.Background(), dup)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if again[i] != got[i] {
			t.Fatalf("cache replay diverges at %d", i)
		}
	}
	st = c.Stats()
	if st.Misses != int64(len(reqs)) || st.Hits != 2+int64(len(dup)) {
		t.Fatalf("after replay: %+v", st)
	}
}

// TestCachedRunnerPassesThroughUnfingerprintable checks that scenarios
// carrying process-local path-loss models — whose behaviour their JSON
// encoding cannot capture — execute uncached instead of colliding on a
// lossy cache key: two behaviourally different models on the same cell
// must keep their own measurements.
func TestCachedRunnerPassesThroughUnfingerprintable(t *testing.T) {
	reqs := testRequests(t, 3)[3:5] // two remote cells
	withLoss := func(f float64) []testbed.Request {
		out := make([]testbed.Request, len(reqs))
		for i, r := range reqs {
			sc := *r.Scenario
			sc.EdgeLink.Loss = scaledLoss{f}
			r.Scenario = &sc
			out[i] = r
		}
		return out
	}
	c := NewCachedRunner(&PoolRunner{})
	strong, err := c.Run(context.Background(), withLoss(0.5))
	if err != nil {
		t.Fatal(err)
	}
	weak, err := c.Run(context.Background(), withLoss(0.9))
	if err != nil {
		t.Fatal(err)
	}
	for i := range strong {
		if strong[i] == weak[i] {
			t.Fatalf("point %d: distinct path-loss models returned one cached measurement", i)
		}
	}
	if st := c.Stats(); st.Hits != 0 || st.Entries != 0 {
		t.Fatalf("unfingerprintable requests leaked into the cache: %+v", st)
	}
}

type scaledLoss struct{ f float64 }

func (l scaledLoss) ThroughputFactor(float64) float64 { return l.f }

// TestCachedRunnerConcurrentSingleflight checks that identical cells
// requested by concurrent batches (the RunAll shape: many experiments
// sharing grid cells) are measured exactly once.
func TestCachedRunnerConcurrentSingleflight(t *testing.T) {
	reqs := testRequests(t, 3)
	c := NewCachedRunner(&PoolRunner{})
	const callers = 8
	results := make([][]testbed.Measurement, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ms, err := c.Run(context.Background(), reqs)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = ms
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		for j := range reqs {
			if results[i][j] != results[0][j] {
				t.Fatalf("caller %d point %d diverges", i, j)
			}
		}
	}
	st := c.Stats()
	if st.Misses != int64(len(reqs)) {
		t.Fatalf("measured %d cells across %d concurrent callers, want %d", st.Misses, callers, len(reqs))
	}
	if st.Hits != int64((callers-1)*len(reqs)) {
		t.Fatalf("hits = %d, want %d", st.Hits, (callers-1)*len(reqs))
	}
}

// flakyFirstRunner hangs its first Stream call until that call's context
// is canceled (simulating an owner whose batch dies mid-measurement) and
// delegates every later call to a real pool.
type flakyFirstRunner struct {
	inner PoolRunner
	calls atomic.Int64
}

func (f *flakyFirstRunner) Stream(ctx context.Context, reqs []testbed.Request, emit func(int, testbed.Measurement) error) error {
	if f.calls.Add(1) == 1 {
		<-ctx.Done()
		return ctx.Err()
	}
	return f.inner.Stream(ctx, reqs, emit)
}

func (f *flakyFirstRunner) Run(ctx context.Context, reqs []testbed.Request) ([]testbed.Measurement, error) {
	return collectStream(ctx, len(reqs), func(ctx context.Context, emit func(int, testbed.Measurement) error) error {
		return f.Stream(ctx, reqs, emit)
	})
}

// TestCachedRunnerWaiterSurvivesForeignCancel pins the singleflight
// cancelation semantics: a caller waiting on another caller's in-flight
// measurement must not inherit that caller's cancelation — when the
// owner dies canceled, a live waiter re-dispatches the cell and
// succeeds.
func TestCachedRunnerWaiterSurvivesForeignCancel(t *testing.T) {
	reqs := testRequests(t, 2)[:1]
	want, err := (&PoolRunner{}).Run(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}

	fr := &flakyFirstRunner{}
	c := NewCachedRunner(fr)
	ctxA, cancelA := context.WithCancel(context.Background())
	aDone := make(chan error, 1)
	go func() {
		_, err := c.Run(ctxA, reqs)
		aDone <- err
	}()
	for fr.calls.Load() == 0 { // A owns the entry once its backend is called
		time.Sleep(time.Millisecond)
	}
	type bResult struct {
		ms  []testbed.Measurement
		err error
	}
	bDone := make(chan bResult, 1)
	go func() {
		ms, err := c.Run(context.Background(), reqs)
		bDone <- bResult{ms, err}
	}()
	time.Sleep(50 * time.Millisecond) // let B classify as a waiter on A's entry
	cancelA()

	if err := <-aDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("owner err = %v, want context.Canceled", err)
	}
	b := <-bDone
	if b.err != nil {
		t.Fatalf("live waiter inherited the owner's cancelation: %v", b.err)
	}
	if b.ms[0] != want[0] {
		t.Fatal("retried measurement diverges from the uncached backend")
	}
}

// errFirstRunner fails its first Stream call with a transient backend
// error after being observed (simulating e.g. a crashed worker) and
// delegates every later call to a real pool.
type errFirstRunner struct {
	inner    PoolRunner
	calls    atomic.Int64
	observed chan struct{} // closed by the test once a waiter is attached
}

func (f *errFirstRunner) Stream(ctx context.Context, reqs []testbed.Request, emit func(int, testbed.Measurement) error) error {
	if f.calls.Add(1) == 1 {
		<-f.observed
		return fmt.Errorf("backend worker crashed (transient)")
	}
	return f.inner.Stream(ctx, reqs, emit)
}

func (f *errFirstRunner) Run(ctx context.Context, reqs []testbed.Request) ([]testbed.Measurement, error) {
	return collectStream(ctx, len(reqs), func(ctx context.Context, emit func(int, testbed.Measurement) error) error {
		return f.Stream(ctx, reqs, emit)
	})
}

// TestCachedRunnerWaiterRetriesTransientFailure pins the waiter retry
// symmetry: a non-owning waiter that observes the owner's entry fail
// with a transient (non-Canceled) backend error must re-enter the cache
// and retry — the entry is already evicted — instead of returning the
// owner's stale error.
func TestCachedRunnerWaiterRetriesTransientFailure(t *testing.T) {
	reqs := testRequests(t, 2)[:1]
	want, err := (&PoolRunner{}).Run(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}

	fr := &errFirstRunner{observed: make(chan struct{})}
	c := NewCachedRunner(fr)
	aDone := make(chan error, 1)
	go func() {
		_, err := c.Run(context.Background(), reqs)
		aDone <- err
	}()
	for fr.calls.Load() == 0 { // A owns the entry once its backend is called
		time.Sleep(time.Millisecond)
	}
	type bResult struct {
		ms  []testbed.Measurement
		err error
	}
	bDone := make(chan bResult, 1)
	go func() {
		ms, err := c.Run(context.Background(), reqs)
		bDone <- bResult{ms, err}
	}()
	time.Sleep(50 * time.Millisecond) // let B classify as a waiter on A's entry
	close(fr.observed)                // now A's backend fails

	if err := <-aDone; err == nil || !strings.Contains(err.Error(), "crashed") {
		t.Fatalf("owner err = %v, want the transient backend error", err)
	}
	b := <-bDone
	if b.err != nil {
		t.Fatalf("waiter returned the owner's stale error instead of retrying: %v", b.err)
	}
	if b.ms[0] != want[0] {
		t.Fatal("retried measurement diverges from the uncached backend")
	}
}

// TestCachedRunnerStatsConsistentMidRun pins the Stats snapshot
// invariants while runs are in flight: completed entries never exceed
// the cells accounted as measured or disk-loaded, and counters never
// go backwards. Run under -race this also proves Stats is safe against
// concurrent classification.
func TestCachedRunnerStatsConsistentMidRun(t *testing.T) {
	reqs := testRequests(t, 2)
	c := NewCachedRunner(&PoolRunner{})
	stop := make(chan struct{})
	statsDone := make(chan struct{})
	go func() {
		defer close(statsDone)
		var prev CacheStats
		for {
			st := c.Stats()
			if int64(st.Entries) > st.Misses+st.DiskHits {
				t.Errorf("snapshot reports %d completed entries for %d dispatched+loaded cells: %+v",
					st.Entries, st.Misses+st.DiskHits, st)
				return
			}
			if st.Hits < prev.Hits || st.Misses < prev.Misses || st.DiskHits < prev.DiskHits {
				t.Errorf("counters went backwards: %+v then %+v", prev, st)
				return
			}
			prev = st
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				if _, err := c.Run(context.Background(), reqs); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-statsDone

	st := c.Stats()
	if st.Entries != len(reqs) {
		t.Fatalf("final Entries = %d, want %d completed cells", st.Entries, len(reqs))
	}
	if st.Misses != int64(len(reqs)) {
		t.Fatalf("final Misses = %d, want %d", st.Misses, len(reqs))
	}
}

// TestCachedRunnerStatsExcludesInFlight pins the Entries definition: a
// cell whose measurement is still in flight is not a memoized entry.
func TestCachedRunnerStatsExcludesInFlight(t *testing.T) {
	reqs := testRequests(t, 2)[:1]
	fr := &errFirstRunner{observed: make(chan struct{})}
	c := NewCachedRunner(fr)
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = c.Run(context.Background(), reqs)
	}()
	for fr.calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	if st := c.Stats(); st.Entries != 0 || st.Misses != 1 {
		t.Fatalf("in-flight cell counted as memoized: %+v", st)
	}
	close(fr.observed)
	<-done
}

// TestCachedRunnerCapsWaiterFanout pins the fan-out bound: a large
// batch must not spawn one waiter goroutine per request.
func TestCachedRunnerCapsWaiterFanout(t *testing.T) {
	const n = 2000
	base := testRequests(t, 2)[:1]
	reqs := make([]testbed.Request, n)
	for i := range reqs {
		reqs[i] = base[0]
		reqs[i].Seed = int64(i) // distinct cells, same fingerprint
	}
	release := make(chan struct{})
	br := &blockingRunner{release: release}
	c := NewCachedRunner(br)

	before := runtime.NumGoroutine()
	done := make(chan error, 1)
	go func() {
		_, err := c.Run(context.Background(), reqs)
		done <- err
	}()
	for br.started.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond) // let the waiter pool spin up fully
	during := runtime.NumGoroutine()
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Engine bookkeeping adds a handful of goroutines on top of the
	// waiter cap; far below one per request either way.
	if limit := maxWaiters(n) + 64; during-before > limit {
		t.Fatalf("batch of %d spawned %d goroutines, want ≤ %d", n, during-before, limit)
	}
}

// blockingRunner parks every Stream call until released, then emits
// zero measurements in order.
type blockingRunner struct {
	release chan struct{}
	started atomic.Int64
}

func (b *blockingRunner) Stream(ctx context.Context, reqs []testbed.Request, emit func(int, testbed.Measurement) error) error {
	b.started.Add(1)
	select {
	case <-b.release:
	case <-ctx.Done():
		return ctx.Err()
	}
	for j := range reqs {
		if err := emit(j, testbed.Measurement{}); err != nil {
			return err
		}
	}
	return nil
}

func (b *blockingRunner) Run(ctx context.Context, reqs []testbed.Request) ([]testbed.Measurement, error) {
	return collectStream(ctx, len(reqs), func(ctx context.Context, emit func(int, testbed.Measurement) error) error {
		return b.Stream(ctx, reqs, emit)
	})
}

// TestTailWriterSanitizesSuffix pins the stderr-tail hygiene rules: the
// byte-limit truncation may split a multi-byte rune and subprocess
// stderr may carry control bytes, but the rendered suffix must be valid
// printable single-line UTF-8.
func TestTailWriterSanitizesSuffix(t *testing.T) {
	tw := &tailWriter{limit: 33}
	// 'é' is 2 bytes: dropping an odd byte count from "x" + é… leaves a
	// tail that starts mid-rune after truncation.
	if _, err := tw.Write([]byte("x" + strings.Repeat("é", 30))); err != nil {
		t.Fatal(err)
	}
	if _, err := tw.Write([]byte("\x00\x01 panic:\nboom\twide \x7f end")); err != nil {
		t.Fatal(err)
	}
	s := tw.suffix()
	if !utf8.ValidString(s) {
		t.Fatalf("suffix is not valid UTF-8: %q", s)
	}
	for _, r := range s {
		if !unicode.IsPrint(r) {
			t.Fatalf("suffix contains non-printable %q: %q", r, s)
		}
	}
	if strings.Contains(s, "\n") || strings.Contains(s, "�") {
		t.Fatalf("suffix not a clean single line: %q", s)
	}
	if !strings.Contains(s, "panic:") || !strings.Contains(s, "boom") {
		t.Fatalf("suffix lost real content: %q", s)
	}
	if empty := (&tailWriter{limit: 8}); empty.suffix() != "" {
		t.Fatal("empty tail must render as empty suffix")
	}
	// A tail of pure garbage sanitizes to nothing, not to "; stderr: ".
	junk := &tailWriter{limit: 8}
	if _, err := junk.Write([]byte{0x00, 0xff, 0xfe, 0x01}); err != nil {
		t.Fatal(err)
	}
	if s := junk.suffix(); s != "" {
		t.Fatalf("garbage-only tail rendered %q", s)
	}
}

// TestCachedRunnerEvictsFailures checks that a failed measurement is not
// memoized: the cell retries on the next call instead of replaying the
// error forever.
func TestCachedRunnerEvictsFailures(t *testing.T) {
	reqs := testRequests(t, 2)
	reqs[1].Trials = 0 // fails at the bench
	c := NewCachedRunner(&PoolRunner{})
	if _, err := c.Run(context.Background(), reqs); err == nil {
		t.Fatal("bad request must fail")
	}
	before := c.Stats()
	if _, err := c.Run(context.Background(), reqs); err == nil {
		t.Fatal("bad request must fail again (not a cached success)")
	}
	after := c.Stats()
	if after.Misses <= before.Misses {
		t.Fatalf("failed cell was not retried: %+v → %+v", before, after)
	}
	if after.Entries > 1 {
		t.Fatalf("failed cell left %d entries memoized", after.Entries)
	}
}
