package sweep

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/testbed"
)

// CacheStats reports the memoizing cache's counters.
type CacheStats struct {
	// Hits counts requests served without a new backend measurement —
	// from a completed entry, by waiting on an identical in-flight
	// measurement, or as an in-batch duplicate.
	Hits int64
	// Misses counts measurements actually dispatched to the backend.
	Misses int64
	// Entries counts distinct cells currently memoized.
	Entries int
}

// cacheEntry is one memoized (or in-flight) cell. done closes exactly
// once, after m/err are final.
type cacheEntry struct {
	once sync.Once
	done chan struct{}
	m    testbed.Measurement
	err  error
}

func newCacheEntry() *cacheEntry { return &cacheEntry{done: make(chan struct{})} }

func (e *cacheEntry) complete(m testbed.Measurement) {
	e.once.Do(func() {
		e.m = m
		close(e.done)
	})
}

// CachedRunner memoizes measurements across calls by content key —
// (Request.Fingerprint, Seed) — on top of any backend. Because a seeded
// request is a pure function of exactly that key, serving a repeat from
// the cache is indistinguishable from re-measuring it: the cache changes
// how much work runs, never a byte of output. Identical cells requested
// concurrently (e.g. the same grid cell in two experiments running in
// parallel) are measured once: the first request owns the measurement
// and the rest wait on it. Requests that cannot be fingerprinted pass
// through uncached.
//
// Entries live for the runner's lifetime — one evaluation run — which is
// bounded by the experiment grids. A measurement that fails is evicted
// so a later call can retry it.
type CachedRunner struct {
	backend Runner

	mu      sync.Mutex
	entries map[string]*cacheEntry

	hits   atomic.Int64
	misses atomic.Int64
}

// NewCachedRunner wraps backend with the memoizing measurement cache.
func NewCachedRunner(backend Runner) *CachedRunner {
	return &CachedRunner{backend: backend, entries: make(map[string]*cacheEntry)}
}

// Backend returns the wrapped runner.
func (c *CachedRunner) Backend() Runner { return c.backend }

// Stats returns the current counters.
func (c *CachedRunner) Stats() CacheStats {
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load(), Entries: n}
}

// Run implements Runner.
func (c *CachedRunner) Run(ctx context.Context, reqs []testbed.Request) ([]testbed.Measurement, error) {
	return collectStream(ctx, len(reqs), func(ctx context.Context, emit func(int, testbed.Measurement) error) error {
		return c.Stream(ctx, reqs, emit)
	})
}

// Stream implements Runner: cache misses are dispatched to the backend
// as one sub-batch (preserving its parallelism and error semantics)
// while hits and in-flight waits resolve concurrently; emission order
// and bytes are identical to an uncached run.
func (c *CachedRunner) Stream(ctx context.Context, reqs []testbed.Request, emit func(idx int, m testbed.Measurement) error) error {
	n := len(reqs)
	if n == 0 {
		return ctx.Err()
	}
	entries, keys, ownedIdx, ownedReqs := c.classify(reqs)

	cctx, cancel := context.WithCancel(ctx)
	bgDone := make(chan struct{})
	if len(ownedIdx) == 0 {
		close(bgDone)
	} else {
		go func() {
			defer close(bgDone)
			err := c.backend.Stream(cctx, ownedReqs, func(j int, m testbed.Measurement) error {
				entries[ownedIdx[j]].complete(m)
				return nil
			})
			if err != nil {
				// Any owned entry the backend never delivered fails with
				// the batch error and is evicted so future calls retry;
				// entries that already completed keep their result.
				for _, i := range ownedIdx {
					c.fail(keys[i], entries[i], err)
				}
			}
		}()
	}
	defer func() {
		cancel()
		<-bgDone // owned entries are final before waiters can observe a torn state
	}()

	// One waiter per request gives the generic engine its usual ordered
	// merge and lowest-index error selection over cached, in-flight, and
	// owned cells alike.
	return Stream(ctx, n, Options{Workers: n},
		func(fctx context.Context, sh Shard) (testbed.Measurement, error) {
			e := entries[sh.Index]
			select {
			case <-e.done:
				if e.err != nil && errors.Is(e.err, context.Canceled) && fctx.Err() == nil {
					// The measurement's owner was canceled but this
					// caller was not: the entry is already evicted, so
					// re-enter the cache and measure the cell ourselves
					// (racing retriers single-flight on a fresh entry).
					// Owned cells cannot take this path — their backend
					// runs under this call's context, so their
					// cancelation implies fctx is canceled too.
					ms, err := c.Run(fctx, reqs[sh.Index:sh.Index+1])
					if err != nil {
						return testbed.Measurement{}, err
					}
					return ms[0], nil
				}
				return e.m, e.err
			case <-fctx.Done():
				return testbed.Measurement{}, fctx.Err()
			}
		}, emit)
}

// classify resolves each request to a cache entry under one lock pass:
// completed or in-flight entries count as hits; the first occurrence of
// a new key becomes an owned measurement (miss); later in-batch
// duplicates share the owner's entry. Unfingerprintable requests get a
// private uncached entry.
func (c *CachedRunner) classify(reqs []testbed.Request) (entries []*cacheEntry, keys []string, ownedIdx []int, ownedReqs []testbed.Request) {
	entries = make([]*cacheEntry, len(reqs))
	keys = make([]string, len(reqs))
	ownerOf := make(map[string]int)
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, r := range reqs {
		fp, err := r.Fingerprint()
		if err != nil {
			entries[i] = newCacheEntry()
			ownedIdx = append(ownedIdx, i)
			ownedReqs = append(ownedReqs, r)
			c.misses.Add(1)
			continue
		}
		key := fp + "\x00" + strconv.FormatInt(r.Seed, 10)
		keys[i] = key
		if e, ok := c.entries[key]; ok {
			entries[i] = e
			c.hits.Add(1)
			continue
		}
		if j, ok := ownerOf[key]; ok {
			entries[i] = entries[j]
			c.hits.Add(1)
			continue
		}
		e := newCacheEntry()
		entries[i] = e
		c.entries[key] = e
		ownerOf[key] = i
		ownedIdx = append(ownedIdx, i)
		ownedReqs = append(ownedReqs, r)
		c.misses.Add(1)
	}
	return entries, keys, ownedIdx, ownedReqs
}

// fail finalizes an entry with err if it has no result yet, evicting it
// from the cache so the cell can be retried by a later call.
func (c *CachedRunner) fail(key string, e *cacheEntry, err error) {
	failed := false
	e.once.Do(func() {
		e.err = err
		close(e.done)
		failed = true
	})
	if failed && key != "" {
		c.mu.Lock()
		if c.entries[key] == e {
			delete(c.entries, key)
		}
		c.mu.Unlock()
	}
}
