package sweep

import (
	"context"
	"runtime"
	"strconv"
	"sync"

	"repro/internal/testbed"
)

// CacheStats reports the memoizing cache's counters. Snapshots are
// consistent: every counter is read under the one lock that guards the
// entry map, so Hits+Misses+DiskHits always equals the number of
// classified requests at some single instant, even mid-run.
type CacheStats struct {
	// Hits counts requests served without a new backend measurement —
	// from a completed entry, by waiting on an identical in-flight
	// measurement, or as an in-batch duplicate.
	Hits int64
	// Misses counts measurements actually dispatched to the backend.
	Misses int64
	// DiskHits counts cells loaded from the persistent store instead of
	// being measured; each cell is counted once, when it is loaded.
	DiskHits int64
	// Entries counts distinct cells memoized with a completed
	// measurement; cells still in flight are not counted.
	Entries int
}

// cacheEntry is one memoized (or in-flight) cell. done closes exactly
// once, after m/err are final.
type cacheEntry struct {
	once sync.Once
	done chan struct{}
	m    testbed.Measurement
	err  error
}

func newCacheEntry() *cacheEntry { return &cacheEntry{done: make(chan struct{})} }

func (e *cacheEntry) complete(m testbed.Measurement) {
	e.once.Do(func() {
		e.m = m
		close(e.done)
	})
}

// completed reports whether the entry holds a final successful
// measurement.
func (e *cacheEntry) completed() bool {
	select {
	case <-e.done:
		return e.err == nil
	default:
		return false
	}
}

// CachedRunner memoizes measurements across calls by content key —
// (Request.Fingerprint, Seed) — on top of any backend. Because a seeded
// request is a pure function of exactly that key, serving a repeat from
// the cache is indistinguishable from re-measuring it: the cache changes
// how much work runs, never a byte of output. Identical cells requested
// concurrently (e.g. the same grid cell in two experiments running in
// parallel) are measured once: the first request owns the measurement
// and the rest wait on it. Requests that cannot be fingerprinted pass
// through uncached.
//
// In-memory entries live for the runner's lifetime — one evaluation
// run — which is bounded by the experiment grids. A measurement that
// fails is evicted so a later call can retry it. With a DiskCache
// attached (WithDiskCache), entries additionally persist across runner
// lifetimes and processes: a cell found on disk is served without any
// backend dispatch, and every cell the backend measures is written back.
type CachedRunner struct {
	backend Runner
	disk    *DiskCache

	mu       sync.Mutex
	entries  map[string]*cacheEntry
	hits     int64
	misses   int64
	diskHits int64
}

// CacheOption configures a CachedRunner.
type CacheOption func(*CachedRunner)

// WithDiskCache attaches a persistent store: cells found on disk are
// served without a backend dispatch, and measured cells are written
// back. A nil store leaves the runner memory-only.
func WithDiskCache(d *DiskCache) CacheOption {
	return func(c *CachedRunner) { c.disk = d }
}

// NewCachedRunner wraps backend with the memoizing measurement cache.
func NewCachedRunner(backend Runner, opts ...CacheOption) *CachedRunner {
	c := &CachedRunner{backend: backend, entries: make(map[string]*cacheEntry)}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Backend returns the wrapped runner.
func (c *CachedRunner) Backend() Runner { return c.backend }

// Disk returns the attached persistent store, or nil.
func (c *CachedRunner) Disk() *DiskCache { return c.disk }

// Stats returns a consistent snapshot of the counters.
func (c *CachedRunner) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, e := range c.entries {
		if e.completed() {
			n++
		}
	}
	return CacheStats{Hits: c.hits, Misses: c.misses, DiskHits: c.diskHits, Entries: n}
}

// Run implements Runner.
func (c *CachedRunner) Run(ctx context.Context, reqs []testbed.Request) ([]testbed.Measurement, error) {
	return collectStream(ctx, len(reqs), func(ctx context.Context, emit func(int, testbed.Measurement) error) error {
		return c.Stream(ctx, reqs, emit)
	})
}

// maxWaiters bounds the per-request waiter fan-out of one Stream call.
// Waiters spend their lives blocked on an entry channel, so the pool
// need not scale with the batch: enough slots to keep the emit prefix
// moving suffices, and a large sweep no longer spawns one goroutine per
// request.
func maxWaiters(n int) int {
	if max := 8 * runtime.GOMAXPROCS(0); n > max {
		return max
	}
	return n
}

// Stream implements Runner: cache misses are dispatched to the backend
// as one sub-batch (preserving its parallelism and error semantics)
// while hits and in-flight waits resolve concurrently; emission order
// and bytes are identical to an uncached run.
func (c *CachedRunner) Stream(ctx context.Context, reqs []testbed.Request, emit func(idx int, m testbed.Measurement) error) error {
	n := len(reqs)
	if n == 0 {
		return ctx.Err()
	}
	entries, keys, fps, owned, ownedIdx, ownedReqs := c.classify(reqs)

	cctx, cancel := context.WithCancel(ctx)
	bgDone := make(chan struct{})
	var writes *diskWriter
	if len(ownedIdx) == 0 {
		close(bgDone)
	} else {
		// Write-backs run on their own goroutine so persisting one cell
		// never stalls the backend's ordered delivery of the next; the
		// channel holds every possible write, so sends cannot block.
		writes = newDiskWriter(c.disk, len(ownedIdx))
		go func() {
			defer close(bgDone)
			err := c.backend.Stream(cctx, ownedReqs, func(j int, m testbed.Measurement) error {
				i := ownedIdx[j]
				entries[i].complete(m)
				writes.enqueue(fps[i], reqs[i].Seed, m)
				return nil
			})
			writes.finish()
			if err != nil {
				// Any owned entry the backend never delivered fails with
				// the batch error and is evicted so future calls retry;
				// entries that already completed keep their result.
				for _, i := range ownedIdx {
					c.fail(keys[i], entries[i], err)
				}
			}
		}()
	}
	defer func() {
		cancel()
		<-bgDone      // owned entries are final before waiters can observe a torn state
		writes.wait() // persisted before return, so a follow-up process runs warm
	}()

	// One waiter per request (capped — waiters only block on entry
	// channels) gives the generic engine its usual ordered merge and
	// lowest-index error selection over cached, in-flight, and owned
	// cells alike.
	return Stream(ctx, n, Options{Workers: maxWaiters(n)},
		func(fctx context.Context, sh Shard) (testbed.Measurement, error) {
			e := entries[sh.Index]
			select {
			case <-e.done:
				if e.err != nil && !owned[sh.Index] && fctx.Err() == nil {
					// Another caller's measurement failed — canceled or a
					// transient backend error — but this caller is live.
					// fail already evicted the entry, so re-enter the
					// cache and measure the cell ourselves (racing
					// retriers single-flight on a fresh entry). Owned
					// cells — and their in-batch duplicates — never
					// retry: their backend ran under this call's context,
					// so their error is this call's own. For a cell that
					// fails persistently this costs at most one dispatch
					// per live caller — each retry either owns the fresh
					// entry (and returns its own error, no further retry)
					// or waits on another live caller's attempt — which
					// is no worse than running the same callers uncached,
					// and the recursion is bounded by the caller count.
					ms, err := c.Run(fctx, reqs[sh.Index:sh.Index+1])
					if err != nil {
						return testbed.Measurement{}, err
					}
					return ms[0], nil
				}
				return e.m, e.err
			case <-fctx.Done():
				return testbed.Measurement{}, fctx.Err()
			}
		}, emit)
}

// diskWrite is one pending write-back.
type diskWrite struct {
	fp   string
	seed int64
	m    testbed.Measurement
}

// diskWriter persists completed cells off the measurement path: cells
// are enqueued as they complete and written by one goroutine, which the
// owning Stream call drains before returning so a follow-up process
// finds them. Every write is best-effort — a failed persist only costs
// a future re-measurement. A nil writer (no disk, nothing owned) is a
// no-op.
type diskWriter struct {
	ch   chan diskWrite
	done chan struct{}
}

func newDiskWriter(d *DiskCache, capacity int) *diskWriter {
	if d == nil {
		return nil
	}
	w := &diskWriter{ch: make(chan diskWrite, capacity), done: make(chan struct{})}
	go func() {
		defer close(w.done)
		for wr := range w.ch {
			_ = d.Put(wr.fp, wr.seed, wr.m)
		}
	}()
	return w
}

func (w *diskWriter) enqueue(fp string, seed int64, m testbed.Measurement) {
	if w == nil || fp == "" {
		return
	}
	w.ch <- diskWrite{fp, seed, m} // buffered for every owned cell: never blocks
}

func (w *diskWriter) finish() {
	if w != nil {
		close(w.ch)
	}
}

func (w *diskWriter) wait() {
	if w != nil {
		<-w.done
	}
}

// classify resolves each request to a cache entry in one lock pass plus
// lock-free disk lookups: completed or in-flight entries count as hits;
// the first occurrence of a new key registers an in-flight entry and —
// if a persistent store is attached — checks disk outside the lock,
// loading a found cell as a completed entry (disk hit) or becoming an
// owned measurement (miss) otherwise; later in-batch duplicates share
// the owner's entry (and its ownership, so they never retry their own
// call's failure). Unfingerprintable requests get a private uncached
// entry. Registering before reading keeps concurrent callers
// single-flighted on the in-flight entry instead of re-reading the
// store, and keeps classification of other batches from serializing
// behind file I/O.
func (c *CachedRunner) classify(reqs []testbed.Request) (entries []*cacheEntry, keys, fps []string, owned []bool, ownedIdx []int, ownedReqs []testbed.Request) {
	n := len(reqs)
	entries = make([]*cacheEntry, n)
	keys = make([]string, n)
	fps = make([]string, n)
	owned = make([]bool, n)
	ownerOf := make(map[string]int)
	var pending []int // fresh keys whose disk lookup is still outstanding

	c.mu.Lock()
	for i, r := range reqs {
		fp, err := r.Fingerprint()
		if err != nil {
			entries[i] = newCacheEntry()
			owned[i] = true
			ownedIdx = append(ownedIdx, i)
			ownedReqs = append(ownedReqs, r)
			c.misses++
			continue
		}
		key := fp + "\x00" + strconv.FormatInt(r.Seed, 10)
		keys[i] = key
		if persistable(r) {
			// fps marks the cells the persistent store may serve and
			// receive; an empty entry keeps the cell memory-only.
			fps[i] = fp
		}
		if e, ok := c.entries[key]; ok {
			entries[i] = e
			c.hits++
			continue
		}
		if j, ok := ownerOf[key]; ok {
			entries[i] = entries[j]
			owned[i] = owned[j]
			c.hits++
			continue
		}
		e := newCacheEntry()
		entries[i] = e
		c.entries[key] = e
		ownerOf[key] = i
		owned[i] = true
		if c.disk == nil || fps[i] == "" {
			ownedIdx = append(ownedIdx, i)
			ownedReqs = append(ownedReqs, r)
			c.misses++
		} else {
			pending = append(pending, i)
		}
	}
	c.mu.Unlock()

	for _, i := range pending {
		m, ok := c.disk.Get(fps[i], reqs[i].Seed)
		c.mu.Lock()
		if ok {
			c.diskHits++
		} else {
			c.misses++
		}
		c.mu.Unlock()
		if ok {
			// Counted before completing, so a Stats snapshot never sees
			// more completed entries than accounted cells.
			entries[i].complete(m)
			owned[i] = false
			continue
		}
		ownedIdx = append(ownedIdx, i)
		ownedReqs = append(ownedReqs, reqs[i])
	}
	return entries, keys, fps, owned, ownedIdx, ownedReqs
}

// persistable reports whether a request's result may live in the
// persistent store. Only measurements qualify: their semantics are
// stamped and golden-tested via testbed.PhysicsVersion, so a stale
// cache directory invalidates when the physics changes. Analyze
// results depend on the analytical-model code instead, which carries no
// such version — persisting them would replay an older binary's model
// numbers — and they are cheap, noise-free evaluations, so each process
// recomputes them (still memoized in memory for the runner's lifetime).
func persistable(r testbed.Request) bool {
	return r.Op == "" || r.Op == testbed.OpMeasure
}

// fail finalizes an entry with err if it has no result yet, evicting it
// from the cache so the cell can be retried by a later call.
func (c *CachedRunner) fail(key string, e *cacheEntry, err error) {
	failed := false
	e.once.Do(func() {
		e.err = err
		close(e.done)
		failed = true
	})
	if failed && key != "" {
		c.mu.Lock()
		if c.entries[key] == e {
			delete(c.entries, key)
		}
		c.mu.Unlock()
	}
}
