package sweep

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunZeroSizeGrid(t *testing.T) {
	out, err := Run(context.Background(), 0, Options{},
		func(context.Context, Shard) (int, error) {
			t.Fatal("fn must not run on an empty grid")
			return 0, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("results = %d, want 0", len(out))
	}
}

func TestRunNegativeGrid(t *testing.T) {
	_, err := Run(context.Background(), -1, Options{},
		func(context.Context, Shard) (int, error) { return 0, nil })
	if !errors.Is(err, ErrBadGrid) {
		t.Fatalf("err = %v, want ErrBadGrid", err)
	}
}

// TestRunOrdersResults checks ordered collection despite out-of-order
// completion: early indices sleep so later ones finish first.
func TestRunOrdersResults(t *testing.T) {
	const n = 32
	out, err := Run(context.Background(), n, Options{Workers: 8},
		func(_ context.Context, sh Shard) (int, error) {
			if sh.Index < 8 {
				time.Sleep(3 * time.Millisecond)
			}
			return sh.Index * sh.Index, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n {
		t.Fatalf("results = %d, want %d", len(out), n)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// TestRunDeterministicAcrossWorkerCounts checks the engine's core
// contract: shard seeds depend only on (base seed, index), so any worker
// count produces identical results.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	const n = 40
	run := func(workers int) []int64 {
		t.Helper()
		out, err := Run(context.Background(), n, Options{Workers: workers, BaseSeed: 7},
			func(_ context.Context, sh Shard) (int64, error) { return sh.Seed, nil })
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(1)
	for _, workers := range []int{2, 4, 16, 0} {
		got := run(workers)
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: seed[%d] = %d, serial = %d",
					workers, i, got[i], serial[i])
			}
		}
	}
}

func TestShardSeedsDiffer(t *testing.T) {
	seen := map[int64]int{}
	for i := 0; i < 1000; i++ {
		s := ShardSeed(42, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision: indices %d and %d", prev, i)
		}
		seen[s] = i
	}
	if ShardSeed(1, 0) == ShardSeed(2, 0) {
		t.Fatal("base seed must change shard seeds")
	}
}

func TestRunSingleWorker(t *testing.T) {
	var active, maxActive int32
	out, err := Run(context.Background(), 20, Options{Workers: 1},
		func(_ context.Context, sh Shard) (int, error) {
			cur := atomic.AddInt32(&active, 1)
			defer atomic.AddInt32(&active, -1)
			for {
				prev := atomic.LoadInt32(&maxActive)
				if cur <= prev || atomic.CompareAndSwapInt32(&maxActive, prev, cur) {
					break
				}
			}
			return sh.Index, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 20 {
		t.Fatalf("results = %d", len(out))
	}
	if got := atomic.LoadInt32(&maxActive); got != 1 {
		t.Fatalf("max concurrent points = %d, want 1", got)
	}
}

// TestRunErrorStopsEarly checks error propagation: a failing point must
// surface its error and cancel the remaining grid.
func TestRunErrorStopsEarly(t *testing.T) {
	boom := errors.New("boom")
	var ran int32
	const n = 10000
	_, err := Run(context.Background(), n, Options{Workers: 4},
		func(_ context.Context, sh Shard) (int, error) {
			atomic.AddInt32(&ran, 1)
			if sh.Index == 5 {
				return 0, boom
			}
			return sh.Index, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if got := atomic.LoadInt32(&ran); got >= n {
		t.Fatalf("engine ran all %d points despite an early error", got)
	}
}

// TestRunLowestIndexErrorWins checks that simultaneous failures surface
// the earliest grid point's error.
func TestRunLowestIndexErrorWins(t *testing.T) {
	var gate sync.WaitGroup
	gate.Add(4)
	_, err := Run(context.Background(), 4, Options{Workers: 4},
		func(_ context.Context, sh Shard) (int, error) {
			gate.Done()
			gate.Wait() // all four points fail together
			return 0, fmt.Errorf("point-%d failed", sh.Index)
		})
	if err == nil {
		t.Fatal("want error")
	}
	want := "sweep: point 0: point-0 failed"
	if err.Error() != want {
		t.Fatalf("err = %q, want %q", err, want)
	}
}

// TestRunMidSweepCancelation checks that canceling the caller context
// aborts the sweep and surfaces context.Canceled.
func TestRunMidSweepCancelation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int32
	const n = 100000
	_, err := Run(ctx, n, Options{Workers: 2},
		func(ctx context.Context, sh Shard) (int, error) {
			if atomic.AddInt32(&ran, 1) == 10 {
				cancel()
			}
			return sh.Index, nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := atomic.LoadInt32(&ran); got >= n {
		t.Fatal("cancelation did not stop the sweep early")
	}
}

func TestRunPreCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, 8, Options{},
		func(_ context.Context, sh Shard) (int, error) { return sh.Index, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestStreamEmitsPrefixesInOrder checks the streaming contract: emit is
// called in strict index order with each contiguous completed prefix.
func TestStreamEmitsPrefixesInOrder(t *testing.T) {
	const n = 64
	var got []int
	err := Stream(context.Background(), n, Options{Workers: 8},
		func(_ context.Context, sh Shard) (int, error) {
			if sh.Index%7 == 0 {
				time.Sleep(time.Millisecond)
			}
			return sh.Index, nil
		},
		func(idx int, v int) error {
			if idx != v {
				t.Errorf("emit idx %d carries value %d", idx, v)
			}
			got = append(got, idx)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("emitted %d, want %d", len(got), n)
	}
	for i, idx := range got {
		if idx != i {
			t.Fatalf("emit order broken at %d: got index %d", i, idx)
		}
	}
}

func TestStreamEmitErrorCancels(t *testing.T) {
	halt := errors.New("halt")
	var emitted int
	err := Stream(context.Background(), 1000, Options{Workers: 4},
		func(_ context.Context, sh Shard) (int, error) { return sh.Index, nil },
		func(idx int, _ int) error {
			emitted++
			if idx == 3 {
				return halt
			}
			return nil
		})
	if !errors.Is(err, halt) {
		t.Fatalf("err = %v, want halt", err)
	}
	if emitted != 4 {
		t.Fatalf("emitted %d points, want 4", emitted)
	}
}
