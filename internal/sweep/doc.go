// Package sweep is the parallel scenario-sweep execution engine. The
// paper's evaluation (Section VII, Fig. 4a–e) is a grid of independent
// scenario points — device × CNN × inference mode × resolution × clock —
// and every point is a pure function of its configuration plus a
// deterministic noise seed. The engine fans such grids out across a
// worker pool with context cancelation, per-shard deterministic seeding,
// early error propagation, and streaming aggregation that delivers
// results in grid order despite out-of-order completion.
//
// Three layers build on the core Run/Stream primitives:
//
//   - Grid/Spec enumerate cartesian scenario grids in a canonical
//     row-major order, so point indices — and therefore shard seeds —
//     are stable for a given grid shape.
//   - Task/RunTasks/StreamTasks group heterogeneous named units of work
//     (e.g. the full set of paper experiments) under one pool with the
//     same ordered-streaming guarantees; TaskSeed gives each unit an
//     independent deterministic seed stream derived from its name.
//   - Runner abstracts the execution backend for serializable work units
//     (testbed.Request): PoolRunner fans out across an in-process pool,
//     ProcRunner shards across worker subprocesses speaking a
//     length-delimited JSON protocol over pipes, NetRunner dispatches the
//     same protocol over TCP to a fleet of serve nodes (handshake-
//     verified, crash-re-dispatched, quarantined with backoff), and
//     CachedRunner memoizes results by content key over any of them —
//     optionally persisting them through a DiskCache so warm runs across
//     processes (or a fleet sharing one cache directory) re-measure
//     nothing — all with identical ordering, error, and byte-for-byte
//     determinism guarantees.
//
// Determinism contract: a point's seed depends only on (base seed, point
// index) — or, for task groups, (base seed, task name); measurement
// requests carry content-addressed seeds of their own — never on worker
// identity, completion order, or which backend ran the point, so a
// sweep's output is byte-identical whether it runs on one worker, on
// GOMAXPROCS workers, across subprocesses, or across machines.
package sweep
