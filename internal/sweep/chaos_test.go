package sweep

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/testbed"
)

// chaosFleet builds a two-node fleet where the first node sits behind a
// fault-injecting proxy, plus the pool-backend baseline the fleet's
// output must reproduce bit for bit. Batch is pinned to 1 so the
// proxy's frame-count crash points land where the per-request tests
// expect them; the batch-granular kill points get their own tests
// below.
func chaosFleet(t *testing.T, cfg ChaosConfig, trials int) (*ChaosProxy, *NetRunner, []testbed.Request, []testbed.Measurement) {
	t.Helper()
	reqs := testRequests(t, trials)
	want, err := (&PoolRunner{Workers: 2}).Run(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := NewChaosProxy(startServeNode(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })
	nr := &NetRunner{Nodes: []string{proxy.Addr(), startServeNode(t)}, ConnsPerNode: 1, Batch: 1}
	t.Cleanup(func() { nr.Close() })
	return proxy, nr, reqs, want
}

// TestChaosNodeDeathByteIdentical pins the headline chaos invariant: a
// node whose every connection dies answering (the proxy relays the
// handshake, then swallows the first response frame and drops the
// socket) must not change a single output byte — its batches
// re-dispatch to the healthy node.
func TestChaosNodeDeathByteIdentical(t *testing.T) {
	proxy, nr, reqs, want := chaosFleet(t, ChaosConfig{
		CrashAfterFrames: 2, // hello through, die on the first response
		MaxCrashes:       -1,
	}, 3)
	got, err := nr.Run(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d diverges under injected node death:\npool %+v\nnet  %+v", i, want[i], got[i])
		}
	}
	if proxy.Crashes() == 0 {
		t.Fatal("proxy injected no crashes; the test exercised nothing")
	}
}

// TestChaosMidFrameDisconnectByteIdentical pins the nastier variant: the
// connection dies halfway through a response frame (valid header, half
// the payload), so the dispatcher sees a truncated frame rather than a
// clean close. The shard must re-dispatch and the output stay
// byte-identical.
func TestChaosMidFrameDisconnectByteIdentical(t *testing.T) {
	proxy, nr, reqs, want := chaosFleet(t, ChaosConfig{
		CrashAfterFrames: 2, // hello, then die inside the first response
		CrashMidFrame:    true,
		MaxCrashes:       1,
	}, 3)
	next := 0
	err := nr.Stream(context.Background(), reqs, func(idx int, m testbed.Measurement) error {
		if idx != next {
			t.Fatalf("emitted %d, want %d: order broke under mid-frame disconnect", idx, next)
		}
		if m != want[idx] {
			t.Fatalf("point %d diverges under mid-frame disconnect", idx)
		}
		next++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if next != len(reqs) {
		t.Fatalf("emitted %d of %d", next, len(reqs))
	}
	if proxy.Crashes() != 1 {
		t.Fatalf("proxy crashed %d times, want exactly 1", proxy.Crashes())
	}
}

// TestChaosSlowNodeQuarantine pins routing-around: a node that never
// completes a handshake (the proxy kills every connection before
// relaying the hello) is quarantined after its failure budget, so the
// fleet stops dialing it instead of paying a failed attempt per shard.
// Output stays byte-identical throughout.
func TestChaosSlowNodeQuarantine(t *testing.T) {
	proxy, nr, reqs, want := chaosFleet(t, ChaosConfig{
		CrashAfterFrames: 1, // swallow the hello itself
		MaxCrashes:       -1,
	}, 3)
	got, err := nr.Run(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d diverges with a quarantined node in the fleet:\npool %+v\nnet  %+v", i, want[i], got[i])
		}
	}
	// quarantineAfter consecutive failures bench the node; after that the
	// round-robin skips it, so connection attempts stay near the budget
	// rather than one per shard.
	if c := proxy.Conns(); c > quarantineAfter+2 {
		t.Fatalf("proxy saw %d connections; quarantine should have capped dialing near %d", c, quarantineAfter)
	}
}

// chaosSingleNode builds a single-node fleet entirely behind the proxy
// with multi-request batches, so every crash point lands relative to
// batch frames and every retry must come back through the proxy.
func chaosSingleNode(t *testing.T, cfg ChaosConfig) (*ChaosProxy, *NetRunner, []testbed.Request, []testbed.Measurement) {
	t.Helper()
	reqs := testRequests(t, 3)
	want, err := (&PoolRunner{Workers: 2}).Run(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := NewChaosProxy(startServeNode(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })
	nr := &NetRunner{Nodes: []string{proxy.Addr()}, ConnsPerNode: 1, Batch: 3}
	t.Cleanup(func() { nr.Close() })
	return proxy, nr, reqs, want
}

// TestChaosBatchBoundaryKill pins node death at a batch boundary: the
// connection delivers one complete multi-request batch result, then
// dies before the next. The delivered batch's results stand, the
// orphaned batch re-dispatches on a fresh connection, and the output
// stays byte-identical.
func TestChaosBatchBoundaryKill(t *testing.T) {
	proxy, nr, reqs, want := chaosSingleNode(t, ChaosConfig{
		CrashAfterFrames: 3, // hello + one full batch result, then death
		MaxCrashes:       1,
	})
	got, err := nr.Run(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d diverges under a batch-boundary kill", i)
		}
	}
	if proxy.Crashes() != 1 {
		t.Fatalf("proxy crashed %d times, want exactly 1", proxy.Crashes())
	}
}

// TestChaosMidBatchCut pins the nastier batch variant: the connection
// dies halfway through a multi-request batch-result frame, so the
// dispatcher sees a truncated frame with several requests' results
// inside it. The whole batch re-dispatches — partial frames deliver
// nothing — and the output stays byte-identical.
func TestChaosMidBatchCut(t *testing.T) {
	proxy, nr, reqs, want := chaosSingleNode(t, ChaosConfig{
		CrashAfterFrames: 2, // hello, then die inside the first batch result
		CrashMidFrame:    true,
		MaxCrashes:       1,
	})
	next := 0
	err := nr.Stream(context.Background(), reqs, func(idx int, m testbed.Measurement) error {
		if idx != next {
			t.Fatalf("emitted %d, want %d: order broke under a mid-batch cut", idx, next)
		}
		if m != want[idx] {
			t.Fatalf("point %d diverges under a mid-batch cut", idx)
		}
		next++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if next != len(reqs) {
		t.Fatalf("emitted %d of %d", next, len(reqs))
	}
	if proxy.Crashes() != 1 {
		t.Fatalf("proxy crashed %d times, want exactly 1", proxy.Crashes())
	}
}

// TestChaosProxyPassthrough pins the harness itself: with no faults
// configured the proxy is invisible — a single-node fleet behind it
// matches the pool bit for bit.
func TestChaosProxyPassthrough(t *testing.T) {
	reqs := testRequests(t, 3)
	want, err := (&PoolRunner{Workers: 2}).Run(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := NewChaosProxy(startServeNode(t), ChaosConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	nr := &NetRunner{Nodes: []string{proxy.Addr()}, ConnsPerNode: 2}
	defer nr.Close()
	got, err := nr.Run(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d diverges through the passthrough proxy", i)
		}
	}
	if proxy.Crashes() != 0 {
		t.Fatalf("passthrough proxy crashed %d connections", proxy.Crashes())
	}
}

// TestChaosRunnerMatchesBackend pins the Runner-level injector: with no
// faults it reproduces its backend exactly, with an injected per-shard
// failure it surfaces that error (lowest index wins), and its delays are
// context-aware so cancelation aborts promptly.
func TestChaosRunnerMatchesBackend(t *testing.T) {
	reqs := testRequests(t, 3)
	want, err := (&PoolRunner{Workers: 2}).Run(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}

	cr := &ChaosRunner{Backend: &PoolRunner{Workers: 2}, Workers: 2}
	got, err := cr.Run(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d diverges through the fault-free chaos runner", i)
		}
	}

	boom := errors.New("injected shard failure")
	cr = &ChaosRunner{Backend: &PoolRunner{Workers: 2}, FailIdx: map[int]error{2: boom}, Workers: 2}
	if _, err := cr.Run(context.Background(), reqs); !errors.Is(err, boom) {
		t.Fatalf("injected failure did not surface: %v", err)
	}

	cr = &ChaosRunner{Backend: &PoolRunner{Workers: 2}, Delay: time.Minute, Workers: 2}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := cr.Run(ctx, reqs)
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled chaos run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled chaos run did not return promptly")
	}
}
