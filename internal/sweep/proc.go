package sweep

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/testbed"
)

// ErrRunnerClosed indicates use of a dispatching backend after Close.
var ErrRunnerClosed = errors.New("sweep: runner closed")

// procShardAttempts bounds how many workers one batch may consume: a
// crashed worker's unanswered batches are re-dispatched once to a fresh
// subprocess — riding out a one-off death (OOM kill, operator mistake) —
// while a command that crashes on every batch still fails the sweep with
// the second worker's descriptive error instead of spawning forever.
const procShardAttempts = 2

// ProcRunner executes requests across worker subprocesses speaking the
// batched frame protocol of internal/testbed over stdin/stdout. Workers
// start lazily on first use — handshaking versions and negotiating the
// frame codec at spawn — and persist across Run/Stream calls (Close
// reaps them); requests ride in multi-request WireBatch frames with up
// to Pipeline batches outstanding per worker, so a worker never idles
// between frames. A worker that crashes or is killed mid-batch is
// replaced and its unanswered batches re-dispatched to a fresh worker
// (procShardAttempts), surfacing a descriptive error carrying the exit
// status and stderr tail — never a hang — when the retry fails too.
// Repeated consecutive failures quarantine the spawn source with backoff
// (sourceHealth), so a persistently crashing worker command cannot
// hot-loop respawns across calls.
//
// Requests must be wire-safe (Request.WireSafe); measurements depend only
// on request content and the deterministic hidden physics, so a proc
// sweep reproduces an in-process pool sweep bit for bit — both the JSON
// and binary codecs carry float64 values losslessly across the boundary.
type ProcRunner struct {
	// Procs is the number of worker subprocesses; 0 or negative means
	// GOMAXPROCS.
	Procs int
	// Command is the worker argv; empty defaults to the current
	// executable with a "worker" argument (`xrperf worker`). Binaries
	// other than xrperf must either implement a worker mode themselves
	// or call testbed.MaybeServeWorker early in main/TestMain.
	Command []string
	// Env appends to the inherited environment of each worker.
	Env []string
	// Batch caps requests per frame; 0 means DefaultBatch. Small grids
	// use smaller batches automatically to keep every worker busy.
	Batch int
	// Pipeline is the window of outstanding batches per worker; 0 means
	// DefaultPipeline.
	Pipeline int
	// Codec forces the frame codec ("json" or "binary"); empty
	// negotiates the densest codec the worker advertises.
	Codec string

	mu       sync.Mutex
	started  bool
	startErr error
	closed   bool
	argv     []string
	procs    int
	pool     chan *workerProc
	lifeCtx  context.Context
	stop     context.CancelFunc
	nextID   atomic.Int64
	health   sourceHealth
}

// init resolves the configuration and creates the (lazily filled) worker
// pool once.
func (p *ProcRunner) init() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrRunnerClosed
	}
	if p.started {
		return p.startErr
	}
	p.started = true
	if p.Codec != "" && !testbed.KnownCodec(p.Codec) {
		p.startErr = fmt.Errorf("sweep: unknown frame codec %q", p.Codec)
		return p.startErr
	}
	p.argv = p.Command
	if len(p.argv) == 0 {
		exe, err := os.Executable()
		if err != nil {
			p.startErr = fmt.Errorf("sweep: resolve worker executable: %w", err)
			return p.startErr
		}
		p.argv = []string{exe, "worker"}
	}
	p.procs = p.Procs
	if p.procs <= 0 {
		p.procs = runtime.GOMAXPROCS(0)
	}
	p.lifeCtx, p.stop = context.WithCancel(context.Background())
	p.pool = make(chan *workerProc, p.procs)
	for i := 0; i < p.procs; i++ {
		//xrlint:allow lockhygiene -- filling a freshly made buffered channel to its exact capacity; cannot block
		p.pool <- nil // nil slot: a worker is spawned at checkout
	}
	return nil
}

// Run implements Runner.
func (p *ProcRunner) Run(ctx context.Context, reqs []testbed.Request) ([]testbed.Measurement, error) {
	return collectStream(ctx, len(reqs), func(ctx context.Context, emit func(int, testbed.Measurement) error) error {
		return p.Stream(ctx, reqs, emit)
	})
}

// Stream implements Runner: batches the requests across the subprocess
// pool with the same ordered-merge and lowest-index error semantics as
// the in-process engine (runBatches mirrors it exactly).
func (p *ProcRunner) Stream(ctx context.Context, reqs []testbed.Request, emit func(idx int, m testbed.Measurement) error) error {
	n := len(reqs)
	if n == 0 {
		return ctx.Err()
	}
	for i, r := range reqs {
		if err := r.WireSafe(); err != nil {
			return fmt.Errorf("sweep: point %d: %w", i, err)
		}
	}
	if err := p.init(); err != nil {
		return err
	}
	cfg := batchConfig{
		sessions: p.procs,
		batch:    p.Batch,
		depth:    p.Pipeline,
		budget:   procShardAttempts,
		source:   procSource{p},
		givingUp: func(j *batchJob) error {
			return fmt.Errorf("sweep: shard %d: giving up after %d workers failed: %w",
				j.off, procShardAttempts, j.lastErr)
		},
	}
	return runBatches(ctx, reqs, cfg, emit)
}

// procSource checks worker subprocesses out of the pool for the batch
// dispatcher.
type procSource struct{ p *ProcRunner }

// acquire takes a pool slot, spawning and handshaking a worker if the
// slot is empty. A quarantined spawn source, a spawn failure, and a
// version or codec mismatch fail the sweep outright (terminalError) — a
// command that cannot produce a compatible worker will not produce one
// on retry either — while a handshake that dies mid-read (the worker
// crashed at startup) consumes a retry attempt like any other crash.
func (s procSource) acquire(cctx context.Context) (batchTransport, error) {
	p := s.p
	select {
	case w := <-p.pool:
		if w != nil {
			return &procTransport{p: p, w: w}, nil
		}
		//xrlint:allow determinism -- quarantine-release comparison clock, never measurement data
		if wait := p.health.quarantinedFor(time.Now()); wait > 0 {
			p.pool <- nil
			// Carry the failure that caused the quarantine: with the
			// engine's lowest-index error selection, this message can be
			// the only one the user sees.
			err := fmt.Errorf("sweep: worker spawns quarantined for %s after repeated failures",
				wait.Round(time.Millisecond))
			if last := p.health.lastFailure(); last != nil {
				err = fmt.Errorf("%w; last: %w", err, last)
			}
			return nil, &terminalError{err: err}
		}
		nw, err := p.startWorker()
		if err != nil {
			p.pool <- nil
			//xrlint:allow determinism -- quarantine backoff clock for spawn health, never measurement data
			p.health.failure(time.Now(), err)
			return nil, &terminalError{err: err}
		}
		if err := p.handshake(cctx, nw); err != nil {
			nw.destroy()
			p.pool <- nil
			if cctx.Err() != nil {
				return nil, &terminalError{err: cctx.Err()}
			}
			//xrlint:allow determinism -- quarantine backoff clock for handshake health, never measurement data
			p.health.failure(time.Now(), err)
			if errors.Is(err, testbed.ErrVersionMismatch) {
				return nil, &terminalError{err: err}
			}
			return nil, err
		}
		return &procTransport{p: p, w: nw}, nil
	case <-cctx.Done():
		return nil, &terminalError{err: cctx.Err()}
	}
}

// Close reaps every idle worker and marks the runner unusable. Call it
// after all Run/Stream calls have returned.
func (p *ProcRunner) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	if !p.started || p.startErr != nil {
		return nil
	}
	for i := 0; i < p.procs; i++ {
		select {
		case w := <-p.pool:
			if w != nil {
				w.destroy()
			}
		default:
		}
	}
	p.stop() // kills any worker that escaped the drain
	return nil
}

// workerProc is one live worker subprocess, post-handshake.
type workerProc struct {
	id       int64
	codec    string
	cmd      *exec.Cmd
	stdin    io.WriteCloser
	bw       *bufio.Writer
	stdout   *bufio.Reader
	stderr   *tailWriter
	waitErr  error
	waitDone chan struct{}
	killOnce sync.Once
}

// startWorker spawns one worker subprocess with the protocol marker set.
func (p *ProcRunner) startWorker() (*workerProc, error) {
	w := &workerProc{
		id:       p.nextID.Add(1) - 1,
		stderr:   &tailWriter{limit: 4096},
		waitDone: make(chan struct{}),
	}
	cmd := exec.CommandContext(p.lifeCtx, p.argv[0], p.argv[1:]...)
	cmd.Env = append(append(os.Environ(), testbed.WorkerEnv+"=1"), p.Env...)
	cmd.Stderr = w.stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, fmt.Errorf("sweep: worker %d stdin: %w", w.id, err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("sweep: worker %d stdout: %w", w.id, err)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("sweep: start worker %d (%s): %w", w.id, strings.Join(p.argv, " "), err)
	}
	w.cmd, w.stdin, w.stdout = cmd, stdin, bufio.NewReader(stdout)
	w.bw = bufio.NewWriter(stdin)
	go func() {
		w.waitErr = cmd.Wait()
		close(w.waitDone)
	}()
	return w, nil
}

// handshake reads the fresh worker's hello, verifies the protocol and
// physics versions, picks the frame codec, and sends the start frame.
// It runs under the sweep context so cancelation kills the worker
// instead of wedging on a dead pipe.
func (p *ProcRunner) handshake(cctx context.Context, w *workerProc) error {
	type hs struct {
		h   testbed.WireHello
		err error
	}
	done := make(chan hs, 1)
	go func() {
		h, err := testbed.ReadHello(w.stdout)
		done <- hs{h, err}
	}()
	var h testbed.WireHello
	select {
	case r := <-done:
		if r.err != nil {
			if errors.Is(r.err, testbed.ErrVersionMismatch) {
				return fmt.Errorf("sweep: worker %d rejected: %w", w.id, r.err)
			}
			return w.ioErr("handshake", r.err)
		}
		h = r.h
	case <-cctx.Done():
		w.kill()
		return cctx.Err()
	}
	codec := p.Codec
	if codec == "" {
		codec = h.PickCodec()
	} else if !h.Supports(codec) {
		return fmt.Errorf("sweep: worker %d does not speak codec %q: %w",
			w.id, codec, testbed.ErrVersionMismatch)
	}
	if err := testbed.WriteFrame(w.bw, testbed.WireStart{Codec: codec}); err != nil {
		return w.ioErr("start", err)
	}
	if err := w.bw.Flush(); err != nil {
		return w.ioErr("start", err)
	}
	w.codec = codec
	return nil
}

// procTransport adapts one worker subprocess to the batch dispatcher.
type procTransport struct {
	p *ProcRunner
	w *workerProc
}

func (t *procTransport) send(b testbed.WireBatch) error {
	if err := testbed.WriteFrameCodec(t.w.bw, t.w.codec, b); err != nil {
		return t.w.ioErr("write", err)
	}
	if err := t.w.bw.Flush(); err != nil {
		return t.w.ioErr("write", err)
	}
	return nil
}

func (t *procTransport) recv() (testbed.WireBatchResult, error) {
	var res testbed.WireBatchResult
	if err := testbed.ReadFrameCodec(t.w.stdout, t.w.codec, &res); err != nil {
		return res, t.w.ioErr("read", err)
	}
	return res, nil
}

func (t *procTransport) success() { t.p.health.success() }

func (t *procTransport) reject(msg string) error {
	// Request-level rejection from a healthy worker: deterministic,
	// never retried.
	return fmt.Errorf("worker %d: %s", t.w.id, sanitizeLine(msg))
}

func (t *procTransport) corrupt(format string, args ...any) error {
	// Protocol corruption: the worker is broken, not the request.
	return &workerFailure{fmt.Errorf("worker %d %s", t.w.id, fmt.Sprintf(format, args...))}
}

func (t *procTransport) park() { t.p.pool <- t.w }

func (t *procTransport) fail(cause error) {
	//xrlint:allow determinism -- quarantine backoff clock for worker health, never measurement data
	t.p.health.failure(time.Now(), cause)
	t.w.destroy()
	t.p.pool <- nil
}

func (t *procTransport) abort() {
	t.w.destroy()
	t.p.pool <- nil
}

func (t *procTransport) destroy() { t.w.kill() }

// ioErr builds the descriptive error for a broken worker pipe: if the
// process has (or promptly) exited, report its status and stderr tail;
// otherwise report the raw protocol error. Either way the worker is
// broken, so the error is a retryable workerFailure.
func (w *workerProc) ioErr(op string, err error) error {
	select {
	case <-w.waitDone:
		status := "exited cleanly mid-protocol"
		if w.waitErr != nil {
			status = w.waitErr.Error()
		}
		return &workerFailure{fmt.Errorf("worker %d died mid-shard (%s failed; %s)%s", w.id, op, status, w.stderr.suffix())}
	case <-time.After(500 * time.Millisecond):
		return &workerFailure{fmt.Errorf("worker %d protocol %s error: %w%s", w.id, op, err, w.stderr.suffix())}
	}
}

// kill terminates the worker process and closes its stdin, unblocking
// any in-flight protocol read.
func (w *workerProc) kill() {
	w.killOnce.Do(func() {
		if w.cmd.Process != nil {
			_ = w.cmd.Process.Kill()
		}
		_ = w.stdin.Close()
	})
}

// destroy kills the worker and reaps it (bounded wait).
func (w *workerProc) destroy() {
	w.kill()
	select {
	case <-w.waitDone:
	case <-time.After(2 * time.Second):
	}
}
