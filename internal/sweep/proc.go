package sweep

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/testbed"
)

// ErrRunnerClosed indicates use of a dispatching backend after Close.
var ErrRunnerClosed = errors.New("sweep: runner closed")

// procShardAttempts bounds how many workers one shard may consume: a
// crashed worker's shard is re-dispatched once to a fresh subprocess —
// riding out a one-off death (OOM kill, operator mistake) — while a
// command that crashes on every request still fails the sweep with the
// second worker's descriptive error instead of spawning forever.
const procShardAttempts = 2

// ProcRunner executes requests across worker subprocesses speaking the
// length-delimited JSON protocol of internal/testbed over stdin/stdout.
// Workers start lazily on first use and persist across Run/Stream calls
// (Close reaps them); a worker that crashes or is killed mid-shard is
// replaced and its shard re-dispatched to a fresh worker
// (procShardAttempts), surfacing a descriptive error carrying the exit
// status and stderr tail — never a hang — when the retry fails too.
// Repeated consecutive failures quarantine the spawn source with backoff
// (sourceHealth), so a persistently crashing worker command cannot
// hot-loop respawns across calls.
//
// Requests must be wire-safe (Request.WireSafe); measurements depend only
// on request content and the deterministic hidden physics, so a proc
// sweep reproduces an in-process pool sweep bit for bit — JSON encodes
// float64 values with shortest-round-trip precision, losing nothing
// across the boundary.
type ProcRunner struct {
	// Procs is the number of worker subprocesses; 0 or negative means
	// GOMAXPROCS.
	Procs int
	// Command is the worker argv; empty defaults to the current
	// executable with a "worker" argument (`xrperf worker`). Binaries
	// other than xrperf must either implement a worker mode themselves
	// or call testbed.MaybeServeWorker early in main/TestMain.
	Command []string
	// Env appends to the inherited environment of each worker.
	Env []string

	mu       sync.Mutex
	started  bool
	startErr error
	closed   bool
	argv     []string
	procs    int
	pool     chan *workerProc
	lifeCtx  context.Context
	stop     context.CancelFunc
	nextID   atomic.Int64
	health   sourceHealth
}

// init resolves the configuration and creates the (lazily filled) worker
// pool once.
func (p *ProcRunner) init() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrRunnerClosed
	}
	if p.started {
		return p.startErr
	}
	p.started = true
	p.argv = p.Command
	if len(p.argv) == 0 {
		exe, err := os.Executable()
		if err != nil {
			p.startErr = fmt.Errorf("sweep: resolve worker executable: %w", err)
			return p.startErr
		}
		p.argv = []string{exe, "worker"}
	}
	p.procs = p.Procs
	if p.procs <= 0 {
		p.procs = runtime.GOMAXPROCS(0)
	}
	p.lifeCtx, p.stop = context.WithCancel(context.Background())
	p.pool = make(chan *workerProc, p.procs)
	for i := 0; i < p.procs; i++ {
		p.pool <- nil // nil slot: a worker is spawned at checkout
	}
	return nil
}

// Run implements Runner.
func (p *ProcRunner) Run(ctx context.Context, reqs []testbed.Request) ([]testbed.Measurement, error) {
	return collectStream(ctx, len(reqs), func(ctx context.Context, emit func(int, testbed.Measurement) error) error {
		return p.Stream(ctx, reqs, emit)
	})
}

// Stream implements Runner: shards the batch across the subprocess pool
// with the same ordered-merge and lowest-index error semantics as the
// in-process engine (which it delegates aggregation to).
func (p *ProcRunner) Stream(ctx context.Context, reqs []testbed.Request, emit func(idx int, m testbed.Measurement) error) error {
	n := len(reqs)
	if n == 0 {
		return ctx.Err()
	}
	for i, r := range reqs {
		if err := r.WireSafe(); err != nil {
			return fmt.Errorf("sweep: point %d: %w", i, err)
		}
	}
	if err := p.init(); err != nil {
		return err
	}
	workers := p.procs
	if workers > n {
		workers = n
	}
	return Stream(ctx, n, Options{Workers: workers},
		func(fctx context.Context, sh Shard) (testbed.Measurement, error) {
			return p.dispatch(fctx, sh.Index, reqs[sh.Index])
		}, emit)
}

// dispatch round-trips one request through the subprocess pool. A
// healthy round trip returns the worker to the pool; a worker failure
// (crash, kill, protocol corruption) destroys the worker, frees its slot
// so the next checkout spawns a replacement, and re-dispatches the shard
// to a fresh worker up to procShardAttempts. Request-level errors — the
// worker correctly rejecting the request — are deterministic and surface
// immediately (the worker is still replaced: its protocol state is
// certain, its process state is not worth trusting).
func (p *ProcRunner) dispatch(ctx context.Context, idx int, req testbed.Request) (testbed.Measurement, error) {
	var lastErr error
	for attempt := 0; attempt < procShardAttempts; attempt++ {
		w, err := p.checkout(ctx)
		if err != nil {
			return testbed.Measurement{}, err
		}
		m, err := w.roundTrip(ctx, idx, req)
		if err == nil {
			p.health.success()
			p.pool <- w
			return m, nil
		}
		w.destroy()
		p.pool <- nil
		if ctx.Err() != nil {
			return testbed.Measurement{}, ctx.Err()
		}
		if !retryable(err) {
			return testbed.Measurement{}, err
		}
		p.health.failure(time.Now(), err)
		lastErr = err
	}
	return testbed.Measurement{}, fmt.Errorf("sweep: shard %d: giving up after %d workers failed: %w",
		idx, procShardAttempts, lastErr)
}

// checkout acquires a pool slot, spawning a worker if the slot is empty.
// A quarantined spawn source fails fast instead of hot-looping respawns
// of a command that keeps dying.
func (p *ProcRunner) checkout(ctx context.Context) (*workerProc, error) {
	select {
	case w := <-p.pool:
		if w != nil {
			return w, nil
		}
		if wait := p.health.quarantinedFor(time.Now()); wait > 0 {
			p.pool <- nil
			// Carry the failure that caused the quarantine: with the
			// engine's lowest-index error selection, this message can be
			// the only one the user sees.
			err := fmt.Errorf("sweep: worker spawns quarantined for %s after repeated failures",
				wait.Round(time.Millisecond))
			if last := p.health.lastFailure(); last != nil {
				err = fmt.Errorf("%w; last: %w", err, last)
			}
			return nil, err
		}
		nw, err := p.startWorker()
		if err != nil {
			p.pool <- nil
			p.health.failure(time.Now(), err)
			return nil, err
		}
		return nw, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Close reaps every idle worker and marks the runner unusable. Call it
// after all Run/Stream calls have returned.
func (p *ProcRunner) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	if !p.started || p.startErr != nil {
		return nil
	}
	for i := 0; i < p.procs; i++ {
		select {
		case w := <-p.pool:
			if w != nil {
				w.destroy()
			}
		default:
		}
	}
	p.stop() // kills any worker that escaped the drain
	return nil
}

// workerProc is one live worker subprocess.
type workerProc struct {
	id       int64
	cmd      *exec.Cmd
	stdin    io.WriteCloser
	stdout   *bufio.Reader
	stderr   *tailWriter
	waitErr  error
	waitDone chan struct{}
	killOnce sync.Once
}

// startWorker spawns one worker subprocess with the protocol marker set.
func (p *ProcRunner) startWorker() (*workerProc, error) {
	w := &workerProc{
		id:       p.nextID.Add(1) - 1,
		stderr:   &tailWriter{limit: 4096},
		waitDone: make(chan struct{}),
	}
	cmd := exec.CommandContext(p.lifeCtx, p.argv[0], p.argv[1:]...)
	cmd.Env = append(append(os.Environ(), testbed.WorkerEnv+"=1"), p.Env...)
	cmd.Stderr = w.stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, fmt.Errorf("sweep: worker %d stdin: %w", w.id, err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("sweep: worker %d stdout: %w", w.id, err)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("sweep: start worker %d (%s): %w", w.id, strings.Join(p.argv, " "), err)
	}
	w.cmd, w.stdin, w.stdout = cmd, stdin, bufio.NewReader(stdout)
	go func() {
		w.waitErr = cmd.Wait()
		close(w.waitDone)
	}()
	return w, nil
}

// roundTrip sends one request and awaits its response. Cancelation kills
// the worker to unblock the in-flight read, so a canceled shard returns
// promptly instead of hanging on a pipe.
func (w *workerProc) roundTrip(ctx context.Context, idx int, req testbed.Request) (testbed.Measurement, error) {
	type rt struct {
		m   testbed.Measurement
		err error
	}
	done := make(chan rt, 1)
	go func() {
		if err := testbed.WriteFrame(w.stdin, testbed.WireRequest{ID: idx, Req: req}); err != nil {
			done <- rt{err: w.ioErr("write", err)}
			return
		}
		var resp testbed.WireResponse
		if err := testbed.ReadFrame(w.stdout, &resp); err != nil {
			done <- rt{err: w.ioErr("read", err)}
			return
		}
		switch {
		case resp.ID != idx:
			// Protocol corruption: the worker is broken, not the request.
			done <- rt{err: &workerFailure{fmt.Errorf("worker %d answered id %d to request %d", w.id, resp.ID, idx)}}
		case resp.Err != "":
			// Request-level rejection from a healthy worker: deterministic,
			// never retried.
			done <- rt{err: fmt.Errorf("worker %d: %s", w.id, sanitizeLine(resp.Err))}
		default:
			done <- rt{m: resp.M}
		}
	}()
	select {
	case r := <-done:
		return r.m, r.err
	case <-ctx.Done():
		w.kill()
		return testbed.Measurement{}, ctx.Err()
	}
}

// ioErr builds the descriptive error for a broken worker pipe: if the
// process has (or promptly) exited, report its status and stderr tail;
// otherwise report the raw protocol error. Either way the worker is
// broken, so the error is a retryable workerFailure.
func (w *workerProc) ioErr(op string, err error) error {
	select {
	case <-w.waitDone:
		status := "exited cleanly mid-protocol"
		if w.waitErr != nil {
			status = w.waitErr.Error()
		}
		return &workerFailure{fmt.Errorf("worker %d died mid-shard (%s failed; %s)%s", w.id, op, status, w.stderr.suffix())}
	case <-time.After(500 * time.Millisecond):
		return &workerFailure{fmt.Errorf("worker %d protocol %s error: %w%s", w.id, op, err, w.stderr.suffix())}
	}
}

// kill terminates the worker process and closes its stdin, unblocking
// any in-flight protocol read.
func (w *workerProc) kill() {
	w.killOnce.Do(func() {
		if w.cmd.Process != nil {
			_ = w.cmd.Process.Kill()
		}
		_ = w.stdin.Close()
	})
}

// destroy kills the worker and reaps it (bounded wait).
func (w *workerProc) destroy() {
	w.kill()
	select {
	case <-w.waitDone:
	case <-time.After(2 * time.Second):
	}
}
