package sweep

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/testbed"
)

// startServeNode runs a real worker-fleet node (testbed.ServeListener)
// on a loopback listener for the test's lifetime.
func startServeNode(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = testbed.ServeListener(ctx, ln, nil)
	}()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("serve node did not shut down")
		}
	})
	return ln.Addr().String()
}

// startJSONOnlyNode runs a worker-fleet node restricted to the JSON
// codec — the mixed-fleet fixture.
func startJSONOnlyNode(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = testbed.ServeListenerOpts(ctx, ln, nil, testbed.ServeOptions{JSONOnly: true})
	}()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("JSON-only node did not shut down")
		}
	})
	return ln.Addr().String()
}

// startRawNode runs a hand-rolled node whose per-connection behaviour is
// supplied by the test — the tool for simulating crashes, version skew,
// and protocol abuse.
func startRawNode(t *testing.T, handle func(conn net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				handle(conn)
			}(conn)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln.Addr().String()
}

// TestNetRunnerMatchesPool pins the tentpole invariant at the runner
// layer: serve nodes across a TCP boundary reproduce the in-process pool
// bit for bit, and connections persist across calls on one runner.
func TestNetRunnerMatchesPool(t *testing.T) {
	reqs := testRequests(t, 4)
	want, err := (&PoolRunner{Workers: 2}).Run(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	nr := &NetRunner{Nodes: []string{startServeNode(t), startServeNode(t)}, ConnsPerNode: 2}
	defer nr.Close()
	got, err := nr.Run(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d diverges across the network boundary:\npool %+v\nnet  %+v", i, want[i], got[i])
		}
	}

	// Second round on the same runner: idle connections are reused and
	// streaming delivery stays prefix-ordered.
	next := 0
	err = nr.Stream(context.Background(), reqs, func(idx int, m testbed.Measurement) error {
		if idx != next {
			return fmt.Errorf("emitted %d, want %d", idx, next)
		}
		if m != want[idx] {
			return fmt.Errorf("round 2 point %d diverges", idx)
		}
		next++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if next != len(reqs) {
		t.Fatalf("round 2 emitted %d of %d", next, len(reqs))
	}
}

// TestNetRunnerRedispatchOnNodeDeath pins crash recovery: a node that
// dies mid-frame — accepts the request, never answers, drops the
// connection — must not fail the sweep; its shards are re-dispatched to
// the healthy node and the results stay byte-identical to the pool
// backend.
func TestNetRunnerRedispatchOnNodeDeath(t *testing.T) {
	reqs := testRequests(t, 4)
	want, err := (&PoolRunner{Workers: 2}).Run(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}

	var killed atomic.Int64
	flaky := startRawNode(t, func(conn net.Conn) {
		if err := testbed.WriteFrame(conn, testbed.Hello()); err != nil {
			return
		}
		br := bufio.NewReader(conn)
		var start testbed.WireStart
		if err := testbed.ReadFrame(br, &start); err != nil {
			return
		}
		var b testbed.WireBatch
		if err := testbed.ReadFrameCodec(br, start.Codec, &b); err == nil {
			killed.Add(1)
		}
		// Die mid-shard: the dispatcher is left awaiting a response.
	})
	nr := &NetRunner{Nodes: []string{flaky, startServeNode(t)}, ConnsPerNode: 1}
	defer nr.Close()

	got, err := nr.Run(context.Background(), reqs)
	if err != nil {
		t.Fatalf("fleet with one dying node must still complete: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d diverges after re-dispatch", i)
		}
	}
	if killed.Load() == 0 {
		t.Fatal("flaky node was never exercised; the test proved nothing")
	}
}

// TestNetRunnerHandshakeMismatchRejected pins the version gate: a node
// built from a different protocol or physics version is rejected with a
// clear error — alone it fails the sweep, in a mixed fleet it is
// poisoned and routed around.
func TestNetRunnerHandshakeMismatchRejected(t *testing.T) {
	skew := startRawNode(t, func(conn net.Conn) {
		_ = testbed.WriteFrame(conn, testbed.WireHello{
			Protocol: testbed.ProtocolVersion + 1,
			Physics:  testbed.PhysicsVersion,
		})
	})
	reqs := testRequests(t, 2)

	alone := &NetRunner{Nodes: []string{skew}}
	defer alone.Close()
	_, err := alone.Run(context.Background(), reqs)
	if !errors.Is(err, testbed.ErrVersionMismatch) {
		t.Fatalf("mismatched fleet error = %v, want ErrVersionMismatch", err)
	}
	for _, want := range []string{skew, "protocol", "rejected"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("mismatch error missing %q: %v", want, err)
		}
	}

	mixed := &NetRunner{Nodes: []string{skew, startServeNode(t)}}
	defer mixed.Close()
	want, err := (&PoolRunner{Workers: 2}).Run(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := mixed.Run(context.Background(), reqs)
	if err != nil {
		t.Fatalf("mixed fleet must route around the mismatched node: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mixed-fleet point %d diverges", i)
		}
	}
}

// TestNetRunnerMixedCodecFleet pins the mixed-fleet guarantee: a fleet
// where one node only speaks JSON while the others negotiate binary
// produces measurements bit-identical to the in-process pool — the
// codec is a per-connection transport detail, invisible in the output.
func TestNetRunnerMixedCodecFleet(t *testing.T) {
	reqs := testRequests(t, 4)
	want, err := (&PoolRunner{Workers: 2}).Run(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	nr := &NetRunner{
		Nodes:        []string{startServeNode(t), startJSONOnlyNode(t), startServeNode(t)},
		ConnsPerNode: 1,
		Batch:        2,
	}
	defer nr.Close()
	got, err := nr.Run(context.Background(), reqs)
	if err != nil {
		t.Fatalf("mixed-codec fleet failed: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mixed-codec point %d diverges from pool", i)
		}
	}
}

// TestNetRunnerForcedCodecMismatch pins the forced-codec gate: a
// dispatcher pinned to the binary codec treats a JSON-only node like a
// version mismatch — poisoned alone, routed around in a mixed fleet.
func TestNetRunnerForcedCodecMismatch(t *testing.T) {
	reqs := testRequests(t, 2)
	jsonOnly := startJSONOnlyNode(t)

	alone := &NetRunner{Nodes: []string{jsonOnly}, Codec: testbed.CodecBinary}
	defer alone.Close()
	_, err := alone.Run(context.Background(), reqs)
	if !errors.Is(err, testbed.ErrVersionMismatch) {
		t.Fatalf("forced-codec fleet error = %v, want ErrVersionMismatch", err)
	}
	for _, want := range []string{jsonOnly, `does not speak codec "binary"`, "rejected"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("forced-codec error missing %q: %v", want, err)
		}
	}

	mixed := &NetRunner{Nodes: []string{jsonOnly, startServeNode(t)}, Codec: testbed.CodecBinary}
	defer mixed.Close()
	want, err := (&PoolRunner{Workers: 2}).Run(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := mixed.Run(context.Background(), reqs)
	if err != nil {
		t.Fatalf("mixed fleet must route around the JSON-only node: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mixed-fleet point %d diverges", i)
		}
	}

	bogus := &NetRunner{Nodes: []string{jsonOnly}, Codec: "protobuf"}
	defer bogus.Close()
	if _, err := bogus.Run(context.Background(), reqs); err == nil || !strings.Contains(err.Error(), `unknown frame codec "protobuf"`) {
		t.Fatalf("unknown codec error = %v", err)
	}
}

// TestNetRunnerCancelMidShard pins mid-shard cancelation: canceling the
// context while shards are awaiting node responses must close the
// in-flight connections — observed from the node side — and return
// promptly with context.Canceled, never hang on a socket.
func TestNetRunnerCancelMidShard(t *testing.T) {
	reqs := testRequests(t, 2)
	unblocked := make(chan struct{}, len(reqs))
	slow := startRawNode(t, func(conn net.Conn) {
		if err := testbed.WriteFrame(conn, testbed.Hello()); err != nil {
			return
		}
		br := bufio.NewReader(conn)
		var start testbed.WireStart
		if err := testbed.ReadFrame(br, &start); err != nil {
			return
		}
		// Simulate a node stuck in a long measurement: accept batches,
		// never answer, block until the dispatcher closes the connection.
		got := false
		for {
			var b testbed.WireBatch
			if err := testbed.ReadFrameCodec(br, start.Codec, &b); err != nil {
				break
			}
			got = true
		}
		if got {
			unblocked <- struct{}{}
		}
	})
	nr := &NetRunner{Nodes: []string{slow}, ConnsPerNode: 2}
	defer nr.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { _, err := nr.Run(ctx, reqs); done <- err }()
	time.Sleep(200 * time.Millisecond)
	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Fatalf("cancelation took %v", elapsed)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("sweep hung after mid-shard cancelation")
	}
	select {
	case <-unblocked:
		// The dispatcher closed its connection; the node saw it.
	case <-time.After(5 * time.Second):
		t.Fatal("cancelation did not close the in-flight connection")
	}
}

// TestNetRunnerRecoversAfterRequestError checks that a request-level
// failure reported by a healthy node surfaces once — deterministic
// rejections are never re-dispatched — and the runner keeps working.
func TestNetRunnerRecoversAfterRequestError(t *testing.T) {
	good := testRequests(t, 2)
	bad := make([]testbed.Request, len(good))
	copy(bad, good)
	bad[1].Trials = 0
	nr := &NetRunner{Nodes: []string{startServeNode(t)}}
	defer nr.Close()

	if _, err := nr.Run(context.Background(), bad); err == nil || !strings.Contains(err.Error(), "trial count") {
		t.Fatalf("bad request error = %v", err)
	}
	if _, err := nr.Run(context.Background(), good); err != nil {
		t.Fatalf("runner did not recover: %v", err)
	}
}

// TestNetRunnerRejectsUnserializable checks the wire-safety gate shared
// with the proc backend.
func TestNetRunnerRejectsUnserializable(t *testing.T) {
	reqs := testRequests(t, 2)
	reqs[1].Scenario.EdgeLink.Loss = pathLossStub{}
	nr := &NetRunner{Nodes: []string{startServeNode(t)}}
	defer nr.Close()
	_, err := nr.Run(context.Background(), reqs)
	if !errors.Is(err, testbed.ErrRequest) || !strings.Contains(err.Error(), "point 1") {
		t.Fatalf("unserializable request error = %v", err)
	}
}

// TestNetRunnerConfigErrors covers the fail-fast configuration paths: a
// fleet without nodes, a fleet that is entirely unreachable, and use
// after Close.
func TestNetRunnerConfigErrors(t *testing.T) {
	reqs := testRequests(t, 2)[:1]

	empty := &NetRunner{}
	if _, err := empty.Run(context.Background(), reqs); err == nil || !strings.Contains(err.Error(), "node address") {
		t.Fatalf("empty fleet error = %v", err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close() // connection refused from here on
	down := &NetRunner{Nodes: []string{dead}, DialTimeout: time.Second}
	defer down.Close()
	if _, err := down.Run(context.Background(), reqs); err == nil || !strings.Contains(err.Error(), "dispatch attempts") {
		t.Fatalf("unreachable fleet error = %v", err)
	}

	nr := &NetRunner{Nodes: []string{startServeNode(t)}}
	if _, err := nr.Run(context.Background(), reqs); err != nil {
		t.Fatal(err)
	}
	if err := nr.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := nr.Run(context.Background(), reqs); !errors.Is(err, ErrRunnerClosed) {
		t.Fatalf("run after Close = %v, want ErrRunnerClosed", err)
	}
}

// TestSourceHealthQuarantineAndBackoff pins the shared lifecycle
// policy: quarantine starts at the threshold, backs off exponentially to
// the cap, heals on success, and poison is permanent with the first
// reason sticking.
func TestSourceHealthQuarantineAndBackoff(t *testing.T) {
	var h sourceHealth
	now := time.Now()
	for i := 0; i < quarantineAfter-1; i++ {
		h.failure(now, nil)
	}
	if w := h.quarantinedFor(now); w != 0 {
		t.Fatalf("quarantined after %d failures: %v", quarantineAfter-1, w)
	}
	h.failure(now, nil)
	first := h.quarantinedFor(now)
	if first <= 0 || first > backoffBase {
		t.Fatalf("first quarantine window = %v, want (0, %v]", first, backoffBase)
	}
	h.failure(now, nil)
	if second := h.quarantinedFor(now); second <= first {
		t.Fatalf("backoff did not grow: %v then %v", first, second)
	}
	for i := 0; i < 40; i++ {
		h.failure(now, nil)
	}
	if w := h.quarantinedFor(now); w > backoffMax {
		t.Fatalf("backoff exceeded cap: %v > %v", w, backoffMax)
	}
	if w := h.quarantinedFor(now.Add(2 * backoffMax)); w != 0 {
		t.Fatalf("quarantine did not expire: %v", w)
	}
	h.success()
	h.failure(now, nil)
	if w := h.quarantinedFor(now); w != 0 {
		t.Fatal("success did not reset the failure streak")
	}

	h.poisonWith(errors.New("first"))
	h.poisonWith(errors.New("second"))
	if err := h.poisoned(); err == nil || err.Error() != "first" {
		t.Fatalf("poison reason = %v, want the first to stick", err)
	}
}
