package sweep

import (
	"context"
	"sync"

	"repro/internal/testbed"
)

// Runner is a pluggable sweep execution backend: it evaluates a batch of
// serializable work units (testbed.Request) and delivers the results in
// strict request order. Implementations must honor the engine contract —
// deterministic output for a given request batch at any parallelism,
// prefix-ordered streaming, prompt cancelation, and lowest-index error
// propagation — so the experiments layer can swap backends (in-process
// pool, worker subprocesses, a memoizing cache over either) without its
// output changing by a byte.
type Runner interface {
	// Run evaluates every request and returns the measurements in
	// request order. The first (lowest-index) failure cancels the batch
	// and is returned.
	Run(ctx context.Context, reqs []testbed.Request) ([]testbed.Measurement, error)
	// Stream evaluates every request and invokes emit on the caller's
	// goroutine in strict request order, as soon as each prefix
	// completes — request k is emitted the moment requests 0..k are all
	// done, even while later ones are in flight. A non-nil error from
	// emit cancels the batch and is returned.
	Stream(ctx context.Context, reqs []testbed.Request, emit func(idx int, m testbed.Measurement) error) error
}

// collectStream adapts a Stream implementation into Run semantics.
func collectStream(ctx context.Context, n int,
	stream func(ctx context.Context, emit func(idx int, m testbed.Measurement) error) error,
) ([]testbed.Measurement, error) {
	out := make([]testbed.Measurement, 0, n)
	err := stream(ctx, func(_ int, m testbed.Measurement) error {
		out = append(out, m)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// PoolRunner executes requests on an in-process worker pool — the default
// backend, equivalent to the pre-Runner engine wiring.
type PoolRunner struct {
	// Workers sizes the pool; 0 or negative means GOMAXPROCS.
	Workers int
	// Exec optionally pins the executor (bench + refit memo); nil lazily
	// builds a default one, which measures identically for seeded
	// requests because the hidden physics is deterministic.
	Exec *testbed.Executor

	once sync.Once
	def  *testbed.Executor
}

func (p *PoolRunner) executor() *testbed.Executor {
	if p.Exec != nil {
		return p.Exec
	}
	p.once.Do(func() { p.def = testbed.NewExecutor(nil) })
	return p.def
}

// Run implements Runner.
func (p *PoolRunner) Run(ctx context.Context, reqs []testbed.Request) ([]testbed.Measurement, error) {
	return collectStream(ctx, len(reqs), func(ctx context.Context, emit func(int, testbed.Measurement) error) error {
		return p.Stream(ctx, reqs, emit)
	})
}

// Stream implements Runner on the generic in-process engine. Each shard
// executes under the sweep's cancelable context, so long-running requests
// (session blocks) abort mid-run instead of finishing after a cancel.
func (p *PoolRunner) Stream(ctx context.Context, reqs []testbed.Request, emit func(idx int, m testbed.Measurement) error) error {
	exec := p.executor()
	return Stream(ctx, len(reqs), Options{Workers: p.Workers},
		func(sctx context.Context, sh Shard) (testbed.Measurement, error) {
			return exec.DoContext(sctx, reqs[sh.Index])
		}, emit)
}
