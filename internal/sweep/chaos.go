package sweep

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/testbed"
)

// This file is the chaos test harness: fault injection at the two layers
// distributed sweeps actually fail at. ChaosProxy sits on the wire in
// front of a real serve node and corrupts the transport — delayed
// frames, connections killed after N frames, half-written frames — so
// tests can pin that the dispatcher's re-dispatch and quarantine
// machinery preserves byte-identical output under node death and
// mid-stream disconnect. ChaosRunner sits at the Runner interface and
// injects per-shard latency and failures, so queueing and cancelation
// behavior (a server's admission control, a client disconnect mid-job)
// can be driven deterministically without a slow backend. Both live in
// the package proper, not a _test file, because the server and CLI test
// suites reuse them.

// ChaosConfig parameterizes injected transport faults.
type ChaosConfig struct {
	// CrashAfterFrames kills a proxied connection after this many
	// node→client frames (the handshake hello counts as the first).
	// 0 disables crashing.
	CrashAfterFrames int
	// CrashMidFrame writes the frame header and half the payload before
	// killing the connection, so the peer sees a truncated frame instead
	// of a clean close.
	CrashMidFrame bool
	// MaxCrashes bounds the total crashes injected across all
	// connections; once spent, the proxy passes traffic through
	// untouched. Negative means unlimited.
	MaxCrashes int
	// FrameDelay sleeps before relaying each node→client answer frame.
	// The handshake (first) frame passes undelayed: the model is a slow
	// worker behind a healthy connection, not a slow network.
	FrameDelay time.Duration
}

// ChaosProxy is a frame-aware TCP proxy in front of one serve node. The
// dispatcher dials Addr instead of the node; client→node bytes pass
// through untouched, node→client traffic is re-framed so faults land on
// frame boundaries (or deliberately in the middle of one).
type ChaosProxy struct {
	cfg ChaosConfig
	ln  net.Listener

	crashBudget atomic.Int64
	conns       atomic.Int64
	crashes     atomic.Int64

	mu     sync.Mutex
	closed bool
	live   map[net.Conn]struct{}
}

// NewChaosProxy starts a proxy on a fresh loopback port forwarding to
// target. Close it when done.
func NewChaosProxy(target string, cfg ChaosConfig) (*ChaosProxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("sweep: chaos proxy listen: %w", err)
	}
	p := &ChaosProxy{cfg: cfg, ln: ln, live: make(map[net.Conn]struct{})}
	budget := int64(cfg.MaxCrashes)
	if cfg.MaxCrashes < 0 {
		budget = int64(1) << 62
	}
	p.crashBudget.Store(budget)
	go p.accept(target)
	return p, nil
}

// Addr is the proxy's dial address.
func (p *ChaosProxy) Addr() string { return p.ln.Addr().String() }

// Conns counts accepted dispatcher connections.
func (p *ChaosProxy) Conns() int { return int(p.conns.Load()) }

// Crashes counts injected connection kills.
func (p *ChaosProxy) Crashes() int { return int(p.crashes.Load()) }

// Close stops the proxy and kills every live connection.
func (p *ChaosProxy) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	_ = p.ln.Close()
	for c := range p.live {
		_ = c.Close()
	}
	p.live = nil
	return nil
}

func (p *ChaosProxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		_ = c.Close()
		return false
	}
	p.live[c] = struct{}{}
	return true
}

func (p *ChaosProxy) untrack(c net.Conn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.closed {
		delete(p.live, c)
	}
	_ = c.Close()
}

func (p *ChaosProxy) accept(target string) {
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.conns.Add(1)
		go p.proxy(client, target)
	}
}

// proxy relays one dispatcher connection, injecting the configured
// faults on the node→client direction.
func (p *ChaosProxy) proxy(client net.Conn, target string) {
	defer client.Close()
	node, err := net.Dial("tcp", target)
	if err != nil {
		return
	}
	defer node.Close()
	if !p.track(client) || !p.track(node) {
		return
	}
	defer p.untrack(client)
	defer p.untrack(node)

	// Client→node: pass through untouched; a closed socket on either
	// side ends the relay.
	go func() {
		_, _ = io.Copy(node, client)
		// The node sees EOF from the dispatcher and closes; the
		// node→client loop below then ends too.
		if cw, ok := node.(interface{ CloseWrite() error }); ok {
			_ = cw.CloseWrite()
		}
	}()

	frames := 0
	var head [4]byte
	for {
		if _, err := io.ReadFull(node, head[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(head[:])
		if n > testbed.MaxFrameBytes {
			return
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(node, payload); err != nil {
			return
		}
		frames++
		if p.cfg.FrameDelay > 0 && frames > 1 {
			time.Sleep(p.cfg.FrameDelay)
		}
		if p.cfg.CrashAfterFrames > 0 && frames >= p.cfg.CrashAfterFrames && p.crashBudget.Add(-1) >= 0 {
			p.crashes.Add(1)
			if p.cfg.CrashMidFrame {
				// Truncate inside the payload: the dispatcher reads a
				// valid header, then hits ErrUnexpectedEOF mid-frame.
				_, _ = client.Write(head[:])
				_, _ = client.Write(payload[:len(payload)/2])
			}
			return
		}
		if _, err := client.Write(head[:]); err != nil {
			return
		}
		if _, err := client.Write(payload); err != nil {
			return
		}
	}
}

// ChaosRunner wraps a backend Runner with per-shard fault injection: a
// fixed delay before every measurement (making fast synthetic jobs slow
// enough to queue behind, cancel mid-flight, or time out
// deterministically) and forced errors on chosen shard indices. Delays
// are context-aware, so cancelation aborts a delayed shard immediately —
// which is exactly the ctx-first path a server relies on when a client
// disconnects.
type ChaosRunner struct {
	// Backend executes the shards that survive injection. Required.
	Backend Runner
	// Delay is the pre-dispatch sleep per shard (context-aware).
	Delay time.Duration
	// FailIdx maps shard indices to injected errors.
	FailIdx map[int]error
	// Workers bounds shard concurrency (0 = GOMAXPROCS).
	Workers int
}

// Run implements Runner.
func (r *ChaosRunner) Run(ctx context.Context, reqs []testbed.Request) ([]testbed.Measurement, error) {
	return collectStream(ctx, len(reqs), func(ctx context.Context, emit func(int, testbed.Measurement) error) error {
		return r.Stream(ctx, reqs, emit)
	})
}

// Stream implements Runner with the engine's usual ordered-prefix and
// lowest-index error semantics.
func (r *ChaosRunner) Stream(ctx context.Context, reqs []testbed.Request, emit func(idx int, m testbed.Measurement) error) error {
	if r.Backend == nil {
		return errors.New("sweep: chaos runner needs a backend")
	}
	n := len(reqs)
	if n == 0 {
		return ctx.Err()
	}
	return Stream(ctx, n, Options{Workers: r.Workers},
		func(fctx context.Context, sh Shard) (testbed.Measurement, error) {
			if r.Delay > 0 {
				select {
				case <-time.After(r.Delay):
				case <-fctx.Done():
					return testbed.Measurement{}, fctx.Err()
				}
			}
			if err := r.FailIdx[sh.Index]; err != nil {
				return testbed.Measurement{}, err
			}
			ms, err := r.Backend.Run(fctx, reqs[sh.Index:sh.Index+1])
			if err != nil {
				return testbed.Measurement{}, err
			}
			return ms[0], nil
		}, emit)
}
