package sweep

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/pipeline"
	"repro/internal/session"
	"repro/internal/testbed"
)

// testCohorts builds a small two-cohort population over distinct
// operating points, with thermal and battery dynamics switched on so the
// report exercises every column.
func testCohorts(t testing.TB, users int) []Cohort {
	t.Helper()
	dev, err := device.ByName("XR6")
	if err != nil {
		t.Fatal(err)
	}
	th := session.DefaultThermal()
	var cohorts []Cohort
	for i, mode := range []pipeline.InferenceMode{pipeline.ModeLocal, pipeline.ModeRemote} {
		sc, err := pipeline.NewScenario(dev,
			pipeline.WithMode(mode), pipeline.WithFrameSize(500))
		if err != nil {
			t.Fatal(err)
		}
		name := "local"
		if mode == pipeline.ModeRemote {
			name = "remote"
		}
		cohorts = append(cohorts, Cohort{
			Name: name,
			Request: testbed.Request{
				Op:       testbed.OpSession,
				Scenario: sc,
				Seed:     ShardSeed(42, i),
				Session: &testbed.SessionConfig{
					Frames:     8,
					Users:      users,
					Thermal:    &th,
					BatteryMAh: 4000,
				},
			},
		})
	}
	return cohorts
}

func TestRunPopulationShapes(t *testing.T) {
	res, err := RunPopulation(context.Background(), &PoolRunner{Workers: 2},
		testCohorts(t, 25), PopulationOptions{ShardUsers: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != 6 {
		t.Fatalf("25 users per cohort at 10/shard over 2 cohorts: %d shards, want 6", res.Shards)
	}
	if len(res.Cohorts) != 2 {
		t.Fatalf("cohort results: %d, want 2", len(res.Cohorts))
	}
	for _, c := range res.Cohorts {
		if c.Summary == nil || c.Summary.Users != 25 || c.Summary.Frames != 200 {
			t.Fatalf("cohort %q summary %+v, want 25 users / 200 frames", c.Name, c.Summary)
		}
		if c.Summary.Trace != nil {
			t.Fatalf("cohort %q retained a trace", c.Name)
		}
	}
	if res.Total.Users != 50 || res.Total.Frames != 400 {
		t.Fatalf("total %d users / %d frames, want 50 / 400", res.Total.Users, res.Total.Frames)
	}
	rep := res.Render()
	for _, want := range []string{"cohort", "local", "remote", "TOTAL", "p99 ms", "depleted"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

// TestPopulationBackendEquivalence pins the tentpole acceptance invariant
// at the sweep layer: the same cohorts rendered through the in-process
// pool, worker subprocesses, and TCP serve nodes — at different worker
// counts — produce byte-identical population reports.
func TestPopulationBackendEquivalence(t *testing.T) {
	cohorts := testCohorts(t, 12)
	opts := PopulationOptions{ShardUsers: 5}

	baseline, err := RunPopulation(context.Background(), &PoolRunner{Workers: 1}, cohorts, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := baseline.Render()

	pr := &ProcRunner{Procs: 2}
	defer pr.Close()
	nr := &NetRunner{Nodes: []string{startServeNode(t), startServeNode(t)}, ConnsPerNode: 2}
	defer nr.Close()
	backends := []struct {
		name string
		r    Runner
	}{
		{"pool-4", &PoolRunner{Workers: 4}},
		{"proc", pr},
		{"net", nr},
	}
	for _, b := range backends {
		res, err := RunPopulation(context.Background(), b.r, cohorts, opts)
		if err != nil {
			t.Fatalf("%s: %v", b.name, err)
		}
		if got := res.Render(); got != want {
			t.Errorf("%s report diverges from pool baseline:\n--- pool\n%s--- %s\n%s",
				b.name, want, b.name, got)
		}
	}
}

// TestPopulationShardSizeInvariance checks the report is stable under
// re-sharding: every column is derived from integer counters, sketch
// buckets, or means rounded far beyond float round-off.
func TestPopulationShardSizeInvariance(t *testing.T) {
	cohorts := testCohorts(t, 18)
	r := &PoolRunner{Workers: 3}
	var want string
	for i, shard := range []int{1, 5, 100} {
		res, err := RunPopulation(context.Background(), r, cohorts, PopulationOptions{ShardUsers: shard})
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Render(); i == 0 {
			want = got
		} else if got != want {
			t.Errorf("shard size %d changes the report:\n%s\nvs\n%s", shard, got, want)
		}
	}
}

// TestPopulationCancel checks a canceled context aborts a large cohort
// promptly instead of grinding through every remaining shard.
func TestPopulationCancel(t *testing.T) {
	cohorts := testCohorts(t, 200000)
	cohorts[0].Request.Session.Frames = 500
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := RunPopulation(ctx, &PoolRunner{Workers: 2}, cohorts, PopulationOptions{})
	if err == nil {
		t.Fatal("canceled population must error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if d := time.Since(start); d > 30*time.Second {
		t.Fatalf("cancelation took %v", d)
	}
}

func TestPopulationValidation(t *testing.T) {
	if _, err := RunPopulation(context.Background(), &PoolRunner{}, nil, PopulationOptions{}); !errors.Is(err, ErrPopulation) {
		t.Fatalf("no cohorts: %v", err)
	}
	missing := testCohorts(t, 1)
	missing[0].Request.Session = nil
	if _, err := RunPopulation(context.Background(), &PoolRunner{}, missing, PopulationOptions{}); !errors.Is(err, ErrPopulation) {
		t.Fatalf("nil session: %v", err)
	}
	wrongOp := testCohorts(t, 1)
	wrongOp[0].Request.Op = testbed.OpMeasure
	if _, err := RunPopulation(context.Background(), &PoolRunner{}, wrongOp, PopulationOptions{}); !errors.Is(err, ErrPopulation) {
		t.Fatalf("wrong op: %v", err)
	}
	traced := testCohorts(t, 1)
	traced[0].Request.Session.IncludeTrace = true
	if _, err := RunPopulation(context.Background(), &PoolRunner{}, traced, PopulationOptions{}); !errors.Is(err, ErrPopulation) {
		t.Fatalf("trace retention: %v", err)
	}
}

// TestPopulationThroughCache checks session shards flow through the
// memoizing cache: identical shards are deduplicated in memory, the
// shared summaries merge without cross-contamination, and nothing session
// ever lands in the persistent store (sessions are not disk-persistable).
func TestPopulationThroughCache(t *testing.T) {
	disk, err := OpenDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cr := NewCachedRunner(&PoolRunner{Workers: 2}, WithDiskCache(disk))
	cohorts := testCohorts(t, 10)
	opts := PopulationOptions{ShardUsers: 5}

	first, err := RunPopulation(context.Background(), cr, cohorts, opts)
	if err != nil {
		t.Fatal(err)
	}
	st := cr.Stats()
	if st.Misses == 0 {
		t.Fatalf("cold run must miss: %+v", st)
	}
	if ds := disk.Stats(); ds.Stores != 0 {
		t.Fatalf("session summaries must never persist on disk: %+v", ds)
	}
	again, err := RunPopulation(context.Background(), cr, cohorts, opts)
	if err != nil {
		t.Fatal(err)
	}
	st2 := cr.Stats()
	if st2.Misses != st.Misses {
		t.Fatalf("warm run re-dispatched: %+v then %+v", st, st2)
	}
	if a, b := first.Render(), again.Render(); a != b {
		t.Fatalf("warm report diverges:\n%s\nvs\n%s", a, b)
	}
}
