package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"

	"repro/internal/testbed"
)

// diskCacheVersion is the on-disk entry schema version. Bumping it —
// like bumping testbed.PhysicsVersion, which entries also carry —
// invalidates every existing entry cleanly: old files decode but fail
// the version check, read as misses, and are rewritten after the cell
// is re-measured.
const diskCacheVersion = 1

// ErrDiskCache indicates an unusable persistent cache directory.
var ErrDiskCache = errors.New("sweep: disk cache")

// DiskCache is the persistent measurement store behind CachedRunner:
// one JSON file per (fingerprint, seed) cell under a content-addressed
// path <dir>/<h[0:2]>/<h>-<seed>.json, where h is the hex SHA-256 of
// the request fingerprint. Because a seeded request is a pure function
// of exactly that key, an entry written by any run — any backend, any
// parallelism, any process — serves every later run bit for bit.
//
// Writes are atomic (temp file + rename in the same directory), so
// concurrent processes sharing one cache directory are safe: a reader
// observes either a complete entry or none, never a torn one. Corrupt,
// partial, or schema-stale entries read as misses and are rewritten
// after the cell is re-measured. Individual write failures (e.g. the
// directory turned read-only mid-run) are tolerated: the entry simply
// is not persisted and the run continues on the in-memory layer.
type DiskCache struct {
	dir string

	loads       atomic.Int64 // entries served from disk
	stores      atomic.Int64 // entries persisted
	loadErrors  atomic.Int64 // unreadable/corrupt/stale entries read as misses
	storeErrors atomic.Int64 // failed best-effort writes
}

// OpenDiskCache opens (creating if needed) the persistent store rooted
// at dir. It fails if the directory cannot be created or is not
// writable — probed up front so an unusable store surfaces as one clear
// error at open time, letting the caller degrade to the in-memory cache
// with a warning instead of failing (or silently not persisting) cell
// by cell.
func OpenDiskCache(dir string) (*DiskCache, error) {
	if dir == "" {
		return nil, fmt.Errorf("%w: empty directory", ErrDiskCache)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDiskCache, err)
	}
	probe, err := os.CreateTemp(dir, ".probe-*")
	if err != nil {
		return nil, fmt.Errorf("%w: directory not writable: %v", ErrDiskCache, err)
	}
	name := probe.Name()
	_ = probe.Close()
	_ = os.Remove(name)
	return &DiskCache{dir: dir}, nil
}

// Dir returns the store's root directory.
func (d *DiskCache) Dir() string { return d.dir }

// diskEntry is the on-disk representation of one measured cell. The
// fingerprint is stored in full (not just its hash) so a lookup can
// verify the entry describes exactly the requested cell — a hash
// collision or a hand-edited file reads as a miss, never as a wrong
// measurement. Physics records the measurement semantics of the binary
// that produced the entry (testbed.PhysicsVersion): the fingerprint
// describes the cell, not the code, so entries measured under other
// physics read as misses instead of replaying stale numbers.
type diskEntry struct {
	Version     int                 `json:"version"`
	Physics     int                 `json:"physics"`
	Fingerprint string              `json:"fingerprint"`
	Seed        int64               `json:"seed"`
	M           testbed.Measurement `json:"m"`
}

// entryPath maps a cell key to its content-addressed file path.
func (d *DiskCache) entryPath(fp string, seed int64) (dir, path string) {
	sum := sha256.Sum256([]byte(fp))
	h := hex.EncodeToString(sum[:])
	dir = filepath.Join(d.dir, h[:2])
	return dir, filepath.Join(dir, h+"-"+strconv.FormatInt(seed, 10)+".json")
}

// Get loads the measurement persisted for (fp, seed). Any defect — no
// file, unreadable file, corrupt or truncated JSON, stale schema
// version, key mismatch — is a miss; the caller re-measures and the
// defective entry is overwritten by the write-back.
func (d *DiskCache) Get(fp string, seed int64) (testbed.Measurement, bool) {
	_, path := d.entryPath(fp, seed)
	raw, err := os.ReadFile(path)
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			d.loadErrors.Add(1)
		}
		return testbed.Measurement{}, false
	}
	var e diskEntry
	if err := json.Unmarshal(raw, &e); err != nil ||
		e.Version != diskCacheVersion || e.Physics != testbed.PhysicsVersion ||
		e.Fingerprint != fp || e.Seed != seed {
		d.loadErrors.Add(1)
		return testbed.Measurement{}, false
	}
	d.loads.Add(1)
	return e.M, true
}

// Put persists the measurement for (fp, seed) atomically: the entry is
// written to a temp file in the destination directory and renamed into
// place, so concurrent readers — including other processes sharing the
// directory — never observe a partial entry. Errors are reported but
// safe to ignore: a failed write only costs a future re-measurement.
func (d *DiskCache) Put(fp string, seed int64, m testbed.Measurement) error {
	err := d.put(fp, seed, m)
	if err != nil {
		d.storeErrors.Add(1)
		return err
	}
	d.stores.Add(1)
	return nil
}

func (d *DiskCache) put(fp string, seed int64, m testbed.Measurement) error {
	dir, path := d.entryPath(fp, seed)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("%w: %v", ErrDiskCache, err)
	}
	raw, err := json.Marshal(diskEntry{
		Version:     diskCacheVersion,
		Physics:     testbed.PhysicsVersion,
		Fingerprint: fp,
		Seed:        seed,
		M:           m,
	})
	if err != nil {
		return fmt.Errorf("%w: encode entry: %v", ErrDiskCache, err)
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("%w: %v", ErrDiskCache, err)
	}
	if _, err := tmp.Write(raw); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("%w: %v", ErrDiskCache, err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("%w: %v", ErrDiskCache, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("%w: %v", ErrDiskCache, err)
	}
	return nil
}

// DiskCacheStats reports the persistent store's counters.
type DiskCacheStats struct {
	// Loads counts entries served from disk.
	Loads int64
	// Stores counts entries persisted.
	Stores int64
	// LoadErrors counts defective entries (corrupt, truncated, stale
	// schema, key mismatch) read as misses.
	LoadErrors int64
	// StoreErrors counts failed best-effort writes.
	StoreErrors int64
}

// Stats returns the store's counters.
func (d *DiskCache) Stats() DiskCacheStats {
	return DiskCacheStats{
		Loads:       d.loads.Load(),
		Stores:      d.stores.Load(),
		LoadErrors:  d.loadErrors.Load(),
		StoreErrors: d.storeErrors.Load(),
	}
}
