package sweep

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/testbed"
)

// Defaults for the network backend.
const (
	// netConnsPerNode is the default number of concurrent connections a
	// dispatcher opens per node. A serve node answers one batch at a
	// time per connection, and the dispatcher cannot see a remote node's
	// core count, so a small fixed fan-out per node keeps several
	// batches in flight without assuming anything about the fleet.
	netConnsPerNode = 4
	// netDialTimeout bounds connection establishment plus the handshake
	// read.
	netDialTimeout = 5 * time.Second
	// netKeepAlive is the TCP keepalive period on dispatcher
	// connections, so a silently vanished node (power loss, network
	// partition) surfaces as a read error instead of a wedged socket.
	netKeepAlive = 30 * time.Second
	// netStealAfter is the default age before an idle session may steal
	// another session's unstarted batch: long enough that a healthy
	// fleet in steady state steals nothing (a batch is normally answered
	// in well under this), short enough that one slow node never gates a
	// sweep for more than a beat.
	netStealAfter = 50 * time.Millisecond
	// netStandbyPoll bounds how long an empty elastic fleet waits
	// between membership checks when no change notification arrives.
	netStandbyPoll = 250 * time.Millisecond
)

// MemberSource is a live fleet membership feed: a generation-stamped
// snapshot of node addresses plus a channel that closes once membership
// moves past that generation (nil when membership is frozen). It is
// structurally identical to fleet.Source — defined here too so the
// dispatch engine does not depend on the fleet package; any fleet.Source
// satisfies it directly.
type MemberSource interface {
	Snapshot() (addrs []string, gen uint64)
	Changed(gen uint64) <-chan struct{}
}

// staticMembers freezes an address list as a MemberSource (the -nodes
// fleet).
type staticMembers []string

func (s staticMembers) Snapshot() ([]string, uint64) {
	out := make([]string, len(s))
	copy(out, s)
	return out, 1
}

func (s staticMembers) Changed(uint64) <-chan struct{} { return nil }

// NetRunner executes requests across a fleet of serve nodes — processes
// running `xrperf serve` (testbed.ServeListener) — over TCP, speaking
// the same batched frame protocol the proc backend speaks over pipes.
// Connections are dialed lazily, verified against the node's handshake
// (protocol + physics version; a mismatched node is rejected with a
// clear error and never used), codec-negotiated per connection (binary
// when the node advertises it, JSON otherwise — a mixed fleet produces
// the same bytes either way), kept alive across Run/Stream calls (Close
// reaps them), and replaced transparently when they break. Requests ride
// in multi-request WireBatch frames with up to Pipeline batches
// outstanding per connection.
//
// Failure semantics extend the proc backend's: a node that dies
// mid-batch — crash, disconnect, kill — has its unanswered batches
// re-dispatched to a healthy node, and a node that keeps failing is
// quarantined with exponential backoff (sourceHealth) so the fleet
// routes around it and probes it again later. Requests must be
// wire-safe (Request.WireSafe); measurements depend only on request
// content and the deterministic hidden physics, so any healthy node
// produces the same bytes and re-dispatch never changes the output.
type NetRunner struct {
	// Nodes lists the serve-node addresses (host:port). Required unless
	// Members is set.
	Nodes []string
	// Members, when set, is a live membership feed (any fleet.Source):
	// nodes that join mid-run are admitted and dialed, nodes that leave
	// are drained — their in-flight batches finish, their idle
	// connections close, and no new work is dealt to them. Overrides
	// Nodes.
	Members MemberSource
	// ConnsPerNode bounds concurrent connections per node; 0 or
	// negative means netConnsPerNode.
	ConnsPerNode int
	// DialTimeout bounds dial + handshake per connection attempt; 0
	// means netDialTimeout.
	DialTimeout time.Duration
	// Batch caps requests per frame; 0 means DefaultBatch. Small grids
	// use smaller batches automatically to keep every connection busy.
	Batch int
	// Pipeline is the window of outstanding batches per connection; 0
	// means DefaultPipeline.
	Pipeline int
	// Codec forces the frame codec ("json" or "binary"); empty
	// negotiates per connection from the node's advertisement. A forced
	// codec a node does not speak poisons that node like a version
	// mismatch.
	Codec string
	// StealAfter is how long a dispatched batch may sit unanswered
	// before an idle session re-dispatches it to another node; 0 means
	// netStealAfter, negative disables stealing. NoSteal is the
	// spec-friendly way to disable it.
	StealAfter time.Duration
	// NoSteal disables work stealing: a batch committed to a slow node
	// stays there (uniform dealing). Output bytes are identical either
	// way; only completion time differs.
	NoSteal bool

	mu       sync.Mutex
	started  bool
	startErr error
	closed   bool
	conns    int
	timeout  time.Duration
	rr       atomic.Int64

	// nodesMu guards the live membership view. byAddr keeps every node
	// ever seen, so a leaver that rejoins keeps its health history
	// (quarantine, poison) instead of getting a clean slate.
	nodesMu sync.Mutex
	nodes   []*netNode // current members, feed order
	byAddr  map[string]*netNode
	memGen  uint64

	steals atomic.Int64

	liveMu     sync.Mutex
	liveClosed bool
	live       map[*netConn]struct{}
}

// netNode is the dispatcher's view of one serve node: its address, its
// health, its capacity estimate, and a stack of idle connections ready
// for the next batch.
type netNode struct {
	addr   string
	health sourceHealth
	// left marks a node the membership feed no longer lists: no new
	// checkouts, and connections returning from flight are destroyed
	// instead of idled.
	left atomic.Bool
	// busy counts checked-out transports, the load half of the
	// weighted-checkout score.
	busy atomic.Int64

	// wmu guards the capacity estimate: the handshake's static hints and
	// the EWMA over latencies this dispatcher observed itself.
	wmu        sync.Mutex
	ewmaCPS    float64
	helloCPS   float64
	helloCores int

	mu   sync.Mutex
	idle []*netConn
}

// estimate returns the node's capacity estimate in cells/s (or core
// count as a stand-in), preferring what this dispatcher has observed
// over what the node advertised, and reports whether anything is known
// at all — a node never dialed has no hints yet.
func (nd *netNode) estimate() (float64, bool) {
	nd.wmu.Lock()
	defer nd.wmu.Unlock()
	switch {
	case nd.ewmaCPS > 0:
		return nd.ewmaCPS, true
	case nd.helloCPS > 0:
		return nd.helloCPS, true
	case nd.helloCores > 0:
		return float64(nd.helloCores), true
	}
	return 1, false
}

// weight is estimate with the know-nothing default of 1.
func (nd *netNode) weight() float64 {
	w, _ := nd.estimate()
	return w
}

// observe folds one answered batch into the node's observed throughput.
func (nd *netNode) observe(cells int, elapsed time.Duration) {
	if cells <= 0 || elapsed <= 0 {
		return
	}
	sample := float64(cells) / elapsed.Seconds()
	nd.wmu.Lock()
	if nd.ewmaCPS == 0 {
		nd.ewmaCPS = sample
	} else {
		nd.ewmaCPS = 0.7*nd.ewmaCPS + 0.3*sample
	}
	nd.wmu.Unlock()
}

// hinted records the capacity hints from a fresh handshake.
func (nd *netNode) hinted(h testbed.WireHello) {
	nd.wmu.Lock()
	nd.helloCores = h.Cores
	nd.helloCPS = h.CellsPerSec
	nd.wmu.Unlock()
}

// init resolves the configuration once.
func (r *NetRunner) init() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrRunnerClosed
	}
	if r.started {
		return r.startErr
	}
	r.started = true
	if r.Members == nil {
		if len(r.Nodes) == 0 {
			r.startErr = errors.New("sweep: net runner needs at least one node address")
			return r.startErr
		}
		r.Members = staticMembers(r.Nodes)
	}
	if r.Codec != "" && !testbed.KnownCodec(r.Codec) {
		r.startErr = fmt.Errorf("sweep: unknown frame codec %q", r.Codec)
		return r.startErr
	}
	r.byAddr = make(map[string]*netNode)
	r.conns = r.ConnsPerNode
	if r.conns <= 0 {
		r.conns = netConnsPerNode
	}
	r.timeout = r.DialTimeout
	if r.timeout <= 0 {
		r.timeout = netDialTimeout
	}
	r.live = make(map[*netConn]struct{})
	r.syncMembers()
	return nil
}

// syncMembers reconciles the node view with the membership feed: new
// addresses get nodes (and jitter seeds), returning addresses get their
// old node back with its health history, and dropped addresses are
// marked left and their idle connections destroyed. In-flight batches to
// leavers finish normally — draining, not severing — because their
// results are as good as anyone's.
func (r *NetRunner) syncMembers() {
	addrs, gen := r.Members.Snapshot()
	r.nodesMu.Lock()
	if gen == r.memGen && r.memGen != 0 {
		r.nodesMu.Unlock()
		return
	}
	r.memGen = gen
	want := make(map[string]bool, len(addrs))
	nodes := make([]*netNode, 0, len(addrs))
	for _, a := range addrs {
		want[a] = true
		nd := r.byAddr[a]
		if nd == nil {
			nd = &netNode{addr: a}
			nd.health.seedJitter(a)
			r.byAddr[a] = nd
		}
		nd.left.Store(false)
		nodes = append(nodes, nd)
	}
	var evict []*netConn
	for a, nd := range r.byAddr {
		if !want[a] && !nd.left.Load() {
			nd.left.Store(true)
			nd.mu.Lock()
			evict = append(evict, nd.idle...)
			nd.idle = nil
			nd.mu.Unlock()
		}
	}
	r.nodes = nodes
	r.nodesMu.Unlock()
	for _, c := range evict {
		c.destroy()
	}
}

// memberView snapshots the current node list.
func (r *NetRunner) memberView() []*netNode {
	r.nodesMu.Lock()
	defer r.nodesMu.Unlock()
	out := make([]*netNode, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// Steals reports how many batches have been re-dispatched off slow
// nodes by work stealing since the runner started.
func (r *NetRunner) Steals() int64 { return r.steals.Load() }

// Run implements Runner.
func (r *NetRunner) Run(ctx context.Context, reqs []testbed.Request) ([]testbed.Measurement, error) {
	return collectStream(ctx, len(reqs), func(ctx context.Context, emit func(int, testbed.Measurement) error) error {
		return r.Stream(ctx, reqs, emit)
	})
}

// Stream implements Runner: batches the requests across the fleet with
// the same ordered-merge and lowest-index error semantics as every
// other backend (runBatches mirrors the in-process engine exactly).
func (r *NetRunner) Stream(ctx context.Context, reqs []testbed.Request, emit func(idx int, m testbed.Measurement) error) error {
	n := len(reqs)
	if n == 0 {
		return ctx.Err()
	}
	for i, rq := range reqs {
		if err := rq.WireSafe(); err != nil {
			return fmt.Errorf("sweep: point %d: %w", i, err)
		}
	}
	if err := r.init(); err != nil {
		return err
	}
	members := r.memberView()
	elastic := r.Members.Changed(0) != nil // a frozen feed returns nil
	attempts := 2 * len(members)
	if elastic && attempts < 8 {
		// An elastic fleet may be small (or empty) right now and grow;
		// give each batch headroom to outlive a few joins and failures.
		attempts = 8
	}
	sessions := len(members) * r.conns
	if sessions == 0 {
		// An empty elastic fleet: park lanes in standby; the watcher
		// spawns more as members register.
		sessions = r.conns
	}
	stealAfter := r.StealAfter
	if stealAfter == 0 {
		stealAfter = netStealAfter
	}
	if r.NoSteal || stealAfter < 0 {
		stealAfter = 0
	}
	cfg := batchConfig{
		sessions: sessions,
		batch:    r.Batch,
		depth:    r.Pipeline,
		budget:   attempts,
		source:   netSource{r},
		givingUp: func(j *batchJob) error {
			last := j.lastErr
			if last == nil {
				last = errors.New("every node quarantined after repeated failures")
			}
			return fmt.Errorf("sweep: shard %d failed after %d dispatch attempts across %d node(s): %w",
				j.off, attempts, len(r.memberView()), last)
		},
		stealAfter: stealAfter,
		onSteal:    func() { r.steals.Add(1) },
	}
	if elastic {
		// Follow the membership feed for the sweep's duration: when the
		// fleet grows, give the joiners sessions of their own (sessions
		// never shrink — a lane whose node left simply checks out a
		// different node's connection next time).
		cfg.watch = func(stop <-chan struct{}, spawn func(n int)) {
			have := sessions
			for {
				addrs, gen := r.Members.Snapshot()
				r.syncMembers()
				if want := len(addrs) * r.conns; want > have {
					spawn(want - have)
					have = want
				}
				ch := r.Members.Changed(gen)
				if ch == nil {
					return
				}
				select {
				case <-stop:
					return
				case <-ch:
				}
			}
		}
	}
	return runBatches(ctx, reqs, cfg, emit)
}

// netSource checks fleet connections out for the batch dispatcher.
type netSource struct{ r *NetRunner }

// acquire picks a usable node and pops or dials a connection to it. A
// fully poisoned fleet is terminal (every node rejected the handshake);
// a fully quarantined one waits out the soonest release and consumes an
// attempt; an empty elastic fleet stands by for members without
// consuming anything; everything else — dial failures, broken
// handshakes, a poison discovered on this very dial — consumes an
// attempt and lets the dispatcher route the batch elsewhere.
func (s netSource) acquire(cctx context.Context) (batchTransport, error) {
	r := s.r
	if err := cctx.Err(); err != nil {
		return nil, &terminalError{err: err}
	}
	node, wait, err := r.pickNode()
	if err != nil {
		return nil, &terminalError{err: err, needsIdx: true}
	}
	if node == nil {
		// A membership change can end the wait early in either case: a
		// joiner is more useful than a quarantine release, and on a
		// frozen feed Changed is nil, which never fires in a select.
		_, gen := r.Members.Snapshot()
		changed := r.Members.Changed(gen)
		if wait < 0 {
			// The elastic fleet is empty right now: stand by for members
			// without burning the batch's dispatch attempts.
			select {
			case <-changed:
			case <-time.After(netStandbyPoll):
			case <-cctx.Done():
				return nil, &terminalError{err: cctx.Err()}
			}
			return nil, errStandby
		}
		// Every node is cooling off; wait out the soonest quarantine
		// (costing one attempt) instead of failing a recoverable fleet.
		select {
		case <-time.After(wait):
			return nil, errAllCooling
		case <-changed:
			return nil, errStandby
		case <-cctx.Done():
			return nil, &terminalError{err: cctx.Err()}
		}
	}
	c, err := node.acquire(cctx, r)
	if err != nil {
		if cctx.Err() != nil {
			return nil, &terminalError{err: cctx.Err()}
		}
		if retryable(err) {
			//xrlint:allow determinism -- quarantine backoff clock for node health, never measurement data
			node.health.failure(time.Now(), err)
		}
		return nil, err
	}
	node.busy.Add(1)
	return &netTransport{r: r, c: c}, nil
}

// pickNode returns the best usable node by weighted checkout — lowest
// (busy+1)/weight, ties broken in rotating order — so a node estimated
// twice as fast carries roughly twice the in-flight batches. It syncs
// the membership feed first, which is how joiners enter and leavers
// exit the dispatch path mid-run. With every node quarantined it
// returns (nil, soonest release, nil); with no members at all (an
// elastic fleet between nodes) it returns (nil, -1, nil); with every
// node poisoned it returns the poison error (the first node's reason
// wrapped, so errors.Is sees through to e.g. ErrVersionMismatch).
func (r *NetRunner) pickNode() (*netNode, time.Duration, error) {
	r.syncMembers()
	nodes := r.memberView()
	if len(nodes) == 0 {
		return nil, -1, nil
	}
	now := time.Now() //xrlint:allow determinism -- quarantine-release comparison clock, never measurement data
	start := int(r.rr.Add(1))
	soonest := time.Duration(-1)
	var poisons []error
	// Two passes: collect the usable nodes and the largest known capacity
	// estimate first, so a node nothing is known about yet — a joiner
	// this dispatcher has never dialed — borrows that estimate instead of
	// the know-nothing default of 1. Without the optimism a fresh node
	// could never win a checkout against established nodes advertising
	// hundreds of cells/s, and would never be explored at all.
	type candidate struct {
		nd    *netNode
		w     float64
		known bool
	}
	cands := make([]candidate, 0, len(nodes))
	maxKnown := 1.0
	for k := 0; k < len(nodes); k++ {
		nd := nodes[(start+k)%len(nodes)]
		if err := nd.health.poisoned(); err != nil {
			poisons = append(poisons, err)
			continue
		}
		if wait := nd.health.quarantinedFor(now); wait > 0 {
			if soonest < 0 || wait < soonest {
				soonest = wait
			}
			continue
		}
		w, known := nd.estimate()
		if known && w > maxKnown {
			maxKnown = w
		}
		cands = append(cands, candidate{nd, w, known})
	}
	var best *netNode
	var bestScore float64
	for _, c := range cands {
		w := c.w
		if !c.known {
			w = maxKnown
		}
		score := float64(c.nd.busy.Load()+1) / w
		if best == nil || score < bestScore {
			best, bestScore = c.nd, score
		}
	}
	if best != nil {
		return best, 0, nil
	}
	if len(poisons) == len(nodes) {
		err := fmt.Errorf("every node rejected: %w", poisons[0])
		for _, p := range poisons[1:] {
			err = fmt.Errorf("%w; %v", err, p)
		}
		return nil, 0, err
	}
	if soonest >= 0 {
		return nil, soonest, nil
	}
	// Poisoned nodes plus none quarantined can only mean a mixed fleet
	// where the healthy nodes were consumed by the loop above — cannot
	// happen, but fail loudly rather than spin.
	return nil, 0, errors.New("no usable node")
}

// acquire pops an idle connection or dials a fresh one.
func (nd *netNode) acquire(ctx context.Context, r *NetRunner) (*netConn, error) {
	nd.mu.Lock()
	if k := len(nd.idle); k > 0 {
		c := nd.idle[k-1]
		nd.idle = nd.idle[:k-1]
		nd.mu.Unlock()
		return c, nil
	}
	nd.mu.Unlock()
	return r.dialNode(ctx, nd)
}

// dialNode opens, keepalives, handshakes, and codec-negotiates one
// connection to a node. Transport failures are retryable worker
// failures; a version mismatch — or a forced codec the node does not
// advertise — poisons the node permanently and surfaces as a
// non-retryable error.
func (r *NetRunner) dialNode(ctx context.Context, nd *netNode) (*netConn, error) {
	dctx, cancel := context.WithTimeout(ctx, r.timeout)
	defer cancel()
	d := net.Dialer{KeepAlive: netKeepAlive}
	conn, err := d.DialContext(dctx, "tcp", nd.addr)
	if err != nil {
		return nil, &workerFailure{fmt.Errorf("dial node %s: %w", nd.addr, err)}
	}
	c := &netConn{runner: r, node: nd, conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}
	//xrlint:allow determinism -- connection read deadline, operational timeout rather than measurement data
	_ = conn.SetReadDeadline(time.Now().Add(r.timeout))
	h, err := testbed.ReadHello(c.br)
	switch {
	case errors.Is(err, testbed.ErrVersionMismatch):
		c.close()
		perr := fmt.Errorf("sweep: node %s rejected: %w", nd.addr, err)
		nd.health.poisonWith(perr)
		return nil, perr
	case err != nil:
		c.close()
		return nil, &workerFailure{fmt.Errorf("node %s: no handshake: %w", nd.addr, err)}
	}
	nd.hinted(h)
	codec := r.Codec
	if codec == "" {
		codec = h.PickCodec()
	} else if !h.Supports(codec) {
		c.close()
		perr := fmt.Errorf("sweep: node %s rejected: %w",
			nd.addr, fmt.Errorf("%w: node does not speak codec %q", testbed.ErrVersionMismatch, codec))
		nd.health.poisonWith(perr)
		return nil, perr
	}
	c.codec = codec
	if err := testbed.WriteFrame(c.bw, testbed.WireStart{Codec: codec}); err != nil {
		c.close()
		return nil, &workerFailure{fmt.Errorf("node %s: start: %w", nd.addr, err)}
	}
	if err := c.bw.Flush(); err != nil {
		c.close()
		return nil, &workerFailure{fmt.Errorf("node %s: start: %w", nd.addr, err)}
	}
	_ = conn.SetReadDeadline(time.Time{})
	r.liveMu.Lock()
	if r.liveClosed {
		r.liveMu.Unlock()
		c.close()
		return nil, ErrRunnerClosed
	}
	r.live[c] = struct{}{}
	r.liveMu.Unlock()
	return c, nil
}

// release returns a healthy connection to its node's idle stack (or
// closes it when the runner has been closed, or the node has left the
// fleet — the drain half of elastic membership: the connection finished
// its in-flight work, and no new work follows it).
func (r *NetRunner) release(c *netConn) {
	r.liveMu.Lock()
	closed := r.liveClosed
	r.liveMu.Unlock()
	if closed || c.node.left.Load() {
		c.destroy()
		return
	}
	c.node.mu.Lock()
	c.node.idle = append(c.node.idle, c)
	c.node.mu.Unlock()
}

// Close closes every connection — idle and in-flight — and marks the
// runner unusable. Call it after all Run/Stream calls have returned.
func (r *NetRunner) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	if !r.started || r.startErr != nil {
		return nil
	}
	r.liveMu.Lock()
	r.liveClosed = true
	for c := range r.live {
		c.close()
	}
	r.live = nil
	r.liveMu.Unlock()
	r.nodesMu.Lock()
	byAddr := r.byAddr
	r.nodesMu.Unlock()
	for _, nd := range byAddr {
		nd.mu.Lock()
		nd.idle = nil
		nd.mu.Unlock()
	}
	return nil
}

// netConn is one live dispatcher connection to a serve node,
// post-handshake.
type netConn struct {
	runner    *NetRunner
	node      *netNode
	conn      net.Conn
	br        *bufio.Reader
	bw        *bufio.Writer
	codec     string
	closeOnce sync.Once
}

// netTransport adapts one fleet connection to the batch dispatcher.
type netTransport struct {
	r    *NetRunner
	c    *netConn
	done sync.Once
}

// end releases the transport's busy slot exactly once, whichever of
// park/fail/abort retires it.
func (t *netTransport) end() {
	t.done.Do(func() { t.c.node.busy.Add(-1) })
}

// observe implements batchObserver: answered-batch latency feeds the
// node's capacity weight.
func (t *netTransport) observe(cells int, elapsed time.Duration) {
	t.c.node.observe(cells, elapsed)
}

func (t *netTransport) send(b testbed.WireBatch) error {
	if err := testbed.WriteFrameCodec(t.c.bw, t.c.codec, b); err != nil {
		return &workerFailure{fmt.Errorf("node %s: write: %w", t.c.node.addr, err)}
	}
	if err := t.c.bw.Flush(); err != nil {
		return &workerFailure{fmt.Errorf("node %s: write: %w", t.c.node.addr, err)}
	}
	return nil
}

func (t *netTransport) recv() (testbed.WireBatchResult, error) {
	var res testbed.WireBatchResult
	if err := testbed.ReadFrameCodec(t.c.br, t.c.codec, &res); err != nil {
		return res, &workerFailure{fmt.Errorf("node %s died mid-shard (read failed: %v)", t.c.node.addr, err)}
	}
	return res, nil
}

func (t *netTransport) success() { t.c.node.health.success() }

func (t *netTransport) reject(msg string) error {
	// Request-level rejection from a healthy node: deterministic, never
	// retried.
	return fmt.Errorf("node %s: %s", t.c.node.addr, sanitizeLine(msg))
}

func (t *netTransport) corrupt(format string, args ...any) error {
	return &workerFailure{fmt.Errorf("node %s %s", t.c.node.addr, fmt.Sprintf(format, args...))}
}

func (t *netTransport) park() {
	t.end()
	t.r.release(t.c)
}

func (t *netTransport) fail(cause error) {
	t.end()
	//xrlint:allow determinism -- quarantine backoff clock for node health, never measurement data
	t.c.node.health.failure(time.Now(), cause)
	t.c.destroy()
}

func (t *netTransport) abort() {
	t.end()
	t.c.destroy()
}

func (t *netTransport) destroy() { t.c.destroy() }

// close shuts the socket (idempotent).
func (c *netConn) close() {
	c.closeOnce.Do(func() { _ = c.conn.Close() })
}

// destroy closes the connection and drops it from the runner's live set.
func (c *netConn) destroy() {
	c.close()
	r := c.runner
	if r == nil {
		return
	}
	r.liveMu.Lock()
	delete(r.live, c)
	r.liveMu.Unlock()
}
