package sweep

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/testbed"
)

// Defaults for the network backend.
const (
	// netConnsPerNode is the default number of concurrent connections a
	// dispatcher opens per node. A serve node answers one request at a
	// time per connection, and the dispatcher cannot see a remote node's
	// core count, so a small fixed fan-out per node keeps several
	// measurements in flight without assuming anything about the fleet.
	netConnsPerNode = 4
	// netDialTimeout bounds connection establishment plus the handshake
	// read.
	netDialTimeout = 5 * time.Second
	// netKeepAlive is the TCP keepalive period on dispatcher
	// connections, so a silently vanished node (power loss, network
	// partition) surfaces as a read error instead of a wedged socket.
	netKeepAlive = 30 * time.Second
)

// NetRunner executes requests across a fleet of serve nodes — processes
// running `xrperf serve` (testbed.ServeListener) — over TCP, speaking
// the same length-delimited JSON frame protocol the proc backend speaks
// over pipes. Connections are dialed lazily, verified against the node's
// handshake (protocol + physics version; a mismatched node is rejected
// with a clear error and never used), kept alive across Run/Stream calls
// (Close reaps them), and replaced transparently when they break.
//
// Failure semantics extend the proc backend's: a node that dies
// mid-shard — crash, disconnect, kill — has its shard re-dispatched to a
// healthy node, and a node that keeps failing is quarantined with
// exponential backoff (sourceHealth) so the fleet routes around it and
// probes it again later. Requests must be wire-safe (Request.WireSafe);
// measurements depend only on request content and the deterministic
// hidden physics, so any healthy node produces the same bytes and
// re-dispatch never changes the output.
type NetRunner struct {
	// Nodes lists the serve-node addresses (host:port). Required.
	Nodes []string
	// ConnsPerNode bounds concurrent connections per node; 0 or
	// negative means netConnsPerNode.
	ConnsPerNode int
	// DialTimeout bounds dial + handshake per connection attempt; 0
	// means netDialTimeout.
	DialTimeout time.Duration

	mu       sync.Mutex
	started  bool
	startErr error
	closed   bool
	nodes    []*netNode
	conns    int
	timeout  time.Duration
	rr       atomic.Int64

	liveMu     sync.Mutex
	liveClosed bool
	live       map[*netConn]struct{}
}

// netNode is the dispatcher's view of one serve node: its address, its
// health, and a stack of idle connections ready for the next shard.
type netNode struct {
	addr   string
	health sourceHealth

	mu   sync.Mutex
	idle []*netConn
}

// init resolves the configuration once.
func (r *NetRunner) init() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrRunnerClosed
	}
	if r.started {
		return r.startErr
	}
	r.started = true
	if len(r.Nodes) == 0 {
		r.startErr = errors.New("sweep: net runner needs at least one node address")
		return r.startErr
	}
	r.nodes = make([]*netNode, len(r.Nodes))
	for i, addr := range r.Nodes {
		r.nodes[i] = &netNode{addr: addr}
	}
	r.conns = r.ConnsPerNode
	if r.conns <= 0 {
		r.conns = netConnsPerNode
	}
	r.timeout = r.DialTimeout
	if r.timeout <= 0 {
		r.timeout = netDialTimeout
	}
	r.live = make(map[*netConn]struct{})
	return nil
}

// Run implements Runner.
func (r *NetRunner) Run(ctx context.Context, reqs []testbed.Request) ([]testbed.Measurement, error) {
	return collectStream(ctx, len(reqs), func(ctx context.Context, emit func(int, testbed.Measurement) error) error {
		return r.Stream(ctx, reqs, emit)
	})
}

// Stream implements Runner: shards the batch across the fleet with the
// same ordered-merge and lowest-index error semantics as every other
// backend (it delegates aggregation to the in-process engine).
func (r *NetRunner) Stream(ctx context.Context, reqs []testbed.Request, emit func(idx int, m testbed.Measurement) error) error {
	n := len(reqs)
	if n == 0 {
		return ctx.Err()
	}
	for i, rq := range reqs {
		if err := rq.WireSafe(); err != nil {
			return fmt.Errorf("sweep: point %d: %w", i, err)
		}
	}
	if err := r.init(); err != nil {
		return err
	}
	workers := len(r.nodes) * r.conns
	if workers > n {
		workers = n
	}
	return Stream(ctx, n, Options{Workers: workers},
		func(fctx context.Context, sh Shard) (testbed.Measurement, error) {
			return r.dispatch(fctx, sh.Index, reqs[sh.Index])
		}, emit)
}

// dispatch round-trips one request through the fleet, re-dispatching the
// shard to another node on worker failures until the attempt budget —
// every node, twice — runs out. Request-level errors (a healthy node
// rejecting the request) are deterministic and surface immediately; a
// node whose handshake mismatches is poisoned and never retried.
func (r *NetRunner) dispatch(ctx context.Context, idx int, req testbed.Request) (testbed.Measurement, error) {
	attempts := 2 * len(r.nodes)
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return testbed.Measurement{}, err
		}
		node, wait, err := r.pickNode()
		if err != nil {
			return testbed.Measurement{}, noHealthySource(idx, err, lastErr)
		}
		if node == nil {
			// Every node is cooling off; wait out the soonest quarantine
			// (costing one attempt) instead of failing a recoverable
			// fleet.
			select {
			case <-time.After(wait):
				continue
			case <-ctx.Done():
				return testbed.Measurement{}, ctx.Err()
			}
		}
		c, err := node.acquire(ctx, r)
		if err != nil {
			if ctx.Err() != nil {
				return testbed.Measurement{}, ctx.Err()
			}
			if retryable(err) {
				node.health.failure(time.Now(), err)
			}
			lastErr = err
			continue
		}
		m, err := c.roundTrip(ctx, idx, req)
		if err == nil {
			node.health.success()
			r.release(c)
			return m, nil
		}
		c.destroy()
		if ctx.Err() != nil {
			return testbed.Measurement{}, ctx.Err()
		}
		if !retryable(err) {
			return testbed.Measurement{}, err
		}
		node.health.failure(time.Now(), err)
		lastErr = err
	}
	if lastErr == nil {
		lastErr = errors.New("every node quarantined after repeated failures")
	}
	return testbed.Measurement{}, fmt.Errorf("sweep: shard %d failed after %d dispatch attempts across %d node(s): %w",
		idx, attempts, len(r.nodes), lastErr)
}

// pickNode returns the next usable node in round-robin order. With every
// node quarantined it returns (nil, soonest release, nil); with every
// node poisoned it returns the poison error (the first node's reason
// wrapped, so errors.Is sees through to e.g. ErrVersionMismatch).
func (r *NetRunner) pickNode() (*netNode, time.Duration, error) {
	now := time.Now()
	start := int(r.rr.Add(1))
	soonest := time.Duration(-1)
	var poisons []error
	for k := 0; k < len(r.nodes); k++ {
		nd := r.nodes[(start+k)%len(r.nodes)]
		if err := nd.health.poisoned(); err != nil {
			poisons = append(poisons, err)
			continue
		}
		if wait := nd.health.quarantinedFor(now); wait > 0 {
			if soonest < 0 || wait < soonest {
				soonest = wait
			}
			continue
		}
		return nd, 0, nil
	}
	if len(poisons) == len(r.nodes) {
		err := fmt.Errorf("every node rejected: %w", poisons[0])
		for _, p := range poisons[1:] {
			err = fmt.Errorf("%w; %v", err, p)
		}
		return nil, 0, err
	}
	if soonest >= 0 {
		return nil, soonest, nil
	}
	// Poisoned nodes plus none quarantined can only mean a mixed fleet
	// where the healthy nodes were consumed by the loop above — cannot
	// happen, but fail loudly rather than spin.
	return nil, 0, errors.New("no usable node")
}

// acquire pops an idle connection or dials a fresh one.
func (nd *netNode) acquire(ctx context.Context, r *NetRunner) (*netConn, error) {
	nd.mu.Lock()
	if k := len(nd.idle); k > 0 {
		c := nd.idle[k-1]
		nd.idle = nd.idle[:k-1]
		nd.mu.Unlock()
		return c, nil
	}
	nd.mu.Unlock()
	return r.dialNode(ctx, nd)
}

// dialNode opens, keepalives, and handshakes one connection to a node.
// Transport failures are retryable worker failures; a version mismatch
// poisons the node permanently and surfaces as a non-retryable error.
func (r *NetRunner) dialNode(ctx context.Context, nd *netNode) (*netConn, error) {
	dctx, cancel := context.WithTimeout(ctx, r.timeout)
	defer cancel()
	d := net.Dialer{KeepAlive: netKeepAlive}
	conn, err := d.DialContext(dctx, "tcp", nd.addr)
	if err != nil {
		return nil, &workerFailure{fmt.Errorf("dial node %s: %w", nd.addr, err)}
	}
	c := &netConn{runner: r, node: nd, conn: conn, br: bufio.NewReader(conn)}
	_ = conn.SetReadDeadline(time.Now().Add(r.timeout))
	switch _, err := testbed.ReadHello(c.br); {
	case errors.Is(err, testbed.ErrVersionMismatch):
		c.close()
		perr := fmt.Errorf("sweep: node %s rejected: %w", nd.addr, err)
		nd.health.poisonWith(perr)
		return nil, perr
	case err != nil:
		c.close()
		return nil, &workerFailure{fmt.Errorf("node %s: no handshake: %w", nd.addr, err)}
	}
	_ = conn.SetReadDeadline(time.Time{})
	r.liveMu.Lock()
	if r.liveClosed {
		r.liveMu.Unlock()
		c.close()
		return nil, ErrRunnerClosed
	}
	r.live[c] = struct{}{}
	r.liveMu.Unlock()
	return c, nil
}

// release returns a healthy connection to its node's idle stack (or
// closes it when the runner has been closed meanwhile).
func (r *NetRunner) release(c *netConn) {
	r.liveMu.Lock()
	closed := r.liveClosed
	r.liveMu.Unlock()
	if closed {
		c.destroy()
		return
	}
	c.node.mu.Lock()
	c.node.idle = append(c.node.idle, c)
	c.node.mu.Unlock()
}

// Close closes every connection — idle and in-flight — and marks the
// runner unusable. Call it after all Run/Stream calls have returned.
func (r *NetRunner) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	if !r.started || r.startErr != nil {
		return nil
	}
	r.liveMu.Lock()
	r.liveClosed = true
	for c := range r.live {
		c.close()
	}
	r.live = nil
	r.liveMu.Unlock()
	for _, nd := range r.nodes {
		nd.mu.Lock()
		nd.idle = nil
		nd.mu.Unlock()
	}
	return nil
}

// netConn is one live dispatcher connection to a serve node.
type netConn struct {
	runner    *NetRunner
	node      *netNode
	conn      net.Conn
	br        *bufio.Reader
	closeOnce sync.Once
}

// roundTrip sends one request and awaits its response. Cancelation
// closes the connection to unblock the in-flight read, so a canceled
// shard returns promptly instead of hanging on a socket.
func (c *netConn) roundTrip(ctx context.Context, idx int, req testbed.Request) (testbed.Measurement, error) {
	type rt struct {
		m   testbed.Measurement
		err error
	}
	done := make(chan rt, 1)
	go func() {
		if err := testbed.WriteFrame(c.conn, testbed.WireRequest{ID: idx, Req: req}); err != nil {
			done <- rt{err: &workerFailure{fmt.Errorf("node %s: write: %w", c.node.addr, err)}}
			return
		}
		var resp testbed.WireResponse
		if err := testbed.ReadFrame(c.br, &resp); err != nil {
			done <- rt{err: &workerFailure{fmt.Errorf("node %s died mid-shard (read failed: %v)", c.node.addr, err)}}
			return
		}
		switch {
		case resp.ID != idx:
			done <- rt{err: &workerFailure{fmt.Errorf("node %s answered id %d to request %d", c.node.addr, resp.ID, idx)}}
		case resp.Err != "":
			done <- rt{err: fmt.Errorf("node %s: %s", c.node.addr, sanitizeLine(resp.Err))}
		default:
			done <- rt{m: resp.M}
		}
	}()
	select {
	case r := <-done:
		return r.m, r.err
	case <-ctx.Done():
		c.destroy()
		return testbed.Measurement{}, ctx.Err()
	}
}

// close shuts the socket (idempotent).
func (c *netConn) close() {
	c.closeOnce.Do(func() { _ = c.conn.Close() })
}

// destroy closes the connection and drops it from the runner's live set.
func (c *netConn) destroy() {
	c.close()
	r := c.runner
	if r == nil {
		return
	}
	r.liveMu.Lock()
	delete(r.live, c)
	r.liveMu.Unlock()
}
