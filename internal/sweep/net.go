package sweep

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/testbed"
)

// Defaults for the network backend.
const (
	// netConnsPerNode is the default number of concurrent connections a
	// dispatcher opens per node. A serve node answers one batch at a
	// time per connection, and the dispatcher cannot see a remote node's
	// core count, so a small fixed fan-out per node keeps several
	// batches in flight without assuming anything about the fleet.
	netConnsPerNode = 4
	// netDialTimeout bounds connection establishment plus the handshake
	// read.
	netDialTimeout = 5 * time.Second
	// netKeepAlive is the TCP keepalive period on dispatcher
	// connections, so a silently vanished node (power loss, network
	// partition) surfaces as a read error instead of a wedged socket.
	netKeepAlive = 30 * time.Second
)

// NetRunner executes requests across a fleet of serve nodes — processes
// running `xrperf serve` (testbed.ServeListener) — over TCP, speaking
// the same batched frame protocol the proc backend speaks over pipes.
// Connections are dialed lazily, verified against the node's handshake
// (protocol + physics version; a mismatched node is rejected with a
// clear error and never used), codec-negotiated per connection (binary
// when the node advertises it, JSON otherwise — a mixed fleet produces
// the same bytes either way), kept alive across Run/Stream calls (Close
// reaps them), and replaced transparently when they break. Requests ride
// in multi-request WireBatch frames with up to Pipeline batches
// outstanding per connection.
//
// Failure semantics extend the proc backend's: a node that dies
// mid-batch — crash, disconnect, kill — has its unanswered batches
// re-dispatched to a healthy node, and a node that keeps failing is
// quarantined with exponential backoff (sourceHealth) so the fleet
// routes around it and probes it again later. Requests must be
// wire-safe (Request.WireSafe); measurements depend only on request
// content and the deterministic hidden physics, so any healthy node
// produces the same bytes and re-dispatch never changes the output.
type NetRunner struct {
	// Nodes lists the serve-node addresses (host:port). Required.
	Nodes []string
	// ConnsPerNode bounds concurrent connections per node; 0 or
	// negative means netConnsPerNode.
	ConnsPerNode int
	// DialTimeout bounds dial + handshake per connection attempt; 0
	// means netDialTimeout.
	DialTimeout time.Duration
	// Batch caps requests per frame; 0 means DefaultBatch. Small grids
	// use smaller batches automatically to keep every connection busy.
	Batch int
	// Pipeline is the window of outstanding batches per connection; 0
	// means DefaultPipeline.
	Pipeline int
	// Codec forces the frame codec ("json" or "binary"); empty
	// negotiates per connection from the node's advertisement. A forced
	// codec a node does not speak poisons that node like a version
	// mismatch.
	Codec string

	mu       sync.Mutex
	started  bool
	startErr error
	closed   bool
	nodes    []*netNode
	conns    int
	timeout  time.Duration
	rr       atomic.Int64

	liveMu     sync.Mutex
	liveClosed bool
	live       map[*netConn]struct{}
}

// netNode is the dispatcher's view of one serve node: its address, its
// health, and a stack of idle connections ready for the next batch.
type netNode struct {
	addr   string
	health sourceHealth

	mu   sync.Mutex
	idle []*netConn
}

// init resolves the configuration once.
func (r *NetRunner) init() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrRunnerClosed
	}
	if r.started {
		return r.startErr
	}
	r.started = true
	if len(r.Nodes) == 0 {
		r.startErr = errors.New("sweep: net runner needs at least one node address")
		return r.startErr
	}
	if r.Codec != "" && !testbed.KnownCodec(r.Codec) {
		r.startErr = fmt.Errorf("sweep: unknown frame codec %q", r.Codec)
		return r.startErr
	}
	r.nodes = make([]*netNode, len(r.Nodes))
	for i, addr := range r.Nodes {
		r.nodes[i] = &netNode{addr: addr}
	}
	r.conns = r.ConnsPerNode
	if r.conns <= 0 {
		r.conns = netConnsPerNode
	}
	r.timeout = r.DialTimeout
	if r.timeout <= 0 {
		r.timeout = netDialTimeout
	}
	r.live = make(map[*netConn]struct{})
	return nil
}

// Run implements Runner.
func (r *NetRunner) Run(ctx context.Context, reqs []testbed.Request) ([]testbed.Measurement, error) {
	return collectStream(ctx, len(reqs), func(ctx context.Context, emit func(int, testbed.Measurement) error) error {
		return r.Stream(ctx, reqs, emit)
	})
}

// Stream implements Runner: batches the requests across the fleet with
// the same ordered-merge and lowest-index error semantics as every
// other backend (runBatches mirrors the in-process engine exactly).
func (r *NetRunner) Stream(ctx context.Context, reqs []testbed.Request, emit func(idx int, m testbed.Measurement) error) error {
	n := len(reqs)
	if n == 0 {
		return ctx.Err()
	}
	for i, rq := range reqs {
		if err := rq.WireSafe(); err != nil {
			return fmt.Errorf("sweep: point %d: %w", i, err)
		}
	}
	if err := r.init(); err != nil {
		return err
	}
	attempts := 2 * len(r.nodes)
	cfg := batchConfig{
		sessions: len(r.nodes) * r.conns,
		batch:    r.Batch,
		depth:    r.Pipeline,
		budget:   attempts,
		source:   netSource{r},
		givingUp: func(j *batchJob) error {
			last := j.lastErr
			if last == nil {
				last = errors.New("every node quarantined after repeated failures")
			}
			return fmt.Errorf("sweep: shard %d failed after %d dispatch attempts across %d node(s): %w",
				j.off, attempts, len(r.nodes), last)
		},
	}
	return runBatches(ctx, reqs, cfg, emit)
}

// netSource checks fleet connections out for the batch dispatcher.
type netSource struct{ r *NetRunner }

// acquire picks a usable node and pops or dials a connection to it. A
// fully poisoned fleet is terminal (every node rejected the handshake);
// a fully quarantined one waits out the soonest release and consumes an
// attempt; everything else — dial failures, broken handshakes, a poison
// discovered on this very dial — consumes an attempt and lets the
// dispatcher route the batch elsewhere.
func (s netSource) acquire(cctx context.Context) (batchTransport, error) {
	r := s.r
	if err := cctx.Err(); err != nil {
		return nil, &terminalError{err: err}
	}
	node, wait, err := r.pickNode()
	if err != nil {
		return nil, &terminalError{err: err, needsIdx: true}
	}
	if node == nil {
		// Every node is cooling off; wait out the soonest quarantine
		// (costing one attempt) instead of failing a recoverable fleet.
		select {
		case <-time.After(wait):
			return nil, errAllCooling
		case <-cctx.Done():
			return nil, &terminalError{err: cctx.Err()}
		}
	}
	c, err := node.acquire(cctx, r)
	if err != nil {
		if cctx.Err() != nil {
			return nil, &terminalError{err: cctx.Err()}
		}
		if retryable(err) {
			//xrlint:allow determinism -- quarantine backoff clock for node health, never measurement data
			node.health.failure(time.Now(), err)
		}
		return nil, err
	}
	return &netTransport{r: r, c: c}, nil
}

// pickNode returns the next usable node in round-robin order. With every
// node quarantined it returns (nil, soonest release, nil); with every
// node poisoned it returns the poison error (the first node's reason
// wrapped, so errors.Is sees through to e.g. ErrVersionMismatch).
func (r *NetRunner) pickNode() (*netNode, time.Duration, error) {
	now := time.Now() //xrlint:allow determinism -- quarantine-release comparison clock, never measurement data
	start := int(r.rr.Add(1))
	soonest := time.Duration(-1)
	var poisons []error
	for k := 0; k < len(r.nodes); k++ {
		nd := r.nodes[(start+k)%len(r.nodes)]
		if err := nd.health.poisoned(); err != nil {
			poisons = append(poisons, err)
			continue
		}
		if wait := nd.health.quarantinedFor(now); wait > 0 {
			if soonest < 0 || wait < soonest {
				soonest = wait
			}
			continue
		}
		return nd, 0, nil
	}
	if len(poisons) == len(r.nodes) {
		err := fmt.Errorf("every node rejected: %w", poisons[0])
		for _, p := range poisons[1:] {
			err = fmt.Errorf("%w; %v", err, p)
		}
		return nil, 0, err
	}
	if soonest >= 0 {
		return nil, soonest, nil
	}
	// Poisoned nodes plus none quarantined can only mean a mixed fleet
	// where the healthy nodes were consumed by the loop above — cannot
	// happen, but fail loudly rather than spin.
	return nil, 0, errors.New("no usable node")
}

// acquire pops an idle connection or dials a fresh one.
func (nd *netNode) acquire(ctx context.Context, r *NetRunner) (*netConn, error) {
	nd.mu.Lock()
	if k := len(nd.idle); k > 0 {
		c := nd.idle[k-1]
		nd.idle = nd.idle[:k-1]
		nd.mu.Unlock()
		return c, nil
	}
	nd.mu.Unlock()
	return r.dialNode(ctx, nd)
}

// dialNode opens, keepalives, handshakes, and codec-negotiates one
// connection to a node. Transport failures are retryable worker
// failures; a version mismatch — or a forced codec the node does not
// advertise — poisons the node permanently and surfaces as a
// non-retryable error.
func (r *NetRunner) dialNode(ctx context.Context, nd *netNode) (*netConn, error) {
	dctx, cancel := context.WithTimeout(ctx, r.timeout)
	defer cancel()
	d := net.Dialer{KeepAlive: netKeepAlive}
	conn, err := d.DialContext(dctx, "tcp", nd.addr)
	if err != nil {
		return nil, &workerFailure{fmt.Errorf("dial node %s: %w", nd.addr, err)}
	}
	c := &netConn{runner: r, node: nd, conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}
	//xrlint:allow determinism -- connection read deadline, operational timeout rather than measurement data
	_ = conn.SetReadDeadline(time.Now().Add(r.timeout))
	h, err := testbed.ReadHello(c.br)
	switch {
	case errors.Is(err, testbed.ErrVersionMismatch):
		c.close()
		perr := fmt.Errorf("sweep: node %s rejected: %w", nd.addr, err)
		nd.health.poisonWith(perr)
		return nil, perr
	case err != nil:
		c.close()
		return nil, &workerFailure{fmt.Errorf("node %s: no handshake: %w", nd.addr, err)}
	}
	codec := r.Codec
	if codec == "" {
		codec = h.PickCodec()
	} else if !h.Supports(codec) {
		c.close()
		perr := fmt.Errorf("sweep: node %s rejected: %w",
			nd.addr, fmt.Errorf("%w: node does not speak codec %q", testbed.ErrVersionMismatch, codec))
		nd.health.poisonWith(perr)
		return nil, perr
	}
	c.codec = codec
	if err := testbed.WriteFrame(c.bw, testbed.WireStart{Codec: codec}); err != nil {
		c.close()
		return nil, &workerFailure{fmt.Errorf("node %s: start: %w", nd.addr, err)}
	}
	if err := c.bw.Flush(); err != nil {
		c.close()
		return nil, &workerFailure{fmt.Errorf("node %s: start: %w", nd.addr, err)}
	}
	_ = conn.SetReadDeadline(time.Time{})
	r.liveMu.Lock()
	if r.liveClosed {
		r.liveMu.Unlock()
		c.close()
		return nil, ErrRunnerClosed
	}
	r.live[c] = struct{}{}
	r.liveMu.Unlock()
	return c, nil
}

// release returns a healthy connection to its node's idle stack (or
// closes it when the runner has been closed meanwhile).
func (r *NetRunner) release(c *netConn) {
	r.liveMu.Lock()
	closed := r.liveClosed
	r.liveMu.Unlock()
	if closed {
		c.destroy()
		return
	}
	c.node.mu.Lock()
	c.node.idle = append(c.node.idle, c)
	c.node.mu.Unlock()
}

// Close closes every connection — idle and in-flight — and marks the
// runner unusable. Call it after all Run/Stream calls have returned.
func (r *NetRunner) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	if !r.started || r.startErr != nil {
		return nil
	}
	r.liveMu.Lock()
	r.liveClosed = true
	for c := range r.live {
		c.close()
	}
	r.live = nil
	r.liveMu.Unlock()
	for _, nd := range r.nodes {
		nd.mu.Lock()
		nd.idle = nil
		nd.mu.Unlock()
	}
	return nil
}

// netConn is one live dispatcher connection to a serve node,
// post-handshake.
type netConn struct {
	runner    *NetRunner
	node      *netNode
	conn      net.Conn
	br        *bufio.Reader
	bw        *bufio.Writer
	codec     string
	closeOnce sync.Once
}

// netTransport adapts one fleet connection to the batch dispatcher.
type netTransport struct {
	r *NetRunner
	c *netConn
}

func (t *netTransport) send(b testbed.WireBatch) error {
	if err := testbed.WriteFrameCodec(t.c.bw, t.c.codec, b); err != nil {
		return &workerFailure{fmt.Errorf("node %s: write: %w", t.c.node.addr, err)}
	}
	if err := t.c.bw.Flush(); err != nil {
		return &workerFailure{fmt.Errorf("node %s: write: %w", t.c.node.addr, err)}
	}
	return nil
}

func (t *netTransport) recv() (testbed.WireBatchResult, error) {
	var res testbed.WireBatchResult
	if err := testbed.ReadFrameCodec(t.c.br, t.c.codec, &res); err != nil {
		return res, &workerFailure{fmt.Errorf("node %s died mid-shard (read failed: %v)", t.c.node.addr, err)}
	}
	return res, nil
}

func (t *netTransport) success() { t.c.node.health.success() }

func (t *netTransport) reject(msg string) error {
	// Request-level rejection from a healthy node: deterministic, never
	// retried.
	return fmt.Errorf("node %s: %s", t.c.node.addr, sanitizeLine(msg))
}

func (t *netTransport) corrupt(format string, args ...any) error {
	return &workerFailure{fmt.Errorf("node %s %s", t.c.node.addr, fmt.Sprintf(format, args...))}
}

func (t *netTransport) park() { t.r.release(t.c) }

func (t *netTransport) fail(cause error) {
	//xrlint:allow determinism -- quarantine backoff clock for node health, never measurement data
	t.c.node.health.failure(time.Now(), cause)
	t.c.destroy()
}

func (t *netTransport) abort() { t.c.destroy() }

func (t *netTransport) destroy() { t.c.destroy() }

// close shuts the socket (idempotent).
func (c *netConn) close() {
	c.closeOnce.Do(func() { _ = c.conn.Close() })
}

// destroy closes the connection and drops it from the runner's live set.
func (c *netConn) destroy() {
	c.close()
	r := c.runner
	if r == nil {
		return
	}
	r.liveMu.Lock()
	delete(r.live, c)
	r.liveMu.Unlock()
}
