package sweep

import (
	"fmt"

	"repro/internal/cnn"
	"repro/internal/device"
	"repro/internal/pipeline"
)

// Spec is one fully-resolved grid point: the scenario knobs the paper's
// evaluation grids range over.
type Spec struct {
	// Device is the client XR device.
	Device device.Device
	// Mode is the inference mode.
	Mode pipeline.InferenceMode
	// CNN optionally overrides the scenario's CNN for the chosen mode;
	// a zero-value model keeps the pipeline defaults.
	CNN cnn.Model
	// FrameSizePx2 is the frame size in the paper's pixel² unit.
	FrameSizePx2 float64
	// CPUFreqGHz is the requested operating clock; it is clamped to the
	// device maximum so one grid can span heterogeneous devices. Zero
	// means the device maximum.
	CPUFreqGHz float64
}

// Label renders a compact point identifier for tables and logs.
func (s Spec) Label() string {
	cnnName := s.CNN.Name
	if cnnName == "" {
		cnnName = "default"
	}
	return fmt.Sprintf("%s/%s/%s/%.0fpx²/%.2gGHz",
		s.Device.Name, s.Mode, cnnName, s.FrameSizePx2, s.effectiveFreq())
}

func (s Spec) effectiveFreq() float64 {
	f := s.CPUFreqGHz
	if f <= 0 || f > s.Device.CPUGHz {
		f = s.Device.CPUGHz
	}
	return f
}

// Scenario materializes the point as a pipeline scenario.
func (s Spec) Scenario(extra ...pipeline.Option) (*pipeline.Scenario, error) {
	opts := []pipeline.Option{
		pipeline.WithMode(s.Mode),
		pipeline.WithFrameSize(s.FrameSizePx2),
		pipeline.WithCPUFreq(s.effectiveFreq()),
	}
	if s.CNN.Name != "" {
		m := s.CNN
		opts = append(opts, func(sc *pipeline.Scenario) {
			switch s.Mode {
			case pipeline.ModeLocal:
				sc.LocalCNN = m
			case pipeline.ModeRemote:
				sc.RemoteCNN = m
			}
		})
	}
	opts = append(opts, extra...)
	sc, err := pipeline.NewScenario(s.Device, opts...)
	if err != nil {
		return nil, fmt.Errorf("sweep point %s: %w", s.Label(), err)
	}
	return sc, nil
}

// Grid is a cartesian scenario grid: the product of every non-empty
// dimension, enumerated in row-major order (devices outermost, CPU
// frequencies innermost) so point indices — and therefore shard seeds —
// are stable for a given grid shape.
type Grid struct {
	// Devices is the device axis (required).
	Devices []device.Device
	// Modes is the inference-mode axis; empty means local only.
	Modes []pipeline.InferenceMode
	// CNNs is the model axis; empty keeps the pipeline defaults.
	CNNs []cnn.Model
	// FrameSizes is the resolution axis (pixel² unit); empty means the
	// pipeline default of 500.
	FrameSizes []float64
	// CPUFreqs is the clock axis in GHz; empty means each device's
	// maximum. Entries are clamped per device.
	CPUFreqs []float64
}

func (g Grid) modes() []pipeline.InferenceMode {
	if len(g.Modes) == 0 {
		return []pipeline.InferenceMode{pipeline.ModeLocal}
	}
	return g.Modes
}

func (g Grid) cnns() []cnn.Model {
	if len(g.CNNs) == 0 {
		return []cnn.Model{{}}
	}
	return g.CNNs
}

func (g Grid) frameSizes() []float64 {
	if len(g.FrameSizes) == 0 {
		return []float64{500}
	}
	return g.FrameSizes
}

func (g Grid) cpuFreqs() []float64 {
	if len(g.CPUFreqs) == 0 {
		return []float64{0}
	}
	return g.CPUFreqs
}

// Size returns the number of grid points.
func (g Grid) Size() int {
	return len(g.Devices) * len(g.modes()) * len(g.cnns()) *
		len(g.frameSizes()) * len(g.cpuFreqs())
}

// Points enumerates the grid in its canonical order.
func (g Grid) Points() []Spec {
	out := make([]Spec, 0, g.Size())
	for _, dev := range g.Devices {
		for _, mode := range g.modes() {
			for _, model := range g.cnns() {
				for _, size := range g.frameSizes() {
					for _, freq := range g.cpuFreqs() {
						out = append(out, Spec{
							Device:       dev,
							Mode:         mode,
							CNN:          model,
							FrameSizePx2: size,
							CPUFreqGHz:   freq,
						})
					}
				}
			}
		}
	}
	return out
}
