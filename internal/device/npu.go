package device

import (
	"fmt"
)

// The paper notes that Eq. (3) "can also accommodate the allocation of TPU
// or NPUs depending on the data availability for proper training of the
// regression model", and likewise for Eq. (21). TriResourceModel and
// TriPowerModel realize that extension: a third quadratic branch for a
// neural accelerator, with utilization shares over CPU/GPU/NPU summing
// to 1.

// Shares is a utilization split across the three processing units.
type Shares struct {
	// CPU, GPU, NPU are the utilization fractions; they must be
	// non-negative and sum to 1.
	CPU, GPU, NPU float64
}

// Validate checks the split.
func (s Shares) Validate() error {
	if s.CPU < 0 || s.GPU < 0 || s.NPU < 0 {
		return fmt.Errorf("%w: shares %+v", ErrUtilization, s)
	}
	if sum := s.CPU + s.GPU + s.NPU; sum < 1-1e-9 || sum > 1+1e-9 {
		return fmt.Errorf("%w: shares sum to %v, want 1", ErrUtilization, sum)
	}
	return nil
}

// Clocks carries the operating frequencies of the three units in GHz.
type Clocks struct {
	CPU, GPU, NPU float64
}

// TriResourceModel extends Eq. (3) with an NPU branch:
//
//	c = ω_c·Q_cpu(f_c) + ω_g·Q_gpu(f_g) + ω_n·Q_npu(f_n)
type TriResourceModel struct {
	// CPU, GPU, NPU hold the per-branch quadratics.
	CPU, GPU, NPU ResourceCoeffs
	// MinResource floors the output.
	MinResource float64
}

// TriFromPaper extends the paper's published two-branch model with NPU
// coefficients. Mobile NPUs deliver far more effective throughput per GHz
// on CNN inference than CPUs; the default branch reflects a Kirin
// 9000-class NPU.
func TriFromPaper() TriResourceModel {
	base := PaperResourceModel()
	return TriResourceModel{
		CPU:         base.CPU,
		GPU:         base.GPU,
		NPU:         ResourceCoeffs{A0: 4.1, A1: 31.0, A2: 8.5},
		MinResource: base.MinResource,
	}
}

// Compute returns the allocated computation resource for the clocks and
// shares. Branches with zero share do not require a clock.
func (m TriResourceModel) Compute(clocks Clocks, shares Shares) (float64, error) {
	if err := shares.Validate(); err != nil {
		return 0, err
	}
	if shares.CPU > 0 && clocks.CPU <= 0 {
		return 0, fmt.Errorf("%w: f_c=%v GHz", ErrFrequency, clocks.CPU)
	}
	if shares.GPU > 0 && clocks.GPU <= 0 {
		return 0, fmt.Errorf("%w: f_g=%v GHz", ErrFrequency, clocks.GPU)
	}
	if shares.NPU > 0 && clocks.NPU <= 0 {
		return 0, fmt.Errorf("%w: f_n=%v GHz", ErrFrequency, clocks.NPU)
	}
	c := shares.CPU*m.CPU.Eval(clocks.CPU) +
		shares.GPU*m.GPU.Eval(clocks.GPU) +
		shares.NPU*m.NPU.Eval(clocks.NPU)
	if c < m.MinResource {
		c = m.MinResource
	}
	return c, nil
}

// TriPowerModel extends Eq. (21) with an NPU branch.
type TriPowerModel struct {
	// CPU, GPU, NPU hold the per-branch power curves.
	CPU, GPU, NPU PowerCoeffs
	// MinPowerW floors the output.
	MinPowerW float64
}

// TriPowerFromPaper extends the paper's published power model with an NPU
// branch: neural accelerators are markedly more power-efficient per unit
// of inference throughput.
func TriPowerFromPaper() TriPowerModel {
	base := PaperPowerModel()
	return TriPowerModel{
		CPU:       base.CPU,
		GPU:       base.GPU,
		NPU:       PowerCoeffs{B1: 2.4, B2: 0.35, B0: 0.3},
		MinPowerW: base.MinPowerW,
	}
}

// MeanPowerW returns the mean application power for the clocks and
// shares.
func (m TriPowerModel) MeanPowerW(clocks Clocks, shares Shares) (float64, error) {
	if err := shares.Validate(); err != nil {
		return 0, err
	}
	if shares.CPU > 0 && clocks.CPU <= 0 {
		return 0, fmt.Errorf("%w: f_c=%v GHz", ErrFrequency, clocks.CPU)
	}
	if shares.GPU > 0 && clocks.GPU <= 0 {
		return 0, fmt.Errorf("%w: f_g=%v GHz", ErrFrequency, clocks.GPU)
	}
	if shares.NPU > 0 && clocks.NPU <= 0 {
		return 0, fmt.Errorf("%w: f_n=%v GHz", ErrFrequency, clocks.NPU)
	}
	p := shares.CPU*m.CPU.Eval(clocks.CPU) +
		shares.GPU*m.GPU.Eval(clocks.GPU) +
		shares.NPU*m.NPU.Eval(clocks.NPU)
	if p < m.MinPowerW {
		p = m.MinPowerW
	}
	return p, nil
}

// AsTwoBranch projects the tri-branch model onto the two-branch
// latency.ResourceModel interface for a pinned NPU allocation, so
// NPU-equipped scenarios flow through the standard pipeline without
// changing Eq. (1)'s composition. The returned model, evaluated at the
// returned CPU share ω_c' = ω_c/(ω_c+ω_g), reproduces the tri-branch
// total exactly: the CPU/GPU quadratics are scaled by the non-NPU budget
// and the fixed NPU contribution is folded into both branch constants.
func (m TriResourceModel) AsTwoBranch(clocks Clocks, shares Shares) (ResourceModel, float64, error) {
	if err := shares.Validate(); err != nil {
		return ResourceModel{}, 0, err
	}
	if shares.NPU > 0 && clocks.NPU <= 0 {
		return ResourceModel{}, 0, fmt.Errorf("%w: f_n=%v GHz", ErrFrequency, clocks.NPU)
	}
	npu := shares.NPU * m.NPU.Eval(clocks.NPU)
	rest := shares.CPU + shares.GPU
	scale := func(c ResourceCoeffs) ResourceCoeffs {
		return ResourceCoeffs{
			A0: rest*c.A0 + npu,
			A1: rest * c.A1,
			A2: rest * c.A2,
		}
	}
	out := ResourceModel{
		CPU:         scale(m.CPU),
		GPU:         scale(m.GPU),
		MinResource: m.MinResource,
	}
	// Renormalized CPU share; a pure-NPU split degenerates to constant
	// branches where any share reproduces the total.
	share := 0.0
	if rest > 0 {
		share = shares.CPU / rest
	}
	return out, share, nil
}
