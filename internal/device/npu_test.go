package device

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestSharesValidate(t *testing.T) {
	tests := []struct {
		name   string
		shares Shares
		ok     bool
	}{
		{name: "cpu only", shares: Shares{CPU: 1}, ok: true},
		{name: "even three-way", shares: Shares{CPU: 1.0 / 3, GPU: 1.0 / 3, NPU: 1.0 / 3}, ok: true},
		{name: "npu heavy", shares: Shares{CPU: 0.1, GPU: 0.1, NPU: 0.8}, ok: true},
		{name: "sum below one", shares: Shares{CPU: 0.5}},
		{name: "sum above one", shares: Shares{CPU: 0.8, GPU: 0.8}},
		{name: "negative", shares: Shares{CPU: 1.2, GPU: -0.2}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.shares.Validate()
			if tt.ok && err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if !tt.ok && !errors.Is(err, ErrUtilization) {
				t.Fatalf("error = %v, want ErrUtilization", err)
			}
		})
	}
}

func TestTriResourceMatchesTwoBranchWhenNPUZero(t *testing.T) {
	tri := TriFromPaper()
	two := PaperResourceModel()
	clocks := Clocks{CPU: 2.5, GPU: 0.76, NPU: 1}
	for _, wc := range []float64{0, 0.3, 0.7, 1} {
		got, err := tri.Compute(clocks, Shares{CPU: wc, GPU: 1 - wc})
		if err != nil {
			t.Fatal(err)
		}
		want, err := two.Compute(clocks.CPU, clocks.GPU, wc)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("ω_c=%v: tri %v vs two-branch %v", wc, got, want)
		}
	}
}

func TestNPUBoostsResource(t *testing.T) {
	tri := TriFromPaper()
	clocks := Clocks{CPU: 2.5, GPU: 0.76, NPU: 1.2}
	withoutNPU, err := tri.Compute(clocks, Shares{CPU: 0.5, GPU: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	withNPU, err := tri.Compute(clocks, Shares{CPU: 0.3, GPU: 0.3, NPU: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if withNPU <= withoutNPU {
		t.Fatalf("NPU share must raise resource: %v vs %v", withNPU, withoutNPU)
	}
}

func TestTriComputeValidation(t *testing.T) {
	tri := TriFromPaper()
	if _, err := tri.Compute(Clocks{CPU: 2, GPU: 1, NPU: 0},
		Shares{CPU: 0.5, GPU: 0.3, NPU: 0.2}); !errors.Is(err, ErrFrequency) {
		t.Fatal("npu share without clock must error")
	}
	if _, err := tri.Compute(Clocks{CPU: 0, GPU: 1, NPU: 1},
		Shares{CPU: 0.5, GPU: 0.5}); !errors.Is(err, ErrFrequency) {
		t.Fatal("cpu share without clock must error")
	}
	if _, err := tri.Compute(Clocks{CPU: 2, GPU: 0, NPU: 1},
		Shares{GPU: 1}); !errors.Is(err, ErrFrequency) {
		t.Fatal("gpu share without clock must error")
	}
	// Zero-share branches do not need clocks.
	if _, err := tri.Compute(Clocks{NPU: 1}, Shares{NPU: 1}); err != nil {
		t.Fatalf("pure NPU: %v", err)
	}
}

func TestTriPowerNPUEfficiency(t *testing.T) {
	p := TriPowerFromPaper()
	clocks := Clocks{CPU: 2.5, GPU: 0.76, NPU: 1.2}
	cpuHeavy, err := p.MeanPowerW(clocks, Shares{CPU: 1})
	if err != nil {
		t.Fatal(err)
	}
	npuHeavy, err := p.MeanPowerW(clocks, Shares{NPU: 1})
	if err != nil {
		t.Fatal(err)
	}
	if npuHeavy >= cpuHeavy {
		t.Fatalf("NPU power %v must be below CPU %v at these clocks", npuHeavy, cpuHeavy)
	}
	if _, err := p.MeanPowerW(Clocks{}, Shares{CPU: 1}); !errors.Is(err, ErrFrequency) {
		t.Fatal("missing clock must error")
	}
	if _, err := p.MeanPowerW(clocks, Shares{}); !errors.Is(err, ErrUtilization) {
		t.Fatal("zero shares must error")
	}
}

func TestAsTwoBranchReproducesTriTotal(t *testing.T) {
	tri := TriFromPaper()
	clocks := Clocks{CPU: 2.2, GPU: 0.7, NPU: 1.1}
	shares := Shares{CPU: 0.35, GPU: 0.25, NPU: 0.4}
	want, err := tri.Compute(clocks, shares)
	if err != nil {
		t.Fatal(err)
	}
	two, wcPrime, err := tri.AsTwoBranch(clocks, shares)
	if err != nil {
		t.Fatal(err)
	}
	got, err := two.Compute(clocks.CPU, clocks.GPU, wcPrime)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("projection = %v, tri total = %v", got, want)
	}
}

func TestAsTwoBranchPureNPU(t *testing.T) {
	tri := TriFromPaper()
	clocks := Clocks{CPU: 2, GPU: 0.7, NPU: 1.5}
	shares := Shares{NPU: 1}
	want, err := tri.Compute(clocks, shares)
	if err != nil {
		t.Fatal(err)
	}
	two, wcPrime, err := tri.AsTwoBranch(clocks, shares)
	if err != nil {
		t.Fatal(err)
	}
	got, err := two.Compute(clocks.CPU, clocks.GPU, wcPrime)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("pure-NPU projection = %v, want %v", got, want)
	}
}

func TestAsTwoBranchValidation(t *testing.T) {
	tri := TriFromPaper()
	if _, _, err := tri.AsTwoBranch(Clocks{CPU: 2, GPU: 1},
		Shares{CPU: 0.5, NPU: 0.5}); !errors.Is(err, ErrFrequency) {
		t.Fatal("npu share without clock must error")
	}
	if _, _, err := tri.AsTwoBranch(Clocks{CPU: 2, GPU: 1, NPU: 1},
		Shares{CPU: 2}); !errors.Is(err, ErrUtilization) {
		t.Fatal("bad shares must error")
	}
}

// Property: the two-branch projection reproduces the tri-branch total for
// random valid splits and clocks.
func TestAsTwoBranchProjectionProperty(t *testing.T) {
	tri := TriFromPaper()
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		a, b, c := rng.Float64(), rng.Float64(), rng.Float64()
		sum := a + b + c
		if sum == 0 {
			return true
		}
		shares := Shares{CPU: a / sum, GPU: b / sum, NPU: c / sum}
		clocks := Clocks{
			CPU: 1 + 2*rng.Float64(),
			GPU: 0.4 + rng.Float64(),
			NPU: 0.5 + rng.Float64(),
		}
		want, err := tri.Compute(clocks, shares)
		if err != nil {
			return false
		}
		two, wcPrime, err := tri.AsTwoBranch(clocks, shares)
		if err != nil {
			return false
		}
		got, err := two.Compute(clocks.CPU, clocks.GPU, wcPrime)
		if err != nil {
			return false
		}
		return math.Abs(got-want) < 1e-9*(1+want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
