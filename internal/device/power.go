package device

import (
	"fmt"
)

// Default power-accounting constants of Section V-B. Base power covers OS
// background activity (system clock, display, connectivity) plus
// semiconductor leakage; the thermal fraction is the share of consumed
// energy converted to heat (E_θ).
const (
	// DefaultBasePowerW is the always-on background power of an XR
	// device in watts.
	DefaultBasePowerW = 0.85
	// DefaultThermalFraction is the share of application energy that
	// dissipates as heat.
	DefaultThermalFraction = 0.06
)

// PowerCoeffs holds the quadratic coefficients of one processing unit's
// contribution to mean power: b1·f − b2·f² − b0 (the paper writes the
// branches in this sign convention, Eq. 21).
type PowerCoeffs struct {
	B1, B2, B0 float64
}

// Eval evaluates the branch at frequency f (GHz).
func (c PowerCoeffs) Eval(f float64) float64 {
	return c.B1*f - c.B2*f*f - c.B0
}

// PowerModel is the mean-power model of Eq. (21):
//
//	P_mean = ω_c·(CPU branch in f_c) + (1−ω_c)·(GPU branch in f_g)
//
// plus base power and thermal accounting from Section V-B.
type PowerModel struct {
	// CPU holds the CPU-branch coefficients.
	CPU PowerCoeffs
	// GPU holds the GPU-branch coefficients.
	GPU PowerCoeffs
	// R2 records the regression fit quality (0 when unknown).
	R2 float64
	// BasePowerW is the always-on background draw.
	BasePowerW float64
	// ThermalFraction is the heat-dissipation share of dynamic energy.
	ThermalFraction float64
	// MinPowerW floors the dynamic power: the regression extrapolates
	// negative below its training range, which is non-physical.
	MinPowerW float64
}

// PaperPowerModel returns Eq. (21) with the published coefficients
// (R² = 0.863):
//
//	P = ω_c(18.85f_c − 3.64f_c² − 20.74) + (1−ω_c)(187.48f_g − 135.11f_g² − 62.197)
func PaperPowerModel() PowerModel {
	return PowerModel{
		CPU:             PowerCoeffs{B1: 18.85, B2: 3.64, B0: 20.74},
		GPU:             PowerCoeffs{B1: 187.48, B2: 135.11, B0: 62.197},
		R2:              0.863,
		BasePowerW:      DefaultBasePowerW,
		ThermalFraction: DefaultThermalFraction,
		MinPowerW:       0.25,
	}
}

// MeanPowerW returns the application mean power P_mean (W) for the given
// clocks and CPU utilization share.
func (m PowerModel) MeanPowerW(fc, fg, wc float64) (float64, error) {
	if wc < 0 || wc > 1 {
		return 0, fmt.Errorf("%w: ω_c=%v", ErrUtilization, wc)
	}
	if wc > 0 && fc <= 0 {
		return 0, fmt.Errorf("%w: f_c=%v GHz", ErrFrequency, fc)
	}
	if wc < 1 && fg <= 0 {
		return 0, fmt.Errorf("%w: f_g=%v GHz", ErrFrequency, fg)
	}
	p := wc*m.CPU.Eval(fc) + (1-wc)*m.GPU.Eval(fg)
	if p < m.MinPowerW {
		p = m.MinPowerW
	}
	return p, nil
}

// SegmentEnergyMJ integrates the mean power over a segment latency:
// E = P·L, with power in watts and latency in milliseconds, so the result
// is millijoules (1 W·ms = 1 mJ). This realizes the per-segment ∫P dt
// terms of Eq. (20) under the paper's mean-power treatment.
func (m PowerModel) SegmentEnergyMJ(powerW, latencyMs float64) (float64, error) {
	if powerW < 0 {
		return 0, fmt.Errorf("device: negative power %v W", powerW)
	}
	if latencyMs < 0 {
		return 0, fmt.Errorf("device: negative latency %v ms", latencyMs)
	}
	return powerW * latencyMs, nil
}

// BaseEnergyMJ returns E_base over an interval: the background energy that
// accrues whether or not the XR application is active.
func (m PowerModel) BaseEnergyMJ(intervalMs float64) (float64, error) {
	if intervalMs < 0 {
		return 0, fmt.Errorf("device: negative interval %v ms", intervalMs)
	}
	return m.BasePowerW * intervalMs, nil
}

// ThermalEnergyMJ returns E_θ, the heat-dissipated share of the dynamic
// energy consumed during the application.
func (m PowerModel) ThermalEnergyMJ(dynamicEnergyMJ float64) (float64, error) {
	if dynamicEnergyMJ < 0 {
		return 0, fmt.Errorf("device: negative energy %v mJ", dynamicEnergyMJ)
	}
	return m.ThermalFraction * dynamicEnergyMJ, nil
}
