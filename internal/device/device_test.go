package device

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestCatalogCompleteness(t *testing.T) {
	cat := Catalog()
	if len(cat) != 8 {
		t.Fatalf("catalog size = %d, want 8 (XR1–XR7 + Edge)", len(cat))
	}
	names := map[string]bool{}
	for _, d := range cat {
		if d.Name == "" || d.Model == "" || d.SoC == "" {
			t.Fatalf("incomplete entry: %+v", d)
		}
		if d.CPUGHz <= 0 || d.GPUGHz <= 0 || d.RAMGB <= 0 || d.MemBandwidthGBs <= 0 {
			t.Fatalf("non-positive spec in %s", d.Name)
		}
		if names[d.Name] {
			t.Fatalf("duplicate device name %s", d.Name)
		}
		names[d.Name] = true
	}
	for _, want := range []string{"XR1", "XR2", "XR3", "XR4", "XR5", "XR6", "XR7", "Edge"} {
		if !names[want] {
			t.Fatalf("catalog missing %s", want)
		}
	}
}

func TestCatalogReturnsCopy(t *testing.T) {
	a := Catalog()
	a[0].Name = "mutated"
	b := Catalog()
	if b[0].Name == "mutated" {
		t.Fatal("Catalog must return a fresh slice")
	}
}

func TestByName(t *testing.T) {
	d, err := ByName("XR6")
	if err != nil {
		t.Fatal(err)
	}
	if d.Model != "Meta Quest 2" {
		t.Fatalf("XR6 model = %q", d.Model)
	}
	if _, err := ByName("XR99"); !errors.Is(err, ErrUnknownDevice) {
		t.Fatalf("unknown lookup error = %v", err)
	}
}

func TestTrainTestSplit(t *testing.T) {
	train := TrainDevices()
	test := TestDevices()
	wantTrain := map[string]bool{"XR1": true, "XR3": true, "XR5": true, "XR6": true}
	wantTest := map[string]bool{"XR2": true, "XR4": true, "XR7": true}
	if len(train) != len(wantTrain) {
		t.Fatalf("train devices = %d, want %d", len(train), len(wantTrain))
	}
	for _, d := range train {
		if !wantTrain[d.Name] {
			t.Fatalf("unexpected train device %s", d.Name)
		}
	}
	if len(test) != len(wantTest) {
		t.Fatalf("test devices = %d, want %d", len(test), len(wantTest))
	}
	for _, d := range test {
		if !wantTest[d.Name] {
			t.Fatalf("unexpected test device %s", d.Name)
		}
	}
}

func TestEdgeServer(t *testing.T) {
	e := EdgeServer()
	if e.Class != ClassEdge {
		t.Fatalf("edge class = %v", e.Class)
	}
	if e.Model != "Nvidia Jetson AGX Xavier" {
		t.Fatalf("edge model = %q", e.Model)
	}
}

func TestClassString(t *testing.T) {
	if ClassXR.String() != "xr" || ClassEdge.String() != "edge" {
		t.Fatal("class strings wrong")
	}
	if Class(9).String() == "" {
		t.Fatal("unknown class must render non-empty")
	}
}

func TestPaperResourceModelValues(t *testing.T) {
	m := PaperResourceModel()
	// Pure CPU at 3 GHz: 18.24 + 1.84·9 − 6.02·3 = 16.74.
	got, err := m.Compute(3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-16.74) > 1e-9 {
		t.Fatalf("c(3GHz CPU) = %v, want 16.74", got)
	}
	// Pure GPU at 1 GHz: 193.67 + 400.96 − 558.29 = 36.34.
	got, err = m.Compute(1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-36.34) > 1e-9 {
		t.Fatalf("c(1GHz GPU) = %v, want 36.34", got)
	}
	if m.R2 != 0.87 {
		t.Fatalf("paper R² = %v, want 0.87", m.R2)
	}
}

func TestResourceModelValidation(t *testing.T) {
	m := PaperResourceModel()
	if _, err := m.Compute(2, 1, -0.1); !errors.Is(err, ErrUtilization) {
		t.Fatal("negative utilization must error")
	}
	if _, err := m.Compute(2, 1, 1.1); !errors.Is(err, ErrUtilization) {
		t.Fatal("utilization > 1 must error")
	}
	if _, err := m.Compute(0, 1, 1); !errors.Is(err, ErrFrequency) {
		t.Fatal("zero CPU freq with CPU share must error")
	}
	if _, err := m.Compute(2, 0, 0); !errors.Is(err, ErrFrequency) {
		t.Fatal("zero GPU freq with GPU share must error")
	}
	// Unused branch's frequency is not validated: a pure-GPU task does
	// not need a CPU clock.
	if _, err := m.Compute(0, 1, 0); err != nil {
		t.Fatalf("pure GPU with zero fc: %v", err)
	}
}

func TestResourceModelFloor(t *testing.T) {
	m := PaperResourceModel()
	// GPU branch at f_g = 0.7: 193.67 + 400.96·0.49 − 558.29·0.7 ≈ 0.34,
	// below the floor of 1.0.
	got, err := m.Compute(1, 0.7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != m.MinResource {
		t.Fatalf("floored resource = %v, want %v", got, m.MinResource)
	}
}

func TestEdgeResource(t *testing.T) {
	if got := EdgeResource(10); math.Abs(got-117.6) > 1e-9 {
		t.Fatalf("EdgeResource(10) = %v, want 117.6", got)
	}
}

func TestPaperPowerModelValues(t *testing.T) {
	m := PaperPowerModel()
	// Pure CPU at 2 GHz: 18.85·2 − 3.64·4 − 20.74 = 2.4 W.
	got, err := m.MeanPowerW(2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2.4) > 1e-9 {
		t.Fatalf("P(2GHz CPU) = %v, want 2.4", got)
	}
	if m.R2 != 0.863 {
		t.Fatalf("paper power R² = %v", m.R2)
	}
	// At 1 GHz the CPU branch extrapolates negative; it must floor.
	got, err = m.MeanPowerW(1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != m.MinPowerW {
		t.Fatalf("floored power = %v, want %v", got, m.MinPowerW)
	}
}

func TestPowerModelValidation(t *testing.T) {
	m := PaperPowerModel()
	if _, err := m.MeanPowerW(2, 1, 2); !errors.Is(err, ErrUtilization) {
		t.Fatal("bad utilization must error")
	}
	if _, err := m.MeanPowerW(0, 1, 0.5); !errors.Is(err, ErrFrequency) {
		t.Fatal("zero fc with CPU share must error")
	}
}

func TestEnergyAccounting(t *testing.T) {
	m := PaperPowerModel()
	e, err := m.SegmentEnergyMJ(2.5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if e != 250 {
		t.Fatalf("2.5 W over 100 ms = %v mJ, want 250", e)
	}
	if _, err := m.SegmentEnergyMJ(-1, 10); err == nil {
		t.Fatal("negative power must error")
	}
	if _, err := m.SegmentEnergyMJ(1, -10); err == nil {
		t.Fatal("negative latency must error")
	}
	base, err := m.BaseEnergyMJ(1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(base-DefaultBasePowerW*1000) > 1e-9 {
		t.Fatalf("base energy = %v", base)
	}
	if _, err := m.BaseEnergyMJ(-1); err == nil {
		t.Fatal("negative interval must error")
	}
	th, err := m.ThermalEnergyMJ(100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(th-DefaultThermalFraction*100) > 1e-9 {
		t.Fatalf("thermal energy = %v", th)
	}
	if _, err := m.ThermalEnergyMJ(-1); err == nil {
		t.Fatal("negative energy must error")
	}
}

// Property: the resource model is a convex combination — for any valid
// clocks, c(ωc) lies between the pure-CPU and pure-GPU values.
func TestResourceConvexCombination(t *testing.T) {
	m := PaperResourceModel()
	f := func(a, b, w float64) bool {
		fc := 0.5 + math.Abs(math.Mod(a, 3))
		fg := 0.5 + math.Abs(math.Mod(b, 1.5))
		wc := math.Abs(math.Mod(w, 1))
		cpu, err1 := m.Compute(fc, fg, 1)
		gpu, err2 := m.Compute(fc, fg, 0)
		mix, err3 := m.Compute(fc, fg, wc)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		lo, hi := math.Min(cpu, gpu), math.Max(cpu, gpu)
		// The floor can lift the mix above the raw combination, so
		// allow [min(lo, floor), hi].
		return mix >= math.Min(lo, m.MinResource)-1e-9 && mix <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: power is always at least the floor and energies are
// non-negative for non-negative inputs.
func TestPowerNonNegative(t *testing.T) {
	m := PaperPowerModel()
	f := func(a, b, w float64) bool {
		fc := 0.3 + math.Abs(math.Mod(a, 3.5))
		fg := 0.3 + math.Abs(math.Mod(b, 1.5))
		wc := math.Abs(math.Mod(w, 1))
		p, err := m.MeanPowerW(fc, fg, wc)
		if err != nil {
			return false
		}
		return p >= m.MinPowerW
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
