package device

import (
	"fmt"
)

// EdgeResourceRatio is the ratio c_ε/c_client the paper derives from its
// experimental data via the decoding-delay relation (Eq. 14): the Jetson
// AGX edge server exposes 11.76× the effective computation resource of the
// average client XR device.
const EdgeResourceRatio = 11.76

// ResourceCoeffs holds the quadratic coefficients of one processing unit's
// contribution to the allocated computation resource: a0 + a1·f² + a2·f
// with f the clock frequency in GHz.
type ResourceCoeffs struct {
	A0, A1, A2 float64
}

// Eval evaluates the quadratic at frequency f (GHz).
func (c ResourceCoeffs) Eval(f float64) float64 {
	return c.A0 + c.A1*f*f + c.A2*f
}

// ResourceModel is the allocated-computation-resource model of Eq. (3):
//
//	c_client = ω_c·(CPU quadratic in f_c) + (1−ω_c)·(GPU quadratic in f_g)
//
// The OS and the application jointly decide the CPU/GPU split ω_c; the
// quadratics come from multiple linear regression over measured data. The
// same form accommodates TPU/NPU units given training data (Section IV-B).
type ResourceModel struct {
	// CPU holds the CPU-branch coefficients.
	CPU ResourceCoeffs
	// GPU holds the GPU-branch coefficients.
	GPU ResourceCoeffs
	// R2 records the goodness of fit of the regression that produced
	// the coefficients (0 when unknown).
	R2 float64
	// MinResource floors the output: a regression extrapolated outside
	// its training range can dip non-physically low or negative.
	MinResource float64
}

// PaperResourceModel returns Eq. (3) with the published coefficients
// (R² = 0.87):
//
//	c = ω_c(18.24 + 1.84f_c² − 6.02f_c) + (1−ω_c)(193.67 + 400.96f_g² − 558.29f_g)
func PaperResourceModel() ResourceModel {
	return ResourceModel{
		CPU:         ResourceCoeffs{A0: 18.24, A1: 1.84, A2: -6.02},
		GPU:         ResourceCoeffs{A0: 193.67, A1: 400.96, A2: -558.29},
		R2:          0.87,
		MinResource: 1.0,
	}
}

// Compute returns the allocated computation resource c_client for CPU
// clock fc (GHz), GPU clock fg (GHz), and CPU utilization share wc ∈ [0,1]
// (GPU share is 1−wc, Eq. 3).
func (m ResourceModel) Compute(fc, fg, wc float64) (float64, error) {
	if wc < 0 || wc > 1 {
		return 0, fmt.Errorf("%w: ω_c=%v", ErrUtilization, wc)
	}
	if wc > 0 && fc <= 0 {
		return 0, fmt.Errorf("%w: f_c=%v GHz", ErrFrequency, fc)
	}
	if wc < 1 && fg <= 0 {
		return 0, fmt.Errorf("%w: f_g=%v GHz", ErrFrequency, fg)
	}
	c := wc*m.CPU.Eval(fc) + (1-wc)*m.GPU.Eval(fg)
	if c < m.MinResource {
		c = m.MinResource
	}
	return c, nil
}

// EdgeResource returns the edge-server computation resource c_ε implied by
// the client resource via the paper's experimental relation c_ε = 11.76·c.
func EdgeResource(clientResource float64) float64 {
	return EdgeResourceRatio * clientResource
}
