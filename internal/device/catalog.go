// Package device models the XR and edge hardware of the paper's testbed:
// the Table I catalog of seven XR devices and two Nvidia Jetson edge
// servers, the regression-based computation-resource model (Eq. 3), and the
// regression-based mean-power model (Eq. 21) together with base power and
// heat-dissipation accounting (Section V-B).
package device

import (
	"errors"
	"fmt"
)

// Common errors.
var (
	// ErrUnknownDevice indicates a catalog lookup miss.
	ErrUnknownDevice = errors.New("device: unknown device")
	// ErrUtilization indicates a CPU/GPU utilization share outside [0,1].
	ErrUtilization = errors.New("device: utilization must lie in [0,1]")
	// ErrFrequency indicates a non-positive clock frequency.
	ErrFrequency = errors.New("device: frequency must be positive")
)

// Class distinguishes client XR devices from edge servers.
type Class int

const (
	// ClassXR is a client XR device (phone, HMD, glass).
	ClassXR Class = iota + 1
	// ClassEdge is an edge server.
	ClassEdge
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case ClassXR:
		return "xr"
	case ClassEdge:
		return "edge"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Device is one hardware entry of Table I. Clock and bandwidth figures are
// the public specifications of the listed SoCs; the analytical models only
// consume these scalar parameters.
type Device struct {
	// Name is the paper's denotation (XR1…XR7, Edge).
	Name string
	// Model is the commercial device name.
	Model string
	// SoC is the system-on-chip.
	SoC string
	// Class is ClassXR or ClassEdge.
	Class Class
	// CPUGHz is the maximum big-core CPU clock f_c.
	CPUGHz float64
	// GPUGHz is the maximum GPU clock f_g.
	GPUGHz float64
	// RAMGB is the installed memory.
	RAMGB float64
	// MemBandwidthGBs is the memory bandwidth m (GB/s) of Eq. 2.
	MemBandwidthGBs float64
	// OS is the operating system.
	OS string
	// WiFi is the supported 802.11 modes (empty for wired edge).
	WiFi string
	// ReleaseYear is the launch year.
	ReleaseYear int
	// TrainSplit marks devices used for regression training (XR1, XR3,
	// XR5, XR6 per Section VII); the rest are held out for testing.
	TrainSplit bool
}

// Catalog returns the Table I devices. The returned slice is fresh on
// every call so callers may mutate their copy.
func Catalog() []Device {
	return []Device{
		{
			Name: "XR1", Model: "Huawei Mate 40 Pro", SoC: "Kirin 9000 (5 nm)",
			Class: ClassXR, CPUGHz: 3.13, GPUGHz: 0.76, RAMGB: 8,
			MemBandwidthGBs: 44.0, OS: "Android 10", WiFi: "a/b/g/n/ac/ax",
			ReleaseYear: 2020, TrainSplit: true,
		},
		{
			Name: "XR2", Model: "OnePlus 8 Pro", SoC: "Snapdragon 865 (7 nm)",
			Class: ClassXR, CPUGHz: 2.84, GPUGHz: 0.587, RAMGB: 8,
			MemBandwidthGBs: 34.1, OS: "Android 10", WiFi: "a/b/g/n/ac/ax",
			ReleaseYear: 2020, TrainSplit: false,
		},
		{
			Name: "XR3", Model: "Motorola One Macro", SoC: "Helio P70 (12 nm)",
			Class: ClassXR, CPUGHz: 2.0, GPUGHz: 0.9, RAMGB: 4,
			MemBandwidthGBs: 14.9, OS: "Android 9", WiFi: "b/g/n",
			ReleaseYear: 2019, TrainSplit: true,
		},
		{
			Name: "XR4", Model: "Xiaomi Redmi Note8", SoC: "Snapdragon 665 (11 nm)",
			Class: ClassXR, CPUGHz: 2.0, GPUGHz: 0.6, RAMGB: 4,
			MemBandwidthGBs: 14.9, OS: "Android 10", WiFi: "a/b/g/n/ac",
			ReleaseYear: 2020, TrainSplit: false,
		},
		{
			Name: "XR5", Model: "Google Glass Enterprise Edition 2", SoC: "Snapdragon XR1",
			Class: ClassXR, CPUGHz: 2.52, GPUGHz: 0.7, RAMGB: 3,
			MemBandwidthGBs: 14.9, OS: "Android 8.1", WiFi: "a/g/b/n/ac",
			ReleaseYear: 2019, TrainSplit: true,
		},
		{
			Name: "XR6", Model: "Meta Quest 2", SoC: "Snapdragon XR2",
			Class: ClassXR, CPUGHz: 2.84, GPUGHz: 0.587, RAMGB: 6,
			MemBandwidthGBs: 34.1, OS: "Oculus OS", WiFi: "a/g/b/n/ac/ax",
			ReleaseYear: 2020, TrainSplit: true,
		},
		{
			Name: "XR7", Model: "Nvidia Jetson TX2", SoC: "Tegra TX2 (Denver2+A57)",
			Class: ClassXR, CPUGHz: 2.0, GPUGHz: 1.3, RAMGB: 8,
			MemBandwidthGBs: 59.7, OS: "Ubuntu 18.04", WiFi: "",
			ReleaseYear: 2017, TrainSplit: false,
		},
		{
			Name: "Edge", Model: "Nvidia Jetson AGX Xavier", SoC: "Tegra Xavier (ARM v8.2)",
			Class: ClassEdge, CPUGHz: 2.26, GPUGHz: 1.377, RAMGB: 32,
			MemBandwidthGBs: 136.5, OS: "Ubuntu 18.04 LTS", WiFi: "",
			ReleaseYear: 2018, TrainSplit: false,
		},
	}
}

// ByName looks a device up by its paper denotation.
func ByName(name string) (Device, error) {
	for _, d := range Catalog() {
		if d.Name == name {
			return d, nil
		}
	}
	return Device{}, fmt.Errorf("%w: %q", ErrUnknownDevice, name)
}

// TrainDevices returns the devices the paper trains regressions on
// (XR1, XR3, XR5, XR6).
func TrainDevices() []Device {
	var out []Device
	for _, d := range Catalog() {
		if d.TrainSplit {
			out = append(out, d)
		}
	}
	return out
}

// TestDevices returns the held-out devices (XR2, XR4, XR7).
func TestDevices() []Device {
	var out []Device
	for _, d := range Catalog() {
		if !d.TrainSplit && d.Class == ClassXR {
			out = append(out, d)
		}
	}
	return out
}

// EdgeServer returns the Jetson AGX Xavier edge entry.
func EdgeServer() Device {
	d, err := ByName("Edge")
	if err != nil {
		// The catalog is a compile-time constant; a miss is programmer
		// error, not a runtime condition.
		panic("device: edge server missing from catalog")
	}
	return d
}
