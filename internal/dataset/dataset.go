// Package dataset provides the columnar sample tables the framework's
// measurement campaigns produce — named float64 columns with CSV
// round-tripping — so synthetic testbed datasets can be exported,
// inspected, and re-loaded the way the paper's measurement datasets were
// archived (Section VII: 119,465 training and 36,083 test rows).
package dataset

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// Common errors.
var (
	// ErrSchema indicates inconsistent columns/rows.
	ErrSchema = errors.New("dataset: schema mismatch")
	// ErrEmpty indicates an empty table where rows are required.
	ErrEmpty = errors.New("dataset: empty table")
)

// Table is a columnar dataset: a header of column names and rows of
// float64 values.
type Table struct {
	cols []string
	rows [][]float64
}

// New creates an empty table with the given column names.
func New(cols ...string) (*Table, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("%w: no columns", ErrSchema)
	}
	seen := make(map[string]bool, len(cols))
	for _, c := range cols {
		if c == "" {
			return nil, fmt.Errorf("%w: empty column name", ErrSchema)
		}
		if seen[c] {
			return nil, fmt.Errorf("%w: duplicate column %q", ErrSchema, c)
		}
		seen[c] = true
	}
	out := make([]string, len(cols))
	copy(out, cols)
	return &Table{cols: out}, nil
}

// Columns returns a copy of the column names.
func (t *Table) Columns() []string {
	out := make([]string, len(t.cols))
	copy(out, t.cols)
	return out
}

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.rows) }

// Append adds one row.
func (t *Table) Append(row ...float64) error {
	if len(row) != len(t.cols) {
		return fmt.Errorf("%w: row has %d values, want %d", ErrSchema, len(row), len(t.cols))
	}
	cp := make([]float64, len(row))
	copy(cp, row)
	t.rows = append(t.rows, cp)
	return nil
}

// Row returns a copy of row i.
func (t *Table) Row(i int) ([]float64, error) {
	if i < 0 || i >= len(t.rows) {
		return nil, fmt.Errorf("%w: row %d of %d", ErrSchema, i, len(t.rows))
	}
	out := make([]float64, len(t.cols))
	copy(out, t.rows[i])
	return out, nil
}

// Col returns a copy of the named column.
func (t *Table) Col(name string) ([]float64, error) {
	idx := -1
	for j, c := range t.cols {
		if c == name {
			idx = j
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("%w: no column %q", ErrSchema, name)
	}
	out := make([]float64, len(t.rows))
	for i, r := range t.rows {
		out[i] = r[idx]
	}
	return out, nil
}

// Matrix returns copies of the selected feature columns as row vectors
// plus the target column — the shape regress.FitOLS consumes.
func (t *Table) Matrix(features []string, target string) (xs [][]float64, ys []float64, err error) {
	if len(t.rows) == 0 {
		return nil, nil, ErrEmpty
	}
	idx := make([]int, len(features))
	for k, f := range features {
		idx[k] = -1
		for j, c := range t.cols {
			if c == f {
				idx[k] = j
				break
			}
		}
		if idx[k] < 0 {
			return nil, nil, fmt.Errorf("%w: no feature column %q", ErrSchema, f)
		}
	}
	tIdx := -1
	for j, c := range t.cols {
		if c == target {
			tIdx = j
			break
		}
	}
	if tIdx < 0 {
		return nil, nil, fmt.Errorf("%w: no target column %q", ErrSchema, target)
	}
	xs = make([][]float64, len(t.rows))
	ys = make([]float64, len(t.rows))
	for i, r := range t.rows {
		x := make([]float64, len(idx))
		for k, j := range idx {
			x[k] = r[j]
		}
		xs[i] = x
		ys[i] = r[tIdx]
	}
	return xs, ys, nil
}

// WriteCSV serializes the table.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.cols); err != nil {
		return fmt.Errorf("write header: %w", err)
	}
	rec := make([]string, len(t.cols))
	for _, r := range t.rows {
		for j, v := range r {
			rec[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV deserializes a table written by WriteCSV.
func ReadCSV(r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("read header: %w", err)
	}
	t, err := New(header...)
	if err != nil {
		return nil, err
	}
	for {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			return t, nil
		}
		if err != nil {
			return nil, fmt.Errorf("read row: %w", err)
		}
		row := make([]float64, len(rec))
		for j, s := range rec {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("parse %q: %w", s, err)
			}
			row[j] = v
		}
		if err := t.Append(row...); err != nil {
			return nil, err
		}
	}
}
