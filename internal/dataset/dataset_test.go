package dataset

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(); !errors.Is(err, ErrSchema) {
		t.Fatal("no columns must error")
	}
	if _, err := New("a", ""); !errors.Is(err, ErrSchema) {
		t.Fatal("empty name must error")
	}
	if _, err := New("a", "a"); !errors.Is(err, ErrSchema) {
		t.Fatal("duplicate names must error")
	}
	tb, err := New("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if got := tb.Columns(); len(got) != 2 || got[0] != "a" {
		t.Fatalf("columns = %v", got)
	}
}

func TestAppendAndAccess(t *testing.T) {
	tb, err := New("x", "y")
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Append(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := tb.Append(3, 4); err != nil {
		t.Fatal(err)
	}
	if err := tb.Append(1); !errors.Is(err, ErrSchema) {
		t.Fatal("short row must error")
	}
	if tb.Len() != 2 {
		t.Fatalf("len = %d", tb.Len())
	}
	row, err := tb.Row(1)
	if err != nil {
		t.Fatal(err)
	}
	if row[0] != 3 || row[1] != 4 {
		t.Fatalf("row = %v", row)
	}
	if _, err := tb.Row(5); !errors.Is(err, ErrSchema) {
		t.Fatal("bad index must error")
	}
	col, err := tb.Col("y")
	if err != nil {
		t.Fatal(err)
	}
	if col[0] != 2 || col[1] != 4 {
		t.Fatalf("col = %v", col)
	}
	if _, err := tb.Col("zzz"); !errors.Is(err, ErrSchema) {
		t.Fatal("unknown column must error")
	}
}

func TestRowAndAppendCopy(t *testing.T) {
	tb, _ := New("x")
	in := []float64{7}
	if err := tb.Append(in...); err != nil {
		t.Fatal(err)
	}
	in[0] = 99
	row, _ := tb.Row(0)
	if row[0] != 7 {
		t.Fatal("Append must copy")
	}
	row[0] = 55
	again, _ := tb.Row(0)
	if again[0] != 7 {
		t.Fatal("Row must return a copy")
	}
}

func TestMatrix(t *testing.T) {
	tb, _ := New("a", "b", "y")
	for i := 0; i < 3; i++ {
		v := float64(i)
		if err := tb.Append(v, 2*v, 3*v); err != nil {
			t.Fatal(err)
		}
	}
	xs, ys, err := tb.Matrix([]string{"b", "a"}, "y")
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != 3 || len(ys) != 3 {
		t.Fatalf("sizes = %d/%d", len(xs), len(ys))
	}
	if xs[2][0] != 4 || xs[2][1] != 2 || ys[2] != 6 {
		t.Fatalf("matrix row = %v target %v", xs[2], ys[2])
	}
	if _, _, err := tb.Matrix([]string{"zzz"}, "y"); !errors.Is(err, ErrSchema) {
		t.Fatal("unknown feature must error")
	}
	if _, _, err := tb.Matrix([]string{"a"}, "zzz"); !errors.Is(err, ErrSchema) {
		t.Fatal("unknown target must error")
	}
	empty, _ := New("a")
	if _, _, err := empty.Matrix([]string{"a"}, "a"); !errors.Is(err, ErrEmpty) {
		t.Fatal("empty table must error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tb, _ := New("fc", "fg", "c")
	if err := tb.Append(1.5, 0.76, 12.25); err != nil {
		t.Fatal(err)
	}
	if err := tb.Append(3.13, 0.587, 18.5); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tb.Len() {
		t.Fatalf("rows = %d, want %d", back.Len(), tb.Len())
	}
	for i := 0; i < tb.Len(); i++ {
		a, _ := tb.Row(i)
		b, _ := back.Row(i)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("row %d mismatch: %v vs %v", i, a, b)
			}
		}
	}
}

func TestReadCSVMalformed(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("")); err == nil {
		t.Fatal("empty input must error")
	}
	if _, err := ReadCSV(bytes.NewBufferString("a,b\n1,notanumber\n")); err == nil {
		t.Fatal("non-numeric cell must error")
	}
	if _, err := ReadCSV(bytes.NewBufferString("a,a\n1,2\n")); !errors.Is(err, ErrSchema) {
		t.Fatal("duplicate header must error")
	}
}

// Property: CSV round-trip preserves every value bit-exactly for finite
// floats.
func TestCSVRoundTripProperty(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		tb, err := New("v")
		if err != nil {
			return false
		}
		for _, v := range vals {
			if err := tb.Append(v); err != nil {
				return false
			}
		}
		var buf bytes.Buffer
		if err := tb.WriteCSV(&buf); err != nil {
			return false
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		col, err := back.Col("v")
		if err != nil || len(col) != len(vals) {
			return false
		}
		for i := range vals {
			if col[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
