// Package latency implements the paper's end-to-end latency analysis model
// (Section IV): per-segment latencies for the Fig. 1 pipeline composed into
// the end-to-end figure of Eq. (1). Computation segments consume the
// allocated-resource model of Eq. (3); encoding uses the regression of
// Eq. (10); inference uses the CNN-complexity model of Eq. (12); remote
// execution adds decoding (Eq. 14), multi-edge splitting (Eq. 15),
// transmission (Eq. 16), and handoff (Eq. 17).
package latency

import (
	"errors"
	"fmt"

	"repro/internal/cnn"
	"repro/internal/codec"
	"repro/internal/device"
	"repro/internal/pipeline"
	"repro/internal/queue"
)

// ErrModel indicates an internal model inconsistency.
var ErrModel = errors.New("latency: model error")

// ResourceModel abstracts the allocated-computation-resource model
// (Eq. 3). device.ResourceModel is the regression implementation; the
// synthetic testbed plugs in its hidden true physics through the same
// interface.
type ResourceModel interface {
	// Compute returns c_client for the given clocks and CPU share.
	Compute(fcGHz, fgGHz, cpuShare float64) (float64, error)
}

// EncoderModel abstracts the H.264 encode/decode latency model
// (Eqs. 10 and 14).
type EncoderModel interface {
	// EncodeLatencyMs returns L_en for the given configuration.
	EncodeLatencyMs(p codec.EncodingParams, resource, frameDataMB, memBandwidthGBs float64) (float64, error)
	// DecodeLatencyMs returns L_dec rescaled onto the decoder resource.
	DecodeLatencyMs(encodeLatencyMs, encoderResource, decoderResource float64) (float64, error)
}

// ComplexityModel abstracts the CNN-complexity model (Eq. 12).
type ComplexityModel interface {
	// ComplexityOf returns C_CNN for a catalog model.
	ComplexityOf(m cnn.Model) (float64, error)
}

// Interface compliance of the concrete regression models.
var (
	_ ResourceModel   = device.ResourceModel{}
	_ EncoderModel    = codec.EncoderModel{}
	_ ComplexityModel = cnn.ComplexityModel{}
)

// Models bundles the fitted sub-models the latency analysis depends on.
// Construct with PaperModels for the published coefficients or inject
// re-fitted models from the regression pipeline.
type Models struct {
	// Resource is the allocated-computation-resource model (Eq. 3).
	Resource ResourceModel
	// Encoder is the H.264 encoding model (Eq. 10/14).
	Encoder EncoderModel
	// Complexity is the CNN-complexity model (Eq. 12).
	Complexity ComplexityModel
}

// PaperModels returns the models with the paper's published coefficients.
func PaperModels() Models {
	return Models{
		Resource:   device.PaperResourceModel(),
		Encoder:    codec.PaperEncoderModel(),
		Complexity: cnn.PaperComplexityModel(),
	}
}

// Breakdown is the per-segment latency decomposition of one frame, all in
// milliseconds. Fields not applicable to the scenario's inference mode are
// zero.
type Breakdown struct {
	// FrameGen is L_fg (Eq. 2).
	FrameGen float64
	// Volumetric is L_vol (Eq. 4).
	Volumetric float64
	// External is L_ext (Eq. 5).
	External float64
	// Buffering is t_buff (Eq. 7), folded into Rendering but reported
	// separately for insight.
	Buffering float64
	// Rendering is L_renTotal (Eq. 8) including Buffering and the
	// result-transmission term.
	Rendering float64
	// Conversion is L_fc (Eq. 9), local branch.
	Conversion float64
	// Encoding is L_en (Eq. 10), remote branch.
	Encoding float64
	// LocalInf is L_loc (Eq. 11), local branch.
	LocalInf float64
	// RemoteInf is L_rem (Eq. 13/15), remote branch, including decode.
	RemoteInf float64
	// Transmission is L_tr (Eq. 16), remote branch.
	Transmission float64
	// Handoff is L_HO (Eq. 17), zero for a static device.
	Handoff float64
	// Cooperation is L_coop (Eq. 18); included in Total only when the
	// scenario opts in.
	Cooperation float64
	// Resource is the allocated computation resource c_client used.
	Resource float64
	// Total is the end-to-end latency L_tot (Eq. 1).
	Total float64
}

// FrameLatency evaluates the end-to-end latency model for one frame of the
// scenario.
func (m Models) FrameLatency(sc *pipeline.Scenario) (Breakdown, error) {
	if sc == nil {
		return Breakdown{}, fmt.Errorf("%w: nil scenario", ErrModel)
	}
	if err := sc.Validate(); err != nil {
		return Breakdown{}, err
	}

	var b Breakdown

	// Allocated computation resource (Eq. 3).
	cClient, err := m.Resource.Compute(sc.CPUFreqGHz, sc.GPUFreqGHz, sc.CPUShare)
	if err != nil {
		return Breakdown{}, fmt.Errorf("resource: %w", err)
	}
	b.Resource = cClient
	mem := sc.Device.MemBandwidthGBs

	frameData := pipeline.FrameDataMB(sc.FrameSizePx2)

	// Frame generation (Eq. 2): capture interval + compute + memory.
	b.FrameGen = 1000/sc.FPS + sc.FrameSizePx2/cClient + frameData/mem

	// Volumetric data generation (Eq. 4).
	if sc.SceneSizePx2 > 0 {
		sceneData := pipeline.FrameDataMB(sc.SceneSizePx2)
		b.Volumetric = sc.SceneSizePx2/cClient + sceneData/mem
	}

	// External sensor information (Eq. 5).
	if len(sc.Sensors.Sensors) > 0 {
		ext, err := sc.Sensors.GenerationLatencyMs(sc.SensorUpdates)
		if err != nil {
			return Breakdown{}, fmt.Errorf("external info: %w", err)
		}
		b.External = ext
	}

	// Input-buffer delay (Eq. 7): each queued data class waits the M/M/1
	// mean sojourn 1/(µ−λ).
	mm1, err := queue.NewMM1(sc.BufferArrivalRatePerMs(), sc.BufferServiceRatePerMs)
	if err != nil {
		return Breakdown{}, fmt.Errorf("input buffer: %w", err)
	}
	b.Buffering = float64(sc.BufferClasses()) * mm1.MeanSojourn()

	switch sc.Mode {
	case pipeline.ModeLocal:
		if err := m.localBranch(sc, cClient, mem, frameData, &b); err != nil {
			return Breakdown{}, err
		}
	case pipeline.ModeRemote:
		if err := m.remoteBranch(sc, cClient, mem, frameData, &b); err != nil {
			return Breakdown{}, err
		}
	}

	// Rendering (Eq. 8): scale/crop compute + buffer wait + result
	// transmission to the renderer.
	resultTransfer := sc.ResultSizeMB / mem // local: intra-device copy
	if sc.Mode == pipeline.ModeRemote {
		resultTransfer, err = sc.EdgeLink.TransmitLatencyMs(sc.ResultSizeMB)
		if err != nil {
			return Breakdown{}, fmt.Errorf("result transmission: %w", err)
		}
	}
	b.Rendering = sc.FrameSizePx2/cClient + frameData/mem + b.Buffering + resultTransfer

	// XR cooperation (Eq. 18), normally parallel to rendering.
	if sc.Coop != nil {
		coop, err := sc.Coop.Link.TransmitLatencyMs(sc.Coop.DataSizeMB)
		if err != nil {
			return Breakdown{}, fmt.Errorf("cooperation: %w", err)
		}
		b.Cooperation = coop
	}

	// End-to-end composition (Eq. 1). Conversion/encoding and inference
	// run parallel to rendering in the pipeline but contribute to the
	// end-to-end critical path per the paper's composition; cooperation
	// is excluded unless the application opts in.
	b.Total = b.FrameGen + b.Volumetric + b.External + b.Rendering +
		b.Conversion + b.Encoding + b.LocalInf + b.RemoteInf +
		b.Transmission + b.Handoff
	if sc.Coop != nil && sc.Coop.IncludeInTotal {
		b.Total += b.Cooperation
	}
	return b, nil
}

// localBranch fills the ω_loc = 1 segments: conversion (Eq. 9) and local
// inference (Eq. 11).
func (m Models) localBranch(sc *pipeline.Scenario, cClient, mem, frameData float64, b *Breakdown) error {
	b.Conversion = sc.FrameSizePx2/cClient + frameData/mem

	complexity, err := m.Complexity.ComplexityOf(sc.LocalCNN)
	if err != nil {
		return fmt.Errorf("local cnn complexity: %w", err)
	}
	convData := pipeline.FrameDataMB(sc.ConvertedSizePx2)
	// Eq. (11) as published: the CNN complexity scales the effective
	// resource in the denominator.
	b.LocalInf = sc.ClientShare * (sc.ConvertedSizePx2/(cClient*complexity) + convData/mem)
	return nil
}

// remoteBranch fills the ω_loc = 0 segments: encoding (Eq. 10), remote
// inference with decode and multi-edge split (Eqs. 13–15), transmission
// (Eq. 16), and handoff (Eq. 17).
func (m Models) remoteBranch(sc *pipeline.Scenario, cClient, mem, frameData float64, b *Breakdown) error {
	enc, err := m.Encoder.EncodeLatencyMs(sc.Encoding, cClient, frameData, mem)
	if err != nil {
		return fmt.Errorf("encoding: %w", err)
	}
	b.Encoding = enc

	complexity, err := m.Complexity.ComplexityOf(sc.RemoteCNN)
	if err != nil {
		return fmt.Errorf("remote cnn complexity: %w", err)
	}
	payload, err := codec.CompressedSizeMB(sc.Encoding)
	if err != nil {
		return fmt.Errorf("compressed size: %w", err)
	}

	// Multi-edge split (Eq. 15): the slowest assigned server bounds the
	// remote-inference latency; each server decodes its share's frame
	// first (Eq. 13).
	var worst float64
	for i, e := range sc.Edges {
		dec, err := m.Encoder.DecodeLatencyMs(enc, cClient, e.Resource)
		if err != nil {
			return fmt.Errorf("edge %d decode: %w", i, err)
		}
		l := e.Share * (sc.FrameSizePx2/(e.Resource*complexity) + payload/e.MemBandwidthGBs + dec)
		if l > worst {
			worst = l
		}
	}
	b.RemoteInf = worst

	// Transmission of the encoded frame to the edge (Eq. 16).
	tr, err := sc.EdgeLink.TransmitLatencyMs(payload)
	if err != nil {
		return fmt.Errorf("transmission: %w", err)
	}
	b.Transmission = tr

	// Handoff (Eq. 17) for mobile devices.
	if sc.Handoff != nil {
		b.Handoff = sc.Handoff.ExpectedLatencyMs()
	}
	return nil
}

// SegmentMap returns the breakdown as a segment-keyed map for reporting.
func (b Breakdown) SegmentMap() map[pipeline.Segment]float64 {
	return map[pipeline.Segment]float64{
		pipeline.SegFrameGeneration: b.FrameGen,
		pipeline.SegVolumetricData:  b.Volumetric,
		pipeline.SegExternalInfo:    b.External,
		pipeline.SegFrameConversion: b.Conversion,
		pipeline.SegFrameEncoding:   b.Encoding,
		pipeline.SegLocalInference:  b.LocalInf,
		pipeline.SegRemoteInference: b.RemoteInf,
		pipeline.SegTransmission:    b.Transmission,
		pipeline.SegHandoff:         b.Handoff,
		pipeline.SegRendering:       b.Rendering,
		pipeline.SegCooperation:     b.Cooperation,
	}
}
