package latency

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/device"
	"repro/internal/mobility"
	"repro/internal/pipeline"
	"repro/internal/sensors"
	"repro/internal/stats"
	"repro/internal/wireless"
)

func xr1(t *testing.T) device.Device {
	t.Helper()
	d, err := device.ByName("XR1")
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func localScenario(t *testing.T, opts ...pipeline.Option) *pipeline.Scenario {
	t.Helper()
	s, err := pipeline.NewScenario(xr1(t), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFrameLatencyLocal(t *testing.T) {
	m := PaperModels()
	sc := localScenario(t)
	b, err := m.FrameLatency(sc)
	if err != nil {
		t.Fatal(err)
	}
	if b.Total <= 0 {
		t.Fatalf("total = %v, want > 0", b.Total)
	}
	// Local mode must not populate remote segments.
	if b.Encoding != 0 || b.RemoteInf != 0 || b.Transmission != 0 || b.Handoff != 0 {
		t.Fatalf("remote segments non-zero in local mode: %+v", b)
	}
	if b.Conversion <= 0 || b.LocalInf <= 0 {
		t.Fatalf("local segments missing: conv=%v inf=%v", b.Conversion, b.LocalInf)
	}
	// The total must equal the sum of its parts (cooperation excluded).
	sum := b.FrameGen + b.Volumetric + b.External + b.Rendering +
		b.Conversion + b.LocalInf
	if math.Abs(b.Total-sum) > 1e-9 {
		t.Fatalf("total %v != segment sum %v", b.Total, sum)
	}
	// Frame generation includes the capture interval 1000/30 ≈ 33.3 ms.
	if b.FrameGen < 1000/sc.FPS {
		t.Fatalf("frame generation %v below capture interval", b.FrameGen)
	}
}

func TestFrameLatencyRemote(t *testing.T) {
	m := PaperModels()
	sc := localScenario(t, pipeline.WithMode(pipeline.ModeRemote))
	b, err := m.FrameLatency(sc)
	if err != nil {
		t.Fatal(err)
	}
	if b.Conversion != 0 || b.LocalInf != 0 {
		t.Fatalf("local segments non-zero in remote mode: %+v", b)
	}
	if b.Encoding <= 0 || b.RemoteInf <= 0 || b.Transmission <= 0 {
		t.Fatalf("remote segments missing: %+v", b)
	}
	sum := b.FrameGen + b.Volumetric + b.External + b.Rendering +
		b.Encoding + b.RemoteInf + b.Transmission + b.Handoff
	if math.Abs(b.Total-sum) > 1e-9 {
		t.Fatalf("total %v != segment sum %v", b.Total, sum)
	}
}

func TestFrameLatencyNilScenario(t *testing.T) {
	m := PaperModels()
	if _, err := m.FrameLatency(nil); err == nil {
		t.Fatal("nil scenario must error")
	}
}

func TestFrameLatencyInvalidScenario(t *testing.T) {
	m := PaperModels()
	sc := localScenario(t)
	sc.FPS = 0
	if _, err := m.FrameLatency(sc); err == nil {
		t.Fatal("invalid scenario must error")
	}
}

func TestLatencyDecreasesWithFrequency(t *testing.T) {
	// The Fig. 4 shape: higher CPU clock → lower latency. The paper's
	// published CPU quadratic is non-monotonic below ~1.6 GHz, so check
	// the 2→3 GHz segment where it rises.
	m := PaperModels()
	l2, err := m.FrameLatency(localScenario(t, pipeline.WithCPUFreq(2), pipeline.WithCPUShare(1)))
	if err != nil {
		t.Fatal(err)
	}
	l3, err := m.FrameLatency(localScenario(t, pipeline.WithCPUFreq(3), pipeline.WithCPUShare(1)))
	if err != nil {
		t.Fatal(err)
	}
	if l3.Total >= l2.Total {
		t.Fatalf("latency at 3 GHz (%v) must be below 2 GHz (%v)", l3.Total, l2.Total)
	}
}

func TestLatencyIncreasesWithFrameSize(t *testing.T) {
	m := PaperModels()
	for _, mode := range []pipeline.InferenceMode{pipeline.ModeLocal, pipeline.ModeRemote} {
		small, err := m.FrameLatency(localScenario(t, pipeline.WithMode(mode), pipeline.WithFrameSize(300)))
		if err != nil {
			t.Fatal(err)
		}
		large, err := m.FrameLatency(localScenario(t, pipeline.WithMode(mode), pipeline.WithFrameSize(700)))
		if err != nil {
			t.Fatal(err)
		}
		if large.Total <= small.Total {
			t.Fatalf("%v: latency(700) = %v must exceed latency(300) = %v",
				mode, large.Total, small.Total)
		}
	}
}

func TestHandoffAddsLatency(t *testing.T) {
	m := PaperModels()
	static := localScenario(t, pipeline.WithMode(pipeline.ModeRemote))
	h, err := mobility.NewHandoffModel(mobility.HandoffVertical, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	mobile := localScenario(t, pipeline.WithMode(pipeline.ModeRemote), pipeline.WithHandoff(h))
	bs, err := m.FrameLatency(static)
	if err != nil {
		t.Fatal(err)
	}
	bm, err := m.FrameLatency(mobile)
	if err != nil {
		t.Fatal(err)
	}
	wantExtra := h.ExpectedLatencyMs()
	if math.Abs((bm.Total-bs.Total)-wantExtra) > 1e-9 {
		t.Fatalf("handoff delta = %v, want %v", bm.Total-bs.Total, wantExtra)
	}
	if bm.Handoff != wantExtra {
		t.Fatalf("handoff segment = %v, want %v", bm.Handoff, wantExtra)
	}
}

func TestSensorsAddLatency(t *testing.T) {
	m := PaperModels()
	s1, err := sensors.NewSensor("rsu", 100, 40)
	if err != nil {
		t.Fatal(err)
	}
	plain := localScenario(t)
	wired := localScenario(t, pipeline.WithSensors(sensors.NewArray(s1), 2))
	bp, err := m.FrameLatency(plain)
	if err != nil {
		t.Fatal(err)
	}
	bw, err := m.FrameLatency(wired)
	if err != nil {
		t.Fatal(err)
	}
	if bw.External <= 0 {
		t.Fatal("sensor scenario must have external latency")
	}
	if bw.Total <= bp.Total {
		t.Fatal("sensors must increase end-to-end latency")
	}
}

func TestCooperationExcludedByDefault(t *testing.T) {
	m := PaperModels()
	link, err := wireless.NewLink(wireless.WiFi5GHz, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	sc := localScenario(t, pipeline.WithCooperation(pipeline.CoopConfig{
		Link: link, DataSizeMB: 0.5,
	}))
	b, err := m.FrameLatency(sc)
	if err != nil {
		t.Fatal(err)
	}
	if b.Cooperation <= 0 {
		t.Fatal("cooperation latency must be reported")
	}
	base, err := m.FrameLatency(localScenario(t))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.Total-base.Total) > 1e-9 {
		t.Fatal("cooperation must not enter the total by default")
	}

	// Opting in adds it.
	scIn := localScenario(t, pipeline.WithCooperation(pipeline.CoopConfig{
		Link: link, DataSizeMB: 0.5, IncludeInTotal: true,
	}))
	bIn, err := m.FrameLatency(scIn)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bIn.Total-(base.Total+bIn.Cooperation)) > 1e-9 {
		t.Fatal("opt-in cooperation must add to the total")
	}
}

func TestMultiEdgeSplitMaxBound(t *testing.T) {
	m := PaperModels()
	// A single fast server versus a split with one slow server: Eq. (15)
	// takes the max, so the slow server dominates.
	fast := pipeline.EdgeAssignment{Share: 1, Resource: 200, MemBandwidthGBs: 100}
	single := localScenario(t, pipeline.WithMode(pipeline.ModeRemote), pipeline.WithEdges(fast))
	split := localScenario(t, pipeline.WithMode(pipeline.ModeRemote), pipeline.WithEdges(
		pipeline.EdgeAssignment{Share: 0.5, Resource: 200, MemBandwidthGBs: 100},
		pipeline.EdgeAssignment{Share: 0.5, Resource: 20, MemBandwidthGBs: 100},
	))
	bs, err := m.FrameLatency(single)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := m.FrameLatency(split)
	if err != nil {
		t.Fatal(err)
	}
	if bp.RemoteInf <= 0 || bs.RemoteInf <= 0 {
		t.Fatal("remote inference must be positive")
	}
	// Splitting halves each server's work, but the slow server is 10×
	// weaker, so the split must be slower than the single fast server
	// running everything.
	if bp.RemoteInf <= bs.RemoteInf {
		t.Fatalf("slow-server split %v should exceed single fast server %v",
			bp.RemoteInf, bs.RemoteInf)
	}
}

func TestEvenSplitSpeedsUp(t *testing.T) {
	m := PaperModels()
	one := pipeline.EdgeAssignment{Share: 1, Resource: 150, MemBandwidthGBs: 100}
	half := pipeline.EdgeAssignment{Share: 0.5, Resource: 150, MemBandwidthGBs: 100}
	single := localScenario(t, pipeline.WithMode(pipeline.ModeRemote), pipeline.WithEdges(one))
	split := localScenario(t, pipeline.WithMode(pipeline.ModeRemote), pipeline.WithEdges(half, half))
	bs, err := m.FrameLatency(single)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := m.FrameLatency(split)
	if err != nil {
		t.Fatal(err)
	}
	if bp.RemoteInf >= bs.RemoteInf {
		t.Fatalf("even split %v must beat single server %v", bp.RemoteInf, bs.RemoteInf)
	}
}

func TestSegmentMapConsistency(t *testing.T) {
	m := PaperModels()
	b, err := m.FrameLatency(localScenario(t, pipeline.WithMode(pipeline.ModeRemote)))
	if err != nil {
		t.Fatal(err)
	}
	sm := b.SegmentMap()
	if len(sm) != 11 {
		t.Fatalf("segment map size = %d, want 11", len(sm))
	}
	if sm[pipeline.SegFrameEncoding] != b.Encoding {
		t.Fatal("segment map mismatch")
	}
}

// Property: all segment latencies are non-negative and total is at least
// the capture interval for any valid frequency/size combination.
func TestLatencyNonNegativeProperty(t *testing.T) {
	m := PaperModels()
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		size := 300 + 400*rng.Float64()
		freq := 1 + 2*rng.Float64()
		share := rng.Float64()
		mode := pipeline.ModeLocal
		if rng.Intn(2) == 1 {
			mode = pipeline.ModeRemote
		}
		sc, err := pipeline.NewScenario(mustXR1(),
			pipeline.WithMode(mode),
			pipeline.WithFrameSize(size),
			pipeline.WithCPUFreq(freq),
			pipeline.WithCPUShare(share),
		)
		if err != nil {
			return false
		}
		b, err := m.FrameLatency(sc)
		if err != nil {
			return false
		}
		for _, v := range []float64{b.FrameGen, b.Volumetric, b.External,
			b.Buffering, b.Rendering, b.Conversion, b.Encoding,
			b.LocalInf, b.RemoteInf, b.Transmission, b.Handoff} {
			if v < 0 {
				return false
			}
		}
		return b.Total >= 1000/sc.FPS
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func mustXR1() device.Device {
	d, err := device.ByName("XR1")
	if err != nil {
		panic(err)
	}
	return d
}
