// Package cnn models the convolutional-neural-network side of the XR
// pipeline: the Table II catalog of the 11 CNN architectures used in the
// paper's experiments and the CNN-complexity model of Eq. (12), which maps
// depth, storage size, and depth-scaling factor onto the dimensionless
// complexity C_CNN that divides the allocated computation resource in the
// inference latency models (Eqs. 11 and 13).
package cnn

import (
	"errors"
	"fmt"
)

// Common errors.
var (
	// ErrUnknownModel indicates a catalog lookup miss.
	ErrUnknownModel = errors.New("cnn: unknown model")
	// ErrParams indicates invalid complexity-model inputs.
	ErrParams = errors.New("cnn: invalid model parameters")
)

// Model is one CNN architecture of Table II.
type Model struct {
	// Name is the catalog entry name.
	Name string
	// Depth is the number of layers d_CNN.
	Depth int
	// SizeMB is the storage footprint s_CNN in megabytes.
	SizeMB float64
	// DepthScale is the depth-scaling factor d_scale (1 when unused);
	// YOLOv7 uses compound scaling of 1.5 per Table II.
	DepthScale float64
	// GPUSupport reports hardware acceleration availability.
	GPUSupport bool
	// Quantized marks the TFLite quantized variants.
	Quantized bool
	// EdgeClass marks the large models deployed on the edge server
	// (YOLOv3/YOLOv7); the rest are on-device lightweight models.
	EdgeClass bool
}

// Catalog returns the Table II models. The slice is fresh on every call.
func Catalog() []Model {
	return []Model{
		{Name: "MobileNetv1_240_Float", Depth: 31, SizeMB: 16.9, DepthScale: 1, GPUSupport: true},
		{Name: "MobileNetv1_240_Quant", Depth: 31, SizeMB: 4.3, DepthScale: 1, Quantized: true},
		{Name: "MobileNetv2_300_Float", Depth: 99, SizeMB: 24.2, DepthScale: 1, GPUSupport: true},
		{Name: "MobileNetv2_300_Quant", Depth: 112, SizeMB: 6.9, DepthScale: 1, Quantized: true},
		{Name: "MobileNetv2_640_Float", Depth: 155, SizeMB: 12.3, DepthScale: 1, GPUSupport: true},
		{Name: "MobileNetv2_640_Quant", Depth: 167, SizeMB: 4.5, DepthScale: 1, Quantized: true},
		{Name: "EfficientNet_Float", Depth: 62, SizeMB: 18.6, DepthScale: 1, GPUSupport: true},
		{Name: "EfficientNet_Quant", Depth: 65, SizeMB: 5.4, DepthScale: 1, Quantized: true},
		{Name: "NasNet_Float", Depth: 663, SizeMB: 21.4, DepthScale: 1, GPUSupport: true},
		{Name: "YOLOv3", Depth: 106, SizeMB: 210, DepthScale: 1, GPUSupport: true, EdgeClass: true},
		{Name: "YOLOv7", Depth: 0, SizeMB: 142.8, DepthScale: 1.5, GPUSupport: true, EdgeClass: true},
	}
}

// ByName looks a model up in the catalog.
func ByName(name string) (Model, error) {
	for _, m := range Catalog() {
		if m.Name == name {
			return m, nil
		}
	}
	return Model{}, fmt.Errorf("%w: %q", ErrUnknownModel, name)
}

// DeviceModels returns the lightweight on-device models.
func DeviceModels() []Model {
	var out []Model
	for _, m := range Catalog() {
		if !m.EdgeClass {
			out = append(out, m)
		}
	}
	return out
}

// EdgeModels returns the large edge-deployed models (YOLOv3, YOLOv7).
func EdgeModels() []Model {
	var out []Model
	for _, m := range Catalog() {
		if m.EdgeClass {
			out = append(out, m)
		}
	}
	return out
}

// ComplexityCoeffs holds the linear-regression coefficients of Eq. (12):
// C_CNN = C0 + Cd·d_CNN + Cs·s_CNN + Cscale·d_scale.
type ComplexityCoeffs struct {
	C0, Cd, Cs, Cscale float64
}

// ComplexityModel computes the dimensionless CNN complexity used by the
// inference latency models. Complexity applies only to inference — XR
// applications run pre-trained models, never training (Section IV-B).
type ComplexityModel struct {
	// Coeffs are the regression coefficients.
	Coeffs ComplexityCoeffs
	// R2 records the fit quality (0 when unknown).
	R2 float64
}

// PaperComplexityModel returns Eq. (12) with the published coefficients
// (R² = 0.844):
//
//	C_CNN = 2.45 + 0.0025·d_CNN + 0.03·s_CNN + 0.0029·d_scale
func PaperComplexityModel() ComplexityModel {
	return ComplexityModel{
		Coeffs: ComplexityCoeffs{C0: 2.45, Cd: 0.0025, Cs: 0.03, Cscale: 0.0029},
		R2:     0.844,
	}
}

// Complexity evaluates C_CNN for the given architecture parameters.
func (cm ComplexityModel) Complexity(depth int, sizeMB, depthScale float64) (float64, error) {
	if depth < 0 {
		return 0, fmt.Errorf("%w: depth %d", ErrParams, depth)
	}
	if sizeMB <= 0 {
		return 0, fmt.Errorf("%w: size %v MB", ErrParams, sizeMB)
	}
	if depthScale <= 0 {
		return 0, fmt.Errorf("%w: depth scale %v", ErrParams, depthScale)
	}
	c := cm.Coeffs
	return c.C0 + c.Cd*float64(depth) + c.Cs*sizeMB + c.Cscale*depthScale, nil
}

// ComplexityOf evaluates C_CNN for a catalog model.
func (cm ComplexityModel) ComplexityOf(m Model) (float64, error) {
	return cm.Complexity(m.Depth, m.SizeMB, m.DepthScale)
}
