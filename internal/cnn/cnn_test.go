package cnn

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestCatalogCompleteness(t *testing.T) {
	cat := Catalog()
	if len(cat) != 11 {
		t.Fatalf("catalog size = %d, want 11 (Table II)", len(cat))
	}
	names := map[string]bool{}
	for _, m := range cat {
		if m.Name == "" {
			t.Fatal("empty model name")
		}
		if m.SizeMB <= 0 {
			t.Fatalf("%s: non-positive size", m.Name)
		}
		if m.DepthScale <= 0 {
			t.Fatalf("%s: non-positive depth scale", m.Name)
		}
		if names[m.Name] {
			t.Fatalf("duplicate model %s", m.Name)
		}
		names[m.Name] = true
	}
}

func TestCatalogKnownEntries(t *testing.T) {
	y3, err := ByName("YOLOv3")
	if err != nil {
		t.Fatal(err)
	}
	if y3.Depth != 106 || y3.SizeMB != 210 || !y3.EdgeClass {
		t.Fatalf("YOLOv3 = %+v", y3)
	}
	y7, err := ByName("YOLOv7")
	if err != nil {
		t.Fatal(err)
	}
	if y7.DepthScale != 1.5 || y7.SizeMB != 142.8 {
		t.Fatalf("YOLOv7 = %+v", y7)
	}
	nas, err := ByName("NasNet_Float")
	if err != nil {
		t.Fatal(err)
	}
	if nas.Depth != 663 {
		t.Fatalf("NasNet depth = %d, want 663", nas.Depth)
	}
	if _, err := ByName("ResNet50"); !errors.Is(err, ErrUnknownModel) {
		t.Fatal("unknown model must error")
	}
}

func TestDeviceEdgeSplit(t *testing.T) {
	dev := DeviceModels()
	edge := EdgeModels()
	if len(dev)+len(edge) != len(Catalog()) {
		t.Fatal("split must partition the catalog")
	}
	if len(edge) != 2 {
		t.Fatalf("edge models = %d, want 2 (YOLOv3, YOLOv7)", len(edge))
	}
	for _, m := range dev {
		if m.EdgeClass {
			t.Fatalf("%s misclassified as device model", m.Name)
		}
	}
}

func TestQuantizedVariantsSmaller(t *testing.T) {
	pairs := [][2]string{
		{"MobileNetv1_240_Float", "MobileNetv1_240_Quant"},
		{"MobileNetv2_300_Float", "MobileNetv2_300_Quant"},
		{"MobileNetv2_640_Float", "MobileNetv2_640_Quant"},
		{"EfficientNet_Float", "EfficientNet_Quant"},
	}
	for _, p := range pairs {
		f, err := ByName(p[0])
		if err != nil {
			t.Fatal(err)
		}
		q, err := ByName(p[1])
		if err != nil {
			t.Fatal(err)
		}
		if q.SizeMB >= f.SizeMB {
			t.Fatalf("%s (%v MB) should be smaller than %s (%v MB)",
				q.Name, q.SizeMB, f.Name, f.SizeMB)
		}
		if !q.Quantized || f.Quantized {
			t.Fatalf("quantization flags wrong for pair %v", p)
		}
	}
}

func TestPaperComplexityValues(t *testing.T) {
	cm := PaperComplexityModel()
	// MobileNetv1_240 Float: 2.45 + 0.0025·31 + 0.03·16.9 + 0.0029·1.
	got, err := cm.Complexity(31, 16.9, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := 2.45 + 0.0025*31 + 0.03*16.9 + 0.0029*1
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("C_CNN = %v, want %v", got, want)
	}
	if cm.R2 != 0.844 {
		t.Fatalf("paper R² = %v, want 0.844", cm.R2)
	}
}

func TestComplexityValidation(t *testing.T) {
	cm := PaperComplexityModel()
	if _, err := cm.Complexity(-1, 10, 1); !errors.Is(err, ErrParams) {
		t.Fatal("negative depth must error")
	}
	if _, err := cm.Complexity(10, 0, 1); !errors.Is(err, ErrParams) {
		t.Fatal("zero size must error")
	}
	if _, err := cm.Complexity(10, 10, 0); !errors.Is(err, ErrParams) {
		t.Fatal("zero depth scale must error")
	}
}

func TestComplexityOfCatalog(t *testing.T) {
	cm := PaperComplexityModel()
	for _, m := range Catalog() {
		c, err := cm.ComplexityOf(m)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if c <= 0 {
			t.Fatalf("%s: non-positive complexity %v", m.Name, c)
		}
	}
	// The big edge models must be more complex than the lightest
	// on-device model.
	light, _ := ByName("MobileNetv1_240_Quant")
	heavy, _ := ByName("YOLOv3")
	cl, _ := cm.ComplexityOf(light)
	ch, _ := cm.ComplexityOf(heavy)
	if ch <= cl {
		t.Fatalf("YOLOv3 complexity %v must exceed MobileNet quant %v", ch, cl)
	}
}

// Property: complexity is monotonically increasing in each parameter.
func TestComplexityMonotonic(t *testing.T) {
	cm := PaperComplexityModel()
	f := func(d int, s, sc float64) bool {
		depth := d % 1000
		if depth < 0 {
			depth = -depth
		}
		size := 1 + math.Abs(math.Mod(s, 300))
		scale := 0.5 + math.Abs(math.Mod(sc, 3))
		base, err := cm.Complexity(depth, size, scale)
		if err != nil {
			return false
		}
		d2, err := cm.Complexity(depth+10, size, scale)
		if err != nil {
			return false
		}
		s2, err := cm.Complexity(depth, size+10, scale)
		if err != nil {
			return false
		}
		sc2, err := cm.Complexity(depth, size, scale+1)
		if err != nil {
			return false
		}
		return d2 > base && s2 > base && sc2 > base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
