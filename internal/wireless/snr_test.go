package wireless

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestSNRLinkValidate(t *testing.T) {
	good := DefaultWiFi5SNR()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	tests := []func(*SNRLink){
		func(s *SNRLink) { s.BandwidthMHz = 0 },
		func(s *SNRLink) { s.Gamma = 0 },
		func(s *SNRLink) { s.Efficiency = 0 },
		func(s *SNRLink) { s.Efficiency = 1.5 },
		func(s *SNRLink) { s.TxPowerDBm = -100 },
	}
	for i, mutate := range tests {
		s := DefaultWiFi5SNR()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Fatalf("case %d must error", i)
		}
	}
}

func TestPathLossAndSNR(t *testing.T) {
	s := DefaultWiFi5SNR()
	// At 1 m: loss = reference loss; below 1 m clamps to 1 m.
	if got := s.PathLossDB(1); got != s.ReferenceLossDB {
		t.Fatalf("loss(1m) = %v", got)
	}
	if got := s.PathLossDB(0.1); got != s.ReferenceLossDB {
		t.Fatalf("loss(<1m) = %v, want clamp to reference", got)
	}
	// At 10 m: +10·γ dB.
	want := s.ReferenceLossDB + 10*s.Gamma
	if got := s.PathLossDB(10); math.Abs(got-want) > 1e-12 {
		t.Fatalf("loss(10m) = %v, want %v", got, want)
	}
	// SNR at 1 m: 20 − 46 − (−90) = 64 dB.
	if got := s.SNRdB(1); math.Abs(got-64) > 1e-12 {
		t.Fatalf("SNR(1m) = %v, want 64", got)
	}
}

func TestThroughputDecreasesWithDistance(t *testing.T) {
	s := DefaultWiFi5SNR()
	prev := math.Inf(1)
	for _, d := range []float64{1, 5, 10, 25, 50, 100, 300} {
		thr, err := s.ThroughputMbps(d)
		if err != nil {
			t.Fatal(err)
		}
		if thr <= 0 {
			t.Fatalf("throughput(%vm) = %v", d, thr)
		}
		if thr >= prev {
			t.Fatalf("throughput must decay with distance at %v m", d)
		}
		prev = thr
	}
	if _, err := s.ThroughputMbps(-1); err == nil {
		t.Fatal("negative distance must error")
	}
}

func TestThroughputNearShannonAtShortRange(t *testing.T) {
	s := DefaultWiFi5SNR()
	thr, err := s.ThroughputMbps(1)
	if err != nil {
		t.Fatal(err)
	}
	// 64 dB SNR over 80 MHz at 65%: 0.65·80·log2(1+10^6.4) ≈ 1105 Mbps.
	want := 0.65 * 80 * math.Log2(1+math.Pow(10, 6.4))
	if math.Abs(thr-want) > 1 {
		t.Fatalf("throughput(1m) = %v, want ≈%v", thr, want)
	}
}

func TestThroughputFloorAtExtremeRange(t *testing.T) {
	s := DefaultWiFi5SNR()
	thr, err := s.ThroughputMbps(9000)
	if err != nil {
		t.Fatal(err)
	}
	if thr != 0.1 {
		t.Fatalf("extreme-range throughput = %v, want floor 0.1", thr)
	}
}

func TestLinkAt(t *testing.T) {
	s := DefaultWiFi5SNR()
	link, err := s.LinkAt(25)
	if err != nil {
		t.Fatal(err)
	}
	if link.DistanceM != 25 || link.Technology != WiFi5GHz {
		t.Fatalf("link = %+v", link)
	}
	want, err := s.ThroughputMbps(25)
	if err != nil {
		t.Fatal(err)
	}
	if link.ThroughputMbps != want {
		t.Fatal("link throughput mismatch")
	}
	// The materialized link plugs into the Eq. (16) transmission model.
	lat, err := link.TransmitLatencyMs(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 {
		t.Fatalf("latency = %v", lat)
	}
}

func TestRangeForThroughput(t *testing.T) {
	s := DefaultWiFi5SNR()
	r, err := s.RangeForThroughput(100)
	if err != nil {
		t.Fatal(err)
	}
	if r <= 1 || r >= 10000 {
		t.Fatalf("range = %v m", r)
	}
	// The throughput just inside the range must satisfy the demand; just
	// outside must not.
	in, err := s.ThroughputMbps(r * 0.99)
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.ThroughputMbps(r * 1.01)
	if err != nil {
		t.Fatal(err)
	}
	if in < 100 || out > 100 {
		t.Fatalf("range boundary wrong: in=%v out=%v", in, out)
	}
	// An impossible demand returns 0 range.
	zero, err := s.RangeForThroughput(1e9)
	if err != nil {
		t.Fatal(err)
	}
	if zero != 0 {
		t.Fatalf("impossible demand range = %v, want 0", zero)
	}
	if _, err := s.RangeForThroughput(0); err == nil {
		t.Fatal("zero demand must error")
	}
}

// Property: range is monotone — asking for more throughput never extends
// the range.
func TestRangeMonotoneProperty(t *testing.T) {
	s := DefaultWiFi5SNR()
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		want1 := 10 + 200*rng.Float64()
		want2 := want1 + 10 + 200*rng.Float64()
		r1, err1 := s.RangeForThroughput(want1)
		r2, err2 := s.RangeForThroughput(want2)
		if err1 != nil || err2 != nil {
			return false
		}
		return r2 <= r1+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
