package wireless

import (
	"fmt"
	"math"
)

// SNRLink derives link throughput from first principles instead of a
// pinned rate: transmit power, log-distance path loss in dB, noise floor,
// and Shannon capacity over the channel bandwidth. This is the "path loss
// ... can be incorporated into the model according to system
// requirements" extension point of Eq. (16), useful when a scenario needs
// throughput to degrade with distance rather than stay fixed.
type SNRLink struct {
	// Technology identifies the access technology.
	Technology AccessTechnology
	// TxPowerDBm is the transmitter output power.
	TxPowerDBm float64
	// NoiseDBm is the receiver noise floor.
	NoiseDBm float64
	// BandwidthMHz is the channel bandwidth.
	BandwidthMHz float64
	// ReferenceLossDB is the path loss at 1 m.
	ReferenceLossDB float64
	// Gamma is the path-loss exponent.
	Gamma float64
	// Efficiency discounts Shannon capacity to a realistic MAC/TCP
	// goodput fraction in (0,1].
	Efficiency float64
}

// DefaultWiFi5SNR returns a typical 5 GHz 802.11ac configuration: 20 dBm
// transmit power over an 80 MHz channel, −90 dBm noise floor, 46 dB loss
// at 1 m, indoor exponent 3.0, and 65% protocol efficiency.
func DefaultWiFi5SNR() SNRLink {
	return SNRLink{
		Technology:      WiFi5GHz,
		TxPowerDBm:      20,
		NoiseDBm:        -90,
		BandwidthMHz:    80,
		ReferenceLossDB: 46,
		Gamma:           3.0,
		Efficiency:      0.65,
	}
}

// Validate checks the configuration.
func (s SNRLink) Validate() error {
	switch {
	case s.BandwidthMHz <= 0:
		return fmt.Errorf("%w: bandwidth %v MHz", ErrThroughput, s.BandwidthMHz)
	case s.Gamma <= 0:
		return fmt.Errorf("%w: path-loss exponent %v", ErrThroughput, s.Gamma)
	case s.Efficiency <= 0 || s.Efficiency > 1:
		return fmt.Errorf("%w: efficiency %v", ErrThroughput, s.Efficiency)
	case s.TxPowerDBm <= s.NoiseDBm:
		return fmt.Errorf("%w: tx power %v dBm below noise %v dBm",
			ErrThroughput, s.TxPowerDBm, s.NoiseDBm)
	}
	return nil
}

// PathLossDB returns the log-distance path loss at the given distance.
func (s SNRLink) PathLossDB(distanceM float64) float64 {
	if distanceM < 1 {
		distanceM = 1
	}
	return s.ReferenceLossDB + 10*s.Gamma*math.Log10(distanceM)
}

// SNRdB returns the received signal-to-noise ratio at the distance.
func (s SNRLink) SNRdB(distanceM float64) float64 {
	return s.TxPowerDBm - s.PathLossDB(distanceM) - s.NoiseDBm
}

// ThroughputMbps returns the Shannon-bounded goodput at the distance:
// η·B·log2(1+SNR).
func (s SNRLink) ThroughputMbps(distanceM float64) (float64, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	if distanceM < 0 {
		return 0, fmt.Errorf("%w: %v m", ErrDistance, distanceM)
	}
	snr := math.Pow(10, s.SNRdB(distanceM)/10)
	cap := s.Efficiency * s.BandwidthMHz * math.Log2(1+snr)
	if cap < 0.1 {
		// Below any usable MCS the link is effectively down; keep a
		// token floor so latency stays finite rather than dividing by
		// zero.
		cap = 0.1
	}
	return cap, nil
}

// LinkAt materializes a conventional Link at the given distance, with the
// throughput implied by the SNR model.
func (s SNRLink) LinkAt(distanceM float64) (Link, error) {
	thr, err := s.ThroughputMbps(distanceM)
	if err != nil {
		return Link{}, err
	}
	return NewLink(s.Technology, thr, distanceM)
}

// RangeForThroughput returns the maximum distance (meters) at which the
// link still sustains the wanted throughput, by bisection over [1, 10km].
// It returns 0 when even 1 m cannot sustain it.
func (s SNRLink) RangeForThroughput(wantMbps float64) (float64, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	if wantMbps <= 0 {
		return 0, fmt.Errorf("%w: want %v Mbps", ErrThroughput, wantMbps)
	}
	at, err := s.ThroughputMbps(1)
	if err != nil {
		return 0, err
	}
	if at < wantMbps {
		return 0, nil
	}
	lo, hi := 1.0, 10000.0
	for i := 0; i < 64; i++ {
		mid := (lo + hi) / 2
		thr, err := s.ThroughputMbps(mid)
		if err != nil {
			return 0, err
		}
		if thr >= wantMbps {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}
