package wireless

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestNewLinkValidation(t *testing.T) {
	tests := []struct {
		name    string
		thr, d  float64
		wantErr error
	}{
		{name: "valid", thr: 100, d: 10},
		{name: "zero distance ok", thr: 100, d: 0},
		{name: "zero throughput", thr: 0, d: 10, wantErr: ErrThroughput},
		{name: "negative throughput", thr: -5, d: 10, wantErr: ErrThroughput},
		{name: "negative distance", thr: 100, d: -1, wantErr: ErrDistance},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewLink(WiFi5GHz, tt.thr, tt.d)
			if tt.wantErr == nil {
				if err != nil {
					t.Fatalf("NewLink: %v", err)
				}
				return
			}
			if !errors.Is(err, tt.wantErr) {
				t.Fatalf("error = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestPropagationDelay(t *testing.T) {
	l, err := NewLink(WiFi5GHz, 100, 300) // 300 m
	if err != nil {
		t.Fatal(err)
	}
	// 300 m / 3e5 m/ms = 1e-3 ms = 1 µs.
	if got := l.PropagationDelayMs(); math.Abs(got-1e-3) > 1e-12 {
		t.Fatalf("propagation delay = %v ms, want 1e-3", got)
	}
}

func TestTransmitLatency(t *testing.T) {
	l, err := NewLink(WiFi5GHz, 80, 0) // 80 Mbps = 10 MB/s = 0.01 MB/ms
	if err != nil {
		t.Fatal(err)
	}
	got, err := l.TransmitLatencyMs(1) // 1 MB
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-100) > 1e-9 {
		t.Fatalf("1 MB over 80 Mbps = %v ms, want 100", got)
	}
	if _, err := l.TransmitLatencyMs(-1); err == nil {
		t.Fatal("negative payload must error")
	}
	zero, err := l.TransmitLatencyMs(0)
	if err != nil {
		t.Fatal(err)
	}
	if zero != l.PropagationDelayMs() {
		t.Fatal("zero payload latency must equal propagation delay")
	}
}

func TestAccessTechnologyString(t *testing.T) {
	tests := []struct {
		tech AccessTechnology
		want string
	}{
		{WiFi24GHz, "wifi-2.4GHz"},
		{WiFi5GHz, "wifi-5GHz"},
		{LTE, "lte"},
		{FiveG, "5g"},
		{AccessTechnology(99), "AccessTechnology(99)"},
	}
	for _, tt := range tests {
		if got := tt.tech.String(); got != tt.want {
			t.Fatalf("String(%d) = %q, want %q", int(tt.tech), got, tt.want)
		}
	}
}

func TestTypicalThroughputOrdering(t *testing.T) {
	if WiFi5GHz.TypicalThroughputMbps() <= WiFi24GHz.TypicalThroughputMbps() {
		t.Fatal("5 GHz Wi-Fi should out-throughput 2.4 GHz")
	}
	if FiveG.TypicalThroughputMbps() <= LTE.TypicalThroughputMbps() {
		t.Fatal("5G should out-throughput LTE")
	}
	if AccessTechnology(99).TypicalThroughputMbps() <= 0 {
		t.Fatal("unknown technology needs a positive default")
	}
}

func TestFreeSpacePathLoss(t *testing.T) {
	pl := FreeSpace{ReferenceM: 10, Floor: 0.05}
	if got := pl.ThroughputFactor(5); got != 1 {
		t.Fatalf("inside reference factor = %v, want 1", got)
	}
	if got := pl.ThroughputFactor(20); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("2x reference factor = %v, want 0.25", got)
	}
	if got := pl.ThroughputFactor(1e6); got != 0.05 {
		t.Fatalf("far factor = %v, want floor 0.05", got)
	}
	// Zero reference defaults to 1 m.
	pl0 := FreeSpace{}
	if got := pl0.ThroughputFactor(0.5); got != 1 {
		t.Fatalf("default-reference factor = %v, want 1", got)
	}
}

func TestLogDistancePathLoss(t *testing.T) {
	pl := &LogDistance{ReferenceM: 1, Gamma: 2, Floor: 0.01}
	if got := pl.ThroughputFactor(1); got != 1 {
		t.Fatalf("reference factor = %v, want 1", got)
	}
	// At 10 m with γ=2: loss = 20 dB → factor = 10^(−20/30) ≈ 0.215.
	got := pl.ThroughputFactor(10)
	if math.Abs(got-math.Pow(10, -20.0/30)) > 1e-9 {
		t.Fatalf("factor(10m) = %v", got)
	}
	// Shadowing is deterministic under a seeded RNG.
	a := &LogDistance{ReferenceM: 1, Gamma: 2, ShadowSigmaDB: 4, Rng: stats.NewRNG(1)}
	b := &LogDistance{ReferenceM: 1, Gamma: 2, ShadowSigmaDB: 4, Rng: stats.NewRNG(1)}
	if a.ThroughputFactor(50) != b.ThroughputFactor(50) {
		t.Fatal("seeded shadowing must be reproducible")
	}
}

func TestEffectiveThroughputWithLoss(t *testing.T) {
	l, err := NewLink(WiFi5GHz, 100, 20)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.EffectiveThroughputMbps(); got != 100 {
		t.Fatalf("no-loss effective throughput = %v, want 100", got)
	}
	l.Loss = FreeSpace{ReferenceM: 10, Floor: 0.01}
	if got := l.EffectiveThroughputMbps(); math.Abs(got-25) > 1e-9 {
		t.Fatalf("lossy effective throughput = %v, want 25", got)
	}
	// Latency with loss must exceed latency without.
	lossless, _ := NewLink(WiFi5GHz, 100, 20)
	a, err := l.TransmitLatencyMs(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := lossless.TransmitLatencyMs(1)
	if err != nil {
		t.Fatal(err)
	}
	if a <= b {
		t.Fatalf("lossy latency %v must exceed lossless %v", a, b)
	}
}

// Property: transmit latency is monotonically increasing in payload size
// and in distance.
func TestTransmitLatencyMonotonic(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		thr := 10 + 200*rng.Float64()
		d := 500 * rng.Float64()
		l, err := NewLink(WiFi5GHz, thr, d)
		if err != nil {
			return false
		}
		s1 := 5 * rng.Float64()
		s2 := s1 + 0.1 + 5*rng.Float64()
		a, err1 := l.TransmitLatencyMs(s1)
		b, err2 := l.TransmitLatencyMs(s2)
		if err1 != nil || err2 != nil {
			return false
		}
		if b <= a {
			return false
		}
		far, err := NewLink(WiFi5GHz, thr, d+100)
		if err != nil {
			return false
		}
		c, err := far.TransmitLatencyMs(s1)
		if err != nil {
			return false
		}
		return c > a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: path-loss factors always lie in (0, 1].
func TestPathLossFactorBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		d := 1000 * rng.Float64()
		fs := FreeSpace{ReferenceM: 1 + 20*rng.Float64(), Floor: 0.01}
		ld := &LogDistance{ReferenceM: 1, Gamma: 2 + 2*rng.Float64(),
			ShadowSigmaDB: 6 * rng.Float64(), Rng: rng, Floor: 0.01}
		for _, pl := range []PathLoss{fs, ld} {
			got := pl.ThroughputFactor(d)
			if got <= 0 || got > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
