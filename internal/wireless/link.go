// Package wireless models the edge-assisted wireless medium of the paper:
// a link with a throughput (the available wireless resource r_w of Eq. 16),
// a propagation distance, and optional path-loss models. The paper's base
// model assumes "no path loss, shadowing, or fading" for sensor propagation
// and transmission, but explicitly notes both "can be incorporated into the
// model according to system requirements" — the PathLoss interface is that
// extension point.
package wireless

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/stats"
)

// PropagationSpeed is the signal propagation speed c in meters per
// millisecond (speed of light: 3·10⁸ m/s = 3·10⁵ m/ms).
const PropagationSpeed = 3e5

// Common errors.
var (
	// ErrThroughput indicates a non-positive link throughput.
	ErrThroughput = errors.New("wireless: throughput must be positive")
	// ErrDistance indicates a negative distance.
	ErrDistance = errors.New("wireless: distance must be non-negative")
)

// AccessTechnology identifies the wireless access technology of a
// sub-network, used by the mobility model to distinguish horizontal
// (same technology) from vertical (different technology) handoffs.
type AccessTechnology int

// Supported access technologies. The testbed used a dual-band 802.11
// router; 5G/LTE presets cover the heterogeneous-network scenarios of
// Section I.
const (
	WiFi24GHz AccessTechnology = iota + 1
	WiFi5GHz
	LTE
	FiveG
)

// String returns the technology name.
func (a AccessTechnology) String() string {
	switch a {
	case WiFi24GHz:
		return "wifi-2.4GHz"
	case WiFi5GHz:
		return "wifi-5GHz"
	case LTE:
		return "lte"
	case FiveG:
		return "5g"
	default:
		return fmt.Sprintf("AccessTechnology(%d)", int(a))
	}
}

// TypicalThroughputMbps returns a representative TCP throughput for the
// technology, used when a scenario does not pin the link rate explicitly.
func (a AccessTechnology) TypicalThroughputMbps() float64 {
	switch a {
	case WiFi24GHz:
		return 40
	case WiFi5GHz:
		return 120
	case LTE:
		return 25
	case FiveG:
		return 300
	default:
		return 40
	}
}

// Link is a wireless link between an XR device and a peer (edge server,
// external sensor, or cooperative device).
type Link struct {
	// Technology identifies the access technology.
	Technology AccessTechnology
	// ThroughputMbps is the available wireless resource r_w (Eq. 16).
	ThroughputMbps float64
	// DistanceM is the device↔peer distance d in meters.
	DistanceM float64
	// Loss optionally attenuates effective throughput; nil means the
	// paper's base model (no path loss).
	Loss PathLoss
}

// NewLink validates and constructs a link.
func NewLink(tech AccessTechnology, throughputMbps, distanceM float64) (Link, error) {
	if throughputMbps <= 0 {
		return Link{}, fmt.Errorf("%w: %v Mbps", ErrThroughput, throughputMbps)
	}
	if distanceM < 0 {
		return Link{}, fmt.Errorf("%w: %v m", ErrDistance, distanceM)
	}
	return Link{Technology: tech, ThroughputMbps: throughputMbps, DistanceM: distanceM}, nil
}

// PropagationDelayMs returns d/c in milliseconds (the d_ε/c term of
// Eq. 16 and the d_m/c term of Eq. 23).
func (l Link) PropagationDelayMs() float64 {
	return l.DistanceM / PropagationSpeed
}

// EffectiveThroughputMbps returns the throughput after applying the
// optional path-loss model.
func (l Link) EffectiveThroughputMbps() float64 {
	if l.Loss == nil {
		return l.ThroughputMbps
	}
	return l.ThroughputMbps * l.Loss.ThroughputFactor(l.DistanceM)
}

// TransmitLatencyMs returns the transmission latency of Eq. (16) for a
// payload of dataSizeMB megabytes: δ/r_w + d/c. Throughput converts as
// 1 Mbps = 0.125 MB per 1000 ms.
func (l Link) TransmitLatencyMs(dataSizeMB float64) (float64, error) {
	if dataSizeMB < 0 {
		return 0, fmt.Errorf("wireless: data size must be non-negative, have %v MB", dataSizeMB)
	}
	thr := l.EffectiveThroughputMbps()
	if thr <= 0 {
		return 0, fmt.Errorf("%w: effective throughput %v Mbps", ErrThroughput, thr)
	}
	mbPerMs := thr / 8 / 1000 // MB transferred per millisecond
	return dataSizeMB/mbPerMs + l.PropagationDelayMs(), nil
}

// PathLoss attenuates link throughput as a function of distance. Factor 1
// means no loss.
type PathLoss interface {
	// ThroughputFactor returns the multiplicative throughput factor in
	// (0, 1] at the given distance in meters.
	ThroughputFactor(distanceM float64) float64
}

// FreeSpace is a free-space path-loss model mapped onto throughput: the
// factor decays with the square of distance beyond a reference distance,
// floored so links never drop to exactly zero.
type FreeSpace struct {
	// ReferenceM is the distance at which no attenuation applies.
	ReferenceM float64
	// Floor is the minimum throughput factor.
	Floor float64
}

var _ PathLoss = FreeSpace{}

// ThroughputFactor implements PathLoss.
func (f FreeSpace) ThroughputFactor(distanceM float64) float64 {
	ref := f.ReferenceM
	if ref <= 0 {
		ref = 1
	}
	if distanceM <= ref {
		return 1
	}
	factor := (ref / distanceM) * (ref / distanceM)
	return clampFactor(factor, f.Floor)
}

// LogDistance is a log-distance path-loss model with exponent Gamma and
// optional log-normal shadowing driven by a deterministic RNG.
type LogDistance struct {
	// ReferenceM is the reference distance.
	ReferenceM float64
	// Gamma is the path-loss exponent (2 free space, 2.7–3.5 urban).
	Gamma float64
	// ShadowSigmaDB is the shadowing standard deviation in dB; zero
	// disables shadowing.
	ShadowSigmaDB float64
	// Rng drives shadowing; required when ShadowSigmaDB > 0.
	Rng *stats.RNG
	// Floor is the minimum throughput factor.
	Floor float64
}

var _ PathLoss = (*LogDistance)(nil)

// ThroughputFactor implements PathLoss.
func (l *LogDistance) ThroughputFactor(distanceM float64) float64 {
	ref := l.ReferenceM
	if ref <= 0 {
		ref = 1
	}
	if distanceM < ref {
		distanceM = ref
	}
	lossDB := 10 * l.Gamma * math.Log10(distanceM/ref)
	if l.ShadowSigmaDB > 0 && l.Rng != nil {
		lossDB += l.Rng.Normal(0, l.ShadowSigmaDB)
	}
	// Map dB loss onto a throughput factor; 30 dB of extra loss roughly
	// decimates usable TCP throughput on 802.11 links.
	factor := math.Pow(10, -lossDB/30)
	return clampFactor(factor, l.Floor)
}

func clampFactor(factor, floor float64) float64 {
	if floor <= 0 {
		floor = 0.01
	}
	if factor < floor {
		return floor
	}
	if factor > 1 {
		return 1
	}
	return factor
}
