package stats

import (
	"errors"
	"math"
	"testing"
)

func TestRMSE(t *testing.T) {
	got, err := RMSE([]float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("perfect RMSE = %v, want 0", got)
	}
	got, err = RMSE([]float64{0, 0}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if want := math.Sqrt(12.5); math.Abs(got-want) > 1e-12 {
		t.Fatalf("RMSE = %v, want %v", got, want)
	}
	if _, err := RMSE([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrLength) {
		t.Fatal("length mismatch must error")
	}
	if _, err := RMSE(nil, nil); !errors.Is(err, ErrEmpty) {
		t.Fatal("empty input must error")
	}
}

func TestMAE(t *testing.T) {
	got, err := MAE([]float64{1, -1}, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("MAE = %v, want 1", got)
	}
}

func TestMAPE(t *testing.T) {
	got, err := MAPE([]float64{110, 90}, []float64{100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-10) > 1e-12 {
		t.Fatalf("MAPE = %v, want 10", got)
	}
	// Zero truth values are skipped.
	got, err = MAPE([]float64{110, 5}, []float64{100, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-10) > 1e-12 {
		t.Fatalf("MAPE with zero truth = %v, want 10", got)
	}
	if _, err := MAPE([]float64{1, 2}, []float64{0, 0}); err == nil {
		t.Fatal("all-zero truth must error")
	}
}

func TestRSquared(t *testing.T) {
	truth := []float64{1, 2, 3, 4, 5}
	perfect, err := RSquared(truth, truth)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(perfect-1) > 1e-12 {
		t.Fatalf("perfect R² = %v, want 1", perfect)
	}
	// Predicting the mean gives R² = 0.
	meanPred := []float64{3, 3, 3, 3, 3}
	zero, err := RSquared(meanPred, truth)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(zero) > 1e-12 {
		t.Fatalf("mean-prediction R² = %v, want 0", zero)
	}
	// Worse than the mean gives negative R².
	bad := []float64{5, 4, 3, 2, 1}
	neg, err := RSquared(bad, truth)
	if err != nil {
		t.Fatal(err)
	}
	if neg >= 0 {
		t.Fatalf("anti-correlated R² = %v, want < 0", neg)
	}
	if _, err := RSquared([]float64{1, 2}, []float64{3, 3}); err == nil {
		t.Fatal("constant truth must error")
	}
}

func TestNormalizedAccuracy(t *testing.T) {
	tests := []struct {
		name     string
		pred, gt float64
		want     float64
	}{
		{name: "exact", pred: 100, gt: 100, want: 100},
		{name: "10 percent high", pred: 110, gt: 100, want: 90},
		{name: "10 percent low", pred: 90, gt: 100, want: 90},
		{name: "wildly wrong floors at zero", pred: 500, gt: 100, want: 0},
		{name: "zero gt zero pred", pred: 0, gt: 0, want: 100},
		{name: "zero gt nonzero pred", pred: 1, gt: 0, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := NormalizedAccuracy(tt.pred, tt.gt); math.Abs(got-tt.want) > 1e-9 {
				t.Fatalf("NormalizedAccuracy = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestMeanNormalizedAccuracy(t *testing.T) {
	got, err := MeanNormalizedAccuracy([]float64{110, 100}, []float64{100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-95) > 1e-9 {
		t.Fatalf("mean accuracy = %v, want 95", got)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must give same stream")
		}
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(1)
	n := 20000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Normal(10, 2)
	}
	mean, _ := Mean(xs)
	sd, _ := StdDev(xs)
	if math.Abs(mean-10) > 0.1 {
		t.Fatalf("normal mean = %v, want ≈10", mean)
	}
	if math.Abs(sd-2) > 0.1 {
		t.Fatalf("normal sd = %v, want ≈2", sd)
	}
}

func TestRNGExponential(t *testing.T) {
	r := NewRNG(2)
	n := 20000
	xs := make([]float64, n)
	for i := range xs {
		v, err := r.Exponential(4)
		if err != nil {
			t.Fatal(err)
		}
		if v < 0 {
			t.Fatal("exponential variate must be non-negative")
		}
		xs[i] = v
	}
	mean, _ := Mean(xs)
	if math.Abs(mean-0.25) > 0.02 {
		t.Fatalf("exponential mean = %v, want ≈0.25", mean)
	}
	if _, err := r.Exponential(0); err == nil {
		t.Fatal("non-positive rate must error")
	}
}

func TestRNGPoisson(t *testing.T) {
	r := NewRNG(3)
	for _, mean := range []float64{0, 0.5, 3, 12, 50} {
		n := 5000
		var sum float64
		for i := 0; i < n; i++ {
			k, err := r.Poisson(mean)
			if err != nil {
				t.Fatal(err)
			}
			if k < 0 {
				t.Fatal("poisson count must be non-negative")
			}
			sum += float64(k)
		}
		got := sum / float64(n)
		tol := 0.15 * (1 + mean)
		if math.Abs(got-mean) > tol {
			t.Fatalf("poisson(%v) sample mean = %v", mean, got)
		}
	}
	if _, err := NewRNG(1).Poisson(-1); err == nil {
		t.Fatal("negative mean must error")
	}
}

func TestRNGJitterNonNegative(t *testing.T) {
	r := NewRNG(4)
	for i := 0; i < 1000; i++ {
		if v := r.Jitter(1, 2.0); v < 0 {
			t.Fatal("Jitter must floor at zero")
		}
	}
	// Zero noise returns the value unchanged.
	if v := r.Jitter(3.5, 0); v != 3.5 {
		t.Fatalf("Jitter(x,0) = %v, want 3.5", v)
	}
}
