package stats

import (
	"fmt"
	"math"
	"math/rand"
)

// RNG wraps a seeded source with the distribution samplers needed by the
// framework: Gaussian measurement noise for the synthetic testbed,
// exponential inter-arrival/service times for the M/M/1 input buffer, and
// Poisson counts for sensor update batching. All experiments seed RNGs
// explicitly so every figure is reproducible run-to-run.
type RNG struct {
	src *rand.Rand
}

// NewRNG returns a deterministic RNG seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{src: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform variate in [0,1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// Intn returns a uniform integer in [0,n).
func (r *RNG) Intn(n int) int { return r.src.Intn(n) }

// Normal returns a Gaussian variate with the given mean and standard
// deviation.
func (r *RNG) Normal(mean, sd float64) float64 {
	return mean + sd*r.src.NormFloat64()
}

// Exponential returns an exponential variate with the given rate λ (mean
// 1/λ). It returns an error for non-positive rates.
func (r *RNG) Exponential(rate float64) (float64, error) {
	if rate <= 0 {
		return 0, fmt.Errorf("stats: exponential rate must be positive, have %v", rate)
	}
	return r.src.ExpFloat64() / rate, nil
}

// Poisson returns a Poisson variate with the given mean using Knuth's
// method for small means and a normal approximation above 30 (adequate for
// the packet-count scales in this framework).
func (r *RNG) Poisson(mean float64) (int, error) {
	if mean < 0 {
		return 0, fmt.Errorf("stats: poisson mean must be non-negative, have %v", mean)
	}
	if mean == 0 {
		return 0, nil
	}
	if mean > 30 {
		v := r.Normal(mean, math.Sqrt(mean))
		if v < 0 {
			v = 0
		}
		return int(v + 0.5), nil
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.src.Float64()
		if p <= l {
			return k, nil
		}
		k++
	}
}

// Jitter returns v perturbed by multiplicative Gaussian noise with relative
// standard deviation relSD, floored at zero. It models measurement noise of
// a physical monitor (the paper's Monsoon sampler) around a true value.
func (r *RNG) Jitter(v, relSD float64) float64 {
	out := v * (1 + relSD*r.src.NormFloat64())
	if out < 0 {
		return 0
	}
	return out
}
