package stats

import (
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// sketchSamples draws a reproducible mixed-shape sample set: lognormal
// bulk (the shape of frame latencies), a heavy uniform tail, and exact
// zeros (idle frames), exercising the zero ledger and both bucket ends.
func sketchSamples(t *testing.T, rng *rand.Rand, n int) []float64 {
	t.Helper()
	xs := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		switch {
		case i%97 == 0:
			xs = append(xs, 0)
		case i%13 == 0:
			xs = append(xs, 100+900*rng.Float64())
		default:
			xs = append(xs, math.Exp(rng.NormFloat64()*0.6+2.5))
		}
	}
	return xs
}

// checkQuantile asserts the sketch's estimate at q lands within alpha of
// the exact sample distribution. The sketch answers the nearest-rank
// quantile while Quantile interpolates, so the estimate is checked
// against the bracketing order statistics (with alpha slack on each),
// not against the interpolated point.
func checkQuantile(t *testing.T, s *Sketch, sorted []float64, q float64) {
	t.Helper()
	got, err := s.Quantile(q)
	if err != nil {
		t.Fatalf("Quantile(%v): %v", q, err)
	}
	// Bracketing order statistics around rank ⌈q·n⌉, widened by one
	// position to absorb the nearest-rank vs interpolation convention gap.
	n := len(sorted)
	rank := int(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	loIdx, hiIdx := rank-2, rank
	if loIdx < 0 {
		loIdx = 0
	}
	if hiIdx > n-1 {
		hiIdx = n - 1
	}
	lo := sorted[loIdx] * (1 - s.Alpha)
	hi := sorted[hiIdx] * (1 + s.Alpha)
	if got < lo || got > hi {
		t.Errorf("Quantile(%v) = %v, want within [%v, %v] (exact rank value %v)",
			q, got, lo, hi, sorted[rank-1])
	}
}

// TestSketchQuantileAccuracy is the core property: for randomized sample
// sets, every sketch quantile lands within the advertised relative error
// of the exact order statistics.
func TestSketchQuantileAccuracy(t *testing.T) {
	qs := []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1}
	for _, alpha := range []float64{0.005, 0.01, 0.05} {
		for trial := 0; trial < 5; trial++ {
			rng := rand.New(rand.NewSource(int64(1000*trial) + int64(alpha*1e6)))
			xs := sketchSamples(t, rng, 5000)
			s := NewSketch(alpha)
			for _, x := range xs {
				if err := s.Add(x); err != nil {
					t.Fatalf("Add(%v): %v", x, err)
				}
			}
			sorted := append([]float64(nil), xs...)
			sort.Float64s(sorted)
			for _, q := range qs {
				checkQuantile(t, s, sorted, q)
			}
			if got, want := s.Mean(), mean(xs); math.Abs(got-want) > 1e-9*math.Abs(want) {
				t.Errorf("alpha %v: Mean() = %v, want exact %v", alpha, got, want)
			}
			if s.Min != sorted[0] || s.Max != sorted[len(sorted)-1] {
				t.Errorf("alpha %v: extremes (%v, %v), want (%v, %v)",
					alpha, s.Min, s.Max, sorted[0], sorted[len(sorted)-1])
			}
		}
	}
}

func mean(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// TestSketchMergeMatchesPooled is the satellite property test: splitting a
// sample stream across K sketches and merging them must answer quantiles
// within the error bound of the exact quantiles of the pooled samples —
// the guarantee the population sweep's shard folding relies on.
func TestSketchMergeMatchesPooled(t *testing.T) {
	qs := []float64{0.01, 0.1, 0.5, 0.9, 0.99, 0.999}
	for trial := 0; trial < 4; trial++ {
		rng := rand.New(rand.NewSource(int64(77 + trial)))
		xs := sketchSamples(t, rng, 8000)
		for _, parts := range []int{2, 7, 64} {
			shards := make([]*Sketch, parts)
			for i := range shards {
				shards[i] = NewSketch(0)
			}
			for i, x := range xs {
				if err := shards[i%parts].Add(x); err != nil {
					t.Fatalf("Add: %v", err)
				}
			}
			merged := NewSketch(0)
			for _, sh := range shards {
				if err := merged.Merge(sh); err != nil {
					t.Fatalf("Merge: %v", err)
				}
			}
			if merged.Count != uint64(len(xs)) {
				t.Fatalf("merged count %d, want %d", merged.Count, len(xs))
			}
			sorted := append([]float64(nil), xs...)
			sort.Float64s(sorted)
			for _, q := range qs {
				checkQuantile(t, merged, sorted, q)
			}
			// Merging must also reproduce the single-sketch answer exactly:
			// integer bucket counts make the fold lossless.
			direct := NewSketch(0)
			for _, x := range xs {
				if err := direct.Add(x); err != nil {
					t.Fatalf("Add: %v", err)
				}
			}
			for _, q := range qs {
				dv, _ := direct.Quantile(q)
				mv, _ := merged.Quantile(q)
				if dv != mv {
					t.Errorf("parts %d q %v: merged %v != direct %v", parts, q, mv, dv)
				}
			}
		}
	}
}

// TestSketchMergeDoesNotMutateSource guards the cache-sharing contract:
// a summary served to several waiters is merged into many accumulators.
func TestSketchMergeDoesNotMutateSource(t *testing.T) {
	src := NewSketch(0)
	for _, x := range []float64{0, 1, 2.5, 40, 41, 42} {
		if err := src.Add(x); err != nil {
			t.Fatal(err)
		}
	}
	before, err := json.Marshal(src)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		dst := NewSketch(0)
		if err := dst.Merge(src); err != nil {
			t.Fatal(err)
		}
		if err := dst.Add(999); err != nil {
			t.Fatal(err)
		}
	}
	after, err := json.Marshal(src)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatalf("Merge mutated its source:\nbefore %s\nafter  %s", before, after)
	}
}

// TestSketchJSONRoundTrip checks a sketch survives the wire: a worker
// marshals its summary, the dispatcher unmarshals and keeps merging.
func TestSketchJSONRoundTrip(t *testing.T) {
	s := NewSketch(0.02)
	for _, x := range []float64{0, 0, 0.004, 1.25, 17, 17.2, 5000} {
		if err := s.Add(x); err != nil {
			t.Fatal(err)
		}
	}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Sketch
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Count != s.Count || back.Sum != s.Sum || back.Min != s.Min ||
		back.Max != s.Max || back.Zeros != s.Zeros || back.Alpha != s.Alpha {
		t.Fatalf("round trip lost scalars: %+v vs %+v", back, s)
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		want, _ := s.Quantile(q)
		got, err := back.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("Quantile(%v) after round trip: %v, want %v", q, got, want)
		}
		if err := back.Add(3.3); err != nil {
			t.Fatalf("Add after round trip: %v", err)
		}
	}
}

func TestSketchErrors(t *testing.T) {
	s := NewSketch(0)
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1)} {
		if err := s.Add(bad); err == nil {
			t.Errorf("Add(%v): want error", bad)
		}
	}
	if s.Count != 0 {
		t.Fatalf("rejected samples counted: %d", s.Count)
	}
	if _, err := s.Quantile(0.5); err == nil {
		t.Error("Quantile on empty sketch: want error")
	}
	if err := s.Add(1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Quantile(1.5); err == nil {
		t.Error("Quantile(1.5): want error")
	}
	other := NewSketch(0.05)
	if err := other.Add(2); err != nil {
		t.Fatal(err)
	}
	if err := s.Merge(other); err == nil {
		t.Error("Merge with mismatched alpha: want error")
	}
	var zero Sketch
	if err := zero.Add(1); err == nil {
		t.Error("Add on zero-value sketch: want error")
	}
	if err := s.Merge(nil); err != nil {
		t.Errorf("Merge(nil): %v", err)
	}
	if err := NewSketch(0).Merge(NewSketch(0.5)); err != nil {
		t.Errorf("Merge of empty sketch must ignore alpha: %v", err)
	}
}

// TestSketchDefaultAlpha pins the wire constant: a worker resolving an
// unset accuracy must agree with its dispatcher.
func TestSketchDefaultAlpha(t *testing.T) {
	if s := NewSketch(0); s.Alpha != DefaultSketchAlpha {
		t.Fatalf("NewSketch(0).Alpha = %v, want %v", s.Alpha, DefaultSketchAlpha)
	}
	if s := NewSketch(-3); s.Alpha != DefaultSketchAlpha {
		t.Fatalf("NewSketch(-3).Alpha = %v, want %v", s.Alpha, DefaultSketchAlpha)
	}
}
