// Package stats provides the descriptive statistics, error metrics, and
// random-variate generation used across the XR performance-analysis
// framework: goodness-of-fit measures for the regression models (R², RMSE,
// MAPE), confidence intervals for the 95%-boundary fits the paper reports,
// and exponential/Poisson sampling for the M/M/1 input-buffer simulation.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Common errors.
var (
	// ErrEmpty indicates an operation on an empty sample.
	ErrEmpty = errors.New("stats: empty sample")
	// ErrLength indicates mismatched sample lengths.
	ErrLength = errors.New("stats: sample length mismatch")
)

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs)), nil
}

// Variance returns the unbiased sample variance (n−1 denominator).
func Variance(xs []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, fmt.Errorf("%w: variance needs n >= 2, have %d", ErrEmpty, len(xs))
	}
	m, _ := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1), nil
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// MinMax returns the smallest and largest values of xs.
func MinMax(xs []float64) (min, max float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, nil
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. The input is not modified.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v out of [0,1]", q)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 0.5 quantile.
func Median(xs []float64) (float64, error) { return Quantile(xs, 0.5) }

// MeanCI returns the mean of xs together with the half-width of its
// level-confidence interval using a normal approximation (z-interval). The
// paper fits all regressions "using a 95% confidence boundary", for which
// level = 0.95 (z ≈ 1.96).
func MeanCI(xs []float64, level float64) (mean, halfWidth float64, err error) {
	if len(xs) < 2 {
		return 0, 0, fmt.Errorf("%w: CI needs n >= 2, have %d", ErrEmpty, len(xs))
	}
	if level <= 0 || level >= 1 {
		return 0, 0, fmt.Errorf("stats: confidence level %v out of (0,1)", level)
	}
	mean, _ = Mean(xs)
	sd, _ := StdDev(xs)
	z := zQuantile((1 + level) / 2)
	halfWidth = z * sd / math.Sqrt(float64(len(xs)))
	return mean, halfWidth, nil
}

// zQuantile returns the p-th quantile of the standard normal distribution
// using the Acklam rational approximation (relative error < 1.15e-9).
func zQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		if p == 0.5 {
			return 0
		}
		return math.NaN()
	}
	// Coefficients for the central and tail regions.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}

	const (
		pLow  = 0.02425
		pHigh = 1 - pLow
	)
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// Summary bundles the descriptive statistics of one sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Median float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	mean, _ := Mean(xs)
	min, max, _ := MinMax(xs)
	med, _ := Median(xs)
	var sd float64
	if len(xs) >= 2 {
		sd, _ = StdDev(xs)
	}
	return Summary{N: len(xs), Mean: mean, StdDev: sd, Min: min, Median: med, Max: max}, nil
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g med=%.4g max=%.4g",
		s.N, s.Mean, s.StdDev, s.Min, s.Median, s.Max)
}
