package stats

import (
	"fmt"
	"math"
)

// RMSE returns the root-mean-square error between predictions and truth.
func RMSE(pred, truth []float64) (float64, error) {
	if err := sameLength(pred, truth); err != nil {
		return 0, err
	}
	var s float64
	for i := range pred {
		d := pred[i] - truth[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred))), nil
}

// MAE returns the mean absolute error between predictions and truth.
func MAE(pred, truth []float64) (float64, error) {
	if err := sameLength(pred, truth); err != nil {
		return 0, err
	}
	var s float64
	for i := range pred {
		s += math.Abs(pred[i] - truth[i])
	}
	return s / float64(len(pred)), nil
}

// MAPE returns the mean absolute percentage error (in percent, e.g. 2.74
// for the paper's 2.74% local-inference latency error). Zero truth values
// are skipped; if every truth value is zero an error is returned.
func MAPE(pred, truth []float64) (float64, error) {
	if err := sameLength(pred, truth); err != nil {
		return 0, err
	}
	var s float64
	n := 0
	for i := range pred {
		if truth[i] == 0 {
			continue
		}
		s += math.Abs((pred[i] - truth[i]) / truth[i])
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("%w: all truth values are zero", ErrEmpty)
	}
	return 100 * s / float64(n), nil
}

// RSquared returns the coefficient of determination of predictions against
// truth: 1 − SS_res/SS_tot. A perfect fit gives 1; predicting the mean
// gives 0; worse-than-mean fits are negative.
func RSquared(pred, truth []float64) (float64, error) {
	if err := sameLength(pred, truth); err != nil {
		return 0, err
	}
	if len(truth) < 2 {
		return 0, fmt.Errorf("%w: R² needs n >= 2, have %d", ErrEmpty, len(truth))
	}
	mean, _ := Mean(truth)
	var ssRes, ssTot float64
	for i := range truth {
		r := truth[i] - pred[i]
		ssRes += r * r
		d := truth[i] - mean
		ssTot += d * d
	}
	if ssTot == 0 {
		return 0, fmt.Errorf("stats: R² undefined for constant truth")
	}
	return 1 - ssRes/ssTot, nil
}

// NormalizedAccuracy converts model output into the paper's Fig. 5 metric:
// the percentage accuracy of a prediction relative to ground truth, where
// ground truth itself scores 100%. Accuracy = 100·(1 − |pred−gt|/gt),
// floored at 0 for wildly wrong predictions.
func NormalizedAccuracy(pred, gt float64) float64 {
	if gt == 0 {
		if pred == 0 {
			return 100
		}
		return 0
	}
	acc := 100 * (1 - math.Abs(pred-gt)/math.Abs(gt))
	if acc < 0 {
		return 0
	}
	return acc
}

// MeanNormalizedAccuracy averages NormalizedAccuracy over paired samples.
func MeanNormalizedAccuracy(pred, truth []float64) (float64, error) {
	if err := sameLength(pred, truth); err != nil {
		return 0, err
	}
	var s float64
	for i := range pred {
		s += NormalizedAccuracy(pred[i], truth[i])
	}
	return s / float64(len(pred)), nil
}

func sameLength(a, b []float64) error {
	if len(a) == 0 || len(b) == 0 {
		return ErrEmpty
	}
	if len(a) != len(b) {
		return fmt.Errorf("%w: %d vs %d", ErrLength, len(a), len(b))
	}
	return nil
}
