package stats

import (
	"fmt"
	"math"
	"sort"
)

// DefaultSketchAlpha is the default relative accuracy of a quantile
// sketch: quantile estimates land within ±1% of an exact sample value of
// the queried rank. It is a compile-time constant shared by every process
// of a distributed sweep, so a worker resolving an unset accuracy agrees
// with its dispatcher.
const DefaultSketchAlpha = 0.01

// Sketch is a mergeable streaming quantile sketch over non-negative
// samples, in the DDSketch family: values are counted in exponentially
// sized buckets (bucket i covers (γ^(i-1), γ^i] with γ = (1+α)/(1-α)), so
// any quantile is answered within relative error α while memory stays
// bounded by the dynamic range of the data — independent of how many
// samples stream through. Sketches serialize to JSON, which is how a
// session worker ships a million frames' worth of latency distribution
// back to its dispatcher as a few kilobytes.
//
// Bucket counts are integers, so merging is exact and commutative; Sum is
// a float accumulator, so callers that require bit-identical output must
// merge sketches in a deterministic order (the population sweep merges in
// request order). The zero Sketch is not usable; construct with
// NewSketch or unmarshal a serialized one.
type Sketch struct {
	// Alpha is the relative accuracy the sketch was built with.
	Alpha float64 `json:"alpha"`
	// Count is the total number of samples, including zeros.
	Count uint64 `json:"count"`
	// Sum is the exact running sum of all samples.
	Sum float64 `json:"sum"`
	// Min and Max are the exact extremes (valid when Count > 0).
	Min float64 `json:"min"`
	Max float64 `json:"max"`
	// Zeros counts exact-zero samples, which no log bucket can hold.
	Zeros uint64 `json:"zeros,omitempty"`
	// Buckets maps bucket index to sample count for positive samples.
	Buckets map[int]uint64 `json:"buckets,omitempty"`
}

// NewSketch builds a sketch with relative accuracy alpha; alpha <= 0
// selects DefaultSketchAlpha. Alpha must stay below 1.
func NewSketch(alpha float64) *Sketch {
	if alpha <= 0 {
		alpha = DefaultSketchAlpha
	}
	return &Sketch{Alpha: alpha, Buckets: make(map[int]uint64)}
}

// gamma returns the bucket growth factor γ = (1+α)/(1-α).
func (s *Sketch) gamma() float64 { return (1 + s.Alpha) / (1 - s.Alpha) }

// validAlpha reports whether the sketch's accuracy parameter is usable.
func (s *Sketch) validAlpha() bool { return s.Alpha > 0 && s.Alpha < 1 }

// Add records one sample. Samples must be non-negative — the sketch
// tracks latency and energy distributions, which are.
func (s *Sketch) Add(x float64) error {
	if !s.validAlpha() {
		return fmt.Errorf("stats: sketch alpha %v out of (0,1)", s.Alpha)
	}
	if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
		return fmt.Errorf("stats: sketch sample %v (want finite, non-negative)", x)
	}
	if s.Count == 0 || x < s.Min {
		s.Min = x
	}
	if s.Count == 0 || x > s.Max {
		s.Max = x
	}
	s.Count++
	s.Sum += x
	if x == 0 {
		s.Zeros++
		return nil
	}
	if s.Buckets == nil {
		s.Buckets = make(map[int]uint64)
	}
	s.Buckets[s.bucketIndex(x)]++
	return nil
}

// bucketIndex returns i such that γ^(i-1) < x <= γ^i.
func (s *Sketch) bucketIndex(x float64) int {
	return int(math.Ceil(math.Log(x) / math.Log(s.gamma())))
}

// bucketValue returns the representative value of bucket i — the point
// whose relative distance to every value in (γ^(i-1), γ^i] is at most α.
func (s *Sketch) bucketValue(i int) float64 {
	g := s.gamma()
	return 2 * math.Pow(g, float64(i)) / (g + 1)
}

// Merge folds o's samples into s. Both sketches must share the same
// alpha (bucket boundaries differ otherwise). o is not modified, so a
// shared measurement — e.g. one served to several waiters by the
// memoizing cache — can be merged into many accumulators safely.
func (s *Sketch) Merge(o *Sketch) error {
	if o == nil || o.Count == 0 {
		return nil
	}
	if !s.validAlpha() {
		return fmt.Errorf("stats: sketch alpha %v out of (0,1)", s.Alpha)
	}
	if o.Alpha != s.Alpha {
		return fmt.Errorf("stats: merging sketch alpha %v into %v", o.Alpha, s.Alpha)
	}
	if s.Count == 0 || o.Min < s.Min {
		s.Min = o.Min
	}
	if s.Count == 0 || o.Max > s.Max {
		s.Max = o.Max
	}
	s.Count += o.Count
	s.Sum += o.Sum
	s.Zeros += o.Zeros
	if len(o.Buckets) > 0 && s.Buckets == nil {
		s.Buckets = make(map[int]uint64, len(o.Buckets))
	}
	for i, n := range o.Buckets {
		s.Buckets[i] += n
	}
	return nil
}

// Mean returns the exact sample mean (Sum is tracked exactly).
func (s *Sketch) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile returns a value within relative error Alpha of the exact
// nearest-rank q-th quantile of the samples streamed through the sketch
// (rank ⌈q·n⌉). q = 0 and q = 1 return the exact Min and Max.
func (s *Sketch) Quantile(q float64) (float64, error) {
	if s.Count == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v out of [0,1]", q)
	}
	if !s.validAlpha() {
		return 0, fmt.Errorf("stats: sketch alpha %v out of (0,1)", s.Alpha)
	}
	if q == 0 {
		return s.Min, nil
	}
	if q == 1 {
		return s.Max, nil
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank <= s.Zeros {
		return 0, nil
	}
	cum := s.Zeros
	keys := make([]int, 0, len(s.Buckets))
	for i := range s.Buckets {
		keys = append(keys, i)
	}
	sort.Ints(keys)
	for _, i := range keys {
		cum += s.Buckets[i]
		if cum >= rank {
			// Clamp to the exact extremes: the edge buckets otherwise
			// report midpoints outside the observed range.
			v := s.bucketValue(i)
			if v < s.Min {
				v = s.Min
			}
			if v > s.Max {
				v = s.Max
			}
			return v, nil
		}
	}
	return s.Max, nil
}

// String renders the sketch's key figures compactly.
func (s *Sketch) String() string {
	p50, _ := s.Quantile(0.5)
	p99, _ := s.Quantile(0.99)
	return fmt.Sprintf("n=%d mean=%.4g p50=%.4g p99=%.4g max=%.4g",
		s.Count, s.Mean(), p50, p99, s.Max)
}
