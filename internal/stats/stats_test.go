package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{name: "single", xs: []float64{5}, want: 5},
		{name: "symmetric", xs: []float64{-1, 1}, want: 0},
		{name: "typical", xs: []float64{1, 2, 3, 4}, want: 2.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Mean(tt.xs)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Fatalf("Mean = %v, want %v", got, tt.want)
			}
		})
	}
	if _, err := Mean(nil); !errors.Is(err, ErrEmpty) {
		t.Fatal("Mean(nil) must return ErrEmpty")
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	v, err := Variance(xs)
	if err != nil {
		t.Fatal(err)
	}
	// Sample variance with n−1 = 7 denominator: 32/7.
	if want := 32.0 / 7.0; math.Abs(v-want) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", v, want)
	}
	sd, err := StdDev(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sd-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Fatalf("StdDev = %v", sd)
	}
	if _, err := Variance([]float64{1}); !errors.Is(err, ErrEmpty) {
		t.Fatal("Variance of single sample must error")
	}
}

func TestMinMax(t *testing.T) {
	min, max, err := MinMax([]float64{3, -1, 7, 2})
	if err != nil {
		t.Fatal(err)
	}
	if min != -1 || max != 7 {
		t.Fatalf("MinMax = (%v,%v), want (-1,7)", min, max)
	}
	if _, _, err := MinMax(nil); !errors.Is(err, ErrEmpty) {
		t.Fatal("MinMax(nil) must error")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		q, want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, tt := range tests {
		got, err := Quantile(xs, tt.q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tt.want) > 1e-12 {
			t.Fatalf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Fatal("out-of-range quantile must error")
	}
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrEmpty) {
		t.Fatal("Quantile(nil) must error")
	}
	one, err := Quantile([]float64{42}, 0.9)
	if err != nil || one != 42 {
		t.Fatalf("Quantile single = (%v,%v)", one, err)
	}
	// Quantile must not modify its input.
	xs2 := []float64{3, 1, 2}
	if _, err := Median(xs2); err != nil {
		t.Fatal(err)
	}
	if xs2[0] != 3 || xs2[1] != 1 || xs2[2] != 2 {
		t.Fatal("Quantile must not sort the caller's slice")
	}
}

func TestMeanCI(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i % 10)
	}
	mean, hw, err := MeanCI(xs, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-4.5) > 1e-9 {
		t.Fatalf("CI mean = %v, want 4.5", mean)
	}
	if hw <= 0 {
		t.Fatalf("CI half-width = %v, want > 0", hw)
	}
	// 95% z CI: 1.96·sd/√n.
	sd, _ := StdDev(xs)
	want := 1.959964 * sd / 10
	if math.Abs(hw-want) > 1e-3 {
		t.Fatalf("half-width = %v, want ≈ %v", hw, want)
	}
	if _, _, err := MeanCI(xs, 1.5); err == nil {
		t.Fatal("invalid level must error")
	}
	if _, _, err := MeanCI([]float64{1}, 0.95); !errors.Is(err, ErrEmpty) {
		t.Fatal("short sample must error")
	}
}

func TestZQuantile(t *testing.T) {
	tests := []struct {
		p, want float64
	}{
		{0.5, 0},
		{0.975, 1.959964},
		{0.025, -1.959964},
		{0.995, 2.575829},
		{0.84134, 0.99999}, // Φ(1) ≈ 0.84134
	}
	for _, tt := range tests {
		got := zQuantile(tt.p)
		if math.Abs(got-tt.want) > 5e-4 {
			t.Fatalf("zQuantile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("Summary = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("Summary.String must be non-empty")
	}
	if _, err := Summarize(nil); !errors.Is(err, ErrEmpty) {
		t.Fatal("Summarize(nil) must error")
	}
}

// Property: mean is translation-equivariant — Mean(xs + c) == Mean(xs) + c.
func TestMeanTranslationProperty(t *testing.T) {
	f := func(vals []float64, c float64) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				return true
			}
		}
		if math.IsNaN(c) || math.IsInf(c, 0) || math.Abs(c) > 1e12 {
			return true
		}
		m1, _ := Mean(vals)
		shifted := make([]float64, len(vals))
		for i, v := range vals {
			shifted[i] = v + c
		}
		m2, _ := Mean(shifted)
		tol := 1e-6 * (1 + math.Abs(m1) + math.Abs(c))
		return math.Abs(m2-(m1+c)) < tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: variance is translation-invariant.
func TestVarianceTranslationProperty(t *testing.T) {
	f := func(vals []float64, c float64) bool {
		if len(vals) < 2 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e9 {
				return true
			}
		}
		if math.IsNaN(c) || math.IsInf(c, 0) || math.Abs(c) > 1e9 {
			return true
		}
		v1, _ := Variance(vals)
		shifted := make([]float64, len(vals))
		for i, v := range vals {
			shifted[i] = v + c
		}
		v2, _ := Variance(shifted)
		tol := 1e-5 * (1 + v1)
		return math.Abs(v2-v1) < tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
