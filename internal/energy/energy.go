// Package energy implements the paper's energy-consumption analysis model
// (Section V): per-segment energies E = ∫P dt evaluated with the
// mean-power regression of Eq. (21) over each segment's latency, plus the
// thermal conversion E_θ and the always-on base energy E_base of Eq. (19).
// Power differs by activity class: computation segments draw the
// frequency-dependent P_mean, radio segments draw transmit power, and
// wait segments (external-info arrival, remote inference on the server)
// draw only the radio-idle listening power on the XR device.
package energy

import (
	"errors"
	"fmt"

	"repro/internal/device"
	"repro/internal/latency"
	"repro/internal/pipeline"
)

// Radio power constants for 802.11-class links, consistent with the
// smartphone measurement literature the paper builds on ([36], [37]).
const (
	// DefaultTxPowerW is the radio power while actively transmitting.
	DefaultTxPowerW = 1.15
	// DefaultRadioIdleW is the listening power while awaiting remote
	// results or sensor packets.
	DefaultRadioIdleW = 0.35
)

// ErrModel indicates an internal model inconsistency.
var ErrModel = errors.New("energy: model error")

// PowerModel abstracts the mean-power model (Eq. 21) plus base and thermal
// accounting. device.PowerModel is the regression implementation; the
// synthetic testbed plugs in hidden true physics through the same
// interface.
type PowerModel interface {
	// MeanPowerW returns the application mean power.
	MeanPowerW(fcGHz, fgGHz, cpuShare float64) (float64, error)
	// SegmentEnergyMJ integrates power over a segment latency.
	SegmentEnergyMJ(powerW, latencyMs float64) (float64, error)
	// BaseEnergyMJ returns E_base over an interval.
	BaseEnergyMJ(intervalMs float64) (float64, error)
	// ThermalEnergyMJ returns E_θ for the given dynamic energy.
	ThermalEnergyMJ(dynamicEnergyMJ float64) (float64, error)
}

// Interface compliance of the concrete regression model.
var _ PowerModel = device.PowerModel{}

// Models bundles the energy analysis dependencies: the latency models
// (energies integrate over segment latencies) and the device power model.
type Models struct {
	// Latency computes the per-segment durations.
	Latency latency.Models
	// Power is the mean-power model (Eq. 21) plus base/thermal terms.
	Power PowerModel
	// TxPowerW overrides the transmit radio power (default when zero).
	TxPowerW float64
	// RadioIdleW overrides the idle radio power (default when zero).
	RadioIdleW float64
}

// PaperModels returns the energy models with published coefficients.
func PaperModels() Models {
	return Models{
		Latency: latency.PaperModels(),
		Power:   device.PaperPowerModel(),
	}
}

// Breakdown is the per-segment energy decomposition of one frame in
// millijoules, mirroring Eq. (19).
type Breakdown struct {
	// FrameGen is E_fg.
	FrameGen float64
	// Volumetric is E_vol.
	Volumetric float64
	// External is E_ext (radio-idle draw while sensor data arrives).
	External float64
	// Rendering is E_ren.
	Rendering float64
	// Conversion is E_fc (local branch).
	Conversion float64
	// Encoding is E_en (remote branch).
	Encoding float64
	// LocalInf is E_loc (local branch).
	LocalInf float64
	// RemoteInf is E_rem: the device's radio-idle draw while the edge
	// computes (the edge's own energy is not billed to the XR device).
	RemoteInf float64
	// Transmission is E_tr (remote branch, radio transmit power).
	Transmission float64
	// Handoff is E_HO.
	Handoff float64
	// Cooperation is E_coop; included in Total only when the scenario
	// opts in.
	Cooperation float64
	// Thermal is E_θ, the heat-dissipated share of dynamic energy.
	Thermal float64
	// Base is E_base over the frame's total latency.
	Base float64
	// MeanPowerW is the computation power used for the dynamic terms.
	MeanPowerW float64
	// Total is E_tot of Eq. (19).
	Total float64
}

// FrameEnergy evaluates the energy model for one frame, returning both the
// energy and the underlying latency breakdown (so callers get a consistent
// pair without recomputing).
func (m Models) FrameEnergy(sc *pipeline.Scenario) (Breakdown, latency.Breakdown, error) {
	if sc == nil {
		return Breakdown{}, latency.Breakdown{}, fmt.Errorf("%w: nil scenario", ErrModel)
	}
	lb, err := m.Latency.FrameLatency(sc)
	if err != nil {
		return Breakdown{}, latency.Breakdown{}, err
	}

	pMean, err := m.Power.MeanPowerW(sc.CPUFreqGHz, sc.GPUFreqGHz, sc.CPUShare)
	if err != nil {
		return Breakdown{}, latency.Breakdown{}, fmt.Errorf("mean power: %w", err)
	}
	tx := m.TxPowerW
	if tx <= 0 {
		tx = DefaultTxPowerW
	}
	idle := m.RadioIdleW
	if idle <= 0 {
		idle = DefaultRadioIdleW
	}

	var b Breakdown
	b.MeanPowerW = pMean

	seg := func(powerW, latencyMs float64) (float64, error) {
		e, err := m.Power.SegmentEnergyMJ(powerW, latencyMs)
		if err != nil {
			return 0, fmt.Errorf("segment energy: %w", err)
		}
		return e, nil
	}

	// Computation segments draw P_mean (Eq. 20 with the mean-power
	// treatment of Section V-B).
	if b.FrameGen, err = seg(pMean, lb.FrameGen); err != nil {
		return Breakdown{}, latency.Breakdown{}, err
	}
	if b.Volumetric, err = seg(pMean, lb.Volumetric); err != nil {
		return Breakdown{}, latency.Breakdown{}, err
	}
	if b.Rendering, err = seg(pMean, lb.Rendering); err != nil {
		return Breakdown{}, latency.Breakdown{}, err
	}
	if b.Conversion, err = seg(pMean, lb.Conversion); err != nil {
		return Breakdown{}, latency.Breakdown{}, err
	}
	if b.Encoding, err = seg(pMean, lb.Encoding); err != nil {
		return Breakdown{}, latency.Breakdown{}, err
	}
	if b.LocalInf, err = seg(pMean, lb.LocalInf); err != nil {
		return Breakdown{}, latency.Breakdown{}, err
	}

	// Wait segments draw radio-idle power on the device.
	if b.External, err = seg(idle, lb.External); err != nil {
		return Breakdown{}, latency.Breakdown{}, err
	}
	if b.RemoteInf, err = seg(idle, lb.RemoteInf); err != nil {
		return Breakdown{}, latency.Breakdown{}, err
	}

	// Radio-active segments draw transmit power.
	if b.Transmission, err = seg(tx, lb.Transmission); err != nil {
		return Breakdown{}, latency.Breakdown{}, err
	}
	if b.Handoff, err = seg(tx, lb.Handoff); err != nil {
		return Breakdown{}, latency.Breakdown{}, err
	}
	if b.Cooperation, err = seg(tx, lb.Cooperation); err != nil {
		return Breakdown{}, latency.Breakdown{}, err
	}

	dynamic := b.FrameGen + b.Volumetric + b.External + b.Rendering +
		b.Conversion + b.Encoding + b.LocalInf + b.RemoteInf +
		b.Transmission + b.Handoff
	includeCoop := sc.Coop != nil && sc.Coop.IncludeInTotal
	if includeCoop {
		dynamic += b.Cooperation
	}

	if b.Thermal, err = m.Power.ThermalEnergyMJ(dynamic); err != nil {
		return Breakdown{}, latency.Breakdown{}, fmt.Errorf("thermal: %w", err)
	}
	if b.Base, err = m.Power.BaseEnergyMJ(lb.Total); err != nil {
		return Breakdown{}, latency.Breakdown{}, fmt.Errorf("base: %w", err)
	}
	b.Total = dynamic + b.Thermal + b.Base
	return b, lb, nil
}

// SegmentMap returns the energy breakdown keyed by pipeline segment.
func (b Breakdown) SegmentMap() map[pipeline.Segment]float64 {
	return map[pipeline.Segment]float64{
		pipeline.SegFrameGeneration: b.FrameGen,
		pipeline.SegVolumetricData:  b.Volumetric,
		pipeline.SegExternalInfo:    b.External,
		pipeline.SegFrameConversion: b.Conversion,
		pipeline.SegFrameEncoding:   b.Encoding,
		pipeline.SegLocalInference:  b.LocalInf,
		pipeline.SegRemoteInference: b.RemoteInf,
		pipeline.SegTransmission:    b.Transmission,
		pipeline.SegHandoff:         b.Handoff,
		pipeline.SegRendering:       b.Rendering,
		pipeline.SegCooperation:     b.Cooperation,
	}
}
