package energy

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/device"
	"repro/internal/pipeline"
	"repro/internal/stats"
	"repro/internal/wireless"
)

func scenario(t *testing.T, opts ...pipeline.Option) *pipeline.Scenario {
	t.Helper()
	d, err := device.ByName("XR1")
	if err != nil {
		t.Fatal(err)
	}
	s, err := pipeline.NewScenario(d, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFrameEnergyLocal(t *testing.T) {
	m := PaperModels()
	eb, lb, err := m.FrameEnergy(scenario(t))
	if err != nil {
		t.Fatal(err)
	}
	if eb.Total <= 0 {
		t.Fatalf("total energy = %v, want > 0", eb.Total)
	}
	if eb.Encoding != 0 || eb.RemoteInf != 0 || eb.Transmission != 0 {
		t.Fatalf("remote energies non-zero in local mode: %+v", eb)
	}
	if eb.Conversion <= 0 || eb.LocalInf <= 0 {
		t.Fatal("local energies missing")
	}
	// Total = dynamic + thermal + base, with base over the frame total.
	dynamic := eb.FrameGen + eb.Volumetric + eb.External + eb.Rendering +
		eb.Conversion + eb.LocalInf
	if math.Abs(eb.Total-(dynamic+eb.Thermal+eb.Base)) > 1e-9 {
		t.Fatalf("total %v inconsistent with parts", eb.Total)
	}
	wantBase := device.DefaultBasePowerW * lb.Total
	if math.Abs(eb.Base-wantBase) > 1e-9 {
		t.Fatalf("base = %v, want %v", eb.Base, wantBase)
	}
	wantThermal := device.DefaultThermalFraction * dynamic
	if math.Abs(eb.Thermal-wantThermal) > 1e-9 {
		t.Fatalf("thermal = %v, want %v", eb.Thermal, wantThermal)
	}
}

func TestFrameEnergyRemote(t *testing.T) {
	m := PaperModels()
	eb, lb, err := m.FrameEnergy(scenario(t, pipeline.WithMode(pipeline.ModeRemote)))
	if err != nil {
		t.Fatal(err)
	}
	if eb.Conversion != 0 || eb.LocalInf != 0 {
		t.Fatal("local energies non-zero in remote mode")
	}
	if eb.Encoding <= 0 || eb.RemoteInf <= 0 || eb.Transmission <= 0 {
		t.Fatalf("remote energies missing: %+v", eb)
	}
	// Remote inference bills radio-idle power, not compute power.
	wantIdle := DefaultRadioIdleW * lb.RemoteInf
	if math.Abs(eb.RemoteInf-wantIdle) > 1e-9 {
		t.Fatalf("remote-wait energy = %v, want %v", eb.RemoteInf, wantIdle)
	}
	// Transmission bills transmit power.
	wantTx := DefaultTxPowerW * lb.Transmission
	if math.Abs(eb.Transmission-wantTx) > 1e-9 {
		t.Fatalf("tx energy = %v, want %v", eb.Transmission, wantTx)
	}
}

func TestFrameEnergyNilScenario(t *testing.T) {
	m := PaperModels()
	if _, _, err := m.FrameEnergy(nil); err == nil {
		t.Fatal("nil scenario must error")
	}
}

func TestPowerOverrides(t *testing.T) {
	m := PaperModels()
	m.TxPowerW = 2.0
	m.RadioIdleW = 0.7
	eb, lb, err := m.FrameEnergy(scenario(t, pipeline.WithMode(pipeline.ModeRemote)))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eb.Transmission-2.0*lb.Transmission) > 1e-9 {
		t.Fatal("TxPowerW override not applied")
	}
	if math.Abs(eb.RemoteInf-0.7*lb.RemoteInf) > 1e-9 {
		t.Fatal("RadioIdleW override not applied")
	}
}

func TestEnergyIncreasesWithFrameSize(t *testing.T) {
	m := PaperModels()
	for _, mode := range []pipeline.InferenceMode{pipeline.ModeLocal, pipeline.ModeRemote} {
		small, _, err := m.FrameEnergy(scenario(t, pipeline.WithMode(mode), pipeline.WithFrameSize(300)))
		if err != nil {
			t.Fatal(err)
		}
		large, _, err := m.FrameEnergy(scenario(t, pipeline.WithMode(mode), pipeline.WithFrameSize(700)))
		if err != nil {
			t.Fatal(err)
		}
		if large.Total <= small.Total {
			t.Fatalf("%v: energy(700)=%v must exceed energy(300)=%v",
				mode, large.Total, small.Total)
		}
	}
}

func TestCooperationEnergyOptIn(t *testing.T) {
	m := PaperModels()
	link, err := wireless.NewLink(wireless.WiFi5GHz, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := m.FrameEnergy(scenario(t, pipeline.WithCooperation(pipeline.CoopConfig{
		Link: link, DataSizeMB: 0.5,
	})))
	if err != nil {
		t.Fatal(err)
	}
	if out.Cooperation <= 0 {
		t.Fatal("cooperation energy must be reported")
	}
	base, _, err := m.FrameEnergy(scenario(t))
	if err != nil {
		t.Fatal(err)
	}
	// Default: excluded from total (runs parallel to rendering).
	if math.Abs(out.Total-base.Total) > 1e-9 {
		t.Fatal("cooperation must not enter total by default")
	}
	in, _, err := m.FrameEnergy(scenario(t, pipeline.WithCooperation(pipeline.CoopConfig{
		Link: link, DataSizeMB: 0.5, IncludeInTotal: true,
	})))
	if err != nil {
		t.Fatal(err)
	}
	if in.Total <= base.Total {
		t.Fatal("opt-in cooperation must increase total energy")
	}
}

func TestSegmentMapComplete(t *testing.T) {
	m := PaperModels()
	eb, _, err := m.FrameEnergy(scenario(t, pipeline.WithMode(pipeline.ModeRemote)))
	if err != nil {
		t.Fatal(err)
	}
	sm := eb.SegmentMap()
	if len(sm) != 11 {
		t.Fatalf("segment map size = %d, want 11", len(sm))
	}
	if sm[pipeline.SegTransmission] != eb.Transmission {
		t.Fatal("segment map mismatch")
	}
}

// Property: all per-segment energies are non-negative and total exceeds
// base energy for any valid configuration.
func TestEnergyNonNegativeProperty(t *testing.T) {
	m := PaperModels()
	d, err := device.ByName("XR1")
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		mode := pipeline.ModeLocal
		if rng.Intn(2) == 1 {
			mode = pipeline.ModeRemote
		}
		sc, err := pipeline.NewScenario(d,
			pipeline.WithMode(mode),
			pipeline.WithFrameSize(300+400*rng.Float64()),
			pipeline.WithCPUFreq(1+2*rng.Float64()),
			pipeline.WithCPUShare(rng.Float64()),
		)
		if err != nil {
			return false
		}
		eb, _, err := m.FrameEnergy(sc)
		if err != nil {
			return false
		}
		for _, v := range []float64{eb.FrameGen, eb.Volumetric, eb.External,
			eb.Rendering, eb.Conversion, eb.Encoding, eb.LocalInf,
			eb.RemoteInf, eb.Transmission, eb.Handoff, eb.Thermal, eb.Base} {
			if v < 0 {
				return false
			}
		}
		return eb.Total > eb.Base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
