package regress

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// planted builds observations from a known quadratic y = 2 + 3x − 0.5x².
func planted(n int, noiseSD float64, seed int64) (xs [][]float64, ys []float64) {
	rng := stats.NewRNG(seed)
	xs = make([][]float64, n)
	ys = make([]float64, n)
	for i := 0; i < n; i++ {
		x := 10 * rng.Float64()
		xs[i] = []float64{x}
		ys[i] = 2 + 3*x - 0.5*x*x + rng.Normal(0, noiseSD)
	}
	return xs, ys
}

func quadTerms() []Term {
	return []Term{Intercept(), Linear("x", 0), Square("x", 0)}
}

func TestFitOLSRecoversPlantedCoefficients(t *testing.T) {
	xs, ys := planted(500, 0, 1)
	fit, err := FitOLS(quadTerms(), xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -0.5}
	for j, w := range want {
		if math.Abs(fit.Coef[j]-w) > 1e-8 {
			t.Fatalf("coef[%d] = %v, want %v", j, fit.Coef[j], w)
		}
	}
	if fit.R2 < 0.999999 {
		t.Fatalf("noiseless R² = %v, want ≈1", fit.R2)
	}
	if fit.RMSE > 1e-8 {
		t.Fatalf("noiseless RMSE = %v, want ≈0", fit.RMSE)
	}
}

func TestFitOLSWithNoise(t *testing.T) {
	xs, ys := planted(2000, 1.0, 2)
	fit, err := FitOLS(quadTerms(), xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -0.5}
	for j, w := range want {
		if math.Abs(fit.Coef[j]-w) > 0.2 {
			t.Fatalf("coef[%d] = %v, want ≈%v", j, fit.Coef[j], w)
		}
	}
	if fit.R2 < 0.9 {
		t.Fatalf("R² = %v, want > 0.9", fit.R2)
	}
	if fit.AdjR2 > fit.R2 {
		t.Fatalf("adjusted R² (%v) must not exceed R² (%v)", fit.AdjR2, fit.R2)
	}
}

func TestFitOLSErrors(t *testing.T) {
	xs, ys := planted(10, 0, 3)
	if _, err := FitOLS(nil, xs, ys); !errors.Is(err, ErrNoTerms) {
		t.Fatalf("no terms error = %v", err)
	}
	if _, err := FitOLS(quadTerms(), xs[:2], ys[:2]); !errors.Is(err, ErrTooFewRows) {
		t.Fatalf("too few rows error = %v", err)
	}
	if _, err := FitOLS(quadTerms(), xs, ys[:5]); !errors.Is(err, ErrBadInput) {
		t.Fatalf("mismatched lengths error = %v", err)
	}
}

func TestFitOLSCollinearColumns(t *testing.T) {
	// x and 2x are perfectly collinear: the fit must fail loudly rather
	// than return garbage coefficients.
	terms := []Term{
		Linear("x", 0),
		{Name: "2x", Eval: func(x []float64) float64 { return 2 * x[0] }},
	}
	xs, ys := planted(50, 0, 4)
	if _, err := FitOLS(terms, xs, ys); err == nil {
		t.Fatal("collinear design must return an error")
	}
}

func TestEvaluateHeldOut(t *testing.T) {
	train, trainY := planted(1000, 0.5, 5)
	test, testY := planted(300, 0.5, 6)
	fit, err := FitOLS(quadTerms(), train, trainY)
	if err != nil {
		t.Fatal(err)
	}
	r2, rmse, mape, err := fit.Evaluate(test, testY)
	if err != nil {
		t.Fatal(err)
	}
	if r2 < 0.9 {
		t.Fatalf("held-out R² = %v, want > 0.9", r2)
	}
	if rmse <= 0 || mape <= 0 {
		t.Fatalf("rmse = %v, mape = %v, want positive", rmse, mape)
	}
	if _, _, _, err := fit.Evaluate(test, testY[:5]); !errors.Is(err, ErrBadInput) {
		t.Fatal("mismatched evaluate input must error")
	}
}

func TestResiduals(t *testing.T) {
	xs, ys := planted(100, 0, 7)
	fit, err := FitOLS(quadTerms(), xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fit.Residuals(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if math.Abs(r) > 1e-7 {
			t.Fatalf("noiseless residual[%d] = %v, want ≈0", i, r)
		}
	}
}

func TestWithinCI(t *testing.T) {
	train, trainY := planted(5000, 1.0, 8)
	test, testY := planted(2000, 1.0, 9)
	fit, err := FitOLS(quadTerms(), train, trainY)
	if err != nil {
		t.Fatal(err)
	}
	frac, err := fit.WithinCI(test, testY, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if frac < 0.92 || frac > 0.98 {
		t.Fatalf("95%% CI coverage = %v, want ≈0.95", frac)
	}
	if _, err := fit.WithinCI(test, testY, 1.5); err == nil {
		t.Fatal("invalid level must error")
	}
}

func TestTermConstructors(t *testing.T) {
	x := []float64{3, 4}
	if got := Intercept().Eval(x); got != 1 {
		t.Fatalf("Intercept = %v", got)
	}
	if got := Linear("a", 1).Eval(x); got != 4 {
		t.Fatalf("Linear = %v", got)
	}
	if got := Square("a", 0).Eval(x); got != 9 {
		t.Fatalf("Square = %v", got)
	}
	if got := Product("ab", 0, 1).Eval(x); got != 12 {
		t.Fatalf("Product = %v", got)
	}
	if Square("a", 0).Name != "a^2" {
		t.Fatal("Square must append ^2 to name")
	}
}

func TestSummaryNonEmpty(t *testing.T) {
	xs, ys := planted(50, 0.1, 10)
	fit, err := FitOLS(quadTerms(), xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	s := fit.Summary()
	if s == "" {
		t.Fatal("summary must be non-empty")
	}
	for _, name := range []string{"1", "x", "x^2"} {
		if !contains(s, name) {
			t.Fatalf("summary missing term %q:\n%s", name, s)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// Property: OLS predictions are invariant to duplicating every observation
// (the fit minimizes the same normalized objective).
func TestFitDuplicationInvariance(t *testing.T) {
	f := func(seed int64) bool {
		xs, ys := planted(40, 0.3, seed)
		fit1, err := FitOLS(quadTerms(), xs, ys)
		if err != nil {
			return false
		}
		dupX := append(append([][]float64{}, xs...), xs...)
		dupY := append(append([]float64{}, ys...), ys...)
		fit2, err := FitOLS(quadTerms(), dupX, dupY)
		if err != nil {
			return false
		}
		for j := range fit1.Coef {
			if math.Abs(fit1.Coef[j]-fit2.Coef[j]) > 1e-6*(1+math.Abs(fit1.Coef[j])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestStdErrShrinksWithData(t *testing.T) {
	small, smallY := planted(100, 1.0, 20)
	big, bigY := planted(10000, 1.0, 21)
	fitSmall, err := FitOLS(quadTerms(), small, smallY)
	if err != nil {
		t.Fatal(err)
	}
	fitBig, err := FitOLS(quadTerms(), big, bigY)
	if err != nil {
		t.Fatal(err)
	}
	if len(fitSmall.StdErr) != 3 || len(fitBig.StdErr) != 3 {
		t.Fatalf("StdErr lengths: %d/%d", len(fitSmall.StdErr), len(fitBig.StdErr))
	}
	for j := range fitSmall.StdErr {
		if fitSmall.StdErr[j] <= 0 {
			t.Fatalf("SE[%d] = %v, want positive under noise", j, fitSmall.StdErr[j])
		}
		if fitBig.StdErr[j] >= fitSmall.StdErr[j] {
			t.Fatalf("SE[%d] must shrink with 100x data: %v vs %v",
				j, fitBig.StdErr[j], fitSmall.StdErr[j])
		}
	}
}

func TestStdErrCoversTruth(t *testing.T) {
	// The planted coefficients must lie within ±4 SE of the estimates —
	// a loose normal-theory sanity check.
	xs, ys := planted(2000, 1.0, 22)
	fit, err := FitOLS(quadTerms(), xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	truth := []float64{2, 3, -0.5}
	for j, w := range truth {
		if diff := math.Abs(fit.Coef[j] - w); diff > 4*fit.StdErr[j] {
			t.Fatalf("coef[%d]=%v is %v SEs from truth %v",
				j, fit.Coef[j], diff/fit.StdErr[j], w)
		}
	}
}

func TestTStatsSignificance(t *testing.T) {
	// With strong signal and modest noise, every planted-term t-stat is
	// large.
	xs, ys := planted(5000, 0.5, 23)
	fit, err := FitOLS(quadTerms(), xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for j, tstat := range fit.TStats() {
		if math.Abs(tstat) < 10 {
			t.Fatalf("t-stat[%d] = %v, want strongly significant", j, tstat)
		}
	}
}

func TestSummaryIncludesStdErr(t *testing.T) {
	xs, ys := planted(200, 0.5, 24)
	fit, err := FitOLS(quadTerms(), xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !contains(fit.Summary(), "SE") {
		t.Fatal("summary must print standard errors")
	}
}
