// Package regress implements the multiple-linear-regression machinery the
// paper relies on wherever an explicit analytical form is infeasible: the
// computation-resource model (Eq. 3), the H.264 encoding-latency model
// (Eq. 10), the CNN-complexity model (Eq. 12), and the mean-power model
// (Eq. 21). Fits are ordinary least squares on a QR decomposition, with the
// goodness-of-fit diagnostics (R², adjusted R², RMSE) the paper reports.
package regress

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"repro/internal/mat"
	"repro/internal/stats"
)

// Common errors.
var (
	// ErrNoTerms indicates a model specification without any terms.
	ErrNoTerms = errors.New("regress: model has no terms")
	// ErrTooFewRows indicates fewer observations than model terms.
	ErrTooFewRows = errors.New("regress: fewer rows than terms")
	// ErrBadInput indicates malformed observations.
	ErrBadInput = errors.New("regress: malformed input")
)

// Term is one named column of the design matrix, computed from a raw
// feature vector. Terms let callers express the paper's squared-frequency
// and interaction features (e.g. f_c² in Eq. 3) declaratively.
type Term struct {
	// Name labels the term in fit summaries (e.g. "fc^2").
	Name string
	// Eval maps a raw input vector to the term's value.
	Eval func(x []float64) float64
}

// Intercept returns the constant-1 term.
func Intercept() Term {
	return Term{Name: "1", Eval: func([]float64) float64 { return 1 }}
}

// Linear returns the identity term on input column idx.
func Linear(name string, idx int) Term {
	return Term{Name: name, Eval: func(x []float64) float64 { return x[idx] }}
}

// Square returns the squared term on input column idx.
func Square(name string, idx int) Term {
	return Term{Name: name + "^2", Eval: func(x []float64) float64 { return x[idx] * x[idx] }}
}

// Product returns the interaction term x[i]·x[j].
func Product(name string, i, j int) Term {
	return Term{Name: name, Eval: func(x []float64) float64 { return x[i] * x[j] }}
}

// Fit is a fitted ordinary-least-squares model.
type Fit struct {
	// Terms are the design-matrix columns, parallel to Coef.
	Terms []Term
	// Coef holds the fitted coefficients.
	Coef []float64
	// N is the number of training observations.
	N int
	// R2 is the coefficient of determination on the training set.
	R2 float64
	// AdjR2 penalizes R2 for the number of terms.
	AdjR2 float64
	// RMSE is the training root-mean-square error.
	RMSE float64
	// Cond is a coarse condition-number estimate of the design matrix.
	Cond float64
	// StdErr holds the coefficient standard errors (parallel to Coef),
	// from Var(β) = σ̂²·diag((XᵀX)⁻¹) with σ̂² = RSS/(n−p).
	StdErr []float64
}

// TStats returns the coefficient t-statistics βᵢ/SE(βᵢ). Entries with a
// zero standard error report +Inf/−Inf by IEEE division.
func (f *Fit) TStats() []float64 {
	out := make([]float64, len(f.Coef))
	for i, c := range f.Coef {
		out[i] = c / f.StdErr[i]
	}
	return out
}

// FitOLS fits y ≈ Σ coefᵢ·termᵢ(x) by least squares over the observations
// (xs[k], ys[k]).
func FitOLS(terms []Term, xs [][]float64, ys []float64) (*Fit, error) {
	if len(terms) == 0 {
		return nil, ErrNoTerms
	}
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("%w: %d feature rows vs %d responses", ErrBadInput, len(xs), len(ys))
	}
	if len(xs) < len(terms) {
		return nil, fmt.Errorf("%w: %d rows for %d terms", ErrTooFewRows, len(xs), len(terms))
	}

	design := mat.NewDense(len(xs), len(terms))
	for i, x := range xs {
		for j, t := range terms {
			design.Set(i, j, t.Eval(x))
		}
	}
	dec, err := mat.DecomposeQR(design)
	if err != nil {
		return nil, fmt.Errorf("design decompose: %w", err)
	}
	coef, err := dec.Solve(ys)
	if err != nil {
		return nil, fmt.Errorf("ols solve: %w", err)
	}

	fit := &Fit{Terms: terms, Coef: coef, N: len(xs), Cond: dec.ConditionEstimate()}
	pred := make([]float64, len(xs))
	for i, x := range xs {
		pred[i] = fit.Predict(x)
	}
	if r2, err := stats.RSquared(pred, ys); err == nil {
		fit.R2 = r2
		dfTot := float64(len(xs) - 1)
		dfRes := float64(len(xs) - len(terms))
		if dfRes > 0 {
			fit.AdjR2 = 1 - (1-r2)*dfTot/dfRes
		}
	}
	if rmse, err := stats.RMSE(pred, ys); err == nil {
		fit.RMSE = rmse
	}

	// Coefficient standard errors: σ̂²·diag((XᵀX)⁻¹) with the unbiased
	// residual variance estimate.
	fit.StdErr = make([]float64, len(coef))
	if dfRes := len(xs) - len(terms); dfRes > 0 {
		var rss float64
		for i := range pred {
			r := ys[i] - pred[i]
			rss += r * r
		}
		sigma2 := rss / float64(dfRes)
		diag, err := dec.InverseGramDiagonal()
		if err != nil {
			return nil, fmt.Errorf("coefficient variances: %w", err)
		}
		for j, d := range diag {
			fit.StdErr[j] = math.Sqrt(sigma2 * d)
		}
	}
	return fit, nil
}

// Predict evaluates the fitted model on a raw feature vector.
func (f *Fit) Predict(x []float64) float64 {
	var s float64
	for j, t := range f.Terms {
		s += f.Coef[j] * t.Eval(x)
	}
	return s
}

// PredictAll evaluates the model on every row of xs.
func (f *Fit) PredictAll(xs [][]float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = f.Predict(x)
	}
	return out
}

// Evaluate scores the model on held-out data and returns test R², RMSE, and
// MAPE (percent). This implements the paper's protocol of training on
// devices XR1/XR3/XR5/XR6 and testing on XR2/XR4/XR7.
func (f *Fit) Evaluate(xs [][]float64, ys []float64) (r2, rmse, mape float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, 0, fmt.Errorf("%w: %d rows vs %d responses", ErrBadInput, len(xs), len(ys))
	}
	pred := f.PredictAll(xs)
	r2, err = stats.RSquared(pred, ys)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("test R²: %w", err)
	}
	rmse, err = stats.RMSE(pred, ys)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("test RMSE: %w", err)
	}
	mape, err = stats.MAPE(pred, ys)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("test MAPE: %w", err)
	}
	return r2, rmse, mape, nil
}

// Summary renders the fit in a readable single block, e.g. for `xrperf fit`.
func (f *Fit) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "OLS fit (n=%d, R²=%.4f, adjR²=%.4f, RMSE=%.4g, cond≈%.3g)\n",
		f.N, f.R2, f.AdjR2, f.RMSE, f.Cond)
	for j, t := range f.Terms {
		se := 0.0
		if j < len(f.StdErr) {
			se = f.StdErr[j]
		}
		fmt.Fprintf(&b, "  %-14s %+.6g  (SE %.3g)\n", t.Name, f.Coef[j], se)
	}
	return b.String()
}

// Residuals returns y − ŷ for the given observations.
func (f *Fit) Residuals(xs [][]float64, ys []float64) ([]float64, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("%w: %d rows vs %d responses", ErrBadInput, len(xs), len(ys))
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = ys[i] - f.Predict(x)
	}
	return out, nil
}

// WithinCI reports how large a fraction of held-out residuals fall inside
// the level-confidence band implied by the training RMSE under a normal
// residual assumption. The paper generates all regression models "using a
// 95% confidence boundary"; this lets callers verify that property.
func (f *Fit) WithinCI(xs [][]float64, ys []float64, level float64) (float64, error) {
	if level <= 0 || level >= 1 {
		return 0, fmt.Errorf("regress: confidence level %v out of (0,1)", level)
	}
	res, err := f.Residuals(xs, ys)
	if err != nil {
		return 0, err
	}
	if len(res) == 0 {
		return 0, fmt.Errorf("%w: no observations", ErrBadInput)
	}
	// Half-width of the symmetric normal band at the given level.
	z := math.Sqrt2 * math.Erfinv(level)
	band := z * f.RMSE
	in := 0
	for _, r := range res {
		if math.Abs(r) <= band {
			in++
		}
	}
	return float64(in) / float64(len(res)), nil
}
