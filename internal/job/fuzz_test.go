package job

import (
	"encoding/json"
	"testing"
)

// FuzzJobSpecJSON feeds the job decoder hostile documents: whatever
// arrives in a server's job frame or a -job file must either decode into
// a job that validates (and then round-trips through JSON losslessly) or
// fail with a clean error — never panic. This is the server's entire
// input surface beyond the frame codec itself.
func FuzzJobSpecJSON(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"spec":{"backend":"pool","seed":42},"grid":{"devices":["XR1"],"modes":["local"],"sizes":[500]}}`))
	f.Add([]byte(`{"kind":"report","spec":{"seed":1,"train_rows":2000,"test_rows":500}}`))
	f.Add([]byte(`{"spec":{"backend":"net"}}`))                        // net without nodes
	f.Add([]byte(`{"spec":{"backend":"pool","nodes":["x:1"]}}`))       // nodes without net
	f.Add([]byte(`{"spec":{"workers":-1}}`))                           // negative count
	f.Add([]byte(`{"spec":{"trials":-3,"backend":"teleport"}}`))       // several at once
	f.Add([]byte(`{"kind":"sweep","format":"xml","spec":{"seed":1}}`)) // bad format
	f.Add([]byte(`{"spec":{"seed":9223372036854775807}}`))             // extreme seed
	f.Add([]byte("{\"spec\":{\"backend\":\"\\u0000\"}}"))
	f.Add([]byte(`{"spec":{"backend":"net","fleet":{"nodes_file":"/tmp/f","no_steal":true}}}`))
	f.Add([]byte(`{"spec":{"backend":"net","fleet":{"register":"127.0.0.1:7900"}}}`))
	f.Add([]byte(`{"spec":{"backend":"net","nodes":["a:1"],"fleet":{"nodes_file":"/tmp/f"}}}`)) // two sources
	f.Add([]byte(`{"spec":{"backend":"pool","fleet":{"no_steal":true}}}`))                      // fleet without net
	f.Add([]byte(`{"kind":"population","spec":{"seed":7},"population":{"scenario":"offload","users":12,"frames":5}}`))
	f.Add([]byte(`{"kind":"population","spec":{"seed":7},"population":{"users":-1}}`))
	f.Add([]byte(`{"kind":"population","format":"csv","spec":{"seed":7}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		j, err := Decode(data)
		if err != nil {
			return
		}
		if err := j.Validate(); err != nil {
			// Invalid documents must still describe themselves cleanly.
			if err.Error() == "" {
				t.Fatal("validation error with empty message")
			}
			return
		}
		// A valid job must round-trip: encode, decode, validate again,
		// and agree with itself — the byte-identity contract between the
		// CLI flags path and the server's JSON path depends on it.
		out, err := json.Marshal(j)
		if err != nil {
			t.Fatalf("valid job did not re-encode: %v", err)
		}
		j2, err := Decode(out)
		if err != nil {
			t.Fatalf("re-encoded job did not decode: %v", err)
		}
		if err := j2.Validate(); err != nil {
			t.Fatalf("round-tripped job stopped validating: %v", err)
		}
		out2, err := json.Marshal(j2)
		if err != nil {
			t.Fatalf("round-tripped job did not re-encode: %v", err)
		}
		if string(out) != string(out2) {
			t.Fatalf("job JSON is not a fixed point:\nfirst  %s\nsecond %s", out, out2)
		}
	})
}
