package job

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/cnn"
	"repro/internal/device"
	"repro/internal/experiments"
	"repro/internal/pipeline"
	"repro/internal/scenario"
	"repro/internal/sweep"
)

// Kind selects a job's workload.
type Kind string

const (
	// KindSweep runs an arbitrary scenario grid (the `xrperf sweep`
	// workload); the empty kind means sweep.
	KindSweep Kind = "sweep"
	// KindReport regenerates the full Markdown evaluation report (the
	// `xrperf report` workload).
	KindReport Kind = "report"
	// KindPopulation simulates a population of XR sessions (the `xrperf
	// population` workload): a named scenario expanded into cohorts,
	// swept on the job's backend, folded into mergeable summaries.
	KindPopulation Kind = "population"
)

// Population parameterizes the population workload. Like Grid it is
// plain data: the scenario name resolves at Run time through the same
// generator the one-shot CLI uses, so an unknown name fails with the
// generator's own message on both front doors.
type Population struct {
	// Scenario names the generator (see scenario.Names); empty means
	// vehicular.
	Scenario string `json:"scenario,omitempty"`
	// Users is the total simulated population, split across the
	// scenario's cohorts (0 = 10000).
	Users int `json:"users,omitempty"`
	// Frames is the per-user session length (0 = 120).
	Frames int `json:"frames,omitempty"`
	// Shard caps sessions per request shard (0 = sweep.DefaultShardUsers;
	// output is byte-identical for any value).
	Shard int `json:"shard,omitempty"`
}

// withDefaults resolves the zero values to the CLI flag defaults, so a
// minimal JSON document runs the same population the bare subcommand
// does.
func (p Population) withDefaults() Population {
	if p.Scenario == "" {
		p.Scenario = "vehicular"
	}
	if p.Users == 0 {
		p.Users = 10000
	}
	if p.Frames == 0 {
		p.Frames = 120
	}
	return p
}

// Grid is the serializable form of a sweep grid: catalog names and
// numeric axes, resolvable in any process. It is the wire twin of
// sweep.Grid, which holds resolved device/CNN objects; keeping the grid
// as plain data is what lets a job carry it to a server, and resolving
// through one Build path is what keeps CLI and server grid errors
// textually identical.
type Grid struct {
	// Devices lists Table I device names; the single entry "all" selects
	// the whole catalog.
	Devices []string `json:"devices,omitempty"`
	// Modes lists inference modes ("local", "remote").
	Modes []string `json:"modes,omitempty"`
	// CNNs lists Table II model names (empty = pipeline defaults).
	CNNs []string `json:"cnns,omitempty"`
	// Sizes lists frame sizes (pixel² unit).
	Sizes []float64 `json:"sizes,omitempty"`
	// Freqs lists CPU clocks in GHz (0 = device max).
	Freqs []float64 `json:"freqs,omitempty"`
}

// splitList splits a comma-separated flag value, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// parseFloats parses a comma-separated list of numbers.
func parseFloats(flagName, s string) ([]float64, error) {
	var out []float64
	for _, part := range splitList(s) {
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("-%s: %q is not a number", flagName, part)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseGrid builds a Grid from the sweep subcommand's comma-separated
// flag values. Names are kept as given — Build resolves them — so flag
// parsing and JSON decoding meet the catalogs through the same path.
func ParseGrid(devices, modes, cnns, sizes, freqs string) (Grid, error) {
	g := Grid{
		Devices: splitList(devices),
		Modes:   splitList(modes),
		CNNs:    splitList(cnns),
	}
	var err error
	if g.Sizes, err = parseFloats("sizes", sizes); err != nil {
		return Grid{}, err
	}
	if g.Freqs, err = parseFloats("freqs", freqs); err != nil {
		return Grid{}, err
	}
	return g, nil
}

// Build resolves the grid's names against the device and CNN catalogs.
// Unknown names error with the catalog's own message, identically for a
// grid parsed from flags or decoded from a job document.
func (g Grid) Build() (sweep.Grid, error) {
	var out sweep.Grid
	if len(g.Devices) == 1 && g.Devices[0] == "all" {
		out.Devices = device.Catalog()
	} else {
		for _, name := range g.Devices {
			d, err := device.ByName(name)
			if err != nil {
				return sweep.Grid{}, err
			}
			out.Devices = append(out.Devices, d)
		}
	}
	if len(out.Devices) == 0 {
		return sweep.Grid{}, fmt.Errorf("-devices: at least one device required")
	}
	for _, m := range g.Modes {
		switch m {
		case "local":
			out.Modes = append(out.Modes, pipeline.ModeLocal)
		case "remote":
			out.Modes = append(out.Modes, pipeline.ModeRemote)
		default:
			return sweep.Grid{}, fmt.Errorf("-modes: unknown mode %q (local or remote)", m)
		}
	}
	for _, name := range g.CNNs {
		m, err := cnn.ByName(name)
		if err != nil {
			return sweep.Grid{}, err
		}
		out.CNNs = append(out.CNNs, m)
	}
	out.FrameSizes = g.Sizes
	out.CPUFreqs = g.Freqs
	return out, nil
}

// Job is one complete serializable work order: what to run (Kind plus
// the workload's parameters) and the execution environment to run it in
// (Spec). The same document drives the one-shot CLI and a server
// request, and Run renders the same bytes for both — that equivalence is
// the contract the submit client relies on.
type Job struct {
	// Kind selects the workload; empty means KindSweep.
	Kind Kind `json:"kind,omitempty"`
	// Spec is the execution environment. A server substitutes its own
	// shared runner for the backend fields but validates them anyway, so
	// a bad spec fails identically on both front doors.
	Spec Spec `json:"spec"`
	// Grid is the sweep workload (KindSweep only).
	Grid *Grid `json:"grid,omitempty"`
	// Population is the population workload (KindPopulation only); nil
	// runs the default scenario at the default scale.
	Population *Population `json:"population,omitempty"`
	// Format is the sweep output format: "table" (default) or "csv".
	Format string `json:"format,omitempty"`
	// Stream emits output as grid/report prefixes complete instead of
	// buffering; the bytes are identical either way, only the timing
	// differs. Servers always stream.
	Stream bool `json:"stream,omitempty"`
}

func (j Job) kind() Kind {
	if j.Kind == "" {
		return KindSweep
	}
	return j.Kind
}

func (j Job) format() string {
	if j.Format == "" {
		return "table"
	}
	return j.Format
}

func (j Job) population() Population {
	var p Population
	if j.Population != nil {
		p = *j.Population
	}
	return p.withDefaults()
}

// Validate checks the job document: the spec in full, the kind, and the
// workload fields the kind requires. Grid names resolve at Run time,
// through the same catalogs the CLI uses.
func (j Job) Validate() error {
	if err := j.Spec.Validate(); err != nil {
		return err
	}
	switch j.kind() {
	case KindSweep:
		if j.Grid == nil {
			return fmt.Errorf("job: a sweep job needs a grid")
		}
		switch j.format() {
		case "table", "csv":
		default:
			return fmt.Errorf("-format: unknown format %q (table or csv)", j.Format)
		}
	case KindReport:
	case KindPopulation:
		var p Population
		if j.Population != nil {
			p = *j.Population
		}
		if p.Users < 0 {
			return fmt.Errorf("job: -users must be >= 0, have %d", p.Users)
		}
		if p.Frames < 0 {
			return fmt.Errorf("job: -frames must be >= 0, have %d", p.Frames)
		}
		if p.Shard < 0 {
			return fmt.Errorf("job: -shard must be >= 0, have %d", p.Shard)
		}
		if j.format() != "table" {
			return fmt.Errorf("-format: population renders table output only, have %q", j.Format)
		}
	default:
		return fmt.Errorf("job: unknown kind %q (sweep, report, or population)", j.Kind)
	}
	return nil
}

// Decode parses one job document from JSON.
func Decode(data []byte) (Job, error) {
	var j Job
	if err := json.Unmarshal(data, &j); err != nil {
		return Job{}, fmt.Errorf("job: bad job document: %v", err)
	}
	return j, nil
}

// Run executes the job's workload on the suite, writing its canonical
// output to out. The suite is built from the job's spec (BuildSuite for
// the CLI, BuildSuiteOn for a server's shared runner); either way the
// bytes written here are identical, because every workload renders
// through the experiments layer's deterministic streaming primitives.
func (j Job) Run(ctx context.Context, suite *experiments.Suite, out io.Writer) error {
	if err := j.Validate(); err != nil {
		return err
	}
	switch j.kind() {
	case KindSweep:
		grid, err := j.Grid.Build()
		if err != nil {
			return err
		}
		if j.format() == "csv" {
			return runSweepCSV(ctx, suite, grid, j.Stream, out)
		}
		return runSweepTable(ctx, suite, grid, j.Stream, out)
	case KindReport:
		if j.Stream {
			return suite.StreamReport(ctx, out)
		}
		return suite.WriteReport(out)
	case KindPopulation:
		return runPopulation(ctx, suite, j.population(), j.Spec.Seed, out)
	}
	return fmt.Errorf("job: unknown kind %q (sweep, report, or population)", j.Kind)
}

// SuiteFor assembles the suite the job's workload runs on, sharing the
// caller's runner. Sweep and report workloads need the full suite —
// fitted regression models, catalogs — built by BuildSuiteOn; a
// population job only measures sessions, so it skips the regression fit
// and binds the runner directly. The server routes every submitted job
// through here, and the one-shot population subcommand does too, so both
// front doors build identical machinery.
func (j Job) SuiteFor(runner *sweep.CachedRunner) (*experiments.Suite, error) {
	if err := j.Validate(); err != nil {
		return nil, err
	}
	if j.kind() == KindPopulation {
		return &experiments.Suite{Seed: j.Spec.Seed, Runner: runner}, nil
	}
	return j.Spec.BuildSuiteOn(runner)
}

// runPopulation expands the scenario into cohorts, sweeps their sessions
// on the suite's runner, and renders the merged per-cohort report. The
// report depends only on (cohorts, seed) — shard size, backend, and
// fleet shape never change a byte.
func runPopulation(ctx context.Context, suite *experiments.Suite, p Population, seed int64, out io.Writer) error {
	cohorts, err := scenario.Generate(p.Scenario, scenario.Params{
		Users:  p.Users,
		Frames: p.Frames,
		Seed:   seed,
	})
	if err != nil {
		return err
	}
	res, err := sweep.RunPopulation(ctx, suite.Runner, cohorts, sweep.PopulationOptions{ShardUsers: p.Shard})
	if err != nil {
		return err
	}
	_, err = fmt.Fprint(out, res.Render())
	return err
}

// runSweepTable renders the sweep as the human-readable table. With
// stream, rows are written as grid prefixes complete; the bytes are
// identical to the buffered table, only the timing differs. The header
// carries the grid size, which is known up front, and the aggregate line
// follows the last row.
func runSweepTable(ctx context.Context, suite *experiments.Suite, grid sweep.Grid, stream bool, out io.Writer) error {
	if !stream {
		res, err := suite.RunGrid(ctx, grid)
		if err != nil {
			return err
		}
		_, err = fmt.Fprint(out, res.Render())
		return err
	}
	header := (&experiments.GridResult{Points: make([]experiments.GridPoint, grid.Size())}).RenderHeader()
	if _, err := fmt.Fprint(out, header); err != nil {
		return err
	}
	res, err := suite.StreamGrid(ctx, grid, func(p experiments.GridPoint) error {
		_, err := fmt.Fprint(out, p.RenderRow())
		return err
	})
	if err != nil {
		return err
	}
	_, err = fmt.Fprint(out, res.RenderFooter())
	return err
}

// runSweepCSV renders the sweep as machine-readable CSV (full float
// precision, data rows only), optionally streaming records as grid
// prefixes complete.
func runSweepCSV(ctx context.Context, suite *experiments.Suite, grid sweep.Grid, stream bool, out io.Writer) error {
	if !stream {
		res, err := suite.RunGrid(ctx, grid)
		if err != nil {
			return err
		}
		return res.WriteCSV(out)
	}
	cw := csv.NewWriter(out)
	if err := cw.Write(experiments.CSVHeader()); err != nil {
		return err
	}
	cw.Flush()
	if _, err := suite.StreamGrid(ctx, grid, func(p experiments.GridPoint) error {
		if err := cw.Write(p.CSVRecord()); err != nil {
			return err
		}
		cw.Flush()
		return cw.Error()
	}); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}
