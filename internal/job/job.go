// Package job defines the serializable execution-environment
// specification shared by every xrperf subcommand that dispatches backend
// work: which backend runs the requests (in-process pool, worker
// subprocesses, a TCP node fleet), at what parallelism, under which seed
// and dataset sizes, and whether measurements persist on disk. A Spec is
// plain data — JSON round-trippable — so the same value that today comes
// from command-line flags can tomorrow arrive in a server request or a
// job file and build the identical runner; and because every subcommand
// funnels through BuildRunner/BuildSuite, backend wiring cannot drift
// between them.
package job

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/sweep"
)

// Spec describes one job's execution environment.
type Spec struct {
	// Backend selects the measurement backend: "pool" (in-process,
	// default), "proc" (worker subprocesses), or "net" (TCP node fleet).
	Backend string `json:"backend,omitempty"`
	// Procs is the proc backend's subprocess count (0 = GOMAXPROCS).
	Procs int `json:"procs,omitempty"`
	// Nodes lists the net backend's serve-node addresses. It is sugar
	// for Fleet.Nodes — the inline membership source — kept as a flat
	// field so existing -nodes flags and job documents keep working.
	Nodes []string `json:"nodes,omitempty"`
	// Fleet describes the net backend's worker fleet beyond an inline
	// node list: a nodes file reloaded on SIGHUP, or a registration
	// coordinator that `xrperf serve -register` nodes dial into, plus
	// dispatch tuning (NoSteal). Exactly one membership source — Nodes
	// (either spelling), NodesFile, or Register — must be set.
	Fleet *fleet.Spec `json:"fleet,omitempty"`
	// Workers sizes the dispatcher-side worker pool (0 = GOMAXPROCS;
	// output is byte-identical for any value).
	Workers int `json:"workers,omitempty"`
	// Seed is the bench RNG seed.
	Seed int64 `json:"seed"`
	// TrainRows/TestRows are the regression dataset sizes.
	TrainRows int `json:"train_rows,omitempty"`
	TestRows  int `json:"test_rows,omitempty"`
	// Trials is the ground-truth trial count per measured point.
	Trials int `json:"trials,omitempty"`
	// CacheDir persists measured cells on disk (empty = memory only).
	CacheDir string `json:"cache_dir,omitempty"`
	// Batch caps requests per wire frame on the dispatching backends
	// (0 = sweep.DefaultBatch; output is byte-identical for any value).
	Batch int `json:"batch,omitempty"`
	// Pipeline is the window of outstanding batches per worker or
	// connection (0 = sweep.DefaultPipeline; output is byte-identical
	// for any value).
	Pipeline int `json:"pipeline,omitempty"`
}

// Default returns the specification every subcommand starts from.
func Default() Spec {
	return Spec{
		Backend:   "pool",
		Seed:      42,
		TrainRows: experiments.DefaultTrainRows,
		TestRows:  experiments.DefaultTestRows,
		Trials:    experiments.DefaultTrials,
	}
}

// RegisterFlags registers the backend/dispatch flags
// (-backend/-procs/-nodes/-workers/-seed/-cache-dir) on fs, bound to s.
func (s *Spec) RegisterFlags(fs *flag.FlagSet) {
	fs.Int64Var(&s.Seed, "seed", s.Seed, "bench RNG seed")
	fs.IntVar(&s.Workers, "workers", s.Workers, "sweep worker pool size (0 = GOMAXPROCS; output identical for any value)")
	fs.StringVar(&s.Backend, "backend", s.Backend, "measurement backend: pool (in-process), proc (xrperf worker subprocesses), or net (xrperf serve nodes)")
	fs.IntVar(&s.Procs, "procs", s.Procs, "proc backend: worker subprocess count (0 = GOMAXPROCS)")
	fs.Func("nodes", "net backend: comma-separated serve-node addresses (host:port,...)", func(v string) error {
		s.Nodes = nil
		for _, part := range strings.Split(v, ",") {
			if part = strings.TrimSpace(part); part != "" {
				s.Nodes = append(s.Nodes, part)
			}
		}
		return nil
	})
	fs.Func("nodes-file", "net backend: file of serve-node addresses (one per line, # comments), reloaded on SIGHUP", func(v string) error {
		s.ensureFleet().NodesFile = v
		return nil
	})
	fs.Func("fleet-register", "net backend: coordinator listen address; `xrperf serve -register` nodes dial it to join the fleet and leave by disconnecting", func(v string) error {
		s.ensureFleet().Register = v
		return nil
	})
	fs.BoolFunc("no-steal", "net backend: disable work stealing between nodes (a batch committed to a slow node stays there; output is identical either way)", func(v string) error {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return err
		}
		s.ensureFleet().NoSteal = b
		return nil
	})
	fs.StringVar(&s.CacheDir, "cache-dir", s.CacheDir, "persist measured cells on disk so warm re-runs dispatch nothing (empty = in-memory cache only)")
	fs.IntVar(&s.Batch, "batch", s.Batch, "proc/net backends: requests per wire frame (0 = auto; output identical for any value)")
	fs.IntVar(&s.Pipeline, "pipeline", s.Pipeline, "proc/net backends: outstanding batches per worker (0 = auto; output identical for any value)")
}

// RegisterSuiteFlags registers the dataset/measurement flags
// (-train/-test/-trials) used by suite-building subcommands.
func (s *Spec) RegisterSuiteFlags(fs *flag.FlagSet) {
	fs.IntVar(&s.TrainRows, "train", s.TrainRows, "training dataset rows")
	fs.IntVar(&s.TestRows, "test", s.TestRows, "test dataset rows")
	fs.IntVar(&s.Trials, "trials", s.Trials, "ground-truth trials per point")
}

// backend normalizes the backend name ("" means pool).
func (s Spec) backend() string {
	if s.Backend == "" {
		return "pool"
	}
	return s.Backend
}

// ensureFleet returns the fleet spec, allocating it on first use — the
// fleet flags share one lazily created value so a spec that never uses
// them serializes without a "fleet" key.
func (s *Spec) ensureFleet() *fleet.Spec {
	if s.Fleet == nil {
		s.Fleet = &fleet.Spec{}
	}
	return s.Fleet
}

// fleetSpec folds the -nodes sugar into the effective fleet description:
// an inline node list is one membership source whether it arrived as the
// flat nodes field or inside the fleet document.
func (s Spec) fleetSpec() fleet.Spec {
	var fl fleet.Spec
	if s.Fleet != nil {
		fl = *s.Fleet
	}
	if len(s.Nodes) > 0 {
		fl.Nodes = append(append([]string(nil), s.Nodes...), fl.Nodes...)
	}
	return fl
}

// Validate checks the specification. Zero means "use the default" for
// every count (workers, procs, trials, rows), so only negatives — which
// no default resolves — are rejected; the backend/fleet combination must
// be coherent both ways (net needs exactly one membership source, fleet
// options need net).
func (s Spec) Validate() error {
	if s.Workers < 0 {
		return fmt.Errorf("job: -workers must be >= 0, have %d", s.Workers)
	}
	if s.Procs < 0 {
		return fmt.Errorf("job: -procs must be >= 0, have %d", s.Procs)
	}
	if s.Trials < 0 {
		return fmt.Errorf("job: -trials must be >= 0, have %d", s.Trials)
	}
	if s.TrainRows < 0 {
		return fmt.Errorf("job: -train must be >= 0, have %d", s.TrainRows)
	}
	if s.TestRows < 0 {
		return fmt.Errorf("job: -test must be >= 0, have %d", s.TestRows)
	}
	if s.Batch < 0 {
		return fmt.Errorf("job: -batch must be >= 0, have %d", s.Batch)
	}
	if s.Pipeline < 0 {
		return fmt.Errorf("job: -pipeline must be >= 0, have %d", s.Pipeline)
	}
	switch s.backend() {
	case "pool", "proc":
		if len(s.Nodes) > 0 {
			return fmt.Errorf("job: -nodes is only meaningful with -backend net, have -backend %s", s.backend())
		}
		if s.Fleet != nil && !s.Fleet.Empty() {
			return fmt.Errorf("job: fleet options (-nodes-file, -fleet-register, -no-steal) are only meaningful with -backend net, have -backend %s", s.backend())
		}
	case "net":
		fl := s.fleetSpec()
		if fl.SourceCount() == 0 {
			return fmt.Errorf("job: -backend net requires a fleet: -nodes (host:port,...), -nodes-file, or -fleet-register")
		}
		if fl.SourceCount() > 1 {
			return fmt.Errorf("job: -nodes, -nodes-file, and -fleet-register are mutually exclusive; set exactly one membership source")
		}
	default:
		return fmt.Errorf("job: unknown -backend %q (pool, proc, or net)", s.Backend)
	}
	return nil
}

// openDiskCache opens the persistent measurement store for CacheDir. An
// unusable directory degrades to the in-memory cache with a warning on
// stderr instead of failing the run: a broken cache must never block an
// evaluation it can only accelerate.
func (s Spec) openDiskCache() *sweep.DiskCache {
	if s.CacheDir == "" {
		return nil
	}
	disk, err := sweep.OpenDiskCache(s.CacheDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xrperf: %v; continuing with the in-memory cache only\n", err)
		return nil
	}
	return disk
}

// BuildRunner assembles the spec's measurement runner: the selected
// backend wrapped in the memoizing cache (persistent when CacheDir is
// usable). cleanup reaps backend resources — worker subprocesses, node
// connections — and must run after the job's last measurement.
func (s Spec) BuildRunner() (runner *sweep.CachedRunner, cleanup func(), err error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	cleanup = func() {}
	var backend sweep.Runner
	switch s.backend() {
	case "pool":
		backend = &sweep.PoolRunner{Workers: s.Workers}
	case "proc":
		pr := &sweep.ProcRunner{Procs: s.Procs, Batch: s.Batch, Pipeline: s.Pipeline}
		backend = pr
		cleanup = func() { _ = pr.Close() }
	case "net":
		fl := s.fleetSpec()
		src, stop, err := fl.Open(func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, "xrperf fleet: "+format+"\n", a...)
		})
		if err != nil {
			return nil, nil, err
		}
		nr := &sweep.NetRunner{Members: src, Batch: s.Batch, Pipeline: s.Pipeline, NoSteal: fl.NoSteal}
		backend = nr
		cleanup = func() {
			_ = nr.Close()
			stop()
		}
	}
	return sweep.NewCachedRunner(backend, sweep.WithDiskCache(s.openDiskCache())), cleanup, nil
}

// BuildSuite assembles the experiments suite on the spec's runner.
// cleanup is BuildRunner's.
func (s Spec) BuildSuite() (suite *experiments.Suite, cleanup func(), err error) {
	runner, cleanup, err := s.BuildRunner()
	if err != nil {
		return nil, nil, err
	}
	suite, err = s.BuildSuiteOn(runner)
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	return suite, cleanup, nil
}

// BuildSuiteOn assembles the spec's suite on a caller-supplied runner
// instead of the spec's own backend — the server path, where every job
// shares one long-lived runner (and its measurement cache) so identical
// cells requested by different clients are measured once globally. The
// spec is validated in full, backend fields included, so an invalid job
// is rejected with the exact error the one-shot CLI would print.
func (s Spec) BuildSuiteOn(runner *sweep.CachedRunner) (*experiments.Suite, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	suite, err := experiments.NewSuite(s.Seed, s.TrainRows, s.TestRows)
	if err != nil {
		return nil, err
	}
	suite.Trials = s.Trials
	suite.Workers = s.Workers
	suite.Disk = runner.Disk()
	suite.Runner = runner
	return suite, nil
}

// String renders the spec as its canonical JSON.
func (s Spec) String() string {
	b, err := json.Marshal(s)
	if err != nil {
		return fmt.Sprintf("job.Spec(%v)", err)
	}
	return string(b)
}
