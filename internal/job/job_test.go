package job

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"reflect"
	"testing"

	"repro/internal/device"
	"repro/internal/fleet"
	"repro/internal/pipeline"
	"repro/internal/sweep"
	"repro/internal/testbed"
)

// TestSpecJSONRoundTrip is the jobs-as-data satellite: a Spec built from
// flags survives a JSON round trip unchanged, so the same job can arrive
// from a file or a server request and build the identical runner.
func TestSpecJSONRoundTrip(t *testing.T) {
	specs := []Spec{
		Default(),
		{},
		{
			Backend:   "net",
			Nodes:     []string{"a:1", "b:2"},
			Workers:   8,
			Seed:      -3,
			TrainRows: 100,
			TestRows:  50,
			Trials:    7,
			CacheDir:  "/tmp/cells",
		},
		{Backend: "proc", Procs: 4, Seed: 42},
		{Backend: "net", Fleet: &fleet.Spec{NodesFile: "/tmp/nodes", NoSteal: true}, Seed: 1},
		{Backend: "net", Fleet: &fleet.Spec{Register: "127.0.0.1:7900"}, Seed: 2},
	}
	for _, want := range specs {
		b, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		var got Spec
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip changed the spec:\n got %+v\nwant %+v\nwire %s", got, want, b)
		}
		if want.String() != string(b) {
			t.Errorf("String() %q != canonical JSON %q", want.String(), b)
		}
	}
}

// TestSpecFlagsMatchJSON checks the two front doors agree: parsing flags
// and unmarshaling the equivalent JSON produce the same Spec.
func TestSpecFlagsMatchJSON(t *testing.T) {
	fromFlags := Default()
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fromFlags.RegisterFlags(fs)
	fromFlags.RegisterSuiteFlags(fs)
	err := fs.Parse([]string{
		"-backend", "net", "-nodes", " a:1, b:2 ,", "-workers", "3",
		"-seed", "7", "-train", "1000", "-test", "250", "-trials", "5",
		"-cache-dir", "/tmp/x",
	})
	if err != nil {
		t.Fatal(err)
	}

	var fromJSON Spec
	wire := `{"backend":"net","nodes":["a:1","b:2"],"workers":3,"seed":7,
		"train_rows":1000,"test_rows":250,"trials":5,"cache_dir":"/tmp/x"}`
	if err := json.Unmarshal([]byte(wire), &fromJSON); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromFlags, fromJSON) {
		t.Fatalf("flag parse and JSON disagree:\nflags %+v\njson  %+v", fromFlags, fromJSON)
	}
}

// TestSpecFleetFlagsMatchJSON extends the two-front-doors check to the
// fleet surface: the -nodes-file/-fleet-register/-no-steal flags build
// the same Spec as the equivalent fleet JSON document.
func TestSpecFleetFlagsMatchJSON(t *testing.T) {
	cases := []struct {
		name  string
		flags []string
		wire  string
	}{
		{"nodes file with stealing off",
			[]string{"-backend", "net", "-nodes-file", "/tmp/fleet.txt", "-no-steal", "-seed", "3"},
			`{"backend":"net","fleet":{"nodes_file":"/tmp/fleet.txt","no_steal":true},"seed":3}`},
		{"registration coordinator",
			[]string{"-backend", "net", "-fleet-register", "127.0.0.1:7900", "-seed", "3"},
			`{"backend":"net","fleet":{"register":"127.0.0.1:7900"},"seed":3}`},
	}
	for _, tc := range cases {
		var fromFlags Spec
		fs := flag.NewFlagSet("t", flag.ContinueOnError)
		fromFlags.RegisterFlags(fs)
		if err := fs.Parse(tc.flags); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		var fromJSON Spec
		if err := json.Unmarshal([]byte(tc.wire), &fromJSON); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !reflect.DeepEqual(fromFlags, fromJSON) {
			t.Errorf("%s: flag parse and JSON disagree:\nflags %+v\njson  %+v", tc.name, fromFlags, fromJSON)
		}
		if err := fromFlags.Validate(); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	if err := (Spec{}).Validate(); err != nil {
		t.Fatalf("zero spec (implicit pool): %v", err)
	}
	if err := Default().Validate(); err != nil {
		t.Fatalf("default spec: %v", err)
	}
	if err := (Spec{Backend: "net"}).Validate(); err == nil {
		t.Fatal("net without nodes must error")
	}
	if err := (Spec{Backend: "teleport"}).Validate(); err == nil {
		t.Fatal("unknown backend must error")
	}
	if _, _, err := (Spec{Backend: "teleport"}).BuildRunner(); err == nil {
		t.Fatal("BuildRunner must validate")
	}
}

// TestSpecBuildRunnerPool checks the default path end to end: a pool
// runner wrapped in the memoizing cache that actually executes requests.
func TestSpecBuildRunnerPool(t *testing.T) {
	spec := Default()
	spec.Workers = 2
	runner, cleanup, err := spec.BuildRunner()
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	if runner.Disk() != nil {
		t.Fatal("no cache dir: disk store must be nil")
	}
	dev, err := device.ByName("XR1")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := pipeline.NewScenario(dev)
	if err != nil {
		t.Fatal(err)
	}
	reqs := []testbed.Request{{Scenario: sc, Trials: 2, Seed: 9, NoiseRel: testbed.DefaultNoiseRel}}
	ms, err := runner.Run(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].LatencyMs <= 0 {
		t.Fatalf("runner result: %+v", ms)
	}
}

// TestSpecBuildRunnerDiskCache checks CacheDir wires the persistent
// store in, and an unusable dir degrades to memory instead of failing.
func TestSpecBuildRunnerDiskCache(t *testing.T) {
	spec := Default()
	spec.CacheDir = t.TempDir()
	runner, cleanup, err := spec.BuildRunner()
	if err != nil {
		t.Fatal(err)
	}
	cleanup()
	if runner.Disk() == nil {
		t.Fatal("usable cache dir must open the disk store")
	}

	file := t.TempDir() + "/occupied"
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	spec.CacheDir = file
	degraded, cleanup2, err := spec.BuildRunner()
	if err != nil {
		t.Fatal(err)
	}
	cleanup2()
	if degraded.Disk() != nil {
		t.Fatal("unusable cache dir must degrade to memory")
	}
}

// TestSpecBuildSuite checks the suite inherits every knob from the spec.
func TestSpecBuildSuite(t *testing.T) {
	spec := Spec{Seed: 5, TrainRows: 4000, TestRows: 1000, Trials: 3, Workers: 2}
	suite, cleanup, err := spec.BuildSuite()
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	if suite.Trials != 3 || suite.Workers != 2 {
		t.Fatalf("suite knobs: trials %d workers %d", suite.Trials, suite.Workers)
	}
	if _, ok := suite.Runner.(*sweep.CachedRunner); !ok {
		t.Fatalf("suite runner %T, want *sweep.CachedRunner", suite.Runner)
	}
	if _, _, err := (Spec{Backend: "nope"}).BuildSuite(); err == nil {
		t.Fatal("BuildSuite must validate")
	}
}
