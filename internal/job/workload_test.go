package job

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/scenario"
	"repro/internal/sweep"
)

// TestSpecValidateTable covers every invalid field combination Validate
// rejects, with the exact message each produces — the text is contract:
// the server reports it verbatim to submit clients, and the CLI prints
// it verbatim on stderr, so a drift here is a user-visible parity break.
func TestSpecValidateTable(t *testing.T) {
	valid := []Spec{
		{},
		Default(),
		{Backend: "pool"},
		{Backend: "proc", Procs: 4},
		{Backend: "net", Nodes: []string{"a:1"}},
		{Backend: "net", Fleet: &fleet.Spec{Nodes: []string{"a:1"}}},
		{Backend: "net", Fleet: &fleet.Spec{NodesFile: "/tmp/nodes"}},
		{Backend: "net", Fleet: &fleet.Spec{Register: "127.0.0.1:0", NoSteal: true}},
		// The flat field and fleet.nodes are the same inline source, not
		// two competing ones.
		{Backend: "net", Nodes: []string{"a:1"}, Fleet: &fleet.Spec{Nodes: []string{"b:2"}, NoSteal: true}},
		{Backend: "pool", Fleet: &fleet.Spec{}}, // empty fleet document is inert
		{Workers: 8, Trials: 9, TrainRows: 10, TestRows: 11},
	}
	for i, s := range valid {
		if err := s.Validate(); err != nil {
			t.Errorf("valid case %d rejected: %v", i, err)
		}
	}

	invalid := []struct {
		name string
		spec Spec
		want string
	}{
		{"unknown backend", Spec{Backend: "teleport"},
			`job: unknown -backend "teleport" (pool, proc, or net)`},
		{"net without a fleet", Spec{Backend: "net"},
			"job: -backend net requires a fleet: -nodes (host:port,...), -nodes-file, or -fleet-register"},
		{"net with an empty fleet", Spec{Backend: "net", Fleet: &fleet.Spec{NoSteal: true}},
			"job: -backend net requires a fleet: -nodes (host:port,...), -nodes-file, or -fleet-register"},
		{"nodes without net (pool)", Spec{Backend: "pool", Nodes: []string{"a:1"}},
			"job: -nodes is only meaningful with -backend net, have -backend pool"},
		{"nodes without net (proc)", Spec{Backend: "proc", Nodes: []string{"a:1"}},
			"job: -nodes is only meaningful with -backend net, have -backend proc"},
		{"nodes without net (implicit pool)", Spec{Nodes: []string{"a:1"}},
			"job: -nodes is only meaningful with -backend net, have -backend pool"},
		{"fleet without net", Spec{Fleet: &fleet.Spec{NodesFile: "/tmp/nodes"}},
			"job: fleet options (-nodes-file, -fleet-register, -no-steal) are only meaningful with -backend net, have -backend pool"},
		{"no-steal without net", Spec{Backend: "proc", Fleet: &fleet.Spec{NoSteal: true}},
			"job: fleet options (-nodes-file, -fleet-register, -no-steal) are only meaningful with -backend net, have -backend proc"},
		{"two membership sources", Spec{Backend: "net", Nodes: []string{"a:1"}, Fleet: &fleet.Spec{NodesFile: "/tmp/nodes"}},
			"job: -nodes, -nodes-file, and -fleet-register are mutually exclusive; set exactly one membership source"},
		{"three membership sources", Spec{Backend: "net", Fleet: &fleet.Spec{Nodes: []string{"a:1"}, NodesFile: "f", Register: "r:1"}},
			"job: -nodes, -nodes-file, and -fleet-register are mutually exclusive; set exactly one membership source"},
		{"negative workers", Spec{Workers: -1},
			"job: -workers must be >= 0, have -1"},
		{"negative procs", Spec{Procs: -2},
			"job: -procs must be >= 0, have -2"},
		{"negative trials", Spec{Trials: -3},
			"job: -trials must be >= 0, have -3"},
		{"negative train rows", Spec{TrainRows: -4},
			"job: -train must be >= 0, have -4"},
		{"negative test rows", Spec{TestRows: -5},
			"job: -test must be >= 0, have -5"},
		{"first failure wins", Spec{Workers: -1, Backend: "teleport", Trials: -9},
			"job: -workers must be >= 0, have -1"},
	}
	for _, tc := range invalid {
		err := tc.spec.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if err.Error() != tc.want {
			t.Errorf("%s: error text drifted:\ngot  %q\nwant %q", tc.name, err, tc.want)
		}
		// Every builder funnels through Validate, so the same spec must
		// fail identically everywhere.
		if _, _, berr := tc.spec.BuildRunner(); berr == nil || berr.Error() != err.Error() {
			t.Errorf("%s: BuildRunner error %q != Validate error %q", tc.name, berr, err)
		}
		if _, serr := tc.spec.BuildSuiteOn(nil); serr == nil || serr.Error() != err.Error() {
			t.Errorf("%s: BuildSuiteOn error %q != Validate error %q", tc.name, serr, err)
		}
	}
}

// TestParseGrid checks grid parsing: list splitting, float parsing, and
// the error texts the sweep flags have always produced.
func TestParseGrid(t *testing.T) {
	g, err := ParseGrid(" XR1 , XR2 ", "local,remote", "", "300, 500", "0")
	if err != nil {
		t.Fatal(err)
	}
	want := Grid{
		Devices: []string{"XR1", "XR2"},
		Modes:   []string{"local", "remote"},
		Sizes:   []float64{300, 500},
		Freqs:   []float64{0},
	}
	if !reflect.DeepEqual(g, want) {
		t.Fatalf("parsed grid %+v, want %+v", g, want)
	}
	if _, err := ParseGrid("XR1", "local", "", "tall", "0"); err == nil ||
		err.Error() != `-sizes: "tall" is not a number` {
		t.Fatalf("bad size error: %v", err)
	}
	if _, err := ParseGrid("XR1", "local", "", "300", "fast"); err == nil ||
		err.Error() != `-freqs: "fast" is not a number` {
		t.Fatalf("bad freq error: %v", err)
	}
}

// TestGridBuild checks name resolution against the catalogs, including
// the "all" device selector and the error texts for unknown names.
func TestGridBuild(t *testing.T) {
	g := Grid{Devices: []string{"all"}, Modes: []string{"local", "remote"}, Sizes: []float64{500}}
	built, err := g.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(built.Devices) < 2 {
		t.Fatalf(`"all" resolved to %d devices`, len(built.Devices))
	}
	if len(built.Modes) != 2 || len(built.FrameSizes) != 1 {
		t.Fatalf("axes lost in build: %+v", built)
	}

	if _, err := (Grid{}).Build(); err == nil ||
		err.Error() != "-devices: at least one device required" {
		t.Fatalf("empty devices error: %v", err)
	}
	if _, err := (Grid{Devices: []string{"XR1"}, Modes: []string{"sideways"}}).Build(); err == nil ||
		err.Error() != `-modes: unknown mode "sideways" (local or remote)` {
		t.Fatalf("bad mode error: %v", err)
	}
	if _, err := (Grid{Devices: []string{"XR99"}}).Build(); err == nil {
		t.Fatal("unknown device must error")
	}
	if _, err := (Grid{Devices: []string{"XR1"}, CNNs: []string{"M99"}}).Build(); err == nil {
		t.Fatal("unknown CNN must error")
	}
}

// TestJobValidate covers the workload-level checks layered on the spec.
func TestJobValidate(t *testing.T) {
	grid := &Grid{Devices: []string{"XR1"}, Modes: []string{"local"}, Sizes: []float64{500}}
	good := []Job{
		{Spec: Default(), Grid: grid},
		{Kind: KindSweep, Spec: Default(), Grid: grid, Format: "csv"},
		{Kind: KindReport, Spec: Default()},
		{Kind: KindReport, Spec: Default(), Stream: true},
		{Kind: KindPopulation, Spec: Default()}, // nil workload = default scenario
		{Kind: KindPopulation, Spec: Default(), Format: "table",
			Population: &Population{Scenario: "offload", Users: 12, Frames: 5, Shard: 4}},
	}
	for i, j := range good {
		if err := j.Validate(); err != nil {
			t.Errorf("valid job %d rejected: %v", i, err)
		}
	}
	bad := []struct {
		job  Job
		want string
	}{
		{Job{Spec: Default()}, "job: a sweep job needs a grid"},
		{Job{Spec: Default(), Grid: grid, Format: "xml"},
			`-format: unknown format "xml" (table or csv)`},
		{Job{Kind: "dance", Spec: Default()},
			`job: unknown kind "dance" (sweep, report, or population)`},
		{Job{Spec: Spec{Backend: "net"}, Grid: grid},
			"job: -backend net requires a fleet: -nodes (host:port,...), -nodes-file, or -fleet-register"},
		{Job{Kind: KindPopulation, Spec: Default(), Population: &Population{Users: -1}},
			"job: -users must be >= 0, have -1"},
		{Job{Kind: KindPopulation, Spec: Default(), Population: &Population{Frames: -2}},
			"job: -frames must be >= 0, have -2"},
		{Job{Kind: KindPopulation, Spec: Default(), Population: &Population{Shard: -3}},
			"job: -shard must be >= 0, have -3"},
		{Job{Kind: KindPopulation, Spec: Default(), Format: "csv"},
			`-format: population renders table output only, have "csv"`},
	}
	for _, tc := range bad {
		if err := tc.job.Validate(); err == nil || err.Error() != tc.want {
			t.Errorf("job %+v: got %q, want %q", tc.job, err, tc.want)
		}
	}
}

// TestJobJSONRoundTrip checks the job document — spec, grid, and
// workload knobs — survives JSON unchanged, Decode rejects garbage, and
// the kind/format defaults apply on the wire just as they do for flags.
func TestJobJSONRoundTrip(t *testing.T) {
	grid := &Grid{Devices: []string{"XR1", "XR2"}, Modes: []string{"remote"}, CNNs: []string{"M1"}, Sizes: []float64{300, 700}, Freqs: []float64{1.5}}
	jobs := []Job{
		{Kind: KindSweep, Spec: Default(), Grid: grid, Format: "csv", Stream: true},
		{Kind: KindPopulation, Spec: Default(),
			Population: &Population{Scenario: "multiplayer", Users: 500, Frames: 60, Shard: 100}},
	}
	for _, want := range jobs {
		b, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(b)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip changed the job:\n got %+v\nwant %+v", got, want)
		}
	}

	if _, err := Decode([]byte("{not json")); err == nil ||
		!strings.Contains(err.Error(), "job: bad job document") {
		t.Fatalf("garbage decode error: %v", err)
	}

	minimal, err := Decode([]byte(`{"spec":{"seed":1},"grid":{"devices":["XR1"],"sizes":[500]}}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := minimal.Validate(); err != nil {
		t.Fatalf("minimal sweep document invalid: %v", err)
	}
}

// TestPopulationJobMatchesDirectRun pins the population-jobs satellite:
// a population job routed through SuiteFor + Run — the server's path,
// and now the CLI's too — renders byte-identically to driving the sweep
// layer directly, and a nil workload means the documented defaults.
func TestPopulationJobMatchesDirectRun(t *testing.T) {
	spec := Spec{Seed: 11}
	render := func(p *Population) string {
		t.Helper()
		jb := Job{Kind: KindPopulation, Spec: spec, Population: p}
		runner, cleanup, err := spec.BuildRunner()
		if err != nil {
			t.Fatal(err)
		}
		defer cleanup()
		suite, err := jb.SuiteFor(runner)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := jb.Run(context.Background(), suite, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	got := render(&Population{Scenario: "offload", Users: 10, Frames: 4, Shard: 3})

	cohorts, err := scenario.Generate("offload", scenario.Params{Users: 10, Frames: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	runner, cleanup, err := spec.BuildRunner()
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	res, err := sweep.RunPopulation(context.Background(), runner, cohorts, sweep.PopulationOptions{ShardUsers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if want := res.Render(); got != want {
		t.Fatalf("job path diverges from direct sweep:\n job  %q\ndirect %q", got, want)
	}

	// Shard size never changes bytes, and an explicit spelling of the
	// defaults matches the nil workload.
	if a, b := render(&Population{Scenario: "offload", Users: 10, Frames: 4, Shard: 3}),
		render(&Population{Scenario: "offload", Users: 10, Frames: 4, Shard: 7}); a != b {
		t.Fatalf("shard size changed population bytes:\n%q\n%q", a, b)
	}
	if got, want := (Job{Kind: KindPopulation}).population(),
		(Population{Scenario: "vehicular", Users: 10000, Frames: 120}); got != want {
		t.Fatalf("nil population workload resolves to %+v, want %+v", got, want)
	}

	// An unknown scenario fails with the generator's own message.
	jb := Job{Kind: KindPopulation, Spec: spec, Population: &Population{Scenario: "bogus"}}
	if err := jb.Run(context.Background(), &experiments.Suite{}, new(bytes.Buffer)); err == nil ||
		!strings.Contains(err.Error(), "bogus") {
		t.Fatalf("unknown scenario error: %v", err)
	}
}

// TestJobRunMatchesSuiteMethods pins that Run is a pure re-plumbing of
// the suite's own render paths: buffered and streamed runs of the same
// job emit identical bytes, for both workload kinds and both formats.
func TestJobRunMatchesSuiteMethods(t *testing.T) {
	spec := Spec{Seed: 42, TrainRows: 2000, TestRows: 500, Trials: 5, Workers: 2}
	grid := &Grid{Devices: []string{"XR1"}, Modes: []string{"local", "remote"}, Sizes: []float64{300, 500}}
	for _, format := range []string{"table", "csv"} {
		var buffered, streamed bytes.Buffer
		for _, tc := range []struct {
			stream bool
			out    *bytes.Buffer
		}{{false, &buffered}, {true, &streamed}} {
			jb := Job{Kind: KindSweep, Spec: spec, Grid: grid, Format: format, Stream: tc.stream}
			suite, cleanup, err := spec.BuildSuite()
			if err != nil {
				t.Fatal(err)
			}
			if err := jb.Run(context.Background(), suite, tc.out); err != nil {
				t.Fatal(err)
			}
			cleanup()
		}
		if buffered.String() != streamed.String() {
			t.Fatalf("%s: streamed bytes diverge from buffered:\nbuffered %q\nstreamed %q",
				format, buffered.String(), streamed.String())
		}
		if buffered.Len() == 0 {
			t.Fatalf("%s: empty output", format)
		}
	}
}
