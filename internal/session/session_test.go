package session

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/device"
	"repro/internal/energy"
	"repro/internal/mobility"
	"repro/internal/pipeline"
	"repro/internal/wireless"
)

func baseConfig(t *testing.T, frames int) Config {
	t.Helper()
	d, err := device.ByName("XR1")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := pipeline.NewScenario(d, pipeline.WithCPUShare(1))
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Models:   energy.PaperModels(),
		Scenario: sc,
		Frames:   frames,
		Seed:     1,
	}
}

func mustRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunValidation(t *testing.T) {
	ctx := context.Background()
	cfg := baseConfig(t, 10)
	bad := cfg
	bad.Models = energy.Models{}
	if _, err := Run(ctx, bad); !errors.Is(err, ErrConfig) {
		t.Fatal("zero model bundle must error")
	}
	bad = cfg
	bad.Scenario = nil
	if _, err := Run(ctx, bad); !errors.Is(err, ErrConfig) {
		t.Fatal("nil scenario must error")
	}
	bad = cfg
	bad.Frames = 0
	if _, err := Run(ctx, bad); !errors.Is(err, ErrConfig) {
		t.Fatal("zero frames must error")
	}
	bad = cfg
	th := DefaultThermal()
	th.StepGHz = 0
	bad.Thermal = &th
	if _, err := Run(ctx, bad); !errors.Is(err, ErrConfig) {
		t.Fatal("bad thermal model must error")
	}
}

func TestThermalValidate(t *testing.T) {
	good := DefaultThermal()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	tests := []func(*ThermalModel){
		func(m *ThermalModel) { m.CPerMJ = -1 },
		func(m *ThermalModel) { m.DecayPerFrame = 0 },
		func(m *ThermalModel) { m.DecayPerFrame = 1.2 },
		func(m *ThermalModel) { m.ResumeAtC = m.ThrottleAtC + 1 },
		func(m *ThermalModel) { m.StepGHz = 0 },
		func(m *ThermalModel) { m.MinGHz = 0 },
	}
	for i, mutate := range tests {
		m := DefaultThermal()
		mutate(&m)
		if err := m.Validate(); !errors.Is(err, ErrConfig) {
			t.Fatalf("case %d must error", i)
		}
	}
}

func TestPlainSessionIsSteady(t *testing.T) {
	cfg := baseConfig(t, 50)
	res := mustRun(t, cfg)
	if res.CompletedFrames != 50 || len(res.Trace) != 50 {
		t.Fatalf("frames = %d/%d", res.CompletedFrames, len(res.Trace))
	}
	// No thermal/battery/mobility: every frame identical.
	for _, rec := range res.Trace {
		if rec.LatencyMs != res.Trace[0].LatencyMs {
			t.Fatal("steady session must have constant latency")
		}
		if rec.Throttled {
			t.Fatal("no thermal model, no throttling")
		}
		if rec.BatterySoC != 1 {
			t.Fatal("no battery, SoC stays 1")
		}
	}
	if math.Abs(res.MeanLatencyMs-res.Trace[0].LatencyMs) > 1e-9 {
		t.Fatal("mean latency wrong")
	}
	if math.Abs(res.TotalEnergyMJ-50*res.Trace[0].EnergyMJ) > 1e-6 {
		t.Fatal("total energy wrong")
	}
}

func TestThermalThrottlingEngagesAndRecovers(t *testing.T) {
	cfg := baseConfig(t, 400)
	th := DefaultThermal()
	// Aggressive heating so the governor must engage quickly.
	th.CPerMJ = 0.5
	th.DecayPerFrame = 0.97
	cfg.Thermal = &th
	res := mustRun(t, cfg)
	if res.ThrottledFrames == 0 {
		t.Fatal("aggressive thermal model must throttle")
	}
	// The throttled clock must never go below the floor or above base.
	base := cfg.Scenario.CPUFreqGHz
	minSeen := base
	for _, rec := range res.Trace {
		if rec.CPUFreqGHz < th.MinGHz-1e-9 || rec.CPUFreqGHz > base+1e-9 {
			t.Fatalf("clock %v out of [%v,%v]", rec.CPUFreqGHz, th.MinGHz, base)
		}
		if rec.CPUFreqGHz < minSeen {
			minSeen = rec.CPUFreqGHz
		}
	}
	if minSeen >= base {
		t.Fatal("clock never stepped down")
	}
	// Throttling must raise latency: compare hottest vs first frame.
	var throttledLat float64
	for _, rec := range res.Trace {
		if rec.Throttled && rec.LatencyMs > throttledLat {
			throttledLat = rec.LatencyMs
		}
	}
	if throttledLat <= res.Trace[0].LatencyMs {
		t.Fatal("throttled frames must be slower")
	}
}

func TestBatteryDepletion(t *testing.T) {
	cfg := baseConfig(t, 100000)
	// A tiny battery (1 mAh at 3.85 V ≈ 13.9 kJ → 13.9 MJ... in mJ:
	// 13860 mJ) depletes within tens of frames at ≈800 mJ/frame.
	b, err := NewBattery(1, 3.85)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Battery = &b
	res := mustRun(t, cfg)
	if !res.Depleted {
		t.Fatal("tiny battery must deplete")
	}
	if res.CompletedFrames >= 100000 {
		t.Fatal("session must stop on depletion")
	}
	last := res.Trace[len(res.Trace)-1]
	if last.BatterySoC > 0 {
		t.Fatalf("final SoC = %v, want 0", last.BatterySoC)
	}
	if res.FinalSoC != last.BatterySoC {
		t.Fatal("FinalSoC must match last trace record")
	}
}

func TestNewBatteryValidation(t *testing.T) {
	if _, err := NewBattery(0, 3.85); !errors.Is(err, ErrConfig) {
		t.Fatal("zero capacity must error")
	}
	if _, err := NewBattery(5000, 0); !errors.Is(err, ErrConfig) {
		t.Fatal("zero voltage must error")
	}
	b, err := NewBattery(5000, 3.85)
	if err != nil {
		t.Fatal(err)
	}
	// 5000 mAh at 3.85 V = 69300 J = 69.3e6 mJ.
	if math.Abs(b.CapacityMJ-69.3e6) > 1e3 {
		t.Fatalf("capacity = %v mJ", b.CapacityMJ)
	}
	if b.SoC() != 1 {
		t.Fatal("fresh battery SoC must be 1")
	}
}

func TestMobilitySession(t *testing.T) {
	cfg := baseConfig(t, 60)
	sc := *cfg.Scenario
	sc.Mode = pipeline.ModeRemote
	cfg.Scenario = &sc
	walk, err := mobility.NewWalk(10, 50)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Walk = &walk
	cfg.Zone = mobility.Zone{Technology: wireless.WiFi5GHz, RadiusM: 25}
	cfg.HandoffKind = mobility.HandoffVertical
	cfg.HandoffEveryFrames = 20
	res := mustRun(t, cfg)
	var sawHO bool
	for _, rec := range res.Trace {
		if rec.HandoffProb > 0 {
			sawHO = true
		}
	}
	if !sawHO {
		t.Fatal("mobile session must estimate a positive handoff probability")
	}
}

func TestTraceTable(t *testing.T) {
	cfg := baseConfig(t, 20)
	res := mustRun(t, cfg)
	tbl, err := res.TraceTable()
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 20 {
		t.Fatalf("table rows = %d", tbl.Len())
	}
	col, err := tbl.Col("latency_ms")
	if err != nil {
		t.Fatal(err)
	}
	if col[0] != res.Trace[0].LatencyMs {
		t.Fatal("table column mismatch")
	}
}

func TestBatteryLifeFrames(t *testing.T) {
	cfg := baseConfig(t, 10)
	res := mustRun(t, cfg)
	b, err := NewBattery(5000, 3.85)
	if err != nil {
		t.Fatal(err)
	}
	frames, err := res.BatteryLifeFrames(b)
	if err != nil {
		t.Fatal(err)
	}
	want := int(b.CapacityMJ / (res.TotalEnergyMJ / 10))
	if frames != want {
		t.Fatalf("battery life = %d frames, want %d", frames, want)
	}
	empty := &Result{}
	if _, err := empty.BatteryLifeFrames(b); !errors.Is(err, ErrConfig) {
		t.Fatal("empty session must error")
	}
}

func TestSessionDeterministic(t *testing.T) {
	a := mustRun(t, baseConfig(t, 30))
	b := mustRun(t, baseConfig(t, 30))
	if a.MeanLatencyMs != b.MeanLatencyMs || a.TotalEnergyMJ != b.TotalEnergyMJ {
		t.Fatal("sessions with identical config must reproduce")
	}
}

func TestDiscardTraceMatchesRetained(t *testing.T) {
	cfg := baseConfig(t, 80)
	th := DefaultThermal()
	th.CPerMJ = 0.5
	th.DecayPerFrame = 0.97
	cfg.Thermal = &th
	full := mustRun(t, cfg)

	cfg.DiscardTrace = true
	var observed int
	cfg.Observer = func(FrameRecord) error { observed++; return nil }
	lean := mustRun(t, cfg)

	if lean.Trace != nil {
		t.Fatal("DiscardTrace must not retain a trace")
	}
	if observed != full.CompletedFrames {
		t.Fatalf("observer saw %d frames, want %d", observed, full.CompletedFrames)
	}
	if lean.MeanLatencyMs != full.MeanLatencyMs ||
		lean.TotalEnergyMJ != full.TotalEnergyMJ ||
		lean.ThrottledFrames != full.ThrottledFrames ||
		lean.PeakTempC != full.PeakTempC ||
		lean.FinalCPUFreqGHz != full.FinalCPUFreqGHz {
		t.Fatal("summary must not depend on trace retention")
	}
}

func TestObserverErrorAborts(t *testing.T) {
	cfg := baseConfig(t, 50)
	boom := errors.New("boom")
	cfg.Observer = func(rec FrameRecord) error {
		if rec.Frame == 3 {
			return boom
		}
		return nil
	}
	if _, err := Run(context.Background(), cfg); !errors.Is(err, boom) {
		t.Fatalf("observer error must propagate, got %v", err)
	}
}

func TestRunHonorsContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, baseConfig(t, 10)); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled context must abort, got %v", err)
	}
}
