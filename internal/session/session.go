// Package session runs the per-frame analytical models over a multi-frame
// XR session, closing the loops the single-frame analysis leaves open:
// heat from E_θ accumulates and throttles the CPU clock (the user-comfort
// concern of Section V-B), the battery drains by E_tot per frame (the
// battery-health motivation of Section I), and the device walks between
// wireless coverage zones so the handoff term of Eq. (17) evolves with
// position. The output is a frame-indexed trace — the q superscript the
// paper threads through every equation, realized over time.
//
// A session depends only on its Config — the analytical model bundle, a
// scenario, and a seed — never on process state, which is what lets the
// testbed execute sessions as serializable backend requests
// (testbed.OpSession) on any sweep backend. Population-scale callers set
// DiscardTrace and fold frames through Observer so memory stays flat at
// any session count.
package session

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/mobility"
	"repro/internal/pipeline"
	"repro/internal/stats"
)

// Common errors.
var (
	// ErrConfig indicates an invalid session configuration.
	ErrConfig = errors.New("session: invalid configuration")
	// ErrBatteryDepleted reports the battery emptied mid-session.
	ErrBatteryDepleted = errors.New("session: battery depleted")
)

// ThermalModel is a lumped-parameter heat model: the thermal energy E_θ of
// each frame raises a temperature state that decays toward ambient; above
// ThrottleAtC the governor steps the CPU clock down, below ResumeAtC it
// steps back up.
type ThermalModel struct {
	// AmbientC is the ambient temperature.
	AmbientC float64 `json:"ambient_c"`
	// CPerMJ converts dissipated millijoules into temperature rise.
	CPerMJ float64 `json:"c_per_mj"`
	// DecayPerFrame is the fraction of the above-ambient temperature
	// retained each frame (0,1).
	DecayPerFrame float64 `json:"decay_per_frame"`
	// ThrottleAtC triggers a clock step-down.
	ThrottleAtC float64 `json:"throttle_at_c"`
	// ResumeAtC allows a clock step-up.
	ResumeAtC float64 `json:"resume_at_c"`
	// StepGHz is the clock adjustment granularity.
	StepGHz float64 `json:"step_ghz"`
	// MinGHz floors the throttled clock.
	MinGHz float64 `json:"min_ghz"`
}

// DefaultThermal returns a thermal model typical of a passively cooled
// headset: ~45 °C skin-temperature throttle.
func DefaultThermal() ThermalModel {
	return ThermalModel{
		AmbientC:      25,
		CPerMJ:        0.010,
		DecayPerFrame: 0.985,
		ThrottleAtC:   45,
		ResumeAtC:     39,
		StepGHz:       0.25,
		MinGHz:        0.9,
	}
}

// Validate checks the thermal parameters.
func (m ThermalModel) Validate() error {
	switch {
	case m.CPerMJ < 0:
		return fmt.Errorf("%w: CPerMJ %v", ErrConfig, m.CPerMJ)
	case m.DecayPerFrame <= 0 || m.DecayPerFrame > 1:
		return fmt.Errorf("%w: decay %v", ErrConfig, m.DecayPerFrame)
	case m.ThrottleAtC <= m.ResumeAtC:
		return fmt.Errorf("%w: throttle %v must exceed resume %v", ErrConfig, m.ThrottleAtC, m.ResumeAtC)
	case m.StepGHz <= 0:
		return fmt.Errorf("%w: step %v GHz", ErrConfig, m.StepGHz)
	case m.MinGHz <= 0:
		return fmt.Errorf("%w: min clock %v GHz", ErrConfig, m.MinGHz)
	}
	return nil
}

// Battery is a simple charge reservoir. CapacityMJ derives from the usual
// mAh rating: E[mJ] = mAh · 3.6 · V · 1000 / 1000 = mAh · 3.6 · V (J) ·
// 1000.
type Battery struct {
	// CapacityMJ is the full-charge energy.
	CapacityMJ float64
	// RemainingMJ is the current charge.
	RemainingMJ float64
}

// NewBattery builds a battery from a mAh rating at the given nominal
// voltage.
func NewBattery(mAh, volts float64) (Battery, error) {
	if mAh <= 0 || volts <= 0 {
		return Battery{}, fmt.Errorf("%w: battery %v mAh @ %v V", ErrConfig, mAh, volts)
	}
	capMJ := mAh * 3.6 * volts * 1000 / 1000 * 1000 // mAh→C: ·3.6; ·V→J; ·1000→mJ
	return Battery{CapacityMJ: capMJ, RemainingMJ: capMJ}, nil
}

// Drain removes energy; it reports whether charge remains.
func (b *Battery) Drain(mj float64) bool {
	b.RemainingMJ -= mj
	return b.RemainingMJ > 0
}

// SoC returns the state of charge in [0,1].
func (b *Battery) SoC() float64 {
	if b.CapacityMJ <= 0 {
		return 0
	}
	soc := b.RemainingMJ / b.CapacityMJ
	if soc < 0 {
		return 0
	}
	return soc
}

// Config describes a session run.
type Config struct {
	// Models is the analytical model bundle evaluated every frame — the
	// paper's published coefficients (energy.PaperModels) or a re-fitted
	// bundle (e.g. core.Framework.Energy). Sessions only need the
	// latency/energy breakdowns, so they depend on the model layer
	// directly rather than the full framework façade.
	Models energy.Models
	// Scenario is the starting operating point; the session mutates a
	// copy frame by frame.
	Scenario *pipeline.Scenario
	// Frames is the session length.
	Frames int
	// Thermal enables the throttling loop when non-nil.
	Thermal *ThermalModel
	// Battery enables drain accounting when non-nil.
	Battery *Battery
	// Walk and Zone enable mobility: P(HO) is re-estimated every
	// HandoffEveryFrames frames via Monte-Carlo over the walk.
	Walk *mobility.Walk
	Zone mobility.Zone
	// HandoffKind selects the handoff class when mobility is enabled.
	HandoffKind mobility.HandoffKind
	// HandoffEveryFrames is the re-estimation period (default 30).
	HandoffEveryFrames int
	// Seed drives the Monte-Carlo handoff estimation.
	Seed int64
	// DiscardTrace skips per-frame trace retention: Result.Trace stays
	// nil while the summary fields still accumulate. Population sweeps
	// set it so memory stays flat no matter how many sessions run.
	DiscardTrace bool
	// Observer, when non-nil, receives every frame record as it
	// completes — the streaming alternative to the retained trace. A
	// non-nil error aborts the session.
	Observer func(FrameRecord) error
}

// FrameRecord is one frame of the session trace.
type FrameRecord struct {
	// Frame is the frame index q (1-based).
	Frame int `json:"frame"`
	// LatencyMs and EnergyMJ are the frame's end-to-end figures.
	LatencyMs float64 `json:"latency_ms"`
	EnergyMJ  float64 `json:"energy_mj"`
	// CPUFreqGHz is the (possibly throttled) operating clock.
	CPUFreqGHz float64 `json:"cpu_ghz"`
	// TempC is the device temperature after the frame.
	TempC float64 `json:"temp_c"`
	// BatterySoC is the state of charge after the frame.
	BatterySoC float64 `json:"battery_soc"`
	// HandoffProb is the current P(HO) estimate.
	HandoffProb float64 `json:"p_handoff"`
	// Throttled reports whether the governor capped the clock this
	// frame.
	Throttled bool `json:"throttled,omitempty"`
}

// Result is the full session outcome: the per-frame records (unless
// discarded) plus the compact summary fields, which are valid either way.
type Result struct {
	// Trace holds one record per completed frame (nil with DiscardTrace).
	Trace []FrameRecord
	// CompletedFrames counts frames before battery depletion.
	CompletedFrames int
	// MeanLatencyMs and TotalEnergyMJ summarize the session.
	MeanLatencyMs float64
	TotalEnergyMJ float64
	// ThrottledFrames counts frames spent throttled.
	ThrottledFrames int
	// Depleted reports whether the battery emptied.
	Depleted bool
	// PeakTempC is the hottest temperature reached.
	PeakTempC float64
	// FinalTempC, FinalCPUFreqGHz, FinalSoC, and FinalHandoffProb are
	// the device state after the last completed frame.
	FinalTempC       float64
	FinalCPUFreqGHz  float64
	FinalSoC         float64
	FinalHandoffProb float64
}

// Run executes the session. Canceling ctx aborts between frames with the
// context's error — which is what lets a sweep backend kill an in-flight
// population shard promptly.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Models.Power == nil {
		return nil, fmt.Errorf("%w: no model bundle (set Models)", ErrConfig)
	}
	if cfg.Scenario == nil {
		return nil, fmt.Errorf("%w: nil scenario", ErrConfig)
	}
	if cfg.Frames <= 0 {
		return nil, fmt.Errorf("%w: %d frames", ErrConfig, cfg.Frames)
	}
	if cfg.Thermal != nil {
		if err := cfg.Thermal.Validate(); err != nil {
			return nil, err
		}
	}
	if err := cfg.Scenario.Validate(); err != nil {
		return nil, err
	}

	sc := *cfg.Scenario
	rng := stats.NewRNG(cfg.Seed)
	hoPeriod := cfg.HandoffEveryFrames
	if hoPeriod <= 0 {
		hoPeriod = 30
	}

	res := &Result{}
	if !cfg.DiscardTrace {
		res.Trace = make([]FrameRecord, 0, cfg.Frames)
	}
	temp := 25.0
	if cfg.Thermal != nil {
		temp = cfg.Thermal.AmbientC
	}
	res.PeakTempC = temp
	baseFreq := sc.CPUFreqGHz
	throttled := false
	pHO := 0.0

	for q := 1; q <= cfg.Frames; q++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Mobility: refresh the handoff probability periodically.
		if cfg.Walk != nil && (q == 1 || q%hoPeriod == 0) {
			horizon := 1000.0 / sc.FPS * float64(hoPeriod)
			p, err := cfg.Walk.HandoffProbability(cfg.Zone, horizon, 300, rng)
			if err != nil {
				return nil, fmt.Errorf("frame %d handoff: %w", q, err)
			}
			pHO = p
			ho, err := mobility.NewHandoffModel(cfg.HandoffKind, p)
			if err != nil {
				return nil, fmt.Errorf("frame %d handoff model: %w", q, err)
			}
			sc.Handoff = &ho
		}

		eb, lb, err := cfg.Models.FrameEnergy(&sc)
		if err != nil {
			return nil, fmt.Errorf("frame %d: %w", q, err)
		}

		// Thermal integration and governor.
		if t := cfg.Thermal; t != nil {
			temp = t.AmbientC + (temp-t.AmbientC)*t.DecayPerFrame +
				eb.Thermal*t.CPerMJ
			switch {
			case temp >= t.ThrottleAtC && sc.CPUFreqGHz > t.MinGHz:
				sc.CPUFreqGHz -= t.StepGHz
				if sc.CPUFreqGHz < t.MinGHz {
					sc.CPUFreqGHz = t.MinGHz
				}
				throttled = true
			case temp <= t.ResumeAtC && sc.CPUFreqGHz < baseFreq:
				sc.CPUFreqGHz += t.StepGHz
				if sc.CPUFreqGHz > baseFreq {
					sc.CPUFreqGHz = baseFreq
				}
				if sc.CPUFreqGHz == baseFreq {
					throttled = false
				}
			}
		}

		soc := 1.0
		if cfg.Battery != nil {
			alive := cfg.Battery.Drain(eb.Total)
			soc = cfg.Battery.SoC()
			if !alive {
				res.Depleted = true
			}
		}

		rec := FrameRecord{
			Frame:       q,
			LatencyMs:   lb.Total,
			EnergyMJ:    eb.Total,
			CPUFreqGHz:  sc.CPUFreqGHz,
			TempC:       temp,
			BatterySoC:  soc,
			HandoffProb: pHO,
			Throttled:   throttled,
		}
		if !cfg.DiscardTrace {
			res.Trace = append(res.Trace, rec)
		}
		if cfg.Observer != nil {
			if err := cfg.Observer(rec); err != nil {
				return nil, fmt.Errorf("frame %d observer: %w", q, err)
			}
		}
		res.CompletedFrames = q
		res.TotalEnergyMJ += eb.Total
		res.MeanLatencyMs += lb.Total
		if throttled {
			res.ThrottledFrames++
		}
		if temp > res.PeakTempC {
			res.PeakTempC = temp
		}
		res.FinalTempC = temp
		res.FinalCPUFreqGHz = sc.CPUFreqGHz
		res.FinalSoC = soc
		res.FinalHandoffProb = pHO
		if res.Depleted {
			break
		}
	}
	if res.CompletedFrames > 0 {
		res.MeanLatencyMs /= float64(res.CompletedFrames)
	}
	return res, nil
}

// TraceTable exports a frame trace as a dataset table (CSV-ready).
func TraceTable(trace []FrameRecord) (*dataset.Table, error) {
	t, err := dataset.New("frame", "latency_ms", "energy_mj", "cpu_ghz",
		"temp_c", "battery_soc", "p_handoff", "throttled")
	if err != nil {
		return nil, err
	}
	for _, rec := range trace {
		throttled := 0.0
		if rec.Throttled {
			throttled = 1
		}
		if err := t.Append(float64(rec.Frame), rec.LatencyMs, rec.EnergyMJ,
			rec.CPUFreqGHz, rec.TempC, rec.BatterySoC, rec.HandoffProb,
			throttled); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// TraceTable exports the result's trace as a dataset table (CSV-ready).
func (r *Result) TraceTable() (*dataset.Table, error) {
	return TraceTable(r.Trace)
}

// BatteryLifeFrames extrapolates how many frames a full battery sustains
// at the session's mean energy per frame.
func (r *Result) BatteryLifeFrames(b Battery) (int, error) {
	if r.CompletedFrames == 0 {
		return 0, fmt.Errorf("%w: empty session", ErrConfig)
	}
	perFrame := r.TotalEnergyMJ / float64(r.CompletedFrames)
	if perFrame <= 0 {
		return 0, fmt.Errorf("%w: non-positive frame energy", ErrConfig)
	}
	return int(b.CapacityMJ / perFrame), nil
}
