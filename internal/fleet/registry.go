package fleet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/testbed"
)

// RegisterProtocolVersion identifies the registration wire protocol: one
// JSON WireRegister frame from the node, one JSON WireRegisterAck frame
// back, then silence until whichever side disconnects. Bump it on any
// incompatible change.
const RegisterProtocolVersion = 1

// WireRegister is the one frame a dial-home node sends the coordinator:
// which address its serve listener answers on, and the same handshake it
// would give a dispatcher, so the coordinator can reject incompatible
// nodes before a sweep ever dials them. Membership is the connection —
// the node stays registered for exactly as long as this connection
// lives.
type WireRegister struct {
	// Proto is the registration protocol version.
	Proto int `json:"proto"`
	// Addr is the node's serve address (host:port) as dispatchers should
	// dial it.
	Addr string `json:"addr"`
	// Node is the node's dispatcher-facing handshake.
	Node testbed.WireHello `json:"node"`
}

// errBadAddr classifies registrations whose serve address is missing or
// not a dialable host:port.
var errBadAddr = errors.New("fleet: bad registration address")

// Check validates a registration frame against this binary.
func (r WireRegister) Check() error {
	if r.Proto != RegisterProtocolVersion {
		return fmt.Errorf("%w: node speaks registration protocol %d, this binary speaks %d",
			testbed.ErrVersionMismatch, r.Proto, RegisterProtocolVersion)
	}
	if r.Addr == "" {
		return fmt.Errorf("%w: registration without a serve address", errBadAddr)
	}
	if _, _, err := net.SplitHostPort(r.Addr); err != nil {
		return fmt.Errorf("%w: %q: %v", errBadAddr, r.Addr, err)
	}
	return r.Node.Check()
}

// ReadRegister reads and validates one registration frame. On a
// validation failure the decoded frame is returned alongside the error,
// so the coordinator can name the node it is rejecting.
func ReadRegister(r io.Reader) (WireRegister, error) {
	var reg WireRegister
	if err := testbed.ReadFrame(r, &reg); err != nil {
		return WireRegister{}, err
	}
	return reg, reg.Check()
}

// WireRegisterAck answers a WireRegister. An empty Err means the node is
// in the fleet; a non-empty Err explains the rejection, and the
// coordinator closes the connection after writing it.
type WireRegisterAck struct {
	Err string `json:"err,omitempty"`
}

// registerTimeout bounds how long the coordinator waits for a dialer's
// registration frame, and how long a node waits for its ack.
const registerTimeout = 10 * time.Second

// Registry is the coordinator side of register mode: it accepts
// dial-home connections on a listener, admits nodes whose registration
// frame checks out, and evicts each node when its connection drops. It
// is a Source — the membership feed is the set of currently connected,
// compatible nodes.
type Registry struct {
	*members
	ln   net.Listener
	logf func(format string, args ...any)

	mu     sync.Mutex
	refs   map[string]int
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewRegistry starts a coordinator on ln; Close stops it.
func NewRegistry(ln net.Listener, logf func(format string, args ...any)) *Registry {
	reg := &Registry{
		members: newMembers(nil),
		ln:      ln,
		logf:    logf,
		refs:    make(map[string]int),
		conns:   make(map[net.Conn]struct{}),
	}
	reg.wg.Add(1)
	go reg.accept()
	return reg
}

// Addr returns the coordinator's listen address.
func (reg *Registry) Addr() string { return reg.ln.Addr().String() }

// Close stops accepting registrations, disconnects every registered
// node, and waits for the handler goroutines to drain.
func (reg *Registry) Close() error {
	err := reg.ln.Close()
	reg.mu.Lock()
	reg.closed = true
	for c := range reg.conns {
		_ = c.Close()
	}
	reg.mu.Unlock()
	reg.wg.Wait()
	return err
}

func (reg *Registry) log(format string, args ...any) {
	if reg.logf != nil {
		reg.logf(format, args...)
	}
}

func (reg *Registry) accept() {
	defer reg.wg.Done()
	for {
		conn, err := reg.ln.Accept()
		if err != nil {
			return // listener closed
		}
		reg.mu.Lock()
		if reg.closed {
			reg.mu.Unlock()
			_ = conn.Close()
			return
		}
		reg.conns[conn] = struct{}{}
		reg.wg.Add(1)
		reg.mu.Unlock()
		go reg.handle(conn)
	}
}

func (reg *Registry) handle(conn net.Conn) {
	defer reg.wg.Done()
	defer func() {
		reg.mu.Lock()
		delete(reg.conns, conn)
		reg.mu.Unlock()
		_ = conn.Close()
	}()
	_ = conn.SetReadDeadline(time.Now().Add(registerTimeout))
	var r WireRegister
	if err := testbed.ReadFrame(conn, &r); err != nil {
		reg.log("fleet: registration from %s unreadable: %v", conn.RemoteAddr(), err)
		return
	}
	if err := r.Check(); err != nil {
		reg.log("fleet: rejecting node %s: %v", r.Addr, err)
		_ = testbed.WriteFrame(conn, WireRegisterAck{Err: err.Error()})
		return
	}
	if err := testbed.WriteFrame(conn, WireRegisterAck{}); err != nil {
		return
	}
	_ = conn.SetReadDeadline(time.Time{})
	reg.add(r.Addr)
	reg.log("node %s joined (%d member(s))", r.Addr, reg.size())
	// Membership is the connection: camp on it until the node goes away.
	// Nothing legitimate arrives after the registration frame, so any
	// read result — bytes, EOF, reset — ends the membership.
	buf := make([]byte, 1)
	for {
		if _, err := conn.Read(buf); err != nil {
			break
		}
	}
	reg.release(r.Addr)
	reg.log("node %s left (%d member(s))", r.Addr, reg.size())
}

// add admits addr, refcounted so a node that re-registers over a second
// connection (e.g. across a restart racing its old TCP teardown) stays a
// single member until its last connection drops. The membership is
// published while reg.mu is held, so concurrent joins and leaves cannot
// apply their snapshots out of order.
func (reg *Registry) add(addr string) {
	reg.mu.Lock()
	reg.refs[addr]++
	reg.set(reg.addrList())
	reg.mu.Unlock()
}

func (reg *Registry) release(addr string) {
	reg.mu.Lock()
	if reg.refs[addr]--; reg.refs[addr] <= 0 {
		delete(reg.refs, addr)
	}
	reg.set(reg.addrList())
	reg.mu.Unlock()
}

// addrList rebuilds the registered addresses in stable (join) order:
// surviving members keep their position, the at-most-one new address an
// add() introduced is appended. Callers hold reg.mu.
func (reg *Registry) addrList() []string {
	cur, _ := reg.Snapshot()
	out := make([]string, 0, len(cur)+1)
	for _, a := range cur { // keep join order for survivors
		if reg.refs[a] > 0 {
			out = append(out, a)
		}
	}
	for a := range reg.refs {
		if !contains(out, a) {
			out = append(out, a)
		}
	}
	return out
}

func contains(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func (reg *Registry) size() int {
	addrs, _ := reg.Snapshot()
	return len(addrs)
}

// registerBackoffMax caps the redial backoff of a node whose coordinator
// is down.
const registerBackoffMax = 15 * time.Second

// RegisterLoop is the node side of register mode: dial the coordinator,
// register addr with the given handshake, and hold the connection open —
// membership lasts as long as the connection. A dropped coordinator is
// redialed with exponential backoff; a rejection (version mismatch) is
// permanent and ends the loop, since redialing cannot fix an
// incompatible binary. The loop returns when ctx is canceled or on
// permanent rejection.
func RegisterLoop(ctx context.Context, coordinator, addr string, hello func() testbed.WireHello, logf func(format string, args ...any)) error {
	log := func(format string, args ...any) {
		if logf != nil {
			logf(format, args...)
		}
	}
	backoff := 250 * time.Millisecond
	for {
		err := registerOnce(ctx, coordinator, addr, hello)
		if err == nil {
			backoff = 250 * time.Millisecond // healthy session ended; coordinator went away cleanly
		}
		var rej *rejectedError
		if errors.As(err, &rej) {
			log("coordinator %s rejected this node permanently: %s", coordinator, rej.reason)
			return err
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if err != nil {
			log("registration with %s failed (%v), retrying in %v", coordinator, err, backoff)
		} else {
			log("coordinator %s disconnected, re-registering in %v", coordinator, backoff)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > registerBackoffMax {
			backoff = registerBackoffMax
		}
	}
}

// rejectedError marks a coordinator's explicit, permanent rejection.
type rejectedError struct{ reason string }

func (e *rejectedError) Error() string { return "fleet: registration rejected: " + e.reason }

func registerOnce(ctx context.Context, coordinator, addr string, hello func() testbed.WireHello) error {
	d := net.Dialer{Timeout: registerTimeout}
	conn, err := d.DialContext(ctx, "tcp", coordinator)
	if err != nil {
		return err
	}
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { _ = conn.Close() })
	defer stop()
	if err := testbed.WriteFrame(conn, WireRegister{
		Proto: RegisterProtocolVersion,
		Addr:  addr,
		Node:  hello(),
	}); err != nil {
		return err
	}
	_ = conn.SetReadDeadline(time.Now().Add(registerTimeout))
	var ack WireRegisterAck
	if err := testbed.ReadFrame(conn, &ack); err != nil {
		return err
	}
	if ack.Err != "" {
		return &rejectedError{reason: ack.Err}
	}
	_ = conn.SetReadDeadline(time.Time{})
	// Registered: hold the membership open until either side goes away.
	buf := make([]byte, 1)
	for {
		if _, err := conn.Read(buf); err != nil {
			if errors.Is(err, io.EOF) || ctx.Err() != nil {
				return nil
			}
			return err
		}
	}
}
