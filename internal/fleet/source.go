package fleet

import (
	"fmt"
	"os"
	"strings"
	"sync"
)

// Source is a live membership feed. Snapshot returns the current member
// addresses alongside a generation number that increases whenever
// membership changes; Changed returns a channel that is closed once
// membership has moved past the given generation (immediately, if it
// already has). A nil Changed result means membership is frozen and the
// caller need not watch.
//
// The sweep dispatcher consumes this through its own structurally
// identical MemberSource interface, so sweep does not import fleet.
type Source interface {
	Snapshot() (addrs []string, gen uint64)
	Changed(gen uint64) <-chan struct{}
}

// members is the shared generation-stamped membership core behind
// FileSource and Registry.
type members struct {
	mu     sync.Mutex
	addrs  []string
	gen    uint64
	change chan struct{}
}

func newMembers(addrs []string) *members {
	m := &members{gen: 1, change: make(chan struct{})}
	m.addrs = dedupe(addrs)
	return m
}

func dedupe(addrs []string) []string {
	out := make([]string, 0, len(addrs))
	seen := make(map[string]bool, len(addrs))
	for _, a := range addrs {
		if a == "" || seen[a] {
			continue
		}
		seen[a] = true
		out = append(out, a)
	}
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// set replaces the membership; if it actually changed, the generation
// bumps and the current change channel is closed to wake watchers.
func (m *members) set(addrs []string) {
	addrs = dedupe(addrs)
	m.mu.Lock()
	if equalStrings(addrs, m.addrs) {
		m.mu.Unlock()
		return
	}
	m.addrs = addrs
	m.gen++
	close(m.change)
	m.change = make(chan struct{})
	m.mu.Unlock()
}

func (m *members) Snapshot() ([]string, uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, len(m.addrs))
	copy(out, m.addrs)
	return out, m.gen
}

var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

func (m *members) Changed(gen uint64) <-chan struct{} {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.gen != gen {
		return closedChan
	}
	return m.change
}

// static is a frozen membership: the inline -nodes fleet.
type static struct {
	addrs []string
}

// Static wraps a fixed address list as a Source whose membership never
// changes.
func Static(addrs ...string) Source {
	return static{addrs: dedupe(addrs)}
}

func (s static) Snapshot() ([]string, uint64) {
	out := make([]string, len(s.addrs))
	copy(out, s.addrs)
	return out, 1
}

func (s static) Changed(uint64) <-chan struct{} { return nil }

// FileSource reads membership from a nodes file: one address per line,
// blank lines and #-comments ignored, commas and whitespace both accepted
// as separators so a single-line "a:1,b:2" file works too. Reload —
// typically driven by WatchSIGHUP — re-reads the file; a read or parse
// failure keeps the previous membership.
type FileSource struct {
	path string
	*members
}

// NewFileSource loads the nodes file now; the initial load must succeed.
func NewFileSource(path string) (*FileSource, error) {
	addrs, err := loadNodesFile(path)
	if err != nil {
		return nil, err
	}
	return &FileSource{path: path, members: newMembers(addrs)}, nil
}

// Path returns the nodes file path backing this source.
func (f *FileSource) Path() string { return f.path }

// Reload re-reads the nodes file and publishes the new membership. On
// error the previous membership is kept and the error returned.
func (f *FileSource) Reload() error {
	addrs, err := loadNodesFile(f.path)
	if err != nil {
		return err
	}
	f.set(addrs)
	return nil
}

func loadNodesFile(path string) ([]string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fleet: nodes file: %w", err)
	}
	addrs, err := ParseNodes(string(raw))
	if err != nil {
		return nil, fmt.Errorf("fleet: nodes file %s: %w", path, err)
	}
	return addrs, nil
}

// ParseNodes parses a nodes-file body: addresses separated by newlines,
// commas, or whitespace, with #-to-end-of-line comments. An empty body
// is legal (an empty fleet the dispatcher waits on), garbage is not.
func ParseNodes(body string) ([]string, error) {
	var addrs []string
	for _, line := range strings.Split(body, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		for _, tok := range strings.FieldsFunc(line, func(r rune) bool {
			return r == ',' || r == ' ' || r == '\t' || r == '\r'
		}) {
			if !strings.Contains(tok, ":") {
				return nil, fmt.Errorf("not a host:port address: %q", tok)
			}
			addrs = append(addrs, tok)
		}
	}
	return dedupe(addrs), nil
}
