package fleet

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/testbed"
)

// frameBytes encodes v as one wire frame for seeding.
func frameBytes(t testing.TB, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := testbed.WriteFrame(&buf, v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzWireRegister feeds the coordinator's registration reader arbitrary
// byte streams: whatever a malicious or confused dialer sends in place
// of a registration frame must surface as a clean frame/version/address
// error, never a panic — the coordinator's listener is the fleet's most
// exposed surface. Accepted registrations must round-trip.
func FuzzWireRegister(f *testing.F) {
	f.Add(frameBytes(f, WireRegister{Proto: RegisterProtocolVersion, Addr: "127.0.0.1:7777", Node: testbed.Hello()}))
	f.Add(frameBytes(f, WireRegister{Proto: RegisterProtocolVersion, Addr: "127.0.0.1:7777", Node: testbed.JSONHello()}))
	f.Add(frameBytes(f, WireRegister{Proto: 99, Addr: "127.0.0.1:7777", Node: testbed.Hello()}))
	f.Add(frameBytes(f, WireRegister{Proto: RegisterProtocolVersion, Addr: "no-port", Node: testbed.Hello()}))
	f.Add(frameBytes(f, WireRegister{Proto: RegisterProtocolVersion})) // no address at all
	f.Add(frameBytes(f, map[string]any{"proto": "one", "addr": 7}))
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // hostile length prefix
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := ReadRegister(bytes.NewReader(data))
		if err == nil {
			if cerr := r.Check(); cerr != nil {
				t.Fatalf("ReadRegister accepted a frame Check rejects: %v", cerr)
			}
			// A valid registration re-encodes and reads back identically.
			r2, err := ReadRegister(bytes.NewReader(frameBytes(t, r)))
			if err != nil {
				t.Fatalf("round trip failed: %v", err)
			}
			if r2 != r {
				t.Fatalf("round trip changed the frame:\n%+v\n%+v", r, r2)
			}
			return
		}
		if errors.Is(err, testbed.ErrFrame) || errors.Is(err, testbed.ErrVersionMismatch) ||
			errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return
		}
		// The only remaining legal class is the address validation error.
		if !errors.Is(err, errBadAddr) {
			t.Fatalf("unexpected error class: %v", err)
		}
	})
}
