package fleet

import (
	"context"
	"errors"
	"net"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/testbed"
)

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string // substring of the error, empty for valid
	}{
		{"inline", Spec{Nodes: []string{"a:1"}}, ""},
		{"file", Spec{NodesFile: "nodes.txt"}, ""},
		{"register", Spec{Register: "127.0.0.1:0"}, ""},
		{"none", Spec{}, "no membership source"},
		{"none with nosteal", Spec{NoSteal: true}, "no membership source"},
		{"two", Spec{Nodes: []string{"a:1"}, NodesFile: "nodes.txt"}, "mutually exclusive"},
		{"three", Spec{Nodes: []string{"a:1"}, NodesFile: "n", Register: "r:1"}, "mutually exclusive"},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error: %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: want error containing %q, got %v", tc.name, tc.want, err)
		}
	}
	if !(Spec{}).Empty() {
		t.Error("zero Spec not Empty")
	}
	if (Spec{NoSteal: true}).Empty() {
		t.Error("NoSteal Spec reported Empty")
	}
}

func TestParseNodes(t *testing.T) {
	addrs, err := ParseNodes("a:1\nb:2, c:3\t d:4\n# comment\ne:5 # trailing\n\na:1\n")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a:1", "b:2", "c:3", "d:4", "e:5"}
	if !equalStrings(addrs, want) {
		t.Fatalf("ParseNodes = %v, want %v", addrs, want)
	}
	if _, err := ParseNodes("not-an-address"); err == nil {
		t.Fatal("garbage token accepted")
	}
	if addrs, err := ParseNodes("# only a comment\n"); err != nil || len(addrs) != 0 {
		t.Fatalf("comment-only body: addrs=%v err=%v", addrs, err)
	}
}

func TestStaticSource(t *testing.T) {
	s := Static("a:1", "b:2", "a:1")
	addrs, gen := s.Snapshot()
	if !equalStrings(addrs, []string{"a:1", "b:2"}) || gen != 1 {
		t.Fatalf("Snapshot = %v gen %d", addrs, gen)
	}
	if s.Changed(gen) != nil {
		t.Fatal("static source claims it can change")
	}
}

func TestMembersGenerationAndChanged(t *testing.T) {
	m := newMembers([]string{"a:1"})
	_, gen := m.Snapshot()
	ch := m.Changed(gen)
	select {
	case <-ch:
		t.Fatal("change channel fired without a change")
	default:
	}
	m.set([]string{"a:1"}) // no-op: same membership
	if _, g2 := m.Snapshot(); g2 != gen {
		t.Fatalf("no-op set bumped generation %d -> %d", gen, g2)
	}
	m.set([]string{"a:1", "b:2"})
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("change channel did not fire")
	}
	addrs, g3 := m.Snapshot()
	if g3 != gen+1 || !equalStrings(addrs, []string{"a:1", "b:2"}) {
		t.Fatalf("after set: %v gen %d", addrs, g3)
	}
	// A stale generation gets an already-closed channel back.
	select {
	case <-m.Changed(gen):
	default:
		t.Fatal("stale generation did not get a closed channel")
	}
}

func TestFileSourceReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nodes.txt")
	if err := os.WriteFile(path, []byte("a:1\nb:2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, err := NewFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	addrs, gen := fs.Snapshot()
	if !equalStrings(addrs, []string{"a:1", "b:2"}) {
		t.Fatalf("initial load: %v", addrs)
	}
	if err := os.WriteFile(path, []byte("a:1\nb:2\nc:3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Reload(); err != nil {
		t.Fatal(err)
	}
	addrs, gen2 := fs.Snapshot()
	if gen2 <= gen || !equalStrings(addrs, []string{"a:1", "b:2", "c:3"}) {
		t.Fatalf("after reload: %v gen %d", addrs, gen2)
	}
	// A broken file keeps the previous membership in force.
	if err := os.WriteFile(path, []byte("garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Reload(); err == nil {
		t.Fatal("garbage file reloaded without error")
	}
	addrs, gen3 := fs.Snapshot()
	if gen3 != gen2 || !equalStrings(addrs, []string{"a:1", "b:2", "c:3"}) {
		t.Fatalf("failed reload changed membership: %v gen %d", addrs, gen3)
	}
	if _, err := NewFileSource(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatal("missing nodes file accepted")
	}
}

func TestWatchSIGHUPReloads(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nodes.txt")
	if err := os.WriteFile(path, []byte("a:1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, err := NewFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	stop := WatchSIGHUP(fs, t.Logf)
	defer stop()
	_, gen := fs.Snapshot()
	ch := fs.Changed(gen)
	if err := os.WriteFile(path, []byte("a:1\nb:2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("SIGHUP did not reload membership")
	}
	addrs, _ := fs.Snapshot()
	if !equalStrings(addrs, []string{"a:1", "b:2"}) {
		t.Fatalf("after SIGHUP: %v", addrs)
	}
}

// waitForMembers polls src until its membership equals want.
func waitForMembers(t *testing.T, src Source, want []string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		addrs, gen := src.Snapshot()
		if equalStrings(addrs, want) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("membership %v never became %v", addrs, want)
		}
		select {
		case <-src.Changed(gen):
		case <-time.After(50 * time.Millisecond):
		}
	}
}

func TestRegistryJoinAndLeave(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(ln, t.Logf)
	defer reg.Close()

	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	done1 := make(chan error, 1)
	go func() {
		done1 <- RegisterLoop(ctx1, reg.Addr(), "127.0.0.1:7001", testbed.Hello, t.Logf)
	}()
	waitForMembers(t, reg, []string{"127.0.0.1:7001"})

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	go func() { _ = RegisterLoop(ctx2, reg.Addr(), "127.0.0.1:7002", testbed.Hello, t.Logf) }()
	waitForMembers(t, reg, []string{"127.0.0.1:7001", "127.0.0.1:7002"})

	// A node leaves when its connection drops.
	cancel1()
	if err := <-done1; !errors.Is(err, context.Canceled) {
		t.Fatalf("RegisterLoop returned %v, want context.Canceled", err)
	}
	waitForMembers(t, reg, []string{"127.0.0.1:7002"})
}

func TestRegistryRejectsVersionMismatch(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(ln, t.Logf)
	defer reg.Close()

	badHello := func() testbed.WireHello {
		h := testbed.Hello()
		h.Physics++ // a node built from different physics must never join
		return h
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err = RegisterLoop(ctx, reg.Addr(), "127.0.0.1:7003", badHello, t.Logf)
	var rej *rejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("RegisterLoop returned %v, want permanent rejection", err)
	}
	if addrs, _ := reg.Snapshot(); len(addrs) != 0 {
		t.Fatalf("rejected node appears in membership: %v", addrs)
	}
}

func TestRegisterChecks(t *testing.T) {
	ok := WireRegister{Proto: RegisterProtocolVersion, Addr: "127.0.0.1:7000", Node: testbed.Hello()}
	if err := ok.Check(); err != nil {
		t.Fatal(err)
	}
	bad := ok
	bad.Proto++
	if err := bad.Check(); !errors.Is(err, testbed.ErrVersionMismatch) {
		t.Fatalf("wrong registration protocol: %v", err)
	}
	bad = ok
	bad.Addr = ""
	if err := bad.Check(); err == nil {
		t.Fatal("empty address accepted")
	}
	bad = ok
	bad.Addr = "no-port"
	if err := bad.Check(); err == nil {
		t.Fatal("portless address accepted")
	}
	bad = ok
	bad.Node.Protocol++
	if err := bad.Check(); !errors.Is(err, testbed.ErrVersionMismatch) {
		t.Fatalf("wrong node protocol: %v", err)
	}
}

func TestSpecOpenStatic(t *testing.T) {
	src, cleanup, err := Spec{Nodes: []string{"a:1", "b:2"}}.Open(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	addrs, _ := src.Snapshot()
	if !equalStrings(addrs, []string{"a:1", "b:2"}) {
		t.Fatalf("Open static: %v", addrs)
	}
	if _, _, err := (Spec{}).Open(nil); err == nil {
		t.Fatal("empty spec opened")
	}
}

func TestSpecOpenRegister(t *testing.T) {
	src, cleanup, err := Spec{Register: "127.0.0.1:0"}.Open(t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	reg, ok := src.(*Registry)
	if !ok {
		t.Fatalf("Open register returned %T", src)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = RegisterLoop(ctx, reg.Addr(), "127.0.0.1:7010", testbed.Hello, t.Logf) }()
	waitForMembers(t, src, []string{"127.0.0.1:7010"})
}
