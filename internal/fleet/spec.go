// Package fleet describes the membership of a net-backend worker fleet
// as plain serializable data, and turns that description into a live
// membership feed the dispatcher can follow while a sweep is running.
//
// Three membership sources cover the operational spectrum:
//
//   - An inline node list (Spec.Nodes) — the static fleet the net
//     backend has always taken via -nodes, now one field of a spec that
//     travels in job documents.
//   - A nodes file (Spec.NodesFile) — one address per line, reloaded on
//     SIGHUP, so an operator can grow or shrink a long-running fleet by
//     editing a file and signaling the dispatcher.
//   - A registration coordinator (Spec.Register) — the dispatcher
//     listens, and `xrperf serve -register coordinator:port` nodes dial
//     home, registering themselves for as long as their connection
//     lives. A node that disconnects is deregistered automatically.
//
// All three present the same Source interface: a generation-stamped
// snapshot plus a broadcast channel that closes when membership moves
// past a generation. NetRunner polls the snapshot at dispatch time and
// watches the channel mid-run, so joiners are admitted while a sweep is
// in flight and leavers drain cleanly. Which node measures what never
// affects output — measurements are pure functions of (request, seed) —
// so an elastic fleet produces the same bytes as a frozen one.
package fleet

import (
	"fmt"
	"net"
)

// Spec is the serializable fleet description carried by job documents
// (job.Spec.Fleet) and assembled from the CLI's fleet flags. Exactly one
// membership source — Nodes, NodesFile, or Register — describes where
// the workers come from; the remaining fields tune dispatch.
type Spec struct {
	// Nodes lists serve-node addresses (host:port) inline: the static
	// fleet.
	Nodes []string `json:"nodes,omitempty"`
	// NodesFile names a file of serve-node addresses (one per line, #
	// comments), reloaded on SIGHUP.
	NodesFile string `json:"nodes_file,omitempty"`
	// Register is a listen address (host:port) for the registration
	// coordinator: `xrperf serve -register` nodes dial it to join the
	// fleet and leave it by disconnecting.
	Register string `json:"register,omitempty"`
	// NoSteal disables work stealing, restoring uniform dealing: a batch
	// committed to a slow node stays there. Stealing never changes
	// output bytes, only completion time.
	NoSteal bool `json:"no_steal,omitempty"`
}

// Empty reports whether the spec configures nothing at all.
func (s Spec) Empty() bool {
	return len(s.Nodes) == 0 && s.NodesFile == "" && s.Register == "" && !s.NoSteal
}

// SourceCount counts the configured membership sources; a usable spec
// has exactly one.
func (s Spec) SourceCount() int {
	n := 0
	if len(s.Nodes) > 0 {
		n++
	}
	if s.NodesFile != "" {
		n++
	}
	if s.Register != "" {
		n++
	}
	return n
}

// Validate checks that the spec describes exactly one membership source.
func (s Spec) Validate() error {
	switch n := s.SourceCount(); {
	case n == 0:
		return fmt.Errorf("fleet: no membership source: set nodes, nodes_file, or register")
	case n > 1:
		return fmt.Errorf("fleet: membership sources are mutually exclusive: set one of nodes, nodes_file, or register")
	}
	return nil
}

// Open turns the spec into a live membership source. For NodesFile the
// file is loaded now and a SIGHUP handler re-reads it until cleanup; for
// Register the coordinator starts listening now and cleanup shuts it
// down. logf (optional) receives operational events — registrations,
// reload failures — never data-path output.
func (s Spec) Open(logf func(format string, args ...any)) (src Source, cleanup func(), err error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	switch {
	case len(s.Nodes) > 0:
		return Static(s.Nodes...), func() {}, nil
	case s.NodesFile != "":
		fs, err := NewFileSource(s.NodesFile)
		if err != nil {
			return nil, nil, err
		}
		stop := WatchSIGHUP(fs, logf)
		return fs, stop, nil
	default:
		ln, err := net.Listen("tcp", s.Register)
		if err != nil {
			return nil, nil, fmt.Errorf("fleet: coordinator listen: %w", err)
		}
		reg := NewRegistry(ln, logf)
		return reg, func() { _ = reg.Close() }, nil
	}
}
