package fleet

import (
	"os"
	"os/signal"
	"syscall"
)

// Reloader is anything whose membership can be re-read in place;
// FileSource is the one that ships.
type Reloader interface {
	Reload() error
}

// WatchSIGHUP reloads r each time the process receives SIGHUP, until the
// returned stop function is called. Reload failures are reported through
// logf (if non-nil) and the previous membership stays in force — an
// operator who fat-fingers the nodes file loses nothing.
func WatchSIGHUP(r Reloader, logf func(format string, args ...any)) (stop func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGHUP)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			case <-ch:
				if err := r.Reload(); err != nil {
					if logf != nil {
						logf("SIGHUP reload failed, keeping previous membership: %v", err)
					}
				} else if logf != nil {
					logf("membership reloaded on SIGHUP")
				}
			}
		}
	}()
	return func() {
		signal.Stop(ch)
		close(done)
	}
}
