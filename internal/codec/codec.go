// Package codec models the H.264 frame encoding and decoding segments of
// the XR pipeline. Encoding latency depends on too many configuration
// parameters for a direct analytical form, so the paper fits a multiple
// linear regression (Eq. 10) over the I-frame interval, B-frame interval,
// bitrate, frame size, frame rate, and quantization value. Decoding is
// modeled via the empirical discount rate γ ≈ 1/3 relative to encoding on
// the same hardware (Eq. 14).
package codec

import (
	"errors"
	"fmt"
)

// Common errors.
var (
	// ErrParams indicates invalid encoding parameters.
	ErrParams = errors.New("codec: invalid encoding parameters")
	// ErrResource indicates a non-positive computation resource.
	ErrResource = errors.New("codec: computation resource must be positive")
)

// DefaultDecodeDiscount is γ: through the paper's experiments, decoding
// takes about one third of the encoding delay on the same device.
const DefaultDecodeDiscount = 1.0 / 3.0

// EncodingParams is the H.264 configuration tuple of Eq. (10).
type EncodingParams struct {
	// IFrameInterval is n_i, the period of I-frames in frames.
	IFrameInterval float64
	// BFrameInterval is n_b, the number of consecutive B-frames.
	BFrameInterval float64
	// BitrateMbps is n_bitrate in Mbps.
	BitrateMbps float64
	// FrameSizePx2 is s_f1, the frame size in pixel² units (the paper's
	// Fig. 4 sweeps 300–700).
	FrameSizePx2 float64
	// FPS is n_fps, frames per second.
	FPS float64
	// Quantization is n_quant, the quantization parameter (0–51 for
	// H.264).
	Quantization float64
}

// Validate checks the parameter ranges.
func (p EncodingParams) Validate() error {
	switch {
	case p.IFrameInterval < 1:
		return fmt.Errorf("%w: I-frame interval %v", ErrParams, p.IFrameInterval)
	case p.BFrameInterval < 0:
		return fmt.Errorf("%w: B-frame interval %v", ErrParams, p.BFrameInterval)
	case p.BitrateMbps <= 0:
		return fmt.Errorf("%w: bitrate %v Mbps", ErrParams, p.BitrateMbps)
	case p.FrameSizePx2 <= 0:
		return fmt.Errorf("%w: frame size %v px²", ErrParams, p.FrameSizePx2)
	case p.FPS <= 0:
		return fmt.Errorf("%w: fps %v", ErrParams, p.FPS)
	case p.Quantization < 0 || p.Quantization > 51:
		return fmt.Errorf("%w: quantization %v", ErrParams, p.Quantization)
	}
	return nil
}

// DefaultParams returns a typical edge-AR H.264 configuration: I-frame
// every 30 frames, 2 B-frames, 5 Mbps, 30 fps, QP 28.
func DefaultParams(frameSizePx2 float64) EncodingParams {
	return EncodingParams{
		IFrameInterval: 30,
		BFrameInterval: 2,
		BitrateMbps:    5,
		FrameSizePx2:   frameSizePx2,
		FPS:            30,
		Quantization:   28,
	}
}

// EncoderCoeffs holds the regression coefficients of Eq. (10): the encoder
// work term is
//
//	K0 + Ki·n_i + Kb·n_b + Kbit·n_bitrate + Ks·s_f1 + Kfps·n_fps + Kq·n_quant
//
// which is then divided by the allocated computation resource.
type EncoderCoeffs struct {
	K0, Ki, Kb, Kbit, Ks, Kfps, Kq float64
}

// EncoderModel is the encoding-latency model of Eq. (10).
type EncoderModel struct {
	// Coeffs are the fitted regression coefficients.
	Coeffs EncoderCoeffs
	// R2 records the fit quality (0 when unknown).
	R2 float64
	// DecodeDiscount is γ of Eq. (14).
	DecodeDiscount float64
	// MinWork floors the regression's work output so extrapolation
	// outside the training range cannot go non-physical.
	MinWork float64
}

// PaperEncoderModel returns Eq. (10) with the published coefficients
// (R² = 0.79):
//
//	(−574.36 − 7.71n_i + 142.61n_b + 53.38n_bitrate + 1.43s_f1
//	 + 163.65n_fps + 3.62n_quant)/c_client + δ_f1/m_client
func PaperEncoderModel() EncoderModel {
	return EncoderModel{
		Coeffs: EncoderCoeffs{
			K0: -574.36, Ki: -7.71, Kb: 142.61, Kbit: 53.38,
			Ks: 1.43, Kfps: 163.65, Kq: 3.62,
		},
		R2:             0.79,
		DecodeDiscount: DefaultDecodeDiscount,
		MinWork:        1,
	}
}

// Work returns the resource-normalized encoder work (the numerator of
// Eq. 10) for the given parameters.
func (m EncoderModel) Work(p EncodingParams) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	k := m.Coeffs
	w := k.K0 + k.Ki*p.IFrameInterval + k.Kb*p.BFrameInterval +
		k.Kbit*p.BitrateMbps + k.Ks*p.FrameSizePx2 +
		k.Kfps*p.FPS + k.Kq*p.Quantization
	if w < m.MinWork {
		w = m.MinWork
	}
	return w, nil
}

// EncodeLatencyMs returns the encoding latency of Eq. (10): work divided
// by the allocated computation resource plus the input-buffer read term
// δ_f1/m_client (frameDataMB over memBandwidthGBs; 1 GB/s = 1 MB/ms).
func (m EncoderModel) EncodeLatencyMs(p EncodingParams, resource, frameDataMB, memBandwidthGBs float64) (float64, error) {
	if resource <= 0 {
		return 0, fmt.Errorf("%w: %v", ErrResource, resource)
	}
	if frameDataMB < 0 {
		return 0, fmt.Errorf("%w: frame data %v MB", ErrParams, frameDataMB)
	}
	if memBandwidthGBs <= 0 {
		return 0, fmt.Errorf("%w: memory bandwidth %v GB/s", ErrParams, memBandwidthGBs)
	}
	w, err := m.Work(p)
	if err != nil {
		return 0, err
	}
	return w/resource + frameDataMB/memBandwidthGBs, nil
}

// DecodeLatencyMs returns the decoding latency of Eq. (14):
// L_dec = L_en·c_client·γ / c_ε — the encoder latency rescaled onto the
// decoder's resource with the empirical discount γ.
func (m EncoderModel) DecodeLatencyMs(encodeLatencyMs, encoderResource, decoderResource float64) (float64, error) {
	if encodeLatencyMs < 0 {
		return 0, fmt.Errorf("%w: encode latency %v ms", ErrParams, encodeLatencyMs)
	}
	if encoderResource <= 0 || decoderResource <= 0 {
		return 0, fmt.Errorf("%w: encoder %v, decoder %v", ErrResource, encoderResource, decoderResource)
	}
	gamma := m.DecodeDiscount
	if gamma <= 0 {
		gamma = DefaultDecodeDiscount
	}
	return encodeLatencyMs * encoderResource * gamma / decoderResource, nil
}

// CompressedSizeMB estimates the encoded frame payload δ_f3 from the
// bitrate and frame rate: one frame carries bitrate/fps worth of bits.
func CompressedSizeMB(p EncodingParams) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	bitsPerFrame := p.BitrateMbps * 1e6 / p.FPS
	return bitsPerFrame / 8 / 1e6, nil
}
