package codec

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestEncodingParamsValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*EncodingParams)
		ok     bool
	}{
		{name: "defaults valid", mutate: func(*EncodingParams) {}, ok: true},
		{name: "zero iframe", mutate: func(p *EncodingParams) { p.IFrameInterval = 0 }},
		{name: "negative bframe", mutate: func(p *EncodingParams) { p.BFrameInterval = -1 }},
		{name: "zero bitrate", mutate: func(p *EncodingParams) { p.BitrateMbps = 0 }},
		{name: "zero frame size", mutate: func(p *EncodingParams) { p.FrameSizePx2 = 0 }},
		{name: "zero fps", mutate: func(p *EncodingParams) { p.FPS = 0 }},
		{name: "quantization over 51", mutate: func(p *EncodingParams) { p.Quantization = 52 }},
		{name: "negative quantization", mutate: func(p *EncodingParams) { p.Quantization = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := DefaultParams(500)
			tt.mutate(&p)
			err := p.Validate()
			if tt.ok && err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if !tt.ok && !errors.Is(err, ErrParams) {
				t.Fatalf("Validate error = %v, want ErrParams", err)
			}
		})
	}
}

func TestPaperEncoderWork(t *testing.T) {
	m := PaperEncoderModel()
	p := DefaultParams(500)
	w, err := m.Work(p)
	if err != nil {
		t.Fatal(err)
	}
	want := -574.36 - 7.71*30 + 142.61*2 + 53.38*5 + 1.43*500 + 163.65*30 + 3.62*28
	if math.Abs(w-want) > 1e-9 {
		t.Fatalf("work = %v, want %v", w, want)
	}
	if m.R2 != 0.79 {
		t.Fatalf("paper R² = %v, want 0.79", m.R2)
	}
}

func TestEncoderWorkFloor(t *testing.T) {
	m := PaperEncoderModel()
	// Tiny frame at 1 fps pushes the regression negative; it must floor.
	p := EncodingParams{IFrameInterval: 120, BFrameInterval: 0, BitrateMbps: 0.1,
		FrameSizePx2: 1, FPS: 1, Quantization: 0}
	w, err := m.Work(p)
	if err != nil {
		t.Fatal(err)
	}
	if w != m.MinWork {
		t.Fatalf("floored work = %v, want %v", w, m.MinWork)
	}
}

func TestEncodeLatency(t *testing.T) {
	m := PaperEncoderModel()
	p := DefaultParams(500)
	got, err := m.EncodeLatencyMs(p, 13.56, 0.5, 34.1)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := m.Work(p)
	want := w/13.56 + 0.5/34.1
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("encode latency = %v, want %v", got, want)
	}
	if _, err := m.EncodeLatencyMs(p, 0, 0.5, 34.1); !errors.Is(err, ErrResource) {
		t.Fatal("zero resource must error")
	}
	if _, err := m.EncodeLatencyMs(p, 10, -1, 34.1); !errors.Is(err, ErrParams) {
		t.Fatal("negative payload must error")
	}
	if _, err := m.EncodeLatencyMs(p, 10, 0.5, 0); !errors.Is(err, ErrParams) {
		t.Fatal("zero memory bandwidth must error")
	}
}

func TestDecodeLatencyDiscount(t *testing.T) {
	m := PaperEncoderModel()
	// Same device: decode = γ·encode ≈ encode/3 (Eq. 14 with c_ε =
	// c_client).
	got, err := m.DecodeLatencyMs(300, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-100) > 1e-9 {
		t.Fatalf("same-device decode = %v, want 100", got)
	}
	// Edge decodes faster in proportion to its resource.
	edge, err := m.DecodeLatencyMs(300, 10, 117.6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(edge-100*10/117.6) > 1e-9 {
		t.Fatalf("edge decode = %v", edge)
	}
	if _, err := m.DecodeLatencyMs(-1, 10, 10); !errors.Is(err, ErrParams) {
		t.Fatal("negative encode latency must error")
	}
	if _, err := m.DecodeLatencyMs(10, 0, 10); !errors.Is(err, ErrResource) {
		t.Fatal("zero encoder resource must error")
	}
}

func TestDecodeDiscountDefault(t *testing.T) {
	m := EncoderModel{Coeffs: PaperEncoderModel().Coeffs}
	// Zero DecodeDiscount falls back to the default γ = 1/3.
	got, err := m.DecodeLatencyMs(300, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-100) > 1e-9 {
		t.Fatalf("default-γ decode = %v, want 100", got)
	}
}

func TestCompressedSize(t *testing.T) {
	p := DefaultParams(500) // 5 Mbps at 30 fps
	got, err := CompressedSizeMB(p)
	if err != nil {
		t.Fatal(err)
	}
	want := 5e6 / 30 / 8 / 1e6 // ≈ 0.0208 MB
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("compressed size = %v MB, want %v", got, want)
	}
	bad := p
	bad.FPS = 0
	if _, err := CompressedSizeMB(bad); !errors.Is(err, ErrParams) {
		t.Fatal("invalid params must error")
	}
}

// Property: encode latency decreases as computation resource grows and
// increases with frame size.
func TestEncodeLatencyMonotonic(t *testing.T) {
	m := PaperEncoderModel()
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		size := 300 + 400*rng.Float64()
		p := DefaultParams(size)
		r1 := 5 + 20*rng.Float64()
		r2 := r1 + 1 + 10*rng.Float64()
		a, err1 := m.EncodeLatencyMs(p, r1, 0.5, 30)
		b, err2 := m.EncodeLatencyMs(p, r2, 0.5, 30)
		if err1 != nil || err2 != nil {
			return false
		}
		if b >= a {
			return false
		}
		bigger := DefaultParams(size + 100)
		c, err := m.EncodeLatencyMs(bigger, r1, 0.5, 30)
		if err != nil {
			return false
		}
		return c > a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: decode latency is always γ·encode·(c_enc/c_dec) and positive.
func TestDecodeLatencyScaling(t *testing.T) {
	m := PaperEncoderModel()
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		enc := 10 + 500*rng.Float64()
		cEnc := 5 + 20*rng.Float64()
		cDec := 5 + 200*rng.Float64()
		got, err := m.DecodeLatencyMs(enc, cEnc, cDec)
		if err != nil {
			return false
		}
		want := enc * cEnc * m.DecodeDiscount / cDec
		return got > 0 && math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
