package mat

import (
	"fmt"
	"math"
)

// QR holds a Householder QR decomposition of an m×n matrix with m >= n.
// A = Q·R where Q is m×m orthogonal (stored implicitly as Householder
// reflectors) and R is n×n upper triangular.
type QR struct {
	// qr stores R in its upper triangle and the Householder vectors below
	// the diagonal.
	qr    *Dense
	rdiag []float64
}

// DecomposeQR computes the Householder QR decomposition of a. The input is
// not modified. It returns ErrShape when a has fewer rows than columns.
func DecomposeQR(a *Dense) (*QR, error) {
	m, n := a.Rows(), a.Cols()
	if m < n {
		return nil, fmt.Errorf("%w: QR needs rows >= cols, have %dx%d", ErrShape, m, n)
	}
	qr := a.Clone()
	rdiag := make([]float64, n)

	for k := 0; k < n; k++ {
		// Compute the 2-norm of the k-th column below the diagonal.
		var nrm float64
		for i := k; i < m; i++ {
			nrm = hypot(nrm, qr.At(i, k))
		}
		if nrm == 0 {
			rdiag[k] = 0
			continue
		}
		if qr.At(k, k) < 0 {
			nrm = -nrm
		}
		for i := k; i < m; i++ {
			qr.Set(i, k, qr.At(i, k)/nrm)
		}
		qr.Set(k, k, qr.At(k, k)+1)

		// Apply the reflector to the remaining columns.
		for j := k + 1; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += qr.At(i, k) * qr.At(i, j)
			}
			s = -s / qr.At(k, k)
			for i := k; i < m; i++ {
				qr.Set(i, j, qr.At(i, j)+s*qr.At(i, k))
			}
		}
		rdiag[k] = -nrm
	}
	return &QR{qr: qr, rdiag: rdiag}, nil
}

// hypot is math.Hypot without the special-case overhead for NaN propagation
// differences; it exists so the decomposition reads like the reference
// algorithm.
func hypot(a, b float64) float64 { return math.Hypot(a, b) }

// IsFullRank reports whether R has no zero (to working precision) diagonal
// entries, i.e. whether the original matrix has full column rank.
func (d *QR) IsFullRank() bool {
	for _, r := range d.rdiag {
		if math.Abs(r) < 1e-12 {
			return false
		}
	}
	return true
}

// Solve finds the least-squares solution x minimizing ‖A·x − b‖₂.
// It returns ErrSingular when A is rank-deficient.
func (d *QR) Solve(b []float64) ([]float64, error) {
	m, n := d.qr.Rows(), d.qr.Cols()
	if len(b) != m {
		return nil, fmt.Errorf("%w: rhs length %d, want %d", ErrShape, len(b), m)
	}
	if !d.IsFullRank() {
		return nil, ErrSingular
	}

	// y = Qᵀ·b, applied reflector by reflector.
	y := make([]float64, m)
	copy(y, b)
	for k := 0; k < n; k++ {
		if d.qr.At(k, k) == 0 {
			continue
		}
		var s float64
		for i := k; i < m; i++ {
			s += d.qr.At(i, k) * y[i]
		}
		s = -s / d.qr.At(k, k)
		for i := k; i < m; i++ {
			y[i] += s * d.qr.At(i, k)
		}
	}

	// Back-substitution with R.
	x := make([]float64, n)
	for k := n - 1; k >= 0; k-- {
		s := y[k]
		for j := k + 1; j < n; j++ {
			s -= d.qr.At(k, j) * x[j]
		}
		x[k] = s / d.rdiag[k]
	}
	return x, nil
}

// RDiag returns a copy of the diagonal of R; its magnitudes are a cheap
// conditioning diagnostic (ratio max/min approximates the condition number
// growth of the normal equations).
func (d *QR) RDiag() []float64 {
	out := make([]float64, len(d.rdiag))
	copy(out, d.rdiag)
	return out
}

// ConditionEstimate returns |r_max| / |r_min| over the diagonal of R, or
// +Inf for a rank-deficient matrix. It is a coarse (lower-bound) estimate
// of the 2-norm condition number, sufficient to flag ill-posed fits.
func (d *QR) ConditionEstimate() float64 {
	min, max := math.Inf(1), 0.0
	for _, r := range d.rdiag {
		a := math.Abs(r)
		if a < min {
			min = a
		}
		if a > max {
			max = a
		}
	}
	if min < 1e-12 {
		return math.Inf(1)
	}
	return max / min
}

// InverseGramDiagonal returns diag((AᵀA)⁻¹) computed stably from R:
// (AᵀA)⁻¹ = R⁻¹R⁻ᵀ, whose i-th diagonal entry is ‖R⁻ᵀeᵢ‖², obtained by a
// forward substitution with Rᵀ per column. These diagonals scale the OLS
// coefficient variances: Var(βᵢ) = σ²·diagᵢ.
func (d *QR) InverseGramDiagonal() ([]float64, error) {
	if !d.IsFullRank() {
		return nil, ErrSingular
	}
	n := d.qr.Cols()
	out := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		// Solve Rᵀy = eᵢ by forward substitution. Rᵀ is lower
		// triangular with diagonal rdiag and off-diagonals taken from
		// R's upper triangle.
		for k := 0; k < n; k++ {
			rhs := 0.0
			if k == i {
				rhs = 1
			}
			s := rhs
			for j := 0; j < k; j++ {
				// (Rᵀ)_{kj} = R_{jk}, stored in qr's upper triangle.
				s -= d.qr.At(j, k) * y[j]
			}
			y[k] = s / d.rdiag[k]
		}
		var sq float64
		for _, v := range y {
			sq += v * v
		}
		out[i] = sq
	}
	return out, nil
}

// SolveLeastSquares is a convenience wrapper: decompose a and solve for b in
// one call.
func SolveLeastSquares(a *Dense, b []float64) ([]float64, error) {
	d, err := DecomposeQR(a)
	if err != nil {
		return nil, fmt.Errorf("decompose: %w", err)
	}
	x, err := d.Solve(b)
	if err != nil {
		return nil, fmt.Errorf("solve: %w", err)
	}
	return x, nil
}
