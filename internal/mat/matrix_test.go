package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

func TestNewDenseData(t *testing.T) {
	tests := []struct {
		name    string
		r, c    int
		data    []float64
		wantErr error
	}{
		{name: "valid 2x2", r: 2, c: 2, data: []float64{1, 2, 3, 4}},
		{name: "valid 1x3", r: 1, c: 3, data: []float64{1, 2, 3}},
		{name: "wrong length", r: 2, c: 2, data: []float64{1, 2, 3}, wantErr: ErrShape},
		{name: "zero rows", r: 0, c: 2, data: nil, wantErr: ErrShape},
		{name: "negative cols", r: 2, c: -1, data: nil, wantErr: ErrShape},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m, err := NewDenseData(tt.r, tt.c, tt.data)
			if tt.wantErr != nil {
				if !errors.Is(err, tt.wantErr) {
					t.Fatalf("NewDenseData error = %v, want %v", err, tt.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("NewDenseData: %v", err)
			}
			if m.Rows() != tt.r || m.Cols() != tt.c {
				t.Fatalf("dims = %dx%d, want %dx%d", m.Rows(), m.Cols(), tt.r, tt.c)
			}
			for i := 0; i < tt.r; i++ {
				for j := 0; j < tt.c; j++ {
					if got := m.At(i, j); got != tt.data[i*tt.c+j] {
						t.Errorf("At(%d,%d) = %v, want %v", i, j, got, tt.data[i*tt.c+j])
					}
				}
			}
		})
	}
}

func TestNewDenseDataCopies(t *testing.T) {
	data := []float64{1, 2, 3, 4}
	m, err := NewDenseData(2, 2, data)
	if err != nil {
		t.Fatal(err)
	}
	data[0] = 99
	if m.At(0, 0) != 1 {
		t.Fatal("NewDenseData must copy its input")
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1.0
			}
			if got := id.At(i, j); got != want {
				t.Errorf("I(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestMul(t *testing.T) {
	a, _ := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b, _ := NewDenseData(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got, err := Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{58, 64, 139, 154}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if got.At(i, j) != want[i*2+j] {
				t.Errorf("(%d,%d) = %v, want %v", i, j, got.At(i, j), want[i*2+j])
			}
		}
	}
}

func TestMulShapeError(t *testing.T) {
	a := NewDense(2, 3)
	b := NewDense(2, 3)
	if _, err := Mul(a, b); !errors.Is(err, ErrShape) {
		t.Fatalf("Mul error = %v, want ErrShape", err)
	}
}

func TestMulIdentity(t *testing.T) {
	a, _ := NewDenseData(3, 3, []float64{2, -1, 0, 3, 5, 7, 1, 1, 1})
	got, err := Mul(a, Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if got.At(i, j) != a.At(i, j) {
				t.Fatalf("A·I != A at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	a, _ := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	got, err := a.MulVec([]float64{1, 0, -1})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != -2 || got[1] != -2 {
		t.Fatalf("MulVec = %v, want [-2 -2]", got)
	}
	if _, err := a.MulVec([]float64{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("MulVec short vec error = %v, want ErrShape", err)
	}
}

func TestAddSub(t *testing.T) {
	a, _ := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	b, _ := NewDenseData(2, 2, []float64{4, 3, 2, 1})
	sum, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := Sub(sum, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if sum.At(i, j) != 5 {
				t.Errorf("sum(%d,%d) = %v, want 5", i, j, sum.At(i, j))
			}
			if diff.At(i, j) != a.At(i, j) {
				t.Errorf("(a+b)-b != a at (%d,%d)", i, j)
			}
		}
	}
	if _, err := Add(a, NewDense(3, 3)); !errors.Is(err, ErrShape) {
		t.Fatal("Add shape mismatch must error")
	}
	if _, err := Sub(a, NewDense(3, 3)); !errors.Is(err, ErrShape) {
		t.Fatal("Sub shape mismatch must error")
	}
}

func TestTranspose(t *testing.T) {
	a, _ := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	at := a.T()
	if at.Rows() != 3 || at.Cols() != 2 {
		t.Fatalf("T dims = %dx%d, want 3x2", at.Rows(), at.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestRowColCopy(t *testing.T) {
	a, _ := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	r := a.Row(0)
	r[0] = 99
	if a.At(0, 0) != 1 {
		t.Fatal("Row must return a copy")
	}
	c := a.Col(1)
	c[0] = 99
	if a.At(0, 1) != 2 {
		t.Fatal("Col must return a copy")
	}
}

func TestSetRow(t *testing.T) {
	a := NewDense(2, 2)
	if err := a.SetRow(0, []float64{5, 6}); err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 5 || a.At(0, 1) != 6 {
		t.Fatal("SetRow did not write values")
	}
	if err := a.SetRow(0, []float64{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("SetRow short row error = %v, want ErrShape", err)
	}
	if err := a.SetRow(5, []float64{1, 2}); !errors.Is(err, ErrBounds) {
		t.Fatalf("SetRow bad index error = %v, want ErrBounds", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	a, _ := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	b := a.Clone()
	b.Set(0, 0, 42)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone must be independent of original")
	}
}

func TestNorms(t *testing.T) {
	a, _ := NewDenseData(2, 2, []float64{3, 0, 0, -4})
	if got := a.FrobeniusNorm(); !almostEqual(got, 5, 1e-12) {
		t.Fatalf("FrobeniusNorm = %v, want 5", got)
	}
	if got := a.MaxAbs(); got != 4 {
		t.Fatalf("MaxAbs = %v, want 4", got)
	}
	if got := Norm2([]float64{3, 4}); !almostEqual(got, 5, 1e-12) {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Fatalf("Norm2(nil) = %v, want 0", got)
	}
	// Norm2 must not overflow for huge components.
	big := math.MaxFloat64 / 2
	if got := Norm2([]float64{big, big}); math.IsInf(got, 1) {
		t.Fatal("Norm2 overflowed where scaling should prevent it")
	}
}

func TestDot(t *testing.T) {
	got, err := Dot([]float64{1, 2, 3}, []float64{4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	if _, err := Dot([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrShape) {
		t.Fatal("Dot length mismatch must error")
	}
}

func TestScale(t *testing.T) {
	a, _ := NewDenseData(1, 2, []float64{1, -2})
	s := a.Scale(3)
	if s.At(0, 0) != 3 || s.At(0, 1) != -6 {
		t.Fatalf("Scale = %v", s)
	}
	if a.At(0, 0) != 1 {
		t.Fatal("Scale must not mutate receiver")
	}
}

// Property: (Aᵀ)ᵀ == A for random matrices.
func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(8)
		c := 1 + rng.Intn(8)
		a := NewDense(r, c)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
		}
		b := a.T().T()
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				if a.At(i, j) != b.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: matrix multiplication is associative (A·B)·C == A·(B·C) to
// floating-point tolerance.
func TestMulAssociativity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		gen := func() *Dense {
			m := NewDense(n, n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					m.Set(i, j, rng.NormFloat64())
				}
			}
			return m
		}
		a, b, c := gen(), gen(), gen()
		ab, _ := Mul(a, b)
		left, _ := Mul(ab, c)
		bc, _ := Mul(b, c)
		right, _ := Mul(a, bc)
		d, _ := Sub(left, right)
		return d.MaxAbs() < 1e-9*(1+left.MaxAbs())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
