// Package mat provides the dense linear-algebra primitives needed by the
// regression machinery of the XR performance-analysis framework: dense
// matrices, vector helpers, Householder QR decomposition, and least-squares
// solving. It is intentionally small — just enough numerical substrate to fit
// the paper's multiple-linear-regression models (Eqs. 3, 10, 12, 21) without
// any dependency outside the Go standard library.
package mat

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Common errors returned by the package. They are exported so callers can
// match them with errors.Is.
var (
	// ErrShape indicates a dimension mismatch between operands.
	ErrShape = errors.New("mat: dimension mismatch")
	// ErrSingular indicates that a system could not be solved because the
	// matrix is singular or numerically rank-deficient.
	ErrSingular = errors.New("mat: matrix is singular to working precision")
	// ErrBounds indicates an out-of-range row or column index.
	ErrBounds = errors.New("mat: index out of range")
)

// Dense is a row-major dense matrix of float64 values.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns an r×c zero matrix. It panics only on non-positive
// dimensions, which indicates a programming error rather than a runtime
// condition.
func NewDense(r, c int) *Dense {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewDenseData returns an r×c matrix that adopts data (row-major). The slice
// is copied so the caller retains ownership of its buffer.
func NewDenseData(r, c int, data []float64) (*Dense, error) {
	if r <= 0 || c <= 0 {
		return nil, fmt.Errorf("%w: %dx%d", ErrShape, r, c)
	}
	if len(data) != r*c {
		return nil, fmt.Errorf("%w: have %d values, want %d", ErrShape, len(data), r*c)
	}
	m := NewDense(r, c)
	copy(m.data, data)
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns v to the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of %dx%d", i, j, m.rows, m.cols))
	}
}

// Row returns a copy of row i.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of %d", i, m.rows))
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: col %d out of %d", j, m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// SetRow copies vals into row i.
func (m *Dense) SetRow(i int, vals []float64) error {
	if i < 0 || i >= m.rows {
		return fmt.Errorf("%w: row %d of %d", ErrBounds, i, m.rows)
	}
	if len(vals) != m.cols {
		return fmt.Errorf("%w: row length %d, want %d", ErrShape, len(vals), m.cols)
	}
	copy(m.data[i*m.cols:(i+1)*m.cols], vals)
	return nil
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	out := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*out.cols+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// Mul returns the matrix product a·b.
func Mul(a, b *Dense) (*Dense, error) {
	if a.cols != b.rows {
		return nil, fmt.Errorf("%w: %dx%d · %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	out := NewDense(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out, nil
}

// MulVec returns the matrix-vector product m·v.
func (m *Dense) MulVec(v []float64) ([]float64, error) {
	if len(v) != m.cols {
		return nil, fmt.Errorf("%w: %dx%d · vec(%d)", ErrShape, m.rows, m.cols, len(v))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, rv := range row {
			s += rv * v[j]
		}
		out[i] = s
	}
	return out, nil
}

// Add returns a+b.
func Add(a, b *Dense) (*Dense, error) {
	if a.rows != b.rows || a.cols != b.cols {
		return nil, fmt.Errorf("%w: %dx%d + %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	out := NewDense(a.rows, a.cols)
	for i := range a.data {
		out.data[i] = a.data[i] + b.data[i]
	}
	return out, nil
}

// Sub returns a-b.
func Sub(a, b *Dense) (*Dense, error) {
	if a.rows != b.rows || a.cols != b.cols {
		return nil, fmt.Errorf("%w: %dx%d - %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	out := NewDense(a.rows, a.cols)
	for i := range a.data {
		out.data[i] = a.data[i] - b.data[i]
	}
	return out, nil
}

// Scale returns s·m as a new matrix.
func (m *Dense) Scale(s float64) *Dense {
	out := NewDense(m.rows, m.cols)
	for i := range m.data {
		out.data[i] = s * m.data[i]
	}
	return out
}

// MaxAbs returns the largest absolute element value (the max norm).
func (m *Dense) MaxAbs() float64 {
	var max float64
	for _, v := range m.data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Dense) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		b.WriteString("[")
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%.6g", m.data[i*m.cols+j])
		}
		b.WriteString("]\n")
	}
	return b.String()
}

// Dot returns the dot product of two equal-length vectors.
func Dot(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: vec(%d) · vec(%d)", ErrShape, len(a), len(b))
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s, nil
}

// Norm2 returns the Euclidean norm of v, guarding against overflow by
// scaling with the largest magnitude component.
func Norm2(v []float64) float64 {
	var max float64
	for _, x := range v {
		if a := math.Abs(x); a > max {
			max = a
		}
	}
	if max == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		r := x / max
		s += r * r
	}
	return max * math.Sqrt(s)
}
