package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQRSolveExact(t *testing.T) {
	// Square well-conditioned system with a known solution.
	a, _ := NewDenseData(3, 3, []float64{
		2, 1, 1,
		1, 3, 2,
		1, 0, 0,
	})
	// x = [1, 2, 3] → b = A·x
	b, err := a.MulVec([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	x, err := SolveLeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if !almostEqual(x[i], want[i], 1e-9) {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestQRShapeError(t *testing.T) {
	a := NewDense(2, 3) // fewer rows than cols
	if _, err := DecomposeQR(a); !errors.Is(err, ErrShape) {
		t.Fatalf("DecomposeQR error = %v, want ErrShape", err)
	}
}

func TestQRSingular(t *testing.T) {
	// Second column is a multiple of the first: rank-deficient.
	a, _ := NewDenseData(3, 2, []float64{
		1, 2,
		2, 4,
		3, 6,
	})
	d, err := DecomposeQR(a)
	if err != nil {
		t.Fatal(err)
	}
	if d.IsFullRank() {
		t.Fatal("rank-deficient matrix reported full rank")
	}
	if _, err := d.Solve([]float64{1, 2, 3}); !errors.Is(err, ErrSingular) {
		t.Fatalf("Solve error = %v, want ErrSingular", err)
	}
	if !math.IsInf(d.ConditionEstimate(), 1) {
		t.Fatal("singular matrix must have infinite condition estimate")
	}
}

func TestQRSolveRHSLength(t *testing.T) {
	a := Identity(3)
	d, err := DecomposeQR(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Solve([]float64{1, 2}); !errors.Is(err, ErrShape) {
		t.Fatalf("Solve short rhs error = %v, want ErrShape", err)
	}
}

func TestQROverdeterminedLeastSquares(t *testing.T) {
	// Fit y = 2 + 3x on noiseless points: least squares must recover the
	// coefficients exactly (to floating-point precision).
	xs := []float64{0, 1, 2, 3, 4, 5}
	a := NewDense(len(xs), 2)
	b := make([]float64, len(xs))
	for i, x := range xs {
		a.Set(i, 0, 1)
		a.Set(i, 1, x)
		b[i] = 2 + 3*x
	}
	coef, err := SolveLeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(coef[0], 2, 1e-9) || !almostEqual(coef[1], 3, 1e-9) {
		t.Fatalf("coef = %v, want [2 3]", coef)
	}
}

func TestQRResidualOrthogonality(t *testing.T) {
	// For least squares, the residual must be orthogonal to the column
	// space: Aᵀ(b − A·x) ≈ 0.
	rng := rand.New(rand.NewSource(7))
	m, n := 20, 4
	a := NewDense(m, n)
	b := make([]float64, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
		b[i] = rng.NormFloat64()
	}
	x, err := SolveLeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ax, _ := a.MulVec(x)
	res := make([]float64, m)
	for i := range res {
		res[i] = b[i] - ax[i]
	}
	at := a.T()
	proj, _ := at.MulVec(res)
	for j, v := range proj {
		if math.Abs(v) > 1e-9 {
			t.Fatalf("residual not orthogonal to column %d: %v", j, v)
		}
	}
}

func TestQRConditionEstimateIdentity(t *testing.T) {
	d, err := DecomposeQR(Identity(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := d.ConditionEstimate(); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("cond(I) = %v, want 1", got)
	}
	diag := d.RDiag()
	if len(diag) != 4 {
		t.Fatalf("RDiag length = %d, want 4", len(diag))
	}
}

// Property: for random full-rank square systems, QR solve reproduces the
// planted solution.
func TestQRSolveRandomProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			// Diagonal dominance keeps the system well conditioned.
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b, _ := a.MulVec(want)
		got, err := SolveLeastSquares(a, b)
		if err != nil {
			return false
		}
		for i := range want {
			if !almostEqual(got[i], want[i], 1e-7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
