package testbed

import (
	"context"
	"fmt"

	"repro/internal/mobility"
	"repro/internal/session"
	"repro/internal/stats"
	"repro/internal/wireless"
)

// OpSession runs multi-frame XR sessions — thermal throttling, battery
// drain, mobility handoffs — for a block of simulated users and folds the
// per-frame records into mergeable quantile sketches. It is the workload
// that turns the sweep backends into a population simulator: a
// million-user cohort is just many session requests whose summaries merge.
const OpSession RequestOp = "session"

// MobilityConfig is the wire-safe mobility description of a session
// request: the random-walk parameters plus the coverage zone, from which
// any worker reconstructs the identical mobility.Walk/Zone pair.
type MobilityConfig struct {
	// SpeedMps and StepMs define the random walk (mobility.Walk).
	SpeedMps float64 `json:"speed_mps"`
	StepMs   float64 `json:"step_ms"`
	// ZoneTechnology and ZoneRadiusM define the coverage zone.
	ZoneTechnology wireless.AccessTechnology `json:"zone_technology"`
	ZoneRadiusM    float64                   `json:"zone_radius_m"`
	// Kind selects the handoff class on zone exit.
	Kind mobility.HandoffKind `json:"kind"`
	// EveryFrames is the P(HO) re-estimation period (0 → session default).
	EveryFrames int `json:"every_frames,omitempty"`
}

// SessionConfig is the serializable session description embedded in a
// Request (with the scenario riding in Request.Scenario, exactly like
// measure and analyze requests). Everything is plain data: a worker in
// another process reconstructs the identical session.Config from it, which
// is what makes sessions fingerprintable and backend-agnostic.
type SessionConfig struct {
	// Frames is the per-user session length.
	Frames int `json:"frames"`
	// Thermal enables the throttling loop when non-nil.
	Thermal *session.ThermalModel `json:"thermal,omitempty"`
	// BatteryMAh/BatteryVolts enable battery drain when BatteryMAh > 0;
	// BatteryVolts 0 defaults to the usual 3.85 V nominal cell.
	BatteryMAh   float64 `json:"battery_mah,omitempty"`
	BatteryVolts float64 `json:"battery_volts,omitempty"`
	// BatteryStartSoC is the initial state of charge (0 → full).
	BatteryStartSoC float64 `json:"battery_start_soc,omitempty"`
	// Mobility enables handoff estimation when non-nil.
	Mobility *MobilityConfig `json:"mobility,omitempty"`
	// Users is the number of sessions this request simulates (0 → 1).
	// Each user runs the same configuration under its own derived seed.
	Users int `json:"users,omitempty"`
	// FirstUser is this request's offset into the cohort's global user
	// index space. Per-user seeds derive from the global index, so a
	// cohort split into shards of any size yields identical results.
	FirstUser uint64 `json:"first_user,omitempty"`
	// SketchAlpha is the quantile-sketch accuracy (0 →
	// stats.DefaultSketchAlpha, a compile-time constant every worker
	// binary agrees on).
	SketchAlpha float64 `json:"sketch_alpha,omitempty"`
	// IncludeTrace retains the per-frame trace in the summary. Only valid
	// for single-user requests — population shards must stay compact.
	IncludeTrace bool `json:"include_trace,omitempty"`
}

// Validate checks the session configuration.
func (c *SessionConfig) Validate() error {
	if c == nil {
		return fmt.Errorf("%w: nil session config", ErrRequest)
	}
	if c.Frames <= 0 {
		return fmt.Errorf("%w: session frames %d", ErrRequest, c.Frames)
	}
	if c.Users < 0 {
		return fmt.Errorf("%w: session users %d", ErrRequest, c.Users)
	}
	if c.BatteryMAh < 0 || c.BatteryVolts < 0 {
		return fmt.Errorf("%w: battery %v mAh @ %v V", ErrRequest, c.BatteryMAh, c.BatteryVolts)
	}
	if c.BatteryStartSoC < 0 || c.BatteryStartSoC > 1 {
		return fmt.Errorf("%w: battery start SoC %v", ErrRequest, c.BatteryStartSoC)
	}
	if c.SketchAlpha < 0 || c.SketchAlpha >= 1 {
		return fmt.Errorf("%w: sketch alpha %v", ErrRequest, c.SketchAlpha)
	}
	if c.IncludeTrace && c.users() != 1 {
		return fmt.Errorf("%w: trace retention requires a single user, have %d", ErrRequest, c.users())
	}
	if c.Thermal != nil {
		if err := c.Thermal.Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrRequest, err)
		}
	}
	if m := c.Mobility; m != nil {
		if _, err := mobility.NewWalk(m.SpeedMps, m.StepMs); err != nil {
			return fmt.Errorf("%w: %v", ErrRequest, err)
		}
		if m.ZoneRadiusM <= 0 {
			return fmt.Errorf("%w: zone radius %v m", ErrRequest, m.ZoneRadiusM)
		}
	}
	return nil
}

func (c *SessionConfig) users() int {
	if c.Users <= 0 {
		return 1
	}
	return c.Users
}

func (c *SessionConfig) alpha() float64 {
	if c.SketchAlpha <= 0 {
		return stats.DefaultSketchAlpha
	}
	return c.SketchAlpha
}

// SessionSummary is the compact, mergeable outcome of a block of
// sessions: a few kilobytes of sketches and counters no matter how many
// users or frames streamed through. Population sweeps merge shard
// summaries in request order, which keeps every float accumulation
// deterministic across backends and worker counts for a given shard list.
type SessionSummary struct {
	// Users and Frames count completed sessions and frames.
	Users  uint64 `json:"users"`
	Frames uint64 `json:"frames"`
	// Latency and Energy sketch the per-frame distributions.
	Latency *stats.Sketch `json:"latency"`
	Energy  *stats.Sketch `json:"energy"`
	// TotalEnergyMJ is the exact energy drawn across all sessions.
	TotalEnergyMJ float64 `json:"total_energy_mj"`
	// ThrottledFrames counts frames spent under the thermal governor.
	ThrottledFrames uint64 `json:"throttled_frames,omitempty"`
	// Depleted counts users whose battery emptied mid-session.
	Depleted uint64 `json:"depleted,omitempty"`
	// PeakTempC is the hottest temperature any user reached.
	PeakTempC float64 `json:"peak_temp_c,omitempty"`
	// MinSoC is the lowest final state of charge across users.
	MinSoC float64 `json:"min_soc"`
	// Trace is the per-frame record of a single-user request with
	// IncludeTrace set; population shards leave it nil.
	Trace []session.FrameRecord `json:"trace,omitempty"`
}

// NewSessionSummary returns an empty summary with sketches at the given
// accuracy (0 → stats.DefaultSketchAlpha).
func NewSessionSummary(alpha float64) *SessionSummary {
	return &SessionSummary{
		Latency: stats.NewSketch(alpha),
		Energy:  stats.NewSketch(alpha),
		MinSoC:  1,
	}
}

// Merge folds o into s. o is not modified — a summary served to several
// waiters by the memoizing cache merges into many accumulators safely.
func (s *SessionSummary) Merge(o *SessionSummary) error {
	if o == nil || o.Users == 0 {
		return nil
	}
	if err := s.Latency.Merge(o.Latency); err != nil {
		return fmt.Errorf("merge latency sketch: %w", err)
	}
	if err := s.Energy.Merge(o.Energy); err != nil {
		return fmt.Errorf("merge energy sketch: %w", err)
	}
	if s.Users == 0 || o.MinSoC < s.MinSoC {
		s.MinSoC = o.MinSoC
	}
	if o.PeakTempC > s.PeakTempC {
		s.PeakTempC = o.PeakTempC
	}
	s.Users += o.Users
	s.Frames += o.Frames
	s.TotalEnergyMJ += o.TotalEnergyMJ
	s.ThrottledFrames += o.ThrottledFrames
	s.Depleted += o.Depleted
	s.Trace = append(s.Trace, o.Trace...)
	return nil
}

// UserSeed derives the session seed of one global user index from the
// request's base seed through a SplitMix64 finalizer. The derivation
// depends only on (base, user) — never on shard boundaries — so a cohort
// sharded any way assigns every user the same seed.
func UserSeed(base int64, user uint64) int64 {
	z := uint64(base) ^ (user * 0x9e3779b97f4a7c15)
	z += 0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// runSessions executes a session request: Users sessions run serially
// under per-user derived seeds, each folding its frames into the shared
// sketches, so the request's memory footprint is flat in both users and
// frames. The Measurement's scalar fields carry the sketch means, keeping
// session rows meaningful to code that only understands measurements.
func (e *Executor) runSessions(ctx context.Context, req Request) (Measurement, error) {
	cfg := req.Session
	if err := cfg.Validate(); err != nil {
		return Measurement{}, err
	}
	if req.Scenario == nil {
		return Measurement{}, fmt.Errorf("%w: nil scenario", ErrRequest)
	}
	models, err := e.models(req.Fit)
	if err != nil {
		return Measurement{}, err
	}

	sum := NewSessionSummary(cfg.alpha())
	run := session.Config{
		Models:       models,
		Scenario:     req.Scenario,
		Frames:       cfg.Frames,
		Thermal:      cfg.Thermal,
		DiscardTrace: !cfg.IncludeTrace,
		Observer: func(rec session.FrameRecord) error {
			if err := sum.Latency.Add(rec.LatencyMs); err != nil {
				return err
			}
			return sum.Energy.Add(rec.EnergyMJ)
		},
	}
	if m := cfg.Mobility; m != nil {
		walk, err := mobility.NewWalk(m.SpeedMps, m.StepMs)
		if err != nil {
			return Measurement{}, fmt.Errorf("%w: %v", ErrRequest, err)
		}
		run.Walk = &walk
		run.Zone = mobility.Zone{Technology: m.ZoneTechnology, RadiusM: m.ZoneRadiusM}
		run.HandoffKind = m.Kind
		run.HandoffEveryFrames = m.EveryFrames
	}

	for u := 0; u < cfg.users(); u++ {
		if err := ctx.Err(); err != nil {
			return Measurement{}, err
		}
		run.Seed = UserSeed(req.Seed, cfg.FirstUser+uint64(u))
		if cfg.BatteryMAh > 0 {
			volts := cfg.BatteryVolts
			if volts <= 0 {
				volts = 3.85
			}
			b, err := session.NewBattery(cfg.BatteryMAh, volts)
			if err != nil {
				return Measurement{}, fmt.Errorf("%w: %v", ErrRequest, err)
			}
			if soc := cfg.BatteryStartSoC; soc > 0 {
				b.RemainingMJ = b.CapacityMJ * soc
			}
			run.Battery = &b
		} else {
			run.Battery = nil
		}

		res, err := session.Run(ctx, run)
		if err != nil {
			return Measurement{}, fmt.Errorf("session user %d: %w", cfg.FirstUser+uint64(u), err)
		}
		sum.Users++
		sum.Frames += uint64(res.CompletedFrames)
		sum.TotalEnergyMJ += res.TotalEnergyMJ
		sum.ThrottledFrames += uint64(res.ThrottledFrames)
		if res.Depleted {
			sum.Depleted++
		}
		if res.PeakTempC > sum.PeakTempC {
			sum.PeakTempC = res.PeakTempC
		}
		if u == 0 || res.FinalSoC < sum.MinSoC {
			sum.MinSoC = res.FinalSoC
		}
		if cfg.IncludeTrace {
			sum.Trace = res.Trace
		}
	}
	return Measurement{
		LatencyMs: sum.Latency.Mean(),
		EnergyMJ:  sum.Energy.Mean(),
		Session:   sum,
	}, nil
}
