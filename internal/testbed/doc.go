// Package testbed substitutes the paper's physical experiment
// infrastructure (seven XR devices, two Jetson edge servers, and a Monsoon
// power monitor) with a synthetic equivalent. A hidden "true physics" layer
// implements the same component interfaces the analytical models do —
// computation resource, encoder, CNN complexity, and power — but with
// nonlinearities (cubic and fractional-power frequency terms, interaction
// terms) that the paper-form quadratic/linear regressions can only
// approximate. Measurements sample this physics with multiplicative noise,
// exactly the role field data plays for the paper: the framework fits its
// regressions on noisy training-device samples and is judged on held-out
// devices.
//
// The physics itself is immutable after construction; only the monitor
// noise stream carries state. Bench.MeasureFrame/MeasureFrames draw from
// the bench's shared serial RNG and therefore depend on measurement
// order, while Bench.MeasureFramesSeeded draws from a caller-supplied
// seed and is the concurrency-safe, order-independent form every
// experiment and sweep uses.
//
// Request is the serializable unit of that seeded form: scenario, trial
// count, noise level, and seed (or, for analyze requests, a FitConfig
// identifying a reconstructible model bundle) — everything any process
// needs to reproduce an observation bit for bit. Executor runs requests
// locally; Serve/MaybeServeWorker expose the same execution over a
// length-delimited JSON protocol on stdin/stdout, which is how `xrperf
// worker` subprocesses answer the proc sweep backend.
package testbed
