package testbed

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/cnn"
	"repro/internal/codec"
	"repro/internal/energy"
	"repro/internal/latency"
)

// ErrPhysics indicates invalid inputs to the hidden physics.
var ErrPhysics = errors.New("testbed: invalid physics input")

// PhysicsVersion identifies the measurement semantics of this binary:
// the hidden physics, the monitor-noise model, and the RNG derivation.
// A request fingerprint describes the cell, not the code that measures
// it, so persistent caches (sweep.DiskCache) stamp entries with this
// version and refuse entries from another — otherwise a cache directory
// filled by an older binary would silently replay its numbers forever.
// Bump it whenever a change makes any seeded measurement produce
// different bytes; TestPhysicsVersionPinsMeasurement fails on such a
// change until the golden values and this constant move together.
const PhysicsVersion = 1

// Physics is the hidden ground-truth behaviour of the simulated hardware.
// Per-device efficiency factors model the heterogeneity of Table I: two
// devices with the same clock still differ because of SoC process node,
// cache sizes, and thermal design.
type Physics struct {
	// DeviceEfficiency scales the compute resource per device name;
	// missing devices default to 1.
	DeviceEfficiency map[string]float64
	// PowerEfficiency scales dynamic power per device name.
	PowerEfficiency map[string]float64
}

// NewPhysics returns the default hidden physics with per-device efficiency
// factors roughly tracking the process node of Table I (5 nm Kirin 9000 is
// the most efficient; 12 nm Helio P70 the least).
func NewPhysics() *Physics {
	return &Physics{
		DeviceEfficiency: map[string]float64{
			"XR1": 1.05, "XR2": 1.02, "XR3": 0.94, "XR4": 0.96,
			"XR5": 0.97, "XR6": 1.01, "XR7": 0.99, "Edge": 1.03,
		},
		PowerEfficiency: map[string]float64{
			"XR1": 0.96, "XR2": 0.98, "XR3": 1.06, "XR4": 1.03,
			"XR5": 1.00, "XR6": 0.99, "XR7": 1.01, "Edge": 0.97,
		},
	}
}

func (p *Physics) deviceEff(name string) float64 {
	if f, ok := p.DeviceEfficiency[name]; ok && f > 0 {
		return f
	}
	return 1
}

func (p *Physics) powerEff(name string) float64 {
	if f, ok := p.PowerEfficiency[name]; ok && f > 0 {
		return f
	}
	return 1
}

// TrueResource is the hidden computation-resource curve: monotonic in each
// clock with mild cubic saturation, so the paper's quadratic form fits
// well (R² ≈ 0.85–0.9 under noise) but not perfectly.
func (p *Physics) TrueResource(deviceName string, fc, fg, wc float64) (float64, error) {
	if wc < 0 || wc > 1 {
		return 0, fmt.Errorf("%w: ω_c=%v", ErrPhysics, wc)
	}
	if wc > 0 && fc <= 0 {
		return 0, fmt.Errorf("%w: f_c=%v", ErrPhysics, fc)
	}
	if wc < 1 && fg <= 0 {
		return 0, fmt.Errorf("%w: f_g=%v", ErrPhysics, fg)
	}
	cpu := 2.2 + 4.0*fc + 0.9*fc*fc - 0.18*fc*fc*fc
	gpu := 1.5 + 9.0*fg + 14.0*fg*fg - 1.2*fg*fg*fg
	c := (wc*cpu + (1-wc)*gpu) * p.deviceEff(deviceName)
	if c < 0.5 {
		c = 0.5
	}
	return c, nil
}

// TruePower is the hidden mean-power curve: superlinear fractional powers
// of frequency, again near-quadratic over the operating range.
func (p *Physics) TruePower(deviceName string, fc, fg, wc float64) (float64, error) {
	if wc < 0 || wc > 1 {
		return 0, fmt.Errorf("%w: ω_c=%v", ErrPhysics, wc)
	}
	if wc > 0 && fc <= 0 {
		return 0, fmt.Errorf("%w: f_c=%v", ErrPhysics, fc)
	}
	if wc < 1 && fg <= 0 {
		return 0, fmt.Errorf("%w: f_g=%v", ErrPhysics, fg)
	}
	cpu := 0.5 + 0.55*math.Pow(fc, 1.6)
	gpu := 0.4 + 2.6*math.Pow(fg, 1.9)
	pw := (wc*cpu + (1-wc)*gpu) * p.powerEff(deviceName)
	if pw < 0.2 {
		pw = 0.2
	}
	return pw, nil
}

// TrueEncoderWork is the hidden encoder cost (resource-normalized work):
// near-linear in each H.264 parameter with a frame-size×fps interaction
// the linear regression of Eq. (10) cannot represent.
func (p *Physics) TrueEncoderWork(ep codec.EncodingParams) (float64, error) {
	if err := ep.Validate(); err != nil {
		return 0, err
	}
	w := 150 +
		3.9*ep.FrameSizePx2 +
		13.0*math.Pow(ep.FPS, 1.1) +
		100.0*math.Pow(ep.BitrateMbps, 0.9) +
		7.0*ep.Quantization +
		300.0*ep.BFrameInterval -
		16.0*ep.IFrameInterval +
		0.010*ep.FrameSizePx2*ep.FPS
	if w < 5 {
		w = 5
	}
	return w, nil
}

// TrueCNNComplexity is the hidden complexity curve of Eq. (12)'s target:
// slightly superlinear in storage size.
func (p *Physics) TrueCNNComplexity(depth int, sizeMB, depthScale float64) (float64, error) {
	if depth < 0 || sizeMB <= 0 || depthScale <= 0 {
		return 0, fmt.Errorf("%w: depth=%d size=%v scale=%v", ErrPhysics, depth, sizeMB, depthScale)
	}
	return 2.1 + 0.0023*float64(depth) + 0.028*math.Pow(sizeMB, 1.04) + 0.4*(depthScale-1), nil
}

// True base power and thermal fraction differ slightly from the analytical
// defaults (device.DefaultBasePowerW, device.DefaultThermalFraction),
// contributing realistic systematic model error.
const (
	trueBasePowerW      = 0.92
	trueThermalFraction = 0.07
)

// --- Interface adapters -------------------------------------------------
//
// The adapters below expose the hidden physics through the exact component
// interfaces the analytical pipeline composition consumes, so ground truth
// and model share Eq. (1)'s structure but differ in component behaviour.

// trueResourceModel adapts TrueResource to latency.ResourceModel for one
// device.
type trueResourceModel struct {
	phy    *Physics
	device string
}

var _ latency.ResourceModel = trueResourceModel{}

func (m trueResourceModel) Compute(fc, fg, wc float64) (float64, error) {
	return m.phy.TrueResource(m.device, fc, fg, wc)
}

// trueEncoderModel adapts TrueEncoderWork to latency.EncoderModel. The
// true decode discount differs from the analytical γ = 1/3 by a small
// margin.
type trueEncoderModel struct {
	phy *Physics
}

var _ latency.EncoderModel = trueEncoderModel{}

const trueDecodeDiscount = 0.36

func (m trueEncoderModel) EncodeLatencyMs(ep codec.EncodingParams, resource, frameDataMB, memBandwidthGBs float64) (float64, error) {
	if resource <= 0 {
		return 0, fmt.Errorf("%w: resource %v", ErrPhysics, resource)
	}
	if memBandwidthGBs <= 0 {
		return 0, fmt.Errorf("%w: memory bandwidth %v", ErrPhysics, memBandwidthGBs)
	}
	if frameDataMB < 0 {
		return 0, fmt.Errorf("%w: frame data %v", ErrPhysics, frameDataMB)
	}
	w, err := m.phy.TrueEncoderWork(ep)
	if err != nil {
		return 0, err
	}
	return w/resource + frameDataMB/memBandwidthGBs, nil
}

func (m trueEncoderModel) DecodeLatencyMs(encodeLatencyMs, encoderResource, decoderResource float64) (float64, error) {
	if encodeLatencyMs < 0 || encoderResource <= 0 || decoderResource <= 0 {
		return 0, fmt.Errorf("%w: decode inputs", ErrPhysics)
	}
	return encodeLatencyMs * encoderResource * trueDecodeDiscount / decoderResource, nil
}

// trueComplexityModel adapts TrueCNNComplexity to latency.ComplexityModel.
type trueComplexityModel struct {
	phy *Physics
}

var _ latency.ComplexityModel = trueComplexityModel{}

func (m trueComplexityModel) ComplexityOf(c cnn.Model) (float64, error) {
	return m.phy.TrueCNNComplexity(c.Depth, c.SizeMB, c.DepthScale)
}

// truePowerModel adapts TruePower to energy.PowerModel for one device.
type truePowerModel struct {
	phy    *Physics
	device string
}

var _ energy.PowerModel = truePowerModel{}

func (m truePowerModel) MeanPowerW(fc, fg, wc float64) (float64, error) {
	return m.phy.TruePower(m.device, fc, fg, wc)
}

func (m truePowerModel) SegmentEnergyMJ(powerW, latencyMs float64) (float64, error) {
	if powerW < 0 || latencyMs < 0 {
		return 0, fmt.Errorf("%w: energy inputs", ErrPhysics)
	}
	return powerW * latencyMs, nil
}

func (m truePowerModel) BaseEnergyMJ(intervalMs float64) (float64, error) {
	if intervalMs < 0 {
		return 0, fmt.Errorf("%w: interval %v", ErrPhysics, intervalMs)
	}
	return trueBasePowerW * intervalMs, nil
}

func (m truePowerModel) ThermalEnergyMJ(dynamicEnergyMJ float64) (float64, error) {
	if dynamicEnergyMJ < 0 {
		return 0, fmt.Errorf("%w: energy %v", ErrPhysics, dynamicEnergyMJ)
	}
	return trueThermalFraction * dynamicEnergyMJ, nil
}

// TrueLatencyModels returns the hidden-physics latency models for a device.
func (p *Physics) TrueLatencyModels(deviceName string) latency.Models {
	return latency.Models{
		Resource:   trueResourceModel{phy: p, device: deviceName},
		Encoder:    trueEncoderModel{phy: p},
		Complexity: trueComplexityModel{phy: p},
	}
}

// TrueEnergyModels returns the hidden-physics energy models for a device.
func (p *Physics) TrueEnergyModels(deviceName string) energy.Models {
	return energy.Models{
		Latency: p.TrueLatencyModels(deviceName),
		Power:   truePowerModel{phy: p, device: deviceName},
		// The true radio draws differ slightly from the analytical
		// defaults.
		TxPowerW:   1.22,
		RadioIdleW: 0.38,
	}
}
