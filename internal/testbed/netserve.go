package testbed

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
)

// ServeListener runs a worker-fleet node with default options; see
// ServeListenerOpts.
func ServeListener(ctx context.Context, ln net.Listener, logf func(format string, args ...any)) error {
	return ServeListenerOpts(ctx, ln, logf, ServeOptions{})
}

// ServeListenerOpts runs a worker-fleet node: accept connections on ln
// until ctx is canceled (or the listener fails) and answer each over the
// length-delimited frame protocol. Every connection opens with a
// handshake frame (WireHello) carrying this binary's protocol and
// physics versions plus its codec advertisement, so an incompatible
// dispatcher rejects the node before any work is exchanged and a
// compatible one picks the densest codec both sides speak (opts.JSONOnly
// withholds the binary advertisement). Connections are served
// concurrently and share one Executor, so re-fitted model bundles are
// resolved once per node, not once per dispatcher connection. A
// connection-level failure (disconnect, corrupt frame) closes that
// connection only — reported via logf when non-nil — never the node.
// Canceling ctx closes the listener and every live connection and
// returns nil promptly — an in-flight measurement is not waited for (it
// is CPU-bound and uncancelable; its goroutine exits once its response
// write fails on the closed socket, and the dispatcher has already
// re-dispatched or abandoned the batch). ln is closed in every exit
// path.
func ServeListenerOpts(ctx context.Context, ln net.Listener, logf func(format string, args ...any), opts ServeOptions) error {
	exec := NewExecutor(nil)
	if opts.Meter == nil {
		// One meter across every connection: each dispatcher sees the
		// node's whole-machine throughput in its handshake, not the rate
		// of whichever connection it happens to hold.
		opts.Meter = &RateMeter{}
	}
	var (
		mu   sync.Mutex
		live = make(map[net.Conn]struct{})
	)
	// Every exit — cancelation or a listener failure — closes the
	// listener and all live connections, so the node never wedges with
	// dispatchers attached (they hold idle connections open across
	// calls); the connection goroutines exit once their sockets fail.
	closeAll := func() {
		_ = ln.Close()
		mu.Lock()
		defer mu.Unlock()
		for c := range live {
			_ = c.Close()
		}
	}
	stop := context.AfterFunc(ctx, closeAll)
	defer stop()
	defer closeAll()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		mu.Lock()
		live[conn] = struct{}{}
		mu.Unlock()
		go func() {
			defer func() {
				mu.Lock()
				delete(live, conn)
				mu.Unlock()
				_ = conn.Close()
			}()
			if err := ServeConnOpts(exec, conn, opts); err != nil && ctx.Err() == nil && logf != nil {
				logf("connection %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// ServeConn performs the node side of one dispatcher connection with
// default options; see ServeConnOpts.
func ServeConn(e *Executor, conn net.Conn) error {
	return ServeConnOpts(e, conn, ServeOptions{})
}

// ServeConnOpts performs the node side of one dispatcher connection:
// write the handshake frame, negotiate the codec, then run the
// executor's serve loop until the peer disconnects. A clean disconnect
// (EOF before a frame header) returns nil.
func ServeConnOpts(e *Executor, conn net.Conn, opts ServeOptions) error {
	err := e.ServeFramesOpts(conn, conn, opts)
	// A peer that vanishes mid-read surfaces as a closed-connection
	// error; treat it like the pipe worker's clean EOF.
	if err != nil && errors.Is(err, net.ErrClosed) {
		return nil
	}
	return err
}

// ReadHello reads and validates a worker's handshake frame. It is the
// dispatcher half of the handshake every serve loop initiates: a frame
// error means the peer is not a worker at all; a version mismatch
// (ErrVersionMismatch) means it is one, built from incompatible code.
// The returned hello carries the worker's codec advertisement even when
// validation fails.
func ReadHello(r io.Reader) (WireHello, error) {
	var h WireHello
	if err := ReadFrame(r, &h); err != nil {
		return WireHello{}, err
	}
	return h, h.Check()
}
