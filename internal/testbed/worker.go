package testbed

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
)

// WorkerEnv is the environment marker the proc sweep backend sets on its
// subprocesses. `xrperf worker` serves regardless; test binaries hook
// MaybeServeWorker into TestMain so the re-executed binary becomes a
// worker instead of re-running the test suite.
const WorkerEnv = "XRPERF_PROC_WORKER"

// ProtocolVersion identifies the wire protocol of this binary: the
// 4-byte-length-prefixed JSON framing and the WireRequest/WireResponse
// message schema. Network serve nodes announce it in their handshake so
// a dispatcher built against an incompatible frame layout is rejected
// before any work is exchanged; the stdin/stdout worker path skips the
// handshake because the proc backend always spawns its own binary. Bump
// it on any incompatible frame or message change.
const ProtocolVersion = 1

// MaxFrameBytes bounds a single protocol frame; larger length prefixes
// indicate a corrupt or hostile stream and are rejected.
const MaxFrameBytes = 8 << 20

// ErrFrame indicates a malformed protocol frame.
var ErrFrame = errors.New("testbed: bad protocol frame")

// WireRequest is one framed request of the worker protocol: the
// dispatcher tags each Request with its shard index so responses can be
// matched and merged in order.
type WireRequest struct {
	// ID is the dispatcher-chosen request tag (the shard index).
	ID int `json:"id"`
	// Req is the work unit.
	Req Request `json:"req"`
}

// WireResponse is one framed response.
type WireResponse struct {
	// ID echoes the request tag.
	ID int `json:"id"`
	// M is the result when Err is empty.
	M Measurement `json:"m"`
	// Err carries a request-level failure; the worker stays alive.
	Err string `json:"err,omitempty"`
}

// ErrVersionMismatch indicates a serve node whose protocol or physics
// version differs from this binary's.
var ErrVersionMismatch = errors.New("testbed: version mismatch")

// WireHello is the handshake frame a network serve node writes once per
// connection, before reading any request: the node's wire-protocol
// version and its measurement semantics (PhysicsVersion). The dispatcher
// checks both against its own binary — a node built from different
// physics would return measurements that silently break the
// byte-identical-across-backends contract, so mismatched nodes are
// rejected up front, not discovered as wrong numbers later.
type WireHello struct {
	// Protocol is the node's wire-protocol version.
	Protocol int `json:"proto"`
	// Physics is the node's testbed.PhysicsVersion.
	Physics int `json:"physics"`
	// Service names what the peer serves: empty for a worker-fleet node
	// (the original service, kept empty for wire compatibility),
	// ServiceJobs for a job server. Version checks ignore it; clients
	// use it to fail fast when dialing the wrong kind of endpoint.
	Service string `json:"svc,omitempty"`
}

// Hello returns this binary's handshake frame.
func Hello() WireHello {
	return WireHello{Protocol: ProtocolVersion, Physics: PhysicsVersion}
}

// Check validates a peer's handshake against this binary.
func (h WireHello) Check() error {
	if h.Protocol != ProtocolVersion || h.Physics != PhysicsVersion {
		return fmt.Errorf("%w: node speaks protocol %d / physics %d, this binary speaks %d / %d",
			ErrVersionMismatch, h.Protocol, h.Physics, ProtocolVersion, PhysicsVersion)
	}
	return nil
}

// WriteFrame encodes v as JSON behind a 4-byte big-endian length prefix.
func WriteFrame(w io.Writer, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("%w: encode: %v", ErrFrame, err)
	}
	if len(payload) > MaxFrameBytes {
		return fmt.Errorf("%w: %d bytes exceeds limit %d", ErrFrame, len(payload), MaxFrameBytes)
	}
	var head [4]byte
	binary.BigEndian.PutUint32(head[:], uint32(len(payload)))
	if _, err := w.Write(head[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// ReadFrame decodes one length-prefixed JSON frame into v. A clean EOF
// before the first header byte returns io.EOF; EOF mid-frame returns
// io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, v any) error {
	var head [4]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return io.EOF
		}
		return err
	}
	n := binary.BigEndian.Uint32(head[:])
	if n > MaxFrameBytes {
		return fmt.Errorf("%w: declared length %d exceeds limit %d", ErrFrame, n, MaxFrameBytes)
	}
	// The payload buffer grows with the bytes that actually arrive, so a
	// hostile length prefix on a short stream costs nothing: a declared
	// 8 MB frame that truncates after 10 bytes allocates ~10 bytes, not
	// the declared length.
	var buf bytes.Buffer
	if _, err := io.CopyN(&buf, r, int64(n)); err != nil {
		if errors.Is(err, io.EOF) {
			return io.ErrUnexpectedEOF
		}
		return err
	}
	if err := json.Unmarshal(buf.Bytes(), v); err != nil {
		return fmt.Errorf("%w: decode: %v", ErrFrame, err)
	}
	return nil
}

// Serve runs the worker loop on a fresh executor: read framed requests
// from r until EOF, execute each, and write framed responses to w in
// arrival order. It is the stdin/stdout entry point of the proc backend;
// network serve nodes run the same loop per connection via ServeListener,
// sharing one executor across connections.
func Serve(r io.Reader, w io.Writer) error {
	return NewExecutor(nil).ServeFrames(r, w)
}

// ServeFrames runs the transport-agnostic worker loop on the executor:
// read framed requests from r until EOF, execute each, and write framed
// responses to w in arrival order. Request-level failures (bad trials,
// invalid scenario) are reported in the response and do not kill the
// loop; protocol-level failures (corrupt frame, broken pipe) return an
// error. The hidden physics is deterministic, so a worker's observations
// for seeded requests match any other process's bit for bit — which is
// what lets one serve loop back pipes and sockets interchangeably.
func (e *Executor) ServeFrames(r io.Reader, w io.Writer) error {
	br := bufio.NewReader(r)
	bw := bufio.NewWriter(w)
	for {
		var req WireRequest
		if err := ReadFrame(br, &req); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("worker read: %w", err)
		}
		resp := WireResponse{ID: req.ID}
		m, err := e.Do(req.Req)
		if err != nil {
			resp.Err = err.Error()
		} else {
			resp.M = m
		}
		if err := WriteFrame(bw, resp); err != nil {
			return fmt.Errorf("worker write: %w", err)
		}
		if err := bw.Flush(); err != nil {
			return fmt.Errorf("worker flush: %w", err)
		}
	}
}

// MaybeServeWorker turns the current process into a measurement worker —
// serving the wire protocol on stdin/stdout until EOF, then exiting —
// when WorkerEnv is set. Binaries that may be re-executed by the proc
// backend (most importantly test binaries, whose TestMain should call
// this before m.Run) use it to answer the backend instead of running
// their normal main path. It returns immediately when the marker is
// absent.
func MaybeServeWorker() {
	if os.Getenv(WorkerEnv) == "" {
		return
	}
	if err := Serve(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "xrperf worker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}
