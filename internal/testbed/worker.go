package testbed

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"
)

// WorkerEnv is the environment marker the proc sweep backend sets on its
// subprocesses. `xrperf worker` serves regardless; test binaries hook
// MaybeServeWorker into TestMain so the re-executed binary becomes a
// worker instead of re-running the test suite.
const WorkerEnv = "XRPERF_PROC_WORKER"

// ProtocolVersion identifies the wire protocol of this binary: the
// 4-byte-length-prefixed framing, the handshake/start negotiation, and
// the WireBatch/WireBatchResult message schema. Version 2 replaced the
// per-request WireRequest/WireResponse round trips of version 1 with
// batched, pipelined frames and per-connection codec negotiation
// (WireHello.Codecs + WireStart). Every worker — subprocess or serve
// node — announces it in its handshake so a dispatcher built against an
// incompatible frame layout is rejected before any work is exchanged.
// Bump it on any incompatible frame or message change.
const ProtocolVersion = 2

// MaxFrameBytes bounds a single protocol frame; larger length prefixes
// indicate a corrupt or hostile stream and are rejected.
const MaxFrameBytes = 8 << 20

// ErrFrame indicates a malformed protocol frame.
var ErrFrame = errors.New("testbed: bad protocol frame")

// Frame codecs negotiated per connection: the handshake (WireHello) and
// the start frame (WireStart) are always JSON, and every batch frame
// after them is encoded in the codec the dispatcher selected from the
// worker's advertisement.
const (
	// CodecJSON is the baseline codec every peer speaks; the empty
	// string means the same thing on the wire.
	CodecJSON = "json"
	// CodecBinary is the compact binary codec for the hot frame types
	// (see codec_binary.go): no field names, no float formatting, same
	// decoded values as JSON bit for bit.
	CodecBinary = "binary"
)

// NormalizeCodec resolves the empty codec name to CodecJSON.
func NormalizeCodec(c string) string {
	if c == "" {
		return CodecJSON
	}
	return c
}

// KnownCodec reports whether this binary implements codec c.
func KnownCodec(c string) bool {
	switch NormalizeCodec(c) {
	case CodecJSON, CodecBinary:
		return true
	}
	return false
}

// WireBatch is one framed batch of requests: the dispatcher tags each
// batch with the grid offset of its first request so results can be
// matched to their window slot and merged in request order. Reqs are
// contiguous in grid order, so request i of the batch is grid point
// ID+i.
type WireBatch struct {
	// ID is the dispatcher-chosen batch tag (the grid offset of Reqs[0]).
	ID int `json:"id"`
	// Reqs are the work units, contiguous in grid order.
	Reqs []Request `json:"reqs"`
}

// WireItem is one request's result within a batch.
type WireItem struct {
	// M is the result when Err is empty.
	M Measurement `json:"m"`
	// Err carries a request-level failure; the worker stays alive and
	// the batch's other items are unaffected.
	Err string `json:"err,omitempty"`
}

// WireBatchResult is one framed batch response. Items answer the
// batch's requests positionally; a non-empty envelope Err reports a
// protocol-level rejection (e.g. an unacceptable codec in WireStart)
// and closes the connection.
type WireBatchResult struct {
	// ID echoes the batch tag.
	ID int `json:"id"`
	// Items answer Reqs positionally.
	Items []WireItem `json:"items,omitempty"`
	// Err is a connection-level rejection; no Items accompany it.
	Err string `json:"err,omitempty"`
}

// WireStart is the one frame a dispatcher sends before its first batch:
// the codec every subsequent frame on this connection uses. It is
// always JSON — codec negotiation must be readable before a codec is
// agreed — and unacknowledged: an acceptable codec costs no round trip,
// and an unacceptable one is answered with an envelope-level
// WireBatchResult.Err in JSON.
type WireStart struct {
	// Codec selects the batch-frame codec; empty means CodecJSON.
	Codec string `json:"codec,omitempty"`
}

// ErrVersionMismatch indicates a peer whose protocol, physics, or codec
// support differs incompatibly from this binary's.
var ErrVersionMismatch = errors.New("testbed: version mismatch")

// WireHello is the handshake frame a worker writes once per connection
// (serve nodes over TCP, worker subprocesses on stdout), before reading
// any request: the worker's wire-protocol version, its measurement
// semantics (PhysicsVersion), and the extra frame codecs it accepts
// beyond JSON. The dispatcher checks the versions against its own
// binary — a node built from different physics would return
// measurements that silently break the byte-identical-across-backends
// contract, so mismatched nodes are rejected up front, not discovered
// as wrong numbers later — and picks the best codec both sides speak.
type WireHello struct {
	// Protocol is the worker's wire-protocol version.
	Protocol int `json:"proto"`
	// Physics is the worker's testbed.PhysicsVersion.
	Physics int `json:"physics"`
	// Service names what the peer serves: empty for a worker-fleet node
	// (the original service, kept empty for wire compatibility),
	// ServiceJobs for a job server. Version checks ignore it; clients
	// use it to fail fast when dialing the wrong kind of endpoint.
	Service string `json:"svc,omitempty"`
	// Codecs lists the frame codecs the worker accepts beyond JSON,
	// comma-separated (e.g. "binary"). Empty means JSON only. Kept a
	// string, not a slice, so WireHello stays comparable.
	Codecs string `json:"codecs,omitempty"`
	// Cores is the worker's GOMAXPROCS: a static capacity hint for
	// weighted dispatch. Optional — zero (an old node, or a worker that
	// declines to advertise) means "no hint" and old-node handshake
	// bytes are unchanged.
	Cores int `json:"cores,omitempty"`
	// CellsPerSec is the worker's recently observed measurement
	// throughput (cells/s EWMA, see RateMeter): the dynamic capacity
	// hint, preferred over Cores when present. Optional like Cores.
	CellsPerSec float64 `json:"cps,omitempty"`
}

// Hello returns this binary's handshake frame, advertising every codec
// it speaks and its core count as a static capacity hint.
func Hello() WireHello {
	return WireHello{
		Protocol: ProtocolVersion,
		Physics:  PhysicsVersion,
		Codecs:   CodecBinary,
		Cores:    runtime.GOMAXPROCS(0),
	}
}

// JSONHello returns the handshake frame of a worker restricted to the
// JSON codec (`xrperf serve -json-only`): same versions, no codec
// advertisement, so dispatchers fall back to JSON frames automatically.
func JSONHello() WireHello {
	h := Hello()
	h.Codecs = ""
	return h
}

// Check validates a peer's handshake against this binary.
func (h WireHello) Check() error {
	if h.Protocol != ProtocolVersion || h.Physics != PhysicsVersion {
		return fmt.Errorf("%w: node speaks protocol %d / physics %d, this binary speaks %d / %d",
			ErrVersionMismatch, h.Protocol, h.Physics, ProtocolVersion, PhysicsVersion)
	}
	return nil
}

// Supports reports whether the handshake's sender accepts frames in
// codec c. Every peer speaks JSON.
func (h WireHello) Supports(c string) bool {
	c = NormalizeCodec(c)
	if c == CodecJSON {
		return true
	}
	for _, adv := range strings.Split(h.Codecs, ",") {
		if strings.TrimSpace(adv) == c {
			return true
		}
	}
	return false
}

// PickCodec returns the densest codec both this binary and the
// handshake's sender speak: binary when advertised, JSON otherwise.
func (h WireHello) PickCodec() string {
	if h.Supports(CodecBinary) {
		return CodecBinary
	}
	return CodecJSON
}

// WriteRawFrame writes payload behind a 4-byte big-endian length prefix.
func WriteRawFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameBytes {
		return fmt.Errorf("%w: %d bytes exceeds limit %d", ErrFrame, len(payload), MaxFrameBytes)
	}
	var head [4]byte
	binary.BigEndian.PutUint32(head[:], uint32(len(payload)))
	if _, err := w.Write(head[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadRawFrame reads one length-prefixed payload. A clean EOF before the
// first header byte returns io.EOF; EOF mid-frame returns
// io.ErrUnexpectedEOF.
func ReadRawFrame(r io.Reader) ([]byte, error) {
	var head [4]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(head[:])
	if n > MaxFrameBytes {
		return nil, fmt.Errorf("%w: declared length %d exceeds limit %d", ErrFrame, n, MaxFrameBytes)
	}
	// The payload buffer grows with the bytes that actually arrive, so a
	// hostile length prefix on a short stream costs nothing: a declared
	// 8 MB frame that truncates after 10 bytes allocates ~10 bytes, not
	// the declared length.
	var buf bytes.Buffer
	if _, err := io.CopyN(&buf, r, int64(n)); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf.Bytes(), nil
}

// WriteFrame encodes v as JSON behind a 4-byte big-endian length prefix.
func WriteFrame(w io.Writer, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("%w: encode: %v", ErrFrame, err)
	}
	return WriteRawFrame(w, payload)
}

// ReadFrame decodes one length-prefixed JSON frame into v. A clean EOF
// before the first header byte returns io.EOF; EOF mid-frame returns
// io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, v any) error {
	payload, err := ReadRawFrame(r)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("%w: decode: %v", ErrFrame, err)
	}
	return nil
}

// WriteFrameCodec encodes v in the negotiated codec behind the length
// prefix.
func WriteFrameCodec(w io.Writer, codec string, v any) error {
	switch NormalizeCodec(codec) {
	case CodecJSON:
		return WriteFrame(w, v)
	case CodecBinary:
		payload, err := EncodeBinary(v)
		if err != nil {
			return fmt.Errorf("%w: encode: %v", ErrFrame, err)
		}
		return WriteRawFrame(w, payload)
	default:
		return fmt.Errorf("%w: unknown codec %q", ErrFrame, codec)
	}
}

// ReadFrameCodec decodes one length-prefixed frame of the negotiated
// codec into v, with ReadFrame's EOF semantics.
func ReadFrameCodec(r io.Reader, codec string, v any) error {
	switch NormalizeCodec(codec) {
	case CodecJSON:
		return ReadFrame(r, v)
	case CodecBinary:
		payload, err := ReadRawFrame(r)
		if err != nil {
			return err
		}
		if err := DecodeBinary(payload, v); err != nil {
			return fmt.Errorf("%w: decode: %v", ErrFrame, err)
		}
		return nil
	default:
		return fmt.Errorf("%w: unknown codec %q", ErrFrame, codec)
	}
}

// ServeOptions restricts a worker's serve loop.
type ServeOptions struct {
	// JSONOnly withholds the binary-codec advertisement and rejects
	// dispatchers that request it anyway — the operational escape hatch
	// (and mixed-fleet test fixture) for running a node on the baseline
	// codec.
	JSONOnly bool
	// Meter, when set, is fed each batch's throughput and its EWMA is
	// advertised in the handshake (WireHello.CellsPerSec). Serve nodes
	// share one meter across connections so every dispatcher sees the
	// node's whole-machine rate.
	Meter *RateMeter
}

// Hello returns the handshake frame these options produce, capacity
// hints included — the same frame a dispatcher (or a registration
// coordinator, in fleet register mode) would read from this worker.
func (o ServeOptions) Hello() WireHello {
	h := Hello()
	if o.JSONOnly {
		h.Codecs = ""
	}
	h.CellsPerSec = o.Meter.Rate()
	return h
}

// Serve runs the worker loop on a fresh executor: write the handshake,
// negotiate the frame codec, then answer framed request batches from r
// until EOF, writing framed results to w in arrival order. It is the
// stdin/stdout entry point of the proc backend; network serve nodes run
// the same loop per connection via ServeListener, sharing one executor
// across connections.
func Serve(r io.Reader, w io.Writer) error {
	return NewExecutor(nil).ServeFrames(r, w)
}

// ServeFrames runs the transport-agnostic worker loop on the executor
// with default options.
//
//xrlint:allow ctxfirst -- serve loop ends on transport EOF/close, not ctx; dispatchers cancel by closing the conn
func (e *Executor) ServeFrames(r io.Reader, w io.Writer) error {
	return e.ServeFramesOpts(r, w, ServeOptions{})
}

// ServeFramesOpts runs the transport-agnostic worker loop on the
// executor: write the handshake frame, read the dispatcher's WireStart
// (both JSON), then answer WireBatch frames in the negotiated codec
// until EOF. Request-level failures (bad trials, invalid scenario) are
// reported per item and do not kill the loop; a batch-level rejection
// (an unacceptable codec) is reported in a JSON envelope frame and
// closes the connection; protocol-level failures (corrupt frame, broken
// pipe) return an error. The hidden physics is deterministic, so a
// worker's observations for seeded requests match any other process's
// bit for bit — which is what lets one serve loop back pipes and
// sockets interchangeably.
//
//xrlint:allow ctxfirst -- serve loop ends on transport EOF/close, not ctx; dispatchers cancel by closing the conn
func (e *Executor) ServeFramesOpts(r io.Reader, w io.Writer, opts ServeOptions) error {
	br := bufio.NewReader(r)
	bw := bufio.NewWriter(w)
	if err := WriteFrame(bw, opts.Hello()); err != nil {
		return fmt.Errorf("worker hello: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("worker hello: %w", err)
	}
	var start WireStart
	if err := ReadFrame(br, &start); err != nil {
		if errors.Is(err, io.EOF) {
			return nil // dispatcher probed the handshake and left
		}
		return fmt.Errorf("worker start: %w", err)
	}
	codec := NormalizeCodec(start.Codec)
	if !KnownCodec(codec) || (opts.JSONOnly && codec != CodecJSON) {
		reason := fmt.Errorf("%w: dispatcher requested codec %q, this worker speaks %s",
			ErrVersionMismatch, start.Codec, e.serveCodecs(opts))
		_ = WriteFrame(bw, WireBatchResult{Err: reason.Error()})
		_ = bw.Flush()
		return reason
	}
	for {
		var b WireBatch
		if err := ReadFrameCodec(br, codec, &b); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("worker read: %w", err)
		}
		//xrlint:allow determinism -- batch wall time feeds the capacity meter (dispatch steering), never measurement data
		began := time.Now()
		res := WireBatchResult{ID: b.ID, Items: e.DoBatch(context.Background(), b.Reqs)}
		//xrlint:allow determinism -- batch wall time feeds the capacity meter (dispatch steering), never measurement data
		opts.Meter.Observe(len(b.Reqs), time.Since(began))
		if err := WriteFrameCodec(bw, codec, res); err != nil {
			return fmt.Errorf("worker write: %w", err)
		}
		if err := bw.Flush(); err != nil {
			return fmt.Errorf("worker flush: %w", err)
		}
	}
}

func (e *Executor) serveCodecs(opts ServeOptions) string {
	if opts.JSONOnly {
		return CodecJSON
	}
	return CodecJSON + ", " + CodecBinary
}

// MaybeServeWorker turns the current process into a measurement worker —
// serving the wire protocol on stdin/stdout until EOF, then exiting —
// when WorkerEnv is set. Binaries that may be re-executed by the proc
// backend (most importantly test binaries, whose TestMain should call
// this before m.Run) use it to answer the backend instead of running
// their normal main path. It returns immediately when the marker is
// absent.
func MaybeServeWorker() {
	if os.Getenv(WorkerEnv) == "" {
		return
	}
	if err := Serve(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "xrperf worker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}
