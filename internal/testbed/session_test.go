package testbed

import (
	"bytes"
	"context"
	"math"
	"testing"

	"repro/internal/mobility"
	"repro/internal/pipeline"
	"repro/internal/session"
	"repro/internal/wireless"
)

func sessionRequest(t *testing.T, users int, opts ...pipeline.Option) Request {
	t.Helper()
	return Request{
		Op:       OpSession,
		Scenario: scenario(t, opts...),
		Seed:     42,
		Session: &SessionConfig{
			Frames: 10,
			Users:  users,
		},
	}
}

func TestSessionOpRuns(t *testing.T) {
	exec := NewExecutor(nil)
	m, err := exec.Do(sessionRequest(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	sum := m.Session
	if sum == nil {
		t.Fatal("session request returned no summary")
	}
	if sum.Users != 3 || sum.Frames != 30 {
		t.Fatalf("summary counts: %d users, %d frames, want 3, 30", sum.Users, sum.Frames)
	}
	if sum.Latency.Count != sum.Frames || sum.Energy.Count != sum.Frames {
		t.Fatalf("sketch counts (%d, %d) != frames %d",
			sum.Latency.Count, sum.Energy.Count, sum.Frames)
	}
	if m.LatencyMs != sum.Latency.Mean() || m.EnergyMJ != sum.Energy.Mean() {
		t.Fatal("measurement scalars must carry the sketch means")
	}
	if sum.TotalEnergyMJ <= 0 {
		t.Fatalf("total energy %v", sum.TotalEnergyMJ)
	}
	if sum.Trace != nil {
		t.Fatal("trace must stay nil without IncludeTrace")
	}
}

// TestSessionShardSplitInvariant is the determinism property the
// population sweep is built on: a cohort split into shards of any size —
// via Users/FirstUser — merges to the same summary. Integer counters,
// extremes, and sketch buckets are exact; the float Sum accumulators may
// differ by round-off since addition associates differently per split.
func TestSessionShardSplitInvariant(t *testing.T) {
	exec := NewExecutor(nil)
	whole := sessionRequest(t, 12)
	wm, err := exec.Do(whole)
	if err != nil {
		t.Fatal(err)
	}

	for _, split := range [][]int{{1, 11}, {4, 4, 4}, {5, 7}} {
		merged := NewSessionSummary(0)
		var first uint64
		for _, n := range split {
			req := whole
			s := *whole.Session
			s.Users = n
			s.FirstUser = first
			req.Session = &s
			m, err := exec.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			if err := merged.Merge(m.Session); err != nil {
				t.Fatal(err)
			}
			first += uint64(n)
		}
		w, g := wm.Session, merged
		if g.Users != w.Users || g.Frames != w.Frames ||
			g.Latency.Min != w.Latency.Min || g.Latency.Max != w.Latency.Max ||
			g.Energy.Min != w.Energy.Min || g.Energy.Max != w.Energy.Max ||
			g.MinSoC != w.MinSoC || g.PeakTempC != w.PeakTempC ||
			g.ThrottledFrames != w.ThrottledFrames || g.Depleted != w.Depleted {
			t.Fatalf("split %v diverged from whole cohort:\n got %+v\nwant %+v", split, g, w)
		}
		if len(g.Latency.Buckets) != len(w.Latency.Buckets) {
			t.Fatalf("split %v: bucket sets differ", split)
		}
		for i, n := range w.Latency.Buckets {
			if g.Latency.Buckets[i] != n {
				t.Fatalf("split %v: bucket %d count %d, want %d", split, i, g.Latency.Buckets[i], n)
			}
		}
		// Float sums associate differently per split; round-off only.
		if rel := relDiff(g.TotalEnergyMJ, w.TotalEnergyMJ); rel > 1e-12 {
			t.Fatalf("split %v: total energy off by %v", split, rel)
		}
		if rel := relDiff(g.Latency.Sum, w.Latency.Sum); rel > 1e-12 {
			t.Fatalf("split %v: latency sum off by %v", split, rel)
		}
	}
}

func relDiff(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

// TestUserSeedGlobal pins the per-user seed derivation to the global user
// index: distinct users draw distinct streams, and the same (base, user)
// always derives the same seed regardless of which shard asks.
func TestUserSeedGlobal(t *testing.T) {
	seen := map[int64]uint64{}
	for u := uint64(0); u < 1000; u++ {
		s := UserSeed(42, u)
		if prev, dup := seen[s]; dup {
			t.Fatalf("users %d and %d collide on seed %d", prev, u, s)
		}
		seen[s] = u
	}
	if UserSeed(42, 7) != UserSeed(42, 7) {
		t.Fatal("UserSeed must be a pure function")
	}
	if UserSeed(42, 7) == UserSeed(43, 7) {
		t.Fatal("different base seeds must derive different user seeds")
	}
}

func TestSessionIncludeTrace(t *testing.T) {
	exec := NewExecutor(nil)
	req := sessionRequest(t, 1)
	req.Session.IncludeTrace = true
	m, err := exec.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Session.Trace) != 10 {
		t.Fatalf("trace length %d, want 10", len(m.Session.Trace))
	}
	// Trace retention is single-user only: a population shard asking for
	// traces would defeat the flat-memory contract.
	req.Session.Users = 2
	if _, err := exec.Do(req); err == nil {
		t.Fatal("IncludeTrace with 2 users must error")
	}
}

func TestSessionRequestWire(t *testing.T) {
	th := session.DefaultThermal()
	req := sessionRequest(t, 5, pipeline.WithMode(pipeline.ModeRemote))
	req.Session.Thermal = &th
	req.Session.BatteryMAh = 4000
	req.Session.BatteryStartSoC = 0.5
	req.Session.Mobility = &MobilityConfig{
		SpeedMps:       1.4,
		StepMs:         50,
		ZoneTechnology: wireless.WiFi5GHz,
		ZoneRadiusM:    40,
		Kind:           mobility.HandoffVertical,
	}
	if err := req.WireSafe(); err != nil {
		t.Fatalf("WireSafe: %v", err)
	}

	// Round-trip through the worker wire framing and execute both sides:
	// the reconstructed request must reproduce the original bit for bit.
	var buf bytes.Buffer
	if err := WriteFrame(&buf, req); err != nil {
		t.Fatal(err)
	}
	var back Request
	if err := ReadFrame(&buf, &back); err != nil {
		t.Fatal(err)
	}
	a, err := NewExecutor(nil).Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewExecutor(nil).Do(back)
	if err != nil {
		t.Fatal(err)
	}
	var ab, bb bytes.Buffer
	if err := WriteFrame(&ab, a); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&bb, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab.Bytes(), bb.Bytes()) {
		t.Fatalf("wire round trip changed the session result:\n%s\nvs\n%s", ab.Bytes(), bb.Bytes())
	}

	fpA, err := req.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fpB, err := back.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fpA != fpB {
		t.Fatalf("fingerprint changed across the wire:\n%s\nvs\n%s", fpA, fpB)
	}
}

// TestSessionFingerprintSeparatesConfigs checks the cache key covers the
// session payload: same scenario, different session config → different
// fingerprints; Seed stays excluded like every other op.
func TestSessionFingerprintSeparatesConfigs(t *testing.T) {
	a := sessionRequest(t, 5)
	b := sessionRequest(t, 5)
	b.Session.Frames = 20
	fpA, err := a.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fpB, err := b.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fpA == fpB {
		t.Fatal("different session configs must not share a fingerprint")
	}
	c := sessionRequest(t, 5)
	c.Seed = 999
	fpC, err := c.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fpA != fpC {
		t.Fatal("fingerprint must exclude the seed")
	}
}

func TestSessionConfigValidation(t *testing.T) {
	base := func() Request { return sessionRequest(t, 1) }
	cases := []struct {
		name   string
		mutate func(*Request)
	}{
		{"nil session", func(r *Request) { r.Session = nil }},
		{"zero frames", func(r *Request) { r.Session.Frames = 0 }},
		{"negative users", func(r *Request) { r.Session.Users = -1 }},
		{"negative battery", func(r *Request) { r.Session.BatteryMAh = -1 }},
		{"SoC above full", func(r *Request) { r.Session.BatteryStartSoC = 1.5 }},
		{"alpha out of range", func(r *Request) { r.Session.SketchAlpha = 1 }},
		{"trace on cohort", func(r *Request) { r.Session.Users = 3; r.Session.IncludeTrace = true }},
		{"bad walk", func(r *Request) {
			r.Session.Mobility = &MobilityConfig{SpeedMps: -1, StepMs: 50, ZoneRadiusM: 10}
		}},
		{"bad zone", func(r *Request) {
			r.Session.Mobility = &MobilityConfig{SpeedMps: 1, StepMs: 50, ZoneRadiusM: 0}
		}},
	}
	for _, tc := range cases {
		req := base()
		tc.mutate(&req)
		if _, err := NewExecutor(nil).Do(req); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
		if err := req.WireSafe(); err == nil {
			t.Errorf("%s: WireSafe must reject it too", tc.name)
		}
	}
}

func TestSessionCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := sessionRequest(t, 100000)
	req.Session.Frames = 1000
	if _, err := NewExecutor(nil).DoContext(ctx, req); err == nil {
		t.Fatal("canceled context must abort the session block")
	}
}

func TestSessionSummaryMergeEmpty(t *testing.T) {
	s := NewSessionSummary(0)
	if err := s.Merge(nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Merge(NewSessionSummary(0.5)); err != nil {
		t.Fatal("merging an empty summary must ignore alpha")
	}
	if s.Users != 0 || s.MinSoC != 1 {
		t.Fatalf("empty merges must not change the accumulator: %+v", s)
	}
}
