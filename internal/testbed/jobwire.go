package testbed

import (
	"encoding/json"
	"fmt"
)

// JobProtocolVersion identifies the WireJob/WireResult message family of
// the sweep-as-a-service protocol: the frames a submit client and a job
// server exchange after the WireHello handshake. It is versioned
// independently of ProtocolVersion (the measurement frames) so the fleet
// protocol and the job protocol can evolve separately; bump it on any
// incompatible job-frame change.
const JobProtocolVersion = 1

// ServiceJobs is the WireHello.Service value announced by a job server
// (`xrperf server`), distinguishing it from a worker-fleet node
// (`xrperf serve`, which announces the empty default). A submit client
// dialing a fleet node by mistake sees the wrong service marker and
// fails with a clear error instead of a confusing protocol breakdown.
const ServiceJobs = "jobs"

// JobsHello returns a job server's handshake frame: the same version
// pair every peer checks, plus the jobs service marker.
func JobsHello() WireHello {
	h := Hello()
	h.Service = ServiceJobs
	return h
}

// Job-frame operations.
const (
	// JobOpRun submits one job for execution; the empty op means run.
	JobOpRun = "run"
	// JobOpStats requests the server's introspection snapshot (queue
	// depth, cache counters, observed arrival/service rates) without
	// running anything.
	JobOpStats = "stats"
)

// WireJob is the one frame a client sends after the handshake: the
// job-protocol version, the requested operation, and — for run — the
// job document itself. The payload is carried opaquely (the job schema
// lives in internal/job, above this package) so the wire layer never
// constrains what a job can say.
type WireJob struct {
	// Proto is the client's JobProtocolVersion.
	Proto int `json:"proto"`
	// Op selects the operation; empty means JobOpRun.
	Op string `json:"op,omitempty"`
	// Codec selects the encoding of the server's WireResult stream; empty
	// means JSON. A client picks it from the server hello's codec
	// advertisement, so an old client (which never sets it) and an old
	// server (which ignores it) interoperate unchanged — WireJob itself,
	// like every handshake frame, is always JSON.
	Codec string `json:"codec,omitempty"`
	// Job is the job document (internal/job.Job JSON) for run ops.
	Job json.RawMessage `json:"job,omitempty"`
}

// Check validates the client's job-protocol version against this binary.
func (j WireJob) Check() error {
	if j.Proto != JobProtocolVersion {
		return fmt.Errorf("%w: client speaks job protocol %d, this server speaks %d",
			ErrVersionMismatch, j.Proto, JobProtocolVersion)
	}
	return nil
}

// WireResult kinds: every server→client frame after the handshake is a
// WireResult, and Kind says how to interpret it.
const (
	// ResultChunk carries one chunk of the job's canonical output; the
	// client writes chunks to stdout in arrival order, and their
	// concatenation is byte-identical to the one-shot CLI's output.
	ResultChunk = "chunk"
	// ResultDone closes a successful job stream.
	ResultDone = "done"
	// ResultErr closes a failed job stream; Err carries the message,
	// which for an invalid job is the exact text the one-shot CLI would
	// print for the same spec.
	ResultErr = "err"
	// ResultBusy is the admission-control rejection (the 429 of this
	// protocol): the server's queue is full and the job was never
	// admitted. The client should retry later.
	ResultBusy = "busy"
	// ResultStats answers a JobOpStats request; Stats carries the
	// server's introspection snapshot as JSON.
	ResultStats = "stats"
)

// WireResult is one streamed server→client frame of a job exchange.
type WireResult struct {
	// Kind discriminates the frame (Result* constants).
	Kind string `json:"kind"`
	// Chunk is the output payload for ResultChunk frames.
	Chunk string `json:"chunk,omitempty"`
	// Err is the failure or rejection message for ResultErr/ResultBusy.
	Err string `json:"err,omitempty"`
	// Stats is the introspection snapshot for ResultStats frames.
	Stats json.RawMessage `json:"stats,omitempty"`
}
