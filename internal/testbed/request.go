package testbed

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"

	"repro/internal/energy"
	"repro/internal/latency"
	"repro/internal/pipeline"
	"repro/internal/stats"
)

// RequestOp selects what an execution backend does with a Request.
type RequestOp string

const (
	// OpMeasure samples the bench's hidden physics with monitor noise —
	// the ground-truth measurement of the paper's controlled trials.
	OpMeasure RequestOp = "measure"
	// OpAnalyze evaluates the analytical models (paper coefficients or a
	// re-fitted bundle identified by FitConfig) on the scenario,
	// noise-free.
	OpAnalyze RequestOp = "analyze"
)

// ErrRequest indicates an invalid or unserializable request.
var ErrRequest = errors.New("testbed: invalid request")

// FitConfig identifies a re-fitted model bundle by the inputs that fully
// determine it: fitting is a pure function of the bench seed and the
// dataset sizes, so any process can reconstruct the exact same models
// from these three numbers.
type FitConfig struct {
	// Seed is the bench seed the datasets are generated from.
	Seed int64 `json:"seed"`
	// TrainRows and TestRows are the Section VII dataset sizes.
	TrainRows int `json:"train_rows"`
	TestRows  int `json:"test_rows"`
}

// Request is one serializable unit of backend work: everything a worker —
// in this process or a subprocess — needs to reproduce the observation
// bit for bit. A measure request depends only on (Scenario, Trials, Seed,
// NoiseRel); an analyze request only on (Scenario, Fit). Neither depends
// on process state, which is what lets sweep backends dispatch requests
// anywhere and lets a cache memoize them by content.
type Request struct {
	// Op selects the work kind; empty means OpMeasure.
	Op RequestOp `json:"op,omitempty"`
	// Scenario is the operating configuration under test.
	Scenario *pipeline.Scenario `json:"scenario"`
	// Trials is the measurement-averaging count (measure only).
	Trials int `json:"trials,omitempty"`
	// Seed is the monitor-noise seed (measure only).
	Seed int64 `json:"seed,omitempty"`
	// NoiseRel is the relative monitor noise (measure only). It is
	// authoritative: 0 means a noise-free monitor, never "the executing
	// bench's default" — a fallback would resolve differently in a
	// worker subprocess than in the caller's bench and break the
	// byte-identical-across-backends contract.
	NoiseRel float64 `json:"noise_rel,omitempty"`
	// Fit identifies the re-fitted model bundle for analyze and session
	// requests; nil means the paper's published coefficients.
	Fit *FitConfig `json:"fit,omitempty"`
	// Session describes the session workload (session only); the
	// scenario still rides in Scenario and Seed doubles as the base
	// session seed, content-derived exactly like measurement seeds.
	Session *SessionConfig `json:"session,omitempty"`
}

func (r Request) op() RequestOp {
	if r.Op == "" {
		return OpMeasure
	}
	return r.Op
}

// Fingerprint returns the request's canonical content key: the JSON
// encoding of every field except Seed (struct-order keys, shortest
// round-trip floats, no maps — so the bytes are deterministic). Two
// requests with equal fingerprints describe the same work on the same
// inputs; a memoizing cache keys on (Fingerprint, Seed). Requests that
// are not wire-safe have no fingerprint: a process-local path-loss
// model's behaviour is not captured by its JSON encoding, so two
// distinct models could otherwise collide on one key and a cache would
// serve the wrong measurement. Such requests execute uncached, on
// in-process backends only.
func (r Request) Fingerprint() (string, error) {
	if err := r.WireSafe(); err != nil {
		return "", err
	}
	c := r
	c.Op = r.op()
	c.Seed = 0
	b, err := json.Marshal(c)
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrRequest, err)
	}
	return string(b), nil
}

// ContentSeed derives the request's deterministic monitor-noise seed from
// a base seed and the request's own content: FNV-1a over the fingerprint,
// mixed with base through a SplitMix64 finalizer. The derivation depends
// on nothing but (base, content), so the same grid cell requested by two
// different experiments — or two different backends — draws the same
// noise stream and yields the same observation, making cross-experiment
// memoization sound.
func (r Request) ContentSeed(base int64) (int64, error) {
	fp, err := r.Fingerprint()
	if err != nil {
		return 0, err
	}
	h := fnv.New64a()
	h.Write([]byte(fp))
	z := uint64(base) ^ h.Sum64()
	z += 0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z), nil
}

// WireSafe reports whether the request survives a JSON round trip to a
// worker subprocess. Path-loss models are Go interfaces and therefore
// process-local; scenarios carrying one must run on an in-process
// backend.
func (r Request) WireSafe() error {
	if r.Scenario == nil {
		return fmt.Errorf("%w: nil scenario", ErrRequest)
	}
	if r.Scenario.EdgeLink.Loss != nil {
		return fmt.Errorf("%w: edge-link path-loss model is process-local and cannot cross a worker boundary", ErrRequest)
	}
	if r.Scenario.Coop != nil && r.Scenario.Coop.Link.Loss != nil {
		return fmt.Errorf("%w: cooperation-link path-loss model is process-local and cannot cross a worker boundary", ErrRequest)
	}
	if r.op() == OpSession {
		if err := r.Session.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Do executes one measure request against the bench. The observation
// depends only on the request's content and seed — never on what the
// bench measured before — so it is safe for concurrent use and
// reproducible in any process with the same (deterministic) physics.
func (b *Bench) Do(req Request) (Measurement, error) {
	if op := req.op(); op != OpMeasure {
		return Measurement{}, fmt.Errorf("%w: bench cannot execute op %q", ErrRequest, op)
	}
	if req.Scenario == nil {
		return Measurement{}, fmt.Errorf("%w: nil scenario", ErrRequest)
	}
	return b.measureFramesNoise(req.Scenario, req.Trials, stats.NewRNG(req.Seed), req.NoiseRel)
}

// Executor evaluates requests with process-local resources: a bench for
// measure requests and a lazily fitted, memoized model bundle per
// FitConfig for analyze requests. It is safe for concurrent use.
type Executor struct {
	bench *Bench

	mu   sync.Mutex
	fits map[FitConfig]fitEntry
}

type fitEntry struct {
	models energy.Models
	err    error
}

// NewExecutor builds an executor; a nil bench gets a default one (the
// hidden physics is deterministic, so any two default benches measure
// identically for seeded requests).
func NewExecutor(bench *Bench) *Executor {
	if bench == nil {
		bench = NewBench(0)
	}
	return &Executor{bench: bench, fits: make(map[FitConfig]fitEntry)}
}

// Do executes one request.
//
//xrlint:allow ctxfirst -- compatibility wrapper; cancelable callers use DoContext
func (e *Executor) Do(req Request) (Measurement, error) {
	return e.DoContext(context.Background(), req)
}

// DoContext executes one request, aborting promptly when ctx is canceled.
// Measure and analyze requests are single frames and complete regardless;
// session requests — potentially thousands of users × frames — check the
// context every frame, which is what lets a dispatcher kill an in-flight
// population shard mid-run.
func (e *Executor) DoContext(ctx context.Context, req Request) (Measurement, error) {
	switch req.op() {
	case OpMeasure:
		return e.bench.Do(req)
	case OpAnalyze:
		return e.analyze(req)
	case OpSession:
		return e.runSessions(ctx, req)
	default:
		return Measurement{}, fmt.Errorf("%w: unknown op %q", ErrRequest, req.Op)
	}
}

// DoBatch executes a batch of requests sequentially and reports each
// outcome in a WireItem — request-level failures are carried per item,
// never failing the batch — after resolving every distinct FitConfig in
// the batch exactly once. The per-batch prefetch means analyze-heavy
// batches take the refit mutex once per distinct config instead of once
// per cell; the memoized map still backs it, so a config refits at most
// once per executor lifetime regardless of batching.
func (e *Executor) DoBatch(ctx context.Context, reqs []Request) []WireItem {
	var prefetch map[FitConfig]fitEntry
	for _, r := range reqs {
		if r.op() != OpAnalyze || r.Fit == nil {
			continue
		}
		if _, ok := prefetch[*r.Fit]; ok {
			continue
		}
		if prefetch == nil {
			prefetch = make(map[FitConfig]fitEntry)
		}
		models, err := e.models(r.Fit)
		prefetch[*r.Fit] = fitEntry{models: models, err: err}
	}
	items := make([]WireItem, len(reqs))
	for i, r := range reqs {
		var m Measurement
		var err error
		if r.op() == OpAnalyze {
			m, err = e.analyzePrefetched(r, prefetch)
		} else {
			m, err = e.DoContext(ctx, r)
		}
		if err != nil {
			items[i].Err = err.Error()
		} else {
			items[i].M = m
		}
	}
	return items
}

// analyze evaluates the analytical model bundle on the scenario and
// reports the noise-free breakdowns in Measurement form.
func (e *Executor) analyze(req Request) (Measurement, error) {
	return e.analyzePrefetched(req, nil)
}

// analyzePrefetched is analyze against a batch-local bundle map;
// configs missing from it (or a nil map) resolve through the memoized
// executor path.
func (e *Executor) analyzePrefetched(req Request, prefetch map[FitConfig]fitEntry) (Measurement, error) {
	if req.Scenario == nil {
		return Measurement{}, fmt.Errorf("%w: nil scenario", ErrRequest)
	}
	models, err := e.resolveModels(req.Fit, prefetch)
	if err != nil {
		return Measurement{}, err
	}
	eb, lb, err := models.FrameEnergy(req.Scenario)
	if err != nil {
		return Measurement{}, fmt.Errorf("analyze: %w", err)
	}
	return Measurement{
		LatencyMs: lb.Total,
		EnergyMJ:  eb.Total,
		Latency:   lb,
		Energy:    eb,
	}, nil
}

// resolveModels consults the batch-local prefetch before the memoized
// executor map.
func (e *Executor) resolveModels(fc *FitConfig, prefetch map[FitConfig]fitEntry) (energy.Models, error) {
	if fc != nil && prefetch != nil {
		if ent, ok := prefetch[*fc]; ok {
			return ent.models, ent.err
		}
	}
	return e.models(fc)
}

// models resolves the bundle for a fit config, refitting at most once per
// distinct config per executor. Fitting is deterministic in the config,
// so every process resolves the same coefficients.
func (e *Executor) models(fc *FitConfig) (energy.Models, error) {
	if fc == nil {
		return energy.PaperModels(), nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if ent, ok := e.fits[*fc]; ok {
		return ent.models, ent.err
	}
	ent := fitEntry{}
	fitted, err := NewBench(fc.Seed).FitModels(fc.TrainRows, fc.TestRows)
	if err != nil {
		ent.err = fmt.Errorf("refit %+v: %w", *fc, err)
	} else {
		lm := latency.Models{
			Resource:   fitted.Resource,
			Encoder:    fitted.Encoder,
			Complexity: fitted.Complexity,
		}
		ent.models = energy.Models{Latency: lm, Power: fitted.Power}
	}
	e.fits[*fc] = ent
	return ent.models, ent.err
}
