package testbed

import (
	"errors"
	"fmt"

	"repro/internal/energy"
	"repro/internal/latency"
	"repro/internal/pipeline"
	"repro/internal/stats"
)

// MonsoonSamplePeriodMs is the Monsoon Power Monitor's sampling cadence
// (one sample every 0.2 ms, Section VII); exposed for trace generation.
const MonsoonSamplePeriodMs = 0.2

// DefaultNoiseRel is the default relative measurement noise of the
// simulated monitor. The value is tuned so the re-fitted regressions land
// near (slightly above) the paper's reported R² band of 0.79–0.87; see
// EXPERIMENTS.md.
const DefaultNoiseRel = 0.08

// Bench is the simulated measurement bench: hidden physics plus a noisy
// monitor. It plays the role of the instrumented testbed of Fig. 3.
type Bench struct {
	// Physics is the hidden device behaviour.
	Physics *Physics
	// NoiseRel is the relative measurement noise (multiplicative
	// Gaussian).
	NoiseRel float64

	rng *stats.RNG
}

// NewBench constructs a bench with the default physics and noise.
func NewBench(seed int64) *Bench {
	return &Bench{
		Physics:  NewPhysics(),
		NoiseRel: DefaultNoiseRel,
		rng:      stats.NewRNG(seed),
	}
}

// Measurement is one frame's ground-truth observation.
type Measurement struct {
	// LatencyMs is the measured end-to-end latency.
	LatencyMs float64
	// EnergyMJ is the measured end-to-end energy.
	EnergyMJ float64
	// Latency is the noise-free per-segment breakdown (the physics'
	// internal truth, useful for diagnostics).
	Latency latency.Breakdown
	// Energy is the noise-free energy breakdown.
	Energy energy.Breakdown
	// Session is the session-workload summary (OpSession requests only);
	// the scalar fields above carry its sketch means so measurement-only
	// consumers still see meaningful numbers.
	Session *SessionSummary `json:",omitempty"`
}

// MeasureFrame runs one frame of the scenario on the hidden physics and
// returns the noisy observation. It draws from the bench's shared monitor
// stream and is therefore not safe for concurrent use; parallel sweeps
// use MeasureFramesSeeded instead.
func (b *Bench) MeasureFrame(sc *pipeline.Scenario) (Measurement, error) {
	return b.measureFrame(sc, b.rng, b.NoiseRel)
}

// measureFrame samples the hidden physics once, jittered by rng with the
// given relative noise.
func (b *Bench) measureFrame(sc *pipeline.Scenario, rng *stats.RNG, noiseRel float64) (Measurement, error) {
	if sc == nil {
		return Measurement{}, errors.New("testbed: nil scenario")
	}
	em := b.Physics.TrueEnergyModels(sc.Device.Name)
	eb, lb, err := em.FrameEnergy(sc)
	if err != nil {
		return Measurement{}, fmt.Errorf("true physics: %w", err)
	}
	return Measurement{
		LatencyMs: rng.Jitter(lb.Total, noiseRel),
		EnergyMJ:  rng.Jitter(eb.Total, noiseRel),
		Latency:   lb,
		Energy:    eb,
	}, nil
}

// MeasureFrames averages n frame measurements, mimicking the repeated
// controlled trials of Section VII. The mean suppresses monitor noise by
// √n while systematic physics remains. It draws from the bench's shared
// monitor stream and is therefore not safe for concurrent use.
func (b *Bench) MeasureFrames(sc *pipeline.Scenario, n int) (Measurement, error) {
	return b.measureFramesNoise(sc, n, b.rng, b.NoiseRel)
}

// MeasureFramesSeeded averages n frame measurements whose monitor noise is
// drawn from a fresh RNG seeded with seed, independent of the bench's
// shared stream. The observation depends only on (scenario, n, seed) — not
// on what was measured before — which makes it safe for concurrent use
// across sweep workers (the hidden physics is read-only) and lets a
// parallel sweep reproduce a serial one bit-for-bit.
func (b *Bench) MeasureFramesSeeded(sc *pipeline.Scenario, n int, seed int64) (Measurement, error) {
	return b.measureFramesNoise(sc, n, stats.NewRNG(seed), b.NoiseRel)
}

// measureFramesNoise averages n measurements jittered by rng at the given
// relative noise level.
func (b *Bench) measureFramesNoise(sc *pipeline.Scenario, n int, rng *stats.RNG, noiseRel float64) (Measurement, error) {
	if n <= 0 {
		return Measurement{}, fmt.Errorf("testbed: trial count %d", n)
	}
	var acc Measurement
	for i := 0; i < n; i++ {
		m, err := b.measureFrame(sc, rng, noiseRel)
		if err != nil {
			return Measurement{}, err
		}
		acc.LatencyMs += m.LatencyMs
		acc.EnergyMJ += m.EnergyMJ
		acc.Latency = m.Latency
		acc.Energy = m.Energy
	}
	acc.LatencyMs /= float64(n)
	acc.EnergyMJ /= float64(n)
	return acc, nil
}
