package testbed

import (
	"errors"
	"fmt"

	"repro/internal/cnn"
	"repro/internal/codec"
	"repro/internal/device"
	"repro/internal/regress"
	"repro/internal/stats"
)

// Paper-scale dataset sizes (Section VII): 119,465 training rows and
// 36,083 test rows across the regression datasets.
const (
	PaperTrainRows = 119465
	PaperTestRows  = 36083
)

// ErrFit indicates a fitting failure.
var ErrFit = errors.New("testbed: fit failed")

// ModelFitReport summarizes one regression model's fit.
type ModelFitReport struct {
	// Name identifies the model (resource, power, encoder, cnn).
	Name string
	// PaperR2 is the R² the paper reports for this regression.
	PaperR2 float64
	// TrainR2 is the achieved training R².
	TrainR2 float64
	// TestR2 is the held-out R² on the test devices.
	TestR2 float64
	// TestMAPE is the held-out mean absolute percentage error.
	TestMAPE float64
	// CICoverage is the fraction of held-out residuals inside the 95%
	// confidence band (the paper's "95% confidence boundary").
	CICoverage float64
	// TrainRows and TestRows count the observations used.
	TrainRows int
	TestRows  int
}

// FitReport aggregates the four regression fits.
type FitReport struct {
	Resource   ModelFitReport
	Power      ModelFitReport
	Encoder    ModelFitReport
	Complexity ModelFitReport
}

// FitResult carries the re-fitted concrete models ready to plug into the
// latency/energy analysis, plus the fit diagnostics.
type FitResult struct {
	// Resource is the re-fitted Eq. (3).
	Resource device.ResourceModel
	// Power is the re-fitted Eq. (21).
	Power device.PowerModel
	// Encoder is the re-fitted Eq. (10) with the measured γ of Eq. (14).
	Encoder codec.EncoderModel
	// Complexity is the re-fitted Eq. (12).
	Complexity cnn.ComplexityModel
	// Report holds the diagnostics.
	Report FitReport
}

// splitShares apportions the total dataset across the four regressions.
var splitShares = struct {
	resource, power, encoder float64
}{resource: 0.40, power: 0.40, encoder: 0.15}

// FitModels generates synthetic training/test datasets from the bench's
// hidden physics following the paper's protocol — train on devices XR1,
// XR3, XR5, XR6; test on XR2, XR4, XR7 — and fits the four regression
// models. trainRows/testRows control total dataset size (use
// PaperTrainRows/PaperTestRows for paper scale).
func (b *Bench) FitModels(trainRows, testRows int) (*FitResult, error) {
	if trainRows < 400 || testRows < 100 {
		return nil, fmt.Errorf("%w: need at least 400/100 rows, have %d/%d",
			ErrFit, trainRows, testRows)
	}
	out := &FitResult{}

	nRes := int(float64(trainRows) * splitShares.resource)
	nPow := int(float64(trainRows) * splitShares.power)
	nEnc := int(float64(trainRows) * splitShares.encoder)
	nCNN := trainRows - nRes - nPow - nEnc
	tRes := int(float64(testRows) * splitShares.resource)
	tPow := int(float64(testRows) * splitShares.power)
	tEnc := int(float64(testRows) * splitShares.encoder)
	tCNN := testRows - tRes - tPow - tEnc

	if err := b.fitResource(out, nRes, tRes); err != nil {
		return nil, fmt.Errorf("resource: %w", err)
	}
	if err := b.fitPower(out, nPow, tPow); err != nil {
		return nil, fmt.Errorf("power: %w", err)
	}
	if err := b.fitEncoder(out, nEnc, tEnc); err != nil {
		return nil, fmt.Errorf("encoder: %w", err)
	}
	if err := b.fitComplexity(out, nCNN, tCNN); err != nil {
		return nil, fmt.Errorf("cnn complexity: %w", err)
	}
	return out, nil
}

// branchTerms is the 6-term design of the two-branch quadratic shared by
// Eq. (3) and Eq. (21): features x = [fc, fg, ωc].
func branchTerms() []regress.Term {
	return []regress.Term{
		{Name: "wc", Eval: func(x []float64) float64 { return x[2] }},
		{Name: "wc*fc", Eval: func(x []float64) float64 { return x[2] * x[0] }},
		{Name: "wc*fc^2", Eval: func(x []float64) float64 { return x[2] * x[0] * x[0] }},
		{Name: "wg", Eval: func(x []float64) float64 { return 1 - x[2] }},
		{Name: "wg*fg", Eval: func(x []float64) float64 { return (1 - x[2]) * x[1] }},
		{Name: "wg*fg^2", Eval: func(x []float64) float64 { return (1 - x[2]) * x[1] * x[1] }},
	}
}

// sampleClockRows draws (fc, fg, ωc) rows over the given device split and
// measures target through the hidden physics with monitor noise.
func (b *Bench) sampleClockRows(devs []device.Device, n int,
	measure func(dev string, fc, fg, wc float64) (float64, error),
) (xs [][]float64, ys []float64, err error) {
	xs = make([][]float64, 0, n)
	ys = make([]float64, 0, n)
	for i := 0; i < n; i++ {
		d := devs[b.rng.Intn(len(devs))]
		fc := 0.8 + (d.CPUGHz-0.8)*b.rng.Float64()
		fg := 0.4 + (d.GPUGHz-0.4+1e-6)*b.rng.Float64()
		if fg <= 0 {
			fg = 0.4
		}
		wc := b.rng.Float64()
		v, err := measure(d.Name, fc, fg, wc)
		if err != nil {
			return nil, nil, err
		}
		xs = append(xs, []float64{fc, fg, wc})
		ys = append(ys, b.rng.Jitter(v, b.NoiseRel))
	}
	return xs, ys, nil
}

func (b *Bench) fitResource(out *FitResult, nTrain, nTest int) error {
	measure := func(dev string, fc, fg, wc float64) (float64, error) {
		return b.Physics.TrueResource(dev, fc, fg, wc)
	}
	trainX, trainY, err := b.sampleClockRows(device.TrainDevices(), nTrain, measure)
	if err != nil {
		return err
	}
	testX, testY, err := b.sampleClockRows(device.TestDevices(), nTest, measure)
	if err != nil {
		return err
	}
	fit, err := regress.FitOLS(branchTerms(), trainX, trainY)
	if err != nil {
		return err
	}
	r2, _, mape, err := fit.Evaluate(testX, testY)
	if err != nil {
		return err
	}
	cov, err := fit.WithinCI(testX, testY, 0.95)
	if err != nil {
		return err
	}
	out.Resource = device.ResourceModel{
		CPU:         device.ResourceCoeffs{A0: fit.Coef[0], A2: fit.Coef[1], A1: fit.Coef[2]},
		GPU:         device.ResourceCoeffs{A0: fit.Coef[3], A2: fit.Coef[4], A1: fit.Coef[5]},
		R2:          fit.R2,
		MinResource: 1.0,
	}
	out.Report.Resource = ModelFitReport{
		Name: "resource (Eq. 3)", PaperR2: 0.87,
		TrainR2: fit.R2, TestR2: r2, TestMAPE: mape, CICoverage: cov,
		TrainRows: nTrain, TestRows: nTest,
	}
	return nil
}

func (b *Bench) fitPower(out *FitResult, nTrain, nTest int) error {
	measure := func(dev string, fc, fg, wc float64) (float64, error) {
		return b.Physics.TruePower(dev, fc, fg, wc)
	}
	trainX, trainY, err := b.sampleClockRows(device.TrainDevices(), nTrain, measure)
	if err != nil {
		return err
	}
	testX, testY, err := b.sampleClockRows(device.TestDevices(), nTest, measure)
	if err != nil {
		return err
	}
	fit, err := regress.FitOLS(branchTerms(), trainX, trainY)
	if err != nil {
		return err
	}
	r2, _, mape, err := fit.Evaluate(testX, testY)
	if err != nil {
		return err
	}
	cov, err := fit.WithinCI(testX, testY, 0.95)
	if err != nil {
		return err
	}
	// Eq. (21) sign convention: P = B1·f − B2·f² − B0 per branch.
	out.Power = device.PowerModel{
		CPU:             device.PowerCoeffs{B0: -fit.Coef[0], B1: fit.Coef[1], B2: -fit.Coef[2]},
		GPU:             device.PowerCoeffs{B0: -fit.Coef[3], B1: fit.Coef[4], B2: -fit.Coef[5]},
		R2:              fit.R2,
		BasePowerW:      device.DefaultBasePowerW,
		ThermalFraction: device.DefaultThermalFraction,
		MinPowerW:       0.2,
	}
	out.Report.Power = ModelFitReport{
		Name: "power (Eq. 21)", PaperR2: 0.863,
		TrainR2: fit.R2, TestR2: r2, TestMAPE: mape, CICoverage: cov,
		TrainRows: nTrain, TestRows: nTest,
	}
	return nil
}

// encoderTerms is the 7-term linear design of Eq. (10): features
// x = [ni, nb, bitrate, s, fps, quant].
func encoderTerms() []regress.Term {
	return []regress.Term{
		regress.Intercept(),
		regress.Linear("ni", 0),
		regress.Linear("nb", 1),
		regress.Linear("bitrate", 2),
		regress.Linear("s", 3),
		regress.Linear("fps", 4),
		regress.Linear("quant", 5),
	}
}

func (b *Bench) sampleEncoderRows(n int) (xs [][]float64, ys []float64, err error) {
	xs = make([][]float64, 0, n)
	ys = make([]float64, 0, n)
	for i := 0; i < n; i++ {
		p := codec.EncodingParams{
			IFrameInterval: 10 + 50*b.rng.Float64(),
			BFrameInterval: 4 * b.rng.Float64(),
			BitrateMbps:    1 + 9*b.rng.Float64(),
			FrameSizePx2:   300 + 400*b.rng.Float64(),
			FPS:            15 + 45*b.rng.Float64(),
			Quantization:   10 + 35*b.rng.Float64(),
		}
		w, err := b.Physics.TrueEncoderWork(p)
		if err != nil {
			return nil, nil, err
		}
		xs = append(xs, []float64{p.IFrameInterval, p.BFrameInterval,
			p.BitrateMbps, p.FrameSizePx2, p.FPS, p.Quantization})
		ys = append(ys, b.rng.Jitter(w, b.NoiseRel))
	}
	return xs, ys, nil
}

func (b *Bench) fitEncoder(out *FitResult, nTrain, nTest int) error {
	trainX, trainY, err := b.sampleEncoderRows(nTrain)
	if err != nil {
		return err
	}
	testX, testY, err := b.sampleEncoderRows(nTest)
	if err != nil {
		return err
	}
	fit, err := regress.FitOLS(encoderTerms(), trainX, trainY)
	if err != nil {
		return err
	}
	r2, _, mape, err := fit.Evaluate(testX, testY)
	if err != nil {
		return err
	}
	cov, err := fit.WithinCI(testX, testY, 0.95)
	if err != nil {
		return err
	}

	// Measure the decode discount γ (Eq. 14): the empirical mean of
	// noisy decode/encode latency ratios on the same device.
	ratios := make([]float64, 0, 200)
	for i := 0; i < 200; i++ {
		ratios = append(ratios, b.rng.Jitter(trueDecodeDiscount, b.NoiseRel))
	}
	gamma, err := stats.Mean(ratios)
	if err != nil {
		return err
	}

	out.Encoder = codec.EncoderModel{
		Coeffs: codec.EncoderCoeffs{
			K0: fit.Coef[0], Ki: fit.Coef[1], Kb: fit.Coef[2],
			Kbit: fit.Coef[3], Ks: fit.Coef[4], Kfps: fit.Coef[5],
			Kq: fit.Coef[6],
		},
		R2:             fit.R2,
		DecodeDiscount: gamma,
		MinWork:        1,
	}
	out.Report.Encoder = ModelFitReport{
		Name: "encoder (Eq. 10)", PaperR2: 0.79,
		TrainR2: fit.R2, TestR2: r2, TestMAPE: mape, CICoverage: cov,
		TrainRows: nTrain, TestRows: nTest,
	}
	return nil
}

// complexityTerms is the 4-term linear design of Eq. (12): features
// x = [depth, sizeMB, depthScale].
func complexityTerms() []regress.Term {
	return []regress.Term{
		regress.Intercept(),
		regress.Linear("d_cnn", 0),
		regress.Linear("s_cnn", 1),
		regress.Linear("d_scale", 2),
	}
}

func (b *Bench) sampleComplexityRows(n int) (xs [][]float64, ys []float64, err error) {
	catalog := cnn.Catalog()
	xs = make([][]float64, 0, n)
	ys = make([]float64, 0, n)
	for i := 0; i < n; i++ {
		m := catalog[b.rng.Intn(len(catalog))]
		c, err := b.Physics.TrueCNNComplexity(m.Depth, m.SizeMB, m.DepthScale)
		if err != nil {
			return nil, nil, err
		}
		xs = append(xs, []float64{float64(m.Depth), m.SizeMB, m.DepthScale})
		ys = append(ys, b.rng.Jitter(c, b.NoiseRel))
	}
	return xs, ys, nil
}

func (b *Bench) fitComplexity(out *FitResult, nTrain, nTest int) error {
	trainX, trainY, err := b.sampleComplexityRows(nTrain)
	if err != nil {
		return err
	}
	testX, testY, err := b.sampleComplexityRows(nTest)
	if err != nil {
		return err
	}
	fit, err := regress.FitOLS(complexityTerms(), trainX, trainY)
	if err != nil {
		return err
	}
	r2, _, mape, err := fit.Evaluate(testX, testY)
	if err != nil {
		return err
	}
	cov, err := fit.WithinCI(testX, testY, 0.95)
	if err != nil {
		return err
	}
	out.Complexity = cnn.ComplexityModel{
		Coeffs: cnn.ComplexityCoeffs{
			C0: fit.Coef[0], Cd: fit.Coef[1], Cs: fit.Coef[2], Cscale: fit.Coef[3],
		},
		R2: fit.R2,
	}
	out.Report.Complexity = ModelFitReport{
		Name: "cnn complexity (Eq. 12)", PaperR2: 0.844,
		TrainR2: fit.R2, TestR2: r2, TestMAPE: mape, CICoverage: cov,
		TrainRows: nTrain, TestRows: nTest,
	}
	return nil
}
