package testbed

import (
	"bufio"
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"
)

func TestHelloCheck(t *testing.T) {
	if err := Hello().Check(); err != nil {
		t.Fatalf("own handshake must validate: %v", err)
	}
	for _, h := range []WireHello{
		{Protocol: ProtocolVersion + 1, Physics: PhysicsVersion},
		{Protocol: ProtocolVersion, Physics: PhysicsVersion + 1},
		{},
	} {
		err := h.Check()
		if !errors.Is(err, ErrVersionMismatch) {
			t.Fatalf("Check(%+v) = %v, want ErrVersionMismatch", h, err)
		}
		if !strings.Contains(err.Error(), "protocol") || !strings.Contains(err.Error(), "physics") {
			t.Fatalf("mismatch error not descriptive: %v", err)
		}
	}
}

// startNode runs a serve node on a loopback listener for the test's
// lifetime and returns its address.
func startNode(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- ServeListener(ctx, ln, nil) }()
	t.Cleanup(func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("ServeListener: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("ServeListener did not return after cancel")
		}
	})
	return ln.Addr().String()
}

// TestServeListenerHandshakeAndMeasure drives the node end of the
// network protocol with a raw client: the connection opens with a valid
// handshake, good requests answer with the bench's exact measurement,
// request-level failures answer in-band without killing the connection,
// and a second connection works (the executor is shared, not consumed).
func TestServeListenerHandshakeAndMeasure(t *testing.T) {
	addr := startNode(t)
	good := workerRequest(t, 4)
	bad := good
	bad.Trials = 0
	want, err := NewBench(0).Do(good)
	if err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 2; round++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		br := bufio.NewReader(conn)
		hello, err := ReadHello(br)
		if err != nil {
			t.Fatalf("round %d handshake: %v", round, err)
		}
		if hello != Hello() {
			t.Fatalf("round %d hello = %+v", round, hello)
		}
		for i, req := range []Request{good, bad, good} {
			if err := WriteFrame(conn, WireRequest{ID: i, Req: req}); err != nil {
				t.Fatal(err)
			}
			var resp WireResponse
			if err := ReadFrame(br, &resp); err != nil {
				t.Fatalf("round %d response %d: %v", round, i, err)
			}
			if resp.ID != i {
				t.Fatalf("round %d response %d has id %d", round, i, resp.ID)
			}
			if i == 1 {
				if !strings.Contains(resp.Err, "trial count") {
					t.Fatalf("bad request response = %+v", resp)
				}
				continue
			}
			if resp.Err != "" || resp.M != want {
				t.Fatalf("round %d response %d = %+v, want %+v", round, i, resp, want)
			}
		}
		conn.Close()
	}
}

// TestServeListenerCancelClosesConnections pins prompt shutdown: a node
// with an attached, idle dispatcher connection must still return as soon
// as its context is canceled — the live connection is closed, not
// drained.
func TestServeListenerCancelClosesConnections(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- ServeListener(ctx, ln, nil) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := ReadHello(bufio.NewReader(conn)); err != nil {
		t.Fatal(err)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ServeListener after cancel: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("node held hostage by an idle connection")
	}
}
