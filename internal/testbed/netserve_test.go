package testbed

import (
	"bufio"
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"
)

func TestHelloCheck(t *testing.T) {
	if err := Hello().Check(); err != nil {
		t.Fatalf("own handshake must validate: %v", err)
	}
	if err := JSONHello().Check(); err != nil {
		t.Fatalf("JSON-only handshake must validate: %v", err)
	}
	for _, h := range []WireHello{
		{Protocol: ProtocolVersion + 1, Physics: PhysicsVersion},
		{Protocol: ProtocolVersion, Physics: PhysicsVersion + 1},
		{Protocol: 1, Physics: PhysicsVersion}, // a v1 binary's hello
		{Protocol: 1, Physics: PhysicsVersion, Codecs: CodecBinary},
		{},
	} {
		err := h.Check()
		if !errors.Is(err, ErrVersionMismatch) {
			t.Fatalf("Check(%+v) = %v, want ErrVersionMismatch", h, err)
		}
		if !strings.Contains(err.Error(), "protocol") || !strings.Contains(err.Error(), "physics") {
			t.Fatalf("mismatch error not descriptive: %v", err)
		}
	}
}

// startNode runs a serve node on a loopback listener for the test's
// lifetime and returns its address.
func startNode(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- ServeListener(ctx, ln, nil) }()
	t.Cleanup(func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("ServeListener: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("ServeListener did not return after cancel")
		}
	})
	return ln.Addr().String()
}

// TestServeListenerHandshakeAndMeasure drives the node end of the
// network protocol with a raw client, once per codec: the connection
// opens with a valid handshake advertising the binary codec, the client
// selects a codec with WireStart, good requests answer with the bench's
// exact measurement, request-level failures answer in-band as per-item
// errors without killing the connection, and a second batch on the same
// connection works (the executor is shared, not consumed).
func TestServeListenerHandshakeAndMeasure(t *testing.T) {
	addr := startNode(t)
	good := workerRequest(t, 4)
	bad := good
	bad.Trials = 0
	want, err := NewBench(0).Do(good)
	if err != nil {
		t.Fatal(err)
	}

	for _, codec := range []string{CodecJSON, CodecBinary} {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		br := bufio.NewReader(conn)
		hello, err := ReadHello(br)
		if err != nil {
			t.Fatalf("%s handshake: %v", codec, err)
		}
		// The dynamic throughput hint is zero on a cold node and primed by
		// the first codec round's batches; everything else is static.
		if codec == CodecJSON && hello.CellsPerSec != 0 {
			t.Fatalf("cold node advertises throughput %v", hello.CellsPerSec)
		}
		if codec == CodecBinary && hello.CellsPerSec <= 0 {
			t.Fatalf("warm node advertises no throughput hint: %+v", hello)
		}
		hello.CellsPerSec = 0
		if hello != Hello() {
			t.Fatalf("%s hello = %+v", codec, hello)
		}
		if !hello.Supports(codec) {
			t.Fatalf("node does not advertise %s", codec)
		}
		if err := WriteFrame(conn, WireStart{Codec: codec}); err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 2; round++ {
			if err := WriteFrameCodec(conn, codec, WireBatch{ID: round, Reqs: []Request{good, bad, good}}); err != nil {
				t.Fatal(err)
			}
			var res WireBatchResult
			if err := ReadFrameCodec(br, codec, &res); err != nil {
				t.Fatalf("%s batch %d: %v", codec, round, err)
			}
			if res.ID != round || res.Err != "" || len(res.Items) != 3 {
				t.Fatalf("%s batch %d = %+v", codec, round, res)
			}
			for i, item := range res.Items {
				if i == 1 {
					if !strings.Contains(item.Err, "trial count") {
						t.Fatalf("bad request item = %+v", item)
					}
					continue
				}
				if item.Err != "" || item.M != want {
					t.Fatalf("%s batch %d item %d = %+v, want %+v", codec, round, i, item, want)
				}
			}
		}
		conn.Close()
	}
}

// TestServeListenerJSONOnly pins the mixed-fleet escape hatch: a node
// started with ServeOptions{JSONOnly: true} advertises no binary codec,
// serves JSON batches normally, and rejects a dispatcher that forces
// binary anyway with an envelope error naming the mismatch.
func TestServeListenerJSONOnly(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- ServeListenerOpts(ctx, ln, nil, ServeOptions{JSONOnly: true}) }()
	t.Cleanup(func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("ServeListenerOpts: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("ServeListenerOpts did not return after cancel")
		}
	})
	addr := ln.Addr().String()
	good := workerRequest(t, 3)
	want, err := NewBench(0).Do(good)
	if err != nil {
		t.Fatal(err)
	}

	// JSON works end to end.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	hello, err := ReadHello(br)
	if err != nil {
		t.Fatal(err)
	}
	if hello != JSONHello() || hello.Supports(CodecBinary) {
		t.Fatalf("JSON-only node hello = %+v", hello)
	}
	if err := WriteFrame(conn, WireStart{}); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(conn, WireBatch{ID: 0, Reqs: []Request{good}}); err != nil {
		t.Fatal(err)
	}
	var res WireBatchResult
	if err := ReadFrame(br, &res); err != nil {
		t.Fatal(err)
	}
	if res.Err != "" || len(res.Items) != 1 || res.Items[0].M != want {
		t.Fatalf("JSON batch result = %+v", res)
	}
	conn.Close()

	// A forced binary start is rejected in-band.
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	br2 := bufio.NewReader(conn2)
	if _, err := ReadHello(br2); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(conn2, WireStart{Codec: CodecBinary}); err != nil {
		t.Fatal(err)
	}
	var rej WireBatchResult
	if err := ReadFrame(br2, &rej); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rej.Err, `codec "binary"`) || !strings.Contains(rej.Err, "this worker speaks json") {
		t.Fatalf("rejection frame = %+v", rej)
	}
}

// TestServeListenerCancelClosesConnections pins prompt shutdown: a node
// with an attached, idle dispatcher connection must still return as soon
// as its context is canceled — the live connection is closed, not
// drained.
func TestServeListenerCancelClosesConnections(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- ServeListener(ctx, ln, nil) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := ReadHello(bufio.NewReader(conn)); err != nil {
		t.Fatal(err)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ServeListener after cancel: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("node held hostage by an idle connection")
	}
}
