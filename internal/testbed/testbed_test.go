package testbed

import (
	"math"
	"testing"

	"repro/internal/device"
	"repro/internal/energy"
	"repro/internal/latency"
	"repro/internal/pipeline"
)

func scenario(t *testing.T, opts ...pipeline.Option) *pipeline.Scenario {
	t.Helper()
	d, err := device.ByName("XR1")
	if err != nil {
		t.Fatal(err)
	}
	s, err := pipeline.NewScenario(d, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTrueResourceMonotonic(t *testing.T) {
	p := NewPhysics()
	prev := 0.0
	for _, fc := range []float64{1, 1.5, 2, 2.5, 3} {
		c, err := p.TrueResource("XR1", fc, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		if c <= prev {
			t.Fatalf("true resource not monotonic at %v GHz: %v <= %v", fc, c, prev)
		}
		prev = c
	}
}

func TestTruePowerMonotonic(t *testing.T) {
	p := NewPhysics()
	prev := 0.0
	for _, fc := range []float64{1, 2, 3} {
		pw, err := p.TruePower("XR1", fc, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		if pw <= prev {
			t.Fatalf("true power not monotonic at %v GHz", fc)
		}
		prev = pw
	}
}

func TestDeviceHeterogeneity(t *testing.T) {
	p := NewPhysics()
	// XR1 (5 nm) must out-compute XR3 (12 nm) at identical clocks.
	c1, err := p.TrueResource("XR1", 2, 0.8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	c3, err := p.TrueResource("XR3", 2, 0.8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if c1 <= c3 {
		t.Fatalf("XR1 resource %v must exceed XR3 %v", c1, c3)
	}
	// ...and draw less power.
	p1, err := p.TruePower("XR1", 2, 0.8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	p3, err := p.TruePower("XR3", 2, 0.8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if p1 >= p3 {
		t.Fatalf("XR1 power %v must be below XR3 %v", p1, p3)
	}
	// Unknown devices default to efficiency 1.
	cu, err := p.TrueResource("XR99", 2, 0.8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if cu <= 0 {
		t.Fatal("unknown device must still compute")
	}
}

func TestPhysicsValidation(t *testing.T) {
	p := NewPhysics()
	if _, err := p.TrueResource("XR1", 2, 1, -0.1); err == nil {
		t.Fatal("bad utilization must error")
	}
	if _, err := p.TrueResource("XR1", 0, 1, 1); err == nil {
		t.Fatal("zero fc with CPU share must error")
	}
	if _, err := p.TruePower("XR1", 2, 0, 0); err == nil {
		t.Fatal("zero fg with GPU share must error")
	}
	if _, err := p.TrueCNNComplexity(-1, 10, 1); err == nil {
		t.Fatal("negative depth must error")
	}
}

func TestTrueModelsRunThroughPipeline(t *testing.T) {
	p := NewPhysics()
	lm := p.TrueLatencyModels("XR1")
	lb, err := lm.FrameLatency(scenario(t, pipeline.WithMode(pipeline.ModeRemote)))
	if err != nil {
		t.Fatal(err)
	}
	if lb.Total <= 0 || lb.Encoding <= 0 {
		t.Fatalf("true latency breakdown: %+v", lb)
	}
	em := p.TrueEnergyModels("XR1")
	eb, _, err := em.FrameEnergy(scenario(t))
	if err != nil {
		t.Fatal(err)
	}
	if eb.Total <= 0 {
		t.Fatalf("true energy total = %v", eb.Total)
	}
}

func TestBenchMeasurementNoise(t *testing.T) {
	bench := NewBench(1)
	sc := scenario(t)
	a, err := bench.MeasureFrame(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bench.MeasureFrame(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.LatencyMs == b.LatencyMs {
		t.Fatal("repeated measurements must differ (monitor noise)")
	}
	// Noise is small: within 20% of the noise-free truth.
	if math.Abs(a.LatencyMs-a.Latency.Total)/a.Latency.Total > 0.2 {
		t.Fatalf("measurement %v too far from truth %v", a.LatencyMs, a.Latency.Total)
	}
	if _, err := bench.MeasureFrame(nil); err == nil {
		t.Fatal("nil scenario must error")
	}
}

// TestPhysicsVersionPinsMeasurement pins two seeded measurements to
// golden values. Everything below is deterministic, so this test fails
// exactly when a code change alters measurement semantics — the event
// that must invalidate persistent caches (sweep.DiskCache stamps
// entries with PhysicsVersion). If this test fails on an intentional
// physics/noise/RNG change, bump PhysicsVersion and refresh the golden
// values in the same commit; old cache entries then read as misses
// instead of replaying the previous binary's numbers.
func TestPhysicsVersionPinsMeasurement(t *testing.T) {
	if PhysicsVersion != 1 {
		t.Fatalf("PhysicsVersion = %d: refresh the golden values below for the new measurement semantics", PhysicsVersion)
	}
	exec := NewExecutor(nil)
	for _, tc := range []struct {
		mode                        pipeline.InferenceMode
		wantLatencyMs, wantEnergyMJ float64
	}{
		{pipeline.ModeLocal, 148.43409829635581, 598.03695827570152},
		{pipeline.ModeRemote, 322.32410912612028, 1264.5897066559539},
	} {
		sc := scenario(t, pipeline.WithMode(tc.mode), pipeline.WithFrameSize(500))
		m, err := exec.Do(Request{Scenario: sc, Trials: 3, Seed: 12345, NoiseRel: DefaultNoiseRel})
		if err != nil {
			t.Fatal(err)
		}
		if m.LatencyMs != tc.wantLatencyMs || m.EnergyMJ != tc.wantEnergyMJ {
			t.Errorf("%v measurement semantics changed without a PhysicsVersion bump:\n got (%.17g ms, %.17g mJ)\nwant (%.17g ms, %.17g mJ)",
				tc.mode, m.LatencyMs, m.EnergyMJ, tc.wantLatencyMs, tc.wantEnergyMJ)
		}
	}
}

func TestBenchDeterministicAcrossRuns(t *testing.T) {
	sc := scenario(t)
	a, err := NewBench(7).MeasureFrame(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBench(7).MeasureFrame(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.LatencyMs != b.LatencyMs || a.EnergyMJ != b.EnergyMJ {
		t.Fatal("same seed must reproduce measurements")
	}
}

func TestMeasureFramesAveragesNoise(t *testing.T) {
	bench := NewBench(3)
	sc := scenario(t)
	avg, err := bench.MeasureFrames(sc, 200)
	if err != nil {
		t.Fatal(err)
	}
	// The 200-trial mean must sit within ~1% of the noise-free truth.
	if rel := math.Abs(avg.LatencyMs-avg.Latency.Total) / avg.Latency.Total; rel > 0.01 {
		t.Fatalf("averaged measurement off by %v", rel)
	}
	if _, err := bench.MeasureFrames(sc, 0); err == nil {
		t.Fatal("zero trials must error")
	}
}

func TestFitModelsRecoverPhysics(t *testing.T) {
	bench := NewBench(42)
	res, err := bench.FitModels(8000, 2000)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range []ModelFitReport{
		res.Report.Resource, res.Report.Power, res.Report.Encoder, res.Report.Complexity,
	} {
		if rep.TrainR2 < 0.75 {
			t.Fatalf("%s: train R² = %v, want > 0.75", rep.Name, rep.TrainR2)
		}
		if rep.TestR2 < 0.7 {
			t.Fatalf("%s: test R² = %v, want > 0.7", rep.Name, rep.TestR2)
		}
		if rep.TestMAPE > 20 {
			t.Fatalf("%s: test MAPE = %v%%, want < 20%%", rep.Name, rep.TestMAPE)
		}
		if rep.CICoverage < 0.85 {
			t.Fatalf("%s: CI coverage = %v, want ≳ 0.9", rep.Name, rep.CICoverage)
		}
	}
	// The fitted resource model must track the true physics within ~15%
	// at interior operating points of a training device.
	for _, fc := range []float64{1.5, 2, 2.5} {
		truth, err := bench.Physics.TrueResource("XR6", fc, 0.55, 0.7)
		if err != nil {
			t.Fatal(err)
		}
		got, err := res.Resource.Compute(fc, 0.55, 0.7)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(got-truth) / truth; rel > 0.15 {
			t.Fatalf("fitted resource at %v GHz off by %v (got %v, true %v)",
				fc, rel, got, truth)
		}
	}
	// The measured decode discount must be near the true γ.
	if math.Abs(res.Encoder.DecodeDiscount-trueDecodeDiscount) > 0.02 {
		t.Fatalf("fitted γ = %v, want ≈ %v", res.Encoder.DecodeDiscount, trueDecodeDiscount)
	}
}

func TestFitModelsRowValidation(t *testing.T) {
	bench := NewBench(1)
	if _, err := bench.FitModels(10, 10); err == nil {
		t.Fatal("tiny datasets must error")
	}
}

func TestFittedModelsPlugIntoAnalysis(t *testing.T) {
	bench := NewBench(9)
	res, err := bench.FitModels(6000, 1500)
	if err != nil {
		t.Fatal(err)
	}
	lm := latency.Models{
		Resource:   res.Resource,
		Encoder:    res.Encoder,
		Complexity: res.Complexity,
	}
	em := energy.Models{Latency: lm, Power: res.Power}
	sc := scenario(t, pipeline.WithMode(pipeline.ModeRemote))
	eb, lb, err := em.FrameEnergy(sc)
	if err != nil {
		t.Fatal(err)
	}
	if lb.Total <= 0 || eb.Total <= 0 {
		t.Fatal("fitted models must produce positive predictions")
	}
	// The fitted model's end-to-end prediction must land near the
	// noise-free truth: this is the paper's headline claim (mean error a
	// few percent).
	truth, err := bench.Physics.TrueLatencyModels("XR1").FrameLatency(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(lb.Total-truth.Total) / truth.Total; rel > 0.15 {
		t.Fatalf("fitted latency off truth by %v (got %v, true %v)",
			rel, lb.Total, truth.Total)
	}
}

// TestMeasureFramesSeededDeterministic checks the seeded measurement
// path the parallel sweep engine relies on: the observation depends only
// on (scenario, trials, seed), not on the bench's shared monitor stream
// or on how many measurements ran before.
func TestMeasureFramesSeededDeterministic(t *testing.T) {
	sc := scenario(t)
	b := NewBench(42)
	first, err := b.MeasureFramesSeeded(sc, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Perturb the shared stream; the seeded path must not notice.
	if _, err := b.MeasureFrames(sc, 25); err != nil {
		t.Fatal(err)
	}
	again, err := b.MeasureFramesSeeded(sc, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if first.LatencyMs != again.LatencyMs || first.EnergyMJ != again.EnergyMJ {
		t.Fatalf("seeded measurement not reproducible: %+v vs %+v", first, again)
	}
	other, err := b.MeasureFramesSeeded(sc, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	if other.LatencyMs == first.LatencyMs {
		t.Fatal("different seeds must draw different noise")
	}
	if _, err := b.MeasureFramesSeeded(sc, 0, 7); err == nil {
		t.Fatal("zero trials must error")
	}
	if _, err := b.MeasureFramesSeeded(nil, 5, 7); err == nil {
		t.Fatal("nil scenario must error")
	}
}
