package testbed

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"testing"
)

// frameBytes encodes v as one wire frame for seeding.
func frameBytes(t testing.TB, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadFrame feeds the frame decoder arbitrary byte streams: hostile
// length prefixes, truncated payloads, and garbage JSON must all surface
// as clean errors — never a panic, and never an allocation sized by the
// attacker's length prefix rather than by the bytes actually present.
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})                   // truncated header
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})    // length beyond MaxFrameBytes
	f.Add([]byte{0, 0, 0, 4, '{', '}'})      // truncated payload
	f.Add([]byte{0, 0, 0, 2, 'n', 'o'})      // invalid JSON
	f.Add(frameBytes(f, Hello()))            // valid handshake frame
	f.Add(frameBytes(f, WireRequest{ID: 3})) // valid request frame
	// A frame declaring the maximum length but delivering ten bytes: the
	// over-allocation regression case.
	huge := []byte{0, 0, 127, 255, 'x', 'x', 'x', 'x', 'x', 'x'}
	f.Add(huge)
	f.Fuzz(func(t *testing.T, data []byte) {
		var v json.RawMessage
		err := ReadFrame(bytes.NewReader(data), &v)
		if err == nil {
			// A successful decode must round-trip: re-encoding the payload
			// as a frame and decoding again yields the same JSON.
			var buf bytes.Buffer
			if err := WriteFrame(&buf, v); err != nil {
				t.Fatalf("decoded frame did not re-encode: %v", err)
			}
			var v2 json.RawMessage
			if err := ReadFrame(&buf, &v2); err != nil {
				t.Fatalf("re-encoded frame did not decode: %v", err)
			}
			return
		}
		// Errors must be the protocol's own taxonomy, not raw panics
		// converted downstream: a frame error, a clean EOF, or an
		// unexpected EOF.
		if !errors.Is(err, ErrFrame) && !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("unexpected error class: %v", err)
		}
	})
}

// FuzzWireHello feeds the handshake reader arbitrary streams: whatever a
// malicious or confused peer sends in place of a hello must produce a
// clean frame/version error, never a panic.
func FuzzWireHello(f *testing.F) {
	f.Add(frameBytes(f, Hello()))
	f.Add(frameBytes(f, JobsHello()))
	f.Add(frameBytes(f, WireHello{Protocol: 99, Physics: 1}))
	f.Add(frameBytes(f, map[string]any{"proto": "one"}))
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := ReadHello(bytes.NewReader(data))
		if err == nil {
			if cerr := h.Check(); cerr != nil {
				t.Fatalf("ReadHello accepted a hello Check rejects: %v", cerr)
			}
			return
		}
		if !errors.Is(err, ErrFrame) && !errors.Is(err, ErrVersionMismatch) &&
			!errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("unexpected error class: %v", err)
		}
	})
}

// TestReadFrameBoundedAllocation pins the over-allocation defence
// directly (the fuzz target only proves no panic): a stream declaring an
// enormous frame but carrying a handful of bytes must fail without
// allocating anywhere near the declared length.
func TestReadFrameBoundedAllocation(t *testing.T) {
	var head [4]byte
	binary.BigEndian.PutUint32(head[:], MaxFrameBytes) // 8 MB declared
	stream := append(head[:], []byte("short")...)
	var v json.RawMessage
	allocs := testing.AllocsPerRun(20, func() {
		if err := ReadFrame(bytes.NewReader(stream), &v); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("want ErrUnexpectedEOF, got %v", err)
		}
	})
	// The exact count is implementation detail; the point is it is a
	// handful of small buffers, not an 8 MB slab per call. AllocsPerRun
	// counts allocations, so pair it with a size probe.
	if allocs > 50 {
		t.Fatalf("ReadFrame made %.0f allocations for a 9-byte hostile stream", allocs)
	}
}
