package testbed

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"reflect"
	"testing"
)

// frameBytes encodes v as one wire frame for seeding.
func frameBytes(t testing.TB, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadFrame feeds the frame decoder arbitrary byte streams: hostile
// length prefixes, truncated payloads, and garbage JSON must all surface
// as clean errors — never a panic, and never an allocation sized by the
// attacker's length prefix rather than by the bytes actually present.
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})                 // truncated header
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})  // length beyond MaxFrameBytes
	f.Add([]byte{0, 0, 0, 4, '{', '}'})    // truncated payload
	f.Add([]byte{0, 0, 0, 2, 'n', 'o'})    // invalid JSON
	f.Add(frameBytes(f, Hello()))          // valid handshake frame
	f.Add(frameBytes(f, WireBatch{ID: 3})) // valid batch frame
	f.Add(frameBytes(f, WireBatchResult{ID: 3, Items: []WireItem{{Err: "x"}}}))
	// A frame declaring the maximum length but delivering ten bytes: the
	// over-allocation regression case.
	huge := []byte{0, 0, 127, 255, 'x', 'x', 'x', 'x', 'x', 'x'}
	f.Add(huge)
	f.Fuzz(func(t *testing.T, data []byte) {
		var v json.RawMessage
		err := ReadFrame(bytes.NewReader(data), &v)
		if err == nil {
			// A successful decode must round-trip: re-encoding the payload
			// as a frame and decoding again yields the same JSON.
			var buf bytes.Buffer
			if err := WriteFrame(&buf, v); err != nil {
				t.Fatalf("decoded frame did not re-encode: %v", err)
			}
			var v2 json.RawMessage
			if err := ReadFrame(&buf, &v2); err != nil {
				t.Fatalf("re-encoded frame did not decode: %v", err)
			}
			return
		}
		// Errors must be the protocol's own taxonomy, not raw panics
		// converted downstream: a frame error, a clean EOF, or an
		// unexpected EOF.
		if !errors.Is(err, ErrFrame) && !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("unexpected error class: %v", err)
		}
	})
}

// FuzzWireHello feeds the handshake reader arbitrary streams: whatever a
// malicious or confused peer sends in place of a hello must produce a
// clean frame/version error, never a panic.
func FuzzWireHello(f *testing.F) {
	f.Add(frameBytes(f, Hello()))
	f.Add(frameBytes(f, JobsHello()))
	f.Add(frameBytes(f, WireHello{Protocol: 99, Physics: 1}))
	f.Add(frameBytes(f, map[string]any{"proto": "one"}))
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := ReadHello(bytes.NewReader(data))
		if err == nil {
			if cerr := h.Check(); cerr != nil {
				t.Fatalf("ReadHello accepted a hello Check rejects: %v", cerr)
			}
			return
		}
		if !errors.Is(err, ErrFrame) && !errors.Is(err, ErrVersionMismatch) &&
			!errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("unexpected error class: %v", err)
		}
	})
}

// binFrameBytes encodes v as one binary-codec wire frame for seeding.
func binFrameBytes(t testing.TB, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFrameCodec(&buf, CodecBinary, v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzBinaryFrame feeds the binary-codec frame decoder arbitrary byte
// streams, mirroring FuzzReadFrame for the JSON codec: hostile length
// prefixes, truncated payloads, and garbage encodings must surface as
// clean protocol errors — never a panic, never an allocation sized by a
// declared length rather than the bytes present. Accepted inputs must
// be stable: encoding the decoded value yields a canonical form that
// round-trips to itself byte for byte. (The first encoding need not
// equal the input — varints have non-minimal spellings — and DeepEqual
// is no use here because NaN != NaN; canonical-form equality pins both.)
func FuzzBinaryFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})                // truncated header
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // length beyond MaxFrameBytes
	f.Add([]byte{0, 0, 0, 4, 1, 2})       // truncated payload
	f.Add(binFrameBytes(f, WireBatch{ID: 3}))
	f.Add(binFrameBytes(f, WireBatch{ID: 0, Reqs: []Request{{Trials: 2, Seed: 9}}}))
	f.Add(binFrameBytes(f, WireBatchResult{ID: 1, Items: []WireItem{{Err: "trial count"}}}))
	// A declared slice count far beyond the frame's bytes: the
	// over-allocation regression case for the binary decoder.
	f.Add([]byte{0, 0, 0, 6, 1, 1, 0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, probe := range []func() (any, error){
			func() (any, error) {
				var v WireBatch
				return &v, ReadFrameCodec(bytes.NewReader(data), CodecBinary, &v)
			},
			func() (any, error) {
				var v WireBatchResult
				return &v, ReadFrameCodec(bytes.NewReader(data), CodecBinary, &v)
			},
		} {
			v, err := probe()
			if err != nil {
				if !errors.Is(err, ErrFrame) && !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
					t.Fatalf("unexpected error class: %v", err)
				}
				continue
			}
			e1, err := EncodeBinary(v)
			if err != nil {
				t.Fatalf("decoded frame did not re-encode: %v", err)
			}
			if err := DecodeBinary(e1, v); err != nil {
				t.Fatalf("canonical form did not decode: %v", err)
			}
			e2, err := EncodeBinary(v)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(e1, e2) {
				t.Fatalf("canonical form unstable:\n% x\n% x", e1, e2)
			}
		}
	})
}

// TestBinaryMatchesJSONDecode is the cross-codec property test: for
// every wire type, the value decoded from the binary codec equals the
// value decoded from the JSON codec for the same original — the
// byte-identical-output guarantee across mixed-codec fleets reduces to
// this equality.
func TestBinaryMatchesJSONDecode(t *testing.T) {
	req := workerRequest(t, 5)
	m, err := NewBench(0).Do(req)
	if err != nil {
		t.Fatal(err)
	}
	values := []any{
		Hello(),
		JobsHello(),
		WireStart{Codec: CodecBinary},
		WireBatch{ID: 42, Reqs: []Request{req, {Op: OpAnalyze, Scenario: req.Scenario, Fit: &FitConfig{Seed: 3, TrainRows: 10, TestRows: 4}}}},
		WireItem{M: m},
		WireBatchResult{ID: 7, Items: []WireItem{{M: m}, {Err: "trial count"}}},
		WireBatchResult{Err: "rejected"},
		WireJob{Proto: JobProtocolVersion, Op: JobOpRun, Codec: CodecBinary, Job: json.RawMessage(`{"kind":"sweep"}`)},
		WireResult{Kind: ResultChunk, Chunk: "| XR1 | local |\n"},
		WireResult{Kind: ResultStats, Stats: json.RawMessage(`{"queued":1}`)},
	}
	for _, v := range values {
		rt := reflect.TypeOf(v)
		jsonPayload, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("%s: %v", rt, err)
		}
		binPayload, err := EncodeBinary(v)
		if err != nil {
			t.Fatalf("%s: %v", rt, err)
		}
		fromJSON := reflect.New(rt)
		if err := json.Unmarshal(jsonPayload, fromJSON.Interface()); err != nil {
			t.Fatalf("%s: %v", rt, err)
		}
		fromBin := reflect.New(rt)
		if err := DecodeBinary(binPayload, fromBin.Interface()); err != nil {
			t.Fatalf("%s: %v", rt, err)
		}
		if !reflect.DeepEqual(fromJSON.Elem().Interface(), fromBin.Elem().Interface()) {
			t.Fatalf("%s: binary decode diverges from JSON decode:\njson   %+v\nbinary %+v",
				rt, fromJSON.Elem().Interface(), fromBin.Elem().Interface())
		}
	}
}

// TestDecodeBinaryBoundedAllocation pins the binary decoder's
// over-allocation defence directly: a payload declaring a huge element
// count with a handful of bytes behind it must fail cheaply.
func TestDecodeBinaryBoundedAllocation(t *testing.T) {
	// WireBatch: ID varint 0, Reqs presence 1, count uvarint = huge.
	hostile := []byte{0, 1, 0xff, 0xff, 0xff, 0xff, 0x7f}
	var v WireBatch
	allocs := testing.AllocsPerRun(20, func() {
		if err := DecodeBinary(hostile, &v); err == nil {
			t.Fatal("hostile count decoded successfully")
		}
	})
	if allocs > 50 {
		t.Fatalf("DecodeBinary made %.0f allocations for a 7-byte hostile payload", allocs)
	}
}

// TestReadFrameBoundedAllocation pins the over-allocation defence
// directly (the fuzz target only proves no panic): a stream declaring an
// enormous frame but carrying a handful of bytes must fail without
// allocating anywhere near the declared length.
func TestReadFrameBoundedAllocation(t *testing.T) {
	var head [4]byte
	binary.BigEndian.PutUint32(head[:], MaxFrameBytes) // 8 MB declared
	stream := append(head[:], []byte("short")...)
	var v json.RawMessage
	allocs := testing.AllocsPerRun(20, func() {
		if err := ReadFrame(bytes.NewReader(stream), &v); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("want ErrUnexpectedEOF, got %v", err)
		}
	})
	// The exact count is implementation detail; the point is it is a
	// handful of small buffers, not an 8 MB slab per call. AllocsPerRun
	// counts allocations, so pair it with a size probe.
	if allocs > 50 {
		t.Fatalf("ReadFrame made %.0f allocations for a 9-byte hostile stream", allocs)
	}
}
