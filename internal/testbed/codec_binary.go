package testbed

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"reflect"
)

// The compact binary codec for the hot frame types (WireBatch,
// WireBatchResult, WireResult, and everything they embed). Encoding is
// reflection-driven over the exported fields in struct order — the same
// field set and order encoding/json uses — so the codec cannot drift
// from the wire structs: a field added to Request or Measurement is
// carried automatically, and the cross-codec property test
// (TestBinaryMatchesJSONDecode) pins binary-decode == JSON-decode for
// every wire type.
//
// Layout, per value:
//
//	bool            1 byte (0/1)
//	int*            zigzag varint
//	uint*           uvarint
//	float64         8-byte little-endian IEEE 754 bits (exact — no
//	                formatting, so decoded values match JSON's
//	                shortest-round-trip floats bit for bit)
//	string, []byte  uvarint length + bytes
//	pointer, slice  presence byte (0 = nil) + contents (slices add a
//	                uvarint element count; nil and empty stay distinct,
//	                matching encoding/json's null vs [])
//	struct          fields in order, no names
//	map             uvarint length + canonical JSON bytes (maps have no
//	                deterministic binary order; stats.Sketch buckets ride
//	                as JSON, whose map-key sorting is deterministic)
//	interface       presence byte, nil only (process-local values such
//	                as path-loss models are rejected — Request.WireSafe
//	                gates them off the wire in the first place)
//
// Decoding is allocation-bounded: every length and element count is
// checked against the bytes actually remaining before anything is
// allocated, so a hostile frame can cost at most its own size
// (FuzzBinaryFrame exercises this).

// errBinary indicates a malformed or unsupported binary encoding.
var errBinary = errors.New("testbed: bad binary encoding")

// EncodeBinary encodes v (a wire struct or pointer to one) in the
// compact binary codec.
func EncodeBinary(v any) ([]byte, error) {
	rv := reflect.ValueOf(v)
	for rv.Kind() == reflect.Pointer {
		if rv.IsNil() {
			return nil, fmt.Errorf("%w: nil value", errBinary)
		}
		rv = rv.Elem()
	}
	return appendBinary(nil, rv)
}

// DecodeBinary decodes a compact binary payload into v, which must be a
// non-nil pointer. Trailing garbage after a complete value is rejected.
func DecodeBinary(data []byte, v any) error {
	rv := reflect.ValueOf(v)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		return fmt.Errorf("%w: decode target must be a non-nil pointer", errBinary)
	}
	d := &binDecoder{data: data}
	if err := d.value(rv.Elem()); err != nil {
		return err
	}
	if d.off != len(data) {
		return fmt.Errorf("%w: %d trailing bytes", errBinary, len(data)-d.off)
	}
	return nil
}

func appendBinary(buf []byte, rv reflect.Value) ([]byte, error) {
	switch rv.Kind() {
	case reflect.Bool:
		if rv.Bool() {
			return append(buf, 1), nil
		}
		return append(buf, 0), nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return binary.AppendVarint(buf, rv.Int()), nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return binary.AppendUvarint(buf, rv.Uint()), nil
	case reflect.Float64:
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(rv.Float())), nil
	case reflect.String:
		s := rv.String()
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		return append(buf, s...), nil
	case reflect.Slice:
		if rv.IsNil() {
			return append(buf, 0), nil
		}
		buf = append(buf, 1)
		n := rv.Len()
		buf = binary.AppendUvarint(buf, uint64(n))
		if rv.Type().Elem().Kind() == reflect.Uint8 {
			return append(buf, rv.Bytes()...), nil
		}
		var err error
		for i := 0; i < n; i++ {
			if buf, err = appendBinary(buf, rv.Index(i)); err != nil {
				return nil, err
			}
		}
		return buf, nil
	case reflect.Pointer:
		if rv.IsNil() {
			return append(buf, 0), nil
		}
		return appendBinary(append(buf, 1), rv.Elem())
	case reflect.Struct:
		t := rv.Type()
		var err error
		for i := 0; i < t.NumField(); i++ {
			if !t.Field(i).IsExported() {
				continue
			}
			if buf, err = appendBinary(buf, rv.Field(i)); err != nil {
				return nil, err
			}
		}
		return buf, nil
	case reflect.Map:
		blob, err := json.Marshal(rv.Interface())
		if err != nil {
			return nil, fmt.Errorf("%w: map field: %v", errBinary, err)
		}
		buf = binary.AppendUvarint(buf, uint64(len(blob)))
		return append(buf, blob...), nil
	case reflect.Interface:
		if !rv.IsNil() {
			return nil, fmt.Errorf("%w: non-nil interface field %s is process-local and cannot cross a worker boundary",
				errBinary, rv.Type())
		}
		return append(buf, 0), nil
	default:
		return nil, fmt.Errorf("%w: unsupported kind %s", errBinary, rv.Kind())
	}
}

type binDecoder struct {
	data []byte
	off  int
}

func (d *binDecoder) remaining() int { return len(d.data) - d.off }

func (d *binDecoder) byte() (byte, error) {
	if d.remaining() < 1 {
		return 0, fmt.Errorf("%w: truncated", errBinary)
	}
	b := d.data[d.off]
	d.off++
	return b, nil
}

func (d *binDecoder) uvarint() (uint64, error) {
	u, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad uvarint", errBinary)
	}
	d.off += n
	return u, nil
}

func (d *binDecoder) varint() (int64, error) {
	v, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad varint", errBinary)
	}
	d.off += n
	return v, nil
}

// length reads a uvarint length and bounds it by the remaining bytes, so
// a hostile declared length never drives an allocation larger than the
// input itself.
func (d *binDecoder) length() (int, error) {
	u, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if u > uint64(d.remaining()) {
		return 0, fmt.Errorf("%w: declared length %d exceeds %d remaining bytes", errBinary, u, d.remaining())
	}
	return int(u), nil
}

func (d *binDecoder) take(n int) []byte {
	b := d.data[d.off : d.off+n]
	d.off += n
	return b
}

func (d *binDecoder) value(rv reflect.Value) error {
	switch rv.Kind() {
	case reflect.Bool:
		b, err := d.byte()
		if err != nil {
			return err
		}
		if b > 1 {
			return fmt.Errorf("%w: bad bool byte %d", errBinary, b)
		}
		rv.SetBool(b == 1)
		return nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v, err := d.varint()
		if err != nil {
			return err
		}
		if rv.OverflowInt(v) {
			return fmt.Errorf("%w: %d overflows %s", errBinary, v, rv.Type())
		}
		rv.SetInt(v)
		return nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		u, err := d.uvarint()
		if err != nil {
			return err
		}
		if rv.OverflowUint(u) {
			return fmt.Errorf("%w: %d overflows %s", errBinary, u, rv.Type())
		}
		rv.SetUint(u)
		return nil
	case reflect.Float64:
		if d.remaining() < 8 {
			return fmt.Errorf("%w: truncated float", errBinary)
		}
		rv.SetFloat(math.Float64frombits(binary.LittleEndian.Uint64(d.take(8))))
		return nil
	case reflect.String:
		n, err := d.length()
		if err != nil {
			return err
		}
		rv.SetString(string(d.take(n)))
		return nil
	case reflect.Slice:
		p, err := d.byte()
		if err != nil {
			return err
		}
		if p == 0 {
			rv.SetZero()
			return nil
		}
		if p != 1 {
			return fmt.Errorf("%w: bad presence byte %d", errBinary, p)
		}
		n, err := d.length()
		if err != nil {
			return err
		}
		if rv.Type().Elem().Kind() == reflect.Uint8 {
			b := make([]byte, n)
			copy(b, d.take(n))
			rv.SetBytes(b)
			return nil
		}
		// Grow incrementally so allocation tracks the bytes actually
		// decoded, not a hostile declared count.
		s := reflect.MakeSlice(rv.Type(), 0, 0)
		elem := reflect.New(rv.Type().Elem()).Elem()
		for i := 0; i < n; i++ {
			elem.SetZero()
			if err := d.value(elem); err != nil {
				return err
			}
			s = reflect.Append(s, elem)
		}
		rv.Set(s)
		return nil
	case reflect.Pointer:
		p, err := d.byte()
		if err != nil {
			return err
		}
		if p == 0 {
			rv.SetZero()
			return nil
		}
		if p != 1 {
			return fmt.Errorf("%w: bad presence byte %d", errBinary, p)
		}
		rv.Set(reflect.New(rv.Type().Elem()))
		return d.value(rv.Elem())
	case reflect.Struct:
		t := rv.Type()
		for i := 0; i < t.NumField(); i++ {
			if !t.Field(i).IsExported() {
				continue
			}
			if err := d.value(rv.Field(i)); err != nil {
				return err
			}
		}
		return nil
	case reflect.Map:
		n, err := d.length()
		if err != nil {
			return err
		}
		rv.SetZero() // json.Unmarshal merges into an existing map; decode must not
		if err := json.Unmarshal(d.take(n), rv.Addr().Interface()); err != nil {
			return fmt.Errorf("%w: map field: %v", errBinary, err)
		}
		return nil
	case reflect.Interface:
		p, err := d.byte()
		if err != nil {
			return err
		}
		if p != 0 {
			return fmt.Errorf("%w: non-nil interface field %s on the wire", errBinary, rv.Type())
		}
		rv.SetZero()
		return nil
	default:
		return fmt.Errorf("%w: unsupported kind %s", errBinary, rv.Kind())
	}
}
