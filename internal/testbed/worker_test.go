package testbed

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/device"
	"repro/internal/energy"
	"repro/internal/latency"
	"repro/internal/pipeline"
	"repro/internal/sensors"
)

// workerScenario builds a representative remote-mode scenario with a
// sensor array — exercising nested structs, slices, and pointers on the
// wire.
func workerScenario(t testing.TB) *pipeline.Scenario {
	t.Helper()
	dev, err := device.ByName("XR2")
	if err != nil {
		t.Fatal(err)
	}
	s1, err := sensors.NewSensor("imu", 200, 5)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := pipeline.NewScenario(dev,
		pipeline.WithMode(pipeline.ModeRemote),
		pipeline.WithFrameSize(600),
		pipeline.WithSensors(sensors.NewArray(s1), 2),
	)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func workerRequest(t testing.TB, trials int) Request {
	t.Helper()
	req := Request{Scenario: workerScenario(t), Trials: trials, NoiseRel: DefaultNoiseRel}
	seed, err := req.ContentSeed(7)
	if err != nil {
		t.Fatal(err)
	}
	req.Seed = seed
	return req
}

func TestFrameRoundTrip(t *testing.T) {
	for _, codec := range []string{CodecJSON, CodecBinary} {
		var buf bytes.Buffer
		in := WireBatch{ID: 3, Reqs: []Request{workerRequest(t, 5), workerRequest(t, 2)}}
		if err := WriteFrameCodec(&buf, codec, in); err != nil {
			t.Fatal(err)
		}
		var out WireBatch
		if err := ReadFrameCodec(&buf, codec, &out); err != nil {
			t.Fatal(err)
		}
		if out.ID != 3 || len(out.Reqs) != 2 || out.Reqs[0].Trials != 5 || out.Reqs[0].Seed != in.Reqs[0].Seed {
			t.Fatalf("%s round trip lost fields: %+v", codec, out)
		}
		if out.Reqs[0].Scenario.Device.Name != "XR2" || len(out.Reqs[0].Scenario.Sensors.Sensors) != 1 {
			t.Fatalf("%s: scenario lost on the wire: %+v", codec, out.Reqs[0].Scenario)
		}
	}
}

func TestReadFrameRejectsOversized(t *testing.T) {
	var head [4]byte
	binary.BigEndian.PutUint32(head[:], MaxFrameBytes+1)
	err := ReadFrame(bytes.NewReader(head[:]), &WireBatch{})
	if !errors.Is(err, ErrFrame) {
		t.Fatalf("oversized frame error = %v", err)
	}
}

func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, WireBatch{ID: 1}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-2]
	err := ReadFrame(bytes.NewReader(trunc), &WireBatch{})
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated frame error = %v", err)
	}
}

// TestRequestJSONRoundTripMeasuresIdentically pins the wire determinism
// contract: a request decoded from its own JSON encoding measures bit
// for bit what the original measures — Go's JSON float encoding is
// shortest-round-trip, so nothing is lost crossing a worker boundary.
func TestRequestJSONRoundTripMeasuresIdentically(t *testing.T) {
	req := workerRequest(t, 6)
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var back Request
	if err := json.Unmarshal(payload, &back); err != nil {
		t.Fatal(err)
	}
	bench := NewBench(0)
	want, err := bench.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := bench.Do(back)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("decoded request measures differently:\noriginal %+v\ndecoded  %+v", want, got)
	}
}

// TestServeLoop drives the worker protocol end to end in-process for
// both codecs: the worker leads with its handshake, reads the
// dispatcher's WireStart, then answers batches — good requests answer
// with measurements, a bad request answers with a per-item error while
// the rest of its batch (and the loop) keeps serving, and EOF ends the
// loop cleanly.
func TestServeLoop(t *testing.T) {
	good := workerRequest(t, 4)
	bad := good
	bad.Trials = 0
	want, err := NewBench(0).Do(good)
	if err != nil {
		t.Fatal(err)
	}

	for _, codec := range []string{CodecJSON, CodecBinary} {
		var in bytes.Buffer
		if err := WriteFrame(&in, WireStart{Codec: codec}); err != nil {
			t.Fatal(err)
		}
		if err := WriteFrameCodec(&in, codec, WireBatch{ID: 7, Reqs: []Request{good, bad, good}}); err != nil {
			t.Fatal(err)
		}
		if err := WriteFrameCodec(&in, codec, WireBatch{ID: 10, Reqs: []Request{good}}); err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		if err := Serve(&in, &out); err != nil {
			t.Fatal(err)
		}

		hello, err := ReadHello(&out)
		if err != nil {
			t.Fatalf("%s: handshake: %v", codec, err)
		}
		if hello != Hello() {
			t.Fatalf("%s: hello = %+v", codec, hello)
		}
		var res WireBatchResult
		if err := ReadFrameCodec(&out, codec, &res); err != nil {
			t.Fatalf("%s: batch result: %v", codec, err)
		}
		if res.ID != 7 || res.Err != "" || len(res.Items) != 3 {
			t.Fatalf("%s: batch result = %+v", codec, res)
		}
		for i, item := range res.Items {
			if i == 1 {
				if !strings.Contains(item.Err, "trial count") {
					t.Fatalf("%s: bad request item = %+v", codec, item)
				}
				continue
			}
			if item.Err != "" || item.M != want {
				t.Fatalf("%s: item %d = %+v, want %+v", codec, i, item, want)
			}
		}
		var res2 WireBatchResult
		if err := ReadFrameCodec(&out, codec, &res2); err != nil {
			t.Fatalf("%s: second batch result: %v", codec, err)
		}
		if res2.ID != 10 || len(res2.Items) != 1 || res2.Items[0].M != want {
			t.Fatalf("%s: second batch result = %+v", codec, res2)
		}
		if err := ReadFrameCodec(&out, codec, &WireBatchResult{}); !errors.Is(err, io.EOF) {
			t.Fatalf("%s: extra response after EOF: %v", codec, err)
		}
	}
}

// TestServeLoopRejectsUnknownCodec pins the negotiation failure path: a
// dispatcher demanding a codec the worker does not speak is answered
// with a JSON envelope rejection naming both sides' vocabularies, and
// the serve loop returns the same error.
func TestServeLoopRejectsUnknownCodec(t *testing.T) {
	cases := []struct {
		name  string
		opts  ServeOptions
		codec string
		wants []string
	}{
		{"unknown", ServeOptions{}, "protobuf", []string{`codec "protobuf"`, "json, binary"}},
		{"json-only-node", ServeOptions{JSONOnly: true}, CodecBinary, []string{`codec "binary"`, "this worker speaks json"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var in, out bytes.Buffer
			if err := WriteFrame(&in, WireStart{Codec: tc.codec}); err != nil {
				t.Fatal(err)
			}
			err := NewExecutor(nil).ServeFramesOpts(&in, &out, tc.opts)
			if !errors.Is(err, ErrVersionMismatch) {
				t.Fatalf("serve error = %v, want ErrVersionMismatch", err)
			}
			if _, err := ReadHello(&out); err != nil {
				t.Fatal(err)
			}
			var res WireBatchResult
			if err := ReadFrame(&out, &res); err != nil {
				t.Fatal(err)
			}
			if res.Err == "" || len(res.Items) != 0 {
				t.Fatalf("rejection frame = %+v", res)
			}
			for _, want := range tc.wants {
				if !strings.Contains(res.Err, want) {
					t.Fatalf("rejection %q does not mention %q", res.Err, want)
				}
			}
		})
	}
}

// TestServeLoopJSONOnlyHello pins the restricted advertisement: a
// JSON-only worker's handshake carries no codec list, so a dispatcher's
// PickCodec falls back to JSON.
func TestServeLoopJSONOnlyHello(t *testing.T) {
	h := JSONHello()
	if h.Supports(CodecBinary) {
		t.Fatal("JSON-only hello must not advertise binary")
	}
	if !h.Supports(CodecJSON) || !h.Supports("") {
		t.Fatal("every hello supports JSON")
	}
	if got := h.PickCodec(); got != CodecJSON {
		t.Fatalf("PickCodec() = %q, want json", got)
	}
	if got := Hello().PickCodec(); got != CodecBinary {
		t.Fatalf("full hello PickCodec() = %q, want binary", got)
	}
}

func TestFingerprintDistinguishesContent(t *testing.T) {
	base := workerRequest(t, 5)
	fp := func(r Request) string {
		t.Helper()
		s, err := r.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	same := base
	same.Seed = 999 // seed is excluded from the fingerprint
	if fp(base) != fp(same) {
		t.Fatal("seed must not affect the fingerprint")
	}
	variants := []func(*Request){
		func(r *Request) { r.Trials = 6 },
		func(r *Request) { r.NoiseRel = 0.5 },
		func(r *Request) { r.Op = OpAnalyze },
		func(r *Request) { r.Scenario.FrameSizePx2 = 601 },
	}
	for i, mutate := range variants {
		v := base
		sc := *base.Scenario
		v.Scenario = &sc
		mutate(&v)
		if fp(v) == fp(base) {
			t.Fatalf("variant %d has the same fingerprint", i)
		}
	}
	if s1, s2 := mustSeed(t, base, 1), mustSeed(t, base, 2); s1 == s2 {
		t.Fatal("base seed must perturb the content seed")
	}
}

func mustSeed(t *testing.T, r Request, base int64) int64 {
	t.Helper()
	s, err := r.ContentSeed(base)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestWireSafeRejectsPathLoss(t *testing.T) {
	req := workerRequest(t, 3)
	if err := req.WireSafe(); err != nil {
		t.Fatalf("plain scenario must be wire-safe: %v", err)
	}
	req.Scenario.EdgeLink.Loss = lossStub{}
	if err := req.WireSafe(); !errors.Is(err, ErrRequest) {
		t.Fatalf("path-loss scenario error = %v", err)
	}
}

type lossStub struct{}

func (lossStub) ThroughputFactor(float64) float64 { return 1 }

// TestExecutorAnalyzePaper checks the analyze op against the paper
// coefficient models evaluated directly.
func TestExecutorAnalyzePaper(t *testing.T) {
	sc := workerScenario(t)
	m, err := NewExecutor(nil).Do(Request{Op: OpAnalyze, Scenario: sc})
	if err != nil {
		t.Fatal(err)
	}
	eb, lb, err := energy.PaperModels().FrameEnergy(sc)
	if err != nil {
		t.Fatal(err)
	}
	if m.LatencyMs != lb.Total || m.EnergyMJ != eb.Total || m.Latency != lb || m.Energy != eb {
		t.Fatalf("analyze diverges from direct paper-model evaluation: %+v", m)
	}
}

// TestExecutorAnalyzeFitted checks that a FitConfig reconstructs the
// exact re-fitted bundle: the executor's analysis equals evaluating
// models refit from the same config in this process.
func TestExecutorAnalyzeFitted(t *testing.T) {
	sc := workerScenario(t)
	fc := FitConfig{Seed: 11, TrainRows: 2000, TestRows: 500}

	fitted, err := NewBench(fc.Seed).FitModels(fc.TrainRows, fc.TestRows)
	if err != nil {
		t.Fatal(err)
	}
	lm := latency.Models{Resource: fitted.Resource, Encoder: fitted.Encoder, Complexity: fitted.Complexity}
	eb, lb, err := (energy.Models{Latency: lm, Power: fitted.Power}).FrameEnergy(sc)
	if err != nil {
		t.Fatal(err)
	}

	ex := NewExecutor(nil)
	for i := 0; i < 2; i++ { // second round exercises the memoized fit
		m, err := ex.Do(Request{Op: OpAnalyze, Scenario: sc, Fit: &fc})
		if err != nil {
			t.Fatal(err)
		}
		if m.LatencyMs != lb.Total || m.EnergyMJ != eb.Total {
			t.Fatalf("round %d: fitted analyze diverges from direct refit", i)
		}
	}
}

// TestBenchDoMatchesMeasureFramesSeeded pins the request path against
// the seeded measurement primitive it generalizes.
func TestBenchDoMatchesMeasureFramesSeeded(t *testing.T) {
	sc := workerScenario(t)
	bench := NewBench(3)
	want, err := bench.MeasureFramesSeeded(sc, 7, 12345)
	if err != nil {
		t.Fatal(err)
	}
	got, err := bench.Do(Request{Scenario: sc, Trials: 7, Seed: 12345, NoiseRel: bench.NoiseRel})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("Do diverges from MeasureFramesSeeded:\n%+v\n%+v", got, want)
	}
}
