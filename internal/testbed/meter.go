package testbed

import (
	"sync"
	"time"
)

// RateMeter tracks a worker's recent measurement throughput as an EWMA
// of cells per second. Serve nodes feed it from their batch loop and
// advertise the rate in their handshake (WireHello.CellsPerSec), giving
// dispatchers a capacity hint that reflects the machine as it actually
// performs — thermal state, co-tenants and all — rather than a static
// core count. The meter is advisory: it steers shard sizing, never
// measurement values, so it lives outside the determinism contract.
type RateMeter struct {
	mu   sync.Mutex
	rate float64 // cells/s EWMA; 0 until the first observation
}

// meterAlpha weights a new throughput sample against the running EWMA:
// heavy enough that a node's advertised rate tracks a load change within
// a few batches, light enough that one cache-warm batch doesn't spike it.
const meterAlpha = 0.3

// Observe folds one batch into the rate: cells answered in elapsed time.
// Degenerate samples (no cells, non-positive elapsed) are dropped.
func (m *RateMeter) Observe(cells int, elapsed time.Duration) {
	if m == nil || cells <= 0 || elapsed <= 0 {
		return
	}
	sample := float64(cells) / elapsed.Seconds()
	m.mu.Lock()
	if m.rate == 0 {
		m.rate = sample
	} else {
		m.rate = (1-meterAlpha)*m.rate + meterAlpha*sample
	}
	m.mu.Unlock()
}

// Rate returns the current cells/s EWMA, 0 before any observation.
func (m *RateMeter) Rate() float64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rate
}
