// Package aoi implements the paper's Age-of-Information analysis model
// (Section VI) and the new Relevance-of-Information (RoI) metric. External
// sensors generate information sequentially at their own frequency f_t
// while the XR application requests updates at f_req; packets wait in the
// M/M/1 input buffer (mean sojourn T̄ = 1/(µ−λ), Eq. 22) and traverse the
// wireless medium (propagation d/c). The per-update AoI follows Eq. (23),
// its per-frame average Eq. (24), the processed frequency Eq. (25), and
// RoI = f̄/f_req (Eq. 26) with RoI ≥ 1 meaning the information is fresh.
package aoi

import (
	"errors"
	"fmt"

	"repro/internal/queue"
	"repro/internal/sensors"
	"repro/internal/stats"
)

// Common errors.
var (
	// ErrConfig indicates an invalid AoI configuration.
	ErrConfig = errors.New("aoi: invalid configuration")
)

// Config describes one sensor's AoI situation: its generation process, the
// XR application's request cadence, and the input buffer it feeds.
type Config struct {
	// Sensor is the external information source.
	Sensor sensors.Sensor
	// RequestFrequencyHz is f_req, how often the XR application needs an
	// update (the paper's Fig. 4e/4f uses 200 Hz — one per 5 ms).
	RequestFrequencyHz float64
	// Buffer is the stable M/M/1 input buffer.
	Buffer queue.MM1
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Sensor.GenFrequencyHz <= 0 {
		return fmt.Errorf("%w: sensor frequency %v Hz", ErrConfig, c.Sensor.GenFrequencyHz)
	}
	if c.RequestFrequencyHz <= 0 {
		return fmt.Errorf("%w: request frequency %v Hz", ErrConfig, c.RequestFrequencyHz)
	}
	if c.Buffer.Mu <= c.Buffer.Lambda || c.Buffer.Lambda <= 0 {
		return fmt.Errorf("%w: buffer λ=%v µ=%v", ErrConfig, c.Buffer.Lambda, c.Buffer.Mu)
	}
	return nil
}

// RequestPeriodMs returns 1/f_req in milliseconds.
func (c Config) RequestPeriodMs() float64 { return 1000 / c.RequestFrequencyHz }

// UpdateAoIMs returns the analytical AoI of the n-th update (n ≥ 1),
// realizing Eq. (23). The sensor serves update requests sequentially, so
// the n-th generation completes at T^{mn} = n/f_t (the Fig. 2 timing: a
// 67 Hz sensor is transmitting its first information when the third update
// is already required); the request was issued at T^n_Req = (n−1)/f_req;
// the packet additionally incurs propagation d/c and mean buffer sojourn
// T̄:
//
//	t^{mn} = T^{mn} + (d/c + T̄) − T^n_Req
//
// For a sensor faster than the request cadence the sequential term would
// go negative; physically the age of a sample can never fall below the
// sensor's generation period, so the term is floored there.
func (c Config) UpdateAoIMs(n int) (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	if n < 1 {
		return 0, fmt.Errorf("%w: update index %d", ErrConfig, n)
	}
	period := c.Sensor.GenerationPeriodMs()
	lag := float64(n)*period - float64(n-1)*c.RequestPeriodMs()
	if lag < period {
		lag = period
	}
	return lag + c.Sensor.PropagationDelayMs() + c.Buffer.MeanSojourn(), nil
}

// AverageAoIMs returns A^m of Eq. (24): the mean AoI over the N updates of
// one frame's processing time.
func (c Config) AverageAoIMs(updates int) (float64, error) {
	if updates < 1 {
		return 0, fmt.Errorf("%w: updates %d", ErrConfig, updates)
	}
	var sum float64
	for n := 1; n <= updates; n++ {
		a, err := c.UpdateAoIMs(n)
		if err != nil {
			return 0, err
		}
		sum += a
	}
	return sum / float64(updates), nil
}

// ProcessedFrequencyHz returns f̄ of Eq. (25): the frequency at which the
// XR device effectively processes fresh information from the sensor,
// 1/A^m converted to Hz.
func (c Config) ProcessedFrequencyHz(updates int) (float64, error) {
	a, err := c.AverageAoIMs(updates)
	if err != nil {
		return 0, err
	}
	if a <= 0 {
		return 0, fmt.Errorf("%w: non-positive average AoI %v", ErrConfig, a)
	}
	return 1000 / a, nil
}

// RoI returns the Relevance-of-Information of Eq. (26): f̄/f_req. RoI ≥ 1
// means the sensor keeps up with the application's freshness requirement.
func (c Config) RoI(updates int) (float64, error) {
	fbar, err := c.ProcessedFrequencyHz(updates)
	if err != nil {
		return 0, err
	}
	return fbar / c.RequestFrequencyHz, nil
}

// Point is one (request time, AoI) sample of an AoI trajectory.
type Point struct {
	// TimeMs is the request issue time.
	TimeMs float64
	// AoIMs is the information age when the update is consumed.
	AoIMs float64
	// RoI is the running relevance after this update.
	RoI float64
}

// Series returns the analytical AoI trajectory over the first `updates`
// request cycles — the curves of Fig. 4e and the staircase of Fig. 4f.
func (c Config) Series(updates int) ([]Point, error) {
	if updates < 1 {
		return nil, fmt.Errorf("%w: updates %d", ErrConfig, updates)
	}
	out := make([]Point, 0, updates)
	for n := 1; n <= updates; n++ {
		a, err := c.UpdateAoIMs(n)
		if err != nil {
			return nil, err
		}
		roi := 0.0
		if a > 0 {
			roi = (1000 / a) / c.RequestFrequencyHz
		}
		out = append(out, Point{
			TimeMs: float64(n-1) * c.RequestPeriodMs(),
			AoIMs:  a,
			RoI:    roi,
		})
	}
	return out, nil
}

// Simulate produces a ground-truth AoI trajectory by discrete-event
// simulation: generation completion at the sensor's sequential cadence
// with small timing jitter, an exponentially distributed buffer sojourn
// (the M/M/1 sojourn distribution), and wireless propagation. It plays the
// role of the paper's emulated experiment for Fig. 4e.
func (c Config) Simulate(updates int, jitterRel float64, rng *stats.RNG) ([]Point, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if updates < 1 {
		return nil, fmt.Errorf("%w: updates %d", ErrConfig, updates)
	}
	if rng == nil {
		return nil, errors.New("aoi: nil rng")
	}
	if jitterRel < 0 {
		return nil, fmt.Errorf("%w: jitter %v", ErrConfig, jitterRel)
	}
	sojournRate := c.Buffer.Mu - c.Buffer.Lambda
	out := make([]Point, 0, updates)
	genClock := 0.0
	for n := 1; n <= updates; n++ {
		period := rng.Jitter(c.Sensor.GenerationPeriodMs(), jitterRel)
		genClock += period
		wait, err := rng.Exponential(sojournRate)
		if err != nil {
			return nil, fmt.Errorf("buffer sojourn: %w", err)
		}
		reqTime := float64(n-1) * c.RequestPeriodMs()
		lag := genClock - reqTime
		if lag < period {
			// Same physical floor as the analytical model: an update's
			// age cannot fall below the sensor's generation period.
			lag = period
		}
		age := lag + c.Sensor.PropagationDelayMs() + wait
		roi := 0.0
		if age > 0 {
			roi = (1000 / age) / c.RequestFrequencyHz
		}
		out = append(out, Point{TimeMs: reqTime, AoIMs: age, RoI: roi})
	}
	return out, nil
}

// IsFresh reports the paper's freshness criterion RoI ≥ 1.
func IsFresh(roi float64) bool { return roi >= 1 }
