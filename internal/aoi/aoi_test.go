package aoi

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/queue"
	"repro/internal/sensors"
	"repro/internal/stats"
)

// idealConfig builds a configuration whose propagation and buffering terms
// are negligible, so the arithmetic of Eq. (23) is checked in isolation.
func idealConfig(t *testing.T, sensorHz float64) Config {
	t.Helper()
	s, err := sensors.NewSensor("s", sensorHz, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Nearly instant buffer: W = 1/(10000 − 0.1) ≈ 0.0001 ms.
	buf, err := queue.NewMM1(0.1, 10000)
	if err != nil {
		t.Fatal(err)
	}
	return Config{Sensor: s, RequestFrequencyHz: 200, Buffer: buf}
}

func TestUpdateAoIPaperStaircase(t *testing.T) {
	// Fig. 4f: a 100 Hz sensor against 5 ms requests yields AoI
	// 10, 15, 20 ms at updates 1, 2, 3 with RoI 0.5, 0.33, 0.25.
	c := idealConfig(t, 100)
	wantAoI := []float64{10, 15, 20}
	wantRoI := []float64{0.5, 1.0 / 3.0, 0.25}
	for n := 1; n <= 3; n++ {
		a, err := c.UpdateAoIMs(n)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a-wantAoI[n-1]) > 0.01 {
			t.Fatalf("AoI(update %d) = %v, want %v", n, a, wantAoI[n-1])
		}
		roi := (1000 / a) / c.RequestFrequencyHz
		if math.Abs(roi-wantRoI[n-1]) > 0.01 {
			t.Fatalf("RoI(update %d) = %v, want %v", n, roi, wantRoI[n-1])
		}
	}
}

func TestUpdateAoIMatchedSensorIsFlat(t *testing.T) {
	// A 200 Hz sensor against 200 Hz requests: constant 5 ms AoI.
	c := idealConfig(t, 200)
	for n := 1; n <= 10; n++ {
		a, err := c.UpdateAoIMs(n)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a-5) > 0.01 {
			t.Fatalf("matched-sensor AoI(update %d) = %v, want 5", n, a)
		}
	}
}

func TestSlowerSensorAgesFaster(t *testing.T) {
	// Fig. 4e ordering: 67 Hz ages faster than 100 Hz, which ages faster
	// than 200 Hz.
	c67 := idealConfig(t, 66.67)
	c100 := idealConfig(t, 100)
	c200 := idealConfig(t, 200)
	for n := 2; n <= 8; n++ {
		a67, err := c67.UpdateAoIMs(n)
		if err != nil {
			t.Fatal(err)
		}
		a100, err := c100.UpdateAoIMs(n)
		if err != nil {
			t.Fatal(err)
		}
		a200, err := c200.UpdateAoIMs(n)
		if err != nil {
			t.Fatal(err)
		}
		if !(a67 > a100 && a100 > a200) {
			t.Fatalf("update %d ordering violated: 67Hz=%v 100Hz=%v 200Hz=%v",
				n, a67, a100, a200)
		}
	}
}

func TestAverageAoI(t *testing.T) {
	c := idealConfig(t, 100)
	avg, err := c.AverageAoIMs(3)
	if err != nil {
		t.Fatal(err)
	}
	// Mean of 10, 15, 20 = 15 (± buffer epsilon).
	if math.Abs(avg-15) > 0.01 {
		t.Fatalf("average AoI = %v, want 15", avg)
	}
	if _, err := c.AverageAoIMs(0); !errors.Is(err, ErrConfig) {
		t.Fatal("zero updates must error")
	}
}

func TestProcessedFrequencyAndRoI(t *testing.T) {
	c := idealConfig(t, 100)
	f, err := c.ProcessedFrequencyHz(3)
	if err != nil {
		t.Fatal(err)
	}
	// 1000/15 ≈ 66.7 Hz.
	if math.Abs(f-1000.0/15) > 0.1 {
		t.Fatalf("f̄ = %v, want ≈66.7", f)
	}
	roi, err := c.RoI(3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(roi-f/200) > 1e-9 {
		t.Fatalf("RoI = %v, want %v", roi, f/200)
	}
	if IsFresh(roi) {
		t.Fatal("a lagging sensor must not be fresh")
	}
	// A fast sensor (500 Hz) beats the requirement.
	fast := idealConfig(t, 500)
	fastRoI, err := fast.RoI(3)
	if err != nil {
		t.Fatal(err)
	}
	if !IsFresh(fastRoI) {
		t.Fatalf("500 Hz sensor RoI = %v, want ≥ 1", fastRoI)
	}
}

func TestBufferDelayRaisesAoI(t *testing.T) {
	s, err := sensors.NewSensor("s", 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	fastBuf, err := queue.NewMM1(0.1, 10000)
	if err != nil {
		t.Fatal(err)
	}
	slowBuf, err := queue.NewMM1(0.4, 0.5) // W = 10 ms
	if err != nil {
		t.Fatal(err)
	}
	cFast := Config{Sensor: s, RequestFrequencyHz: 200, Buffer: fastBuf}
	cSlow := Config{Sensor: s, RequestFrequencyHz: 200, Buffer: slowBuf}
	aFast, err := cFast.UpdateAoIMs(1)
	if err != nil {
		t.Fatal(err)
	}
	aSlow, err := cSlow.UpdateAoIMs(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs((aSlow-aFast)-(slowBuf.MeanSojourn()-fastBuf.MeanSojourn())) > 1e-9 {
		t.Fatalf("buffer contribution wrong: %v vs %v", aSlow, aFast)
	}
}

func TestConfigValidation(t *testing.T) {
	c := idealConfig(t, 100)
	bad := c
	bad.RequestFrequencyHz = 0
	if _, err := bad.UpdateAoIMs(1); !errors.Is(err, ErrConfig) {
		t.Fatal("zero request frequency must error")
	}
	bad = c
	bad.Sensor.GenFrequencyHz = 0
	if _, err := bad.UpdateAoIMs(1); !errors.Is(err, ErrConfig) {
		t.Fatal("zero sensor frequency must error")
	}
	bad = c
	bad.Buffer = queue.MM1{Lambda: 2, Mu: 1}
	if _, err := bad.UpdateAoIMs(1); !errors.Is(err, ErrConfig) {
		t.Fatal("unstable buffer must error")
	}
	if _, err := c.UpdateAoIMs(0); !errors.Is(err, ErrConfig) {
		t.Fatal("update index 0 must error")
	}
}

func TestSeries(t *testing.T) {
	c := idealConfig(t, 100)
	pts, err := c.Series(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("series length = %d, want 4", len(pts))
	}
	// Request times at 0, 5, 10, 15 ms.
	for i, p := range pts {
		if math.Abs(p.TimeMs-float64(i)*5) > 1e-9 {
			t.Fatalf("point %d time = %v", i, p.TimeMs)
		}
		if p.AoIMs <= 0 || p.RoI <= 0 {
			t.Fatalf("point %d not positive: %+v", i, p)
		}
	}
	// Staircase is non-decreasing for a lagging sensor.
	for i := 1; i < len(pts); i++ {
		if pts[i].AoIMs < pts[i-1].AoIMs {
			t.Fatalf("AoI decreased at %d", i)
		}
	}
	if _, err := c.Series(0); !errors.Is(err, ErrConfig) {
		t.Fatal("zero updates must error")
	}
}

func TestSimulateTracksAnalytic(t *testing.T) {
	c := idealConfig(t, 100)
	rng := stats.NewRNG(11)
	got, err := c.Simulate(2000, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2000 {
		t.Fatalf("sim points = %d", len(got))
	}
	// The empirical mean of (AoI_sim − AoI_analytic) must be near zero:
	// the only stochastic term is the exponential sojourn whose mean
	// matches the analytic W.
	var diff float64
	for n, p := range got {
		a, err := c.UpdateAoIMs(n + 1)
		if err != nil {
			t.Fatal(err)
		}
		diff += p.AoIMs - a
	}
	diff /= float64(len(got))
	if math.Abs(diff) > 0.05 {
		t.Fatalf("sim vs analytic mean gap = %v ms", diff)
	}
}

func TestSimulateErrors(t *testing.T) {
	c := idealConfig(t, 100)
	if _, err := c.Simulate(10, 0, nil); err == nil {
		t.Fatal("nil rng must error")
	}
	if _, err := c.Simulate(0, 0, stats.NewRNG(1)); !errors.Is(err, ErrConfig) {
		t.Fatal("zero updates must error")
	}
	if _, err := c.Simulate(10, -1, stats.NewRNG(1)); !errors.Is(err, ErrConfig) {
		t.Fatal("negative jitter must error")
	}
}

// Property: AoI grows linearly for lagging sensors — the per-update
// increment equals genPeriod − reqPeriod.
func TestAoIIncrementProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		genHz := 20 + 150*rng.Float64() // slower than requests
		s, err := sensors.NewSensor("s", genHz, 10*rng.Float64())
		if err != nil {
			return false
		}
		buf, err := queue.NewMM1(0.1, 100)
		if err != nil {
			return false
		}
		c := Config{Sensor: s, RequestFrequencyHz: 200, Buffer: buf}
		a1, err1 := c.UpdateAoIMs(3)
		a2, err2 := c.UpdateAoIMs(4)
		if err1 != nil || err2 != nil {
			return false
		}
		wantInc := s.GenerationPeriodMs() - c.RequestPeriodMs()
		return math.Abs((a2-a1)-wantInc) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
