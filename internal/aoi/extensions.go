package aoi

import (
	"errors"
	"fmt"

	"repro/internal/queue"
)

// PeakAoIMs returns the peak (maximum per-update) AoI over the first
// `updates` request cycles — the peak-age metric of the literature the
// paper builds on ([41]): while the average AoI drives mean staleness,
// the peak bounds the worst-case scene inconsistency an XR user sees.
func (c Config) PeakAoIMs(updates int) (float64, error) {
	if updates < 1 {
		return 0, fmt.Errorf("%w: updates %d", ErrConfig, updates)
	}
	var peak float64
	for n := 1; n <= updates; n++ {
		a, err := c.UpdateAoIMs(n)
		if err != nil {
			return 0, err
		}
		if a > peak {
			peak = a
		}
	}
	return peak, nil
}

// DropPenaltyMs returns the expected extra age caused by a finite input
// buffer that drops arrivals with the given blocking probability: a
// dropped update forces the XR device to keep the previous sample one
// more generation cycle, and consecutive drops compound geometrically, so
// the expected penalty is period·p/(1−p).
func (c Config) DropPenaltyMs(blockingProb float64) (float64, error) {
	if blockingProb < 0 || blockingProb >= 1 {
		return 0, fmt.Errorf("%w: blocking probability %v", ErrConfig, blockingProb)
	}
	if err := c.Validate(); err != nil {
		return 0, err
	}
	return c.Sensor.GenerationPeriodMs() * blockingProb / (1 - blockingProb), nil
}

// AverageAoIWithDropsMs returns the drop-aware average AoI: Eq. (24) plus
// the finite-buffer penalty implied by the M/M/1/K input buffer.
func (c Config) AverageAoIWithDropsMs(updates int, buf queue.MM1K) (float64, error) {
	base, err := c.AverageAoIMs(updates)
	if err != nil {
		return 0, err
	}
	penalty, err := c.DropPenaltyMs(buf.BlockingProbability())
	if err != nil {
		return 0, err
	}
	return base + penalty, nil
}

// SystemSummary aggregates AoI across the sensors feeding one XR device.
type SystemSummary struct {
	// MeanAoIMs averages the per-sensor average AoIs.
	MeanAoIMs float64
	// WorstAoIMs is the largest per-sensor average AoI.
	WorstAoIMs float64
	// WorstSensor names the sensor behind WorstAoIMs.
	WorstSensor string
	// FreshCount counts sensors with RoI ≥ 1.
	FreshCount int
	// Total is the number of sensors assessed.
	Total int
}

// SystemAoI assesses every configuration in cfgs over `updates` cycles.
// All configurations normally share the request frequency and buffer but
// may differ per sensor.
func SystemAoI(cfgs []Config, updates int) (SystemSummary, error) {
	if len(cfgs) == 0 {
		return SystemSummary{}, errors.New("aoi: no sensor configurations")
	}
	var out SystemSummary
	out.Total = len(cfgs)
	for _, c := range cfgs {
		avg, err := c.AverageAoIMs(updates)
		if err != nil {
			return SystemSummary{}, fmt.Errorf("sensor %s: %w", c.Sensor.Name, err)
		}
		roi, err := c.RoI(updates)
		if err != nil {
			return SystemSummary{}, fmt.Errorf("sensor %s: %w", c.Sensor.Name, err)
		}
		out.MeanAoIMs += avg
		if avg > out.WorstAoIMs {
			out.WorstAoIMs = avg
			out.WorstSensor = c.Sensor.Name
		}
		if IsFresh(roi) {
			out.FreshCount++
		}
	}
	out.MeanAoIMs /= float64(len(cfgs))
	return out, nil
}
